(** Service chaos smoke, run by [dune build @smoke]: the inference service
    must answer {e every} submitted request with exactly one terminal reply
    while workers are being killed and stalled under it.

    Two layers are soaked:

    - {b library}: 50 requests through {!Scallop_serve.Service} under 10%
      injected worker kills plus 10% latency; every ticket must reach a
      terminal outcome, and after shutdown every spawned domain must have
      been joined (no leaks);
    - {b CLI}: 50 request lines piped through [scallop serve] under the
      same chaos; the process must print exactly one [done <id> ...] status
      line per request and exit 0 (per-request failures are replies, not a
      process failure).

    Exits nonzero on any missing reply, leaked domain, or serve failure. *)

open Scallop_core
open Scallop_serve
module Rng = Scallop_utils.Rng

let requests = 50
let failures = ref 0

let fail fmt = Fmt.kstr (fun m -> incr failures; Fmt.epr "smoke: %s@." m) fmt

let chaos =
  {
    Chaos.kill_prob = 0.1;
    latency_prob = 0.1;
    latency = 0.01;
    budget_fault_prob = 0.0;
    nan_prob = 0.0;
    seed = 7;
  }

(* ---- library soak ----------------------------------------------------------- *)

let src =
  {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
rel n_path(n) = n := count(p: path(0, p))
query n_path|}

let sample data_rng i =
  let rng = Rng.substream data_rng i in
  let edges = ref [] in
  for a = 0 to 5 do
    for b = 0 to 5 do
      if a <> b && Rng.float rng < 0.4 then
        edges :=
          ( Provenance.Input.prob (0.05 +. (0.9 *. Rng.float rng)),
            Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] )
          :: !edges
    done
  done;
  [ ("edge", List.rev !edges) ]

let library_soak () =
  let compiled = Session.compile src in
  let data_rng = Rng.create 11 in
  let config =
    {
      (Service.default_config ()) with
      Service.jobs = 2;
      queue_depth = requests;
      max_retries = 2;
      backoff_base = 0.001;
      backoff_cap = 0.01;
      watchdog_interval = Some 0.01;
      heartbeat_timeout = 5.0;
      chaos;
    }
  in
  let svc = Service.create ~config Registry.Max_min_prob in
  let tickets =
    Array.init requests (fun i -> Service.submit svc ~facts:(sample data_rng i) compiled)
  in
  let ok = ref 0 and err = ref 0 in
  Array.iteri
    (fun i t ->
      match (Service.await svc t).Service.response with
      | Ok _ -> incr ok
      | Error (Exec_error.Worker_lost _ | Exec_error.Non_finite _ | Exec_error.Overloaded _)
        ->
          incr err
      | Error e -> fail "request %d: unexpected error class: %s" i (Session.error_string e))
    tickets;
  Service.shutdown svc;
  let s = Service.stats svc in
  if !ok + !err <> requests then
    fail "library soak: %d/%d terminal outcomes" (!ok + !err) requests;
  if s.Service.completed <> requests then
    fail "library soak: completed counter %d <> %d" s.Service.completed requests;
  if s.Service.domains_spawned <> s.Service.domains_joined then
    fail "library soak: %d domains spawned but %d joined" s.Service.domains_spawned
      s.Service.domains_joined;
  Fmt.pr
    "smoke: service library soak %d/%d answered (ok=%d transient-failed=%d kills=%d \
     stalls=%d respawns=%d)@."
    (!ok + !err) requests !ok !err s.Service.chaos_kills s.Service.chaos_stalls
    s.Service.respawns

(* ---- CLI soak: the same contract through [scallop serve] -------------------- *)

let cli_soak () =
  let cmd =
    "../bin/scallop.exe serve -p minmaxprob --jobs 2 --max-retries 2 --chaos-seed 7 \
     --chaos-kill 0.1 --chaos-latency 0.1 --chaos-latency-secs 0.01 2>/dev/null"
  in
  let out, into = Unix.open_process cmd in
  for i = 0 to requests - 1 do
    Printf.fprintf into "rel p = {(%d, %d)};query p\n" i (i + 1)
  done;
  close_out into;
  let done_lines = ref 0 and lines = ref [] in
  (try
     while true do
       let line = input_line out in
       lines := line :: !lines;
       if String.length line >= 5 && String.sub line 0 5 = "done " then incr done_lines
     done
   with End_of_file -> ());
  let status = Unix.close_process (out, into) in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "scallop serve exited %d" n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> fail "scallop serve killed by signal %d" n);
  if !done_lines <> requests then
    fail "cli soak: %d done-lines for %d requests" !done_lines requests;
  Fmt.pr "smoke: scallop serve answered %d/%d requests under chaos@." !done_lines requests

let () =
  library_soak ();
  cli_soak ();
  if !failures > 0 then exit 1
