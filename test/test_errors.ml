(** Golden tests for the typed diagnostics ([Exec_error.t]): each failure
    class must surface as the documented constructor AND render to the
    documented string, both from the library API and (for the per-file
    error policy) from the installed CLI binary. *)

open Scallop_core

let check = Alcotest.check

let divergent_src = "type seed(i32)\nrel n(x) = seed(x)\nrel n(x + 1) = n(x)\nquery n"

let seed_facts =
  [ ("seed", [ (Provenance.Input.none, Tuple.of_list [ Value.int Value.I32 0 ]) ]) ]

let config_of budget = { (Interp.default_config ()) with Interp.budget }

let run_divergent budget =
  let c = Session.compile divergent_src in
  try
    ignore
      (Session.run ~config:(config_of budget) ~provenance:(Registry.create Registry.Boolean) c
         ~facts:seed_facts ());
    Alcotest.fail "divergent program terminated"
  with Session.Error e -> e

(* ---- golden constructors and messages -------------------------------------- *)

let test_unstratifiable () =
  let src = "type e(i32)\nrel p(x) = e(x)\nrel p(x) = e(x), not p(x)\nquery p" in
  match Session.compile src with
  | _ -> Alcotest.fail "unstratifiable program compiled"
  | exception Session.Error e ->
      (match e with
      | Exec_error.Unstratifiable { head = "p"; dep = "p" } -> ()
      | _ -> Alcotest.failf "wrong constructor: %s" (Session.error_string e));
      check Alcotest.string "rendered message"
        "program is not stratified: p depends on p through negation or aggregation within a \
         recursive cycle"
        (Session.error_string e)

let test_type_error () =
  let src = "rel p = {(1)}\nrel q(x) = p(x), x == \"a\"\nquery q" in
  match Session.compile src with
  | _ -> Alcotest.fail "ill-typed program compiled"
  | exception Session.Error e ->
      (match e with
      | Exec_error.Type_error _ -> ()
      | _ -> Alcotest.failf "wrong constructor: %s" (Session.error_string e));
      check Alcotest.string "rendered message" "type error at 1:1: type String is not integer"
        (Session.error_string e)

let test_iteration_limit () =
  let e = run_divergent (Budget.make ~max_iterations:20 ()) in
  (match e with
  | Exec_error.Budget_exceeded { kind = Exec_error.Iterations; stratum = 0; iterations = 20; _ }
    ->
      ()
  | _ -> Alcotest.failf "wrong constructor: %s" (Session.error_string e));
  let msg = Session.error_string e in
  let prefix = "budget exceeded (iterations) in stratum 0 after 20 fixpoint iterations" in
  if not (String.length msg >= String.length prefix && String.sub msg 0 (String.length prefix) = prefix)
  then Alcotest.failf "rendered message %S lacks prefix %S" msg prefix

let test_tuple_limit () =
  match run_divergent { Budget.unlimited with Budget.max_tuples = Some 50 } with
  | Exec_error.Budget_exceeded { kind = Exec_error.Tuples; stratum = 0; _ } -> ()
  | e -> Alcotest.failf "wrong constructor: %s" (Session.error_string e)

let test_node_eval_limit () =
  match run_divergent { Budget.unlimited with Budget.max_node_evals = Some 100 } with
  | Exec_error.Budget_exceeded { kind = Exec_error.Node_evals; stratum = 0; _ } -> ()
  | e -> Alcotest.failf "wrong constructor: %s" (Session.error_string e)

let deadline = 0.3

let test_deadline_sequential () =
  let t0 = Scallop_utils.Monotonic.now () in
  let e = run_divergent { Budget.unlimited with Budget.timeout = Some deadline } in
  let elapsed = Scallop_utils.Monotonic.now () -. t0 in
  (match e with
  | Exec_error.Budget_exceeded { kind = Exec_error.Deadline; stratum = 0; _ } -> ()
  | _ -> Alcotest.failf "wrong constructor: %s" (Session.error_string e));
  if elapsed >= 2.0 *. deadline then
    Alcotest.failf "stopped after %.2fs, more than twice the %.1fs deadline" elapsed deadline

let test_deadline_batch () =
  (* sample 0 diverges and must fail structurally; sample 1 (empty seed) is a
     sibling in the same 2-domain batch and must still complete *)
  let c = Session.compile divergent_src in
  let t0 = Scallop_utils.Monotonic.now () in
  let results =
    Session.run_batch ~jobs:2
      ~config:(config_of { Budget.unlimited with Budget.timeout = Some deadline })
      ~provenance_of:(fun _ -> Registry.create Registry.Boolean)
      c
      [| seed_facts; [ ("seed", []) ] |]
  in
  let elapsed = Scallop_utils.Monotonic.now () -. t0 in
  (match results.(0) with
  | Error (Exec_error.Budget_exceeded { kind = Exec_error.Deadline; _ }) -> ()
  | Error e -> Alcotest.failf "sample 0: wrong error: %s" (Session.error_string e)
  | Ok _ -> Alcotest.fail "sample 0: divergent program terminated");
  (match results.(1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sibling sample failed: %s" (Session.error_string e));
  if elapsed >= 2.0 *. deadline then
    Alcotest.failf "batch stopped after %.2fs, more than twice the %.1fs deadline" elapsed
      deadline

let test_cancelled_before_start () =
  let cancel = Scallop_utils.Cancel.create () in
  Scallop_utils.Cancel.cancel cancel;
  let c = Session.compile divergent_src in
  let results =
    Session.run_batch ~jobs:2
      ~config:(config_of { Budget.unlimited with Budget.cancel = Some cancel })
      ~provenance_of:(fun _ -> Registry.create Registry.Boolean)
      c
      [| seed_facts; [ ("seed", []) ] |]
  in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Error (Exec_error.Cancelled { stratum = -1; _ } as e) ->
          check Alcotest.string "rendered message" "execution cancelled before it started"
            (Session.error_string e)
      | Error e -> Alcotest.failf "sample %d: wrong error: %s" i (Session.error_string e)
      | Ok _ -> Alcotest.failf "sample %d ran despite pre-cancelled token" i)
    results

(* ---- service runtime errors and the transient/deterministic split ----------- *)

let test_overloaded_golden () =
  check Alcotest.string "rendered message (plural)"
    "service overloaded: 64 requests queued, oldest waiting 0.250s"
    (Session.error_string (Exec_error.Overloaded { depth = 64; age = 0.25 }));
  check Alcotest.string "rendered message (singular)"
    "service overloaded: 1 request queued, oldest waiting 0.000s"
    (Session.error_string (Exec_error.Overloaded { depth = 1; age = 0.0 }))

let test_worker_lost_golden () =
  check Alcotest.string "rendered message"
    "worker 2 lost while executing the request (attempt 3)"
    (Session.error_string (Exec_error.Worker_lost { worker = 2; attempts = 3 }))

let test_recovery_failed_golden () =
  check Alcotest.string "rendered message"
    "recovery of session s1 failed: corrupt log segment wal-000000003.log at byte 20: \
     checksum mismatch"
    (Session.error_string
       (Exec_error.Recovery_failed
          {
            session = "s1";
            reason = "corrupt log segment wal-000000003.log at byte 20: checksum mismatch";
          }))

let test_replication_goldens () =
  check Alcotest.string "diverged"
    "replica diverged on session s1 in segment 2: checksum chain mismatch"
    (Session.error_string
       (Exec_error.Replication_diverged
          { session = "s1"; segment = 2; reason = "checksum chain mismatch" }));
  check Alcotest.string "fenced" "primary fenced: epoch 1 deposed by epoch 2"
    (Session.error_string (Exec_error.Fenced { epoch = 1; current = 2 }));
  check Alcotest.string "ack timeout (singular)"
    "replication ack timeout: 0/1 follower ack after 5.000s"
    (Session.error_string (Exec_error.Ack_timeout { acked = 0; quorum = 1; waited = 5.0 }));
  check Alcotest.string "ack timeout (plural)"
    "replication ack timeout: 1/2 follower acks after 0.250s"
    (Session.error_string (Exec_error.Ack_timeout { acked = 1; quorum = 2; waited = 0.25 }))

(* A client may safely retry exactly the transient class; everything
   deterministic must not be retried, and only budget exhaustion invites
   degrading to a cheaper provenance. *)
let test_transient_classification () =
  let transient =
    [
      Exec_error.Overloaded { depth = 3; age = 0.1 };
      Exec_error.Worker_lost { worker = 0; attempts = 1 };
      Exec_error.Non_finite { what = "output probabilities of p" };
    ]
  in
  let deterministic =
    [
      Exec_error.Budget_exceeded
        { kind = Exec_error.Deadline; stratum = 0; iterations = 0; elapsed = 0.1 };
      Exec_error.Cancelled { stratum = -1; elapsed = 0.0 };
      Exec_error.Invalid_input { msg = "bad" };
      Exec_error.Runtime_error { msg = "boom" };
      (* a damaged state dir will not heal on retry *)
      Exec_error.Recovery_failed { session = "s"; reason = "corrupt log" };
      (* a forked replica, a deposed primary, an unknown replication level:
         all need operator action, never a blind client retry *)
      Exec_error.Replication_diverged { session = "s"; segment = 1; reason = "chain" };
      Exec_error.Fenced { epoch = 1; current = 2 };
      Exec_error.Ack_timeout { acked = 0; quorum = 1; waited = 5.0 };
    ]
  in
  List.iter
    (fun e ->
      if not (Exec_error.is_transient e) then
        Alcotest.failf "should be transient: %s" (Session.error_string e);
      if Exec_error.is_degradable e then
        Alcotest.failf "transient must not be degradable: %s" (Session.error_string e))
    transient;
  List.iter
    (fun e ->
      if Exec_error.is_transient e then
        Alcotest.failf "should not be transient: %s" (Session.error_string e))
    deterministic;
  Alcotest.(check bool) "budget exhaustion is the degradable class" true
    (Exec_error.is_degradable
       (Exec_error.Budget_exceeded
          { kind = Exec_error.Iterations; stratum = 1; iterations = 7; elapsed = 0.2 }))

(* ---- stateful session protocol errors ---------------------------------------- *)

let incr_src =
  "type edge(i32, i32)\nrel path(a, b) = edge(a, b)\nquery path"

let expect_invalid expected f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_input %S" expected
  | exception Session.Error e ->
      (match e with
      | Exec_error.Invalid_input _ -> ()
      | _ -> Alcotest.failf "wrong constructor: %s" (Session.error_string e));
      check Alcotest.string "rendered message" expected (Session.error_string e)

let test_incr_retract_never_asserted () =
  let module Incr = Scallop_incr.Incr in
  let t = Incr.open_session ~spec:Registry.Boolean incr_src in
  expect_invalid "retract edge(4, 5): fact was never asserted" (fun () ->
      Incr.retract_fact t ~pred:"edge"
        (Tuple.of_list [ Value.int Value.I32 4; Value.int Value.I32 5 ]))

let test_incr_closed_session () =
  let module Incr = Scallop_incr.Incr in
  let t = Incr.open_session ~spec:Registry.Boolean incr_src in
  Incr.close t;
  expect_invalid "session is closed" (fun () -> Incr.query t);
  expect_invalid "session is closed" (fun () -> Incr.close t)

let test_incr_unknown_relation () =
  let module Incr = Scallop_incr.Incr in
  let t = Incr.open_session ~spec:Registry.Boolean incr_src in
  expect_invalid "assert into unknown relation nope" (fun () ->
      Incr.assert_fact t ~pred:"nope" (Tuple.of_list [ Value.int Value.I32 0 ]))

let test_incr_hash_mismatch () =
  let module Incr = Scallop_incr.Incr in
  let actual = Session.source_hash incr_src in
  expect_invalid
    (Fmt.str "program hash mismatch: expected deadbeefdeadbeef, source hashes to %s" actual)
    (fun () ->
      Incr.open_session ~spec:Registry.Boolean ~expect_hash:"deadbeefdeadbeef" incr_src)

(* The serve protocol renders the same typed errors as replies, never as a
   process failure: exit status stays 0 and each misuse gets its own
   [done <id> error <msg>] line. *)
let test_cli_serve_protocol_errors () =
  let dir = Filename.temp_file "scallop_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path name = Filename.concat dir name in
  Out_channel.with_open_text (path "in.txt") (fun oc ->
      output_string oc
        ("open s1 type edge(i32, i32); rel path(a, b) = edge(a, b); query path\n"
       ^ "retract s1 edge(4, 5)\n" ^ "query nosuch\n" ^ "open s1 rel p = {(1)}\n"
       ^ "close s1\n" ^ "query s1\n"));
  let cmd =
    Fmt.str "../bin/scallop.exe serve < %s > %s 2> %s"
      (Filename.quote (path "in.txt"))
      (Filename.quote (path "out.txt"))
      (Filename.quote (path "err.txt"))
  in
  let code = Sys.command cmd in
  let lines =
    In_channel.with_open_text (path "out.txt") In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> not (String.equal l ""))
  in
  Array.iter (fun f -> Sys.remove (path f)) (Sys.readdir dir);
  Sys.rmdir dir;
  check Alcotest.int "protocol errors are replies, not failures" 0 code;
  let golden =
    [
      "done 1 error retract edge(4, 5): fact was never asserted";
      "done 2 error unknown session nosuch";
      "done 3 error session s1 already open";
      "done 5 error rung=boolean attempts=1 session is closed";
    ]
  in
  List.iter
    (fun g ->
      if not (List.exists (String.equal g) lines) then
        Alcotest.failf "missing golden reply %S in %a" g Fmt.(Dump.list string) lines)
    golden

(* ---- CLI per-file error policy ---------------------------------------------- *)

(* One bad file and one good file: the run must exit nonzero, report the bad
   file on stderr, and still print the good file's outputs. *)
let test_cli_per_file_errors () =
  let dir = Filename.temp_file "scallop_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let write name contents =
    let path = Filename.concat dir name in
    Out_channel.with_open_text path (fun oc -> output_string oc contents);
    path
  in
  let bad = write "bad.scl" "rel p(x) = \n  = q(x)\n" in
  let good = write "good.scl" "rel e = {(1, 2)}\nrel p(x, y) = e(x, y)\nquery p\n" in
  let out = Filename.concat dir "out.txt" in
  let err = Filename.concat dir "err.txt" in
  let cmd =
    Fmt.str "../bin/scallop.exe run %s %s > %s 2> %s" (Filename.quote bad)
      (Filename.quote good) (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp path = In_channel.with_open_text path In_channel.input_all in
  let stdout_text = slurp out in
  let stderr_text = slurp err in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;
  if code = 0 then Alcotest.fail "exit code was 0 despite a failing file";
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  if not (contains stderr_text "bad.scl") then
    Alcotest.failf "stderr does not name the bad file: %S" stderr_text;
  if not (contains stderr_text "parse error") then
    Alcotest.failf "stderr lacks the typed parse error: %S" stderr_text;
  if not (contains stdout_text "p(1, 2)") then
    Alcotest.failf "good file's output missing from stdout: %S" stdout_text

let suite =
  [
    Alcotest.test_case "unstratifiable: constructor and message" `Quick test_unstratifiable;
    Alcotest.test_case "type error: constructor and message" `Quick test_type_error;
    Alcotest.test_case "iteration limit: constructor and message" `Quick test_iteration_limit;
    Alcotest.test_case "tuple limit: constructor" `Quick test_tuple_limit;
    Alcotest.test_case "node-eval limit: constructor" `Quick test_node_eval_limit;
    Alcotest.test_case "deadline: sequential, within 2x" `Quick test_deadline_sequential;
    Alcotest.test_case "deadline: batch jobs=2, sibling survives" `Quick test_deadline_batch;
    Alcotest.test_case "cancellation before start" `Quick test_cancelled_before_start;
    Alcotest.test_case "overloaded: rendered message" `Quick test_overloaded_golden;
    Alcotest.test_case "worker lost: rendered message" `Quick test_worker_lost_golden;
    Alcotest.test_case "recovery failed: rendered message" `Quick test_recovery_failed_golden;
    Alcotest.test_case "replication errors: rendered messages" `Quick test_replication_goldens;
    Alcotest.test_case "transient vs deterministic classification" `Quick
      test_transient_classification;
    Alcotest.test_case "CLI: per-file errors, nonzero exit at end" `Quick
      test_cli_per_file_errors;
    Alcotest.test_case "incr: retract never asserted" `Quick test_incr_retract_never_asserted;
    Alcotest.test_case "incr: closed session" `Quick test_incr_closed_session;
    Alcotest.test_case "incr: unknown relation" `Quick test_incr_unknown_relation;
    Alcotest.test_case "incr: hash mismatch" `Quick test_incr_hash_mismatch;
    Alcotest.test_case "CLI serve: protocol errors are typed replies" `Quick
      test_cli_serve_protocol_errors;
  ]
