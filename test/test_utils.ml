(** Tests for the shared utilities: seeded RNG, graph algorithms, list
    helpers. *)

open Scallop_utils

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---- Rng ------------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check (Alcotest.float 0.0) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 13 in
    if x < 0 || x >= 13 then Alcotest.failf "Rng.int out of bounds: %d" x
  done

let test_rng_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "Rng.float out of bounds: %f" x
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xa = Rng.float a and xb = Rng.float b in
  if Float.equal xa xb then Alcotest.fail "split streams should differ"

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let samples = List.init n (fun _ -> Rng.gaussian ~mu:2.0 ~sigma:0.5 rng) in
  let mean = Listx.average samples in
  let var =
    Listx.average (List.map (fun x -> (x -. mean) ** 2.0) samples)
  in
  check (Alcotest.float 0.05) "mean" 2.0 mean;
  check (Alcotest.float 0.05) "variance" 0.25 var

let test_rng_categorical () =
  let rng = Rng.create 13 in
  let counts = Array.make 3 0 in
  for _ = 1 to 10000 do
    let i = Rng.categorical rng [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check (Alcotest.float 0.03) "p0" 0.1 (float_of_int counts.(0) /. 10000.0);
  check (Alcotest.float 0.03) "p2" 0.7 (float_of_int counts.(2) /. 10000.0)

let test_rng_categorical_nonfinite_total () =
  (* A NaN/∞/zero weight total must degrade to a uniform draw, not a silent
     constant pick (the cumulative scan never fires on a NaN total and used
     to return the last index every time). *)
  List.iter
    (fun weights ->
      let rng = Rng.create 21 in
      let n = Array.length weights in
      let counts = Array.make n 0 in
      let draws = 3000 in
      for _ = 1 to draws do
        let i = Rng.categorical rng weights in
        if i < 0 || i >= n then Alcotest.failf "categorical out of bounds: %d" i;
        counts.(i) <- counts.(i) + 1
      done;
      Array.iteri
        (fun i c ->
          check (Alcotest.float 0.05) (Fmt.str "uniform fallback idx %d" i)
            (1.0 /. float_of_int n)
            (float_of_int c /. float_of_int draws))
        counts)
    [
      [| Float.nan; 1.0; 1.0 |];
      [| Float.infinity; 1.0; 1.0; 1.0 |];
      [| 0.0; 0.0 |];
      [| -1.0; -2.0; -3.0 |];
    ]

let test_rng_shuffle_permutation () =
  let rng = Rng.create 17 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 20 Fun.id) sorted

let qcheck_sample_indices =
  qtest "sample_indices: k distinct ascending indices"
    QCheck.(triple (int_range 0 500) (int_range 0 15) (int_range 0 15))
    (fun (seed, a, b) ->
      let k = min a b and n = max a b in
      let rng = Rng.create seed in
      let sel = Rng.sample_indices rng k n in
      Array.length sel = k
      && Array.for_all (fun i -> i >= 0 && i < n) sel
      && Array.for_all Fun.id (Array.mapi (fun j i -> j = 0 || sel.(j - 1) < i) sel))

let qcheck_weighted_sample_indices =
  qtest "weighted_sample_indices: k distinct ascending, zero weights ok"
    QCheck.(triple (int_range 0 500) (int_range 0 15) (list_of_size Gen.(0 -- 15) (float_bound_inclusive 1.0)))
    (fun (seed, a, ws) ->
      let weights = Array.of_list ws in
      (* half the cases: all-zero weights, exercising the uniform fallback *)
      let weights = if seed mod 2 = 0 then Array.map (fun _ -> 0.0) weights else weights in
      let n = Array.length weights in
      let k = min a n in
      let rng = Rng.create seed in
      let sel = Rng.weighted_sample_indices rng k weights in
      Array.length sel = k
      && Array.for_all (fun i -> i >= 0 && i < n) sel
      && Array.for_all Fun.id (Array.mapi (fun j i -> j = 0 || sel.(j - 1) < i) sel))

let test_weighted_sample_prefers_heavy () =
  (* index 2 carries 90% of the mass: it must appear in nearly every draw *)
  let rng = Rng.create 23 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    let sel = Rng.weighted_sample_indices rng 1 [| 0.05; 0.05; 0.9 |] in
    if sel.(0) = 2 then incr hits
  done;
  if !hits < 800 then Alcotest.failf "heavy index drawn only %d/1000 times" !hits

(* ---- Graph ------------------------------------------------------------------- *)

let test_scc_simple_cycle () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  let comp, n = Graph.scc g in
  check Alcotest.int "three components" 3 n;
  check Alcotest.int "0 and 1 together" comp.(0) comp.(1);
  if comp.(2) = comp.(0) || comp.(3) = comp.(2) then Alcotest.fail "2 and 3 are separate"

let test_scc_topological_order () =
  (* edge u->v (u depends on v) implies comp(u) > comp(v) when separate *)
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 0 3;
  Graph.add_edge g 3 4;
  let comp, _ = Graph.scc g in
  if comp.(0) <= comp.(1) then Alcotest.fail "dependent after dependency (0,1)";
  if comp.(1) <= comp.(2) then Alcotest.fail "dependent after dependency (1,2)";
  if comp.(3) <= comp.(4) then Alcotest.fail "dependent after dependency (3,4)"

let test_scc_self_loop () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 0;
  let comp, n = Graph.scc g in
  check Alcotest.int "two components" 2 n;
  if comp.(0) = comp.(1) then Alcotest.fail "self loop isolated"

let qcheck_scc_partition =
  qtest "scc assigns every node exactly one component"
    QCheck.(pair (int_range 1 20) (list (pair (int_range 0 19) (int_range 0 19))))
    (fun (n, edges) ->
      let g = Graph.create n in
      List.iter (fun (u, v) -> if u < n && v < n then Graph.add_edge g u v) edges;
      let comp, ncomp = Graph.scc g in
      Array.for_all (fun c -> c >= 0 && c < ncomp) comp)

(* ---- Listx ------------------------------------------------------------------- *)

let test_take_drop () =
  check Alcotest.(list int) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  check Alcotest.(list int) "take over" [ 1; 2; 3 ] (Listx.take 5 [ 1; 2; 3 ]);
  check Alcotest.(list int) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  check Alcotest.(list int) "drop over" [] (Listx.drop 5 [ 1; 2; 3 ])

let test_cartesian () =
  check
    Alcotest.(list (list int))
    "cartesian"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Listx.cartesian [ [ 1; 2 ]; [ 3; 4 ] ])

let test_subsets () =
  check Alcotest.int "2^3 subsets" 8 (List.length (Listx.subsets [ 1; 2; 3 ]))

let test_group_by () =
  let groups = Listx.group_by (module Int) (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
  check Alcotest.int "two groups" 2 (List.length groups);
  check Alcotest.(list int) "odds first" [ 1; 3; 5 ] (List.assoc 1 groups);
  check Alcotest.(list int) "evens" [ 2; 4 ] (List.assoc 0 groups)

let test_top_k_by () =
  check Alcotest.(list int) "top 2" [ 9; 7 ] (Listx.top_k_by float_of_int 2 [ 3; 9; 1; 7 ])

let test_top_k_by_nan_and_ties () =
  (* NaN scores rank as -inf (never above a finite score; ties with a real
     -inf resolve by input order)… *)
  let score = function 0 -> Float.nan | 1 -> Float.neg_infinity | n -> float_of_int n in
  check Alcotest.(list int) "nan never beats finite" [ 5; 2; 0 ] (Listx.top_k_by score 3 [ 0; 1; 2; 5 ]);
  check Alcotest.(list int) "nan/-inf tie is stable" [ 5; 2; 1 ] (Listx.top_k_by score 3 [ 1; 0; 2; 5 ]);
  (* …equal scores keep input order (stability)… *)
  check
    Alcotest.(list (pair int string))
    "stable ties"
    [ (2, "a"); (2, "b"); (1, "c") ]
    (Listx.top_k_by (fun (s, _) -> float_of_int s) 3 [ (2, "a"); (1, "c"); (2, "b") ]);
  (* …and the score function runs once per element, not once per comparison. *)
  let calls = ref 0 in
  let counted x = incr calls; float_of_int x in
  ignore (Listx.top_k_by counted 2 [ 5; 3; 8; 1; 9; 2 ]);
  check Alcotest.int "score called n times" 6 !calls

let test_dedup_stable () =
  check Alcotest.(list int) "dedup" [ 3; 1; 2 ] (Listx.dedup_stable ( = ) [ 3; 1; 3; 2; 1 ])

(* ---- Heap ------------------------------------------------------------------- *)

let qcheck_heap_drains_sorted =
  qtest "heap pops in descending order" QCheck.(list int) (fun l ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) l;
      if Heap.length h <> List.length l then false
      else begin
        let rec drain acc =
          match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
        in
        drain [] = List.sort (fun a b -> Int.compare b a) l && Heap.is_empty h
      end)

let test_heap_peek () =
  let h = Heap.create ~cmp:Int.compare in
  check Alcotest.(option int) "empty peek" None (Heap.peek h);
  List.iter (Heap.push h) [ 3; 9; 1 ];
  check Alcotest.(option int) "peek max" (Some 9) (Heap.peek h);
  check Alcotest.int "peek does not pop" 3 (Heap.length h)

let qcheck_take_length =
  qtest "take length" QCheck.(pair small_nat (list int)) (fun (n, l) ->
      List.length (Listx.take n l) = min n (List.length l))

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng categorical" `Quick test_rng_categorical;
    Alcotest.test_case "rng categorical non-finite total" `Quick
      test_rng_categorical_nonfinite_total;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    qcheck_sample_indices;
    qcheck_weighted_sample_indices;
    Alcotest.test_case "weighted sample prefers heavy" `Quick test_weighted_sample_prefers_heavy;
    Alcotest.test_case "scc simple cycle" `Quick test_scc_simple_cycle;
    Alcotest.test_case "scc topological order" `Quick test_scc_topological_order;
    Alcotest.test_case "scc self loop" `Quick test_scc_self_loop;
    qcheck_scc_partition;
    Alcotest.test_case "take/drop" `Quick test_take_drop;
    Alcotest.test_case "cartesian" `Quick test_cartesian;
    Alcotest.test_case "subsets" `Quick test_subsets;
    Alcotest.test_case "group_by" `Quick test_group_by;
    Alcotest.test_case "top_k_by" `Quick test_top_k_by;
    Alcotest.test_case "top_k_by nan/ties/one-score-per-element" `Quick test_top_k_by_nan_and_ties;
    Alcotest.test_case "dedup_stable" `Quick test_dedup_stable;
    qcheck_heap_drains_sorted;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    qcheck_take_length;
  ]
