(** Property tests for the columnar executor's building blocks (qcheck):
    dictionary-encoding round-trip, sorted-run merge ≡ [Tuple.Map.union],
    and every batch operator differentially against its tuple-at-a-time
    tree-walker reference on random relations with random provenance tags,
    under boolean, minmaxprob and topkproofs-3.

    Operator comparisons are bit-exact: same tuples, same emission order,
    and tags equal through [P.recover] (for topkproofs that is the full
    weighted model count of the proof formula). *)

open Scallop_core

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---- column encodings -------------------------------------------------------- *)

(* Mixed-type pools force dictionary encoding; uniform pools exercise the
   flat int/float fast paths.  Probabilities land on representable floats
   and on signed zeros to probe comparison edge cases. *)
let value_gen : Value.t QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Value.int Value.I32 n) (int_range (-5) 5);
        map (fun n -> Value.int Value.U8 n) (int_range 0 7);
        map (fun f -> Value.float Value.F64 f) (oneofl [ 0.0; -0.0; 0.25; 1.5; nan ]);
        map Value.bool bool;
        map Value.string (oneofl [ "a"; "b"; "cd"; "" ]);
      ])

let column_gen = QCheck.make QCheck.Gen.(list_size (int_bound 30) value_gen)

let col_roundtrip =
  qtest "pack/to_array round-trips any value column" column_gen (fun vs ->
      let arr = Array.of_list vs in
      let back = Column.to_array (Column.pack arr) in
      Array.length back = Array.length arr
      && Array.for_all2 (fun a b -> Value.compare a b = 0) arr back)

let col_cmp_consistent =
  qtest "cmp_across ≡ Value.compare under every encoding pair"
    (QCheck.pair column_gen column_gen)
    (fun (xs, ys) ->
      let xa = Array.of_list xs and ya = Array.of_list ys in
      let ca = Column.pack xa and cb = Column.pack ya in
      let ok = ref true in
      Array.iteri
        (fun i x ->
          Array.iteri
            (fun j y ->
              if Column.cmp_across ca cb i j <> Value.compare x y then ok := false)
            ya)
        xa;
      !ok)

(* ---- per-provenance differential harness ------------------------------------- *)

(* One random weighted EDB relation: arity-2 tuples over a small domain so
   joins, diffs and duplicate derivations actually collide. *)
let rel_gen =
  QCheck.make
    QCheck.Gen.(
      list_size (int_bound 12)
        (pair (pair (int_bound 4) (int_bound 4)) (float_range 0.05 0.95)))

let tup2 a b = Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ]

let tests_for (prov_name : string) (spec : Registry.spec) ~(rich_aggs : bool) :
    unit Alcotest.test_case list =
  let module P = (val Registry.create spec) in
  let module I = Interp.Make (P) in
  let module B = Batch_ops.Make (P) in
  let tag_prob t = Provenance.Output.prob (P.recover t) in
  let items_equal l r =
    List.length l = List.length r
    && List.for_all2
         (fun (ua, ta) (ub, tb) ->
           Tuple.compare ua ub = 0 && Float.equal (tag_prob ta) (tag_prob tb))
         l r
  in
  (* A fresh provenance instance per qcheck sample would be ideal, but
     topkproofs assigns fact variables statefully per instance — so both
     engines must read the *same* db built from one instance, which is
     exactly what the differential harness wants anyway. *)
  let db_of facts =
    List.fold_left
      (fun db (pred, l) ->
        List.fold_left
          (fun db ((a, b), p) ->
            let tag, _ = P.tag_of_input (Provenance.Input.prob p) in
            I.db_add_fact db pred (tup2 a b) tag)
          db l)
      I.empty_db facts
  in
  let map_of l =
    List.fold_left
      (fun m ((a, b), p) ->
        let tag, _ = P.tag_of_input (Provenance.Input.prob p) in
        Tuple.Map.update (tup2 a b)
          (fun cur -> Some (match cur with None -> tag | Some t -> P.add t tag))
          m)
      Tuple.Map.empty l
  in
  let merge_test =
    qtest
      (Fmt.str "%s: union_runs ≡ Tuple.Map.union" prov_name)
      (QCheck.pair rel_gen rel_gen)
      (fun (la, lb) ->
        let ma = map_of la and mb = map_of lb in
        let merged =
          B.union_runs (B.of_list (Tuple.Map.bindings ma)) (B.of_list (Tuple.Map.bindings mb))
        in
        let expect = Tuple.Map.union (fun _ o n -> Some (P.add o n)) ma mb in
        items_equal (B.to_list merged) (Tuple.Map.bindings expect))
  in
  let exprs =
    let open Ram in
    let a = Pred "a" and b = Pred "b" in
    let agg agg key_len group body = Aggregate { agg; key_len; arg_len = 0; group; body } in
    [
      ("select x!=y", Select (Binop (Foreign.Neq, Access 0, Access 1), a));
      ( "project swap/arith",
        Project ([ Access 1; Binop (Foreign.Add, Access 0, Const (Value.int Value.I32 1)) ], a)
      );
      ("union", Union (a, b));
      ("product", Product (a, b));
      ("diff", Diff (a, b));
      ("intersect", Intersect (a, b));
      ("join", Join { lkeys = [ 1 ]; rkeys = [ 0 ]; left = a; right = b });
      ("antijoin", Antijoin { lkeys = [ 0; 1 ]; rkeys = [ 0; 1 ]; left = a; right = b });
      ("one-overwrite", One_overwrite (Union (a, b)));
      ("zero-overwrite", Zero_overwrite a);
      ("count no-group", agg Count 0 No_group a);
      ("count implicit", agg Count 1 Implicit a);
      ("count domain", agg Count 1 (Domain (Project ([ Access 0 ], b))) a);
      ("exists no-group", agg Exists 0 No_group (Select (Binop (Foreign.Lt, Access 0, Access 1), a)));
      ("nested join-select", Select (Binop (Foreign.Leq, Access 0, Access 3),
                                     Join { lkeys = [ 1 ]; rkeys = [ 0 ]; left = a; right = Union (a, b) }))
    ]
    @
    if rich_aggs then
      [
        ("sum implicit", agg Sum 1 Implicit a);
        ("max implicit", agg Max 1 Implicit a);
        ("min domain", agg Min 1 (Domain (Project ([ Access 0 ], b))) a);
      ]
    else []
  in
  let op_test (ename, e) =
    qtest ~count:60
      (Fmt.str "%s: %s ≡ tree-walker" prov_name ename)
      (QCheck.pair rel_gen rel_gen)
      (fun (la, lb) ->
        let db = db_of [ ("a", la); ("b", lb) ] in
        let plan = Plan.of_expr e in
        let config = Interp.default_config () in
        let run f = try Ok (f ()) with Exec_error.Error err -> Error err in
        match
          ( run (fun () -> I.eval_plan config db plan),
            run (fun () -> I.eval_plan_columnar config db plan) )
        with
        | Ok reference, Ok columnar -> items_equal reference columnar
        | Error _, Error _ -> true (* both reject (e.g. unsupported negation) *)
        | _ -> false)
  in
  (merge_test :: List.map op_test exprs)

let suite =
  [ col_roundtrip; col_cmp_consistent ]
  @ tests_for "boolean" Registry.Boolean ~rich_aggs:true
  @ tests_for "minmaxprob" Registry.Max_min_prob ~rich_aggs:true
  @ tests_for "topkproofs-3" (Registry.Top_k_proofs 3) ~rich_aggs:false
