(** Replication failover smoke, run by [dune build @smoke]: kill the
    primary of a quorum-acknowledged primary/follower pair mid-stream,
    promote the follower, and no acknowledged update may be lost.

    The drill: an uninterrupted single-node run of 50 mixed
    assert/retract/query requests records the reference rows.  Then the
    same script runs against a primary shipping its WAL to a live
    follower process under [--repl-ack quorum] — every acknowledged
    update has therefore been applied and locally logged by the follower
    before the client saw its reply.  The primary is SIGKILLed after an
    acknowledged prefix; the follower (which first proves it refuses
    writes as a standby) is promoted by [repl promote] and takes the rest
    of the script.  Its final rows must be bit-identical to the
    reference.  Finally the promoted follower is itself SIGKILLed and
    restarted single-node on its own state dir: it must report the
    session recovered and serve the same rows again — replicated state is
    durable state.

    Exits nonzero on any divergence, missing reply, or unexpected server
    death. *)

let failures = ref 0
let fail fmt = Fmt.kstr (fun m -> incr failures; Fmt.epr "smoke: %s@." m) fmt

let open_line =
  "open s1 type edge(i32, i32);rel path(a, b) = edge(a, b);rel path(a, c) = path(a, b), \
   edge(b, c);query path"

(* the smoke_durability update mix: 50 deterministic mixed requests over a
   12-vertex edge set — mostly fresh asserts, retracts of live facts, and
   interleaved queries *)
let updates =
  let seed = ref 41 in
  let next m =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod m
  in
  let live = ref [] in
  List.init 50 (fun i ->
      if i mod 9 = 4 then "query s1"
      else if i mod 5 = 3 && !live <> [] then begin
        let j = next (List.length !live) in
        let a, b = List.nth !live j in
        live := List.filteri (fun k _ -> k <> j) !live;
        Printf.sprintf "retract s1 edge(%d, %d)" a b
      end
      else begin
        let rec fresh tries =
          let a = next 12 and b = next 12 in
          if (a <> b && not (List.mem (a, b) !live)) || tries > 20 then (a, b)
          else fresh (tries + 1)
        in
        let a, b = fresh 0 in
        live := (a, b) :: !live;
        Printf.sprintf "assert s1 edge(%d, %d)" a b
      end)

(* ---- process plumbing -------------------------------------------------------- *)

type proc = { pid : int; into : out_channel; from : in_channel }

let spawn extra_args =
  let in_read, in_write = Unix.pipe ~cloexec:true () in
  let out_read, out_write = Unix.pipe ~cloexec:true () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process "../bin/scallop.exe"
      (Array.append [| "scallop"; "serve"; "-p"; "boolean"; "--jobs"; "2" |] extra_args)
      in_read out_write devnull
  in
  Unix.close in_read;
  Unix.close out_write;
  Unix.close devnull;
  { pid; into = Unix.out_channel_of_descr in_write; from = Unix.in_channel_of_descr out_read }

let send p line =
  output_string p.into (line ^ "\n");
  flush p.into

let read_replies p n =
  let lines = ref [] and dones = ref 0 in
  (try
     while !dones < n do
       let line = input_line p.from in
       lines := line :: !lines;
       if String.length line >= 5 && String.sub line 0 5 = "done " then incr dones
     done
   with End_of_file -> fail "server died after %d/%d replies" !dones n);
  List.rev !lines

let finish p =
  close_out_noerr p.into;
  (try
     while true do
       ignore (input_line p.from)
     done
   with End_of_file -> ());
  close_in_noerr p.from;
  match Unix.waitpid [] p.pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "scallop serve exited %d" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> fail "scallop serve killed by signal %d" n

let sigkill p =
  close_out_noerr p.into;
  close_in_noerr p.from;
  Unix.kill p.pid Sys.sigkill;
  match Unix.waitpid [] p.pid with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _, st ->
      fail "expected SIGKILL death, got %s"
        (match st with
        | Unix.WEXITED n -> Printf.sprintf "exit %d" n
        | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
        | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n)

let rows_of lines n =
  let prefix = Printf.sprintf "out %d " n in
  let plen = String.length prefix in
  List.filter_map
    (fun l ->
      if String.length l >= plen && String.equal (String.sub l 0 plen) prefix then
        Some (String.sub l plen (String.length l - plen))
      else None)
    lines

let has l sub =
  let n = String.length l and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub l i m) sub || go (i + 1)) in
  go 0

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let scratch name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scallop-smoke-replication-%d-%s" (Unix.getpid ()) name)
  in
  rm_rf d;
  d

let () =
  (* ---- uninterrupted single-node reference run ------------------------------- *)
  let dir_o = scratch "oracle" in
  let p = spawn [| "--state-dir"; dir_o |] in
  send p open_line;
  List.iter (send p) updates;
  send p "query s1";
  let final_n = 1 + List.length updates in
  let lines = read_replies p (final_n + 1) in
  let reference = rows_of lines final_n in
  finish p;
  if reference = [] then fail "reference run produced no rows";

  (* ---- replicated run: quorum-acked primary + live follower ------------------ *)
  let ship = scratch "ship" in
  let dir_p = scratch "primary" in
  let dir_f = scratch "follower" in
  let prim =
    spawn
      [|
        "--state-dir"; dir_p; "--repl-ship"; ship; "--repl-id"; "alpha"; "--repl-ack";
        "quorum"; "--repl-followers"; "1";
      |]
  in
  let fol =
    spawn [| "--state-dir"; dir_f; "--repl-follow"; ship; "--repl-id"; "beta" |]
  in
  let cut = 23 in
  let prefix = List.filteri (fun i _ -> i < cut) updates in
  let rest = List.filteri (fun i _ -> i >= cut) updates in
  send prim open_line;
  List.iter (send prim) prefix;
  ignore (read_replies prim (1 + cut));
  (* every reply above was quorum-acked: the follower has applied and
     locally logged each of them.  Kill the primary without mercy. *)
  sigkill prim;

  (* a standby must refuse writes with a typed reply, not apply them *)
  send fol "assert s1 edge(0, 11)";
  (match read_replies fol 1 with
  | [ reply ] when has reply "error" && has reply "standby" -> ()
  | replies ->
      fail "standby write should be refused with a typed error, got %s"
        (String.concat " | " replies));

  (* ---- supervised failover ---------------------------------------------------- *)
  send fol "repl promote";
  (match read_replies fol 1 with
  | [ reply ] when has reply "ok promoted epoch=" -> ()
  | replies ->
      fail "promotion should reply 'ok promoted epoch=N', got %s"
        (String.concat " | " replies));
  List.iter (send fol) rest;
  send fol "query s1";
  (* requests number from 0 on each connection: the refused write was 0,
     the promote 1, the rest 2.., so the final query is request 2+|rest| *)
  let final_fn = 2 + List.length rest in
  let lines_f = read_replies fol (List.length rest + 1) in
  let promoted_rows = rows_of lines_f final_fn in
  if List.length promoted_rows <> List.length reference then
    fail "row count diverged after failover: %d vs %d" (List.length promoted_rows)
      (List.length reference)
  else
    List.iter2
      (fun a b -> if not (String.equal a b) then fail "row diverged after failover: %S vs %S" a b)
      promoted_rows reference;

  (* ---- replicated state is durable state -------------------------------------- *)
  sigkill fol;
  let p2 = spawn [| "--state-dir"; dir_f |] in
  send p2 "stats";
  send p2 "query s1";
  let lines2 = read_replies p2 2 in
  (match List.find_opt (fun l -> has l "durability" && has l " recovered=1") lines2 with
  | Some _ -> ()
  | None -> fail "restarted follower does not report the session as recovered");
  let recovered_rows = rows_of lines2 1 in
  if recovered_rows <> reference then
    fail "restarted follower rows diverged from the reference";
  finish p2;

  rm_rf dir_o;
  rm_rf ship;
  rm_rf dir_p;
  rm_rf dir_f;
  if !failures > 0 then exit 1;
  Fmt.pr
    "smoke: follower promoted after SIGKILLing a quorum-acked primary at update %d; %d \
     final rows bit-identical to the uninterrupted run, and identical again after the \
     promoted node itself was killed and recovered@."
    cut (List.length reference)
