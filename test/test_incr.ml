(** Incremental view maintenance ({!Scallop_incr.Incr}): bit-identity of
    stateful sessions against the cold-run differential oracle, maintenance
    strategy selection, plan-cache sharing, and protocol errors. *)

open Scallop_core
module Incr = Scallop_incr.Incr

let tc_src =
  "type edge(i32, i32)\n\
   rel path(a, b) = edge(a, b)\n\
   rel path(a, c) = path(a, b), edge(b, c)\n\
   query path"

let i32 n = Value.int Value.I32 n
let pair a b = Tuple.of_list [ i32 a; i32 b ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

(* Bit-exact equality of results: same relations, same tuples, same output
   arms, floats compared with Float.equal (no tolerance). *)
let output_equal (a : Provenance.Output.t) (b : Provenance.Output.t) =
  match (a, b) with
  | Provenance.Output.O_unit, Provenance.Output.O_unit -> true
  | O_bool x, O_bool y -> Bool.equal x y
  | O_nat x, O_nat y -> Int.equal x y
  | O_prob x, O_prob y -> Float.equal x y
  | a, b -> a = b

let results_equal (a : Session.result) (b : Session.result) =
  List.length a.Session.outputs = List.length b.Session.outputs
  && List.for_all2
       (fun (pa, la) (pb, lb) ->
         String.equal pa pb
         && List.length la = List.length lb
         && List.for_all2
              (fun (ta, oa) (tb, ob) -> Tuple.compare ta tb = 0 && output_equal oa ob)
              la lb)
       a.Session.outputs b.Session.outputs

(* Every query must be bit-identical to a cold run on the same EDB. *)
let check_oracle what t =
  let incr = Incr.query t in
  let cold = Incr.run_cold t in
  if not (results_equal incr cold) then
    Alcotest.failf "%s: incremental result diverges from cold run" what

let invalid_input_of f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_input"
  | exception Session.Error (Exec_error.Invalid_input _ as e) -> Session.error_string e
  | exception Session.Error e ->
      Alcotest.failf "expected Invalid_input, got %s" (Session.error_string e)

(* ---- exact engine: additions ----------------------------------------------- *)

let test_tc_additive_boolean () =
  let t = Incr.open_session ~spec:Registry.Boolean tc_src in
  Alcotest.(check bool) "boolean sessions use the exact engine" true (Incr.is_exact t);
  check_oracle "empty EDB" t;
  List.iteri
    (fun i (a, b) ->
      Incr.assert_fact t ~pred:"edge" (pair a b);
      check_oracle (Fmt.str "after edge %d" i) t)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 2) ];
  let s = Incr.stats t in
  Alcotest.(check int) "one full evaluation" 1 s.Incr.full_runs;
  Alcotest.(check bool) "delta continuations happened" true (s.Incr.strata_continued > 0)

let test_tc_additive_minmaxprob () =
  let t = Incr.open_session ~spec:Registry.Max_min_prob tc_src in
  Incr.assert_fact t ~pred:"edge" ~prob:0.9 (pair 0 1);
  Incr.assert_fact t ~pred:"edge" ~prob:0.8 (pair 1 2);
  check_oracle "initial" t;
  Incr.assert_fact t ~pred:"edge" ~prob:0.7 (pair 2 0);
  check_oracle "after closing the cycle" t;
  (* pure tag increase: still the additive fast path *)
  Incr.assert_fact t ~pred:"edge" ~prob:0.95 (pair 1 2);
  check_oracle "after prob raise" t;
  let s = Incr.stats t in
  Alcotest.(check int) "raises never recompute" 0 s.Incr.strata_recomputed

(* ---- exact engine: retractions and weakenings ------------------------------- *)

let test_tc_retract () =
  let t = Incr.open_session ~spec:Registry.Max_min_prob tc_src in
  List.iter
    (fun (a, b, p) -> Incr.assert_fact t ~pred:"edge" ~prob:p (pair a b))
    [ (0, 1, 0.9); (1, 2, 0.8); (2, 3, 0.7); (3, 0, 0.6) ];
  check_oracle "initial cycle" t;
  Incr.retract_fact t ~pred:"edge" (pair 1 2);
  check_oracle "after retract" t;
  (* tag decrease: delete-rederive, still oracle-identical *)
  Incr.assert_fact t ~pred:"edge" ~prob:0.5 (pair 0 1);
  check_oracle "after prob lowering" t;
  let s = Incr.stats t in
  Alcotest.(check bool) "retractions recompute" true (s.Incr.strata_recomputed > 0)

let test_retract_then_reassert () =
  let t = Incr.open_session ~spec:Registry.Boolean tc_src in
  Incr.assert_fact t ~pred:"edge" (pair 0 1);
  check_oracle "one edge" t;
  (* retract + re-assert between queries nets out to no change *)
  Incr.retract_fact t ~pred:"edge" (pair 0 1);
  Incr.assert_fact t ~pred:"edge" (pair 0 1);
  check_oracle "net no-op batch" t;
  Incr.retract_fact t ~pred:"edge" (pair 0 1);
  check_oracle "empty again" t

(* ---- exact engine: non-monotone readers and head overlays ------------------- *)

let test_negation_reader () =
  let src =
    "type e(i32, i32)\n\
     type f(i32, i32)\n\
     rel keep(x, y) = e(x, y), not f(x, y)\n\
     query keep"
  in
  let t = Incr.open_session ~spec:Registry.Boolean src in
  Incr.assert_fact t ~pred:"e" (pair 0 1);
  Incr.assert_fact t ~pred:"e" (pair 1 2);
  check_oracle "before negative fact" t;
  (* f is read under negation: additions to it are non-monotone *)
  Incr.assert_fact t ~pred:"f" (pair 0 1);
  check_oracle "after negative fact" t;
  Incr.retract_fact t ~pred:"f" (pair 0 1);
  check_oracle "after negative retraction" t

let test_aggregate_reader () =
  let src =
    "type e(i32, i32)\nrel total(n) = n := count(x, y: e(x, y))\nquery total"
  in
  let t = Incr.open_session ~spec:Registry.Boolean src in
  Incr.assert_fact t ~pred:"e" (pair 0 1);
  check_oracle "count 1" t;
  Incr.assert_fact t ~pred:"e" (pair 1 2);
  check_oracle "count 2" t;
  Incr.retract_fact t ~pred:"e" (pair 0 1);
  check_oracle "count 1 again" t

let test_assert_into_idb_head () =
  (* asserting directly into a predicate that also has rules changes the
     base relation its stratum ⊕-merges into *)
  let t = Incr.open_session ~spec:Registry.Boolean tc_src in
  Incr.assert_fact t ~pred:"edge" (pair 0 1);
  check_oracle "edge only" t;
  Incr.assert_fact t ~pred:"path" (pair 7 8);
  check_oracle "extra path fact" t;
  Incr.retract_fact t ~pred:"path" (pair 7 8);
  check_oracle "path fact retracted" t

let test_static_and_dynamic_overlap () =
  (* static program facts ⊕-merge with overlay facts on the same tuple *)
  let src =
    "type edge(i32, i32)\n\
     rel edge = {0.40::(0, 1), 0.90::(1, 2)}\n\
     rel path(a, b) = edge(a, b)\n\
     rel path(a, c) = path(a, b), edge(b, c)\n\
     query path"
  in
  let t = Incr.open_session ~spec:Registry.Max_min_prob src in
  check_oracle "static only" t;
  Incr.assert_fact t ~pred:"edge" ~prob:0.8 (pair 0 1);
  check_oracle "overlay raises a static fact" t;
  Incr.retract_fact t ~pred:"edge" (pair 0 1);
  check_oracle "back to the static tag" t;
  (* the static fact itself is not retractable: it was never asserted *)
  let msg = invalid_input_of (fun () -> Incr.retract_fact t ~pred:"edge" (pair 1 2)) in
  Alcotest.(check bool) "mentions never asserted" true
    (contains msg "never asserted")

(* ---- stratum reuse ----------------------------------------------------------- *)

let test_stratum_reuse () =
  let src =
    "type e0(i32, i32)\n\
     type e1(i32, i32)\n\
     rel a(x, y) = e0(x, y)\n\
     rel b(x, y) = e1(x, y)\n\
     query a\n\
     query b"
  in
  let t = Incr.open_session ~spec:Registry.Boolean src in
  Incr.assert_fact t ~pred:"e0" (pair 0 1);
  Incr.assert_fact t ~pred:"e1" (pair 2 3);
  check_oracle "initial" t;
  let before = (Incr.stats t).Incr.strata_reused in
  Incr.assert_fact t ~pred:"e1" (pair 3 4);
  check_oracle "only e1 changed" t;
  let after = (Incr.stats t).Incr.strata_reused in
  Alcotest.(check bool) "the e0 stratum was reused" true (after > before)

(* ---- recompute engine -------------------------------------------------------- *)

let test_recompute_topkproofs () =
  let t = Incr.open_session ~spec:(Registry.Top_k_proofs 3) tc_src in
  Alcotest.(check bool) "proof provenances recompute" false (Incr.is_exact t);
  List.iter
    (fun (a, b, p) -> Incr.assert_fact t ~pred:"edge" ~prob:p (pair a b))
    [ (0, 1, 0.9); (1, 2, 0.8); (2, 0, 0.7); (0, 2, 0.6) ];
  check_oracle "initial" t;
  Incr.retract_fact t ~pred:"edge" (pair 2 0);
  check_oracle "after retract" t;
  Incr.assert_fact t ~pred:"edge" ~prob:0.95 (pair 2 3);
  check_oracle "after growth" t;
  (* a clean repeat query is served from the cached result *)
  let full_before = (Incr.stats t).Incr.full_runs in
  let r1 = Incr.query t in
  let r2 = Incr.query t in
  Alcotest.(check bool) "repeat query identical" true (results_equal r1 r2);
  Alcotest.(check int) "repeat query did not re-run" 0
    ((Incr.stats t).Incr.full_runs - full_before)

(* ---- budget aborts leave state intact ----------------------------------------- *)

let test_budget_abort_keeps_pending () =
  let t = Incr.open_session ~spec:Registry.Boolean tc_src in
  for i = 0 to 10 do
    Incr.assert_fact t ~pred:"edge" (pair i (i + 1))
  done;
  (match Incr.query ~budget:(Budget.make ~max_iterations:1 ()) t with
  | _ -> Alcotest.fail "expected a budget abort"
  | exception Session.Error (Exec_error.Budget_exceeded _) -> ());
  (* the changelog survived the abort: the retry folds everything in *)
  check_oracle "after retry" t

(* ---- protocol errors ----------------------------------------------------------- *)

let test_retract_never_asserted () =
  let t = Incr.open_session ~spec:Registry.Boolean tc_src in
  let msg = invalid_input_of (fun () -> Incr.retract_fact t ~pred:"edge" (pair 4 5)) in
  Alcotest.(check bool) "names the fact" true
    (contains msg "never asserted")

let test_closed_session () =
  let t = Incr.open_session ~spec:Registry.Boolean tc_src in
  Incr.close t;
  Alcotest.(check bool) "reports closed" true (Incr.is_closed t);
  ignore (invalid_input_of (fun () -> Incr.query t));
  ignore (invalid_input_of (fun () -> Incr.assert_fact t ~pred:"edge" (pair 0 1)));
  ignore (invalid_input_of (fun () -> Incr.close t))

let test_unknown_relation () =
  let t = Incr.open_session ~spec:Registry.Boolean tc_src in
  ignore (invalid_input_of (fun () -> Incr.assert_fact t ~pred:"nope" (pair 0 1)))

let test_hash_mismatch () =
  let msg =
    invalid_input_of (fun () ->
        Incr.open_session ~spec:Registry.Boolean ~expect_hash:"deadbeefdeadbeef" tc_src)
  in
  Alcotest.(check bool) "mentions hash mismatch" true
    (contains msg "hash mismatch")

(* ---- shared plan cache ---------------------------------------------------------- *)

let test_plan_sharing () =
  Session.clear_plan_cache ();
  let t1 = Incr.open_session ~spec:Registry.Boolean tc_src in
  let t2 = Incr.open_session ~spec:Registry.Max_min_prob tc_src in
  Alcotest.(check string) "same program hash" (Incr.program_hash t1) (Incr.program_hash t2);
  let s = Session.plan_cache_stats () in
  Alcotest.(check int) "one cached plan" 1 s.Session.entries;
  Alcotest.(check bool) "second open hit the cache" true (s.Session.hits >= 1);
  (* tenants are isolated: t1's facts never leak into t2 *)
  Incr.assert_fact t1 ~pred:"edge" (pair 0 1);
  check_oracle "tenant 1" t1;
  check_oracle "tenant 2 still empty" t2;
  let r2 = Incr.query t2 in
  Alcotest.(check int) "tenant 2 sees no tuples" 0
    (List.length (List.assoc "path" r2.Session.outputs))

let suite =
  [
    Alcotest.test_case "tc additive boolean" `Quick test_tc_additive_boolean;
    Alcotest.test_case "tc additive minmaxprob" `Quick test_tc_additive_minmaxprob;
    Alcotest.test_case "tc retract" `Quick test_tc_retract;
    Alcotest.test_case "retract then re-assert" `Quick test_retract_then_reassert;
    Alcotest.test_case "negation reader" `Quick test_negation_reader;
    Alcotest.test_case "aggregate reader" `Quick test_aggregate_reader;
    Alcotest.test_case "assert into idb head" `Quick test_assert_into_idb_head;
    Alcotest.test_case "static and dynamic overlap" `Quick test_static_and_dynamic_overlap;
    Alcotest.test_case "stratum reuse" `Quick test_stratum_reuse;
    Alcotest.test_case "recompute topkproofs" `Quick test_recompute_topkproofs;
    Alcotest.test_case "budget abort keeps pending" `Quick test_budget_abort_keeps_pending;
    Alcotest.test_case "retract never asserted" `Quick test_retract_never_asserted;
    Alcotest.test_case "closed session" `Quick test_closed_session;
    Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
    Alcotest.test_case "hash mismatch" `Quick test_hash_mismatch;
    Alcotest.test_case "plan sharing" `Quick test_plan_sharing;
  ]
