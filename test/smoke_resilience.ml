(** Smoke check for the fault-tolerant training runtime (the @smoke alias):

    1. train a small MLP for 20 optimizer steps straight through;
    2. re-train with checkpointing, kill the run after step 7, resume, and
       require the final parameters to be bit-identical to the straight run;
    3. corrupt the newest snapshot and require resume to fall back to an
       older valid generation — and still reproduce the same parameters.

    Exits nonzero on any violation. *)

open Scallop_tensor
open Scallop_nn
open Scallop_apps
module Rng = Scallop_utils.Rng
module Atomic_io = Scallop_utils.Atomic_io

let failures = ref 0

let require name ok =
  if ok then Fmt.pr "  ok: %s@." name
  else begin
    incr failures;
    Fmt.epr "  FAILED: %s@." name
  end

(* 10 samples x 2 epochs = 20 optimizer steps *)
let synth_data =
  let rng = Rng.create 2026 in
  List.init 10 (fun _ ->
      let x = Nd.init [| 1; 8 |] (fun _ -> Rng.float rng) in
      (x, Rng.int rng 4))

let config =
  { Common.default_config with Common.epochs = 2; n_train = List.length synth_data; n_test = 0 }

let make () =
  let rng = Rng.create 7 in
  let mlp = Layers.Mlp.create rng [ 8; 16; 4 ] in
  let opt = Optim.adam ~lr:0.01 (Layers.Mlp.params mlp) in
  (mlp, opt)

let run ?checkpoint ?crash_at (mlp, opt) =
  let steps = ref 0 in
  ignore
    (Common.run_task ?checkpoint ~task:"smoke" ~config ~train_data:synth_data ~test_data:[]
       ~opt
       ~train_step:(fun (x, c) ->
         (match crash_at with
         | Some n ->
             incr steps;
             if !steps > n then raise Exit
         | None -> ());
         Common.bce
           (Layers.Mlp.classify mlp (Autodiff.const x))
           (Autodiff.const (Common.one_hot 4 c)))
       ~eval_sample:(fun _ -> true)
       ())

let params_blob (mlp, _) =
  String.concat ""
    (List.map
       (fun (p : Autodiff.t) -> Serialize.nd_to_string p.Autodiff.value)
       (Layers.Mlp.params mlp))

let () =
  Fmt.pr "smoke: crash-resume determinism (20 steps, kill at 7)@.";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scallop-smoke-resilience-%d" (Unix.getpid ()))
  in
  Atomic_io.clear ~dir;
  let ck = { (Common.checkpoint dir) with Common.every_n_steps = 2 } in
  let straight = make () in
  run straight;
  let reference = params_blob straight in
  let crashed = make () in
  (try
     run ~checkpoint:ck ~crash_at:7 crashed;
     require "injected crash fired" false
   with Exit -> ());
  let resumed = make () in
  run ~checkpoint:ck resumed;
  require "resumed params bit-identical to uninterrupted run"
    (String.equal (params_blob resumed) reference);
  (* corrupt the newest snapshot: resume must fall back, then still converge *)
  Atomic_io.clear ~dir;
  let crashed2 = make () in
  (try run ~checkpoint:ck ~crash_at:12 crashed2 with Exit -> ());
  let resume_steps () =
    let _, opt = make () in
    match Common.try_resume ~ck ~opt ~rngs:[] with Some (s, _, _) -> s | None -> 0
  in
  let before = resume_steps () in
  (match List.rev (Atomic_io.generations ~dir) with
  | newest :: _ ->
      let path = Atomic_io.path_of ~dir newest in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = Bytes.of_string (really_input_string ic len) in
      close_in ic;
      Bytes.set body (len - 1) (Char.chr (Char.code (Bytes.get body (len - 1)) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc body;
      close_out oc
  | [] -> require "snapshots exist on disk" false);
  let after = resume_steps () in
  require "corrupt snapshot falls back to an older generation" (after > 0 && after < before);
  let resumed2 = make () in
  run ~checkpoint:ck resumed2;
  require "post-fallback params bit-identical to uninterrupted run"
    (String.equal (params_blob resumed2) reference);
  Atomic_io.clear ~dir;
  if !failures > 0 then exit 1
