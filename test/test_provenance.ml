(** Property-based tests of the provenance algebra (paper Sec. 4.1): each
    built-in provenance must form a commutative semiring with absorption
    (where applicable), 0/1 behaviour of ⊖, and a coherent external
    interface.  Laws are checked up to the provenance's own notion of
    saturation-equality where exact equality is too strong (top-k formulas
    are compared by WMC). *)

open Scallop_core

(* A tag generator: random tags built from inputs and operations, so the
   laws are exercised on reachable tags, not arbitrary ones. *)
let random_tag (type t) (module P : Provenance.S with type t = t) rng depth : t =
  let rec go depth =
    if depth = 0 then
      match Scallop_utils.Rng.int rng 4 with
      | 0 -> P.zero
      | 1 -> P.one
      | _ -> fst (P.tag_of_input (Provenance.Input.prob (Scallop_utils.Rng.float rng)))
    else
      match Scallop_utils.Rng.int rng 3 with
      | 0 -> P.add (go (depth - 1)) (go (depth - 1))
      | 1 -> P.mult (go (depth - 1)) (go (depth - 1))
      | _ -> (
          match P.negate (go (depth - 1)) with Some t -> t | None -> go (depth - 1))
  in
  go depth

let tag_equal (type t) (module P : Provenance.S with type t = t) (a : t) (b : t) =
  (* probability-level equality through ρ: the observable behaviour *)
  Float.abs (Provenance.Output.prob (P.recover a) -. Provenance.Output.prob (P.recover b))
  < 1e-9

type law =
  | Comm_add
  | Comm_mult
  | Assoc_add
  | Assoc_mult
  | Add_identity
  | Mult_identity
  | Annihilation
  | Negate_01
  | Saturate_01
  | Absorption
  | Distributivity

let law_name = function
  | Comm_add -> "⊕ commutative"
  | Comm_mult -> "⊗ commutative"
  | Assoc_add -> "⊕ associative"
  | Assoc_mult -> "⊗ associative"
  | Add_identity -> "0 additive identity"
  | Mult_identity -> "1 multiplicative identity"
  | Annihilation -> "0 annihilates"
  | Negate_01 -> "⊖0 = 1 and ⊖1 = 0"
  | Saturate_01 -> "0 and 1 saturate themselves"
  | Absorption -> "absorption t1 ⊕ (t1 ⊗ t2) = t1"
  | Distributivity -> "⊗ distributes over ⊕"

(* Check the law on fresh random tags; the local abstract type keeps the
   first-class module's tag type from escaping. *)
let holds (type t) (module P : Provenance.S with type t = t) rng law =
  let eq = tag_equal (module P) in
  let a = random_tag (module P) rng 2 in
  let b = random_tag (module P) rng 2 in
  let c = random_tag (module P) rng 1 in
  match law with
  | Comm_add -> eq (P.add a b) (P.add b a)
  | Comm_mult -> eq (P.mult a b) (P.mult b a)
  | Assoc_add -> eq (P.add a (P.add b c)) (P.add (P.add a b) c)
  | Assoc_mult -> eq (P.mult a (P.mult b c)) (P.mult (P.mult a b) c)
  | Add_identity -> eq (P.add a P.zero) a
  | Mult_identity -> eq (P.mult a P.one) a
  | Annihilation -> eq (P.mult a P.zero) P.zero
  | Negate_01 -> (
      match (P.negate P.zero, P.negate P.one) with
      | Some nz, Some no -> eq nz P.one && eq no P.zero
      | _ -> true)
  | Saturate_01 -> P.saturated ~old:P.zero P.zero && P.saturated ~old:P.one P.one
  | Absorption -> eq (P.add a (P.mult a b)) a
  | Distributivity -> eq (P.mult a (P.add b c)) (P.add (P.mult a b) (P.mult a c))

let law_case name spec law =
  Alcotest.test_case (name ^ ": " ^ law_name law) `Quick (fun () ->
      let (module P) = Registry.create spec in
      let rng = Scallop_utils.Rng.create 17 in
      for _ = 1 to 50 do
        if not (holds (module P) rng law) then
          Alcotest.failf "%s violated for %s" (law_name law) name
      done)

let law_suite name (spec : Registry.spec) ~absorptive =
  List.map (law_case name spec)
    ([
       Comm_add; Comm_mult; Assoc_add; Assoc_mult; Add_identity; Mult_identity;
       Annihilation; Negate_01; Saturate_01;
     ]
    @ if absorptive then [ Absorption ] else [])

let distributivity name spec = law_case name spec Distributivity

let test_external_interface () =
  List.iter
    (fun name ->
      match Registry.of_string name with
      | None -> Alcotest.failf "registry does not know %s" name
      | Some (module P) ->
          (* untagged inputs recover as (near-)certain *)
          let t, _ = P.tag_of_input Provenance.Input.none in
          let p = Provenance.Output.prob (P.recover t) in
          if p < 0.99 then Alcotest.failf "%s: untagged input recovers %f" name p)
    Registry.all_names

let test_diff_allocates_ids () =
  let (module P) = Registry.create (Registry.Diff_top_k_proofs 3) in
  let _, id1 = P.tag_of_input (Provenance.Input.prob 0.5) in
  let _, id2 = P.tag_of_input (Provenance.Input.prob 0.6) in
  match (id1, id2) with
  | Some a, Some b when a <> b -> ()
  | _ -> Alcotest.fail "differentiable provenance must allocate distinct variable ids"

let test_fresh_instances_independent () =
  let (module P1) = Registry.create (Registry.Diff_top_k_proofs 3) in
  let (module P2) = Registry.create (Registry.Diff_top_k_proofs 3) in
  let _, id1 = P1.tag_of_input (Provenance.Input.prob 0.5) in
  let _, id2 = P2.tag_of_input (Provenance.Input.prob 0.5) in
  Alcotest.(check (option int)) "both start at 0" id1 id2

let test_spec_of_string () =
  List.iter
    (fun (s, expected) ->
      match Registry.spec_of_string s with
      | Some spec ->
          Alcotest.(check string) s expected (Provenance.name (Registry.create spec))
      | None -> Alcotest.failf "cannot parse %s" s)
    [
      ("minmaxprob", "minmaxprob");
      ("dtkp-5", "difftopkproofs-5");
      ("difftopkproofsme-3", "difftopkproofsme-3");
      ("topkproofs-7", "topkproofs-7");
      ("dpl", "exactprobproofs");
      ("damp", "diffaddmultprob");
    ]

let suite =
  List.concat
    [
      law_suite "minmaxprob" Registry.Max_min_prob ~absorptive:true;
      law_suite "boolean" Registry.Boolean ~absorptive:true;
      (* k = 10 ≫ the proofs our depth-2 tags can accumulate, so the laws
         hold exactly; truncation at small k trades them for efficiency
         (paper Sec. 4.5.3). *)
      law_suite "topkproofs-10" (Registry.Top_k_proofs 10) ~absorptive:true;
      law_suite "difftopkproofs-10" (Registry.Diff_top_k_proofs 10) ~absorptive:true;
      law_suite "diffminmaxprob" Registry.Diff_max_min_prob ~absorptive:true;
      law_suite "diffaddmultprob" Registry.Diff_add_mult_prob ~absorptive:false;
      law_suite "diffnandmultprob" Registry.Diff_nand_mult_prob ~absorptive:false;
      [ distributivity "minmaxprob" Registry.Max_min_prob ];
      [ distributivity "boolean" Registry.Boolean ];
      [
        Alcotest.test_case "external interface" `Quick test_external_interface;
        Alcotest.test_case "diff provenances allocate ids" `Quick test_diff_allocates_ids;
        Alcotest.test_case "fresh instances independent" `Quick test_fresh_instances_independent;
        Alcotest.test_case "spec_of_string" `Quick test_spec_of_string;
      ];
    ]

(* ---- every provenance executes the canonical programs ------------------------ *)

(* Recursion + negation + aggregation under every registered provenance:
   no crashes (or a clean "unsupported" error), probabilities within [0,1],
   and — for exact-capable provenances — agreement with exact inference. *)
let canonical_src =
  {|type edge(i32, i32), blocked(i32)
rel reach(0)
rel reach(y) = reach(x), edge(x, y), not blocked(y)
rel n_reached(n) = n := count(x: reach(x))
query reach
query n_reached|}

let canonical_facts =
  let e a b =
    Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ]
  in
  [
    ( "edge",
      [
        (Provenance.Input.prob 0.9, e 0 1);
        (Provenance.Input.prob 0.8, e 1 2);
        (Provenance.Input.prob 0.6, e 0 2);
        (Provenance.Input.prob 0.9, e 2 3);
      ] );
    ("blocked", [ (Provenance.Input.prob 0.3, Tuple.of_list [ Value.int Value.I32 2 ]) ]);
  ]

let run_canonical name =
  let provenance = Option.get (Registry.of_string name) in
  Session.interpret ~provenance ~facts:canonical_facts canonical_src

let test_all_provenances_execute () =
  List.iter
    (fun name ->
      match run_canonical name with
      | result ->
          List.iter
            (fun (_, rows) ->
              List.iter
                (fun (_, o) ->
                  let p = Provenance.Output.prob o in
                  if Float.is_nan p then Alcotest.failf "%s: NaN probability" name)
                rows)
            result.Session.outputs
      | exception Session.Error e ->
          (* natural tags legitimately diverge on recursive counting *)
          if name <> "natural" then
            Alcotest.failf "%s failed: %s" name (Session.error_string e))
    Registry.all_names

let test_formula_provenances_match_exact () =
  let reference = run_canonical "exactprobproofs" in
  let tuple_probs r =
    List.concat_map
      (fun (pred, rows) ->
        List.map (fun (t, o) -> ((pred, Tuple.to_string t), Provenance.Output.prob o)) rows)
      r.Session.outputs
  in
  let ref_probs = tuple_probs reference in
  List.iter
    (fun name ->
      let probs = tuple_probs (run_canonical name) in
      List.iter
        (fun (key, p_ref) ->
          match List.assoc_opt key probs with
          | Some p -> Alcotest.(check (float 1e-6)) (Fmt.str "%s %s" name (snd key)) p_ref p
          | None -> Alcotest.failf "%s: missing %s" name (snd key))
        ref_probs)
    (* k = 20 exceeds any proof count here, so these must be exact *)
    [ "topkproofs-20"; "difftopkproofs-20"; "diffexactprobproofs" ]

let test_prob_provenances_bounded () =
  List.iter
    (fun name ->
      let r = run_canonical name in
      List.iter
        (fun (_, rows) ->
          List.iter
            (fun (_, o) ->
              let p = Provenance.Output.prob o in
              if p < -1e-9 || p > 1.0 +. 1e-9 then
                Alcotest.failf "%s: probability %f out of range" name p)
            rows)
        r.Session.outputs)
    [ "minmaxprob"; "addmultprob"; "topkproofs-3"; "samplekproofs-3"; "diffminmaxprob";
      "diffaddmultprob"; "diffnandmultprob"; "difftopkproofs-3"; "diffsamplekproofs-3";
      "difftopbottomkclauses-3" ]

let suite =
  suite
  @ [
      Alcotest.test_case "all provenances execute" `Quick test_all_provenances_execute;
      Alcotest.test_case "formula provenances match exact" `Quick
        test_formula_provenances_match_exact;
      Alcotest.test_case "probabilities bounded" `Quick test_prob_provenances_bounded;
    ]
