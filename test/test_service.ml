(** The supervised inference service runtime ({!Scallop_serve.Service}):

    - {!Scallop_serve.Breaker} state machine on a manually driven clock
      (closed → open → half-open → closed, re-open on probe failure);
    - bit-identical equivalence of [Service.submit]/[await] with
      [Session.run_batch] when chaos is off (incl. samplers drawing from
      per-request RNG substreams);
    - admission control: bounded queue sheds with a typed [Overloaded];
    - watchdog supervision: chaos-killed workers are detected, respawned,
      and the in-flight request requeued against its retry budget, with
      [Worker_lost] only after that is exhausted (requeue-once semantics);
    - circuit breaker at the service level (injectable clock): consecutive
      budget faults open rung 0, requests skip straight to the cheaper
      rung, and a successful half-open probe restores fidelity;
    - transient retry with backoff (chaos NaN poisoning caught by the
      finiteness guardrail);
    - per-request deadline propagation (queue wait and stalls burn it);
    - shutdown with dead workers: every request still gets a terminal
      outcome and every spawned domain is joined (no leaks). *)

open Scallop_core
open Scallop_serve
module Rng = Scallop_utils.Rng

let check = Alcotest.check

(* ---- Breaker state machine (manual clock) ---------------------------------------- *)

let test_breaker_transitions () =
  let t = ref 0.0 in
  let b = Breaker.create ~threshold:3 ~cooldown:10.0 ~now:(fun () -> !t) () in
  check Alcotest.string "starts closed" "closed" (Breaker.state_name b);
  Alcotest.(check bool) "closed admits" true (Breaker.admit b);
  (* a success resets the consecutive-failure streak *)
  Breaker.record_failure b;
  Breaker.record_failure b;
  Breaker.record_success b;
  Breaker.record_failure b;
  Breaker.record_failure b;
  check Alcotest.string "streak broken: still closed" "closed" (Breaker.state_name b);
  Breaker.record_failure b;
  check Alcotest.string "3 consecutive failures open it" "open" (Breaker.state_name b);
  Alcotest.(check bool) "open refuses" false (Breaker.admit b);
  check Alcotest.int "one trip counted" 1 (Breaker.opens b);
  t := 9.9;
  Alcotest.(check bool) "still cooling down" false (Breaker.admit b);
  t := 10.0;
  Alcotest.(check bool) "cooldown over: half-open admits a probe" true (Breaker.admit b);
  check Alcotest.string "half-open" "half-open" (Breaker.state_name b);
  (* probe fails: re-open for a fresh cooldown *)
  Breaker.record_failure b;
  check Alcotest.string "probe failure re-opens" "open" (Breaker.state_name b);
  Alcotest.(check bool) "refusing again" false (Breaker.admit b);
  check Alcotest.int "second trip counted" 2 (Breaker.opens b);
  t := 20.5;
  Alcotest.(check bool) "half-open again" true (Breaker.admit b);
  (* probe succeeds: fidelity recovered *)
  Breaker.record_success b;
  check Alcotest.string "probe success closes" "closed" (Breaker.state_name b);
  Alcotest.(check bool) "closed admits again" true (Breaker.admit b)

(* ---- programs & request generators ----------------------------------------------- *)

let graph_src =
  {|type edge(i32, i32)
type node(i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
rel unreachable(b) = node(b), not path(0, b)
rel num_reached(n) = n := count(b: path(0, b))
query path
query unreachable
query num_reached|}

let sampler_src =
  {|type item(i32)
rel picked(x) = x := uniform<3>(i: item(i))
query picked|}

let nodes = 5

let graph_sample data_rng i =
  let rng = Rng.substream data_rng i in
  let edges = ref [] in
  for a = 0 to nodes - 1 do
    for b = 0 to nodes - 1 do
      if a <> b && Rng.float rng < 0.5 then
        edges :=
          ( Provenance.Input.prob (0.05 +. (0.9 *. Rng.float rng)),
            Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] )
          :: !edges
    done
  done;
  let node_facts =
    List.init nodes (fun v ->
        ( { Provenance.Input.prob = None; me_group = None },
          Tuple.of_list [ Value.int Value.I32 v ] ))
  in
  [ ("edge", List.rev !edges); ("node", node_facts) ]

let item_sample data_rng i =
  let rng = Rng.substream data_rng i in
  let items =
    List.init 5 (fun v ->
        ( Provenance.Input.prob (0.1 +. (0.8 *. Rng.float rng)),
          Tuple.of_list [ Value.int Value.I32 (v + (10 * i)) ] ))
  in
  [ ("item", items) ]

let trivial_src = "rel p = {(1, 2)}\nquery p"

let result_equal (a : Session.result) (b : Session.result) =
  Stdlib.compare a.Session.outputs b.Session.outputs = 0
  && Stdlib.compare a.Session.fact_ids b.Session.fact_ids = 0

(* ---- chaos off ≡ Session.run_batch ----------------------------------------------- *)

let check_equivalence ~name ~src ~make_sample ~spec =
  let compiled = Session.compile src in
  let data_rng = Rng.create 99 in
  let batch = Array.init 8 (fun i -> make_sample data_rng i) in
  let interp = { (Interp.default_config ()) with Interp.rng = Rng.create 7 } in
  let reference =
    Session.run_batch ~config:interp
      ~provenance_of:(fun _ -> Registry.create spec)
      compiled batch
  in
  let config =
    { (Service.default_config ()) with Service.jobs = 2; interp; watchdog_interval = None }
  in
  Service.with_service ~config spec (fun svc ->
      (* ticket ids are submission ordinals = batch indices *)
      let tickets = Array.map (fun facts -> Service.submit svc ~facts compiled) batch in
      Array.iteri
        (fun i ticket ->
          let o = Service.await svc ticket in
          check Alcotest.int (Fmt.str "%s: id %d" name i) i (Service.ticket_id ticket);
          Alcotest.(check bool) (Fmt.str "%s: %d not degraded" name i) false o.Service.degraded;
          match (o.Service.response, reference.(i)) with
          | Ok got, Ok expected ->
              if not (result_equal expected got) then
                Alcotest.failf "%s: request %d diverges from run_batch" name i
          | Error e, _ ->
              Alcotest.failf "%s: request %d failed: %s" name i (Session.error_string e)
          | _, Error e ->
              Alcotest.failf "%s: reference %d failed: %s" name i (Session.error_string e))
        tickets)

let test_equivalence_graph () =
  check_equivalence ~name:"graph" ~src:graph_src ~make_sample:graph_sample
    ~spec:(Registry.Top_k_proofs 3)

let test_equivalence_sampler () =
  check_equivalence ~name:"sampler" ~src:sampler_src ~make_sample:item_sample
    ~spec:Registry.Max_min_prob

(* ---- admission control ------------------------------------------------------------ *)

let test_admission_sheds () =
  let compiled = Session.compile trivial_src in
  let config =
    {
      (Service.default_config ()) with
      Service.jobs = 1;
      queue_depth = 2;
      watchdog_interval = None;
      chaos = { Chaos.none with Chaos.latency_prob = 1.0; latency = 0.15 };
    }
  in
  Service.with_service ~config Registry.Boolean (fun svc ->
      let tickets = Array.init 5 (fun _ -> Service.submit svc compiled) in
      let outcomes = Array.map (fun t -> Service.await svc t) tickets in
      let shed, served =
        Array.fold_left
          (fun (shed, served) (o : Service.outcome) ->
            match o.Service.response with
            | Error (Exec_error.Overloaded _) -> (shed + 1, served)
            | Ok _ -> (shed, served + 1)
            | Error e -> Alcotest.failf "unexpected error: %s" (Session.error_string e))
          (0, 0) outcomes
      in
      (* worker holds one, queue holds two: at least two of five are shed
         (exact counts depend on how fast the worker claims the first) *)
      if shed < 2 then Alcotest.failf "expected >= 2 shed, got %d" shed;
      check Alcotest.int "every request got exactly one terminal outcome" 5 (shed + served);
      let s = Service.stats svc in
      check Alcotest.int "shed counter" shed s.Service.shed;
      check Alcotest.int "completed counter" 5 s.Service.completed;
      (* a shed outcome is transient: a client may retry it *)
      Array.iter
        (fun (o : Service.outcome) ->
          match o.Service.response with
          | Error (Exec_error.Overloaded _ as e) ->
              Alcotest.(check bool) "Overloaded is transient" true (Exec_error.is_transient e)
          | _ -> ())
        outcomes)

(* ---- watchdog: kill, respawn, requeue-once --------------------------------------- *)

let test_watchdog_kill_respawn () =
  let compiled = Session.compile trivial_src in
  let config =
    {
      (Service.default_config ()) with
      Service.jobs = 1;
      max_retries = 2;
      watchdog_interval = Some 0.005;
      heartbeat_timeout = 0.2;
      lost_grace = 0.1;
      chaos = { Chaos.none with Chaos.kill_prob = 1.0 };
    }
  in
  let svc = Service.create ~config Registry.Boolean in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let t = Service.submit svc compiled in
      let o = Service.await svc t in
      (match o.Service.response with
      | Error (Exec_error.Worker_lost { attempts; _ } as e) ->
          check Alcotest.int "three attempts (1 + 2 retries)" 3 attempts;
          Alcotest.(check bool) "Worker_lost is transient" true (Exec_error.is_transient e)
      | Error e -> Alcotest.failf "wrong error: %s" (Session.error_string e)
      | Ok _ -> Alcotest.fail "request served despite kill_prob = 1");
      check Alcotest.int "requeued once per loss, against the retry budget" 2
        o.Service.requeues;
      let s = Service.stats svc in
      if s.Service.workers_lost < 3 then
        Alcotest.failf "expected 3 lost workers, got %d" s.Service.workers_lost;
      if s.Service.respawns < 3 then
        Alcotest.failf "expected 3 respawns, got %d" s.Service.respawns;
      (* the replacement worker serves once the chaos stops *)
      Service.set_chaos svc Chaos.none;
      let t2 = Service.submit svc compiled in
      match (Service.await svc t2).Service.response with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "respawned worker failed: %s" (Session.error_string e));
  let s = Service.stats svc in
  check Alcotest.int "every spawned domain was joined" s.Service.domains_spawned
    s.Service.domains_joined

(* ---- circuit breaker at the service level (injectable clock) --------------------- *)

let test_service_breaker_degrades_and_recovers () =
  let compiled = Session.compile trivial_src in
  let clock = ref 0.0 in
  let config =
    {
      (Service.default_config ()) with
      Service.jobs = 1;
      max_retries = 0;
      breaker_threshold = 2;
      breaker_cooldown = 10.0;
      watchdog_interval = None;
      now = (fun () -> !clock);
      chaos = { Chaos.none with Chaos.budget_fault_prob = 1.0 };
    }
  in
  (* ladder: topkproofs-1 → minmaxprob *)
  Service.with_service ~config (Registry.Top_k_proofs 1) (fun svc ->
      check
        Alcotest.(list string)
        "ladder has two rungs"
        [ "topkproofs-1"; "minmaxprob" ]
        (List.map Registry.spec_name (Service.ladder svc));
      let run () = Service.await svc (Service.submit svc compiled) in
      (* two requests: each fails at both rungs, opening both breakers *)
      let o1 = run () in
      check Alcotest.int "request 1 tried both rungs" 2 o1.Service.attempts;
      (match o1.Service.response with
      | Error (Exec_error.Budget_exceeded _) -> ()
      | _ -> Alcotest.fail "expected Budget_exceeded");
      let (_ : Service.outcome) = run () in
      check
        Alcotest.(list string)
        "both breakers open after 2 consecutive failures"
        [ "open"; "open" ]
        (Service.breaker_states svc);
      (* rung 0 is skipped without paying for the attempt; the last rung
         always serves (and still faults) *)
      let o3 = run () in
      check Alcotest.int "request 3 skipped the open rung" 1 o3.Service.attempts;
      check Alcotest.string "served at the cheap rung" "minmaxprob"
        (Registry.spec_name o3.Service.rung);
      Alcotest.(check bool) "degraded" true o3.Service.degraded;
      (* cooldown elapses on the injected clock; the half-open probe runs
         at full fidelity again and closes the breaker *)
      Service.set_chaos svc Chaos.none;
      clock := 11.0;
      let o4 = run () in
      (match o4.Service.response with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "probe failed: %s" (Session.error_string e));
      check Alcotest.string "full fidelity restored" "topkproofs-1"
        (Registry.spec_name o4.Service.rung);
      Alcotest.(check bool) "not degraded" false o4.Service.degraded;
      check Alcotest.string "rung-0 breaker closed again" "closed"
        (List.hd (Service.breaker_states svc));
      let s = Service.stats svc in
      if s.Service.breaker_opens < 2 then
        Alcotest.failf "expected >= 2 breaker opens, got %d" s.Service.breaker_opens)

(* ---- transient retry with backoff (NaN guardrail) -------------------------------- *)

let test_nan_retry_then_exhaust () =
  let compiled = Session.compile trivial_src in
  let config =
    {
      (Service.default_config ()) with
      Service.jobs = 1;
      max_retries = 2;
      backoff_base = 0.001;
      backoff_cap = 0.01;
      watchdog_interval = None;
      chaos = { Chaos.none with Chaos.nan_prob = 1.0 };
    }
  in
  Service.with_service ~config Registry.Max_min_prob (fun svc ->
      let o = Service.await svc (Service.submit svc compiled) in
      (match o.Service.response with
      | Error (Exec_error.Non_finite _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Session.error_string e)
      | Ok _ -> Alcotest.fail "poisoned result served");
      check Alcotest.int "three attempts" 3 o.Service.attempts;
      check Alcotest.int "two transient retries" 2 o.Service.retries;
      let s = Service.stats svc in
      check Alcotest.int "chaos nans counted" 3 s.Service.chaos_nans;
      (* without chaos the same request serves *)
      Service.set_chaos svc Chaos.none;
      match (Service.await svc (Service.submit svc compiled)).Service.response with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "clean request failed: %s" (Session.error_string e))

(* ---- deadline propagation --------------------------------------------------------- *)

let test_deadline_propagation () =
  let compiled = Session.compile trivial_src in
  let config =
    {
      (Service.default_config ()) with
      Service.jobs = 1;
      max_retries = 0;
      request_timeout = Some 0.1;
      watchdog_interval = None;
      chaos = { Chaos.none with Chaos.latency_prob = 1.0; latency = 0.25 };
    }
  in
  Service.with_service ~config Registry.Boolean (fun svc ->
      let t1 = Service.submit svc compiled in
      let t2 = Service.submit svc compiled in
      (* request 1: the stall burns its whole deadline before the run *)
      (match (Service.await svc t1).Service.response with
      | Error (Exec_error.Budget_exceeded { kind = Exec_error.Deadline; _ }) -> ()
      | Error e -> Alcotest.failf "request 1: wrong error: %s" (Session.error_string e)
      | Ok _ -> Alcotest.fail "request 1 served past its deadline");
      (* request 2: queue wait alone exceeded the deadline — rejected at the
         pre-attempt check, before any execution *)
      let o2 = Service.await svc t2 in
      (match o2.Service.response with
      | Error (Exec_error.Budget_exceeded { kind = Exec_error.Deadline; stratum = -1; _ }) -> ()
      | Error e -> Alcotest.failf "request 2: wrong error: %s" (Session.error_string e)
      | Ok _ -> Alcotest.fail "request 2 served past its deadline");
      check Alcotest.int "request 2 never executed" 0 o2.Service.attempts)

(* ---- shutdown with dead workers: no hangs, no leaks ------------------------------- *)

let test_shutdown_without_watchdog_fails_leftovers () =
  let compiled = Session.compile trivial_src in
  let config =
    {
      (Service.default_config ()) with
      Service.jobs = 1;
      watchdog_interval = None;
      (* no watchdog: a dead worker stays dead *)
      chaos = { Chaos.none with Chaos.kill_prob = 1.0 };
    }
  in
  let svc = Service.create ~config Registry.Boolean in
  let t1 = Service.submit svc compiled in
  let t2 = Service.submit svc compiled in
  (* give the worker time to claim t1 and die on it *)
  Unix.sleepf 0.05;
  Service.shutdown svc;
  List.iter
    (fun t ->
      match Service.poll svc t with
      | None -> Alcotest.fail "request left without a terminal outcome"
      | Some (o : Service.outcome) -> (
          match o.Service.response with
          | Error (Exec_error.Cancelled _ | Exec_error.Worker_lost _) -> ()
          | Error e -> Alcotest.failf "unexpected error: %s" (Session.error_string e)
          | Ok _ -> Alcotest.fail "served by a dead worker"))
    [ t1; t2 ];
  let s = Service.stats svc in
  check Alcotest.int "every spawned domain was joined" s.Service.domains_spawned
    s.Service.domains_joined;
  (* submissions after shutdown are shed, not hung *)
  match (Service.poll svc (Service.submit svc compiled) : Service.outcome option) with
  | Some { Service.response = Error (Exec_error.Overloaded _); _ } -> ()
  | _ -> Alcotest.fail "post-shutdown submit should shed immediately"

(* ---- chaos decisions are pure in (seed, ordinal) ---------------------------------- *)

let test_chaos_decisions_reproducible () =
  let c =
    {
      Chaos.kill_prob = 0.3;
      latency_prob = 0.3;
      latency = 0.01;
      budget_fault_prob = 0.3;
      nan_prob = 0.3;
      seed = 42;
    }
  in
  let a = List.init 100 (fun i -> Chaos.decide c ~ordinal:i) in
  let b = List.init 100 (fun i -> Chaos.decide c ~ordinal:i) in
  Alcotest.(check bool) "same seed, same faults" true (a = b);
  let hits = List.filter (fun (d : Chaos.decision) -> d.Chaos.kill) a in
  if List.length hits = 0 || List.length hits = 100 then
    Alcotest.fail "kill probability 0.3 should fire sometimes, not never/always";
  Alcotest.(check bool) "chaos off decides nothing" true
    (Chaos.decide Chaos.none ~ordinal:5 = Chaos.no_faults)

let suite =
  [
    Alcotest.test_case "breaker: closed/open/half-open transitions" `Quick
      test_breaker_transitions;
    Alcotest.test_case "chaos off: submit ≡ run_batch (graph)" `Quick test_equivalence_graph;
    Alcotest.test_case "chaos off: submit ≡ run_batch (sampler)" `Quick
      test_equivalence_sampler;
    Alcotest.test_case "admission: bounded queue sheds Overloaded" `Quick test_admission_sheds;
    Alcotest.test_case "watchdog: kill, respawn, requeue-once" `Quick
      test_watchdog_kill_respawn;
    Alcotest.test_case "breaker: service degrades and recovers" `Quick
      test_service_breaker_degrades_and_recovers;
    Alcotest.test_case "transient retry: NaN guardrail" `Quick test_nan_retry_then_exhaust;
    Alcotest.test_case "deadline propagation" `Quick test_deadline_propagation;
    Alcotest.test_case "shutdown: leftovers failed, domains joined" `Quick
      test_shutdown_without_watchdog_fails_leftovers;
    Alcotest.test_case "chaos: reproducible decisions" `Quick test_chaos_decisions_reproducible;
  ]
