(** Durable sessions ({!Scallop_incr.Durable} over {!Scallop_utils.Wal}):
    WAL fault injection (torn tails, byte flips, truncation at every byte),
    crash-consistent recovery bit-identity against op-prefix oracles,
    idempotent replay across the snapshot/prune window, snapshot-generation
    fallback, idle eviction + rehydration, and close draining in-flight
    queries. *)

open Scallop_core
module Incr = Scallop_incr.Incr
module Durable = Scallop_incr.Durable
module Wal = Scallop_utils.Wal
module Atomic_io = Scallop_utils.Atomic_io

let tc_src =
  "type edge(i32, i32)\n\
   rel path(a, b) = edge(a, b)\n\
   rel path(a, c) = path(a, b), edge(b, c)\n\
   query path"

let i32 n = Value.int Value.I32 n
let pair a b = Tuple.of_list [ i32 a; i32 b ]

let output_equal (a : Provenance.Output.t) (b : Provenance.Output.t) =
  match (a, b) with
  | Provenance.Output.O_unit, Provenance.Output.O_unit -> true
  | O_bool x, O_bool y -> Bool.equal x y
  | O_nat x, O_nat y -> Int.equal x y
  | O_prob x, O_prob y -> Float.equal x y
  | a, b -> a = b

let results_equal (a : Session.result) (b : Session.result) =
  List.length a.Session.outputs = List.length b.Session.outputs
  && List.for_all2
       (fun (pa, la) (pb, lb) ->
         String.equal pa pb
         && List.length la = List.length lb
         && List.for_all2
              (fun (ta, oa) (tb, ob) -> Tuple.compare ta tb = 0 && output_equal oa ob)
              la lb)
       a.Session.outputs b.Session.outputs

(* ---- scratch directories ----------------------------------------------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let scratch_counter = ref 0

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scallop-durability-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf d;
  Atomic_io.mkdir_p d;
  d

let rec cp_r src dst =
  if Sys.is_directory src then begin
    Atomic_io.mkdir_p dst;
    Array.iter
      (fun e -> cp_r (Filename.concat src e) (Filename.concat dst e))
      (Sys.readdir src)
  end
  else begin
    let ic = open_in_bin src in
    let data = In_channel.input_all ic in
    close_in ic;
    let oc = open_out_bin dst in
    output_string oc data;
    close_out oc
  end

let read_bytes path =
  let ic = open_in_bin path in
  let data = In_channel.input_all ic in
  close_in ic;
  data

let write_bytes path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ---- WAL fault injection ------------------------------------------------------ *)

let test_wal_roundtrip () =
  let dir = scratch_dir () in
  let path = Filename.concat dir "wal-000000000.log" in
  let w = Wal.open_append ~sync:false ~path () in
  List.iter (Wal.append w) [ "alpha"; ""; "gamma with spaces"; String.make 1000 'x' ];
  Wal.close w;
  let records, tail = Wal.read ~path in
  Alcotest.(check (list string))
    "records round-trip"
    [ "alpha"; ""; "gamma with spaces"; String.make 1000 'x' ]
    records;
  (match tail with Wal.Clean -> () | t -> Alcotest.failf "tail not clean: %s" (Wal.tail_string t));
  (* reopening a clean segment appends after the existing records *)
  let w = Wal.open_append ~sync:false ~path () in
  Wal.append w "delta";
  Wal.close w;
  let records, _ = Wal.read ~path in
  Alcotest.(check int) "append after reopen" 5 (List.length records);
  rm_rf dir

(* Truncating a segment at EVERY byte must read as a clean prefix of the
   records plus a torn (never corrupt) tail, and reopening for append must
   recover writability. *)
let test_wal_truncation_every_byte () =
  let dir = scratch_dir () in
  let path = Filename.concat dir "wal-000000000.log" in
  let w = Wal.open_append ~sync:false ~path () in
  let payloads = [ "first-record"; "second"; "a-third-record-here" ] in
  List.iter (Wal.append w) payloads;
  Wal.close w;
  let full = read_bytes path in
  let tpath = Filename.concat dir "trunc.log" in
  for cut = 0 to String.length full do
    write_bytes tpath (String.sub full 0 cut);
    let records, tail = Wal.read ~path:tpath in
    (match tail with
    | Wal.Corrupt { offset; reason } ->
        Alcotest.failf "cut at %d read as corrupt (offset %d: %s)" cut offset reason
    | Wal.Clean | Wal.Torn _ -> ());
    let n = List.length records in
    if n > List.length payloads then Alcotest.failf "cut at %d yielded %d records" cut n;
    List.iteri
      (fun i r ->
        if not (String.equal r (List.nth payloads i)) then
          Alcotest.failf "cut at %d: record %d mismatch" cut i)
      records;
    (* the torn tail is recoverable: reopen, append, read back *)
    let w = Wal.open_append ~sync:false ~path:tpath () in
    Wal.append w "recovered";
    Wal.close w;
    let records', tail' = Wal.read ~path:tpath in
    (match tail' with
    | Wal.Clean -> ()
    | t -> Alcotest.failf "cut at %d: reopened tail %s" cut (Wal.tail_string t));
    Alcotest.(check int) "prefix + appended" (n + 1) (List.length records');
    if not (String.equal (List.nth records' n) "recovered") then
      Alcotest.failf "cut at %d: appended record lost" cut
  done;
  rm_rf dir

let flip_byte path off =
  let data = Bytes.of_string (read_bytes path) in
  Bytes.set data off (Char.chr (Char.code (Bytes.get data off) lxor 0x5a));
  write_bytes path (Bytes.to_string data)

(* A byte flip in a NON-final record is bit rot, not a crash signature:
   the reader reports Corrupt and the writer refuses the segment.  The same
   flip in the final record is indistinguishable from a torn write and is
   tolerated as a tear. *)
let test_wal_byte_flip () =
  let dir = scratch_dir () in
  let path = Filename.concat dir "wal-000000000.log" in
  let w = Wal.open_append ~sync:false ~path () in
  List.iter (Wal.append w) [ "record-one"; "record-two"; "record-three" ];
  Wal.close w;
  (* offset 8 is the first record's header; flip inside its payload *)
  flip_byte path (8 + 12 + 2);
  (match Wal.read ~path with
  | _, Wal.Corrupt { offset = 8; _ } -> ()
  | _, t -> Alcotest.failf "expected corrupt at byte 8, got %s" (Wal.tail_string t));
  (match Wal.open_append ~sync:false ~path () with
  | exception Wal.Unwritable _ -> ()
  | w ->
      Wal.close w;
      Alcotest.fail "open_append accepted a corrupt segment");
  (* final-record flip reads as a tear, with the prefix intact *)
  flip_byte path (8 + 12 + 2) (* restore *);
  let full = read_bytes path in
  let last_off = String.length full - 3 in
  flip_byte path last_off;
  (match Wal.read ~path with
  | [ "record-one"; "record-two" ], Wal.Torn _ -> ()
  | rs, t ->
      Alcotest.failf "final flip: %d records, tail %s" (List.length rs) (Wal.tail_string t));
  rm_rf dir

(* ---- durable manager helpers --------------------------------------------------- *)

let mgr_config ?snapshot_every ?keep_snapshots ?max_live ?idle_ttl ?now ~state_dir () =
  Durable.config ~state_dir ?snapshot_every ?keep_snapshots ?max_live ?idle_ttl ?now
    ~wal_sync:false (* tests kill no power; skipping fsync keeps the sweep fast *)
    Registry.Boolean

let q mgr sid = Durable.query mgr ~sid ()

let check_recovered_identity what mgr sid expected =
  let got = q mgr sid in
  if not (results_equal got expected) then
    Alcotest.failf "%s: recovered query diverges from uncrashed run" what;
  let cold = Durable.run_cold mgr ~sid () in
  if not (results_equal got cold) then
    Alcotest.failf "%s: recovered query diverges from run_cold" what

(* ---- recovery ------------------------------------------------------------------- *)

let test_recover_basic () =
  let sd = scratch_dir () in
  let mgr = Durable.create (mgr_config ~state_dir:sd ()) in
  let _hash, exact = Durable.open_session mgr ~sid:"s1" tc_src in
  Alcotest.(check bool) "boolean TC runs the delta engine" true exact;
  Durable.assert_fact mgr ~sid:"s1" ~pred:"edge" (pair 1 2);
  Durable.assert_fact mgr ~sid:"s1" ~pred:"edge" (pair 2 3);
  Durable.assert_fact mgr ~sid:"s1" ~pred:"edge" (pair 3 4);
  Durable.retract_fact mgr ~sid:"s1" ~pred:"edge" (pair 3 4);
  let expected = q mgr "s1" in
  Durable.shutdown mgr;
  (* a second manager over the same state dir = restart after a crash *)
  let mgr2 = Durable.create (mgr_config ~state_dir:sd ()) in
  Alcotest.(check int) "one session recovered" 1 (Durable.stats mgr2).Durable.recovered;
  check_recovered_identity "basic recovery" mgr2 "s1" expected;
  (* the recovered session keeps accepting updates durably *)
  Durable.assert_fact mgr2 ~sid:"s1" ~pred:"edge" (pair 4 5);
  let expected2 = q mgr2 "s1" in
  Durable.shutdown mgr2;
  let mgr3 = Durable.create (mgr_config ~state_dir:sd ()) in
  check_recovered_identity "second recovery" mgr3 "s1" expected2;
  rm_rf sd

(* The kill-anywhere contract: truncate the session's WAL at EVERY byte —
   every possible kill point of a process that dies mid-append — and
   recovery must rebuild exactly the longest acknowledged op prefix whose
   records survive, answering bit-identically to an uncrashed session that
   executed just that prefix. *)
let test_kill_at_any_byte () =
  let sd = scratch_dir () in
  let mgr = Durable.create (mgr_config ~state_dir:sd ()) in
  let _ = Durable.open_session mgr ~sid:"k" tc_src in
  let seg = Filename.concat (Filename.concat sd "sessions") "s-k" in
  let wal_path = Filename.concat seg "wal-000000000.log" in
  let ops =
    [
      `A (1, 2); `A (2, 3); `A (3, 4); `R (3, 4); `A (3, 5); `A (5, 6); `R (1, 2); `A (1, 6);
    ]
  in
  (* oracle results for every acknowledged-op prefix, plus the WAL size at
     which each prefix became durable *)
  let sizes = ref [ (Unix.stat wal_path).Unix.st_size ] in
  let prefixes = ref [ q mgr "k" ] in
  List.iter
    (fun op ->
      (match op with
      | `A (a, b) -> Durable.assert_fact mgr ~sid:"k" ~pred:"edge" (pair a b)
      | `R (a, b) -> Durable.retract_fact mgr ~sid:"k" ~pred:"edge" (pair a b));
      sizes := (Unix.stat wal_path).Unix.st_size :: !sizes;
      prefixes := q mgr "k" :: !prefixes)
    ops;
  let sizes = Array.of_list (List.rev !sizes) in
  let prefixes = Array.of_list (List.rev !prefixes) in
  Durable.shutdown mgr;
  let full = read_bytes wal_path in
  let crash_root = scratch_dir () in
  for cut = 0 to String.length full do
    let croot = Filename.concat crash_root (Printf.sprintf "cut%d" cut) in
    cp_r sd croot;
    let cwal =
      Filename.concat (Filename.concat (Filename.concat croot "sessions") "s-k")
        "wal-000000000.log"
    in
    write_bytes cwal (String.sub full 0 cut);
    let mgr2 = Durable.create (mgr_config ~state_dir:croot ()) in
    (* which acknowledged prefix does this kill point preserve? *)
    let k = ref (-1) in
    Array.iteri (fun i s -> if s <= cut && !k < i then k := i) sizes;
    if !k < 0 then begin
      (* the open itself never became durable: no session may surface *)
      let c = Durable.session_counts mgr2 in
      if c.Durable.live + c.Durable.spilled + c.Durable.failed > 0 then
        Alcotest.failf "cut at %d: phantom session recovered" cut
    end
    else begin
      Alcotest.(check int)
        (Printf.sprintf "cut at %d recovers" cut)
        1
        (Durable.stats mgr2).Durable.recovered;
      let got = q mgr2 "k" in
      if not (results_equal got prefixes.(!k)) then
        Alcotest.failf "cut at %d: result differs from %d-op prefix oracle" cut !k;
      let cold = Durable.run_cold mgr2 ~sid:"k" () in
      if not (results_equal got cold) then
        Alcotest.failf "cut at %d: recovered query diverges from run_cold" cut
    end;
    Durable.shutdown mgr2;
    rm_rf croot
  done;
  rm_rf crash_root;
  rm_rf sd

(* Crash between "snapshot is durable" and "old segments pruned": the ops
   folded into the snapshot are still on disk and must not double-apply.
   The sequence ends in a retract, which is NOT idempotent — replaying it
   twice would fail with "fact was never asserted" — so surviving this
   window proves the lsn filter. *)
let test_idempotent_replay () =
  let sd = scratch_dir () in
  let mgr = Durable.create (mgr_config ~state_dir:sd ~snapshot_every:1000 ()) in
  let _ = Durable.open_session mgr ~sid:"s" tc_src in
  Durable.assert_fact mgr ~sid:"s" ~pred:"edge" (pair 1 2);
  Durable.assert_fact mgr ~sid:"s" ~pred:"edge" (pair 2 3);
  Durable.retract_fact mgr ~sid:"s" ~pred:"edge" (pair 2 3);
  let expected = q mgr "s" in
  let seg0 = Filename.concat (Filename.concat (Filename.concat sd "sessions") "s-s")
      "wal-000000000.log" in
  let stale = read_bytes seg0 in
  (* compaction snapshots + rotates + prunes segment 0 ... *)
  Durable.compact mgr ~sid:"s";
  Durable.shutdown mgr;
  if Sys.file_exists seg0 then Alcotest.fail "compaction left the folded segment behind";
  (* ... but this crash resurrects it, exactly as a kill mid-prune would *)
  write_bytes seg0 stale;
  let mgr2 = Durable.create (mgr_config ~state_dir:sd ()) in
  Alcotest.(check int) "recovered" 1 (Durable.stats mgr2).Durable.recovered;
  Alcotest.(check int)
    "stale records filtered, not replayed" 0 (Durable.stats mgr2).Durable.wal_replayed;
  check_recovered_identity "idempotent replay" mgr2 "s" expected;
  rm_rf sd

(* A damaged newest snapshot falls back to an older generation plus longer
   replay; with every generation (and the open record) gone, recovery fails
   closed as a typed, per-session quarantine. *)
let test_snapshot_generation_fallback () =
  let sd = scratch_dir () in
  let mgr = Durable.create (mgr_config ~state_dir:sd ~snapshot_every:2 ~keep_snapshots:3 ()) in
  let _ = Durable.open_session mgr ~sid:"s" tc_src in
  List.iter
    (fun (a, b) -> Durable.assert_fact mgr ~sid:"s" ~pred:"edge" (pair a b))
    [ (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7) ]
  ;
  let expected = q mgr "s" in
  Durable.shutdown mgr;
  let snaps = Filename.concat (Filename.concat (Filename.concat sd "sessions") "s-s") "snap" in
  let gens = Atomic_io.generations ~dir:snaps in
  if List.length gens < 2 then
    Alcotest.failf "expected >= 2 snapshot generations, found %d" (List.length gens);
  let newest = List.nth gens (List.length gens - 1) in
  flip_byte (Atomic_io.path_of ~dir:snaps newest) 40;
  let mgr2 = Durable.create (mgr_config ~state_dir:sd ()) in
  Alcotest.(check int) "fallback recovers" 1 (Durable.stats mgr2).Durable.recovered;
  if (Durable.stats mgr2).Durable.wal_replayed = 0 then
    Alcotest.fail "fallback to an older generation should replay the gap";
  check_recovered_identity "generation fallback" mgr2 "s" expected;
  Durable.shutdown mgr2;
  (* scorch every generation (a fresh byte, so the already-flipped newest
     stays damaged): segment 0 was pruned long ago, so nothing can rebuild
     the session — a quarantine, not a crash *)
  List.iter (fun g -> flip_byte (Atomic_io.path_of ~dir:snaps g) 41) (Atomic_io.generations ~dir:snaps);
  let mgr3 = Durable.create (mgr_config ~state_dir:sd ()) in
  Alcotest.(check int) "quarantined" 1 (Durable.stats mgr3).Durable.recovery_failures;
  (match q mgr3 "s" with
  | _ -> Alcotest.fail "query on a quarantined session should fail"
  | exception Session.Error (Exec_error.Recovery_failed { session = "s"; _ }) -> ()
  | exception Session.Error e ->
      Alcotest.failf "expected Recovery_failed, got %s" (Session.error_string e));
  (* close discards the quarantined remains *)
  let _ = Durable.close mgr3 ~sid:"s" in
  let mgr4 = Durable.create (mgr_config ~state_dir:sd ()) in
  let c = Durable.session_counts mgr4 in
  Alcotest.(check int) "discarded on close" 0 (c.Durable.failed + c.Durable.live);
  rm_rf sd

(* A corrupt (non-tail) log record is refused at recovery with the typed
   diagnostic, never a process failure. *)
let test_corrupt_segment_quarantine () =
  let sd = scratch_dir () in
  let mgr = Durable.create (mgr_config ~state_dir:sd ()) in
  let _ = Durable.open_session mgr ~sid:"s" tc_src in
  Durable.assert_fact mgr ~sid:"s" ~pred:"edge" (pair 1 2);
  Durable.assert_fact mgr ~sid:"s" ~pred:"edge" (pair 2 3);
  Durable.shutdown mgr;
  let seg0 = Filename.concat (Filename.concat (Filename.concat sd "sessions") "s-s")
      "wal-000000000.log" in
  flip_byte seg0 20 (* inside the open record: a non-final record *);
  let mgr2 = Durable.create (mgr_config ~state_dir:sd ()) in
  Alcotest.(check int) "quarantined" 1 (Durable.stats mgr2).Durable.recovery_failures;
  (match Durable.assert_fact mgr2 ~sid:"s" ~pred:"edge" (pair 9 9) with
  | _ -> Alcotest.fail "assert on a quarantined session should fail"
  | exception Session.Error (Exec_error.Recovery_failed { session; reason }) ->
      Alcotest.(check string) "session named" "s" session;
      if not (String.length reason > 0) then Alcotest.fail "empty reason");
  rm_rf sd

(* ---- eviction + rehydration ----------------------------------------------------- *)

let test_eviction_lru_cap () =
  let sd = scratch_dir () in
  let mgr = Durable.create (mgr_config ~state_dir:sd ~max_live:1 ()) in
  let _ = Durable.open_session mgr ~sid:"a" tc_src in
  Durable.assert_fact mgr ~sid:"a" ~pred:"edge" (pair 1 2);
  Durable.assert_fact mgr ~sid:"a" ~pred:"edge" (pair 2 3);
  let expected_a = q mgr "a" in
  (* opening a second session pushes the first over the cap *)
  let _ = Durable.open_session mgr ~sid:"b" tc_src in
  Alcotest.(check bool) "a spilled by LRU cap" true (Durable.is_spilled mgr ~sid:"a");
  Alcotest.(check bool) "b live" false (Durable.is_spilled mgr ~sid:"b");
  Alcotest.(check int) "one eviction" 1 (Durable.stats mgr).Durable.evictions;
  (* touching the spilled session rehydrates it transparently, bit-identical *)
  let got = q mgr "a" in
  if not (results_equal got expected_a) then
    Alcotest.fail "rehydrated session diverges from pre-eviction state";
  Alcotest.(check int) "one rehydration" 1 (Durable.stats mgr).Durable.rehydrations;
  (* rehydrated sessions keep accepting durable updates *)
  Durable.assert_fact mgr ~sid:"a" ~pred:"edge" (pair 3 4);
  let expected_a2 = q mgr "a" in
  Durable.shutdown mgr;
  let mgr2 = Durable.create (mgr_config ~state_dir:sd ()) in
  check_recovered_identity "post-rehydration recovery" mgr2 "a" expected_a2;
  rm_rf sd

let test_eviction_idle_ttl () =
  let sd = scratch_dir () in
  let clock = ref 0.0 in
  let mgr =
    Durable.create (mgr_config ~state_dir:sd ~idle_ttl:10.0 ~now:(fun () -> !clock) ())
  in
  let _ = Durable.open_session mgr ~sid:"a" tc_src in
  Durable.assert_fact mgr ~sid:"a" ~pred:"edge" (pair 1 2);
  let expected = q mgr "a" in
  clock := 5.0;
  Durable.sweep mgr;
  Alcotest.(check bool) "still live within ttl" false (Durable.is_spilled mgr ~sid:"a");
  clock := 20.0;
  Durable.sweep mgr;
  Alcotest.(check bool) "spilled after ttl" true (Durable.is_spilled mgr ~sid:"a");
  let got = q mgr "a" in
  if not (results_equal got expected) then Alcotest.fail "ttl rehydration diverges";
  rm_rf sd

(* ---- close vs in-flight queries -------------------------------------------------- *)

(* Regression for the close/in-flight race: a close issued while a query is
   still executing on another domain must drain it, not tear the session
   down under it (which surfaced as a spurious "session is closed").  The
   session is pinned for the duration of the query, and close waits for
   pins. *)
let test_close_drains_inflight_query () =
  (* a chain long enough that the query reliably overlaps the close *)
  let n = 400 in
  let mgr = Durable.create (Durable.config Registry.Boolean) in
  let _ = Durable.open_session mgr ~sid:"s" tc_src in
  for i = 0 to n - 1 do
    Durable.assert_fact mgr ~sid:"s" ~pred:"edge" (pair i (i + 1))
  done;
  let started = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Atomic.set started true;
        match q mgr "s" with
        | r -> Ok r
        | exception Session.Error e -> Error e)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Unix.sleepf 0.002;
  let _stats = Durable.close mgr ~sid:"s" in
  (match Domain.join d with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "in-flight query lost to close: %s" (Session.error_string e));
  (* after close, the session is gone for real *)
  (match q mgr "s" with
  | _ -> Alcotest.fail "query after close should fail"
  | exception Session.Error (Exec_error.Invalid_input _) -> ())

(* ---- protocol edges --------------------------------------------------------------- *)

let test_validate_before_log () =
  (* a rejected op must leave no trace in the log: after a failed retract,
     recovery replays cleanly (a logged-but-invalid op would poison it) *)
  let sd = scratch_dir () in
  let mgr = Durable.create (mgr_config ~state_dir:sd ()) in
  let _ = Durable.open_session mgr ~sid:"s" tc_src in
  Durable.assert_fact mgr ~sid:"s" ~pred:"edge" (pair 1 2);
  (match Durable.retract_fact mgr ~sid:"s" ~pred:"edge" (pair 7 7) with
  | _ -> Alcotest.fail "retract of a never-asserted fact should fail"
  | exception Session.Error (Exec_error.Invalid_input _) -> ());
  (match Durable.assert_fact mgr ~sid:"s" ~pred:"nosuch" (pair 1 2) with
  | _ -> Alcotest.fail "assert into an unknown relation should fail"
  | exception Session.Error (Exec_error.Invalid_input _) -> ());
  let expected = q mgr "s" in
  Durable.shutdown mgr;
  let mgr2 = Durable.create (mgr_config ~state_dir:sd ()) in
  Alcotest.(check int) "recovered" 1 (Durable.stats mgr2).Durable.recovered;
  check_recovered_identity "no poison records" mgr2 "s" expected;
  rm_rf sd

let test_ephemeral_registry () =
  (* without a state dir the registry still enforces the session protocol *)
  let mgr = Durable.create (Durable.config Registry.Boolean) in
  let _ = Durable.open_session mgr ~sid:"s" tc_src in
  (match Durable.open_session mgr ~sid:"s" tc_src with
  | _ -> Alcotest.fail "re-open should fail"
  | exception Session.Error (Exec_error.Invalid_input _) -> ());
  Durable.assert_fact mgr ~sid:"s" ~pred:"edge" (pair 1 2);
  let _ = q mgr "s" in
  let _ = Durable.close mgr ~sid:"s" in
  (match Durable.close mgr ~sid:"s" with
  | _ -> Alcotest.fail "double close should fail"
  | exception Session.Error (Exec_error.Invalid_input _) -> ());
  (match Durable.assert_fact mgr ~sid:"nope" ~pred:"edge" (pair 1 2) with
  | _ -> Alcotest.fail "unknown session should fail"
  | exception Session.Error (Exec_error.Invalid_input _) -> ())

let suite =
  [
    Alcotest.test_case "wal roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal truncation at every byte" `Quick test_wal_truncation_every_byte;
    Alcotest.test_case "wal byte flip" `Quick test_wal_byte_flip;
    Alcotest.test_case "recover basic" `Quick test_recover_basic;
    Alcotest.test_case "kill at any byte" `Quick test_kill_at_any_byte;
    Alcotest.test_case "idempotent replay" `Quick test_idempotent_replay;
    Alcotest.test_case "snapshot generation fallback" `Quick test_snapshot_generation_fallback;
    Alcotest.test_case "corrupt segment quarantine" `Quick test_corrupt_segment_quarantine;
    Alcotest.test_case "eviction lru cap" `Quick test_eviction_lru_cap;
    Alcotest.test_case "eviction idle ttl" `Quick test_eviction_idle_ttl;
    Alcotest.test_case "close drains in-flight query" `Quick test_close_drains_inflight_query;
    Alcotest.test_case "validate before log" `Quick test_validate_before_log;
    Alcotest.test_case "ephemeral registry" `Quick test_ephemeral_registry;
  ]
