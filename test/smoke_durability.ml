(** Durable-session crash smoke, run by [dune build @smoke]: [scallop serve
    --state-dir] must survive SIGKILL without losing an acknowledged
    update.

    The drill: drive one incremental session through 50 mixed
    assert/retract/query requests.  Once uninterrupted, recording the final
    query's rows; once with the server SIGKILLed partway through (after a
    prefix of requests has been acknowledged — acknowledged means durable,
    that is the WAL contract), then restarted on the same state dir to
    recover and run the remaining requests.  The final rows must be
    bit-identical between the two runs, and the restarted server must
    report the session as recovered.

    Exits nonzero on any divergence, missing reply, or unexpected server
    death. *)

let failures = ref 0
let fail fmt = Fmt.kstr (fun m -> incr failures; Fmt.epr "smoke: %s@." m) fmt

let open_line =
  "open s1 type edge(i32, i32);rel path(a, b) = edge(a, b);rel path(a, c) = path(a, b), \
   edge(b, c);query path"

(* 50 deterministic mixed requests over a 12-vertex edge set: mostly fresh
   asserts, retracts of live facts, and interleaved queries. *)
let updates =
  let seed = ref 41 in
  let next m =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod m
  in
  let live = ref [] in
  List.init 50 (fun i ->
      if i mod 9 = 4 then "query s1"
      else if i mod 5 = 3 && !live <> [] then begin
        let j = next (List.length !live) in
        let a, b = List.nth !live j in
        live := List.filteri (fun k _ -> k <> j) !live;
        Printf.sprintf "retract s1 edge(%d, %d)" a b
      end
      else begin
        let rec fresh tries =
          let a = next 12 and b = next 12 in
          if (a <> b && not (List.mem (a, b) !live)) || tries > 20 then (a, b)
          else fresh (tries + 1)
        in
        let a, b = fresh 0 in
        live := (a, b) :: !live;
        Printf.sprintf "assert s1 edge(%d, %d)" a b
      end)

(* ---- process plumbing -------------------------------------------------------- *)

type proc = { pid : int; into : out_channel; from : in_channel }

let spawn state_dir =
  (* cloexec so the child does not inherit stray copies of the parent ends
     (a child holding in_write would never see EOF on its stdin);
     create_process dup2s the passed fds, which clears cloexec on them *)
  let in_read, in_write = Unix.pipe ~cloexec:true () in
  let out_read, out_write = Unix.pipe ~cloexec:true () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process "../bin/scallop.exe"
      [| "scallop"; "serve"; "-p"; "boolean"; "--jobs"; "2"; "--state-dir"; state_dir |]
      in_read out_write devnull
  in
  Unix.close in_read;
  Unix.close out_write;
  Unix.close devnull;
  { pid; into = Unix.out_channel_of_descr in_write; from = Unix.in_channel_of_descr out_read }

let send p line =
  output_string p.into (line ^ "\n");
  flush p.into

(* Read replies until [n] terminal "done" lines have arrived, returning every
   line seen (replies print in request order). *)
let read_replies p n =
  let lines = ref [] and dones = ref 0 in
  (try
     while !dones < n do
       let line = input_line p.from in
       lines := line :: !lines;
       if String.length line >= 5 && String.sub line 0 5 = "done " then incr dones
     done
   with End_of_file -> fail "server died after %d/%d replies" !dones n);
  List.rev !lines

let finish p =
  close_out_noerr p.into;
  (* drain to EOF so the server is not blocked writing *)
  (try
     while true do
       ignore (input_line p.from)
     done
   with End_of_file -> ());
  close_in_noerr p.from;
  match Unix.waitpid [] p.pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "scallop serve exited %d" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> fail "scallop serve killed by signal %d" n

let sigkill p =
  close_out_noerr p.into;
  close_in_noerr p.from;
  Unix.kill p.pid Sys.sigkill;
  match Unix.waitpid [] p.pid with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _, st ->
      fail "expected SIGKILL death, got %s"
        (match st with
        | Unix.WEXITED n -> Printf.sprintf "exit %d" n
        | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
        | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n)

(* Rows of request [n], with the per-run request number stripped so the two
   runs compare on payload alone. *)
let rows_of lines n =
  let prefix = Printf.sprintf "out %d " n in
  let plen = String.length prefix in
  List.filter_map
    (fun l ->
      if String.length l >= plen && String.equal (String.sub l 0 plen) prefix then
        Some (String.sub l plen (String.length l - plen))
      else None)
    lines

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let scratch name =
  let d = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scallop-smoke-durability-%d-%s" (Unix.getpid ()) name) in
  rm_rf d;
  d

let () =
  (* ---- uninterrupted reference run ------------------------------------------ *)
  let dir_a = scratch "a" in
  let p = spawn dir_a in
  send p open_line;
  List.iter (send p) updates;
  send p "query s1";
  let final_n = 1 + List.length updates in
  let lines = read_replies p (final_n + 1) in
  let reference = rows_of lines final_n in
  finish p;
  if reference = [] then fail "reference run produced no rows";

  (* ---- crashed + recovered run ----------------------------------------------- *)
  let dir_b = scratch "b" in
  let p1 = spawn dir_b in
  send p1 open_line;
  let cut = 23 in
  let prefix = List.filteri (fun i _ -> i < cut) updates in
  let rest = List.filteri (fun i _ -> i >= cut) updates in
  List.iter (send p1) prefix;
  ignore (read_replies p1 (1 + cut));
  (* every sent request is acknowledged, hence durable: kill without mercy *)
  sigkill p1;

  let p2 = spawn dir_b in
  List.iter (send p2) rest;
  send p2 "stats";
  send p2 "query s1";
  let stats_n = List.length rest in
  let final_n' = stats_n + 1 in
  let lines2 = read_replies p2 (final_n' + 1) in
  let recovered = rows_of lines2 final_n' in
  (match
     List.find_opt
       (fun l ->
         let has sub =
           let n = String.length l and m = String.length sub in
           let rec go i = i + m <= n && (String.equal (String.sub l i m) sub || go (i + 1)) in
           go 0
         in
         has "durability" && has " recovered=1")
       lines2
   with
  | Some _ -> ()
  | None -> fail "restarted server does not report the session as recovered");
  finish p2;

  if List.length recovered <> List.length reference then
    fail "row count diverged after recovery: %d vs %d" (List.length recovered)
      (List.length reference)
  else
    List.iter2
      (fun a b -> if not (String.equal a b) then fail "row diverged: %S vs %S" a b)
      recovered reference;

  rm_rf dir_a;
  rm_rf dir_b;
  if !failures > 0 then exit 1;
  Fmt.pr
    "smoke: durable serve survived SIGKILL after %d acked updates; %d final rows \
     bit-identical across crash + recovery@."
    cut (List.length reference)
