(** Differential fuzzing: grammar-directed random programs evaluated under
    every mode pair (naive/semi-naive × cached/uncached) plus a 2-domain
    [Session.run_batch]; all modes must agree with the naive uncached
    reference.  Every program additionally runs under the columnar batch
    executor — naive, semi-naive cached/uncached, and a 2-domain batch —
    and must match its same-mode tree-walker twin {e bit-exactly} (tuples
    and recovered probabilities), negation and aggregation included.
    Failure messages carry the offending seed and program so a divergence
    can be replayed deterministically. *)

open Scallop_core
open Scallop_fuzz

let master_seed = 0xF02A

let check_spec ?(recursion = true) name spec ~first ~count () =
  match Fuzz_gen.check_range ~recursion ~spec ~master_seed ~first ~count () with
  | [] -> ()
  | failures ->
      let shown = List.filteri (fun i _ -> i < 3) failures in
      Alcotest.failf "%d of %d seeds diverged under %s (master seed %#x):@\n%s"
        (List.length failures) count name master_seed
        (String.concat "\n---\n" shown)

let check_incr ?(recursion = true) ?(parallel = false) name spec ~first ~count () =
  let sweep =
    if parallel then Fuzz_gen.check_incr_parallel else Fuzz_gen.check_incr_range
  in
  match sweep ~recursion ~spec ~master_seed ~first ~count () with
  | [] -> ()
  | failures ->
      let shown = List.filteri (fun i _ -> i < 3) failures in
      Alcotest.failf
        "%d of %d interleavings diverged under %s (master seed %#x):@\n%s"
        (List.length failures) count name master_seed
        (String.concat "\n---\n" shown)

let suite =
  [
    Alcotest.test_case "boolean: 70 programs, all modes + columnar agree" `Slow
      (check_spec "boolean" Registry.Boolean ~first:0 ~count:70);
    Alcotest.test_case "minmaxprob: 70 programs, all modes + columnar agree" `Slow
      (check_spec "minmaxprob" Registry.Max_min_prob ~first:100 ~count:70);
    (* non-recursive only: truncated proof sets at a recursive fixpoint are
       derivation-order dependent under top-k, so modes legitimately differ *)
    Alcotest.test_case "topkproofs-3: 60 non-recursive programs, all modes + columnar agree"
      `Slow
      (check_spec ~recursion:false "topkproofs-3" (Registry.Top_k_proofs 3) ~first:200
         ~count:60);
    (* incremental sessions: random assert/retract/query interleavings must
       stay bit-identical to a cold run on the final EDB at every query *)
    Alcotest.test_case "incr boolean: 40 interleavings ≡ cold run" `Slow
      (check_incr "incr-boolean" Registry.Boolean ~first:300 ~count:40);
    Alcotest.test_case "incr minmaxprob: 40 interleavings ≡ cold run" `Slow
      (check_incr "incr-minmaxprob" Registry.Max_min_prob ~first:400 ~count:40);
    Alcotest.test_case "incr topkproofs-3: 25 non-recursive interleavings ≡ cold run" `Slow
      (check_incr ~recursion:false "incr-topkproofs-3" (Registry.Top_k_proofs 3)
         ~first:500 ~count:25);
    Alcotest.test_case "incr boolean: 2-domain shared-plan sweep" `Slow
      (check_incr ~parallel:true "incr-boolean-par" Registry.Boolean ~first:600 ~count:24);
  ]
