(** Smoke check for resource governance, wired into [@smoke]:

    1. a fast fixed-seed differential fuzz sweep (20 programs, boolean
       provenance) — naive, semi-naive, cached and 2-domain batch modes
       must all agree;
    2. budget enforcement — a divergent program under a 1-second deadline
       must come back as a structured [Budget_exceeded Deadline] within
       twice its deadline, both sequentially and inside a 2-domain
       [run_batch] where the sibling sample still completes. *)

open Scallop_core
module Fuzz_gen = Scallop_fuzz.Fuzz_gen

let failures = ref 0

let fail fmt =
  Fmt.kstr
    (fun msg ->
      incr failures;
      Fmt.epr "FAIL: %s@." msg)
    fmt

(* ---- 1. fixed-seed fuzz sweep ---------------------------------------------- *)

let fuzz_sweep () =
  let count = 20 in
  match
    Fuzz_gen.check_range ~spec:Registry.Boolean ~master_seed:0xF02A ~first:0 ~count ()
  with
  | [] -> Fmt.pr "fuzz sweep: %d/%d programs agree across all modes@." count count
  | errs ->
      List.iter (fun msg -> fail "fuzz: %s" msg) errs

(* ---- 2. budget enforcement ------------------------------------------------- *)

let divergent_src = "type seed(i32)\nrel n(x) = seed(x)\nrel n(x + 1) = n(x)\nquery n"
let deadline = 1.0

let budget_config () =
  {
    (Interp.default_config ()) with
    Interp.budget = { Budget.unlimited with Budget.timeout = Some deadline };
  }

let check_deadline name outcome elapsed =
  (match outcome with
  | Error (Exec_error.Budget_exceeded { kind = Exec_error.Deadline; _ }) -> ()
  | Error e -> fail "%s: expected Budget_exceeded Deadline, got %s" name (Exec_error.to_string e)
  | Ok _ -> fail "%s: divergent program terminated" name);
  if elapsed >= 2.0 *. deadline then
    fail "%s: stopped after %.2fs (deadline %.1fs, limit %.1fs)" name elapsed deadline
      (2.0 *. deadline)
  else Fmt.pr "%s: stopped in %.2fs (deadline %.1fs)@." name elapsed deadline

let budget_enforcement () =
  let compiled = Session.compile divergent_src in
  let seed_facts =
    [ ("seed", [ (Provenance.Input.none, Tuple.of_list [ Value.int Value.I32 0 ]) ]) ]
  in
  (* sequential *)
  let t0 = Scallop_utils.Monotonic.now () in
  let outcome =
    try
      Ok
        (Session.run ~config:(budget_config ()) ~provenance:(Registry.create Registry.Boolean)
           compiled ~facts:seed_facts ())
    with Session.Error e -> Error e
  in
  check_deadline "sequential deadline" outcome (Scallop_utils.Monotonic.now () -. t0);
  (* 2-domain batch: sample 0 diverges, sample 1 (empty seed) completes *)
  let t0 = Scallop_utils.Monotonic.now () in
  let results =
    Session.run_batch ~jobs:2 ~config:(budget_config ())
      ~provenance_of:(fun _ -> Registry.create Registry.Boolean)
      compiled
      [| seed_facts; [ ("seed", []) ] |]
  in
  check_deadline "batch --jobs 2 deadline" results.(0) (Scallop_utils.Monotonic.now () -. t0);
  (match results.(1) with
  | Ok _ -> Fmt.pr "batch sibling sample completed@."
  | Error e -> fail "batch sibling sample failed: %s" (Exec_error.to_string e))

let () =
  fuzz_sweep ();
  budget_enforcement ();
  if !failures > 0 then begin
    Fmt.epr "smoke_budget: %d failure%s@." !failures (if !failures = 1 then "" else "s");
    exit 1
  end
  else Fmt.pr "smoke_budget: OK@."
