let () =
  Alcotest.run "scallop"
    [
      ("utils", Test_utils.suite);
      ("value", Test_value.suite);
      ("bdd", Test_bdd.suite);
      ("formula-wmc", Test_formula.suite);
      ("topk-guided", Test_topk.suite);
      ("provenance", Test_provenance.suite);
      ("aggregate", Test_aggregate.suite);
      ("parser", Test_parser.suite);
      ("language", Test_lang.suite);
      ("tensor", Test_tensor.suite);
      ("nn", Test_nn.suite);
      ("data", Test_data.suite);
      ("interp", Test_interp.suite);
      ("columnar", Test_columnar.suite);
      ("opt", Test_opt.suite);
      ("demand", Test_demand.suite);
      ("semantics", Test_semantics.suite);
      ("properties", Test_properties.suite);
      ("apps", Test_apps.suite);
      ("parallel", Test_parallel.suite);
      ("errors", Test_errors.suite);
      ("fuzz", Test_fuzz.suite);
      ("serialize", Test_serialize.suite);
      ("resilience", Test_resilience.suite);
      ("service", Test_service.suite);
      ("incr", Test_incr.suite);
      ("durability", Test_durability.suite);
      ("replication", Test_replication.suite);
    ]
