(** Grammar-directed random Scallop programs and the differential oracle
    over evaluation modes.

    Programs are {e stratified-safe by construction}: relations are
    organized in levels, positive atoms may reference the current level
    (recursion) or below, while negation and aggregation reference strictly
    lower levels only — so every generated program compiles, stratifies and
    terminates under saturating provenances.  Samplers are deliberately
    never generated: they consume RNG state, which would make the
    naive/semi-naive comparison vacuous.  Recursion can likewise be
    disabled ([~recursion:false]): under {e approximate} provenances such
    as top-k proofs, the truncated proof sets reached at a recursive
    fixpoint legitimately depend on derivation order (naive and semi-naive
    both compute valid top-k approximations, but not always the same one),
    so the differential oracle is only sound there on non-recursive
    programs.

    The oracle ({!check_seed}) evaluates one generated program under every
    mode pair {naive, semi-naive} × {cached, uncached} plus a 2-domain
    [Session.run_batch], and demands identical outputs — tuples and
    recovered probabilities both.  Each program additionally runs under the
    columnar batch executor ([config.columnar]) in all three fixpoint
    modes and across a 2-domain batch, compared {e bit-exactly} against its
    same-mode tree-walker twin.  Failures name the seed so a run can be
    replayed with [check_seed ~seed] alone. *)

open Scallop_core
module Rng = Scallop_utils.Rng

let pick rng (arr : 'a array) : 'a = arr.(Rng.int rng (Array.length arr))

(* ---- generation ------------------------------------------------------------ *)

(* Domain constants are 0..3; arithmetic heads can push derived values a few
   steps past that, still finite. *)
let gen_edb rng buf name =
  Buffer.add_string buf (Fmt.str "type %s(i32, i32)@\n" name);
  let facts = ref [] in
  for a = 0 to 3 do
    for b = 0 to 3 do
      if Rng.float rng < 0.35 then
        facts :=
          Fmt.str "%.2f::(%d, %d)" (0.2 +. (0.8 *. Rng.float rng)) a b :: !facts
    done
  done;
  (* an empty fact set is a parse error; force one edge *)
  let facts = match !facts with [] -> [ "0.90::(0, 1)" ] | l -> List.rev l in
  Buffer.add_string buf (Fmt.str "rel %s = {%s}@\n" name (String.concat ", " facts))

(* One rule for [head]; [lower] are binary relations of strictly lower
   levels (never empty), [self] is [Some head] when a recursive rule is
   allowed (a non-recursive base rule must already exist). *)
let gen_rule rng ~head ~lower ~self buf =
  let low () = pick rng lower in
  match (self, Rng.int rng (match self with Some _ -> 7 | None -> 6)) with
  | Some s, 6 ->
      (* recursive join: the transitive-closure shape *)
      Buffer.add_string buf (Fmt.str "rel %s(x, z) = %s(x, y), %s(y, z)@\n" head s (low ()))
  | _, 0 -> Buffer.add_string buf (Fmt.str "rel %s(x, y) = %s(x, y)@\n" head (low ()))
  | _, 1 -> Buffer.add_string buf (Fmt.str "rel %s(x, y) = %s(y, x)@\n" head (low ()))
  | _, 2 ->
      Buffer.add_string buf
        (Fmt.str "rel %s(x, z) = %s(x, y), %s(y, z)@\n" head (low ()) (low ()))
  | _, 3 -> Buffer.add_string buf (Fmt.str "rel %s(x, y) = %s(x, y), x != y@\n" head (low ()))
  | _, 4 ->
      (* negation over strictly lower levels only *)
      Buffer.add_string buf
        (Fmt.str "rel %s(x, y) = %s(x, y), not %s(x, y)@\n" head (low ()) (low ()))
  | _, _ -> Buffer.add_string buf (Fmt.str "rel %s(x + 1, y) = %s(x, y)@\n" head (low ()))

(** Generate one program from a fresh RNG stream.  Returns the source and
    the list of queried relations.  [recursion:false] suppresses recursive
    rules (the RNG draw still happens, so seeds stay comparable). *)
let gen_program ?(recursion = true) rng : string * string list =
  let buf = Buffer.create 512 in
  let edb = [ "e0"; "e1" ] in
  List.iter (fun name -> gen_edb rng buf name) edb;
  let levels = 1 + Rng.int rng 2 in
  let queried = ref [] in
  let lower = ref (Array.of_list edb) in
  for level = 1 to levels do
    let n_rels = 1 + Rng.int rng 2 in
    let new_rels = ref [] in
    for r = 0 to n_rels - 1 do
      let head = Fmt.str "r%d_%d" level r in
      let recursive = Rng.float rng < 0.4 && recursion in
      (* base rule first (never recursive), then 0-2 more *)
      gen_rule rng ~head ~lower:!lower ~self:None buf;
      let extra = Rng.int rng 2 + if recursive then 1 else 0 in
      for _ = 1 to extra do
        gen_rule rng ~head ~lower:!lower ~self:(if recursive then Some head else None) buf
      done;
      new_rels := head :: !new_rels;
      queried := head :: !queried
    done;
    lower := Array.append !lower (Array.of_list !new_rels)
  done;
  (* one aggregation sink over the topmost relation (strictly lower level) *)
  let top = (pick rng !lower : string) in
  Buffer.add_string buf (Fmt.str "rel agg(n) = n := count(x, y: %s(x, y))@\n" top);
  queried := "agg" :: !queried;
  List.iter (fun q -> Buffer.add_string buf (Fmt.str "query %s@\n" q)) (List.rev !queried);
  (Buffer.contents buf, List.rev !queried)

(* ---- oracle ---------------------------------------------------------------- *)

(* Output relations as a canonical, comparable form. *)
let snapshot (r : Session.result) : (string * (Tuple.t * float) list) list =
  List.map
    (fun (pred, rows) ->
      (pred, List.map (fun (t, o) -> (t, Provenance.Output.prob o)) rows))
    r.Session.outputs

let snapshots_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (pa, la) (pb, lb) ->
         String.equal pa pb
         && List.length la = List.length lb
         && List.for_all2
              (fun (ta, xa) (tb, xb) ->
                Tuple.compare ta tb = 0 && Float.abs (xa -. xb) < 1e-9)
              la lb)
       a b

(* Bit-exact comparison — used where the contract is identity, not
   tolerance: the incremental maintenance engine, and the columnar executor
   against its same-mode tree-walker twin. *)
let snapshots_bit_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (pa, la) (pb, lb) ->
         String.equal pa pb
         && List.length la = List.length lb
         && List.for_all2
              (fun (ta, xa) (tb, xb) -> Tuple.compare ta tb = 0 && Float.equal xa xb)
              la lb)
       a b

let mode_config ?(columnar = false) ~semi_naive ~cache () =
  {
    (Interp.default_config ()) with
    Interp.semi_naive;
    cache_indices = cache;
    columnar;
  }

(** Run the differential oracle for one (provenance, seed) pair.  [Ok] when
    every evaluation mode agrees; [Error msg] (naming the seed) otherwise. *)
let check_seed ?(recursion = true) ~(spec : Registry.spec) ~(base_rng : Rng.t) ~(seed : int)
    () : (unit, string) result =
  let rng = Rng.substream base_rng seed in
  let src, _queried = gen_program ~recursion rng in
  match Session.compile src with
  | exception Session.Error e ->
      Error
        (Fmt.str "seed %d: generated program failed to compile: %s@\n%s" seed
           (Session.error_string e) src)
  | compiled -> (
      let run_mode ?columnar ~semi_naive ~cache () =
        Session.run
          ~config:(mode_config ?columnar ~semi_naive ~cache ())
          ~provenance:(Registry.create spec) compiled ()
      in
      let run_batch_mode ?columnar () =
        Session.run_batch ~jobs:2
          ~config:(mode_config ?columnar ~semi_naive:true ~cache:true ())
          ~provenance_of:(fun _ -> Registry.create spec)
          compiled
          [| []; [] |]
        |> Array.to_list
        |> List.mapi (fun i outcome ->
               match outcome with
               | Ok r -> (i, snapshot r)
               | Error e ->
                   failwith
                     (Fmt.str "run_batch sample %d failed: %s" i (Session.error_string e)))
      in
      match
        let reference = snapshot (run_mode ~semi_naive:false ~cache:false ()) in
        let semi = snapshot (run_mode ~semi_naive:true ~cache:false ()) in
        let semi_cached = snapshot (run_mode ~semi_naive:true ~cache:true ()) in
        let modes =
          [
            ("naive+cache", snapshot (run_mode ~semi_naive:false ~cache:true ()));
            ("semi-naive", semi);
            ("semi-naive+cache", semi_cached);
          ]
        in
        let batch = run_batch_mode () in
        let batch_modes =
          List.map (fun (i, snap) -> (Fmt.str "run_batch[%d] jobs=2" i, snap)) batch
        in
        (* The columnar executor is checked {e bit-exactly} against its
           same-mode tree-walker twin — same fixpoint strategy, same cache
           setting, sequentially and across a 2-domain batch. *)
        let columnar_pairs =
          [
            ( "columnar-naive",
              snapshot (run_mode ~columnar:true ~semi_naive:false ~cache:false ()),
              reference );
            ( "columnar",
              snapshot (run_mode ~columnar:true ~semi_naive:true ~cache:true ()),
              semi_cached );
            ( "columnar+nocache",
              snapshot (run_mode ~columnar:true ~semi_naive:true ~cache:false ()),
              semi );
          ]
          @ List.map2
              (fun (i, csnap) (_, tsnap) ->
                (Fmt.str "columnar run_batch[%d] jobs=2" i, csnap, tsnap))
              (run_batch_mode ~columnar:true ())
              batch
        in
        List.filter_map
          (fun (name, snap) ->
            if snapshots_equal reference snap then None else Some name)
          (modes @ batch_modes)
        @ List.filter_map
            (fun (name, csnap, tsnap) ->
              if snapshots_bit_equal csnap tsnap then None else Some name)
            columnar_pairs
      with
      | [] -> Ok ()
      | diverged ->
          Error
            (Fmt.str "seed %d: modes diverged from naive reference: %s@\n%s" seed
               (String.concat ", " diverged) src)
      | exception Failure msg -> Error (Fmt.str "seed %d: %s@\n%s" seed msg src)
      | exception Session.Error e ->
          Error
            (Fmt.str "seed %d: evaluation failed: %s@\n%s" seed
               (Session.error_string e) src))

(** Run seeds [first..first+count-1]; returns the failures. *)
let check_range ?(recursion = true) ~spec ~master_seed ~first ~count () : string list =
  let base_rng = Rng.create master_seed in
  let failures = ref [] in
  for seed = first to first + count - 1 do
    match check_seed ~recursion ~spec ~base_rng ~seed () with
    | Ok () -> ()
    | Error msg -> failures := msg :: !failures
  done;
  List.rev !failures

(* ---- incremental sessions: assert/retract/query interleavings --------------- *)

module Incr = Scallop_incr.Incr

(* Random dynamic facts over the generated EDB relations; the 0..4 domain
   overlaps the static 0..3 facts, so overlay-over-static tag merges and
   pure tag changes both occur. *)
let gen_dyn_fact rng : string * float * Tuple.t =
  let pred = if Rng.int rng 2 = 0 then "e0" else "e1" in
  let v n = Value.int Value.I32 n in
  ( pred,
    0.2 +. (0.8 *. Rng.float rng),
    Tuple.of_list [ v (Rng.int rng 5); v (Rng.int rng 5) ] )

(** Drive one random assert/retract/query interleaving against an
    incremental session and demand bit-identity with the cold-run oracle
    ({!Incr.run_cold}) at every query.  [Error msg] names the seed. *)
let check_incr_seed ?(recursion = true) ?(ops = 16) ~(spec : Registry.spec)
    ~(base_rng : Rng.t) ~(seed : int) () : (unit, string) result =
  let rng = Rng.substream base_rng seed in
  let src, _queried = gen_program ~recursion rng in
  match Incr.open_session ~spec src with
  | exception Session.Error e ->
      Error
        (Fmt.str "seed %d: generated program failed to open: %s@\n%s" seed
           (Session.error_string e) src)
  | t -> (
      let live = ref [] in
      let failure = ref None in
      let do_assert () =
        let pred, prob, tuple = gen_dyn_fact rng in
        Incr.assert_fact t ~pred ~prob tuple;
        live :=
          (pred, tuple)
          :: List.filter
               (fun (p, u) -> not (String.equal p pred && Tuple.compare u tuple = 0))
               !live
      in
      let check_query what =
        let q = Incr.query t in
        let c = Incr.run_cold t in
        if not (snapshots_bit_equal (snapshot q) (snapshot c)) then
          failure :=
            Some
              (Fmt.str "seed %d: %s: incremental result diverged from cold run@\n%s" seed
                 what src)
      in
      (try
         for op = 1 to ops do
           if Option.is_none !failure then
             match Rng.int rng 5 with
             | 0 | 1 | 2 -> do_assert ()
             | 3 -> (
                 match !live with
                 | [] -> do_assert ()
                 | l ->
                     let i = Rng.int rng (List.length l) in
                     let pred, tuple = List.nth l i in
                     Incr.retract_fact t ~pred tuple;
                     live := List.filteri (fun j _ -> j <> i) l)
             | _ -> check_query (Fmt.str "after op %d" op)
         done;
         if Option.is_none !failure then check_query "final state"
       with Session.Error e ->
         failure :=
           Some
             (Fmt.str "seed %d: session raised: %s@\n%s" seed (Session.error_string e) src));
      match !failure with None -> Ok () | Some msg -> Error msg)

(** Sequential seed sweep; returns the failures. *)
let check_incr_range ?(recursion = true) ~spec ~master_seed ~first ~count () : string list =
  let base_rng = Rng.create master_seed in
  let failures = ref [] in
  for seed = first to first + count - 1 do
    match check_incr_seed ~recursion ~spec ~base_rng ~seed () with
    | Ok () -> ()
    | Error msg -> failures := msg :: !failures
  done;
  List.rev !failures

(** The same sweep split across two domains running concurrently: sessions
    in both domains share the compiled-plan cache ([Session.compile_cached]
    is keyed by source hash), so this exercises multi-tenant sharing under
    parallelism.  [Rng.substream] derives child streams without advancing
    the parent, so concurrent derivation is safe and seeds stay stable. *)
let check_incr_parallel ?(recursion = true) ~spec ~master_seed ~first ~count () :
    string list =
  let base_rng = Rng.create master_seed in
  let sweep first count =
    List.init count (fun i -> first + i)
    |> List.filter_map (fun seed ->
           match check_incr_seed ~recursion ~spec ~base_rng ~seed () with
           | Ok () -> None
           | Error msg -> Some msg)
  in
  let half = count / 2 in
  let other = Domain.spawn (fun () -> sweep (first + half) (count - half)) in
  let mine = sweep first half in
  mine @ Domain.join other
