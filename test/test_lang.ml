(** End-to-end tests of the Scallop language through {!Session}: every
    construct of paper Sec. 3 — facts and fact sets, Horn rules, recursion,
    stratified negation and aggregation, foreign functions and their failure
    semantics, constants, connectives, probabilistic facts/rules, samplers,
    forall/exists, group-by — executed under discrete and probabilistic
    provenances and checked against hand-computed results. *)

open Scallop_core

let check = Alcotest.check

let run ?(provenance = Registry.Boolean) ?facts ?(seed = 0) src =
  let config =
    { (Interp.default_config ()) with Interp.rng = Scallop_utils.Rng.create seed }
  in
  Session.interpret ~config ~provenance:(Registry.create provenance) ?facts src

(** Extract an output relation as a sorted list of tuple strings with
    probabilities rounded to 4 decimals. *)
let rows result pred =
  Session.output result pred
  |> List.map (fun (t, o) -> Fmt.str "%a@%.4f" Tuple.pp t (Provenance.Output.prob o))
  |> List.sort compare

let rows_no_prob result pred =
  Session.output result pred |> List.map (fun (t, _) -> Tuple.to_string t) |> List.sort compare

let slist = Alcotest.(list string)

(* ---- facts and basic rules ------------------------------------------------------ *)

let test_single_fact () =
  let r = run {|rel greeting("hello")
query greeting|} in
  check slist "fact" [ {|("hello")|} ] (rows_no_prob r "greeting")

let test_fact_set () =
  let r = run {|rel person = {"Alice", "Bob", "Christine"}
query person|} in
  check Alcotest.int "three people" 3 (List.length (rows_no_prob r "person"))

let test_fact_tuples () =
  let r =
    run
      {|type edge(i32, i32)
rel edge = {(0, 1), (1, 2)}
rel out(b) = edge(1, b)
query out|}
  in
  check slist "selected" [ "(2)" ] (rows_no_prob r "out")

let test_conjunction_join () =
  let r =
    run
      {|rel mother = {("Bob", "Christine")}
rel father = {("Alice", "Bob")}
rel grandmother(a, c) :- father(a, b), mother(b, c)
query grandmother|}
  in
  check slist "join" [ {|("Alice", "Christine")|} ] (rows_no_prob r "grandmother")

let test_disjunction_two_rules () =
  let r =
    run
      {|rel a = {1}
rel b = {2}
rel c(x) = a(x)
rel c(x) = b(x)
query c|}
  in
  check slist "union" [ "(1)"; "(2)" ] (rows_no_prob r "c")

let test_logical_connectives () =
  let r =
    run
      {|rel mother = {("Bob", "Christine"), ("Dana", "Erin")}
rel father = {("Alice", "Bob")}
rel parent(a, b) = mother(a, b) or father(a, b)
rel gm(a, c) = (mother(a, b) or father(a, b)) and mother(b, c)
query parent
query gm|}
  in
  check Alcotest.int "three parents" 3 (List.length (rows_no_prob r "parent"));
  check slist "grandmother via or" [ {|("Alice", "Christine")|} ] (rows_no_prob r "gm")

let test_implies_in_body () =
  (* p implies q  ≡  ¬p ∨ q; with p false the implication holds *)
  let r =
    run
      {|rel item = {1, 2}
rel flagged = {2}
rel special = {2}
rel ok(x) = item(x) and (flagged(x) implies special(x))
query ok|}
  in
  check slist "implication" [ "(1)"; "(2)" ] (rows_no_prob r "ok")

let test_wildcards () =
  let r =
    run
      {|type edge(i32, i32)
rel edge = {(0, 1), (0, 2), (3, 1)}
rel has_succ(x) = edge(x, _)
query has_succ|}
  in
  check slist "wildcard" [ "(0)"; "(3)" ] (rows_no_prob r "has_succ")

let test_constants () =
  let r =
    run
      {|const FATHER = 0, MOTHER = 1, GRANDMOTHER = 2
rel composition(FATHER, MOTHER, GRANDMOTHER)
rel out(c) = composition(0, 1, c)
query out|}
  in
  check slist "const" [ "(2)" ] (rows_no_prob r "out")

let test_typed_const_and_cast () =
  let r =
    run {|const X: u8 = 300
rel v(X)
query v|}
  in
  (* 300 wraps to 44 in u8 *)
  check slist "u8 const wraps" [ "(44)" ] (rows_no_prob r "v")

(* ---- value expressions and foreign functions ------------------------------------- *)

let test_arithmetic_in_head () =
  let r =
    run {|type digit_1(u32), digit_2(u32)
rel digit_1 = {3}
rel digit_2 = {4}
rel sum_2(a + b) = digit_1(a), digit_2(b)
query sum_2|}
  in
  check slist "sum" [ "(7)" ] (rows_no_prob r "sum_2")

let test_comparison_result () =
  let r =
    run
      {|type digit_1(u32), digit_2(u32)
rel digit_1 = {3}
rel digit_2 = {4}
rel less_than(a < b) = digit_1(a), digit_2(b)
query less_than|}
  in
  check slist "comparison value" [ "(true)" ] (rows_no_prob r "less_than")

let test_division_failure_drops_fact () =
  (* paper Sec. 3.2: result contains only 6/1 and 6/2 — division by zero is
     omitted, not an error *)
  let r =
    run {|rel denominator = {0, 1, 2}
rel result(6 / x) = denominator(x)
query result|}
  in
  check slist "div by zero dropped" [ "(3)"; "(6)" ] (rows_no_prob r "result")

let test_string_concat_ff () =
  let r =
    run
      {|rel first_name("Alice")
rel last_name("Lee")
rel full_name($string_concat(x, " ", y)) = first_name(x), last_name(y)
query full_name|}
  in
  check slist "concat" [ {|("Alice Lee")|} ] (rows_no_prob r "full_name")

let test_ff_in_body_atom () =
  (* expressions inside body atom arguments (HWF-style m + 1) *)
  let r =
    run
      {|type sym(usize, String)
rel sym = {(0, "a"), (1, "b"), (2, "c")}
rel pair(x, y) = sym(i, x), sym(i + 1, y)
query pair|}
  in
  check slist "shifted join" [ {|("a", "b")|}; {|("b", "c")|} ] (rows_no_prob r "pair")

let test_cast_expr () =
  let r =
    run {|rel n = {42}
rel s(x as String) = n(x)
query s|}
  in
  check slist "cast to string" [ {|("42")|} ] (rows_no_prob r "s")

let test_if_then_else () =
  let r =
    run
      {|rel n = {1, 5}
rel label(x, if x > 3 then "big" else "small") = n(x)
query label|}
  in
  check slist "conditional" [ {|(1, "small")|}; {|(5, "big")|} ] (rows_no_prob r "label")

let test_string_comparison_select () =
  let r =
    run
      {|rel sym = {(0, "+"), (1, "-")}
rel plus_at(i) = sym(i, "+")
query plus_at|}
  in
  check slist "string const select" [ "(0)" ] (rows_no_prob r "plus_at")

let test_nan_dropped () =
  let r =
    run
      {|type v(f32)
rel v = {4.0, -1.0}
rel r($sqrt(x)) = v(x)
query r|}
  in
  (* sqrt(-1) fails, only sqrt(4) survives *)
  check slist "nan dropped" [ "(2)" ] (rows_no_prob r "r")

(* ---- recursion --------------------------------------------------------------------- *)

let test_transitive_closure () =
  let r =
    run
      {|type edge(i32, i32)
rel edge = {(0, 1), (1, 2), (2, 3)}
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  check Alcotest.int "6 paths" 6 (List.length (rows_no_prob r "path"))

let test_mutual_recursion () =
  let r =
    run
      {|type num(i32)
rel num = {0, 1, 2, 3, 4, 5}
rel even(0)
rel even(x) = odd(y), num(x), x == y + 1
rel odd(x) = even(y), num(x), x == y + 1
query even
query odd|}
  in
  check slist "evens" [ "(0)"; "(2)"; "(4)" ] (rows_no_prob r "even");
  check slist "odds" [ "(1)"; "(3)"; "(5)" ] (rows_no_prob r "odd")

let test_kinship_composition_recursion () =
  let r =
    run
      {|const F = 0, M = 1, GM = 2, GGM = 3
rel composition = {(F, M, GM), (M, M, GM), (GM, M, GGM)}
rel kinship = {(F, "a", "b"), (M, "b", "c"), (M, "c", "d")}
rel kinship(r3, x, z) = kinship(r1, x, y), kinship(r2, y, z), composition(r1, r2, r3)
rel ggm(x, y) = kinship(3, x, y)
query ggm|}
  in
  check slist "great grandmother" [ {|("a", "d")|} ] (rows_no_prob r "ggm")

(* ---- negation ------------------------------------------------------------------------ *)

let test_stratified_negation () =
  let r =
    run
      {|rel person = {"Alice", "Bob", "Christine"}
rel father = {("Alice", "Bob")}
rel mother = {("Bob", "Christine")}
rel has_no_children(p) = person(p) and not father(_, p) and not mother(_, p)
query has_no_children|}
  in
  check slist "no children" [ {|("Alice")|} ] (rows_no_prob r "has_no_children")

let test_negation_with_constant () =
  let r =
    run {|type digit(u32)
rel digit = {5}
rel not_3_or_4() = not digit(3) and not digit(4)
query not_3_or_4|}
  in
  check slist "nullary negation" [ "()" ] (rows_no_prob r "not_3_or_4")

let test_negation_rejects_unstratified () =
  Alcotest.check_raises "unstratified program rejected"
    (Session.Error
       (Exec_error.Unstratifiable { head = "something_is_true"; dep = "something_is_true" }))
    (fun () -> ignore (run {|rel something_is_true() = not something_is_true()|}))

let test_negation_in_recursion_across_strata () =
  (* negation of a lower stratum inside a recursive rule is fine *)
  let r =
    run
      {|type edge(i32, i32), blocked(i32)
rel edge = {(0, 1), (1, 2), (2, 3)}
rel blocked = {2}
rel reach(0)
rel reach(y) = reach(x), edge(x, y), not blocked(y)
query reach|}
  in
  check slist "blocked stops" [ "(0)"; "(1)" ] (rows_no_prob r "reach")

(* ---- aggregation ----------------------------------------------------------------------- *)

let test_count () =
  let r =
    run {|rel person = {"Alice", "Bob", "Christine"}
rel num_people(n) = n := count(p: person(p))
query num_people|}
  in
  check slist "count 3" [ "(3)" ] (rows_no_prob r "num_people")

let test_count_group_by_where () =
  let r =
    run
      {|rel person = {"Alice", "Bob", "Christine"}
rel parent = {("Bob", "Alice"), ("Christine", "Alice")}
rel num_child(p, n) = n := count(c: parent(c, p) where p: person(p))
query num_child|}
  in
  (* Alice has 2; Bob and Christine have 0 (domain from where clause) *)
  check slist "group counts"
    [ {|("Alice", 2)|}; {|("Bob", 0)|}; {|("Christine", 0)|} ]
    (rows_no_prob r "num_child")

let test_sum_and_prod () =
  let r =
    run
      {|type sale(String, i32)
rel sale = {("a", 3), ("b", 4), ("c", 5)}
rel total(t) = t := sum(x: sale(_, x))
rel product(t) = t := prod(x: sale(_, x))
query total
query product|}
  in
  check slist "sum" [ "(12)" ] (rows_no_prob r "total");
  check slist "prod" [ "(60)" ] (rows_no_prob r "product")

let test_min_max () =
  let r =
    run
      {|rel score = {3, 9, 4}
rel best(x) = x := max(s: score(s))
rel worst(x) = x := min(s: score(s))
query best
query worst|}
  in
  check slist "max" [ "(9)" ] (rows_no_prob r "best");
  check slist "min" [ "(3)" ] (rows_no_prob r "worst")

let test_argmax () =
  let r =
    run
      {|type score(String, i32)
rel score = {("a", 3), ("b", 9), ("c", 4)}
rel winner(w) = w := argmax<n>(s: score(n, s))
query winner|}
  in
  check slist "argmax" [ {|("b")|} ] (rows_no_prob r "winner")

let test_exists () =
  let r =
    run
      {|rel num = {1, 2, 3}
rel any_big(b) = b := exists(x: num(x) and x > 2)
rel any_huge(b) = b := exists(x: num(x) and x > 10)
query any_big
query any_huge|}
  in
  check slist "exists true" [ "(true)" ] (rows_no_prob r "any_big");
  check slist "exists false" [ "(false)" ] (rows_no_prob r "any_huge")

let test_forall_integrity_constraint () =
  let r =
    run
      {|type father(String, String), son(String, String)
rel father = {("a", "b")}
rel son = {("b", "a")}
rel sat(b) = b := forall(x, y: father(x, y) implies son(y, x))
query sat|}
  in
  check slist "constraint satisfied" [ "(true)" ] (rows_no_prob r "sat")

let test_forall_violated () =
  let r =
    run
      {|type father(String, String), son(String, String)
rel father = {("a", "b"), ("c", "d")}
rel son = {("b", "a")}
rel sat(b) = b := forall(x, y: father(x, y) implies son(y, x))
query sat|}
  in
  check slist "constraint violated" [ "(false)" ] (rows_no_prob r "sat")

let test_implicit_group_by () =
  (* paper Sec. 3.3: a and b are implicit group-by variables *)
  let r =
    run
      {|type kinship(usize, String, String)
rel kinship = {(0, "A", "B"), (1, "A", "B"), (0, "C", "D")}
rel n_rel(a, b, n) = n := count(rp: kinship(rp, a, b))
query n_rel|}
  in
  check slist "implicit groups" [ {|("A", "B", 2)|}; {|("C", "D", 1)|} ] (rows_no_prob r "n_rel")

let test_aggregate_rejects_recursion () =
  Alcotest.check_raises "aggregation through recursion rejected"
    (Session.Error (Exec_error.Unstratifiable { head = "p"; dep = "p" }))
    (fun () -> ignore (run {|rel p(n) = n := count(x: p(x))|}))

let test_count_over_empty () =
  let r =
    run {|type item(i32)
rel num(n) = n := count(x: item(x))
query num|}
  in
  check slist "count of empty" [ "(0)" ] (rows_no_prob r "num")

(* ---- samplers ----------------------------------------------------------------------------- *)

let test_top_1_sampler () =
  let r =
    run ~provenance:Registry.Max_min_prob
      ~facts:
        [
          ( "kinship",
            [
              (Provenance.Input.prob 0.95, Tuple.of_list [ Value.int Value.USize 0 ]);
              (Provenance.Input.prob 0.01, Tuple.of_list [ Value.int Value.USize 1 ]);
              (Provenance.Input.prob 0.04, Tuple.of_list [ Value.int Value.USize 2 ]);
            ] );
        ]
      {|type kinship(usize)
rel top_1(r) = r := top<1>(rp: kinship(rp))
query top_1|}
  in
  check slist "top-1 keeps most likely" [ "(0)@0.9500" ] (rows r "top_1")

let test_top_k_group_by () =
  let r =
    run ~provenance:Registry.Max_min_prob
      ~facts:
        [
          ( "kinship",
            [
              (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.USize 0; Value.string "A" ]);
              (Provenance.Input.prob 0.1, Tuple.of_list [ Value.int Value.USize 1; Value.string "A" ]);
              (Provenance.Input.prob 0.2, Tuple.of_list [ Value.int Value.USize 0; Value.string "B" ]);
              (Provenance.Input.prob 0.8, Tuple.of_list [ Value.int Value.USize 1; Value.string "B" ]);
            ] );
        ]
      {|type kinship(usize, String)
rel top_1(r, p) = r := top<1>(rp: kinship(rp, p))
query top_1|}
  in
  check slist "per-group top-1" [ {|(0, "A")@0.9000|}; {|(1, "B")@0.8000|} ] (rows r "top_1")

let uniform_src =
  {|rel item = {1, 2, 3, 4, 5, 6, 7, 8}
rel picked(x) = x := uniform<3>(i: item(i))
query picked|}

let categorical_src =
  {|type item(usize)
rel item = {0.1::(1), 0.2::(2), 0.3::(3), 0.15::(4), 0.25::(5)}
rel picked(x) = x := categorical<3>(i: item(i))
query picked|}

(* Samplers draw without replacement: exactly min(k, |population|) results. *)
let test_uniform_sampler_count () =
  for seed = 0 to 20 do
    let r = run ~seed uniform_src in
    check Alcotest.int "uniform<3> returns exactly 3" 3
      (List.length (rows_no_prob r "picked"))
  done;
  (* k ≥ population: everything is returned *)
  let r =
    run ~seed:5 {|rel item = {1, 2}
rel picked(x) = x := uniform<3>(i: item(i))
query picked|}
  in
  check slist "k past population" [ "(1)"; "(2)" ] (rows_no_prob r "picked")

let test_categorical_sampler_count () =
  for seed = 0 to 20 do
    let r = run ~provenance:Registry.Max_min_prob ~seed categorical_src in
    check Alcotest.int "categorical<3> returns exactly 3" 3
      (List.length (rows_no_prob r "picked"))
  done;
  (* zero total weight (boolean provenance weights are all equal): still k *)
  let r = run ~seed:3 {|rel item = {1, 2, 3, 4}
rel picked(x) = x := categorical<2>(i: item(i))
query picked|} in
  check Alcotest.int "categorical under uniform weights" 2
    (List.length (rows_no_prob r "picked"))

let test_sampler_determinism () =
  (* same seed → same sample; and samples arrive in sorted tuple order *)
  List.iter
    (fun src ->
      let a = rows_no_prob (run ~seed:11 src) "picked" in
      let b = rows_no_prob (run ~seed:11 src) "picked" in
      check slist "same seed, same sample" a b;
      let unsorted =
        Session.output (run ~seed:11 src) "picked" |> List.map (fun (t, _) -> Tuple.to_string t)
      in
      check slist "emitted in deterministic sorted order" a unsorted)
    [ uniform_src; categorical_src ];
  (* different seeds eventually differ (uniform<3> of 8: 56 subsets) *)
  let base = rows_no_prob (run ~seed:0 uniform_src) "picked" in
  let any_diff =
    List.exists
      (fun seed -> rows_no_prob (run ~seed uniform_src) "picked" <> base)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  check Alcotest.bool "seed actually varies the draw" true any_diff

(* ---- probabilistic extensions ------------------------------------------------------------------ *)

let prob_of result pred tuple_str =
  Session.output result pred
  |> List.find_opt (fun (t, _) -> Tuple.to_string t = tuple_str)
  |> Option.map (fun (_, o) -> Provenance.Output.prob o)

let test_probabilistic_facts () =
  let r =
    run ~provenance:(Registry.Top_k_proofs 10)
      {|type coin(usize)
rel coin = {0.6::(0); 0.4::(1)}
rel heads() = coin(0)
query heads|}
  in
  check (Alcotest.option (Alcotest.float 1e-6)) "p heads" (Some 0.6) (prob_of r "heads" "()")

let test_independent_vs_exclusive () =
  (* comma-separated facts are independent: both can hold *)
  let r =
    run ~provenance:(Registry.Top_k_proofs 10)
      {|type f(usize)
rel f = {0.5::(0), 0.5::(1)}
rel both() = f(0), f(1)
query both|}
  in
  check (Alcotest.option (Alcotest.float 1e-6)) "independent product" (Some 0.25)
    (prob_of r "both" "()");
  (* semicolon-separated facts are mutually exclusive: conjunction impossible *)
  let r =
    run ~provenance:(Registry.Top_k_proofs 10)
      {|type f(usize)
rel f = {0.5::(0); 0.5::(1)}
rel both() = f(0), f(1)
query both|}
  in
  check (Alcotest.option (Alcotest.float 1e-6)) "exclusive conjunction" None
    (prob_of r "both" "()")

let test_probabilistic_rule () =
  (* paper Sec. 3.3: rule tagged 0.9 via auxiliary fact *)
  let r =
    run ~provenance:(Registry.Top_k_proofs 10)
      {|type gm(String, String), d(String, String)
rel gm = {("a", "b")}
rel d = {("b", "c")}
rel 0.9::mother(a, c) = gm(a, b) and d(b, c)
query mother|}
  in
  check (Alcotest.option (Alcotest.float 1e-6)) "rule confidence" (Some 0.9)
    (prob_of r "mother" {|("a", "c")|})

let test_noisy_or_two_derivations () =
  let r =
    run ~provenance:(Registry.Top_k_proofs 10)
      {|type e(i32, i32)
rel e = {0.5::(0, 1), 0.5::(0, 2), 1.0::(1, 3), 1.0::(2, 3)}
rel reach(0)
rel reach(y) = reach(x), e(x, y)
rel goal() = reach(3)
query goal|}
  in
  (* P(reach 3) = 1 - (1-0.5)(1-0.5) = 0.75 *)
  check (Alcotest.option (Alcotest.float 1e-6)) "noisy or" (Some 0.75) (prob_of r "goal" "()")

let test_exact_matches_topk_on_small () =
  let src =
    {|type e(i32, i32)
rel e = {0.9::(0, 1), 0.8::(1, 2), 0.7::(0, 2)}
rel path(a, b) = e(a, b)
rel path(a, c) = path(a, b), e(b, c)
query path|}
  in
  let exact = run ~provenance:Registry.Exact_prob src in
  let topk = run ~provenance:(Registry.Top_k_proofs 10) src in
  check slist "exact = top-10 on 2 proofs" (rows exact "path") (rows topk "path")

let test_mmp_semantics () =
  (* max-min-prob: max over derivations of min over facts *)
  let r =
    run ~provenance:Registry.Max_min_prob
      {|type e(i32, i32)
rel e = {0.9::(0, 1), 0.8::(1, 2), 0.6::(0, 2)}
rel path(a, b) = e(a, b)
rel path(a, c) = path(a, b), e(b, c)
query path|}
  in
  (* path(0,2): max(0.6, min(0.9, 0.8)) = 0.8 *)
  check (Alcotest.option (Alcotest.float 1e-6)) "mmp path" (Some 0.8)
    (prob_of r "path" "(0, 2)")

let test_probabilistic_negation () =
  let r =
    run ~provenance:(Registry.Top_k_proofs 10)
      {|type a(i32), b(i32)
rel a = {0.8::(1)}
rel b = {0.3::(1)}
rel only_a(x) = a(x), not b(x)
query only_a|}
  in
  (* P = 0.8 * (1 - 0.3) = 0.56 *)
  check (Alcotest.option (Alcotest.float 1e-6)) "diff-2 semantics" (Some 0.56)
    (prob_of r "only_a" "(1)")

let test_probabilistic_count () =
  let r =
    run ~provenance:(Registry.Top_k_proofs 20)
      {|type enemy(i32)
rel enemy = {0.8::(0), 0.5::(1)}
rel n(x) = x := count(e: enemy(e))
query n|}
  in
  check (Alcotest.option (Alcotest.float 1e-6)) "count 0" (Some 0.1) (prob_of r "n" "(0)");
  check (Alcotest.option (Alcotest.float 1e-6)) "count 1" (Some 0.5) (prob_of r "n" "(1)");
  check (Alcotest.option (Alcotest.float 1e-6)) "count 2" (Some 0.4) (prob_of r "n" "(2)")

(* ---- foreign predicates -------------------------------------------------------------------------- *)

let test_range () =
  let r =
    run {|rel cell(x, y) = range(0, 3, x), range(0, 2, y)
query cell|}
  in
  check Alcotest.int "3x2 grid" 6 (List.length (rows_no_prob r "cell"))

let test_range_with_negation () =
  let r =
    run
      {|type enemy(i32, i32)
rel enemy = {(1, 1)}
rel safe(x, y) = range(0, 2, x), range(0, 2, y), not enemy(x, y)
query safe|}
  in
  check Alcotest.int "3 safe cells" 3 (List.length (rows_no_prob r "safe"))

let test_string_chars () =
  let r =
    run {|rel word = {"abc"}
rel c(i, ch) = word(w), string_chars(w, i, ch)
query c|}
  in
  check slist "chars" [ "(0, 'a')"; "(1, 'b')"; "(2, 'c')" ] (rows_no_prob r "c")

(* ---- error reporting --------------------------------------------------------------------------- *)

let expect_error src f =
  match run src with
  | exception Session.Error e ->
      let msg = Session.error_string e in
      if not (f msg) then Alcotest.failf "unexpected error message: %s" msg
  | _ -> Alcotest.fail "expected an error"

let test_unbound_head_var () =
  expect_error {|rel p(x, y) = q(x)
rel q = {1}|} (fun msg ->
      Scallop_utils.Listx.range 0 1 |> ignore;
      String.length msg > 0
      && (String.length msg >= 7 && String.sub msg 0 5 = "error"
         || String.length msg > 0))

let test_arity_mismatch () =
  expect_error {|rel p = {(1, 2)}
rel q(x) = p(x)|} (fun msg ->
      let has_sub s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      has_sub msg "arity")

let test_type_mismatch () =
  expect_error {|type p(i32)
rel p = {"hello"}|} (fun _ -> true)

let test_parse_error_reported () =
  expect_error {|rel p = |} (fun msg ->
      String.length msg >= 11 && String.sub msg 0 11 = "parse error")

let test_unbound_negated_var () =
  expect_error {|rel q = {1}
rel p(x) = q(x), not r(y)
rel r = {1}|} (fun _ -> true)

(* ---- multi-output / query behaviour ------------------------------------------------------------- *)

let test_query_restricts_outputs () =
  let r =
    run {|rel a = {1}
rel b(x) = a(x)
rel c(x) = b(x)
query c|}
  in
  check Alcotest.int "only one output" 1 (List.length r.Session.outputs)

let test_import () =
  let lib = {|rel base = {1, 2}|} in
  let config = Interp.default_config () in
  let r =
    let compiled =
      Session.compile ~load:(fun f -> if f = "lib.scl" then Some lib else None)
        {|import "lib.scl"
rel doubled(x + x) = base(x)
query doubled|}
    in
    Session.run ~config ~provenance:(Registry.create Registry.Boolean) compiled ()
  in
  check slist "imported facts" [ "(2)"; "(4)" ] (rows_no_prob r "doubled")

let suite =
  [
    ("single fact", test_single_fact);
    ("fact set", test_fact_set);
    ("fact tuples", test_fact_tuples);
    ("conjunction join", test_conjunction_join);
    ("disjunction two rules", test_disjunction_two_rules);
    ("logical connectives", test_logical_connectives);
    ("implies in body", test_implies_in_body);
    ("wildcards", test_wildcards);
    ("constants", test_constants);
    ("typed const wraps", test_typed_const_and_cast);
    ("arithmetic in head", test_arithmetic_in_head);
    ("comparison result", test_comparison_result);
    ("division failure drops fact", test_division_failure_drops_fact);
    ("$string_concat", test_string_concat_ff);
    ("expression in body atom", test_ff_in_body_atom);
    ("cast expression", test_cast_expr);
    ("if then else", test_if_then_else);
    ("string constant select", test_string_comparison_select);
    ("NaN dropped", test_nan_dropped);
    ("transitive closure", test_transitive_closure);
    ("mutual recursion", test_mutual_recursion);
    ("kinship composition recursion", test_kinship_composition_recursion);
    ("stratified negation", test_stratified_negation);
    ("nullary negation", test_negation_with_constant);
    ("unstratified rejected", test_negation_rejects_unstratified);
    ("negation across strata", test_negation_in_recursion_across_strata);
    ("count", test_count);
    ("count group-by where", test_count_group_by_where);
    ("sum and prod", test_sum_and_prod);
    ("min max", test_min_max);
    ("argmax", test_argmax);
    ("exists", test_exists);
    ("forall satisfied", test_forall_integrity_constraint);
    ("forall violated", test_forall_violated);
    ("implicit group-by", test_implicit_group_by);
    ("aggregate through recursion rejected", test_aggregate_rejects_recursion);
    ("count over empty", test_count_over_empty);
    ("top-1 sampler", test_top_1_sampler);
    ("top-k group-by", test_top_k_group_by);
    ("uniform sampler", test_uniform_sampler_count);
    ("categorical sampler", test_categorical_sampler_count);
    ("sampler determinism", test_sampler_determinism);
    ("probabilistic facts", test_probabilistic_facts);
    ("independent vs exclusive", test_independent_vs_exclusive);
    ("probabilistic rule", test_probabilistic_rule);
    ("noisy or", test_noisy_or_two_derivations);
    ("exact = top-k small", test_exact_matches_topk_on_small);
    ("max-min-prob semantics", test_mmp_semantics);
    ("probabilistic negation", test_probabilistic_negation);
    ("probabilistic count", test_probabilistic_count);
    ("range foreign predicate", test_range);
    ("range with negation", test_range_with_negation);
    ("string_chars", test_string_chars);
    ("unbound head var", test_unbound_head_var);
    ("arity mismatch", test_arity_mismatch);
    ("type mismatch", test_type_mismatch);
    ("parse error reported", test_parse_error_reported);
    ("unbound negated var", test_unbound_negated_var);
    ("query restricts outputs", test_query_restricts_outputs);
    ("import", test_import);
  ]
  |> List.map (fun (name, f) -> Alcotest.test_case name `Quick f)

(* ---- session robustness (appended) -------------------------------------------- *)

let test_unknown_output_relation () =
  let c = Session.compile {|rel p = {1}
query p|} in
  let r =
    Session.run ~provenance:(Registry.create Registry.Boolean) c ~outputs:[ "nonexistent" ] ()
  in
  check Alcotest.int "unknown relation is empty" 0 (List.length (Session.output r "nonexistent"))

let test_empty_program () =
  let r = run "" in
  check Alcotest.int "no outputs" 0 (List.length r.Session.outputs)

let test_facts_only_program () =
  let r = run {|rel p = {1, 2, 3}
query p|} in
  check Alcotest.int "EDB-only query" 3 (List.length (rows_no_prob r "p"))

let test_rule_overrides_nothing () =
  (* facts and rules can coexist on the same predicate (Rule-1/2/3 merge) *)
  let r = run {|rel p = {1}
rel q = {10}
rel p(x) = q(x)
query p|} in
  check slist "merged" [ "(1)"; "(10)" ] (rows_no_prob r "p")

let test_zero_probability_fact_discarded () =
  (* early removal is per-provenance: max-min-prob discards zero tags
     eagerly; formula provenances keep the variable (its recovered
     probability is 0, and a gradient can revive it during training) *)
  let src = {|type p(i32)
rel q(x) = p(x)
query q|} in
  let facts =
    [ ("p", [ (Provenance.Input.prob 0.0, Tuple.of_list [ Value.int Value.I32 1 ]) ]) ]
  in
  let r_mmp = run ~provenance:Registry.Max_min_prob ~facts src in
  check Alcotest.int "mmp discards" 0 (List.length (rows_no_prob r_mmp "q"));
  let r_tkp = run ~provenance:(Registry.Top_k_proofs 5) ~facts src in
  check (Alcotest.float 1e-9) "formula keeps at prob 0" 0.0
    (Session.prob_of r_tkp "q" (Tuple.of_list [ Value.int Value.I32 1 ]))

let test_self_join () =
  let r = run {|type e(i32, i32)
rel e = {(0, 1), (1, 2)}
rel two_hop(a, c) = e(a, b), e(b, c)
query two_hop|} in
  check slist "self join" [ "(0, 2)" ] (rows_no_prob r "two_hop")

let test_repeated_variable_in_atom () =
  let r = run {|type e(i32, i32)
rel e = {(0, 0), (0, 1), (2, 2)}
rel loop(x) = e(x, x)
query loop|} in
  check slist "diagonal" [ "(0)"; "(2)" ] (rows_no_prob r "loop")

let test_long_chain_recursion () =
  (* 60-node chain: stresses fixpoint depth *)
  let facts =
    [
      ( "e",
        List.init 60 (fun i ->
            ( Provenance.Input.none,
              Tuple.of_list [ Value.int Value.I32 i; Value.int Value.I32 (i + 1) ] )) );
    ]
  in
  let r =
    run ~facts {|type e(i32, i32)
rel reach(0)
rel reach(y) = reach(x), e(x, y)
query reach|}
  in
  check Alcotest.int "full chain reached" 61 (List.length (rows_no_prob r "reach"))

let suite =
  suite
  @ List.map
      (fun (n, f) -> Alcotest.test_case n `Quick f)
      [
        ("unknown output relation", test_unknown_output_relation);
        ("empty program", test_empty_program);
        ("facts-only program", test_facts_only_program);
        ("facts and rules merge", test_rule_overrides_nothing);
        ("zero-probability early removal", test_zero_probability_fact_discarded);
        ("self join", test_self_join);
        ("repeated variable in atom", test_repeated_variable_in_atom);
        ("long chain recursion", test_long_chain_recursion);
      ]
