(** Fault-injection suite for the fault-tolerant training runtime:

    - injected crashes at several kill points, with resume-from-checkpoint
      required to reproduce the uninterrupted run's parameters bit for bit;
    - checkpoint corruption (byte flips, truncation) falling back to the
      previous valid generation — and still converging to the same params;
    - NaN injection into the perception layer via
      [Layers.classify_fault_hook], quarantined by the guarded optimizer
      step without poisoning training;
    - provenance degradation: a budget too tight for the full top-k spec is
      rescued by retrying down [Registry.degrade]'s ladder.

    Everything here is deterministic: the degradation trigger uses the
    machine-independent [max_iterations] budget axis (proof tags on a
    diamond chain saturate later than max-min tags), not wall-clock. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core
open Scallop_apps
module Rng = Scallop_utils.Rng
module Faults = Scallop_utils.Faults
module Atomic_io = Scallop_utils.Atomic_io

let check = Alcotest.check

(* ---- a small self-contained trainer whose parameters we can inspect ---------- *)

let synth_data =
  let rng = Rng.create 2026 in
  List.init 24 (fun _ ->
      let x = Nd.init [| 1; 8 |] (fun _ -> Rng.float rng) in
      (x, Rng.int rng 4))

let trainer_config =
  { Common.default_config with Common.epochs = 2; n_train = List.length synth_data; n_test = 0 }

let make () =
  let rng = Rng.create 7 in
  let mlp = Layers.Mlp.create rng [ 8; 16; 4 ] in
  let opt = Optim.adam ~lr:0.01 (Layers.Mlp.params mlp) in
  (mlp, opt)

(* Train for [trainer_config.epochs] epochs; with [crash_at], raise [Exit]
   once [crash_at] optimizer steps have completed (simulating a crash in the
   middle of the next step). *)
let run ?checkpoint ?crash_at (mlp, opt) =
  let steps = ref 0 in
  Common.run_task ?checkpoint ~task:"synthetic" ~config:trainer_config ~train_data:synth_data
    ~test_data:[] ~opt
    ~train_step:(fun (x, c) ->
      (match crash_at with
      | Some n ->
          incr steps;
          if !steps > n then raise Exit
      | None -> ());
      Common.bce (Layers.Mlp.classify mlp (Autodiff.const x)) (Autodiff.const (Common.one_hot 4 c)))
    ~eval_sample:(fun _ -> true)
    ()

let params_blob (mlp, _) =
  String.concat ""
    (List.map
       (fun (p : Autodiff.t) -> Serialize.nd_to_string p.Autodiff.value)
       (Layers.Mlp.params mlp))

let reference_blob =
  lazy
    (let m = make () in
     ignore (run m);
     params_blob m)

let fresh_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scallop-test-resilience-%s-%d" name (Unix.getpid ()))
  in
  Atomic_io.clear ~dir;
  dir

let ck_of dir = { (Common.checkpoint dir) with Common.every_n_steps = 2 }

(* Steps recovered by a fresh resume attempt (0 when nothing valid). *)
let resume_steps ck =
  let _, opt = make () in
  match Common.try_resume ~ck ~opt ~rngs:[] with Some (steps, _, _) -> steps | None -> 0

(* ---- 1. crash + resume is bit-identical at every kill point ------------------- *)

let test_crash_resume_kill_point kill () =
  let dir = fresh_dir (Printf.sprintf "kill%d" kill) in
  let ck = ck_of dir in
  let crashed = make () in
  (try
     ignore (run ~checkpoint:ck ~crash_at:kill crashed);
     Alcotest.fail "injected crash did not fire"
   with Exit -> ());
  let recovered = resume_steps ck in
  if recovered <= 0 || recovered > kill then
    Alcotest.failf "recovered %d steps after killing at step %d" recovered kill;
  let resumed = make () in
  ignore (run ~checkpoint:ck resumed);
  check Alcotest.bool
    (Printf.sprintf "kill@%d: resumed params bit-identical to uninterrupted run" kill)
    true
    (String.equal (params_blob resumed) (Lazy.force reference_blob));
  Atomic_io.clear ~dir:dir

(* ---- 2. corrupted newest snapshot falls back to the previous generation ------- *)

let corrupt_newest ~dir f =
  match List.rev (Atomic_io.generations ~dir) with
  | [] -> Alcotest.fail "no snapshot generations on disk"
  | newest :: _ ->
      let path = Atomic_io.path_of ~dir newest in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      let corrupted = f body in
      let oc = open_out_bin path in
      output_string oc corrupted;
      close_out oc

let test_corruption_fallback name corrupter () =
  let dir = fresh_dir name in
  let ck = ck_of dir in
  let crashed = make () in
  (try ignore (run ~checkpoint:ck ~crash_at:12 crashed) with Exit -> ());
  let before = resume_steps ck in
  corrupt_newest ~dir corrupter;
  let after = resume_steps ck in
  if not (after > 0 && after < before) then
    Alcotest.failf "expected fallback to an older generation, got %d steps (was %d)" after
      before;
  (* replay from the older snapshot must still land on the reference params *)
  let resumed = make () in
  ignore (run ~checkpoint:ck resumed);
  check Alcotest.bool "params after corrupted-snapshot fallback" true
    (String.equal (params_blob resumed) (Lazy.force reference_blob));
  Atomic_io.clear ~dir

let flip_last_byte body =
  let b = Bytes.of_string body in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

let truncate_half body = String.sub body 0 (String.length body / 2)

(* ---- 3. NaN injection through the perception fault hook ----------------------- *)

let with_fault_hook hook f =
  Layers.classify_fault_hook := Some hook;
  Fun.protect ~finally:(fun () -> Layers.classify_fault_hook := None) f

let test_nan_injection_quarantined () =
  let calls = ref 0 in
  let report =
    with_fault_hook
      (fun y ->
        incr calls;
        if !calls mod 5 = 0 then Nd.map (fun _ -> Float.nan) y else y)
      (fun () -> run (make ()))
  in
  if report.Common.faults.Faults.nan_quarantined <= 0 then
    Alcotest.fail "no NaN losses were quarantined despite the injected faults";
  (* the poisoned steps were skipped: the loss curve stays finite *)
  List.iter
    (fun l ->
      if not (Float.is_finite l) then Alcotest.failf "epoch loss %f is not finite" l)
    report.Common.losses

let test_nan_injection_params_finite () =
  let m = make () in
  let calls = ref 0 in
  ignore
    (with_fault_hook
       (fun y ->
         incr calls;
         if !calls mod 3 = 0 then Nd.map (fun _ -> Float.nan) y else y)
       (fun () -> run m));
  let mlp, _ = m in
  List.iter
    (fun (p : Autodiff.t) ->
      if not (Nd.is_finite p.Autodiff.value) then
        Alcotest.fail "non-finite parameter survived NaN quarantine")
    (Layers.Mlp.params mlp)

let test_clean_run_no_faults () =
  let report = run (make ()) in
  check Alcotest.int "clean run quarantines nothing" 0 (Faults.total report.Common.faults)

(* ---- 4. provenance degradation under a tight budget --------------------------- *)

(* K unequal diamonds: a_i -0.9-> a_{i+1} directly, and a_i -0.4-> m_i -0.4->
   a_{i+1} through the long arm.  Second-best proofs of reach(0, 2K) arrive
   one fixpoint iteration after the best one, so top-k tags (k >= 2)
   saturate at iteration 9+, single-proof tags at 8: max_iterations = 8
   deterministically fails k in {8,4,2} and succeeds from k = 1 down. *)
let reach_src =
  "type edge(i32, i32)\n\
   rel reach(x, y) = edge(x, y)\n\
   rel reach(x, z) = reach(x, y), edge(y, z)\n\
   query reach"

let k_diamonds = 7

let diamond_edges =
  let e = ref [] in
  for i = 0 to k_diamonds - 1 do
    let a = 2 * i and m = (2 * i) + 1 and b = 2 * (i + 1) in
    e := (0.9, a, b) :: (0.4, a, m) :: (0.4, m, b) :: !e
  done;
  Array.of_list (List.rev !e)

let diamond_tuples =
  Array.map
    (fun (_, x, y) -> Tuple.of_list [ Value.int Value.I32 x; Value.int Value.I32 y ])
    diamond_edges

let diamond_sample () =
  let probs =
    Autodiff.const
      (Nd.init [| 1; Array.length diamond_edges |] (fun i ->
           let p, _, _ = diamond_edges.(i) in
           p))
  in
  {
    Scallop_layer.inputs =
      [ Scallop_layer.dense_mapping ~pred:"edge" ~tuples:diamond_tuples ~probs
          ~mutually_exclusive:false ];
    static_facts = [];
  }

let diamond_candidates =
  [| Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 (2 * k_diamonds) ] |]

let tight_config =
  { (Interp.default_config ()) with Interp.budget = Budget.make ~max_iterations:8 () }

let test_degradation_ladder_shape () =
  let ladder = Registry.degradation_ladder (Registry.Diff_top_k_proofs_me 8) in
  check Alcotest.bool "ladder from difftopkproofs-me-8 halves k, then min-max" true
    (ladder
    = [ Registry.Diff_top_k_proofs_me 8; Registry.Diff_top_k_proofs_me 4;
        Registry.Diff_top_k_proofs_me 2; Registry.Diff_top_k_proofs_me 1;
        Registry.Diff_max_min_prob ]);
  check Alcotest.bool "the bottom rung does not degrade further" true
    (Registry.degrade Registry.Diff_max_min_prob = None);
  check Alcotest.bool "exact WMC falls back to top-k enumeration" true
    (Registry.degrade Registry.Diff_exact_prob = Some (Registry.Diff_top_k_proofs 3))

let test_tight_budget_fails_plain () =
  let compiled = Session.compile reach_src in
  let r =
    Scallop_layer.try_forward_batch ~config:tight_config
      ~spec:(Registry.Diff_top_k_proofs_me 8) ~compiled ~out_pred:"reach"
      ~candidates:diamond_candidates
      [| diamond_sample () |]
  in
  match r.(0) with
  | Error (Exec_error.Budget_exceeded { kind = Exec_error.Iterations; _ }) -> ()
  | Error e -> Alcotest.failf "wrong diagnostic: %s" (Session.error_string e)
  | Ok _ -> Alcotest.fail "full-fidelity run fit in a budget sized to exclude it"

let test_degradation_rescues_sample () =
  let compiled = Session.compile reach_src in
  let faults = Faults.create () in
  let r =
    Scallop_layer.resilient_forward_batch ~config:tight_config ~faults
      ~spec:(Registry.Diff_top_k_proofs_me 8) ~compiled ~out_pred:"reach"
      ~candidates:diamond_candidates
      [| diamond_sample () |]
  in
  (match r.(0) with
  | Ok y ->
      let p = Nd.get1 (Autodiff.value y) 0 in
      if not (Float.is_finite p && p >= 0.0 && p <= 1.0) then
        Alcotest.failf "degraded output %f is not a probability" p
  | Error e -> Alcotest.failf "degradation did not rescue the sample: %s" (Session.error_string e));
  check Alcotest.int "exactly one sample degraded" 1 faults.Faults.degraded;
  check Alcotest.int "nothing skipped" 0 faults.Faults.budget_skipped

let test_max_degrade_zero_skips () =
  let compiled = Session.compile reach_src in
  let faults = Faults.create () in
  let r =
    Scallop_layer.resilient_forward_batch ~config:tight_config ~max_degrade:0 ~faults
      ~spec:(Registry.Diff_top_k_proofs_me 8) ~compiled ~out_pred:"reach"
      ~candidates:diamond_candidates
      [| diamond_sample () |]
  in
  (match r.(0) with
  | Error (Exec_error.Budget_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong diagnostic: %s" (Session.error_string e)
  | Ok _ -> Alcotest.fail "max_degrade:0 still retried the ladder");
  check Alcotest.int "sample counted as skipped" 1 faults.Faults.budget_skipped;
  check Alcotest.int "no degradations" 0 faults.Faults.degraded

let test_nan_probs_quarantined_in_layer () =
  let compiled = Session.compile reach_src in
  let faults = Faults.create () in
  let nan_sample =
    {
      Scallop_layer.inputs =
        [ Scallop_layer.dense_mapping ~pred:"edge" ~tuples:diamond_tuples
            ~probs:(Autodiff.const (Nd.init [| 1; Array.length diamond_edges |] (fun _ -> Float.nan)))
            ~mutually_exclusive:false ];
      static_facts = [];
    }
  in
  let r =
    Scallop_layer.resilient_forward_batch ~faults ~spec:(Registry.Diff_top_k_proofs_me 3)
      ~compiled ~out_pred:"reach" ~candidates:diamond_candidates
      [| nan_sample; diamond_sample () |]
  in
  (match r.(0) with
  | Error (Exec_error.Non_finite _) -> ()
  | Error e -> Alcotest.failf "wrong diagnostic: %s" (Session.error_string e)
  | Ok _ -> Alcotest.fail "NaN input probabilities produced an un-quarantined output");
  (match r.(1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "healthy sibling sample failed: %s" (Session.error_string e));
  check Alcotest.int "one quarantine" 1 faults.Faults.nan_quarantined

let suite =
  [
    Alcotest.test_case "crash@3 + resume is bit-identical" `Quick
      (test_crash_resume_kill_point 3);
    Alcotest.test_case "crash@7 + resume is bit-identical" `Quick
      (test_crash_resume_kill_point 7);
    Alcotest.test_case "crash@12 + resume is bit-identical" `Quick
      (test_crash_resume_kill_point 12);
    Alcotest.test_case "byte-flipped snapshot falls back a generation" `Quick
      (test_corruption_fallback "flip" flip_last_byte);
    Alcotest.test_case "truncated snapshot falls back a generation" `Quick
      (test_corruption_fallback "trunc" truncate_half);
    Alcotest.test_case "injected NaNs are quarantined, training completes" `Quick
      test_nan_injection_quarantined;
    Alcotest.test_case "params stay finite under NaN injection" `Quick
      test_nan_injection_params_finite;
    Alcotest.test_case "clean run records zero faults" `Quick test_clean_run_no_faults;
    Alcotest.test_case "degradation ladder shape" `Quick test_degradation_ladder_shape;
    Alcotest.test_case "tight budget fails the full-fidelity run" `Quick
      test_tight_budget_fails_plain;
    Alcotest.test_case "degradation ladder rescues the sample" `Quick
      test_degradation_rescues_sample;
    Alcotest.test_case "max_degrade:0 skips instead of retrying" `Quick
      test_max_degrade_zero_skips;
    Alcotest.test_case "NaN input probabilities are quarantined in-batch" `Quick
      test_nan_probs_quarantined_in_layer;
  ]
