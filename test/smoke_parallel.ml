(** Smoke check for the parallel runtime, run by [dune build @smoke]: a
    2-domain {!Session.run_batch} must be bit-identical to the sequential
    reference map.  Exits nonzero on any divergence. *)

open Scallop_core
module Rng = Scallop_utils.Rng

let src =
  {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
rel n_path(n) = n := count(p: path(0, p))
rel picked(b) = b := uniform<2>(x: path(0, x))
query path
query n_path
query picked|}

let sample data_rng i =
  let rng = Rng.substream data_rng i in
  let edges = ref [] in
  for a = 0 to 5 do
    for b = 0 to 5 do
      if a <> b && Rng.float rng < 0.5 then
        edges :=
          ( Provenance.Input.prob (0.05 +. (0.9 *. Rng.float rng)),
            Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] )
          :: !edges
    done
  done;
  [ ("edge", List.rev !edges) ]

let () =
  let compiled = Session.compile src in
  let data_rng = Rng.create 2024 in
  let batch = Array.init 8 (fun i -> sample data_rng i) in
  let config = { (Interp.default_config ()) with Interp.rng = Rng.create 3 } in
  let failures = ref 0 in
  List.iter
    (fun spec ->
      let name = Provenance.name (Registry.create spec) in
      let reference =
        Array.mapi
          (fun i facts ->
            Session.run
              ~config:(Session.batch_config config i)
              ~provenance:(Registry.create spec) compiled ~facts ())
          batch
      in
      let parallel =
        Session.run_batch_exn ~jobs:2 ~config
          ~provenance_of:(fun _ -> Registry.create spec)
          compiled batch
      in
      Array.iteri
        (fun i (r : Session.result) ->
          let ok =
            Stdlib.compare reference.(i).Session.outputs r.Session.outputs = 0
            && Stdlib.compare reference.(i).Session.fact_ids r.Session.fact_ids = 0
          in
          if not ok then begin
            incr failures;
            Fmt.epr "smoke: %s sample %d diverges between jobs=2 and sequential@." name i
          end)
        parallel;
      Fmt.pr "smoke: %-22s 2-domain batch %s@." name
        (if !failures = 0 then "deterministic" else "DIVERGED"))
    [ Registry.Boolean; Registry.Max_min_prob; Registry.Diff_top_k_proofs_me 3 ];
  if !failures > 0 then exit 1
