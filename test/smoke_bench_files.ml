(** Smoke check: every BENCH_*.json referenced by ROADMAP.md or the bench
    harness exists at the repo root and parses as JSON.

    Benchmark baselines are part of the contract between PRs ("no worse than
    the committed entry"), so a reference to a file that was never
    regenerated — or that a partial bench run left truncated — should fail
    loudly here rather than silently weakening the next comparison. *)

(* The action runs inside _build/default/test; the sources and the committed
   BENCH files live at the repo root. *)
let repo_root =
  let cwd = Sys.getcwd () in
  let marker = "/_build/" in
  let rec find i =
    if i + String.length marker > String.length cwd then None
    else if String.sub cwd i (String.length marker) = marker then Some (String.sub cwd 0 i)
    else find (i + 1)
  in
  match find 0 with Some root -> root | None -> cwd

let read_file path =
  let ic = open_in_bin path in
  let s = In_channel.input_all ic in
  close_in ic;
  s

(* ---- minimal JSON acceptor (no external JSON dependency in this tree) -------- *)

exception Bad of string

let parse_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then
      pos := !pos + String.length word
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    let digits () =
      let start = !pos in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if !pos = start then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "expected a JSON value"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

(* ---- collect BENCH_*.json references ------------------------------------------ *)

let is_name_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' -> true
  | _ -> false

let bench_refs text =
  let refs = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    (match String.index_from_opt text !i 'B' with
    | None -> i := n
    | Some j ->
        if j + 6 <= n && String.sub text j 6 = "BENCH_" then begin
          let e = ref (j + 6) in
          while !e < n && is_name_char text.[!e] do
            incr e
          done;
          if !e + 5 <= n && String.sub text !e 5 = ".json" then begin
            let name = String.sub text j (!e + 5 - j) in
            if not (List.mem name !refs) then refs := name :: !refs
          end;
          i := j + 1
        end
        else i := j + 1);
  done;
  List.rev !refs

(* ---- columnar audit of BENCH_interp.json ------------------------------------- *)

let count_substring (text : string) (sub : string) : int =
  let n = String.length text and m = String.length sub in
  let count = ref 0 in
  let i = ref 0 in
  while !i + m <= n do
    if String.sub text !i m = sub then incr count;
    incr i
  done;
  !count

(* Extract the numeric value following ["key": ] in [text]. *)
let json_number_field (text : string) (key : string) : float option =
  let probe = Printf.sprintf "%S:" key in
  let n = String.length text and m = String.length probe in
  let rec find i = if i + m > n then None else if String.sub text i m = probe then Some (i + m) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
      let e = ref start in
      while
        !e < n
        && (match text.[!e] with ' ' | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true | _ -> false)
      do
        incr e
      done;
      float_of_string_opt (String.trim (String.sub text start (!e - start)))

(** The columnar executor rides on BENCH_interp.json: both engine variants
    must be represented (row-oriented baseline and columnar twin of each
    workload), and the pinned TC-500 speedup must stay at or above the 10x
    gate the bench harness enforces ([col_gate] in bench/main.ml).  A
    regeneration that silently dropped the columnar rows — or pinned a
    regressed multiple — fails here instead of weakening the contract. *)
let audit_interp_columnar (text : string) : string list =
  let errs = ref [] in
  let nag msg = errs := msg :: !errs in
  let col_true = count_substring text "\"columnar\": true" in
  let col_false = count_substring text "\"columnar\": false" in
  if col_true < 4 then
    nag (Printf.sprintf "expected >= 4 columnar rows, found %d" col_true);
  if col_false < 4 then
    nag (Printf.sprintf "expected >= 4 row-engine rows, found %d" col_false);
  (match json_number_field text "tc500_columnar_speedup" with
  | None -> nag "missing numeric tc500_columnar_speedup field"
  | Some x when x < 10.0 ->
      nag (Printf.sprintf "tc500_columnar_speedup %.2f below the pinned 10x gate" x)
  | Some _ -> ());
  List.rev !errs

let () =
  let sources = [ "ROADMAP.md"; Filename.concat "bench" "main.ml" ] in
  let referenced =
    List.concat_map
      (fun rel ->
        let path = Filename.concat repo_root rel in
        if Sys.file_exists path then bench_refs (read_file path)
        else begin
          Fmt.epr "smoke_bench_files: missing source %s@." path;
          exit 1
        end)
      sources
    |> List.sort_uniq compare
  in
  if referenced = [] then begin
    Fmt.epr "smoke_bench_files: no BENCH_*.json references found (scan broken?)@.";
    exit 1
  end;
  let failures = ref 0 in
  List.iter
    (fun name ->
      let path = Filename.concat repo_root name in
      if not (Sys.file_exists path) then begin
        incr failures;
        Fmt.epr "smoke_bench_files: %s is referenced but not committed@." name
      end
      else
        let text = read_file path in
        match parse_json text with
        | () ->
            let audit_errs =
              if name = "BENCH_interp.json" then audit_interp_columnar text else []
            in
            if audit_errs = [] then Fmt.pr "smoke_bench_files: %s OK@." name
            else
              List.iter
                (fun msg ->
                  incr failures;
                  Fmt.epr "smoke_bench_files: %s: %s@." name msg)
                audit_errs
        | exception Bad msg ->
            incr failures;
            Fmt.epr "smoke_bench_files: %s does not parse: %s@." name msg)
    referenced;
  if !failures > 0 then exit 1;
  Fmt.pr "smoke_bench_files: %d referenced baseline file(s) present and well-formed@."
    (List.length referenced)
