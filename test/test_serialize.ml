(** Bit-exactness of the checkpoint substrate: {!Scallop_tensor.Serialize}
    round-trips (tensors, optimizer state, RNG stream positions — including
    NaN payloads, infinities and signed zeros) and {!Scallop_utils.Atomic_io}
    snapshot files (envelope validation, generation rotation, corruption and
    truncation fallback). *)

open Scallop_tensor
module Rng = Scallop_utils.Rng
module Atomic_io = Scallop_utils.Atomic_io

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Bitwise tensor equality: NaN = NaN when the payloads match, 0.0 <> -0.0. *)
let nd_bits_equal (a : Nd.t) (b : Nd.t) =
  a.Nd.shape = b.Nd.shape
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a.Nd.data b.Nd.data

(* ---- Nd round trips -------------------------------------------------------------- *)

(* Floats whose special cases trip naive (structural-equality or textual)
   serializers: both zeros, infinities, quiet NaN, denormals. *)
let float_gen =
  QCheck.Gen.(
    frequency
      [
        (8, float);
        (1, oneofl [ 0.0; -0.0; infinity; neg_infinity; nan; Float.min_float; epsilon_float ]);
      ])

let nd_gen =
  QCheck.Gen.(
    let* rank = int_range 1 3 in
    let* shape = list_repeat rank (int_range 1 4) in
    let shape = Array.of_list shape in
    let* data = list_repeat (Nd.shape_numel shape) float_gen in
    return { Nd.shape; data = Array.of_list data })

let qcheck_nd_roundtrip =
  qtest "Nd: serialize/deserialize is bit-identical (incl. nan/inf/-0.0)"
    (QCheck.make nd_gen) (fun t -> nd_bits_equal t (Serialize.nd_of_string (Serialize.nd_to_string t)))

let qcheck_nd_double_roundtrip =
  qtest "Nd: snapshot -> restore -> snapshot is byte-identical" (QCheck.make nd_gen) (fun t ->
      let s = Serialize.nd_to_string t in
      String.equal s (Serialize.nd_to_string (Serialize.nd_of_string s)))

let test_nd_truncation_detected () =
  let s = Serialize.nd_to_string (Nd.init [| 2; 3 |] float_of_int) in
  for cut = 0 to String.length s - 1 do
    match Serialize.nd_of_string (String.sub s 0 cut) with
    | _ -> Alcotest.failf "truncation to %d bytes not detected" cut
    | exception Serialize.Corrupt _ -> ()
  done

(* ---- RNG stream positions -------------------------------------------------------- *)

let qcheck_rng_resume_continues_sequence =
  qtest "Rng: restoring a saved state continues the exact sequence"
    QCheck.(pair small_nat small_nat)
    (fun (warmup, n) ->
      let rng = Rng.create 42 in
      for _ = 1 to warmup do
        ignore (Rng.next_int64 rng)
      done;
      let b = Buffer.create 8 in
      Serialize.put_rng b rng;
      let expected = List.init (n + 1) (fun _ -> Rng.next_int64 rng) in
      let restored = Rng.create 0 in
      Serialize.get_rng_into (Serialize.reader (Buffer.contents b)) restored;
      expected = List.init (n + 1) (fun _ -> Rng.next_int64 restored))

let qcheck_rng_substreams_survive_resume =
  qtest "Rng: substreams derived after a restore match the original"
    QCheck.(pair small_nat (int_bound 1000))
    (fun (warmup, i) ->
      let rng = Rng.create 7 in
      for _ = 1 to warmup do
        ignore (Rng.next_int64 rng)
      done;
      let b = Buffer.create 8 in
      Serialize.put_rng b rng;
      let sub = Rng.substream rng i in
      let expected = List.init 4 (fun _ -> Rng.next_int64 sub) in
      let restored = Rng.create 0 in
      Serialize.get_rng_into (Serialize.reader (Buffer.contents b)) restored;
      let sub' = Rng.substream restored i in
      expected = List.init 4 (fun _ -> Rng.next_int64 sub'))

(* ---- optimizer state ------------------------------------------------------------- *)

(* Take [steps] optimizer steps on a 2-parameter least-squares problem; the
   closed-over tensors are what serialization must capture. *)
let trained_opt ~kind ~steps =
  let w = Autodiff.param (Nd.init [| 2; 2 |] (fun i -> 0.1 *. float_of_int (i + 1))) in
  let b = Autodiff.param (Nd.zeros [| 1; 2 |]) in
  let opt =
    match kind with
    | `Adam -> Optim.adam ~lr:0.05 [ w; b ]
    | `Sgd -> Optim.sgd ~momentum:0.9 ~lr:0.05 [ w; b ]
  in
  let x = Autodiff.const (Nd.init [| 3; 2 |] (fun i -> float_of_int (i mod 3) -. 1.0)) in
  let target = Nd.init [| 3; 2 |] (fun i -> float_of_int (i mod 2)) in
  for _ = 1 to steps do
    let y = Autodiff.add_rowvec (Autodiff.matmul x w) b in
    let loss = Autodiff.mse_loss y (Autodiff.const target) in
    opt.Optim.zero_grad ();
    Autodiff.backward loss;
    opt.Optim.step ()
  done;
  opt

let snapshot_opt (opt : Optim.t) =
  let b = Buffer.create 256 in
  Serialize.put_params b opt.Optim.params;
  Serialize.put_optim b opt;
  Buffer.contents b

let roundtrip_kind kind () =
  List.iter
    (fun steps ->
      let opt = trained_opt ~kind ~steps in
      let blob = snapshot_opt opt in
      (* restore into a freshly-initialized instance of the same model *)
      let fresh = trained_opt ~kind ~steps:0 in
      let r = Serialize.reader blob in
      Serialize.get_params_into r fresh.Optim.params;
      Serialize.get_optim_into r fresh;
      check Alcotest.bool
        (Fmt.str "reader consumed the whole snapshot (steps=%d)" steps)
        true (Serialize.at_end r);
      check Alcotest.string
        (Fmt.str "restored state re-serializes identically (steps=%d)" steps)
        blob (snapshot_opt fresh))
    [ 0; 1; 7 ]

let test_optim_kind_mismatch_detected () =
  let adam = trained_opt ~kind:`Adam ~steps:2 in
  let sgd = trained_opt ~kind:`Sgd ~steps:0 in
  let r = Serialize.reader (snapshot_opt adam) in
  Serialize.get_params_into r sgd.Optim.params;
  match Serialize.get_optim_into r sgd with
  | () -> Alcotest.fail "restoring Adam state into SGD must raise Corrupt"
  | exception Serialize.Corrupt _ -> ()

let test_param_shape_mismatch_detected () =
  let b = Buffer.create 64 in
  Serialize.put_params b [ Autodiff.param (Nd.zeros [| 2; 3 |]) ];
  let live = [ Autodiff.param (Nd.zeros [| 3; 2 |]) ] in
  match Serialize.get_params_into (Serialize.reader (Buffer.contents b)) live with
  | () -> Alcotest.fail "shape mismatch must raise Corrupt"
  | exception Serialize.Corrupt _ -> ()

(* ---- Atomic_io snapshot files ---------------------------------------------------- *)

let tmp_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scallop-test-%s-%d" name (Unix.getpid ()))
  in
  Atomic_io.clear ~dir;
  dir

let qcheck_envelope_roundtrip =
  qtest "Atomic_io: encode/decode round-trips any payload" QCheck.string (fun payload ->
      Atomic_io.decode (Atomic_io.encode payload) = Ok payload)

let qcheck_envelope_byte_flip_detected =
  qtest "Atomic_io: any single byte flip is rejected"
    QCheck.(pair string small_nat)
    (fun (payload, pos) ->
      let raw = Bytes.of_string (Atomic_io.encode payload) in
      let pos = pos mod Bytes.length raw in
      Bytes.set raw pos (Char.chr (Char.code (Bytes.get raw pos) lxor 0x01));
      match Atomic_io.decode (Bytes.to_string raw) with
      | Error _ -> true
      | Ok p ->
          (* flipping a payload-length header byte can only "succeed" by
             truncating to a shorter prefix; a full-length Ok must be the
             original *)
          String.length payload > 0 && not (String.equal p payload))

let qcheck_envelope_truncation_detected =
  qtest "Atomic_io: every proper prefix is rejected"
    QCheck.(pair string small_nat)
    (fun (payload, cut) ->
      let raw = Atomic_io.encode payload in
      let cut = cut mod String.length raw in
      match Atomic_io.decode (String.sub raw 0 cut) with Error _ -> true | Ok _ -> false)

let test_save_load_rotation () =
  let dir = tmp_dir "rotation" in
  let gens = List.init 5 (fun i -> Atomic_io.save ~dir ~keep:3 (Printf.sprintf "payload-%d" i)) in
  check (Alcotest.list Alcotest.int) "sequential generation numbers" [ 0; 1; 2; 3; 4 ] gens;
  check (Alcotest.list Alcotest.int) "only the newest 3 survive" [ 2; 3; 4 ]
    (Atomic_io.generations ~dir);
  (match Atomic_io.load_latest ~dir with
  | Some (4, "payload-4") -> ()
  | Some (g, p) -> Alcotest.failf "wrong snapshot loaded: gen %d payload %S" g p
  | None -> Alcotest.fail "no snapshot loaded");
  Atomic_io.clear ~dir;
  check (Alcotest.list Alcotest.int) "clear removes all generations" []
    (Atomic_io.generations ~dir)

let corrupt_file path f =
  let ic = open_in_bin path in
  let raw = Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic) in
  let oc = open_out_bin path in
  output_string oc (f raw);
  close_out oc

let test_load_latest_skips_corrupt () =
  let dir = tmp_dir "corrupt" in
  ignore (Atomic_io.save ~dir "old");
  let newest = Atomic_io.save ~dir "new" in
  (* flip a payload byte of the newest snapshot *)
  corrupt_file (Atomic_io.path_of ~dir newest) (fun raw ->
      let b = Bytes.of_string raw in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
      Bytes.to_string b);
  (match Atomic_io.load_latest ~dir with
  | Some (_, "old") -> ()
  | Some (_, p) -> Alcotest.failf "expected fallback to %S, got %S" "old" p
  | None -> Alcotest.fail "fallback generation not found");
  Atomic_io.clear ~dir

let test_load_latest_skips_truncated () =
  let dir = tmp_dir "truncated" in
  ignore (Atomic_io.save ~dir "old");
  let newest = Atomic_io.save ~dir "new" in
  corrupt_file (Atomic_io.path_of ~dir newest) (fun raw ->
      String.sub raw 0 (String.length raw / 2));
  (match Atomic_io.load_latest ~dir with
  | Some (_, "old") -> ()
  | Some (_, p) -> Alcotest.failf "expected fallback to %S, got %S" "old" p
  | None -> Alcotest.fail "fallback generation not found");
  Atomic_io.clear ~dir

let test_load_latest_empty_dir () =
  let dir = tmp_dir "empty" in
  check Alcotest.bool "no snapshot in a fresh directory" true
    (Atomic_io.load_latest ~dir = None)

let suite =
  [
    qcheck_nd_roundtrip;
    qcheck_nd_double_roundtrip;
    Alcotest.test_case "Nd: truncation raises Corrupt" `Quick test_nd_truncation_detected;
    qcheck_rng_resume_continues_sequence;
    qcheck_rng_substreams_survive_resume;
    Alcotest.test_case "Adam: params+state round-trip bit-identically" `Quick
      (roundtrip_kind `Adam);
    Alcotest.test_case "SGD: velocity round-trips bit-identically" `Quick (roundtrip_kind `Sgd);
    Alcotest.test_case "optimizer kind mismatch raises Corrupt" `Quick
      test_optim_kind_mismatch_detected;
    Alcotest.test_case "parameter shape mismatch raises Corrupt" `Quick
      test_param_shape_mismatch_detected;
    qcheck_envelope_roundtrip;
    qcheck_envelope_byte_flip_detected;
    qcheck_envelope_truncation_detected;
    Alcotest.test_case "save/load: generation rotation keeps newest K" `Quick
      test_save_load_rotation;
    Alcotest.test_case "load_latest: corrupt newest falls back" `Quick
      test_load_latest_skips_corrupt;
    Alcotest.test_case "load_latest: truncated newest falls back" `Quick
      test_load_latest_skips_truncated;
    Alcotest.test_case "load_latest: empty directory" `Quick test_load_latest_empty_dir;
  ]
