(** Runtime-level tests: semi-naive vs naive equivalence (property-based on
    random edge relations), saturation behaviour (the Fig. 10 story: richer
    provenances saturate later than untagged semantics), iteration limits,
    and delta-rewriting structure. *)

open Scallop_core

let check = Alcotest.check

let tc_src =
  {|type e(i32, i32)
rel path(a, b) = e(a, b)
rel path(a, c) = path(a, b), e(b, c)
query path|}

let random_edges seed n max_node =
  let rng = Scallop_utils.Rng.create seed in
  [
    ( "e",
      List.init n (fun _ ->
          ( Provenance.Input.prob (Scallop_utils.Rng.float rng),
            Tuple.of_list
              [
                Value.int Value.I32 (Scallop_utils.Rng.int rng max_node);
                Value.int Value.I32 (Scallop_utils.Rng.int rng max_node);
              ] )) );
  ]

let run_mode ~semi_naive ~provenance ?(cache = true) ?(stats = None) facts src =
  let config =
    { (Interp.default_config ()) with Interp.semi_naive; cache_indices = cache; stats }
  in
  let r = Session.interpret ~config ~provenance:(Registry.create provenance) ~facts src in
  List.concat_map
    (fun (pred, rows) ->
      List.map (fun (t, o) -> Fmt.str "%s%a=%.6f" pred Tuple.pp t (Provenance.Output.prob o)) rows)
    r.Session.outputs
  |> List.sort compare

(* Semi-naive must agree exactly with naive under exact (untruncated)
   provenances; under top-k it may differ slightly because truncation is
   order-dependent, so those are excluded by design (see DESIGN.md). *)
let test_semi_naive_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"semi-naive ≡ naive (exact provenances)"
       QCheck.(pair (int_range 0 1000) (int_range 5 25))
       (fun (seed, n) ->
         let facts = random_edges seed n 8 in
         List.for_all
           (fun provenance ->
             run_mode ~semi_naive:true ~provenance facts tc_src
             = run_mode ~semi_naive:false ~provenance facts tc_src)
           [ Registry.Boolean; Registry.Max_min_prob; Registry.Exact_prob ]))

let test_semi_naive_equivalence_negation () =
  let src =
    {|type e(i32, i32), blocked(i32)
rel reach(0)
rel reach(y) = reach(x), e(x, y), not blocked(y)
query reach|}
  in
  for seed = 0 to 10 do
    let facts =
      random_edges seed 15 6
      @ [ ("blocked", [ (Provenance.Input.prob 0.5, Tuple.of_list [ Value.int Value.I32 3 ]) ]) ]
    in
    check
      Alcotest.(list string)
      "negation under recursion"
      (run_mode ~semi_naive:false ~provenance:Registry.Max_min_prob facts src)
      (run_mode ~semi_naive:true ~provenance:Registry.Max_min_prob facts src)
  done

let iterations ~provenance ~semi_naive facts src =
  let stats = Interp.empty_stats () in
  ignore (run_mode ~semi_naive ~provenance ~stats:(Some stats) facts src);
  stats.Interp.fixpoint_iterations

(* Fig. 10: under max-min-prob the fixed point keeps exploring longer
   reasoning chains after untagged semantics would have stopped — the
   database saturates later (7 vs 4 iterations in the paper's example). *)
let test_fig10_saturation_ordering () =
  (* line graph with a low-probability shortcut: mmp keeps improving tags *)
  let facts =
    [
      ( "e",
        [
          (Provenance.Input.prob 0.1, Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 4 ]);
          (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 1 ]);
          (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.I32 1; Value.int Value.I32 2 ]);
          (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.I32 2; Value.int Value.I32 3 ]);
          (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.I32 3; Value.int Value.I32 4 ]);
        ] );
    ]
  in
  let bool_iters = iterations ~provenance:Registry.Boolean ~semi_naive:false facts tc_src in
  let mmp_iters = iterations ~provenance:Registry.Max_min_prob ~semi_naive:false facts tc_src in
  if mmp_iters < bool_iters then
    Alcotest.failf "mmp should saturate no earlier than boolean (%d vs %d)" mmp_iters bool_iters;
  (* and the mmp tag of the 0→4 path must reflect the better (longer) chain *)
  let r =
    Session.interpret
      ~provenance:(Registry.create Registry.Max_min_prob)
      ~facts tc_src
  in
  let p =
    Session.prob_of r "path" (Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 4 ])
  in
  check (Alcotest.float 1e-9) "best chain wins over shortcut" 0.9 p

let test_iteration_limit () =
  (* natural (counting) tags on a cycle never saturate: must hit the limit *)
  let src = {|type e(i32, i32)
rel e = {(0, 1), (1, 0)}
rel path(a, b) = e(a, b)
rel path(a, c) = path(a, b), e(b, c)
query path|} in
  let config =
    {
      (Interp.default_config ()) with
      Interp.budget = Budget.make ~max_iterations:20 ();
      semi_naive = false;
    }
  in
  match Session.interpret ~config ~provenance:(Registry.create Registry.Natural) src with
  | exception Session.Error (Exec_error.Budget_exceeded { kind = Exec_error.Iterations; _ })
    ->
      ()
  | exception Session.Error e ->
      Alcotest.failf "expected an iteration-limit error, got: %s" (Session.error_string e)
  | _ -> Alcotest.fail "expected iteration limit error"

let test_damp_terminates_on_recursion () =
  (* diff-add-mult-prob's always-true tag saturation (Sec. 4.5.2) means
     iteration stops as soon as the tuple set stops growing — bounded by the
     graph diameter even on cyclic graphs where tags would otherwise keep
     drifting. *)
  let facts = random_edges 3 20 6 in
  let stats = Interp.empty_stats () in
  ignore
    (run_mode ~semi_naive:false ~provenance:Registry.Diff_add_mult_prob ~stats:(Some stats) facts
       tc_src);
  if stats.Interp.fixpoint_iterations > 8 then
    Alcotest.failf "damp should stop at the tuple-set fixpoint (took %d rounds)"
      stats.Interp.fixpoint_iterations

let test_delta_variants_structure () =
  (* Δ(path ⋈ e) for stratum {path} replaces only the path leaf; the spine
     is rebuilt but the off-spine [e] leaf is shared with the base plan *)
  let body =
    Plan.of_expr ~heads:[ "path" ]
      (Ram.Join { lkeys = [ 1 ]; rkeys = [ 0 ]; left = Ram.Pred "path"; right = Ram.Pred "e" })
  in
  check Alcotest.bool "recursive body is variant" false body.Plan.invariant;
  match Plan.delta_variants ~heads:[ "path" ] body with
  | [ { Plan.desc = Plan.Join { left; right; _ }; _ } ] -> (
      match (left.Plan.desc, right.Plan.desc) with
      | Plan.Pred d, Plan.Pred "e" ->
          check Alcotest.bool "mangled delta name" true (d <> "path" && String.length d > 5);
          (match body.Plan.desc with
          | Plan.Join { right = base_right; _ } ->
              check Alcotest.bool "off-spine subtree shared" true (base_right == right);
              check Alcotest.bool "e leaf is invariant" true right.Plan.invariant
          | _ -> Alcotest.fail "base plan shape")
      | _ -> Alcotest.fail "unexpected delta leaf shape")
  | l -> Alcotest.failf "expected one delta variant, got %d" (List.length l)

let test_delta_variants_skip_aggregate () =
  let body =
    Plan.of_expr ~heads:[ "p" ]
      (Ram.Aggregate
         { agg = Ram.Count; key_len = 0; arg_len = 0; group = Ram.No_group; body = Ram.Pred "q" })
  in
  check Alcotest.int "aggregates carry no delta" 0
    (List.length (Plan.delta_variants ~heads:[ "p" ] body))

let test_plan_invariance_and_ids () =
  (* samplers are never invariant; ids are unique in pre-order *)
  let e =
    Ram.Union
      ( Ram.Sample
          { sampler = Ram.Uniform 2; key_len = 0; group = Ram.No_group; body = Ram.Pred "q" },
        Ram.Pred "q" )
  in
  let p = Plan.of_expr ~heads:[] e in
  check Alcotest.bool "sampler poisons invariance" false p.Plan.invariant;
  match p.Plan.desc with
  | Plan.Union (a, b) ->
      check Alcotest.bool "sampler node variant" false a.Plan.invariant;
      check Alcotest.bool "plain pred invariant" true b.Plan.invariant;
      let ids = [ p.Plan.pid; a.Plan.pid; b.Plan.pid ] in
      check Alcotest.int "distinct ids" 3 (List.length (List.sort_uniq compare ids))
  | _ -> Alcotest.fail "plan shape"

(* ---- naive ≡ semi-naive ≡ cached on recursion + negation + aggregation ---- *)

let negagg_src =
  {|type e(i32, i32), blocked(i32)
rel path(a, b) = e(a, b), not blocked(b)
rel path(a, c) = path(a, b), e(b, c), not blocked(c)
rel reach_count(a, n) = n := count(b: path(a, b))
query path
query reach_count|}

(* acyclic (a < b) edge sets keep every provenance's fixpoint finite *)
let random_dag_facts ?(unit_prob = false) seed n max_node =
  let rng = Scallop_utils.Rng.create seed in
  let prob () = if unit_prob then 1.0 else 0.5 +. (0.5 *. Scallop_utils.Rng.float rng) in
  [
    ( "e",
      List.init n (fun _ ->
          let a = Scallop_utils.Rng.int rng max_node in
          let b = a + 1 + Scallop_utils.Rng.int rng (max_node - a) in
          ( Provenance.Input.prob (prob ()),
            Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] )) );
    ("blocked", [ (Provenance.Input.prob (prob ()), Tuple.of_list [ Value.int Value.I32 2 ]) ]);
  ]

let path_support rows =
  List.filter_map
    (fun s ->
      if String.length s >= 4 && String.sub s 0 4 = "path" then
        Some (String.sub s 0 (String.rindex s '='))
      else None)
    rows
  |> List.sort_uniq compare

(* Naive and semi-naive must produce identical recovered outputs whenever ⊕
   is idempotent (boolean, mmp) — naive re-derivation then merges to the same
   tag.  addmultprob's ⊕ is a capped sum and its saturation check ignores
   tags, so naive re-derivation inflates tags toward the cap; exact equality
   is only guaranteed at the cap (unit probabilities), and with fractional
   tags the modes agree on the derived tuple set of the recursive relation
   (aggregate outputs can then differ through ⊖ of drifted tags — same class
   of caveat as top-k truncation, see DESIGN.md).  Cached vs uncached
   evaluation must be bit-identical in every mode. *)
let test_equivalence_negation_aggregation =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"naive ≡ semi-naive ≡ cached (negation + aggregation)"
       QCheck.(pair (int_range 0 1000) (int_range 5 20))
       (fun (seed, n) ->
         let facts = random_dag_facts seed n 8 in
         let unit_facts = random_dag_facts ~unit_prob:true seed n 8 in
         List.for_all
           (fun provenance ->
             let semi = run_mode ~semi_naive:true ~provenance facts negagg_src in
             semi = run_mode ~semi_naive:false ~provenance facts negagg_src
             && semi = run_mode ~semi_naive:true ~cache:false ~provenance facts negagg_src)
           [ Registry.Boolean; Registry.Max_min_prob ]
         && (let semi = run_mode ~semi_naive:true ~provenance:Registry.Add_mult_prob unit_facts negagg_src in
             semi = run_mode ~semi_naive:false ~provenance:Registry.Add_mult_prob unit_facts negagg_src)
         && (let semi = run_mode ~semi_naive:true ~provenance:Registry.Add_mult_prob facts negagg_src in
             semi = run_mode ~semi_naive:true ~cache:false ~provenance:Registry.Add_mult_prob facts negagg_src
             && path_support semi
                = path_support (run_mode ~semi_naive:false ~provenance:Registry.Add_mult_prob facts negagg_src))
         &&
         let semi = run_mode ~semi_naive:true ~provenance:(Registry.Top_k_proofs 3) facts negagg_src in
         semi = run_mode ~semi_naive:true ~cache:false ~provenance:(Registry.Top_k_proofs 3) facts negagg_src))

let test_profiler_populates () =
  let stats = Interp.empty_stats () in
  let config = { (Interp.default_config ()) with Interp.stats = Some stats } in
  let compiled = Session.compile negagg_src in
  let result =
    Session.run ~config ~provenance:(Registry.create Registry.Boolean) compiled
      ~facts:(random_dag_facts 7 15 8) ()
  in
  check Alcotest.bool "stats returned in result" true
    (match result.Session.stats with Some s -> s == stats | None -> false);
  check Alcotest.bool "fixpoint iterations counted" true (stats.Interp.fixpoint_iterations > 0);
  check Alcotest.bool "node stats recorded" true (Hashtbl.length stats.Interp.node_stats > 0);
  Hashtbl.iter
    (fun pid st ->
      if pid < 0 || pid >= compiled.Session.plan.Plan.node_count then
        Alcotest.failf "stat recorded for unknown node id %d" pid;
      if st.Interp.evals <= 0 then Alcotest.failf "node %d recorded without evaluations" pid;
      if st.Interp.seconds < 0.0 then Alcotest.failf "negative wall time on node %d" pid)
    stats.Interp.node_stats;
  (match stats.Interp.stratum_traces with
  | [] -> Alcotest.fail "no stratum traces"
  | traces ->
      let total = List.fold_left (fun acc tr -> acc + tr.Interp.iterations) 0 traces in
      check Alcotest.int "trace iterations sum to total" stats.Interp.fixpoint_iterations total;
      check Alcotest.bool "some stratum is recursive (multi-iteration)" true
        (List.exists (fun tr -> tr.Interp.iterations > 1) traces));
  (* the profile table renders without raising *)
  let table = Fmt.str "%a" (Interp.pp_profile compiled.Session.plan) stats in
  check Alcotest.bool "profile table mentions nodes" true
    (String.length table > 0 && String.sub table 0 3 = "===")

let test_cache_hits_recorded () =
  (* recursive stratum with an invariant [e] leaf: the cached join index /
     sub-relation must be hit on iterations ≥ 2 *)
  let stats = Interp.empty_stats () in
  let config = { (Interp.default_config ()) with Interp.stats = Some stats } in
  let facts =
    [
      ( "e",
        List.init 30 (fun i ->
            ( Provenance.Input.none,
              Tuple.of_list [ Value.int Value.I32 i; Value.int Value.I32 (i + 1) ] )) );
    ]
  in
  ignore
    (Session.interpret ~config ~provenance:(Registry.create Registry.Boolean) ~facts tc_src);
  let hits = Hashtbl.fold (fun _ st acc -> acc + st.Interp.hits) stats.Interp.node_stats 0 in
  check Alcotest.bool "fixpoint cache hit at least once" true (hits > 0);
  check Alcotest.bool "cache table was built" true (stats.Interp.cache_tables > 0)

let test_no_cache_for_non_recursive () =
  (* Regression for the aggregation-sum-count benchmark: with caching
     enabled, a program whose strata are all non-recursive used to pay for
     building cache tables it could never hit (unique node ids mean nothing
     is looked up twice within a single pass).  Such strata must now skip
     cache construction entirely — the cache-stats counters stay at zero —
     while still computing the same answers as an uncached run. *)
  let src =
    {|type score(i32, i32)
rel total(s) = s := sum(v: score(_, v))
rel howmany(n) = n := count(k, v: score(k, v))
query total
query howmany|}
  in
  let facts =
    [
      ( "score",
        List.init 20 (fun i ->
            ( Provenance.Input.none,
              Tuple.of_list [ Value.int Value.I32 i; Value.int Value.I32 (i * 3 mod 17) ] )) );
    ]
  in
  let run ~cache ~stats =
    run_mode ~semi_naive:true ~provenance:Registry.Boolean ~cache ~stats facts src
  in
  let stats = Interp.empty_stats () in
  let cached = run ~cache:true ~stats:(Some stats) in
  let uncached = run ~cache:false ~stats:None in
  check (Alcotest.list Alcotest.string) "cached ≡ uncached" uncached cached;
  check Alcotest.int "no cache table built for non-recursive strata" 0
    stats.Interp.cache_tables;
  let hits = Hashtbl.fold (fun _ st acc -> acc + st.Interp.hits) stats.Interp.node_stats 0 in
  check Alcotest.int "no cache hits recorded" 0 hits

let test_semi_naive_faster_iterations_equal () =
  (* same number of fixpoint rounds, far less work per round; here we just
     assert the round counts agree on a chain graph *)
  let facts =
    [
      ( "e",
        List.init 10 (fun i ->
            ( Provenance.Input.none,
              Tuple.of_list [ Value.int Value.I32 i; Value.int Value.I32 (i + 1) ] )) );
    ]
  in
  let i1 = iterations ~provenance:Registry.Boolean ~semi_naive:false facts tc_src in
  let i2 = iterations ~provenance:Registry.Boolean ~semi_naive:true facts tc_src in
  check Alcotest.int "same rounds" i1 i2

let suite =
  [
    test_semi_naive_equivalence;
    Alcotest.test_case "semi-naive ≡ naive with negation" `Quick
      test_semi_naive_equivalence_negation;
    Alcotest.test_case "Fig. 10 saturation ordering" `Quick test_fig10_saturation_ordering;
    Alcotest.test_case "iteration limit enforced" `Quick test_iteration_limit;
    Alcotest.test_case "damp terminates immediately" `Quick test_damp_terminates_on_recursion;
    Alcotest.test_case "delta variants structure" `Quick test_delta_variants_structure;
    Alcotest.test_case "delta skips aggregates" `Quick test_delta_variants_skip_aggregate;
    Alcotest.test_case "plan invariance and ids" `Quick test_plan_invariance_and_ids;
    test_equivalence_negation_aggregation;
    Alcotest.test_case "profiler populates stats" `Quick test_profiler_populates;
    Alcotest.test_case "fixpoint cache records hits" `Quick test_cache_hits_recorded;
    Alcotest.test_case "no cache tables for non-recursive strata" `Quick
      test_no_cache_for_non_recursive;
    Alcotest.test_case "round counts agree" `Quick test_semi_naive_faster_iterations_equal;
  ]
