(** Determinism of the parallel batched runtime: {!Session.run_batch} over a
    worker pool must be bit-identical to the sequential reference map

    {[ Array.mapi
         (fun i facts ->
           Session.run ~config:(Session.batch_config config i)
             ~provenance:(Registry.create spec) compiled ~facts ())
         batch ]}

    at every worker count — same tuples, same probabilities/proofs, same
    gradients — under discrete, probabilistic and differentiable provenances,
    for programs with recursion, negation, aggregation and samplers.  Also
    unit-tests the {!Scallop_utils.Pool} primitives themselves and the
    {!Scallop_utils.Rng.substream} per-sample seeding API. *)

open Scallop_core
module Rng = Scallop_utils.Rng
module Pool = Scallop_utils.Pool

let check = Alcotest.check

(* ---- Pool primitives ------------------------------------------------------------ *)

let test_pool_map_matches_sequential () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let arr = Array.init n (fun i -> i) in
          let expected = Array.map (fun x -> (x * x) + 1) arr in
          let got =
            Pool.with_pool jobs (fun p -> Pool.parallel_map p ~f:(fun x -> (x * x) + 1) arr)
          in
          check
            Alcotest.(array int)
            (Fmt.str "jobs=%d n=%d" jobs n)
            expected got)
        [ 0; 1; 3; 17; 100 ])
    [ 1; 2; 4 ]

let test_pool_mapi_order () =
  let arr = Array.init 33 (fun i -> 100 - i) in
  let expected = Array.mapi (fun i x -> (i, x)) arr in
  let got =
    Pool.with_pool 4 (fun p -> Pool.parallel_mapi p ~f:(fun i x -> (i, x)) arr)
  in
  check Alcotest.(array (pair int int)) "results land at their input index" expected got

let test_pool_init_state () =
  (* Each worker slot gets its own state from [init]; results must not depend
     on which slot processed which element. *)
  let arr = Array.init 50 (fun i -> i) in
  let got =
    Pool.with_pool 3 (fun p ->
        Pool.parallel_map_init p
          ~init:(fun slot -> Buffer.create (8 + slot))
          ~f:(fun buf _i x ->
            Buffer.clear buf;
            Buffer.add_string buf (string_of_int (x * 2));
            int_of_string (Buffer.contents buf))
          arr)
  in
  check Alcotest.(array int) "per-worker state" (Array.map (fun x -> x * 2) arr) got

exception Boom of int

let test_pool_exception_propagates () =
  Pool.with_pool 4 (fun p ->
      (try
         ignore
           (Pool.parallel_map p ~f:(fun x -> if x = 13 then raise (Boom x) else x)
              (Array.init 40 Fun.id));
         Alcotest.fail "expected Boom"
       with Boom 13 -> ());
      (* the pool must survive a failed job and run subsequent ones *)
      let got = Pool.parallel_map p ~f:succ (Array.init 10 Fun.id) in
      check Alcotest.(array int) "pool usable after exception" (Array.init 10 succ) got)

exception Body_boom

let test_with_pool_body_exception_cleanup () =
  (* An exception raised by the caller's body (between jobs, not inside a
     mapped function) must still stop and join every worker domain.  OCaml
     caps live domains at a small fixed number, so looping would exhaust
     [Domain.spawn] quickly if any domain leaked. *)
  let escaped = ref None in
  for _ = 1 to 100 do
    match
      Pool.with_pool 3 (fun p ->
          escaped := Some p;
          raise Body_boom)
    with
    | () -> Alcotest.fail "body exception swallowed"
    | exception Body_boom -> ()
  done;
  (* and the pool really was shut down, not just abandoned *)
  match !escaped with
  | None -> Alcotest.fail "body never ran"
  | Some p -> (
      match Pool.parallel_map p ~f:Fun.id [| 1; 2; 3 |] with
      | _ -> Alcotest.fail "pool still accepts jobs after with_pool raised"
      | exception Invalid_argument _ -> ())

let test_pool_reuse () =
  Pool.with_pool 2 (fun p ->
      for k = 1 to 5 do
        let got = Pool.parallel_map p ~f:(fun x -> x + k) (Array.init 20 Fun.id) in
        check Alcotest.(array int) "reused pool" (Array.init 20 (fun x -> x + k)) got
      done)

(* ---- Rng substreams ------------------------------------------------------------- *)

let draws rng n = List.init n (fun _ -> Rng.int rng 1_000_000)

let test_substream_pure () =
  let base = Rng.create 42 in
  let a = draws (Rng.substream base 7) 5 in
  (* drawing from a substream must not advance the base, and substream is a
     pure function of (base state, index) *)
  let b = draws (Rng.substream base 7) 5 in
  check Alcotest.(list int) "substream reproducible" a b;
  let before = draws (Rng.substream base 3) 5 in
  ignore (draws (Rng.substream base 9) 5);
  let after = draws (Rng.substream base 3) 5 in
  check Alcotest.(list int) "independent of sibling order" before after

let test_substream_distinct () =
  let base = Rng.create 0 in
  let streams = Rng.split_n base 8 in
  let firsts = Array.to_list (Array.map (fun r -> Rng.int r 1_000_000) streams) in
  let distinct = List.sort_uniq compare firsts in
  check Alcotest.int "substreams differ" (List.length firsts) (List.length distinct)

(* ---- Session.run_batch determinism ---------------------------------------------- *)

(* Recursion + stratified negation + aggregation over probabilistic edges. *)
let graph_src =
  {|type edge(i32, i32)
type node(i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
rel unreachable(b) = node(b), not path(0, b)
rel num_reached(n) = n := count(b: path(0, b))
query path
query unreachable
query num_reached|}

(* Samplers draw from the per-sample RNG substream. *)
let sampler_src =
  {|type item(i32)
rel picked(x) = x := uniform<3>(i: item(i))
rel cat(x) = x := categorical<2>(i: item(i))
query picked
query cat|}

let nodes = 6

(* Per-sample dynamic facts, derived from an RNG substream of [data_rng] so
   every sample of the batch is different but reproducible. *)
let graph_sample data_rng i =
  let rng = Rng.substream data_rng i in
  let edges = ref [] in
  for a = 0 to nodes - 1 do
    for b = 0 to nodes - 1 do
      if a <> b && Rng.float rng < 0.5 then
        edges :=
          ( Provenance.Input.prob (0.05 +. (0.9 *. Rng.float rng)),
            Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] )
          :: !edges
    done
  done;
  let node_facts =
    List.init nodes (fun v ->
        ({ Provenance.Input.prob = None; me_group = None },
         Tuple.of_list [ Value.int Value.I32 v ]))
  in
  [ ("edge", List.rev !edges); ("node", node_facts) ]

let item_sample data_rng i =
  let rng = Rng.substream data_rng i in
  let items =
    List.init 5 (fun v ->
        ( Provenance.Input.prob (0.1 +. (0.8 *. Rng.float rng)),
          Tuple.of_list [ Value.int Value.I32 (v + (10 * i)) ] ))
  in
  [ ("item", items) ]

let result_equal (a : Session.result) (b : Session.result) =
  (* Output.t is plain data (booleans, floats, proof sets, duals with their
     gradient maps), so structural comparison is exactly the bit-identical
     contract — including gradients for differentiable provenances. *)
  Stdlib.compare a.Session.outputs b.Session.outputs = 0
  && Stdlib.compare a.Session.fact_ids b.Session.fact_ids = 0

let check_batch_deterministic ~name ~src ~make_sample ~spec =
  let compiled = Session.compile src in
  let data_rng = Rng.create 99 in
  let batch = Array.init 9 (fun i -> make_sample data_rng i) in
  let config =
    { (Interp.default_config ()) with Interp.rng = Rng.create 7 }
  in
  let reference =
    Array.mapi
      (fun i facts ->
        Session.run
          ~config:(Session.batch_config config i)
          ~provenance:(Registry.create spec) compiled ~facts ())
      batch
  in
  List.iter
    (fun jobs ->
      let got =
        Session.run_batch_exn ~jobs ~config
          ~provenance_of:(fun _ -> Registry.create spec)
          compiled batch
      in
      check Alcotest.int (Fmt.str "%s jobs=%d: length" name jobs) (Array.length reference)
        (Array.length got);
      Array.iteri
        (fun i r ->
          if not (result_equal reference.(i) r) then
            Alcotest.failf "%s jobs=%d: sample %d diverges from sequential reference" name
              jobs i)
        got)
    [ 1; 2; 4 ]

let specs =
  [
    ("boolean", Registry.Boolean);
    ("minmaxprob", Registry.Max_min_prob);
    ("topkproofs", Registry.Top_k_proofs 3);
    ("difftopkproofs-me", Registry.Diff_top_k_proofs_me 3);
  ]

let test_batch_graph () =
  List.iter
    (fun (n, spec) ->
      check_batch_deterministic ~name:("graph/" ^ n) ~src:graph_src
        ~make_sample:graph_sample ~spec)
    specs

let test_batch_samplers () =
  List.iter
    (fun (n, spec) ->
      check_batch_deterministic ~name:("sampler/" ^ n) ~src:sampler_src
        ~make_sample:item_sample ~spec)
    specs

let test_batch_shared_pool () =
  (* run_batch over an explicit long-lived pool (the training-loop shape)
     must agree with the jobs-per-call shape and the sequential map. *)
  let compiled = Session.compile graph_src in
  let data_rng = Rng.create 5 in
  let batch = Array.init 6 (fun i -> graph_sample data_rng i) in
  let spec = Registry.Diff_top_k_proofs_me 3 in
  let seq =
    Session.run_batch_exn ~jobs:1 ~provenance_of:(fun _ -> Registry.create spec) compiled batch
  in
  Pool.with_pool 2 (fun pool ->
      for _round = 1 to 3 do
        let par =
          Session.run_batch_exn ~pool
            ~provenance_of:(fun _ -> Registry.create spec)
            compiled batch
        in
        Array.iteri
          (fun i r ->
            if not (result_equal seq.(i) r) then
              Alcotest.failf "shared pool: sample %d diverges" i)
          par
      done)

(* ---- gradients through the batched layer ---------------------------------------- *)

let test_layer_batch_gradients () =
  (* forward_batch over 2 domains must produce the same probabilities AND
     route the same gradients to the same probs tensors as the sequential
     per-sample forward. *)
  let compiled = Session.compile Scallop_apps.Programs.mnist_sum2 in
  let spec = Registry.Diff_top_k_proofs_me 3 in
  let rng = Rng.create 11 in
  let digit_tuples = Array.init 10 (fun v -> Tuple.of_list [ Value.int Value.U32 v ]) in
  let candidates = Array.init 19 (fun s -> Tuple.of_list [ Value.int Value.U32 s ]) in
  let random_dist () =
    let raw = Array.init 10 (fun _ -> 0.05 +. Rng.float rng) in
    let total = Array.fold_left ( +. ) 0.0 raw in
    Scallop_tensor.Nd.init [| 1; 10 |] (fun j -> raw.(j) /. total)
  in
  let n_samples = 4 in
  let dists = Array.init n_samples (fun _ -> (random_dist (), random_dist ())) in
  let forward_all mk_probs =
    (* fresh autodiff leaves per run so gradients don't accumulate across
       the two executions being compared *)
    let leaves =
      Array.map (fun (a, b) -> (Scallop_tensor.Autodiff.param a, Scallop_tensor.Autodiff.param b)) dists
    in
    let samples =
      Array.map
        (fun (pa, pb) ->
          {
            Scallop_nn.Scallop_layer.inputs =
              [
                Scallop_nn.Scallop_layer.dense_mapping ~pred:"digit_1" ~tuples:digit_tuples
                  ~probs:pa ~mutually_exclusive:true;
                Scallop_nn.Scallop_layer.dense_mapping ~pred:"digit_2" ~tuples:digit_tuples
                  ~probs:pb ~mutually_exclusive:true;
              ];
            static_facts = [];
          })
        leaves
    in
    let ys = mk_probs samples in
    (* backprop a fixed cotangent through every sample's output *)
    Array.iter
      (fun y -> Scallop_tensor.Autodiff.backward (Scallop_tensor.Autodiff.sum y))
      ys;
    let grads =
      Array.map
        (fun (pa, pb) ->
          (Scallop_tensor.Autodiff.grad pa, Scallop_tensor.Autodiff.grad pb))
        leaves
    in
    (Array.map Scallop_tensor.Autodiff.value ys, grads)
  in
  let seq_ys, seq_grads =
    forward_all (fun samples ->
        Array.map
          (fun (s : Scallop_nn.Scallop_layer.sample) ->
            Scallop_nn.Scallop_layer.forward ~spec ~compiled ~inputs:s.inputs
              ~out_pred:"sum_2" ~candidates ())
          samples)
  in
  let par_ys, par_grads =
    forward_all (fun samples ->
        Scallop_nn.Scallop_layer.forward_batch ~jobs:2 ~spec ~compiled ~out_pred:"sum_2"
          ~candidates samples)
  in
  let nd = Alcotest.testable Scallop_tensor.Nd.pp (fun a b -> Stdlib.compare a b = 0) in
  Array.iteri
    (fun i y -> check nd (Fmt.str "sample %d: probabilities" i) y par_ys.(i))
    seq_ys;
  Array.iteri
    (fun i (ga, gb) ->
      let pa, pb = par_grads.(i) in
      check Alcotest.(option nd) (Fmt.str "sample %d: grad digit_1" i) ga pa;
      check Alcotest.(option nd) (Fmt.str "sample %d: grad digit_2" i) gb pb)
    seq_grads

let suite =
  [
    ("pool: map matches sequential", `Quick, test_pool_map_matches_sequential);
    ("pool: mapi preserves input order", `Quick, test_pool_mapi_order);
    ("pool: per-worker init state", `Quick, test_pool_init_state);
    ("pool: exception propagates, pool survives", `Quick, test_pool_exception_propagates);
    ("pool: reusable across jobs", `Quick, test_pool_reuse);
    ("pool: body exception joins all domains", `Quick, test_with_pool_body_exception_cleanup);
    ("rng: substream is pure and stable", `Quick, test_substream_pure);
    ("rng: substreams are distinct", `Quick, test_substream_distinct);
    ("run_batch: graph programs, all provenances", `Quick, test_batch_graph);
    ("run_batch: sampler programs, all provenances", `Quick, test_batch_samplers);
    ("run_batch: shared pool across rounds", `Quick, test_batch_shared_pool);
    ("layer: batched forward matches sequential incl. gradients", `Quick, test_layer_batch_gradients);
  ]
