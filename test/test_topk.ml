(** Differential tests for the guided (lazy best-first) ∨k/∧k/¬k proof
    operators against the eager reference oracle ({!Formula.disj_k_eager} and
    friends, also exposed as the [topkproofseager-k] provenance), plus
    insertion-order determinism, the cross-iteration WMC cache, and the
    rewritten sample-k-proofs draw sequence. *)

open Scallop_core
module Rng = Scallop_utils.Rng

let check = Alcotest.check

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---- environments ---------------------------------------------------------------- *)

let base_probs = [| 0.9; 0.7; 0.5; 0.3; 0.2; 0.6 |]
let nvars = Array.length base_probs
let prob_of v = base_probs.(v mod nvars)

let envs =
  [|
    ("plain", Formula.env prob_of);
    (* all-equal probabilities exercise every tie-break path *)
    ("ties", Formula.env (fun _ -> 0.5));
    (* NaN weights must sort last, consistently, on both sides *)
    ("nan", Formula.env (fun v -> if v mod nvars = 2 then Float.nan else prob_of v));
    (* mutual-exclusion groups make merge_proofs drop conflicting pairs *)
    ("me", Formula.env ~me_group:(fun v -> if v mod nvars < 3 then Some 0 else None) prob_of);
  |]

(* ---- generators -------------------------------------------------------------------- *)

let literal_gen = QCheck.Gen.(pair (int_bound (nvars - 1)) bool)

let proof_gen max_lits =
  QCheck.Gen.(map Formula.proof_of_literals (list_size (int_range 1 max_lits) literal_gen))

let raw_formula_gen ~max_proofs ~max_lits =
  QCheck.Gen.(list_size (int_range 0 max_proofs) (proof_gen max_lits))

let fpp = Fmt.to_to_string Formula.pp

let binop_case_gen =
  QCheck.make
    ~print:(fun (ei, k, a, b) ->
      Fmt.str "env=%s k=%d a=%s b=%s" (fst envs.(ei)) k (fpp a) (fpp b))
    QCheck.Gen.(
      quad
        (int_bound (Array.length envs - 1))
        (int_range 1 5)
        (raw_formula_gen ~max_proofs:6 ~max_lits:4)
        (raw_formula_gen ~max_proofs:6 ~max_lits:4))

(* Negation expands the full CNF→DNF product in the unbounded eager oracle,
   so keep its inputs small enough to stay exact. *)
let neg_case_gen =
  QCheck.make
    ~print:(fun (ei, k, f) -> Fmt.str "env=%s k=%d f=%s" (fst envs.(ei)) k (fpp f))
    QCheck.Gen.(
      triple
        (int_bound (Array.length envs - 1))
        (int_range 1 4)
        (raw_formula_gen ~max_proofs:4 ~max_lits:3))

(* Provenance tags always arrive in canonical order; generated proof soup
   does not, so bring it there first (this is what the guided operators'
   fast paths assume). *)
let canon env f = Formula.top_k env max_int f

(* Same proofs in the same order, and (in particular) the same recovered
   probability.  NaN probabilities recover as NaN on both sides. *)
let agree env guided eager =
  Formula.equal_ordered guided eager
  &&
  let pg = Wmc.prob ~env guided and pe = Wmc.prob ~env eager in
  (Float.is_nan pg && Float.is_nan pe) || Float.abs (pg -. pe) <= 1e-9

(* ---- guided ≡ eager ----------------------------------------------------------------- *)

let qcheck_disj_guided_eq_eager =
  qtest "∨k guided ≡ eager" binop_case_gen (fun (ei, k, ra, rb) ->
      let env = snd envs.(ei) in
      let a = canon env ra and b = canon env rb in
      agree env (Formula.disj_k env k a b) (Formula.disj_k_eager env k a b))

let qcheck_conj_guided_eq_eager =
  qtest "∧k guided ≡ eager" binop_case_gen (fun (ei, k, ra, rb) ->
      let env = snd envs.(ei) in
      let a = canon env ra and b = canon env rb in
      agree env (Formula.conj_k env k a b) (Formula.conj_k_eager env k a b))

let qcheck_neg_guided_eq_eager =
  qtest "¬k guided ≡ unbounded eager" neg_case_gen (fun (ei, k, rf) ->
      let env = snd envs.(ei) in
      let f = canon env rf in
      agree env (Formula.neg_k env k f) (Formula.neg_k_eager ~beam:max_int env k f))

let qcheck_guided_results_canonical =
  qtest "guided results are already canonical" binop_case_gen (fun (ei, k, ra, rb) ->
      let env = snd envs.(ei) in
      let a = canon env ra and b = canon env rb in
      let d = Formula.disj_k env k a b and c = Formula.conj_k env k a b in
      Formula.equal_ordered d (canon env d) && Formula.equal_ordered c (canon env c))

let qcheck_insertion_order_determinism =
  qtest "top-k independent of proof insertion order (equal-probability ties)"
    (QCheck.make
       ~print:(fun (seed, k, f) -> Fmt.str "seed=%d k=%d f=%s" seed k (fpp f))
       QCheck.Gen.(
         triple (int_bound 1000) (int_range 1 5) (raw_formula_gen ~max_proofs:8 ~max_lits:4)))
    (fun (seed, k, rf) ->
      let env = snd envs.(1) (* the all-ties environment *) in
      let shuffled =
        let arr = Array.of_list rf in
        Rng.shuffle (Rng.create seed) arr;
        Array.to_list arr
      in
      Formula.equal_ordered (Formula.top_k env k rf) (Formula.top_k env k shuffled)
      && Formula.equal_ordered
           (Formula.disj_k env k (canon env rf) Formula.ff)
           (Formula.disj_k env k (canon env shuffled) Formula.ff))

(* ---- end-to-end fixpoint differential ----------------------------------------------- *)

let tc_src =
  {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}

let test_fixpoint_guided_vs_eager () =
  let compiled = Session.compile tc_src in
  let facts =
    [
      ( "edge",
        List.init 25 (fun i ->
            ( Provenance.Input.prob (0.5 +. (0.02 *. float_of_int (i mod 25))),
              Tuple.of_list [ Value.int Value.I32 i; Value.int Value.I32 (i + 1) ] )) );
    ]
  in
  let run spec =
    Session.output (Session.run ~provenance:(Registry.create spec) compiled ~facts ()) "path"
  in
  let guided = run (Registry.Top_k_proofs 3) and eager = run (Registry.Top_k_proofs_eager 3) in
  check Alcotest.int "same tuple count" (List.length eager) (List.length guided);
  List.iter2
    (fun (tg, og) (te, oe) ->
      if Tuple.compare tg te <> 0 then Alcotest.failf "tuple mismatch: %a vs %a" Tuple.pp tg Tuple.pp te;
      check (Alcotest.float 1e-9) "same recovered prob" (Provenance.Output.prob oe)
        (Provenance.Output.prob og))
    guided eager

(* ---- WMC cache ----------------------------------------------------------------------- *)

let with_cache_isolated f =
  let was = Wmc.cache_enabled () in
  Fun.protect
    ~finally:(fun () ->
      Wmc.set_cache_enabled was;
      Wmc.clear_cache ())
    (fun () ->
      Wmc.set_cache_enabled true;
      Wmc.clear_cache ();
      f ())

let random_formula rng max_proofs max_lits =
  List.init
    (1 + Rng.int rng max_proofs)
    (fun _ ->
      Formula.proof_of_literals
        (List.init (1 + Rng.int rng max_lits) (fun _ -> (Rng.int rng nvars, Rng.bool rng))))
  |> Formula.dedup

let test_wmc_cache_bit_identical () =
  with_cache_isolated (fun () ->
      let rng = Rng.create 99 in
      let env = snd envs.(0) in
      for _ = 1 to 100 do
        let f = random_formula rng 5 4 in
        Wmc.set_cache_enabled false;
        let reference = Wmc.prob ~env f in
        Wmc.set_cache_enabled true;
        let cold = Wmc.prob ~env f in
        let warm = Wmc.prob ~env f in
        if Int64.bits_of_float cold <> Int64.bits_of_float reference then
          Alcotest.failf "cold cache differs on %s: %h vs %h" (fpp f) cold reference;
        if Int64.bits_of_float warm <> Int64.bits_of_float reference then
          Alcotest.failf "warm cache differs on %s: %h vs %h" (fpp f) warm reference
      done)

let test_wmc_cache_invalidation_on_prob_change () =
  with_cache_isolated (fun () ->
      (* Same formula structure, moved weights: the cached BDD is reused but
         the counted result must not be — weights are part of the result key. *)
      let f =
        [
          Formula.proof_of_literals [ (0, true); (1, true) ];
          Formula.proof_of_literals [ (2, true) ];
        ]
      in
      let mk p = Formula.env (fun v -> p.(v)) in
      let before = (Wmc.cache_stats ()).Wmc.result_misses in
      let a = Wmc.prob ~env:(mk [| 0.9; 0.5; 0.4 |]) f in
      let a' = Wmc.prob ~env:(mk [| 0.9; 0.5; 0.4 |]) f in
      let b = Wmc.prob ~env:(mk [| 0.1; 0.5; 0.4 |]) f in
      check Alcotest.bool "identical env hits" true (Int64.bits_of_float a = Int64.bits_of_float a');
      Wmc.set_cache_enabled false;
      let b_ref = Wmc.prob ~env:(mk [| 0.1; 0.5; 0.4 |]) f in
      check Alcotest.bool "changed env recomputes, not stale" true
        (Int64.bits_of_float b = Int64.bits_of_float b_ref);
      let s = Wmc.cache_stats () in
      (* two distinct weight vectors = exactly two result misses, one hit *)
      check Alcotest.int "result misses" (before + 2) s.Wmc.result_misses;
      check Alcotest.bool "result hit recorded" true (s.Wmc.result_hits >= 1))

let test_wmc_cache_stats_and_clear () =
  with_cache_isolated (fun () ->
      let env = snd envs.(0) in
      let f =
        [
          Formula.proof_of_literals [ (0, true); (3, false) ];
          Formula.proof_of_literals [ (1, true); (4, true) ];
        ]
      in
      let s0 = Wmc.cache_stats () in
      ignore (Wmc.prob ~env f);
      let s1 = Wmc.cache_stats () in
      check Alcotest.int "first call misses bdd" (s0.Wmc.bdd_misses + 1) s1.Wmc.bdd_misses;
      check Alcotest.bool "manager holds nodes" true (s1.Wmc.manager_nodes > 2);
      ignore (Wmc.prob ~env f);
      let s2 = Wmc.cache_stats () in
      check Alcotest.int "second call hits bdd" (s1.Wmc.bdd_hits + 1) s2.Wmc.bdd_hits;
      check Alcotest.int "second call hits result" (s1.Wmc.result_hits + 1) s2.Wmc.result_hits;
      Wmc.clear_cache ();
      ignore (Wmc.prob ~env f);
      let s3 = Wmc.cache_stats () in
      check Alcotest.int "post-clear call misses again" (s2.Wmc.bdd_misses + 1) s3.Wmc.bdd_misses)

let test_wmc_cache_dual_identical () =
  with_cache_isolated (fun () ->
      let rng = Rng.create 1234 in
      let env = snd envs.(0) in
      for _ = 1 to 50 do
        let f = random_formula rng 4 3 in
        Wmc.set_cache_enabled false;
        let reference = Wmc.dual ~env f in
        Wmc.set_cache_enabled true;
        let cold = Wmc.dual ~env f in
        let warm = Wmc.dual ~env f in
        List.iter
          (fun d ->
            check (Alcotest.float 0.0) "dual value" (Dual.value reference) (Dual.value d);
            if Dual.deriv_list d <> Dual.deriv_list reference then
              Alcotest.failf "dual gradient differs on %s" (fpp f))
          [ cold; warm ]
      done)

(* ---- sample-k-proofs draw sequence ----------------------------------------------------- *)

(* The historic list-based sampler (List.nth / List.filteri rebuild per
   round, Rng.categorical on the compacted weights).  The array rewrite in
   Prov_prob.Sample_k_proofs must reproduce its draw sequence exactly. *)
let reference_sample_k env rng k proofs =
  let proofs = Formula.dedup proofs in
  if List.compare_length_with proofs k <= 0 then proofs
  else begin
    let remaining = ref proofs in
    let out = ref [] in
    for _ = 1 to k do
      let weights = Array.of_list (List.map (Formula.proof_prob env) !remaining) in
      let i = Rng.categorical rng weights in
      out := List.nth !remaining i :: !out;
      remaining := List.filteri (fun j _ -> j <> i) !remaining
    done;
    List.rev !out
  end

let test_sample_k_matches_historic_reference () =
  let module S =
    Prov_prob.Sample_k_proofs
      (struct
        let k = 2
        let seed = 7
      end)
      ()
  in
  let mk p = fst (S.tag_of_input (Provenance.Input.prob p)) in
  let rng_ref = Rng.create 7 in
  let same name got expect =
    if not (Formula.equal got expect) then
      Alcotest.failf "%s: sampled %s, reference %s" name (fpp got) (fpp expect)
  in
  (* round 1: mixed weights, including a NaN that poisons the total *)
  let fs = List.map mk [ 0.9; Float.nan; 0.4; 0.8; 0.3 ] in
  let a = List.concat (Scallop_utils.Listx.take 3 fs) in
  let b = List.concat (Scallop_utils.Listx.drop 3 fs) in
  same "nan-total batch" (S.add a b) (reference_sample_k S.env rng_ref 2 (a @ b));
  (* round 2: all-zero weights take the uniform fallback *)
  let zs = List.map mk [ 0.0; 0.0; 0.0 ] in
  let za = List.concat (Scallop_utils.Listx.take 2 zs) in
  let zb = List.concat (Scallop_utils.Listx.drop 2 zs) in
  same "zero-total batch" (S.add za zb) (reference_sample_k S.env rng_ref 2 (za @ zb));
  (* round 3: ordinary weighted draws *)
  let ws = List.map mk [ 0.7; 0.1; 0.6; 0.2; 0.5; 0.05 ] in
  let wa = List.concat (Scallop_utils.Listx.take 4 ws) in
  let wb = List.concat (Scallop_utils.Listx.drop 4 ws) in
  same "weighted batch" (S.add wa wb) (reference_sample_k S.env rng_ref 2 (wa @ wb))

let qcheck_sample_k_matches_reference =
  qtest ~count:100 "sample_k ≡ historic list sampler (shared RNG stream)"
    (QCheck.make
       ~print:(fun ps -> Fmt.str "probs=%a" Fmt.(Dump.list float) ps)
       QCheck.Gen.(
         list_size (int_range 1 10)
           (frequency [ (8, float_bound_inclusive 1.0); (1, return 0.0); (1, return Float.nan) ])))
    (fun probs ->
      let module S =
        Prov_prob.Sample_k_proofs
          (struct
            let k = 3
            let seed = 0
          end)
          ()
      in
      (* the module RNG is freshly seeded, so a reference generator created
         with the same seed replays the exact stream [add] will consume *)
      let fs = List.map (fun p -> fst (S.tag_of_input (Provenance.Input.prob p))) probs in
      let all = List.concat fs in
      let got = S.add all Formula.ff in
      let expect = reference_sample_k S.env (Rng.create 0) 3 all in
      Formula.equal got expect)

let suite =
  [
    qcheck_disj_guided_eq_eager;
    qcheck_conj_guided_eq_eager;
    qcheck_neg_guided_eq_eager;
    qcheck_guided_results_canonical;
    qcheck_insertion_order_determinism;
    Alcotest.test_case "fixpoint: guided ≡ eager provenance" `Quick test_fixpoint_guided_vs_eager;
    Alcotest.test_case "wmc cache: bit-identical to uncached" `Quick test_wmc_cache_bit_identical;
    Alcotest.test_case "wmc cache: weight change invalidates" `Quick
      test_wmc_cache_invalidation_on_prob_change;
    Alcotest.test_case "wmc cache: stats and clear" `Quick test_wmc_cache_stats_and_clear;
    Alcotest.test_case "wmc cache: dual gradients identical" `Quick test_wmc_cache_dual_identical;
    Alcotest.test_case "sample_k: golden draw sequence" `Quick
      test_sample_k_matches_historic_reference;
    qcheck_sample_k_matches_reference;
  ]
