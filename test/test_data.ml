(** Tests for the synthetic dataset generators and the RL environment:
    structural invariants, ground-truth evaluators, determinism from seed. *)

open Scallop_data

let check = Alcotest.check

(* ---- Proto -------------------------------------------------------------------- *)

let test_proto_deterministic () =
  let mk () =
    let rng = Scallop_utils.Rng.create 9 in
    let p = Proto.create ~rng ~classes:4 ~dim:8 () in
    Proto.sample p rng 2
  in
  check (Alcotest.array (Alcotest.float 1e-12)) "same seed same sample" (mk ()).Scallop_tensor.Nd.data
    (mk ()).Scallop_tensor.Nd.data

let test_proto_classes_separable () =
  (* noiseless samples of different classes differ *)
  let rng = Scallop_utils.Rng.create 10 in
  let p = Proto.create ~noise:0.0 ~rng ~classes:3 ~dim:8 () in
  let a = Proto.sample p rng 0 and b = Proto.sample p rng 1 in
  if a.Scallop_tensor.Nd.data = b.Scallop_tensor.Nd.data then
    Alcotest.fail "distinct prototypes expected"

(* ---- MNIST-R ------------------------------------------------------------------- *)

let test_mnist_targets () =
  let d = Mnist.create ~seed:1 () in
  List.iter
    (fun task ->
      List.iter
        (fun (s : Mnist.sample) ->
          check Alcotest.int "image count" (Mnist.num_images task) (List.length s.Mnist.images);
          check Alcotest.int "target" (Mnist.target_of task s.Mnist.digits) s.Mnist.target;
          if s.Mnist.target < 0 || s.Mnist.target >= Mnist.num_outputs task then
            Alcotest.fail "target out of output domain")
        (Mnist.dataset d task 50))
    Mnist.all_tasks

(* ---- HWF ----------------------------------------------------------------------- *)

let test_hwf_eval_formula () =
  let cases =
    [
      ([ "3" ], Some 3.0);
      ([ "1"; "+"; "3"; "/"; "5" ], Some 1.6);
      ([ "2"; "*"; "3"; "+"; "4" ], Some 10.0);
      ([ "2"; "+"; "3"; "*"; "4" ], Some 14.0);
      ([ "8"; "/"; "2"; "/"; "2" ], Some 2.0);
      ([ "5"; "-"; "2"; "-"; "1" ], Some 2.0);
      ([ "1"; "/"; "0" ], None);
    ]
  in
  List.iter
    (fun (syms, expected) ->
      match (Hwf.eval_formula syms, expected) with
      | Some v, Some e -> check (Alcotest.float 1e-9) (String.concat "" syms) e v
      | None, None -> ()
      | _ -> Alcotest.failf "mismatch on %s" (String.concat "" syms))
    cases

let test_hwf_samples_well_formed () =
  let d = Hwf.create ~seed:2 () in
  List.iter
    (fun (s : Hwf.sample) ->
      let n = List.length s.Hwf.syms in
      if n mod 2 = 0 || n > 7 then Alcotest.fail "length must be odd and ≤ 7";
      match Hwf.eval_formula s.Hwf.syms with
      | Some v -> check (Alcotest.float 1e-9) "value matches" v s.Hwf.value
      | None -> Alcotest.fail "sample must evaluate (no div by zero)")
    (Hwf.dataset d 100)

(* ---- Pathfinder ------------------------------------------------------------------ *)

let test_pathfinder_label_consistent () =
  let d = Pathfinder.create ~grid:4 ~seed:3 () in
  List.iter
    (fun (s : Pathfinder.sample) ->
      let a, b = s.Pathfinder.dots in
      check Alcotest.bool "label = BFS reachability" s.Pathfinder.connected
        (Pathfinder.connected_via d s.Pathfinder.dashes a b);
      if a = b then Alcotest.fail "dots must differ";
      check Alcotest.int "one image per edge"
        (Array.length d.Pathfinder.edges)
        (List.length s.Pathfinder.edge_images))
    (Pathfinder.dataset d 50)

let test_pathfinder_balanced () =
  let d = Pathfinder.create ~grid:4 ~seed:4 () in
  let samples = Pathfinder.dataset d 200 in
  let pos = List.length (List.filter (fun s -> s.Pathfinder.connected) samples) in
  if pos < 40 || pos > 160 then Alcotest.failf "labels too imbalanced: %d/200 positive" pos

(* ---- CLUTRR ---------------------------------------------------------------------- *)

let test_clutrr_composition_table () =
  let table = Lazy.force Clutrr.composition_table in
  (* the paper's manual KB has 92 triplets; ours is derived by enumeration
     and must be substantial and functional (unique r3 per (r1, r2)) *)
  if List.length table < 40 then
    Alcotest.failf "composition table too small: %d" (List.length table);
  let pairs = List.map (fun (a, b, _) -> (a, b)) table in
  check Alcotest.int "functional" (List.length pairs)
    (List.length (List.sort_uniq compare pairs));
  (* spot-check: father's mother is grandmother *)
  let f = Clutrr.relation_id "father" and m = Clutrr.relation_id "mother" in
  let gm = Clutrr.relation_id "grandmother" in
  match List.find_opt (fun (a, b, _) -> a = f && b = m) table with
  | Some (_, _, r3) -> check Alcotest.int "father∘mother=grandmother" gm r3
  | None -> Alcotest.fail "father∘mother missing from table"

let test_clutrr_samples () =
  let d = Clutrr.create ~seed:5 () in
  List.iter
    (fun k ->
      List.iter
        (fun (s : Clutrr.sample) ->
          check Alcotest.int "chain length" k (List.length s.Clutrr.chain);
          if s.Clutrr.target < 0 || s.Clutrr.target >= Clutrr.num_relations then
            Alcotest.fail "target relation out of range";
          (* the chain is connected: each fact's object is the next subject *)
          let rec connected = function
            | (_, _, b) :: (((_, a, _) :: _) as rest) ->
                if a <> b then Alcotest.fail "chain not connected" else connected rest
            | _ -> ()
          in
          connected s.Clutrr.chain;
          (* query endpoints are the chain endpoints *)
          let qs, qo = s.Clutrr.query in
          (match s.Clutrr.chain with
          | (_, a, _) :: _ -> check Alcotest.string "query subject" a qs
          | [] -> ());
          match List.rev s.Clutrr.chain with
          | (_, _, b) :: _ -> check Alcotest.string "query object" b qo
          | [] -> ())
        (Clutrr.dataset d ~k 20))
    [ 2; 3; 4 ]

let test_clutrr_unsatisfiable_sampling_capped () =
  (* No generated family tree can realize a 500-hop chain of distinct
     people, so rejection sampling can never succeed: the retry loop must
     stop at its attempt cap with a typed diagnostic instead of spinning
     forever (it used to loop unboundedly). *)
  let d = Clutrr.create ~seed:5 () in
  match Clutrr.sample_retry d ~k:500 with
  | _ -> Alcotest.fail "sample_retry produced an impossible 500-hop chain"
  | exception Scallop_core.Exec_error.Error (Scallop_core.Exec_error.Invalid_input { msg }) ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      if not (contains msg "1000 sampling attempts") then
        Alcotest.failf "diagnostic does not name the attempt cap: %S" msg

let test_clutrr_relation_of_gendered () =
  (* build one deterministic tree and sanity check relations *)
  let rng = Scallop_utils.Rng.create 6 in
  let t = Clutrr.gen_tree rng in
  let n = Array.length t.Clutrr.people in
  (* every child-parent edge must be father/mother matching gender *)
  for a = 0 to n - 1 do
    List.iter
      (fun p ->
        match Clutrr.relation_of t a p with
        | Some r ->
            let name = Clutrr.relations.(r) in
            let parent = Clutrr.person t p in
            if parent.Clutrr.male then check Alcotest.string "father" "father" name
            else check Alcotest.string "mother" "mother" name
        | None -> Alcotest.fail "parent relation must be defined")
      (Clutrr.parents_of t a)
  done

(* ---- Mugen ------------------------------------------------------------------------ *)

let test_mugen_collapse () =
  check
    Alcotest.(list (pair string string))
    "collapse"
    [ ("walk", "left"); ("jump", "right"); ("walk", "left") ]
    (Mugen.collapse
       [ ("walk", "left"); ("walk", "left"); ("jump", "right"); ("walk", "left") ])

let test_mugen_alignment () =
  let d = Mugen.create ~seed:7 () in
  List.iter
    (fun (s : Mugen.sample) ->
      let truth = Mugen.collapse s.Mugen.frames = s.Mugen.text in
      check Alcotest.bool "aligned flag consistent" s.Mugen.aligned truth)
    (Mugen.dataset d 100)

let test_mugen_mods_compatible () =
  let d = Mugen.create ~seed:8 () in
  List.iter
    (fun (s : Mugen.sample) ->
      List.iter
        (fun (a, m) ->
          if not (Array.mem m (Mugen.mods_of_action a)) then
            Alcotest.failf "incompatible pair (%s, %s)" a m)
        s.Mugen.frames)
    (Mugen.dataset d 50)

(* ---- CLEVR ------------------------------------------------------------------------- *)

let test_clevr_reference_evaluator () =
  let scene =
    {
      Clevr.objects =
        [
          { Clevr.oid = 0; shape = "cube"; color = "red"; material = "metal"; size = "small"; x = 0.1; y = 0.5 };
          { Clevr.oid = 1; shape = "cube"; color = "blue"; material = "rubber"; size = "large"; x = 0.9; y = 0.2 };
          { Clevr.oid = 2; shape = "sphere"; color = "red"; material = "metal"; size = "large"; x = 0.5; y = 0.9 };
        ];
    }
  in
  check Alcotest.string "count cubes" "2"
    (Clevr.answer_to_string (Clevr.eval_question scene (Clevr.Count (Clevr.Filter_shape (Clevr.Scene, "cube")))));
  check Alcotest.string "exists red sphere" "true"
    (Clevr.answer_to_string
       (Clevr.eval_question scene
          (Clevr.Exists (Clevr.Filter_color (Clevr.Filter_shape (Clevr.Scene, "sphere"), "red")))));
  check Alcotest.string "query color of sphere" "red"
    (Clevr.answer_to_string
       (Clevr.eval_question scene (Clevr.Query_attr ("color", Clevr.Filter_shape (Clevr.Scene, "sphere")))));
  (* relate: objects left of the (unique) sphere *)
  check Alcotest.string "count left of sphere" "1"
    (Clevr.answer_to_string
       (Clevr.eval_question scene
          (Clevr.Count (Clevr.Relate (Clevr.Filter_shape (Clevr.Scene, "sphere"), "left")))))

let test_clevr_samples () =
  let d = Clevr.create ~seed:9 () in
  List.iter
    (fun (s : Clevr.sample) ->
      let n = List.length s.Clevr.scene.Clevr.objects in
      check Alcotest.int "shape images" n (List.length s.Clevr.shape_images);
      check Alcotest.string "answer consistent"
        (Clevr.answer_to_string (Clevr.eval_question s.Clevr.scene s.Clevr.question))
        (Clevr.answer_to_string s.Clevr.answer))
    (Clevr.dataset d 50)

(* ---- VQAR ---------------------------------------------------------------------------- *)

let test_vqar_taxonomy () =
  check Alcotest.(list string) "poodle ancestry"
    [ "poodle"; "dog"; "animal"; "entity" ]
    (Vqar.ancestors "poodle")

let test_vqar_query_eval () =
  let scene =
    {
      Vqar.objects =
        [
          { Vqar.oid = 0; name = "poodle"; attrs = [ "small" ] };
          { Vqar.oid = 1; name = "oak"; attrs = [] };
          { Vqar.oid = 2; name = "tabby"; attrs = [ "small" ] };
        ];
      rels = [ ("near", 0, 1) ];
    }
  in
  check Alcotest.(list int) "is-a animal" [ 0; 2 ] (Vqar.eval_query scene (Vqar.Q_is_a "animal"));
  check Alcotest.(list int) "small animals" [ 0; 2 ]
    (Vqar.eval_query scene (Vqar.Q_attr ("animal", "small")));
  check Alcotest.(list int) "dog near plant" [ 0 ]
    (Vqar.eval_query scene (Vqar.Q_rel ("dog", "near", "plant")))

let test_vqar_samples () =
  let d = Vqar.create ~seed:11 () in
  List.iter
    (fun (s : Vqar.sample) ->
      check Alcotest.(list int) "answer consistent"
        (Vqar.eval_query s.Vqar.scene s.Vqar.query)
        s.Vqar.answer)
    (Vqar.dataset d 50)

(* ---- PacMan env ------------------------------------------------------------------------ *)

let test_pacman_env () =
  let env = Scallop_envs.Pacman.create ~grid:5 ~seed:12 () in
  for _ = 1 to 20 do
    Scallop_envs.Pacman.reset env;
    (* every reset yields a solvable maze with distinct actor/goal *)
    if not (Scallop_envs.Pacman.solvable env) then Alcotest.fail "unsolvable maze";
    let gt = Scallop_envs.Pacman.ground_truth env in
    let count c =
      Array.fold_left
        (fun acc row -> acc + Array.length (Array.to_list row |> List.filter (( = ) c) |> Array.of_list))
        0 gt
    in
    check Alcotest.int "one actor" 1 (count Scallop_envs.Pacman.Actor);
    check Alcotest.int "one goal" 1 (count Scallop_envs.Pacman.Goal);
    let obs = Scallop_envs.Pacman.observe env in
    check (Alcotest.array Alcotest.int) "obs shape" [| 25; 12 |] obs.Scallop_tensor.Nd.shape
  done

let test_pacman_step_semantics () =
  let env = Scallop_envs.Pacman.create ~grid:5 ~max_steps:10 ~seed:13 () in
  Scallop_envs.Pacman.reset env;
  (* walking into walls keeps the actor in bounds; episodes terminate *)
  let finished = ref false in
  let steps = ref 0 in
  while not !finished do
    incr steps;
    let r = Scallop_envs.Pacman.step env Scallop_envs.Pacman.Up in
    finished := r.Scallop_envs.Pacman.finished
  done;
  if !steps > 10 then Alcotest.fail "step budget not enforced"

let suite =
  [
    Alcotest.test_case "proto deterministic" `Quick test_proto_deterministic;
    Alcotest.test_case "proto classes separable" `Quick test_proto_classes_separable;
    Alcotest.test_case "mnist targets" `Quick test_mnist_targets;
    Alcotest.test_case "hwf eval_formula" `Quick test_hwf_eval_formula;
    Alcotest.test_case "hwf samples well-formed" `Quick test_hwf_samples_well_formed;
    Alcotest.test_case "pathfinder label consistent" `Quick test_pathfinder_label_consistent;
    Alcotest.test_case "pathfinder balanced" `Quick test_pathfinder_balanced;
    Alcotest.test_case "clutrr composition table" `Quick test_clutrr_composition_table;
    Alcotest.test_case "clutrr samples" `Quick test_clutrr_samples;
    Alcotest.test_case "clutrr gendered relations" `Quick test_clutrr_relation_of_gendered;
    Alcotest.test_case "clutrr unsatisfiable sampling is capped" `Quick
      test_clutrr_unsatisfiable_sampling_capped;
    Alcotest.test_case "mugen collapse" `Quick test_mugen_collapse;
    Alcotest.test_case "mugen alignment" `Quick test_mugen_alignment;
    Alcotest.test_case "mugen mod compatibility" `Quick test_mugen_mods_compatible;
    Alcotest.test_case "clevr reference evaluator" `Quick test_clevr_reference_evaluator;
    Alcotest.test_case "clevr samples" `Quick test_clevr_samples;
    Alcotest.test_case "vqar taxonomy" `Quick test_vqar_taxonomy;
    Alcotest.test_case "vqar query eval" `Quick test_vqar_query_eval;
    Alcotest.test_case "vqar samples" `Quick test_vqar_samples;
    Alcotest.test_case "pacman env invariants" `Quick test_pacman_env;
    Alcotest.test_case "pacman step semantics" `Quick test_pacman_step_semantics;
  ]
