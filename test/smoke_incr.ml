(** Incremental-session smoke, run by [dune build @smoke]: 50 mixed
    open/assert/retract/query/close/stats requests piped through
    [scallop serve --jobs 2] driving two concurrent sessions over a shared
    compiled plan.  Every request must get exactly one [done <id> ...]
    status line, the only error replies must be the two deliberate protocol
    misuses, and the final query's rows must equal a transitive closure
    computed independently here.  Exits nonzero otherwise. *)

module SSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let failures = ref 0
let fail fmt = Fmt.kstr (fun m -> incr failures; Fmt.epr "smoke: %s@." m) fmt

let program =
  "type edge(i32, i32); rel path(a, b) = edge(a, b); rel path(a, c) = path(a, b), edge(b, \
   c); query path"

(* Independent oracle: transitive closure of the mirrored edge set. *)
let closure (edges : SSet.t) : SSet.t =
  let rec fix paths =
    let paths' =
      SSet.fold
        (fun (a, b) acc ->
          SSet.fold
            (fun (c, d) acc -> if b = c then SSet.add (a, d) acc else acc)
            edges acc)
        paths paths
    in
    if SSet.equal paths' paths then paths else fix paths'
  in
  fix edges

let () =
  let requests = ref [] in
  let push fmt = Fmt.kstr (fun l -> requests := l :: !requests) fmt in
  let edges = ref SSet.empty in
  (* ids 0-1: open both tenants *)
  push "open s1 %s" program;
  push "open s2 %s" program;
  (* ids 2-44: deterministic mixed updates and queries on both sessions *)
  for i = 0 to 42 do
    match i mod 6 with
    | 0 | 1 ->
        let a = i mod 7 and b = (i + 1) mod 7 in
        edges := SSet.add (a, b) !edges;
        push "assert s1 edge(%d, %d)" a b
    | 2 -> push "assert s2 edge(%d, %d)" (i mod 5) ((i * 3) mod 5)
    | 3 when not (SSet.is_empty !edges) ->
        let a, b = SSet.min_elt !edges in
        edges := SSet.remove (a, b) !edges;
        push "retract s1 edge(%d, %d)" a b
    | 3 -> push "query s1"
    | 4 -> push "query s1"
    | _ -> push "query s2"
  done;
  (* ids 45-46: the deliberate protocol misuses *)
  push "retract s2 edge(99, 99)";
  push "query nosuch";
  (* id 47: cache observability; id 48: the content-checked final query *)
  push "stats";
  push "query s1";
  let final_query_id = List.length !requests - 1 in
  (* id 49: close one tenant *)
  push "close s2";
  let requests = List.rev !requests in
  let n_requests = List.length requests in
  if n_requests <> 50 then fail "request script has %d lines, wanted 50" n_requests;

  let cmd = "../bin/scallop.exe serve -p boolean --jobs 2 2>/dev/null" in
  let out, into = Unix.open_process cmd in
  List.iter (fun l -> output_string into (l ^ "\n")) requests;
  close_out into;
  let lines = ref [] in
  (try
     while true do
       lines := input_line out :: !lines
     done
   with End_of_file -> ());
  let lines = List.rev !lines in
  (match Unix.close_process (out, into) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "scallop serve exited %d" n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> fail "scallop serve killed by signal %d" n);

  let starts_with p l = String.length l >= String.length p && String.sub l 0 (String.length p) = p in
  let done_lines = List.filter (starts_with "done ") lines in
  if List.length done_lines <> n_requests then
    fail "%d done-lines for %d requests" (List.length done_lines) n_requests;
  let error_lines =
    List.filter
      (fun l -> List.exists (String.equal "error") (String.split_on_char ' ' l))
      done_lines
  in
  let expected_errors =
    [
      "done 45 error retract edge(99, 99): fact was never asserted";
      "done 46 error unknown session nosuch";
    ]
  in
  if List.length error_lines <> 2 then
    fail "expected exactly 2 error replies, got %d: %a" (List.length error_lines)
      Fmt.(Dump.list string)
      error_lines;
  List.iter
    (fun g ->
      if not (List.exists (String.equal g) lines) then fail "missing golden reply %S" g)
    expected_errors;

  (* plan-cache sharing is observable: both tenants compiled one plan *)
  (match List.find_opt (starts_with "out 47 plan-cache") lines with
  | None -> fail "no plan-cache stats line"
  | Some l ->
      (* one miss (first open), at least one hit (second open) *)
      let has needle =
        let nh = String.length l and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub l i nn = needle || go (i + 1)) in
        go 0
      in
      if not (has "entries=1") then fail "plan cache should hold 1 entry: %S" l;
      if has "hits=0" then fail "second open should hit the plan cache: %S" l);

  (* content check: the final query's rows = independently computed closure *)
  let prefix = Fmt.str "out %d true::path(" final_query_id in
  let got =
    List.filter_map
      (fun l ->
        if not (starts_with prefix l) then None
        else
          let inner = String.sub l (String.length prefix) (String.length l - String.length prefix - 1) in
          match String.split_on_char ',' inner with
          | [ a; b ] ->
              Some (int_of_string (String.trim a), int_of_string (String.trim b))
          | _ -> None)
      lines
    |> SSet.of_list
  in
  let want = closure !edges in
  if not (SSet.equal got want) then
    fail "final query: got %d path rows, oracle says %d" (SSet.cardinal got)
      (SSet.cardinal want);

  Fmt.pr "smoke: incr serve soak answered %d/%d requests, final closure %d rows ok@."
    (List.length done_lines) n_requests (SSet.cardinal want);
  if !failures > 0 then exit 1
