(** Syntax-level tests: lexer tokens, parser shapes, and acceptance of every
    program in the paper's appendix (our embedded Table 2 programs). *)

open Scallop_core

let check = Alcotest.check

(* ---- lexer -------------------------------------------------------------------- *)

let toks src = Array.to_list (Lexer.tokenize src) |> List.map (fun s -> s.Lexer.tok)

let test_lexer_punctuation () =
  check Alcotest.int "token count" 13
    (List.length (toks "( ) { } , ; :: := :- == != <:"))

let test_lexer_numbers () =
  match toks "42 3.14 1e3 2.5e-2" with
  | [ INT 42; FLOAT a; FLOAT b; FLOAT c; EOF ] ->
      check (Alcotest.float 1e-9) "pi" 3.14 a;
      check (Alcotest.float 1e-9) "1e3" 1000.0 b;
      check (Alcotest.float 1e-9) "2.5e-2" 0.025 c
  | _ -> Alcotest.fail "number lexing"

let test_lexer_strings_escapes () =
  match toks {|"a\nb" 'x' "\"q\""|} with
  | [ STRING "a\nb"; CHARLIT 'x'; STRING "\"q\""; EOF ] -> ()
  | _ -> Alcotest.fail "string lexing"

let test_lexer_comments () =
  match toks "1 // comment\n 2 /* block \n comment */ 3" with
  | [ INT 1; INT 2; INT 3; EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_dollar_at () =
  match toks "$hash @demand" with
  | [ DOLLAR_IDENT "hash"; AT_IDENT "demand"; EOF ] -> ()
  | _ -> Alcotest.fail "$/@ idents"

let test_lexer_error_position () =
  match Lexer.tokenize "rel p\n  #" with
  | exception Lexer.Lex_error (_, pos) ->
      check Alcotest.int "line" 2 pos.Ast.line;
      check Alcotest.int "col" 3 pos.Ast.col
  | _ -> Alcotest.fail "expected lex error"

(* ---- parser -------------------------------------------------------------------- *)

let parse src = Parser.parse_program src
let items src = List.map (fun d -> d.Ast.item) (parse src)

let test_parse_type_decls () =
  match items "type mother(c: String, m: String), father(c: String, f: String)" with
  | [ Ast.I_rel_type { name = "mother"; fields = [ (Some "c", "String"); (Some "m", "String") ] };
      Ast.I_rel_type { name = "father"; _ } ] ->
      ()
  | _ -> Alcotest.fail "type decl shape"

let test_parse_type_alias_subtype () =
  match items "type Relation = usize\ntype Dog <: Animal" with
  | [ Ast.I_type_alias { name = "Relation"; target = "usize" };
      Ast.I_subtype { name = "Dog"; super = "Animal" } ] ->
      ()
  | _ -> Alcotest.fail "alias/subtype shape"

let test_parse_const_multi () =
  match items "const UP = 0, DOWN = 1, RIGHT = 2, LEFT = 3" with
  | [ Ast.I_const [ ("UP", None, _); ("DOWN", None, _); ("RIGHT", None, _); ("LEFT", None, _) ] ]
    ->
      ()
  | _ -> Alcotest.fail "const shape"

let test_parse_fact_set_separators () =
  match items {|rel k = {0.95::(0, "A"); 0.05::(1, "A"), (2, "B")}|} with
  | [ Ast.I_fact_set { pred = "k"; segments = [ seg1; seg2 ] } ] ->
      check Alcotest.int "first segment exclusive pair" 2 (List.length seg1);
      check Alcotest.int "second segment singleton" 1 (List.length seg2)
  | _ -> Alcotest.fail "fact set shape"

let test_parse_rule_both_arrows () =
  match items "rel gm(a, c) :- f(a, b), m(b, c)\nrel gm2(a, c) = f(a, b) and m(b, c)" with
  | [ Ast.I_rule _; Ast.I_rule _ ] -> ()
  | _ -> Alcotest.fail "rule arrows"

let test_parse_tagged_rule () =
  match items "rel 0.9::mother(a, c) = gm(a, b) and d(b, c)" with
  | [ Ast.I_rule { tag = Some t; _ } ] -> check (Alcotest.float 1e-9) "tag" 0.9 t
  | _ -> Alcotest.fail "tagged rule"

let test_parse_reduce_forms () =
  (* count, sampler with <K>, argmax with vars, where clause *)
  let src =
    {|rel a(n) = n := count(p: person(p))
rel b(r) = r := top<1>(rp: kinship(rp, x, y))
rel c(w) = w := argmax<n>(s: score(n, s))
rel d(p, n) = n := count(c: parent(c, p) where p: person(p))|}
  in
  match items src with
  | [ Ast.I_rule { body = Ast.F_reduce { op = Ast.R_aggregate "count"; _ }; _ };
      Ast.I_rule { body = Ast.F_reduce { op = Ast.R_sampler ("top", 1); _ }; _ };
      Ast.I_rule { body = Ast.F_reduce { op = Ast.R_arg_extremum ("argmax", [ "n" ]); _ }; _ };
      Ast.I_rule { body = Ast.F_reduce { where = Some ([ "p" ], _); _ }; _ } ] ->
      ()
  | _ -> Alcotest.fail "reduce forms"

let test_parse_forall_implies () =
  let src =
    {|rel ic(sat) = sat := forall(a, b: father(a, b) implies (son(b, a) or daughter(b, a)))|}
  in
  match items src with
  | [ Ast.I_rule { body = Ast.F_reduce { op = Ast.R_aggregate "forall"; binding_vars = [ "a"; "b" ]; _ }; _ } ]
    ->
      ()
  | _ -> Alcotest.fail "forall shape"

let test_parse_paren_disambiguation () =
  (* (a + b) > c is a constraint, (p(x) or q(x)) is a formula *)
  match items "rel r(x) = s(x, a, b), (a + b) > 3\nrel t(x) = (p(x) or q(x)) and u(x)" with
  | [ Ast.I_rule { body = b1; _ }; Ast.I_rule { body = b2; _ } ] -> (
      (match b1 with
      | Ast.F_and (_, Ast.F_constraint (Ast.E_binop (Foreign.Gt, _, _))) -> ()
      | _ -> Alcotest.fail "constraint paren");
      match b2 with
      | Ast.F_and (Ast.F_or _, Ast.F_atom _) -> ()
      | _ -> Alcotest.fail "formula paren")
  | _ -> Alcotest.fail "paren disambiguation"

let test_parse_negative_numbers () =
  match items "rel p(-3)" with
  | [ Ast.I_fact { atom = { args = [ Ast.E_unop (Foreign.Neg, Ast.E_const (Ast.C_int 3)) ]; _ }; _ } ]
    ->
      ()
  | _ -> Alcotest.fail "negative literal"

let test_parse_if_then_else () =
  match items {|rel p(if x > 0 then "pos" else "neg") = n(x)|} with
  | [ Ast.I_rule { head = { args = [ Ast.E_if _ ]; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "if-then-else in head"

let test_parse_attributes () =
  match parse {|@demand("bf") rel p(x) = q(x)|} with
  | [ { Ast.attrs = [ { Ast.attr_name = "demand"; attr_args = [ Ast.C_str "bf" ] } ]; _ } ] -> ()
  | _ -> Alcotest.fail "attributes"

let test_parse_query_import () =
  match items {|import "lib.scl"
query result|} with
  | [ Ast.I_import "lib.scl"; Ast.I_query "result" ] -> ()
  | _ -> Alcotest.fail "query/import"

let test_parse_error_positions () =
  match parse "rel p(x) = \n  = q(x)" with
  | exception Parser.Parse_error (_, pos) -> check Alcotest.int "line 2" 2 pos.Ast.line
  | _ -> Alcotest.fail "expected parse error"

(* Every appendix program must parse, typecheck and compile. *)
let test_all_paper_programs_compile () =
  List.iter
    (fun (name, src) ->
      match Session.compile src with
      | _ -> ()
      | exception Session.Error e ->
          Alcotest.failf "%s failed: %s" name (Session.error_string e))
    [
      ("mnist_sum2", Scallop_apps.Programs.mnist_sum2);
      ("mnist_sum3", Scallop_apps.Programs.mnist_sum3);
      ("mnist_sum4", Scallop_apps.Programs.mnist_sum4);
      ("mnist_less_than", Scallop_apps.Programs.mnist_less_than);
      ("mnist_not_3_or_4", Scallop_apps.Programs.mnist_not_3_or_4);
      ("mnist_count_3", Scallop_apps.Programs.mnist_count_3);
      ("mnist_count_3_or_4", Scallop_apps.Programs.mnist_count_3_or_4);
      ("hwf", Scallop_apps.Programs.hwf);
      ("pathfinder", Scallop_apps.Programs.pathfinder);
      ("pacman", Scallop_apps.Programs.pacman);
      ("clutrr", Scallop_apps.Programs.clutrr);
      ("mugen", Scallop_apps.Programs.mugen);
      ("clevr", Scallop_apps.Programs.clevr);
      ("vqar", Scallop_apps.Programs.vqar);
    ]

let suite =
  [
    Alcotest.test_case "lexer punctuation" `Quick test_lexer_punctuation;
    Alcotest.test_case "lexer numbers" `Quick test_lexer_numbers;
    Alcotest.test_case "lexer strings/escapes" `Quick test_lexer_strings_escapes;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer $ and @" `Quick test_lexer_dollar_at;
    Alcotest.test_case "lexer error position" `Quick test_lexer_error_position;
    Alcotest.test_case "type declarations" `Quick test_parse_type_decls;
    Alcotest.test_case "alias and subtype" `Quick test_parse_type_alias_subtype;
    Alcotest.test_case "multi const" `Quick test_parse_const_multi;
    Alcotest.test_case "fact set separators" `Quick test_parse_fact_set_separators;
    Alcotest.test_case "rule arrows" `Quick test_parse_rule_both_arrows;
    Alcotest.test_case "tagged rule" `Quick test_parse_tagged_rule;
    Alcotest.test_case "reduce forms" `Quick test_parse_reduce_forms;
    Alcotest.test_case "forall/implies" `Quick test_parse_forall_implies;
    Alcotest.test_case "paren disambiguation" `Quick test_parse_paren_disambiguation;
    Alcotest.test_case "negative numbers" `Quick test_parse_negative_numbers;
    Alcotest.test_case "if-then-else" `Quick test_parse_if_then_else;
    Alcotest.test_case "attributes" `Quick test_parse_attributes;
    Alcotest.test_case "query and import" `Quick test_parse_query_import;
    Alcotest.test_case "parse error position" `Quick test_parse_error_positions;
    Alcotest.test_case "all paper programs compile" `Quick test_all_paper_programs_compile;
  ]
