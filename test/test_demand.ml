(** Tests for the demand (magic-set) transformation (Appendix B.2): the
    @demand annotation plus query atoms restrict computation to the demanded
    bindings, demand tuples carry tag 1 (One-overwrite) so probabilities are
    unaffected, and unsupported binding patterns are rejected. *)

open Scallop_core

let check = Alcotest.check

let run ?(provenance = Registry.Boolean) ?facts src =
  Session.interpret ~provenance:(Registry.create provenance) ?facts src

let rows result pred =
  Session.output result pred |> List.map (fun (t, _) -> Tuple.to_string t) |> List.sort compare

let demand_src =
  {|@demand("bf")
type path(a: i32, b: i32)
type edge(i32, i32)
rel edge = {(0, 1), (1, 2), (5, 6), (6, 7)}
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path(0, _)
|}

let test_demand_restricts_computation () =
  let r = run demand_src in
  check Alcotest.(list string) "only demanded paths" [ "(0, 1)"; "(0, 2)" ] (rows r "path")

let test_demand_probabilities_unaffected () =
  (* the same probabilistic query with and without demand must agree on the
     demanded tuples: demand tags are 𝟙-overwritten *)
  let base =
    {|type path(a: i32, b: i32)
type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path
|}
  in
  let facts =
    [
      ( "edge",
        [
          (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 1 ]);
          (Provenance.Input.prob 0.8, Tuple.of_list [ Value.int Value.I32 1; Value.int Value.I32 2 ]);
          (Provenance.Input.prob 0.7, Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 2 ]);
        ] );
    ]
  in
  let demanded =
    {|@demand("bf")
type path(a: i32, b: i32)
type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path(0, _)
|}
  in
  let p_of r t = Session.prob_of r t in
  let r1 = run ~provenance:(Registry.Top_k_proofs 10) ~facts base in
  let r2 = run ~provenance:(Registry.Top_k_proofs 10) ~facts demanded in
  let t02 = Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 2 ] in
  check (Alcotest.float 1e-9) "same probability under demand" (p_of r1 "path" t02)
    (p_of r2 "path" t02)

let test_demand_second_column () =
  let src =
    {|@demand("fb")
type anc(a: i32, b: i32)
type parent(i32, i32)
rel parent = {(0, 1), (1, 2), (3, 4)}
rel anc(a, b) = parent(a, b)
rel anc(a, c) = parent(a, b), anc(b, c)
query anc(_, 2)
|}
  in
  let r = run src in
  check Alcotest.(list string) "ancestors of 2" [ "(0, 2)"; "(1, 2)" ] (rows r "anc")

let test_demand_requires_derivable_bindings () =
  (* the bound column of the body occurrence is produced by the demanded
     relation itself: no sideways information can bind it *)
  let src =
    {|@demand("bf")
type p(a: i32, b: i32)
rel base = {(1, 2)}
rel p(a, b) = base(a, b)
rel q(b) = p(a, b), a == a
query q
|}
  in
  (* here the occurrence p(a, b) has bound column a, which IS derivable from
     nothing — expect a demand error since no other literal binds a *)
  match run src with
  | exception Session.Error e ->
      let msg = Session.error_string e in
      check Alcotest.bool "mentions demand" true
        (String.length msg >= 6 && String.sub msg 0 6 = "demand")
  | _ -> Alcotest.fail "expected a demand error"

let test_bad_pattern_rejected () =
  match run {|@demand("bx")
type p(a: i32, b: i32)
rel p = {(1, 2)}
query p|} with
  | exception Session.Error _ -> ()
  | _ -> Alcotest.fail "bad pattern should be rejected"

let test_pattern_arity_mismatch () =
  match run {|@demand("b")
type p(a: i32, b: i32)
rel p = {(1, 2)}
query p|} with
  | exception Session.Error _ -> ()
  | _ -> Alcotest.fail "pattern arity mismatch should be rejected"

let test_query_atom_without_demand () =
  (* query atoms on un-annotated relations are just queries *)
  let r = run {|rel p = {(1, 2), (3, 4)}
query p(1, _)|} in
  check Alcotest.int "full relation returned" 2 (List.length (rows r "p"))

let suite =
  [
    Alcotest.test_case "demand restricts computation" `Quick test_demand_restricts_computation;
    Alcotest.test_case "probabilities unaffected" `Quick test_demand_probabilities_unaffected;
    Alcotest.test_case "demand on second column" `Quick test_demand_second_column;
    Alcotest.test_case "underivable binding rejected" `Quick test_demand_requires_derivable_bindings;
    Alcotest.test_case "bad pattern rejected" `Quick test_bad_pattern_rejected;
    Alcotest.test_case "pattern arity mismatch rejected" `Quick test_pattern_arity_mismatch;
    Alcotest.test_case "query atom without demand" `Quick test_query_atom_without_demand;
  ]
