(** Replicated durable sessions ({!Scallop_incr.Replica} over
    {!Scallop_incr.Durable}): WAL shipping into hot standbys, quorum
    acknowledgement, kill-the-primary-at-any-point failover bit-identity,
    torn/damaged ship segments, follower lag past segment pruning
    (snapshot-transfer fallback), divergence quarantine, fencing (double
    promotion and deposed-primary write refusal), WAL group commit, the
    [scrub] bit-rot sweep, and fuzzing of the serve line protocol. *)

open Scallop_core
module Durable = Scallop_incr.Durable
module Replica = Scallop_incr.Replica
module Protocol = Scallop_serve.Protocol
module Wal = Scallop_utils.Wal
module Atomic_io = Scallop_utils.Atomic_io

(* shared helpers from the durability suite *)
let tc_src = Test_durability.tc_src
let pair = Test_durability.pair
let results_equal = Test_durability.results_equal
let rm_rf = Test_durability.rm_rf
let read_bytes = Test_durability.read_bytes
let write_bytes = Test_durability.write_bytes
let flip_byte = Test_durability.flip_byte

let scratch_counter = ref 0

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scallop-replication-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf d;
  Atomic_io.mkdir_p d;
  d

let q mgr sid = Durable.query mgr ~sid ()

(* ---- an in-process primary/follower pair ---------------------------------------- *)

type cluster = {
  root : string;
  pmgr : Durable.t;
  fmgr : Durable.t;
  prim : Replica.Primary.t;
  fol : Replica.Follower.t;
}

(* The primary's quorum barrier drives the follower in-process through the
   [pump] hook, so a quorum-acknowledged op has deterministically been
   applied AND locally logged by the follower before the primary's update
   call returns — no polling loops, no sleeps. *)
let make_cluster ?(ack = Replica.Ack_quorum) ?(segment_frames = 4096) ?(retain = 2)
    ?(snapshot_every = 64) () : cluster =
  let root = scratch_dir () in
  let ship = Filename.concat root "ship" in
  let fmgr =
    Durable.create
      (Durable.config ~state_dir:(Filename.concat root "f") ~wal_sync:false ~snapshot_every
         Registry.Boolean)
  in
  let fol_ref = ref None in
  let pump () = match !fol_ref with Some f -> ignore (Replica.Follower.poll f) | None -> () in
  let prim =
    Replica.Primary.create ~dir:ship ~id:"alpha" ~ack ~cluster:1 ~ack_timeout:10.0
      ~segment_frames ~retain ~pump ()
  in
  let pmgr =
    Durable.create
      (Durable.config ~state_dir:(Filename.concat root "p") ~wal_sync:false ~snapshot_every
         ~repl:(Replica.Primary.sink prim) Registry.Boolean)
  in
  let fol = Replica.Follower.create ~dir:ship ~fid:"beta" ~mgr:fmgr () in
  fol_ref := Some fol;
  { root; pmgr; fmgr; prim; fol }

let destroy c =
  Durable.shutdown c.pmgr;
  Durable.shutdown c.fmgr;
  Replica.Primary.close c.prim;
  Replica.Follower.close c.fol;
  rm_rf c.root

(* A mixed update script whose retracts make replay order-sensitive:
   double-applying or dropping any one op changes the answer. *)
type sop = Open | A of int * int | R of int * int

let script =
  [
    Open; A (0, 1); A (1, 2); A (2, 3); R (1, 2); A (1, 3); A (3, 4); R (2, 3); A (2, 4);
    A (4, 5); R (0, 1); A (0, 5);
  ]

let apply mgr op =
  match op with
  | Open -> ignore (Durable.open_session mgr ~sid:"s" tc_src)
  | A (a, b) -> Durable.assert_fact mgr ~sid:"s" ~pred:"edge" (pair a b)
  | R (a, b) -> Durable.retract_fact mgr ~sid:"s" ~pred:"edge" (pair a b)

(* Single-node oracle: an ephemeral registry executing the same prefix. *)
let oracle prefix =
  let mgr = Durable.create (Durable.config Registry.Boolean) in
  List.iter (apply mgr) prefix;
  let r = q mgr "s" in
  Durable.shutdown mgr;
  r

let take k l = List.filteri (fun i _ -> i < k) l
let drop k l = List.filteri (fun i _ -> i >= k) l

(* ---- failover bit-identity ------------------------------------------------------- *)

(* Kill the primary after EVERY quorum-acknowledged prefix of the script:
   promote the follower and its answers must be bit-identical to a
   single-node run of exactly that prefix (no acknowledged update lost, no
   phantom update), and the promoted node must keep accepting the rest of
   the script, converging on the full-script oracle.  [snapshot_every:3]
   pushes compactions — seal and snapshot frames — through the stream
   mid-sweep. *)
let test_failover_at_every_acked_prefix () =
  let n = List.length script in
  for cut = 0 to n do
    let c = make_cluster ~snapshot_every:3 () in
    List.iter (apply c.pmgr) (take cut script);
    (* primary dies here: nothing of it is consulted again *)
    let _epoch = Replica.Follower.promote c.fol in
    (if cut = 0 then begin
       (* the open was never acknowledged: no session may surface *)
       let counts = Durable.session_counts c.fmgr in
       if counts.Durable.live + counts.Durable.spilled + counts.Durable.failed > 0 then
         Alcotest.failf "cut 0: phantom session on the promoted follower"
     end
     else begin
       let got = q c.fmgr "s" in
       if not (results_equal got (oracle (take cut script))) then
         Alcotest.failf "cut %d: promoted follower diverges from the acked-prefix oracle" cut;
       let st = Replica.Follower.status c.fol in
       Alcotest.(check int)
         (Printf.sprintf "cut %d: no divergences" cut)
         0 st.Replica.Follower.st_divergences
     end);
    (* life goes on: the promoted node takes the rest of the script *)
    List.iter (apply c.fmgr) (drop cut script);
    let got = q c.fmgr "s" in
    if not (results_equal got (oracle script)) then
      Alcotest.failf "cut %d: continued run diverges from the full-script oracle" cut;
    destroy c
  done

(* ---- damaged ship logs ------------------------------------------------------------ *)

(* A primary killed mid-ship leaves a torn final frame.  The follower must
   apply the complete prefix, hold the tear back without error, and a
   promotion then serves exactly the surviving prefix. *)
let test_torn_ship_frame () =
  let c = make_cluster ~ack:Replica.Ack_none () in
  List.iter (apply c.pmgr) [ Open; A (0, 1); A (1, 2); A (2, 3) ];
  (* cut into the last shipped frame — the crash signature of a dying
     primary (the follower has not polled yet) *)
  let seg = List.hd (List.rev (Replica.ship_segments (Filename.concat c.root "ship"))) in
  let path = Replica.ship_path (Filename.concat c.root "ship") seg in
  let full = read_bytes path in
  write_bytes path (String.sub full 0 (String.length full - 3));
  ignore (Replica.Follower.poll c.fol);
  let st = Replica.Follower.status c.fol in
  Alcotest.(check int) "no divergence from a torn tail" 0 st.Replica.Follower.st_divergences;
  Alcotest.(check (option string)) "no error from a torn tail" None st.st_last_error;
  let _ = Replica.Follower.promote c.fol in
  let got = q c.fmgr "s" in
  if not (results_equal got (oracle [ Open; A (0, 1); A (1, 2) ])) then
    Alcotest.fail "torn tail: follower should serve the complete-frame prefix";
  destroy c

(* Mid-segment damage (bit rot, not a tear) errors the tail without
   crashing, and the next rotation barrier — every new ship segment opens
   with snapshots of all live sessions — resyncs the follower via a full
   snapshot transfer. *)
let test_damaged_ship_segment_resync () =
  let c = make_cluster ~ack:Replica.Ack_none () in
  List.iter (apply c.pmgr) [ Open; A (0, 1); A (1, 2); A (2, 3); R (1, 2) ];
  let ship = Filename.concat c.root "ship" in
  let seg = List.hd (List.rev (Replica.ship_segments ship)) in
  flip_byte (Replica.ship_path ship seg) 25 (* inside the segment's first frame *);
  ignore (Replica.Follower.poll c.fol);
  let st = Replica.Follower.status c.fol in
  (match st.Replica.Follower.st_last_error with
  | Some _ -> ()
  | None -> Alcotest.fail "mid-segment damage should surface as a tail error");
  Alcotest.(check int) "nothing applied off a damaged segment" 0 st.st_applied;
  (* the primary rotates (as it does at startup and every N frames) … *)
  Durable.ship_barrier c.pmgr;
  (* … and the follower jumps to the fresh segment and snapshot-installs *)
  ignore (Replica.Follower.poll c.fol);
  let st = Replica.Follower.status c.fol in
  if st.Replica.Follower.st_installs + st.st_adoptions < 1 then
    Alcotest.fail "resync after damage should go through a snapshot";
  let _ = Replica.Follower.promote c.fol in
  let got = q c.fmgr "s" in
  if not (results_equal got (oracle [ Open; A (0, 1); A (1, 2); A (2, 3); R (1, 2) ])) then
    Alcotest.fail "post-resync follower diverges";
  destroy c

(* A follower that attaches after the primary has rotated and pruned past
   its position cannot replay op-by-op; the barrier snapshots heading the
   retained segment must bridge it. *)
let test_lag_past_pruning_snapshot_transfer () =
  let c = make_cluster ~ack:Replica.Ack_none ~segment_frames:4 ~retain:0 ~snapshot_every:4 () in
  List.iter (apply c.pmgr) script;
  let ship = Filename.concat c.root "ship" in
  let pst = Replica.Primary.status c.prim in
  if pst.Replica.Primary.st_rotations < 1 then
    Alcotest.fail "test needs rotation to have happened";
  if List.length (Replica.ship_segments ship) > 2 then
    Alcotest.fail "retain=0 should prune everything below the active segment";
  (* a brand-new follower, far behind the stream's beginning *)
  let late_state = Filename.concat c.root "late" in
  let lmgr =
    Durable.create (Durable.config ~state_dir:late_state ~wal_sync:false Registry.Boolean)
  in
  let late = Replica.Follower.create ~dir:ship ~fid:"late" ~mgr:lmgr () in
  ignore (Replica.Follower.poll late);
  let st = Replica.Follower.status late in
  if st.Replica.Follower.st_installs < 1 then
    Alcotest.fail "late join must fall back to a snapshot transfer";
  Alcotest.(check int) "late join sees no divergence" 0 st.st_divergences;
  let _ = Replica.Follower.promote late in
  let got = q lmgr "s" in
  if not (results_equal got (oracle script)) then
    Alcotest.fail "late-joined follower diverges from the full-script oracle";
  Durable.shutdown lmgr;
  Replica.Follower.close late;
  destroy c

(* ---- divergence quarantine -------------------------------------------------------- *)

(* A replicated op that does not extend the follower's state — wrong lsn
   chain, wrong segment, a retract that no longer validates — must
   quarantine exactly that session with the typed diagnostic, and a later
   snapshot transfer must heal it. *)
let test_divergence_quarantine_and_heal () =
  let c = make_cluster () in
  List.iter (apply c.pmgr) [ Open; A (0, 1); A (1, 2) ];
  let wm =
    match Durable.remote_watermark c.fmgr ~sid:"s" with
    | Some wm -> wm
    | None -> Alcotest.fail "follower should know the session"
  in
  (* forge a frame at the right position but with a poisoned checksum
     chain: the splice point where a forked history would graft on *)
  let payload =
    Durable.encode_op
      (Durable.Op_assert
         {
           lsn = wm.Durable.wm_next_lsn;
           pred = "edge";
           input = Provenance.Input.none;
           tuple = pair 7 7;
         })
  in
  (match
     Durable.apply_remote c.fmgr ~sid:"s" ~seg:wm.Durable.wm_seg ~lsn:wm.Durable.wm_next_lsn
       ~chain:0xDEADL ~payload
   with
  | () -> Alcotest.fail "chain mismatch must diverge"
  | exception Session.Error (Exec_error.Replication_diverged { session = "s"; reason; _ }) ->
      if String.length reason = 0 then Alcotest.fail "empty divergence reason"
  | exception Session.Error e ->
      Alcotest.failf "expected Replication_diverged, got %s" (Session.error_string e));
  Alcotest.(check int) "divergence counted" 1 (Durable.stats c.fmgr).Durable.divergences;
  (* the session is quarantined — the typed divergence survives to the
     query — while the registry lives on *)
  (match q c.fmgr "s" with
  | _ -> Alcotest.fail "query on a diverged session should fail"
  | exception Session.Error (Exec_error.Replication_diverged _) -> ());
  (* a seal that contradicts local state is also a divergence *)
  let c2 = make_cluster () in
  List.iter (apply c2.pmgr) [ Open; A (0, 1) ];
  let wm2 =
    match Durable.remote_watermark c2.fmgr ~sid:"s" with
    | Some wm -> wm
    | None -> Alcotest.fail "follower should know the session"
  in
  (match
     Durable.seal_remote c2.fmgr ~sid:"s" ~seg:wm2.Durable.wm_seg
       ~last_lsn:(wm2.Durable.wm_next_lsn + 5) ~chain:0L ~records:99
   with
  | () -> Alcotest.fail "contradictory seal must diverge"
  | exception Session.Error (Exec_error.Replication_diverged _) -> ());
  destroy c2;
  (* healing: the primary compacts, the snapshot frame rebuilds the
     quarantined session from scratch *)
  Durable.compact c.pmgr ~sid:"s";
  ignore (Replica.Follower.poll c.fol);
  let st = Replica.Follower.status c.fol in
  if st.Replica.Follower.st_installs < 1 then
    Alcotest.fail "snapshot transfer should heal the quarantined session";
  let _ = Replica.Follower.promote c.fol in
  let got = q c.fmgr "s" in
  if not (results_equal got (oracle [ Open; A (0, 1); A (1, 2) ])) then
    Alcotest.fail "healed session diverges from the oracle";
  destroy c

(* ---- fencing ----------------------------------------------------------------------- *)

(* Promotion claims a strictly newer epoch: a second promotion attempting
   to (re)claim a stale epoch is rejected with the typed error — two
   primaries can never share an epoch. *)
let test_double_promotion_fenced () =
  let c = make_cluster ~ack:Replica.Ack_none () in
  List.iter (apply c.pmgr) [ Open; A (0, 1) ];
  let gmgr = Durable.create (Durable.config ~state_dir:(Filename.concat c.root "g") ~wal_sync:false Registry.Boolean) in
  let gamma = Replica.Follower.create ~dir:(Filename.concat c.root "ship") ~fid:"gamma" ~mgr:gmgr () in
  let e1 = Replica.Follower.promote c.fol in
  (match Replica.Follower.promote ~epoch:e1 gamma with
  | _ -> Alcotest.fail "promotion with the reigning epoch must be fenced"
  | exception Session.Error (Exec_error.Fenced { epoch; current }) ->
      Alcotest.(check int) "attempted epoch" e1 epoch;
      Alcotest.(check int) "reigning epoch" e1 current);
  (match Replica.Follower.promote ~epoch:(e1 - 1) gamma with
  | _ -> Alcotest.fail "promotion with a stale epoch must be fenced"
  | exception Session.Error (Exec_error.Fenced _) -> ());
  (* promoting the same follower twice is a protocol error *)
  (match Replica.Follower.promote c.fol with
  | _ -> Alcotest.fail "double promote of one follower should fail"
  | exception Session.Error (Exec_error.Invalid_input _) -> ());
  Durable.shutdown gmgr;
  Replica.Follower.close gamma;
  destroy c

(* After a follower promotes, the deposed primary's next acknowledgement
   barrier observes the fencing epoch and fails the write with the typed
   error — it can never acknowledge an update the new primary lacks. *)
let test_deposed_primary_refuses_writes () =
  let c = make_cluster () in
  List.iter (apply c.pmgr) [ Open; A (0, 1) ];
  let _e = Replica.Follower.promote c.fol in
  (match apply c.pmgr (A (1, 2)) with
  | _ -> Alcotest.fail "deposed primary must not acknowledge writes"
  | exception Session.Error (Exec_error.Fenced { epoch = 1; current = 2 }) -> ()
  | exception Session.Error e ->
      Alcotest.failf "expected Fenced 1 -> 2, got %s" (Session.error_string e));
  (* permanently: later writes fail the same way *)
  (match apply c.pmgr (A (2, 3)) with
  | _ -> Alcotest.fail "fencing must be sticky"
  | exception Session.Error (Exec_error.Fenced _) -> ());
  (* the promoted follower, not the deposed primary, owns the tail *)
  List.iter (apply c.fmgr) [ A (1, 2) ];
  let got = q c.fmgr "s" in
  if not (results_equal got (oracle [ Open; A (0, 1); A (1, 2) ])) then
    Alcotest.fail "promoted follower state wrong after fencing";
  destroy c

(* With no follower acking, a quorum write must fail with the typed
   ack-timeout rather than hang. *)
let test_quorum_ack_timeout () =
  let root = scratch_dir () in
  let prim =
    Replica.Primary.create ~dir:(Filename.concat root "ship") ~id:"alpha"
      ~ack:Replica.Ack_quorum ~cluster:1 ~ack_timeout:0.05 ()
  in
  let pmgr =
    Durable.create
      (Durable.config ~state_dir:(Filename.concat root "p") ~wal_sync:false
         ~repl:(Replica.Primary.sink prim) Registry.Boolean)
  in
  (match Durable.open_session pmgr ~sid:"s" tc_src with
  | _ -> Alcotest.fail "quorum with zero followers must time out"
  | exception Session.Error (Exec_error.Ack_timeout { acked = 0; quorum = 1; waited }) ->
      if waited < 0.05 then Alcotest.fail "timed out before the deadline"
  | exception Session.Error e ->
      Alcotest.failf "expected Ack_timeout, got %s" (Session.error_string e));
  Durable.shutdown pmgr;
  Replica.Primary.close prim;
  rm_rf root

(* ---- WAL group commit -------------------------------------------------------------- *)

(* Two appends to one log settled by one wait must cost exactly one fsync:
   the deterministic core of group commit's amortization. *)
let test_group_commit_amortizes_fsyncs () =
  let dir = scratch_dir () in
  let g = Wal.Group.create () in
  let w = Wal.open_append ~group:g ~path:(Filename.concat dir "w.log") () in
  let t1 = Wal.append_ticket w "first" in
  let t2 = Wal.append_ticket w "second" in
  (match (t1, t2) with
  | Some t1, Some t2 ->
      Wal.Group.wait g t2;
      Wal.Group.wait g t1 (* already covered: must not fsync again *)
  | _ -> Alcotest.fail "grouped appends should return tickets");
  let syncs, appends = Wal.Group.stats g in
  Alcotest.(check int) "appends" 2 appends;
  Alcotest.(check int) "one fsync for the batch" 1 syncs;
  Wal.close w;
  let records, tail = Wal.read ~path:(Filename.concat dir "w.log") in
  Alcotest.(check (list string)) "records durable" [ "first"; "second" ] records;
  (match tail with Wal.Clean -> () | t -> Alcotest.failf "tail %s" (Wal.tail_string t));
  rm_rf dir

(* Concurrent sessions under one group: all records land, every log is
   clean, and the batched fsync count never exceeds (and in practice is
   far below) one per append. *)
let test_group_commit_concurrent_writers () =
  let dir = scratch_dir () in
  let g = Wal.Group.create ~window:0.001 () in
  let writers =
    Array.init 4 (fun i ->
        Wal.open_append ~group:g ~path:(Filename.concat dir (Printf.sprintf "w%d.log" i)) ())
  in
  let domains =
    Array.map
      (fun w ->
        Domain.spawn (fun () ->
            for k = 1 to 40 do
              Wal.append w (Printf.sprintf "rec-%d" k)
            done))
      writers
  in
  Array.iter Domain.join domains;
  Array.iter Wal.close writers;
  let syncs, appends = Wal.Group.stats g in
  Alcotest.(check int) "all appends accounted" 160 appends;
  if syncs > appends then Alcotest.failf "group commit made MORE fsyncs (%d) than appends" syncs;
  Array.iteri
    (fun i _ ->
      let records, tail = Wal.read ~path:(Filename.concat dir (Printf.sprintf "w%d.log" i)) in
      Alcotest.(check int) (Printf.sprintf "w%d records" i) 40 (List.length records);
      match tail with
      | Wal.Clean -> ()
      | t -> Alcotest.failf "w%d tail %s" i (Wal.tail_string t))
    writers;
  rm_rf dir

(* Group commit through the registry: same answers, same recovery story —
   it only changes how fsyncs are scheduled, including for [close]'s final
   record (flushed by the writer hand-off, not a group leader). *)
let test_group_commit_durable_roundtrip () =
  let sd = scratch_dir () in
  let cfg sd =
    Durable.config ~state_dir:sd ~wal_sync:true ~group_commit:true Registry.Boolean
  in
  let mgr = Durable.create (cfg sd) in
  List.iter (apply mgr) [ Open; A (0, 1); A (1, 2); R (0, 1); A (2, 3) ];
  let expected = q mgr "s" in
  Durable.shutdown mgr;
  let mgr2 = Durable.create (cfg sd) in
  Alcotest.(check int) "recovered" 1 (Durable.stats mgr2).Durable.recovered;
  let got = q mgr2 "s" in
  if not (results_equal got expected) then Alcotest.fail "group-commit recovery diverges";
  let _ = Durable.close mgr2 ~sid:"s" in
  Durable.shutdown mgr2;
  rm_rf sd

(* ---- scrub -------------------------------------------------------------------------- *)

let test_scrub_detects_bitrot () =
  let sd = scratch_dir () in
  let mgr =
    Durable.create
      (Durable.config ~state_dir:sd ~wal_sync:false ~snapshot_every:2 Registry.Boolean)
  in
  List.iter (apply mgr) [ Open; A (0, 1); A (1, 2); A (2, 3); A (3, 4) ];
  let clean = Durable.scrub mgr in
  (match clean with
  | [ r ] ->
      Alcotest.(check (list string)) "clean state scrubs clean" [] r.Durable.sc_errors;
      if r.Durable.sc_snapshots < 1 then Alcotest.fail "expected snapshots to examine"
  | l -> Alcotest.failf "expected one session report, got %d" (List.length l));
  (* rot a retained snapshot generation — scrub must flag it while the
     session keeps serving (recovery would fall back a generation) *)
  let sdir = Filename.concat (Filename.concat (Filename.concat sd "sessions") "s-s") "snap" in
  let gens = Atomic_io.generations ~dir:sdir in
  flip_byte (Atomic_io.path_of ~dir:sdir (List.hd gens)) 40;
  let dirty = Durable.scrub mgr in
  (match dirty with
  | [ r ] ->
      if r.Durable.sc_errors = [] then Alcotest.fail "scrub missed snapshot bit rot"
  | l -> Alcotest.failf "expected one session report, got %d" (List.length l));
  if (Durable.stats mgr).Durable.scrub_errors < 1 then
    Alcotest.fail "scrub errors should land in stats";
  Alcotest.(check int) "two scrub passes counted" 2 (Durable.stats mgr).Durable.scrubs;
  let _ = q mgr "s" in
  Durable.shutdown mgr;
  rm_rf sd

(* ---- serve line-protocol hardening --------------------------------------------------- *)

let parses_totally line =
  match Protocol.parse ~max_line:4096 line with
  | Ok _ | Error _ -> ()
  | exception e ->
      Alcotest.failf "Protocol.parse raised %s on %S" (Printexc.to_string e)
        (String.sub line 0 (min 60 (String.length line)))

(* Every byte string must classify as a request or a typed error — junk
   bytes, control characters, oversized lines, truncated verb arguments —
   with no exception escaping. *)
let test_protocol_fuzz_total () =
  let seed = ref 0x2545F4914F6CDD1D in
  let rand bound =
    (* xorshift; deterministic across runs *)
    let x = !seed in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    seed := x;
    abs x mod bound
  in
  let verbs = [| "open"; "assert"; "retract"; "query"; "close"; "stats"; "scrub"; "repl" |] in
  for _ = 1 to 2000 do
    let n = rand 120 in
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set b i (Char.chr (rand 256))
    done;
    let junk = Bytes.to_string b in
    parses_totally junk;
    (* a known verb with junk arguments — the truncated/malformed case *)
    parses_totally (verbs.(rand (Array.length verbs)) ^ " " ^ junk)
  done;
  (* targeted edges *)
  List.iter parses_totally
    [
      "";
      " ";
      "assert";
      "assert s1";
      "assert s1 edge(";
      "assert s1 0.5:edge(1,2)";
      "retract s1 0.5::edge(1,2)";
      "open";
      "open s1 hash=";
      "close a b";
      "query";
      "stats now";
      "scrub hard";
      "repl";
      "repl promote epoch=";
      "repl promote epoch=-3";
      "repl promote epoch=xyz";
      String.make 5000 'a';
      "assert \x01\x02 edge(1,2)";
      "open " ^ String.make 500 's' ^ " rel a() = b()";
    ]

let test_protocol_classification () =
  let open Protocol in
  (match parse "assert s1 0.5::edge(1, 2)" with
  | Ok (Assert { sid = "s1"; prob = Some 0.5; pred = "edge"; tuple }) ->
      Alcotest.(check int) "arity" 2 (Tuple.arity tuple)
  | _ -> Alcotest.fail "assert line misparsed");
  (match parse "repl promote epoch=7" with
  | Ok (Repl_promote { epoch = Some 7 }) -> ()
  | _ -> Alcotest.fail "repl promote misparsed");
  (match parse "repl status" with
  | Ok Repl_status -> ()
  | _ -> Alcotest.fail "repl status misparsed");
  (match parse "scrub" with Ok Scrub -> () | _ -> Alcotest.fail "scrub misparsed");
  (match parse "rel out(x) = edge(1, x)" with
  | Ok (Run _) -> ()
  | _ -> Alcotest.fail "non-verb line should fall through to Run");
  (match parse "assert s1" with
  | Error (Exec_error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "truncated assert should be a typed error");
  (match parse "query\x00 s1" with
  | Error (Exec_error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "NUL byte should be a typed error");
  (match parse ~max_line:64 (String.make 65 'q') with
  | Error (Exec_error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "oversized line should be a typed error")

let suite =
  [
    Alcotest.test_case "failover at every acked prefix" `Quick
      test_failover_at_every_acked_prefix;
    Alcotest.test_case "torn ship frame" `Quick test_torn_ship_frame;
    Alcotest.test_case "damaged ship segment resync" `Quick test_damaged_ship_segment_resync;
    Alcotest.test_case "lag past pruning: snapshot transfer" `Quick
      test_lag_past_pruning_snapshot_transfer;
    Alcotest.test_case "divergence quarantine and heal" `Quick
      test_divergence_quarantine_and_heal;
    Alcotest.test_case "double promotion fenced" `Quick test_double_promotion_fenced;
    Alcotest.test_case "deposed primary refuses writes" `Quick
      test_deposed_primary_refuses_writes;
    Alcotest.test_case "quorum ack timeout" `Quick test_quorum_ack_timeout;
    Alcotest.test_case "group commit amortizes fsyncs" `Quick
      test_group_commit_amortizes_fsyncs;
    Alcotest.test_case "group commit concurrent writers" `Quick
      test_group_commit_concurrent_writers;
    Alcotest.test_case "group commit durable roundtrip" `Quick
      test_group_commit_durable_roundtrip;
    Alcotest.test_case "scrub detects bit rot" `Quick test_scrub_detects_bitrot;
    Alcotest.test_case "protocol fuzz is total" `Quick test_protocol_fuzz_total;
    Alcotest.test_case "protocol classification" `Quick test_protocol_classification;
  ]
