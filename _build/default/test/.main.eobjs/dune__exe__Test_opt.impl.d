test/test_opt.ml: Alcotest Fmt Foreign List Opt Provenance Ram Registry Scallop_apps Scallop_core Session Tuple Value
