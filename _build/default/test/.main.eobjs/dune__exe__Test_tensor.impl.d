test/test_tensor.ml: Alcotest Array Autodiff Float Fmt Nd Optim Scallop_nn Scallop_tensor Scallop_utils
