test/test_utils.ml: Alcotest Array Float Fun Graph Int List Listx QCheck QCheck_alcotest Rng Scallop_utils
