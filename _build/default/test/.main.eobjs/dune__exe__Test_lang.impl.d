test/test_lang.ml: Alcotest Fmt Interp List Option Provenance Registry Scallop_core Scallop_utils Session String Tuple Value
