test/test_formula.ml: Alcotest Array Dual Formula List Scallop_core Scallop_utils Wmc
