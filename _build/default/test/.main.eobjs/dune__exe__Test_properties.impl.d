test/test_properties.ml: Alcotest Array Dual Float Fmt Formula Lexer List Parser Provenance QCheck QCheck_alcotest Registry Scallop_core Scallop_data Session Sys Tuple Value Wmc
