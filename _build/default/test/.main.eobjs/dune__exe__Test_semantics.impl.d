test/test_semantics.ml: Alcotest Array Fmt Hashtbl List Option Provenance Registry Scallop_core Scallop_utils Session String Tuple Value
