test/test_parser.ml: Alcotest Array Ast Foreign Lexer List Parser Scallop_apps Scallop_core Session
