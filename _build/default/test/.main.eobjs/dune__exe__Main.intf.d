test/main.mli:
