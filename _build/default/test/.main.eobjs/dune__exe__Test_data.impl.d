test/test_data.ml: Alcotest Array Clevr Clutrr Hwf Lazy List Mnist Mugen Pathfinder Proto Scallop_data Scallop_envs Scallop_tensor Scallop_utils String Vqar
