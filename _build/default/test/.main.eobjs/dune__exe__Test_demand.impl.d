test/test_demand.ml: Alcotest List Provenance Registry Scallop_core Session String Tuple Value
