test/test_nn.ml: Alcotest Array Autodiff Fmt Layers List Nd Option Registry Scallop_core Scallop_layer Scallop_nn Scallop_tensor Scallop_utils Session Tuple Value
