test/test_value.ml: Alcotest Float List Scallop_core Stdlib Tuple Value
