test/test_interp.ml: Alcotest Fmt Interp List Provenance QCheck QCheck_alcotest Ram Registry Scallop_core Scallop_utils Session String Tuple Value
