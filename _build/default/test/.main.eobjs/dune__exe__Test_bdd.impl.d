test/test_bdd.ml: Alcotest Array Bdd Fun List QCheck QCheck_alcotest Scallop_bdd Scallop_utils
