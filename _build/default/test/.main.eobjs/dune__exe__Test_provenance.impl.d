test/test_provenance.ml: Alcotest Float Fmt List Option Provenance Registry Scallop_core Scallop_utils Session Tuple Value
