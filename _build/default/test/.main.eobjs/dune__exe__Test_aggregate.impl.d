test/test_aggregate.ml: Aggregate Alcotest Array Fmt List Prov_discrete Prov_prob Provenance Ram Scallop_core Scallop_utils Tuple Value
