(** Additional property-based suites (qcheck): value/tuple algebra, dual
    number calculus, lexer totality, dataset determinism, and gradient
    linearity — invariants that hold across the whole input space rather
    than on hand-picked cases. *)

open Scallop_core

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---- values -------------------------------------------------------------------- *)

let int_ty_gen =
  QCheck.Gen.oneofl
    [ Value.I8; Value.I16; Value.I32; Value.I64; Value.U8; Value.U16; Value.U32; Value.USize ]

let qcheck_wrap_idempotent =
  qtest "integer wrapping is idempotent"
    QCheck.(pair (make int_ty_gen) int)
    (fun (ty, n) ->
      let once = Value.wrap_int ty n in
      Value.wrap_int ty once = once)

let qcheck_wrap_range =
  qtest "wrapped values fit their width"
    QCheck.(pair (make int_ty_gen) int)
    (fun (ty, n) ->
      let w = Value.wrap_int ty n in
      let bits = Value.bits_of_ty ty in
      if bits >= Sys.int_size then true
      else if Value.is_signed_ty ty then w >= -(1 lsl (bits - 1)) && w < 1 lsl (bits - 1)
      else w >= 0 && w < 1 lsl bits)

let qcheck_cast_int_to_string_roundtrip =
  qtest "i32 → String → i32 roundtrip" QCheck.int (fun n ->
      let v = Value.int Value.I32 n in
      match Value.cast Value.Str v with
      | Some s -> Value.cast Value.I32 s = Some v
      | None -> false)

let qcheck_value_compare_consistent_equal =
  qtest "compare = 0 iff equal"
    QCheck.(pair int int)
    (fun (a, b) ->
      let va = Value.int Value.I32 a and vb = Value.int Value.I32 b in
      Value.compare va vb = 0 = Value.equal va vb)

let qcheck_tuple_compare_transitive =
  qtest "tuple compare is transitive"
    QCheck.(triple (list small_int) (list small_int) (list small_int))
    (fun (a, b, c) ->
      let t l = Tuple.of_list (List.map (Value.int Value.I32) l) in
      let ta = t a and tb = t b and tc = t c in
      if Tuple.compare ta tb <= 0 && Tuple.compare tb tc <= 0 then Tuple.compare ta tc <= 0
      else true)

(* ---- duals ---------------------------------------------------------------------- *)

let small_prob = QCheck.float_range 0.01 0.99

let qcheck_dual_mul_commutes =
  qtest "dual multiplication commutes"
    QCheck.(pair small_prob small_prob)
    (fun (a, b) ->
      let da = Dual.var 0 a and db = Dual.var 1 b in
      let x = Dual.mul da db and y = Dual.mul db da in
      Float.abs (Dual.value x -. Dual.value y) < 1e-12
      && Dual.deriv_list x = Dual.deriv_list y)

let qcheck_dual_product_rule =
  qtest "dual product rule: d(ab)/da = b"
    QCheck.(pair small_prob small_prob)
    (fun (a, b) ->
      let p = Dual.mul (Dual.var 0 a) (Dual.var 1 b) in
      Float.abs (List.assoc 0 (Dual.deriv_list p) -. b) < 1e-12)

let qcheck_dual_complement_involution =
  qtest "complement is an involution" small_prob (fun a ->
      let d = Dual.var 0 a in
      let dd = Dual.complement (Dual.complement d) in
      Float.abs (Dual.value dd -. a) < 1e-12
      && Float.abs (List.assoc 0 (Dual.deriv_list dd) -. 1.0) < 1e-12)

let qcheck_dual_gradient_linearity =
  qtest "d(x + x)/dx = 2" small_prob (fun a ->
      let d = Dual.var 0 a in
      Float.abs (List.assoc 0 (Dual.deriv_list (Dual.add d d)) -. 2.0) < 1e-12)

(* ---- lexer totality -------------------------------------------------------------- *)

let qcheck_lexer_total =
  qtest ~count:500 "lexer never crashes (tokens or clean error)" QCheck.printable_string
    (fun s ->
      match Lexer.tokenize s with
      | _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception _ -> false)

let qcheck_parser_contained =
  qtest ~count:300 "parser raises only Parse_error" QCheck.printable_string (fun s ->
      match Parser.parse_program s with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception _ -> false)

(* ---- formula algebra -------------------------------------------------------------- *)

let proof_gen =
  QCheck.Gen.(
    map
      (fun lits -> Formula.proof_of_literals lits)
      (list_size (int_range 1 4) (pair (int_range 0 5) bool)))

let formula_gen = QCheck.Gen.(map Formula.dedup (list_size (int_range 0 4) proof_gen))

let env6 = Formula.env (fun v -> 0.15 +. (0.12 *. float_of_int (v mod 6)))

let qcheck_disj_monotone =
  qtest ~count:150 "WMC(a ∨ b) ≥ max(WMC a, WMC b) at large k"
    (QCheck.make QCheck.Gen.(pair formula_gen formula_gen))
    (fun (a, b) ->
      let w f = Wmc.prob ~env:env6 f in
      w (Formula.disj_k env6 100 a b) +. 1e-9 >= Float.max (w a) (w b))

let qcheck_conj_bounded =
  qtest ~count:150 "WMC(a ∧ b) ≤ min(WMC a, WMC b) at large k"
    (QCheck.make QCheck.Gen.(pair formula_gen formula_gen))
    (fun (a, b) ->
      let w f = Wmc.prob ~env:env6 f in
      w (Formula.conj_k env6 100 a b) <= Float.min (w a) (w b) +. 1e-9)

let qcheck_negation_complements =
  qtest ~count:100 "WMC(¬a) = 1 − WMC(a) at large k"
    (QCheck.make formula_gen)
    (fun a ->
      let w f = Wmc.prob ~env:env6 f in
      Float.abs (w (Formula.neg_k ~beam:4096 env6 1000 a) -. (1.0 -. w a)) < 1e-6)

(* ---- dataset determinism ------------------------------------------------------------ *)

let test_generators_deterministic () =
  let strings_of_hwf seed =
    let d = Scallop_data.Hwf.create ~seed () in
    List.concat_map (fun (s : Scallop_data.Hwf.sample) -> s.Scallop_data.Hwf.syms)
      (Scallop_data.Hwf.dataset d 20)
  in
  Alcotest.(check (list string)) "hwf deterministic" (strings_of_hwf 5) (strings_of_hwf 5);
  let clutrr_targets seed =
    let d = Scallop_data.Clutrr.create ~seed () in
    List.map (fun (s : Scallop_data.Clutrr.sample) -> s.Scallop_data.Clutrr.target)
      (Scallop_data.Clutrr.dataset d ~k:2 20)
  in
  Alcotest.(check (list int)) "clutrr deterministic" (clutrr_targets 6) (clutrr_targets 6);
  let mnist_digits seed =
    let d = Scallop_data.Mnist.create ~seed () in
    List.concat_map (fun (s : Scallop_data.Mnist.sample) -> s.Scallop_data.Mnist.digits)
      (Scallop_data.Mnist.dataset d Scallop_data.Mnist.Sum2 20)
  in
  Alcotest.(check (list int)) "mnist deterministic" (mnist_digits 7) (mnist_digits 7)

(* ---- session-level gradient check ---------------------------------------------------- *)

let test_session_gradient_finite_diff () =
  (* ∂/∂p of P(path 0→2) through a full Session.run, vs central differences *)
  let src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  let compiled = Session.compile src in
  let t02 = Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 2 ] in
  let run probs =
    let facts =
      [
        ( "edge",
          [
            (Provenance.Input.prob probs.(0), Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 1 ]);
            (Provenance.Input.prob probs.(1), Tuple.of_list [ Value.int Value.I32 1; Value.int Value.I32 2 ]);
            (Provenance.Input.prob probs.(2), t02);
          ] );
      ]
    in
    Session.run ~provenance:(Registry.create (Registry.Diff_top_k_proofs 10)) compiled ~facts ()
  in
  let probs = [| 0.6; 0.7; 0.4 |] in
  let base = run probs in
  let grads =
    match List.find_opt (fun (t, _) -> Tuple.compare t t02 = 0) (Session.output base "path") with
    | Some (_, o) -> Provenance.Output.gradient o
    | None -> Alcotest.fail "path(0,2) missing"
  in
  let eps = 1e-6 in
  List.iter
    (fun (i, g) ->
      let p f =
        let probs' = Array.copy probs in
        probs'.(i) <- probs'.(i) +. f;
        Session.prob_of (run probs') "path" t02
      in
      let fd = (p eps -. p (-.eps)) /. (2.0 *. eps) in
      Alcotest.(check (float 1e-4)) (Fmt.str "∂P/∂r%d" i) fd g)
    grads

let suite =
  [
    qcheck_wrap_idempotent;
    qcheck_wrap_range;
    qcheck_cast_int_to_string_roundtrip;
    qcheck_value_compare_consistent_equal;
    qcheck_tuple_compare_transitive;
    qcheck_dual_mul_commutes;
    qcheck_dual_product_rule;
    qcheck_dual_complement_involution;
    qcheck_dual_gradient_linearity;
    qcheck_lexer_total;
    qcheck_parser_contained;
    qcheck_disj_monotone;
    qcheck_conj_bounded;
    qcheck_negation_complements;
    Alcotest.test_case "generators deterministic" `Quick test_generators_deterministic;
    Alcotest.test_case "session gradient vs finite diff" `Quick test_session_gradient_finite_diff;
  ]
