(** Tests for the tensor/autodiff substrate: Nd operations against
    hand-computed results and every autodiff operation's gradient against
    central finite differences. *)

open Scallop_tensor

let check = Alcotest.check

(* ---- Nd ------------------------------------------------------------------------ *)

let test_matmul () =
  let a = Nd.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Nd.of_array [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  let c = Nd.matmul a b in
  check (Alcotest.array (Alcotest.float 1e-9)) "matmul" [| 58.; 64.; 139.; 154. |] c.Nd.data

let test_transpose () =
  let a = Nd.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let t = Nd.transpose a in
  check (Alcotest.array (Alcotest.float 1e-9)) "transpose" [| 1.; 4.; 2.; 5.; 3.; 6. |] t.Nd.data

let test_softmax_rows () =
  let a = Nd.of_array [| 1; 3 |] [| 0.; 0.; 0. |] in
  let s = Nd.softmax_rows a in
  check (Alcotest.float 1e-9) "uniform" (1.0 /. 3.0) (Nd.get2 s 0 1);
  let b = Nd.of_array [| 1; 2 |] [| 1000.; 0. |] in
  let s = Nd.softmax_rows b in
  check (Alcotest.float 1e-9) "stable at large logits" 1.0 (Nd.get2 s 0 0)

let test_add_rowvec_sum_rows () =
  let m = Nd.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let v = Nd.of_array [| 1; 2 |] [| 10.; 20. |] in
  check (Alcotest.array (Alcotest.float 1e-9)) "add_rowvec" [| 11.; 22.; 13.; 24. |]
    (Nd.add_rowvec m v).Nd.data;
  check (Alcotest.array (Alcotest.float 1e-9)) "sum_rows" [| 4.; 6. |] (Nd.sum_rows m).Nd.data

let test_stack_rows () =
  let r1 = Nd.of_array [| 1; 2 |] [| 1.; 2. |] in
  let r2 = Nd.of_array [| 1; 2 |] [| 3.; 4. |] in
  let s = Nd.stack_rows [ r1; r2 ] in
  check (Alcotest.array Alcotest.int) "shape" [| 2; 2 |] s.Nd.shape;
  check (Alcotest.array (Alcotest.float 1e-9)) "data" [| 1.; 2.; 3.; 4. |] s.Nd.data

let test_argmax_row () =
  let m = Nd.of_array [| 2; 3 |] [| 1.; 5.; 2.; 9.; 0.; 3. |] in
  check Alcotest.int "row 0" 1 (Nd.argmax_row m 0);
  check Alcotest.int "row 1" 0 (Nd.argmax_row m 1)

(* ---- autodiff gradient checking ------------------------------------------------- *)

(** Numerically check dL/dx where L = build(x), a scalar. *)
let gradient_check ?(tol = 1e-3) ~name (x0 : Nd.t) (build : Autodiff.t -> Autodiff.t) =
  let x = Autodiff.param (Nd.copy x0) in
  let loss = build x in
  Autodiff.backward loss;
  let grad = match Autodiff.grad x with Some g -> g | None -> Alcotest.failf "%s: no grad" name in
  let eps = 1e-5 in
  Array.iteri
    (fun i _ ->
      let eval delta =
        let x' = Nd.copy x0 in
        x'.Nd.data.(i) <- x'.Nd.data.(i) +. delta;
        Nd.get1 (Autodiff.value (build (Autodiff.const x'))) 0
      in
      let fd = (eval eps -. eval (-.eps)) /. (2.0 *. eps) in
      check (Alcotest.float tol) (Fmt.str "%s[%d]" name i) fd grad.Nd.data.(i))
    x0.Nd.data

let rng = Scallop_utils.Rng.create 100

let test_grad_matmul () =
  let x0 = Nd.randn rng [| 2; 3 |] in
  let w = Autodiff.const (Nd.randn rng [| 3; 2 |]) in
  gradient_check ~name:"matmul" x0 (fun x -> Autodiff.sum (Autodiff.matmul x w))

let test_grad_mul_add () =
  let x0 = Nd.randn rng [| 1; 4 |] in
  let y = Autodiff.const (Nd.randn rng [| 1; 4 |]) in
  gradient_check ~name:"mul" x0 (fun x -> Autodiff.sum (Autodiff.mul x y));
  gradient_check ~name:"add" x0 (fun x -> Autodiff.sum (Autodiff.add x y));
  gradient_check ~name:"sub" x0 (fun x -> Autodiff.sum (Autodiff.sub y x))

let test_grad_activations () =
  let x0 = Nd.randn rng [| 1; 5 |] in
  gradient_check ~name:"relu" x0 (fun x -> Autodiff.sum (Autodiff.relu x));
  gradient_check ~name:"sigmoid" x0 (fun x -> Autodiff.sum (Autodiff.sigmoid x));
  gradient_check ~name:"tanh" x0 (fun x -> Autodiff.sum (Autodiff.tanh_ x))

let test_grad_softmax () =
  let x0 = Nd.randn rng [| 2; 4 |] in
  let w = Autodiff.const (Nd.randn rng [| 2; 4 |]) in
  gradient_check ~name:"softmax" x0 (fun x ->
      Autodiff.sum (Autodiff.mul (Autodiff.softmax x) w))

let test_grad_losses () =
  let x0 = Nd.map (fun v -> 0.2 +. (0.6 *. Float.abs (Float.rem v 1.0))) (Nd.randn rng [| 1; 4 |]) in
  let target = Autodiff.const (Nd.of_array [| 1; 4 |] [| 1.; 0.; 1.; 0. |]) in
  gradient_check ~name:"bce" x0 (fun x -> Autodiff.bce_loss ~eps:1e-9 x target);
  gradient_check ~name:"mse" x0 (fun x -> Autodiff.mse_loss x (Autodiff.const (Nd.zeros [| 1; 4 |])));
  let probs0 = Nd.of_array [| 1; 3 |] [| 0.2; 0.5; 0.3 |] in
  gradient_check ~name:"nll" probs0 (fun x -> Autodiff.nll_loss ~eps:1e-9 x [| 1 |])

let test_grad_add_rowvec () =
  let x0 = Nd.randn rng [| 1; 3 |] in
  let m = Autodiff.const (Nd.randn rng [| 4; 3 |]) in
  gradient_check ~name:"add_rowvec bias" x0 (fun x ->
      Autodiff.sum (Autodiff.add_rowvec m x))

let test_grad_mlp_end_to_end () =
  (* gradient through a whole MLP classifier *)
  let x0 = Nd.randn rng [| 1; 4 |] in
  let mlp = Scallop_nn.Layers.Mlp.create rng [ 4; 8; 3 ] in
  gradient_check ~name:"mlp" x0 (fun x ->
      Autodiff.nll_loss ~eps:1e-9 (Scallop_nn.Layers.Mlp.classify mlp x) [| 2 |])

let test_grad_accumulation () =
  (* a variable used twice accumulates both contributions *)
  let x = Autodiff.param (Nd.of_array [| 1; 1 |] [| 3.0 |]) in
  let loss = Autodiff.sum (Autodiff.mul x x) in
  Autodiff.backward loss;
  match Autodiff.grad x with
  | Some g -> check (Alcotest.float 1e-9) "d(x^2)/dx = 2x" 6.0 g.Nd.data.(0)
  | None -> Alcotest.fail "no grad"

(* ---- optimizers ------------------------------------------------------------------ *)

let test_sgd_minimizes_quadratic () =
  let x = Autodiff.param (Nd.of_array [| 1; 1 |] [| 5.0 |]) in
  let opt = Optim.sgd ~lr:0.1 [ x ] in
  for _ = 1 to 100 do
    let loss = Autodiff.mse_loss x (Autodiff.const (Nd.scalar 2.0)) in
    opt.Optim.zero_grad ();
    Autodiff.backward loss;
    opt.Optim.step ()
  done;
  check (Alcotest.float 1e-3) "converged to 2" 2.0 (Autodiff.value x).Nd.data.(0)

let test_adam_minimizes_quadratic () =
  let x = Autodiff.param (Nd.of_array [| 1; 2 |] [| 5.0; -3.0 |]) in
  let opt = Optim.adam ~lr:0.1 [ x ] in
  for _ = 1 to 300 do
    let loss = Autodiff.mse_loss x (Autodiff.const (Nd.of_array [| 1; 2 |] [| 1.0; 1.0 |])) in
    opt.Optim.zero_grad ();
    Autodiff.backward loss;
    opt.Optim.step ()
  done;
  check (Alcotest.float 1e-2) "x0" 1.0 (Autodiff.value x).Nd.data.(0);
  check (Alcotest.float 1e-2) "x1" 1.0 (Autodiff.value x).Nd.data.(1)

let test_momentum_sgd () =
  let x = Autodiff.param (Nd.of_array [| 1; 1 |] [| 4.0 |]) in
  let opt = Optim.sgd ~momentum:0.9 ~lr:0.01 [ x ] in
  for _ = 1 to 200 do
    let loss = Autodiff.mse_loss x (Autodiff.const (Nd.scalar 0.0)) in
    opt.Optim.zero_grad ();
    Autodiff.backward loss;
    opt.Optim.step ()
  done;
  if Float.abs (Autodiff.value x).Nd.data.(0) > 0.1 then
    Alcotest.fail "momentum SGD failed to converge"

let suite =
  [
    Alcotest.test_case "matmul" `Quick test_matmul;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "softmax rows" `Quick test_softmax_rows;
    Alcotest.test_case "add_rowvec / sum_rows" `Quick test_add_rowvec_sum_rows;
    Alcotest.test_case "stack_rows" `Quick test_stack_rows;
    Alcotest.test_case "argmax_row" `Quick test_argmax_row;
    Alcotest.test_case "grad: matmul" `Quick test_grad_matmul;
    Alcotest.test_case "grad: mul/add/sub" `Quick test_grad_mul_add;
    Alcotest.test_case "grad: activations" `Quick test_grad_activations;
    Alcotest.test_case "grad: softmax" `Quick test_grad_softmax;
    Alcotest.test_case "grad: losses" `Quick test_grad_losses;
    Alcotest.test_case "grad: bias broadcast" `Quick test_grad_add_rowvec;
    Alcotest.test_case "grad: full MLP" `Quick test_grad_mlp_end_to_end;
    Alcotest.test_case "grad: accumulation" `Quick test_grad_accumulation;
    Alcotest.test_case "sgd minimizes" `Quick test_sgd_minimizes_quadratic;
    Alcotest.test_case "adam minimizes" `Quick test_adam_minimizes_quadratic;
    Alcotest.test_case "momentum sgd" `Quick test_momentum_sgd;
  ]
