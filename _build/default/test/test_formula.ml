(** Tests for DNF proof formulas and dual numbers: the ∨k/∧k/¬k operations
    (paper Fig. 13), absorption, mutual-exclusion conflicts, and WMC against
    brute-force possible-world enumeration — including the categorical
    (mutually exclusive) semantics of Appendix B.4.4. *)

open Scallop_core

let check = Alcotest.check

let mk_env probs = Formula.env (fun v -> probs.(v))

(* ---- Dual numbers -------------------------------------------------------------- *)

let test_dual_arith () =
  let a = Dual.var 0 0.5 and b = Dual.var 1 0.25 in
  let s = Dual.add a b in
  check (Alcotest.float 1e-9) "add value" 0.75 (Dual.value s);
  check (Alcotest.float 1e-9) "add grad a" 1.0 (List.assoc 0 (Dual.deriv_list s));
  let p = Dual.mul a b in
  check (Alcotest.float 1e-9) "mul value" 0.125 (Dual.value p);
  check (Alcotest.float 1e-9) "mul grad a" 0.25 (List.assoc 0 (Dual.deriv_list p));
  check (Alcotest.float 1e-9) "mul grad b" 0.5 (List.assoc 1 (Dual.deriv_list p));
  let c = Dual.complement a in
  check (Alcotest.float 1e-9) "compl value" 0.5 (Dual.value c);
  check (Alcotest.float 1e-9) "compl grad" (-1.0) (List.assoc 0 (Dual.deriv_list c))

let test_dual_minmax_subgradient () =
  let a = Dual.var 0 0.7 and b = Dual.var 1 0.3 in
  let m = Dual.max a b in
  check (Alcotest.float 1e-9) "max takes larger" 0.7 (Dual.value m);
  check Alcotest.bool "max keeps larger's grad" true
    (List.mem_assoc 0 (Dual.deriv_list m) && not (List.mem_assoc 1 (Dual.deriv_list m)))

let test_dual_clamp () =
  let a = Dual.make 1.5 (Dual.deriv (Dual.var 0 1.0)) in
  let c = Dual.clamp a in
  check (Alcotest.float 1e-9) "clamped" 1.0 (Dual.value c);
  check Alcotest.bool "grad kept" true (List.mem_assoc 0 (Dual.deriv_list c))

(* ---- Formula operations ---------------------------------------------------------- *)

let test_formula_basics () =
  check Alcotest.bool "ff false" true (Formula.is_false Formula.ff);
  check Alcotest.bool "tt true" true (Formula.is_true Formula.tt);
  check Alcotest.bool "pos not false" false (Formula.is_false (Formula.of_pos 0))

let test_conj_conflict () =
  let env = mk_env [| 0.5; 0.5 |] in
  let a = Formula.of_pos 0 in
  let na = [ Formula.singleton_neg 0 ] in
  check Alcotest.bool "x ∧ ¬x = false" true (Formula.is_false (Formula.conj_k env 10 a na))

let test_absorption () =
  let env = mk_env [| 0.9; 0.8 |] in
  (* {x0} ∨ {x0 ∧ x1} = {x0} *)
  let f =
    Formula.disj_k env 10 (Formula.of_pos 0)
      [ Formula.proof_of_literals [ (0, true); (1, true) ] ]
  in
  check Alcotest.int "absorbed" 1 (List.length f)

let test_top_k_truncation () =
  let env = mk_env [| 0.9; 0.5; 0.1 |] in
  let proofs = [ Formula.singleton_pos 2; Formula.singleton_pos 0; Formula.singleton_pos 1 ] in
  let kept = Formula.top_k env 2 proofs in
  check Alcotest.int "two kept" 2 (List.length kept);
  check Alcotest.bool "highest prob kept" true
    (List.exists (Formula.proof_equal (Formula.singleton_pos 0)) kept);
  check Alcotest.bool "lowest dropped" false
    (List.exists (Formula.proof_equal (Formula.singleton_pos 2)) kept)

let test_negation_de_morgan () =
  let env = mk_env [| 0.6; 0.7 |] in
  (* ¬(x0 ∨ x1) = ¬x0 ∧ ¬x1 *)
  let f = Formula.disj_k env 10 (Formula.of_pos 0) (Formula.of_pos 1) in
  let n = Formula.neg_k env 10 f in
  check Alcotest.int "single proof" 1 (List.length n);
  let expected = Formula.proof_of_literals [ (0, false); (1, false) ] in
  check Alcotest.bool "both negated" true (Formula.proof_equal expected (List.hd n))

let test_negation_involution_small () =
  let env = mk_env [| 0.6; 0.7; 0.8 |] in
  let f = Formula.disj_k env 10 (Formula.of_pos 0) (Formula.of_pos 1) in
  let nn = Formula.neg_k env 64 (Formula.neg_k env 64 f) in
  (* double negation preserves semantics: check via WMC *)
  check (Alcotest.float 1e-9) "wmc preserved" (Wmc.prob ~env f) (Wmc.prob ~env nn)

let test_me_conflict () =
  let env =
    Formula.env ~me_group:(fun _ -> Some 0) (fun _ -> 0.5)
  in
  (* two distinct positive literals of one group conflict *)
  check (Alcotest.option (Alcotest.testable Formula.pp_proof Formula.proof_equal))
    "me conflict" None
    (Formula.merge_proofs env (Formula.singleton_pos 0) (Formula.singleton_pos 1))

(* ---- WMC vs brute force ------------------------------------------------------------ *)

let brute_force_wmc probs (f : Formula.t) =
  let n = Array.length probs in
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let assign v = mask land (1 lsl v) <> 0 in
    let holds =
      List.exists
        (fun proof ->
          List.for_all (fun (v, s) -> assign v = s) (Formula.proof_literals proof))
        f
    in
    if holds then begin
      let w = ref 1.0 in
      for v = 0 to n - 1 do
        w := !w *. (if assign v then probs.(v) else 1.0 -. probs.(v))
      done;
      total := !total +. !w
    end
  done;
  !total

let random_formula rng nvars max_proofs =
  List.init
    (1 + Scallop_utils.Rng.int rng max_proofs)
    (fun _ ->
      Formula.proof_of_literals
        (List.init
           (1 + Scallop_utils.Rng.int rng nvars)
           (fun _ -> (Scallop_utils.Rng.int rng nvars, Scallop_utils.Rng.bool rng))))
  |> Formula.dedup

let test_wmc_vs_brute_force () =
  let rng = Scallop_utils.Rng.create 31 in
  for _ = 1 to 100 do
    let nvars = 2 + Scallop_utils.Rng.int rng 4 in
    let probs = Array.init nvars (fun _ -> Scallop_utils.Rng.float rng) in
    let env = mk_env probs in
    let f = random_formula rng nvars 4 in
    check (Alcotest.float 1e-9) "wmc = brute force" (brute_force_wmc probs f)
      (Wmc.prob ~env f)
  done

let test_wmc_gradient_finite_difference () =
  let rng = Scallop_utils.Rng.create 37 in
  for _ = 1 to 30 do
    let nvars = 3 in
    let probs = Array.init nvars (fun _ -> 0.2 +. (0.6 *. Scallop_utils.Rng.float rng)) in
    let f = random_formula rng nvars 3 in
    let env = mk_env probs in
    let d = Wmc.dual ~env f in
    let eps = 1e-6 in
    List.iter
      (fun (v, g) ->
        let probs' = Array.copy probs in
        probs'.(v) <- probs'.(v) +. eps;
        let p_plus = Wmc.prob ~env:(mk_env probs') f in
        probs'.(v) <- probs.(v) -. eps;
        let p_minus = Wmc.prob ~env:(mk_env probs') f in
        let fd = (p_plus -. p_minus) /. (2.0 *. eps) in
        check (Alcotest.float 1e-4) "gradient matches finite difference" fd g)
      (Dual.deriv_list d)
  done

(* Categorical brute force: groups partition variables; exactly one variable
   per group is on, with probability probs.(v). *)
let test_wmc_me_vs_categorical_brute_force () =
  (* two groups of two: vars 0,1 in group 0; vars 2,3 in group 1 *)
  let probs = [| 0.3; 0.7; 0.6; 0.4 |] in
  let group v = Some (v / 2) in
  let env = Formula.env ~me_group:group (fun v -> probs.(v)) in
  let rng = Scallop_utils.Rng.create 41 in
  for _ = 1 to 50 do
    let f =
      random_formula rng 4 3
      |> List.filter_map (fun p ->
             (* keep only proofs consistent with exclusivity *)
             Formula.merge_proofs env p Formula.true_proof)
    in
    if f <> [] then begin
      (* enumerate categorical worlds: pick one var per group *)
      let total = ref 0.0 in
      List.iter
        (fun c0 ->
          List.iter
            (fun c1 ->
              let assign v = v = c0 || v = c1 in
              let holds =
                List.exists
                  (fun proof ->
                    List.for_all (fun (v, s) -> assign v = s) (Formula.proof_literals proof))
                  f
              in
              if holds then total := !total +. (probs.(c0) *. probs.(c1)))
            [ 2; 3 ])
        [ 0; 1 ];
      check (Alcotest.float 1e-9) "me wmc = categorical brute force" !total (Wmc.prob ~env f)
    end
  done

let suite =
  [
    Alcotest.test_case "dual arithmetic" `Quick test_dual_arith;
    Alcotest.test_case "dual min/max subgradient" `Quick test_dual_minmax_subgradient;
    Alcotest.test_case "dual clamp" `Quick test_dual_clamp;
    Alcotest.test_case "formula basics" `Quick test_formula_basics;
    Alcotest.test_case "conjunction conflict" `Quick test_conj_conflict;
    Alcotest.test_case "absorption" `Quick test_absorption;
    Alcotest.test_case "top-k truncation" `Quick test_top_k_truncation;
    Alcotest.test_case "negation de morgan" `Quick test_negation_de_morgan;
    Alcotest.test_case "double negation wmc" `Quick test_negation_involution_small;
    Alcotest.test_case "me conflict" `Quick test_me_conflict;
    Alcotest.test_case "wmc vs brute force" `Quick test_wmc_vs_brute_force;
    Alcotest.test_case "wmc gradient vs finite diff" `Quick test_wmc_gradient_finite_difference;
    Alcotest.test_case "me wmc vs categorical brute force" `Quick
      test_wmc_me_vs_categorical_brute_force;
  ]
