(** Tests for the neural layers and, crucially, the differentiable Scallop
    layer: its Jacobian-based backward pass is checked against central
    finite differences through the whole logic program. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core

let check = Alcotest.check
let rng = Scallop_utils.Rng.create 2024

let test_linear_shapes () =
  let l = Layers.Linear.create rng ~in_dim:4 ~out_dim:3 in
  let x = Autodiff.const (Nd.randn rng [| 2; 4 |]) in
  let y = Layers.Linear.forward l x in
  check (Alcotest.array Alcotest.int) "shape" [| 2; 3 |] (Autodiff.value y).Nd.shape

let test_mlp_classify_rows_sum_to_one () =
  let mlp = Layers.Mlp.create rng [ 4; 8; 5 ] in
  let x = Autodiff.const (Nd.randn rng [| 3; 4 |]) in
  let y = Autodiff.value (Layers.Mlp.classify mlp x) in
  for i = 0 to 2 do
    let s = ref 0.0 in
    for j = 0 to 4 do
      s := !s +. Nd.get2 y i j
    done;
    check (Alcotest.float 1e-9) "row sums to 1" 1.0 !s
  done

let test_mlp_param_count () =
  let mlp = Layers.Mlp.create rng [ 4; 8; 5 ] in
  check Alcotest.int "2 layers x (w,b)" 4 (List.length (Layers.Mlp.params mlp))

(* ---- Scallop layer ------------------------------------------------------------ *)

let sum2_src =
  {|type digit_a(u32), digit_b(u32)
rel sum_2(a + b) = digit_a(a), digit_b(b)
query sum_2|}

let digit_tuples n = Array.init n (fun v -> Tuple.of_list [ Value.int Value.U32 v ])

let layer_forward compiled pa pb =
  Scallop_layer.forward ~spec:(Registry.Diff_top_k_proofs_me 3) ~compiled
    ~inputs:
      [
        Scallop_layer.dense_mapping ~pred:"digit_a" ~tuples:(digit_tuples 3) ~probs:pa
          ~mutually_exclusive:true;
        Scallop_layer.dense_mapping ~pred:"digit_b" ~tuples:(digit_tuples 3) ~probs:pb
          ~mutually_exclusive:true;
      ]
    ~out_pred:"sum_2"
    ~candidates:(Array.init 5 (fun s -> Tuple.of_list [ Value.int Value.U32 s ]))
    ()

let test_scallop_layer_forward_values () =
  let compiled = Session.compile sum2_src in
  let pa = Autodiff.const (Nd.of_array [| 1; 3 |] [| 1.0; 0.0; 0.0 |]) in
  let pb = Autodiff.const (Nd.of_array [| 1; 3 |] [| 0.0; 1.0; 0.0 |]) in
  let y = Autodiff.value (layer_forward compiled pa pb) in
  (* certain digits 0 and 1: sum = 1 with probability 1 *)
  check (Alcotest.float 1e-6) "p(sum=1)" 1.0 (Nd.get1 y 1);
  check (Alcotest.float 1e-6) "p(sum=0)" 0.0 (Nd.get1 y 0)

let test_scallop_layer_distribution () =
  let compiled = Session.compile sum2_src in
  let pa = Autodiff.const (Nd.of_array [| 1; 3 |] [| 0.5; 0.5; 0.0 |]) in
  let pb = Autodiff.const (Nd.of_array [| 1; 3 |] [| 0.5; 0.5; 0.0 |]) in
  let y = Autodiff.value (layer_forward compiled pa pb) in
  check (Alcotest.float 1e-6) "p(sum=0)" 0.25 (Nd.get1 y 0);
  check (Alcotest.float 1e-6) "p(sum=1)" 0.5 (Nd.get1 y 1);
  check (Alcotest.float 1e-6) "p(sum=2)" 0.25 (Nd.get1 y 2)

let test_scallop_layer_gradient_finite_diff () =
  let compiled = Session.compile sum2_src in
  let pa0 = Nd.of_array [| 1; 3 |] [| 0.6; 0.3; 0.1 |] in
  let pb0 = Nd.of_array [| 1; 3 |] [| 0.2; 0.5; 0.3 |] in
  (* L = BCE(layer(pa, pb), one-hot target) with target sum=2 *)
  let build pa_nd =
    let pa = Autodiff.param (Nd.copy pa_nd) in
    let pb = Autodiff.const pb0 in
    let y = layer_forward compiled pa pb in
    let target = Nd.init [| 1; 5 |] (fun j -> if j = 2 then 1.0 else 0.0) in
    (pa, Autodiff.bce_loss ~eps:1e-9 y (Autodiff.const target))
  in
  let pa, loss = build pa0 in
  Autodiff.backward loss;
  let grad = Option.get (Autodiff.grad pa) in
  let eps = 1e-5 in
  Array.iteri
    (fun i _ ->
      let eval delta =
        let pa' = Nd.copy pa0 in
        pa'.Nd.data.(i) <- pa'.Nd.data.(i) +. delta;
        let _, l = build pa' in
        Nd.get1 (Autodiff.value l) 0
      in
      let fd = (eval eps -. eval (-.eps)) /. (2.0 *. eps) in
      check (Alcotest.float 1e-3) (Fmt.str "dL/dpa[%d]" i) fd grad.Nd.data.(i))
    pa0.Nd.data

let test_scallop_layer_static_facts () =
  let src =
    {|type obs(u32), threshold(u32)
rel above() = obs(x), threshold(t), x > t
query above|}
  in
  let compiled = Session.compile src in
  let probs = Autodiff.const (Nd.of_array [| 1; 2 |] [| 0.3; 0.7 |]) in
  let y =
    Scallop_layer.forward ~spec:(Registry.Diff_top_k_proofs 3) ~compiled
      ~static_facts:[ ("threshold", Tuple.of_list [ Value.int Value.U32 5 ]) ]
      ~inputs:
        [
          Scallop_layer.dense_mapping ~pred:"obs"
            ~tuples:[| Tuple.of_list [ Value.int Value.U32 3 ]; Tuple.of_list [ Value.int Value.U32 9 ] |]
            ~probs ~mutually_exclusive:false;
        ]
      ~out_pred:"above" ~candidates:[| Tuple.unit |] ()
  in
  check (Alcotest.float 1e-6) "only 9 > 5" 0.7 (Nd.get1 (Autodiff.value y) 0)

let test_topk_mapping_restricts () =
  let probs = Autodiff.const (Nd.of_array [| 1; 4 |] [| 0.1; 0.6; 0.05; 0.25 |]) in
  let tuples = Array.init 4 (fun v -> Tuple.of_list [ Value.int Value.U32 v ]) in
  let m = Scallop_layer.topk_mapping ~k:2 ~pred:"p" ~tuples ~probs ~mutually_exclusive:true in
  let kept = Array.to_list m.Scallop_layer.entries |> List.map fst |> List.sort compare in
  check Alcotest.(list int) "top-2 indices" [ 1; 3 ] kept

let test_forward_open_returns_derived () =
  let compiled = Session.compile sum2_src in
  let pa = Autodiff.const (Nd.of_array [| 1; 3 |] [| 0.5; 0.5; 0.0 |]) in
  let pb = Autodiff.const (Nd.of_array [| 1; 3 |] [| 1.0; 0.0; 0.0 |]) in
  let out =
    Scallop_layer.forward_open ~spec:(Registry.Diff_top_k_proofs_me 3) ~compiled
      ~inputs:
        [
          Scallop_layer.dense_mapping ~pred:"digit_a" ~tuples:(digit_tuples 3) ~probs:pa
            ~mutually_exclusive:true;
          Scallop_layer.dense_mapping ~pred:"digit_b" ~tuples:(digit_tuples 3) ~probs:pb
            ~mutually_exclusive:true;
        ]
      ~out_pred:"sum_2" ()
  in
  (* digit_a ∈ {0, 1} (p 0.5 each) and the 0.0 entry, digit_b = 0 *)
  check Alcotest.bool "derived sums present" true (Array.length out.Scallop_layer.tuples >= 2)

let test_forward_multi_shares_run () =
  let src =
    {|type f(u32)
rel a() = f(0)
rel b() = f(1)
query a
query b|}
  in
  let compiled = Session.compile src in
  let probs = Autodiff.const (Nd.of_array [| 1; 2 |] [| 0.3; 0.9 |]) in
  let inputs =
    [
      Scallop_layer.dense_mapping ~pred:"f"
        ~tuples:(Array.init 2 (fun v -> Tuple.of_list [ Value.int Value.U32 v ]))
        ~probs ~mutually_exclusive:false;
    ]
  in
  match
    Scallop_layer.forward_multi ~spec:(Registry.Diff_top_k_proofs 3) ~compiled ~inputs
      ~outputs:[ ("a", [| Tuple.unit |]); ("b", [| Tuple.unit |]) ]
      ()
  with
  | [ ya; yb ] ->
      check (Alcotest.float 1e-6) "a" 0.3 (Nd.get1 (Autodiff.value ya) 0);
      check (Alcotest.float 1e-6) "b" 0.9 (Nd.get1 (Autodiff.value yb) 0)
  | _ -> Alcotest.fail "two outputs expected"

let suite =
  [
    Alcotest.test_case "linear shapes" `Quick test_linear_shapes;
    Alcotest.test_case "mlp classify sums to 1" `Quick test_mlp_classify_rows_sum_to_one;
    Alcotest.test_case "mlp param count" `Quick test_mlp_param_count;
    Alcotest.test_case "scallop layer forward values" `Quick test_scallop_layer_forward_values;
    Alcotest.test_case "scallop layer distribution" `Quick test_scallop_layer_distribution;
    Alcotest.test_case "scallop layer gradient vs finite diff" `Quick
      test_scallop_layer_gradient_finite_diff;
    Alcotest.test_case "scallop layer static facts" `Quick test_scallop_layer_static_facts;
    Alcotest.test_case "topk mapping restricts" `Quick test_topk_mapping_restricts;
    Alcotest.test_case "forward_open returns derived" `Quick test_forward_open_returns_derived;
    Alcotest.test_case "forward_multi shares run" `Quick test_forward_multi_shares_run;
  ]
