(** Cross-validation of the polynomial aggregation schemes against the
    literal 2ⁿ possible-world semantics (paper Fig. 7, Aggregate), plus the
    O(n log n) max-min-prob counting algorithm of Appendix Alg. 1.

    Count/sum/exists use a world-exact dynamic program, so they are checked
    against brute force under both max-min-prob and sum-product tags.
    Min/max/argmin/argmax use Scallop's specialization t_u ⊗ ∏_{v≻u} ⊖t_v,
    which marginalizes smaller elements away — exact under sum-product
    (their on/off tags sum to 1) but an approximation under max-min, so the
    brute-force comparison runs under sum-product only. *)

open Scallop_core

let check = Alcotest.check

let i32 n = Value.int Value.I32 n

let rows_testable =
  Alcotest.(
    list (pair (testable Tuple.pp (fun a b -> Tuple.compare a b = 0)) (float 1e-9)))

let normalize items = List.sort (fun (a, _) (b, _) -> Tuple.compare a b) items

(* Sum-product tags: ⊕ = +, ⊗ = ·, exact for disjoint-world accumulation. *)
module AggSP = Aggregate.Make (Prov_prob.Add_mult_prob)
module AggMMP = Aggregate.Make (Prov_discrete.Max_min_prob)

let distinct_items rng n =
  List.init n (fun i -> ([| i32 i |], 0.05 +. (0.9 *. Scallop_utils.Rng.float rng)))

let cross_check_sp name agg ~arg_len gen =
  Alcotest.test_case (name ^ " (sum-product)") `Quick (fun () ->
      let rng = Scallop_utils.Rng.create 51 in
      for _ = 1 to 50 do
        let items = gen rng in
        let fast = AggSP.run agg ~arg_len items |> normalize in
        let exact = AggSP.world_exact agg ~arg_len items |> normalize in
        check rows_testable name exact fast
      done)

let cross_check_mmp name agg ~arg_len gen =
  Alcotest.test_case (name ^ " (max-min)") `Quick (fun () ->
      let rng = Scallop_utils.Rng.create 53 in
      for _ = 1 to 50 do
        let items = gen rng in
        let fast = AggMMP.run agg ~arg_len items |> normalize in
        let exact = AggMMP.world_exact agg ~arg_len items |> normalize in
        check rows_testable name exact fast
      done)

let small gen_n rng = distinct_items rng (gen_n rng)
let n2_7 rng = 2 + Scallop_utils.Rng.int rng 6

let test_count_sp = cross_check_sp "count = world semantics" Ram.Count ~arg_len:0 (small n2_7)
let test_count_mmp = cross_check_mmp "count = world semantics" Ram.Count ~arg_len:0 (small n2_7)
let test_sum_sp = cross_check_sp "sum = world semantics" Ram.Sum ~arg_len:0 (small n2_7)
let test_max_sp = cross_check_sp "max = world semantics" Ram.Max ~arg_len:0 (small n2_7)
let test_min_sp = cross_check_sp "min = world semantics" Ram.Min ~arg_len:0 (small n2_7)

(* The exists specialization tags true with ⊕ᵢ tᵢ — the literal OR of the
   tags.  That is exact when tags are boolean formulas (WMC evaluates the
   OR), but an approximation in scalar algebras (clamped + overcounts,
   max under-counts the off-complements), so the brute-force comparison
   runs with formula tags and recovers probabilities through WMC. *)
let test_exists_formula_exact () =
  let rng = Scallop_utils.Rng.create 57 in
  for _ = 1 to 30 do
    let n = 1 + Scallop_utils.Rng.int rng 5 in
    let probs = List.init n (fun _ -> 0.1 +. (0.8 *. Scallop_utils.Rng.float rng)) in
    let module P =
      Prov_prob.Top_k_proofs
        (struct
          let k = 40
        end)
        ()
    in
    let module AggF = Aggregate.Make (P) in
    let items =
      List.mapi
        (fun i p ->
          let tag, _ = P.tag_of_input (Provenance.Input.prob p) in
          ([| i32 i |], tag))
        probs
    in
    let via_formula =
      AggF.run Ram.Exists ~arg_len:0 items
      |> List.map (fun (t, tag) -> (t, Provenance.Output.prob (P.recover tag)))
      |> normalize
    in
    let p_none = List.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 probs in
    List.iter
      (fun (t, p) ->
        match Value.to_bool (Tuple.get t 0) with
        | Some true -> check (Alcotest.float 1e-6) "P(exists)" (1.0 -. p_none) p
        | Some false -> check (Alcotest.float 1e-6) "P(not exists)" p_none p
        | None -> Alcotest.fail "boolean expected")
      via_formula
  done

let test_argmax_vs_worlds_sp =
  cross_check_sp "argmax = world semantics" Ram.Argmax ~arg_len:1 (fun rng ->
      let n = 2 + Scallop_utils.Rng.int rng 4 in
      List.init n (fun i ->
          ( [| i32 i; i32 (Scallop_utils.Rng.int rng 10) |],
            0.05 +. (0.9 *. Scallop_utils.Rng.float rng) )))

let test_argmax_basic () =
  let items =
    [ ([| i32 0; i32 5 |], 0.9); ([| i32 1; i32 9 |], 0.8); ([| i32 2; i32 3 |], 0.7) ]
  in
  let out = AggMMP.run Ram.Argmax ~arg_len:1 items in
  match List.find_opt (fun (t, _) -> Value.equal (Tuple.get t 0) (i32 1)) out with
  | Some (_, tag) -> check (Alcotest.float 1e-9) "argmax tag" 0.8 tag
  | None -> Alcotest.fail "argmax missing best arg"

let test_count_dp_bounds () =
  let rng = Scallop_utils.Rng.create 3 in
  let items = distinct_items rng 8 in
  let out = AggMMP.run Ram.Count ~arg_len:0 items in
  List.iter
    (fun (t, tag) ->
      (match Value.to_int (Tuple.get t 0) with
      | Some n when n >= 0 && n <= 8 -> ()
      | _ -> Alcotest.fail "count out of range");
      if tag < 0.0 || tag > 1.0 then Alcotest.fail "tag out of [0,1]")
    out

let test_mmp_count_algorithm () =
  (* Appendix Alg. 1 agrees with the generic DP under max-min-prob *)
  let rng = Scallop_utils.Rng.create 77 in
  for _ = 1 to 50 do
    let n = 1 + Scallop_utils.Rng.int rng 7 in
    let tags = List.init n (fun _ -> Scallop_utils.Rng.float rng) in
    let fast = Aggregate.mmp_count tags in
    let via_dp =
      AggMMP.run Ram.Count ~arg_len:0 (List.mapi (fun i t -> ([| i32 i |], t)) tags)
    in
    List.iter
      (fun (t, tag) ->
        match Value.to_int (Tuple.get t 0) with
        | Some k -> check (Alcotest.float 1e-9) (Fmt.str "count %d" k) fast.(k) tag
        | None -> Alcotest.fail "bad count tuple")
      via_dp
  done

let test_exists_polarity () =
  let out = AggMMP.run Ram.Exists ~arg_len:0 [ ([| i32 0 |], 0.3) ] |> normalize in
  check rows_testable "exists both rows"
    [ ([| Value.bool false |], 0.7); ([| Value.bool true |], 0.3) ]
    out

module AggB = Aggregate.Make (Prov_discrete.Boolean)

let test_boolean_count_is_cardinality () =
  let items = List.init 5 (fun i -> ([| i32 i |], true)) in
  match AggB.run Ram.Count ~arg_len:0 items with
  | [ (t, true) ] -> check Alcotest.(option int) "count 5" (Some 5) (Value.to_int (Tuple.get t 0))
  | _ -> Alcotest.fail "boolean count should yield exactly the cardinality"

let test_empty_aggregations () =
  check rows_testable "count []"
    [ ([| Value.int Value.USize 0 |], 1.0) ]
    (normalize (AggMMP.run Ram.Count ~arg_len:0 []));
  check rows_testable "max []" [] (normalize (AggMMP.run Ram.Max ~arg_len:0 []));
  check rows_testable "exists []"
    [ ([| Value.bool false |], 1.0) ]
    (normalize (AggMMP.run Ram.Exists ~arg_len:0 []))

(* Formula-tagged aggregation: counting under top-k-proofs recovers the same
   probabilities as the float DP under sum-product (both exact). *)
let test_count_formula_tags () =
  let rng = Scallop_utils.Rng.create 91 in
  for _ = 1 to 20 do
    let n = 2 + Scallop_utils.Rng.int rng 4 in
    let probs = List.init n (fun _ -> 0.1 +. (0.8 *. Scallop_utils.Rng.float rng)) in
    let module P =
      Prov_prob.Top_k_proofs
        (struct
          let k = 20
        end)
        ()
    in
    let module AggF = Aggregate.Make (P) in
    let items =
      List.mapi
        (fun i p ->
          let tag, _ = P.tag_of_input (Provenance.Input.prob p) in
          ([| i32 i |], tag))
        probs
    in
    let via_formula =
      AggF.run Ram.Count ~arg_len:0 items
      |> List.map (fun (t, tag) -> (t, Provenance.Output.prob (P.recover tag)))
      |> normalize
    in
    let via_float =
      AggSP.run Ram.Count ~arg_len:0 (List.mapi (fun i p -> ([| i32 i |], p)) probs)
      |> normalize
    in
    List.iter2
      (fun (t1, p1) (t2, p2) ->
        if Tuple.compare t1 t2 <> 0 then Alcotest.fail "count outcomes differ";
        check (Alcotest.float 1e-6) "formula count prob" p2 p1)
      via_formula via_float
  done

let suite =
  [
    test_count_sp;
    test_count_mmp;
    test_sum_sp;
    Alcotest.test_case "exists exact with formula tags" `Quick test_exists_formula_exact;
    test_max_sp;
    test_min_sp;
    test_argmax_vs_worlds_sp;
    Alcotest.test_case "argmax basic" `Quick test_argmax_basic;
    Alcotest.test_case "count DP bounds" `Quick test_count_dp_bounds;
    Alcotest.test_case "mmp count algorithm (Alg. 1)" `Quick test_mmp_count_algorithm;
    Alcotest.test_case "exists polarity rows" `Quick test_exists_polarity;
    Alcotest.test_case "boolean count is cardinality" `Quick test_boolean_count_is_cardinality;
    Alcotest.test_case "empty aggregations" `Quick test_empty_aggregations;
    Alcotest.test_case "count with formula tags" `Quick test_count_formula_tags;
  ]
