(** Whole-pipeline semantic validation against brute force.

    The strongest correctness property we can test: for a random
    probabilistic extensional database, the probability of every derived
    fact under the exact provenance must equal the brute-force sum over all
    2ⁿ possible worlds of the input facts, where each world is evaluated
    under plain boolean semantics.  This exercises parser, compiler,
    runtime, provenance, and WMC end to end.  Also: nested aggregation,
    type-system corner cases, and the Fig. 9 numbers from the paper. *)

open Scallop_core

let check = Alcotest.check

(* ---- brute-force possible worlds ------------------------------------------------ *)

(** P(fact) = Σ over worlds containing a derivation, of the world weight. *)
let brute_force_probs src (facts : (float * string * Tuple.t) list) :
    (string * Tuple.t * float) list =
  let n = List.length facts in
  if n > 12 then invalid_arg "brute_force_probs: too many facts";
  let arr = Array.of_list facts in
  let compiled = Session.compile src in
  let acc : (string * Tuple.t, float) Hashtbl.t = Hashtbl.create 64 in
  for mask = 0 to (1 lsl n) - 1 do
    let weight = ref 1.0 in
    let world_facts = ref [] in
    Array.iteri
      (fun i (p, pred, tuple) ->
        if mask land (1 lsl i) <> 0 then begin
          weight := !weight *. p;
          world_facts := (pred, tuple) :: !world_facts
        end
        else weight := !weight *. (1.0 -. p))
      arr;
    if !weight > 0.0 then begin
      let by_pred =
        Scallop_utils.Listx.group_by (module String) fst !world_facts
        |> List.map (fun (pred, l) -> (pred, List.map (fun (_, t) -> (Provenance.Input.none, t)) l))
      in
      let result =
        Session.run ~provenance:(Registry.create Registry.Boolean) compiled ~facts:by_pred ()
      in
      List.iter
        (fun (pred, rows) ->
          List.iter
            (fun (t, o) ->
              if Provenance.Output.prob o > 0.5 then begin
                let key = (pred, t) in
                Hashtbl.replace acc key (Option.value (Hashtbl.find_opt acc key) ~default:0.0 +. !weight)
              end)
            rows)
        result.Session.outputs
    end
  done;
  Hashtbl.fold (fun (pred, t) p l -> (pred, t, p) :: l) acc []

let exact_probs src (facts : (float * string * Tuple.t) list) =
  let by_pred =
    Scallop_utils.Listx.group_by (module String)
      (fun (_, pred, _) -> pred)
      facts
    |> List.map (fun (pred, l) ->
           (pred, List.map (fun (p, _, t) -> (Provenance.Input.prob p, t)) l))
  in
  let result =
    Session.interpret ~provenance:(Registry.create Registry.Exact_prob) ~facts:by_pred src
  in
  List.concat_map
    (fun (pred, rows) ->
      List.map (fun (t, o) -> (pred, t, Provenance.Output.prob o)) rows)
    result.Session.outputs

let compare_pipelines name src facts =
  let brute = brute_force_probs src facts in
  let exact = exact_probs src facts in
  List.iter
    (fun (pred, t, p_exact) ->
      let p_brute =
        match List.find_opt (fun (pr, t', _) -> pr = pred && Tuple.compare t t' = 0) brute with
        | Some (_, _, p) -> p
        | None -> 0.0
      in
      check (Alcotest.float 1e-6) (Fmt.str "%s: %s%s" name pred (Tuple.to_string t)) p_brute
        p_exact)
    exact;
  (* and nothing derivable is missing from the exact output *)
  List.iter
    (fun (pred, t, p_brute) ->
      if p_brute > 1e-9 then
        match List.find_opt (fun (pr, t', _) -> pr = pred && Tuple.compare t t' = 0) exact with
        | Some _ -> ()
        | None -> Alcotest.failf "%s: missing %s%s" name pred (Tuple.to_string t))
    brute

let i32 n = Value.int Value.I32 n
let edge a b = Tuple.of_list [ i32 a; i32 b ]

let random_facts seed n max_node =
  let rng = Scallop_utils.Rng.create seed in
  List.init n (fun _ ->
      ( 0.2 +. (0.7 *. Scallop_utils.Rng.float rng),
        "edge",
        edge (Scallop_utils.Rng.int rng max_node) (Scallop_utils.Rng.int rng max_node) ))
  |> Scallop_utils.Listx.dedup_stable (fun (_, _, a) (_, _, b) -> Tuple.compare a b = 0)

let test_reachability_vs_worlds () =
  let src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  for seed = 0 to 4 do
    compare_pipelines "reachability" src (random_facts seed 8 4)
  done

let test_negation_vs_worlds () =
  let src =
    {|type edge(i32, i32)
rel node = {0, 1, 2, 3}
rel isolated(x) = node(x), not edge(x, _), not edge(_, x)
query isolated|}
  in
  for seed = 5 to 9 do
    compare_pipelines "isolation" src (random_facts seed 6 4)
  done

let test_count_vs_worlds () =
  let src =
    {|type edge(i32, i32)
rel degree(x, n) = n := count(y: edge(x, y) where x: src(x))
rel src = {0, 1}
query degree|}
  in
  for seed = 10 to 13 do
    compare_pipelines "degree" src (random_facts seed 6 3)
  done

let test_exists_vs_worlds () =
  let src =
    {|type edge(i32, i32)
rel has_any(b) = b := exists(x, y: edge(x, y))
query has_any|}
  in
  for seed = 14 to 17 do
    compare_pipelines "exists" src (random_facts seed 5 3)
  done

(* ---- nested aggregation --------------------------------------------------------- *)

let test_nested_aggregation () =
  (* count of groups with at least 2 members: aggregation over aggregation *)
  let r =
    Session.interpret
      ~provenance:(Registry.create Registry.Boolean)
      {|type member(g: i32, p: String)
rel member = {(0, "a"), (0, "b"), (1, "c"), (2, "d"), (2, "e"), (2, "f")}
rel group_size(g, n) = n := count(p: member(g, p))
rel big_groups(m) = m := count(g: group_size(g, n), n >= 2)
query big_groups|}
  in
  match Session.output r "big_groups" with
  | [ (t, _) ] -> check Alcotest.(option int) "2 big groups" (Some 2) (Value.to_int (Tuple.get t 0))
  | _ -> Alcotest.fail "nested aggregation"

(* ---- the paper's Fig. 9 numbers --------------------------------------------------- *)

let test_fig9_enemy_count () =
  (* enemies at B2 (0.8), others low — count distribution must follow the
     world semantics of Fig. 9's illustration *)
  let facts =
    [
      ("enemy", [ (Provenance.Input.prob 0.8, edge 1 2); (Provenance.Input.prob 0.2, edge 0 2) ]);
    ]
  in
  let r =
    Session.interpret
      ~provenance:(Registry.create (Registry.Top_k_proofs 10))
      ~facts
      {|type enemy(i32, i32)
rel num_enemy(n) = n := count(x, y: enemy(x, y))
query num_enemy|}
  in
  let p n =
    Session.prob_of r "num_enemy" (Tuple.of_list [ Value.int Value.USize n ])
  in
  check (Alcotest.float 1e-9) "P(0)" 0.16 (p 0);
  check (Alcotest.float 1e-9) "P(1)" 0.68 (p 1);
  check (Alcotest.float 1e-9) "P(2)" 0.16 (p 2)

(* ---- type-system corners ------------------------------------------------------------ *)

let test_type_alias_resolution () =
  let r =
    Session.interpret ~provenance:(Registry.create Registry.Boolean)
      {|type Relation = usize
type kinship(r: Relation, s: String)
rel kinship = {(3, "x")}
rel out(r) = kinship(r, "x")
query out|}
  in
  match Session.output r "out" with
  | [ (t, _) ] ->
      check Alcotest.string "usize via alias" "usize" (Value.ty_name (Value.type_of (Tuple.get t 0)))
  | _ -> Alcotest.fail "alias"

let test_inferred_defaults () =
  (* untyped integer columns default to i32 *)
  let c = Session.compile {|rel p = {1, 2}
rel q(x + 1) = p(x)
query q|} in
  match Hashtbl.find_opt c.Session.rel_types "q" with
  | Some [| ty |] -> check Alcotest.string "default i32" "i32" (Value.ty_name ty)
  | _ -> Alcotest.fail "missing inferred type"

let test_float_inference () =
  let c =
    Session.compile {|rel v = {1.5, 2.5}
rel doubled(x + x) = v(x)
query doubled|}
  in
  match Hashtbl.find_opt c.Session.rel_types "doubled" with
  | Some [| ty |] -> check Alcotest.bool "float column" true (Value.is_float_ty ty)
  | _ -> Alcotest.fail "missing float type"

let test_cross_width_join_coerced () =
  (* session input tuples are coerced to declared column types *)
  let c = Session.compile {|type p(u8)
rel q(x) = p(x)
query q|} in
  let r =
    Session.run ~provenance:(Registry.create Registry.Boolean) c
      ~facts:[ ("p", [ (Provenance.Input.none, Tuple.of_list [ Value.int Value.I32 300 ]) ]) ]
      ()
  in
  match Session.output r "q" with
  | [ (t, _) ] -> check Alcotest.(option int) "wrapped to u8" (Some 44) (Value.to_int (Tuple.get t 0))
  | _ -> Alcotest.fail "coercion"

let suite =
  [
    Alcotest.test_case "reachability = possible worlds" `Quick test_reachability_vs_worlds;
    Alcotest.test_case "negation = possible worlds" `Quick test_negation_vs_worlds;
    Alcotest.test_case "group-by count = possible worlds" `Quick test_count_vs_worlds;
    Alcotest.test_case "exists = possible worlds" `Quick test_exists_vs_worlds;
    Alcotest.test_case "nested aggregation" `Quick test_nested_aggregation;
    Alcotest.test_case "Fig. 9 enemy counting" `Quick test_fig9_enemy_count;
    Alcotest.test_case "type alias resolution" `Quick test_type_alias_resolution;
    Alcotest.test_case "inferred defaults" `Quick test_inferred_defaults;
    Alcotest.test_case "float inference" `Quick test_float_inference;
    Alcotest.test_case "cross-width coercion" `Quick test_cross_width_join_coerced;
  ]
