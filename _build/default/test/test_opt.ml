(** Tests for the back-IR optimizer: local rewrites checked structurally,
    plus a battery of whole programs executed optimized vs. unoptimized
    under exact provenances (results must be identical). *)

open Scallop_core

let check = Alcotest.check

(* ---- structural rewrites -------------------------------------------------------- *)

let i32 n = Value.int Value.I32 n

let test_constant_folding () =
  let e =
    Ram.Binop (Foreign.Add, Ram.Const (i32 2), Ram.Binop (Foreign.Mul, Ram.Const (i32 3), Ram.Const (i32 4)))
  in
  match Opt.fold_vexpr e with
  | Ram.Const v -> check Alcotest.(option int) "2+3*4" (Some 14) (Value.to_int v)
  | _ -> Alcotest.fail "should fold to a constant"

let test_failing_constant_not_folded () =
  (* 1/0 must keep its per-tuple drop semantics, not crash the optimizer *)
  let e = Ram.Binop (Foreign.Div, Ram.Const (i32 1), Ram.Const (i32 0)) in
  match Opt.fold_vexpr e with
  | Ram.Binop (Foreign.Div, _, _) -> ()
  | _ -> Alcotest.fail "failing constant should stay"

let test_select_true_false () =
  let base = Ram.Pred "p" in
  (match Opt.optimize_expr (Ram.Select (Ram.Const (Value.bool true), base)) with
  | Ram.Pred "p" -> ()
  | _ -> Alcotest.fail "σ_true should disappear");
  match Opt.optimize_expr (Ram.Select (Ram.Const (Value.bool false), base)) with
  | Ram.Empty -> ()
  | _ -> Alcotest.fail "σ_false should empty the plan"

let test_projection_fusion () =
  let inner = Ram.Project ([ Ram.Access 1; Ram.Access 0 ], Ram.Pred "p") in
  let outer = Ram.Project ([ Ram.Access 1 ], inner) in
  match Opt.optimize_expr outer with
  | Ram.Project ([ Ram.Access 0 ], Ram.Pred "p") -> ()
  | e -> Alcotest.failf "expected fused projection, got %a" Ram.pp_expr e

let test_projection_fusion_blocked_by_fallible () =
  (* inner mapping contains arithmetic that can fail: fusion must not occur *)
  let inner =
    Ram.Project
      ([ Ram.Access 0; Ram.Binop (Foreign.Div, Ram.Const (i32 6), Ram.Access 1) ], Ram.Pred "p")
  in
  let outer = Ram.Project ([ Ram.Access 0 ], inner) in
  match Opt.optimize_expr outer with
  | Ram.Project (_, Ram.Project (_, _)) -> ()
  | e -> Alcotest.failf "fusion over fallible mapping must be blocked, got %a" Ram.pp_expr e

let test_empty_propagation () =
  (match Opt.optimize_expr (Ram.Union (Ram.Empty, Ram.Pred "p")) with
  | Ram.Pred "p" -> ()
  | _ -> Alcotest.fail "∅ ∪ p = p");
  (match Opt.optimize_expr (Ram.Product (Ram.Pred "p", Ram.Select (Ram.Const (Value.bool false), Ram.Pred "q"))) with
  | Ram.Empty -> ()
  | _ -> Alcotest.fail "p × ∅ = ∅");
  match
    Opt.optimize_expr
      (Ram.Antijoin { lkeys = []; rkeys = []; left = Ram.Pred "p"; right = Ram.Empty })
  with
  | Ram.Pred "p" -> ()
  | _ -> Alcotest.fail "p ▷ ∅ = p"

let test_select_fusion () =
  let e =
    Ram.Select
      ( Ram.Binop (Foreign.Gt, Ram.Access 0, Ram.Const (i32 1)),
        Ram.Select (Ram.Binop (Foreign.Lt, Ram.Access 0, Ram.Const (i32 5)), Ram.Pred "p") )
  in
  match Opt.optimize_expr e with
  | Ram.Select (Ram.Binop (Foreign.Land, _, _), Ram.Pred "p") -> ()
  | e -> Alcotest.failf "expected fused selection, got %a" Ram.pp_expr e

(* ---- end-to-end equivalence --------------------------------------------------------- *)

let programs =
  [
    {|rel person = {"Alice", "Bob", "Christine"}
rel father = {("Alice", "Bob")}
rel mother = {("Bob", "Christine")}
rel gm(a, c) = father(a, b), mother(b, c)
rel lonely(p) = person(p) and not father(_, p) and not mother(_, p)
rel n(x) = x := count(p: person(p))
query gm
query lonely
query n|};
    {|type edge(i32, i32)
rel edge = {(0, 1), (1, 2), (2, 3), (3, 0)}
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|};
    {|rel v = {1, 2, 3}
rel sq(x * x) = v(x)
rel shifted(x + 1 * 2) = v(x)
rel sel(x) = v(x), x > 1 + 1
query sq
query shifted
query sel|};
    {|rel cell(x, y) = range(0, 3, x), range(0, 3, y), x != y
rel diag(x) = range(0, 3, x)
rel offdiag(n) = n := count(x, y: cell(x, y))
query offdiag|};
  ]

let run_with ~optimize src =
  let compiled = Session.compile ~optimize src in
  let result = Session.run ~provenance:(Registry.create Registry.Max_min_prob) compiled () in
  List.map
    (fun (pred, rows) ->
      ( pred,
        List.map (fun (t, o) -> Fmt.str "%a=%.6f" Tuple.pp t (Provenance.Output.prob o)) rows
        |> List.sort compare ))
    result.Session.outputs

let test_equivalence () =
  List.iteri
    (fun i src ->
      let opt = run_with ~optimize:true src in
      let raw = run_with ~optimize:false src in
      check
        Alcotest.(list (pair string (list string)))
        (Fmt.str "program %d" i) raw opt)
    programs

(* The optimizer must be idempotent on real compiled plans: a second pass
   finds nothing left to rewrite. *)
let test_idempotent_on_compiled_plans () =
  List.iter
    (fun src ->
      let c = Session.compile src in
      List.iter
        (fun (s : Ram.stratum) ->
          List.iter
            (fun (r : Ram.rule) ->
              let once = Opt.optimize_expr r.Ram.body in
              let twice = Opt.optimize_expr once in
              if Fmt.str "%a" Ram.pp_expr once <> Fmt.str "%a" Ram.pp_expr twice then
                Alcotest.failf "optimizer not idempotent on %a" Ram.pp_rule r)
            s.Ram.rules)
        c.Session.ram.Ram.strata)
    (programs
    @ [ Scallop_apps.Programs.pacman; Scallop_apps.Programs.hwf; Scallop_apps.Programs.clevr ])

let suite =
  [
    Alcotest.test_case "optimizer idempotent on compiled plans" `Quick
      test_idempotent_on_compiled_plans;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "failing constant kept" `Quick test_failing_constant_not_folded;
    Alcotest.test_case "σ true/false" `Quick test_select_true_false;
    Alcotest.test_case "projection fusion" `Quick test_projection_fusion;
    Alcotest.test_case "fusion blocked by fallible mapping" `Quick
      test_projection_fusion_blocked_by_fallible;
    Alcotest.test_case "empty propagation" `Quick test_empty_propagation;
    Alcotest.test_case "selection fusion" `Quick test_select_fusion;
    Alcotest.test_case "optimized ≡ unoptimized" `Quick test_equivalence;
  ]
