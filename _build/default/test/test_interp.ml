(** Runtime-level tests: semi-naive vs naive equivalence (property-based on
    random edge relations), saturation behaviour (the Fig. 10 story: richer
    provenances saturate later than untagged semantics), iteration limits,
    and delta-rewriting structure. *)

open Scallop_core

let check = Alcotest.check

let tc_src =
  {|type e(i32, i32)
rel path(a, b) = e(a, b)
rel path(a, c) = path(a, b), e(b, c)
query path|}

let random_edges seed n max_node =
  let rng = Scallop_utils.Rng.create seed in
  [
    ( "e",
      List.init n (fun _ ->
          ( Provenance.Input.prob (Scallop_utils.Rng.float rng),
            Tuple.of_list
              [
                Value.int Value.I32 (Scallop_utils.Rng.int rng max_node);
                Value.int Value.I32 (Scallop_utils.Rng.int rng max_node);
              ] )) );
  ]

let run_mode ~semi_naive ~provenance ?(stats = None) facts src =
  let config =
    { Interp.rng = Scallop_utils.Rng.create 0; max_iterations = 10_000; semi_naive; stats }
  in
  let r = Session.interpret ~config ~provenance:(Registry.create provenance) ~facts src in
  List.concat_map
    (fun (pred, rows) ->
      List.map (fun (t, o) -> Fmt.str "%s%a=%.6f" pred Tuple.pp t (Provenance.Output.prob o)) rows)
    r.Session.outputs
  |> List.sort compare

(* Semi-naive must agree exactly with naive under exact (untruncated)
   provenances; under top-k it may differ slightly because truncation is
   order-dependent, so those are excluded by design (see DESIGN.md). *)
let test_semi_naive_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"semi-naive ≡ naive (exact provenances)"
       QCheck.(pair (int_range 0 1000) (int_range 5 25))
       (fun (seed, n) ->
         let facts = random_edges seed n 8 in
         List.for_all
           (fun provenance ->
             run_mode ~semi_naive:true ~provenance facts tc_src
             = run_mode ~semi_naive:false ~provenance facts tc_src)
           [ Registry.Boolean; Registry.Max_min_prob; Registry.Exact_prob ]))

let test_semi_naive_equivalence_negation () =
  let src =
    {|type e(i32, i32), blocked(i32)
rel reach(0)
rel reach(y) = reach(x), e(x, y), not blocked(y)
query reach|}
  in
  for seed = 0 to 10 do
    let facts =
      random_edges seed 15 6
      @ [ ("blocked", [ (Provenance.Input.prob 0.5, Tuple.of_list [ Value.int Value.I32 3 ]) ]) ]
    in
    check
      Alcotest.(list string)
      "negation under recursion"
      (run_mode ~semi_naive:false ~provenance:Registry.Max_min_prob facts src)
      (run_mode ~semi_naive:true ~provenance:Registry.Max_min_prob facts src)
  done

let iterations ~provenance ~semi_naive facts src =
  let stats = { Interp.fixpoint_iterations = 0 } in
  ignore (run_mode ~semi_naive ~provenance ~stats:(Some stats) facts src);
  stats.Interp.fixpoint_iterations

(* Fig. 10: under max-min-prob the fixed point keeps exploring longer
   reasoning chains after untagged semantics would have stopped — the
   database saturates later (7 vs 4 iterations in the paper's example). *)
let test_fig10_saturation_ordering () =
  (* line graph with a low-probability shortcut: mmp keeps improving tags *)
  let facts =
    [
      ( "e",
        [
          (Provenance.Input.prob 0.1, Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 4 ]);
          (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 1 ]);
          (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.I32 1; Value.int Value.I32 2 ]);
          (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.I32 2; Value.int Value.I32 3 ]);
          (Provenance.Input.prob 0.9, Tuple.of_list [ Value.int Value.I32 3; Value.int Value.I32 4 ]);
        ] );
    ]
  in
  let bool_iters = iterations ~provenance:Registry.Boolean ~semi_naive:false facts tc_src in
  let mmp_iters = iterations ~provenance:Registry.Max_min_prob ~semi_naive:false facts tc_src in
  if mmp_iters < bool_iters then
    Alcotest.failf "mmp should saturate no earlier than boolean (%d vs %d)" mmp_iters bool_iters;
  (* and the mmp tag of the 0→4 path must reflect the better (longer) chain *)
  let r =
    Session.interpret
      ~provenance:(Registry.create Registry.Max_min_prob)
      ~facts tc_src
  in
  let p =
    Session.prob_of r "path" (Tuple.of_list [ Value.int Value.I32 0; Value.int Value.I32 4 ])
  in
  check (Alcotest.float 1e-9) "best chain wins over shortcut" 0.9 p

let test_iteration_limit () =
  (* natural (counting) tags on a cycle never saturate: must hit the limit *)
  let src = {|type e(i32, i32)
rel e = {(0, 1), (1, 0)}
rel path(a, b) = e(a, b)
rel path(a, c) = path(a, b), e(b, c)
query path|} in
  let config =
    { Interp.rng = Scallop_utils.Rng.create 0; max_iterations = 20; semi_naive = false; stats = None }
  in
  match Session.interpret ~config ~provenance:(Registry.create Registry.Natural) src with
  | exception Session.Error msg ->
      check Alcotest.bool "limit message" true
        (String.length msg > 0 && String.sub msg 0 8 = "fixpoint")
  | _ -> Alcotest.fail "expected iteration limit error"

let test_damp_terminates_on_recursion () =
  (* diff-add-mult-prob's always-true tag saturation (Sec. 4.5.2) means
     iteration stops as soon as the tuple set stops growing — bounded by the
     graph diameter even on cyclic graphs where tags would otherwise keep
     drifting. *)
  let facts = random_edges 3 20 6 in
  let stats = { Interp.fixpoint_iterations = 0 } in
  ignore
    (run_mode ~semi_naive:false ~provenance:Registry.Diff_add_mult_prob ~stats:(Some stats) facts
       tc_src);
  if stats.Interp.fixpoint_iterations > 8 then
    Alcotest.failf "damp should stop at the tuple-set fixpoint (took %d rounds)"
      stats.Interp.fixpoint_iterations

let test_delta_variants_structure () =
  (* Δ(path ⋈ e) for stratum {path} replaces only the path leaf *)
  let open Ram in
  let body = Join { lkeys = [ 1 ]; rkeys = [ 0 ]; left = Pred "path"; right = Pred "e" } in
  match Interp.delta_variants [ "path" ] body with
  | [ Join { left = Pred d; right = Pred "e"; _ } ] ->
      check Alcotest.bool "mangled delta name" true (d <> "path" && String.length d > 5)
  | l -> Alcotest.failf "expected one delta variant, got %d" (List.length l)

let test_delta_variants_skip_aggregate () =
  let open Ram in
  let body =
    Aggregate { agg = Count; key_len = 0; arg_len = 0; group = No_group; body = Pred "q" }
  in
  check Alcotest.int "aggregates carry no delta" 0
    (List.length (Interp.delta_variants [ "p" ] body))

let test_semi_naive_faster_iterations_equal () =
  (* same number of fixpoint rounds, far less work per round; here we just
     assert the round counts agree on a chain graph *)
  let facts =
    [
      ( "e",
        List.init 10 (fun i ->
            ( Provenance.Input.none,
              Tuple.of_list [ Value.int Value.I32 i; Value.int Value.I32 (i + 1) ] )) );
    ]
  in
  let i1 = iterations ~provenance:Registry.Boolean ~semi_naive:false facts tc_src in
  let i2 = iterations ~provenance:Registry.Boolean ~semi_naive:true facts tc_src in
  check Alcotest.int "same rounds" i1 i2

let suite =
  [
    test_semi_naive_equivalence;
    Alcotest.test_case "semi-naive ≡ naive with negation" `Quick
      test_semi_naive_equivalence_negation;
    Alcotest.test_case "Fig. 10 saturation ordering" `Quick test_fig10_saturation_ordering;
    Alcotest.test_case "iteration limit enforced" `Quick test_iteration_limit;
    Alcotest.test_case "damp terminates immediately" `Quick test_damp_terminates_on_recursion;
    Alcotest.test_case "delta variants structure" `Quick test_delta_variants_structure;
    Alcotest.test_case "delta skips aggregates" `Quick test_delta_variants_skip_aggregate;
    Alcotest.test_case "round counts agree" `Quick test_semi_naive_faster_iterations_equal;
  ]
