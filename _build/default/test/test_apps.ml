(** Oracle tests for the eight benchmark applications: each task's Scallop
    program, fed ground-truth (near-certain) facts, must reproduce the
    dataset's reference evaluator.  This separates program correctness from
    learning dynamics — exactly the paper's RQ1 (expressivity) claim. *)

open Scallop_core
open Scallop_apps

let check = Alcotest.check
let usize n = Value.int Value.USize n
let vstr s = Value.string s

let run_program ?(provenance = Registry.Boolean) compiled facts outputs =
  Session.run ~provenance:(Registry.create provenance) compiled ~facts ~outputs ()

let tuples_of result pred =
  Session.output result pred
  |> List.filter (fun (_, o) -> Provenance.Output.prob o > 0.5)
  |> List.map fst

(* ---- MNIST-R programs --------------------------------------------------------- *)

let test_mnist_programs_oracle () =
  let data = Scallop_data.Mnist.create ~seed:21 () in
  List.iter
    (fun task ->
      let compiled = Session.compile (Mnist_r.program_of task) in
      for _ = 1 to 20 do
        let s = Scallop_data.Mnist.sample data task in
        let facts =
          match (task, s.Scallop_data.Mnist.digits) with
          | (Scallop_data.Mnist.Sum2 | Scallop_data.Mnist.Less_than), [ a; b ] ->
              [
                ("digit_1", [ (Provenance.Input.none, [| Value.int Value.U32 a |]) ]);
                ("digit_2", [ (Provenance.Input.none, [| Value.int Value.U32 b |]) ]);
              ]
          | Scallop_data.Mnist.Sum3, [ a; b; c ] ->
              [
                ("digit_1", [ (Provenance.Input.none, [| Value.int Value.U32 a |]) ]);
                ("digit_2", [ (Provenance.Input.none, [| Value.int Value.U32 b |]) ]);
                ("digit_3", [ (Provenance.Input.none, [| Value.int Value.U32 c |]) ]);
              ]
          | Scallop_data.Mnist.Sum4, [ a; b; c; d ] ->
              [
                ("digit_1", [ (Provenance.Input.none, [| Value.int Value.U32 a |]) ]);
                ("digit_2", [ (Provenance.Input.none, [| Value.int Value.U32 b |]) ]);
                ("digit_3", [ (Provenance.Input.none, [| Value.int Value.U32 c |]) ]);
                ("digit_4", [ (Provenance.Input.none, [| Value.int Value.U32 d |]) ]);
              ]
          | Scallop_data.Mnist.Not_3_or_4, [ a ] ->
              [ ("digit", [ (Provenance.Input.none, [| Value.int Value.U32 a |]) ]) ]
          | (Scallop_data.Mnist.Count_3 | Scallop_data.Mnist.Count_3_or_4), ds ->
              [
                ( "digit",
                  List.mapi
                    (fun i d ->
                      (Provenance.Input.none, [| Value.int Value.U32 i; Value.int Value.U32 d |]))
                    ds );
              ]
          | _ -> assert false
        in
        let out_pred, _, _ =
          match task with
          | Scallop_data.Mnist.Sum2 -> ("sum_2", 0, 0)
          | Scallop_data.Mnist.Sum3 -> ("sum_3", 0, 0)
          | Scallop_data.Mnist.Sum4 -> ("sum_4", 0, 0)
          | Scallop_data.Mnist.Less_than -> ("less_than", 0, 0)
          | Scallop_data.Mnist.Not_3_or_4 -> ("not_3_or_4", 0, 0)
          | Scallop_data.Mnist.Count_3 -> ("count_3", 0, 0)
          | Scallop_data.Mnist.Count_3_or_4 -> ("count_3_or_4", 0, 0)
        in
        let result = run_program compiled facts [ out_pred ] in
        let derived = tuples_of result out_pred in
        let expected_value =
          match task with
          | Scallop_data.Mnist.Less_than -> Value.bool (s.Scallop_data.Mnist.target = 1)
          | Scallop_data.Mnist.Not_3_or_4 ->
              (* nullary: presence means true *)
              Value.bool true
          | Scallop_data.Mnist.Count_3 | Scallop_data.Mnist.Count_3_or_4 ->
              usize s.Scallop_data.Mnist.target
          | _ -> Value.int Value.U32 s.Scallop_data.Mnist.target
        in
        match task with
        | Scallop_data.Mnist.Not_3_or_4 ->
            check Alcotest.bool
              (Scallop_data.Mnist.task_name task)
              (s.Scallop_data.Mnist.target = 1)
              (derived <> [])
        | _ -> (
            match derived with
            | [ t ] ->
                check Alcotest.bool
                  (Scallop_data.Mnist.task_name task)
                  true
                  (Value.equal (Tuple.get t 0) expected_value
                  ||
                  (* integer-typed equality across widths *)
                  Value.to_int (Tuple.get t 0) = Value.to_int expected_value)
            | _ -> Alcotest.failf "%s: expected one output" (Scallop_data.Mnist.task_name task))
      done)
    Scallop_data.Mnist.all_tasks

(* ---- HWF ------------------------------------------------------------------------ *)

let test_hwf_program_oracle () =
  let data = Scallop_data.Hwf.create ~seed:22 () in
  let compiled = Session.compile Programs.hwf in
  for _ = 1 to 30 do
    let s = Scallop_data.Hwf.sample data in
    let facts =
      [
        ("length", [ (Provenance.Input.none, [| usize (List.length s.Scallop_data.Hwf.syms) |]) ]);
        ( "symbol",
          List.mapi
            (fun i sym -> (Provenance.Input.none, [| usize i; vstr sym |]))
            s.Scallop_data.Hwf.syms );
      ]
    in
    let result = run_program compiled facts [ "result" ] in
    match tuples_of result "result" with
    | [ t ] -> (
        match Value.to_float (Tuple.get t 0) with
        | Some v ->
            if Float.abs (v -. s.Scallop_data.Hwf.value) > 1e-3 then
              Alcotest.failf "HWF %s: got %f want %f"
                (String.concat "" s.Scallop_data.Hwf.syms)
                v s.Scallop_data.Hwf.value
        | None -> Alcotest.fail "HWF: non-numeric result")
    | l -> Alcotest.failf "HWF: %d results" (List.length l)
  done

(* ---- Pathfinder ------------------------------------------------------------------- *)

let test_pathfinder_program_oracle () =
  let data = Scallop_data.Pathfinder.create ~grid:4 ~seed:23 () in
  let compiled = Session.compile Programs.pathfinder in
  for _ = 1 to 30 do
    let s = Scallop_data.Pathfinder.sample data in
    let a, b = s.Scallop_data.Pathfinder.dots in
    let dash_facts =
      Array.to_list data.Scallop_data.Pathfinder.edges
      |> List.mapi (fun i (x, y) -> (i, x, y))
      |> List.filter_map (fun (i, x, y) ->
             if s.Scallop_data.Pathfinder.dashes.(i) then
               Some (Provenance.Input.none, [| Value.int Value.U32 x; Value.int Value.U32 y |])
             else None)
    in
    let facts =
      [
        ("dash", dash_facts);
        ( "dot",
          [
            (Provenance.Input.none, [| Value.int Value.U32 a |]);
            (Provenance.Input.none, [| Value.int Value.U32 b |]);
          ] );
      ]
    in
    let result = run_program compiled facts [ "connected" ] in
    check Alcotest.bool "pathfinder oracle" s.Scallop_data.Pathfinder.connected
      (tuples_of result "connected" <> [])
  done

(* ---- PacMan planner ------------------------------------------------------------------ *)

let test_pacman_planner_oracle () =
  (* With ground-truth facts, following the planner's best action must reach
     the goal in every solvable maze. *)
  let env = Scallop_envs.Pacman.create ~grid:5 ~max_steps:30 ~seed:24 () in
  let compiled = Session.compile Programs.pacman in
  let grid = 5 in
  let cells =
    List.concat_map
      (fun y -> List.map (fun x -> (x, y)) (Scallop_utils.Listx.range 0 grid))
      (Scallop_utils.Listx.range 0 grid)
  in
  for _ = 1 to 10 do
    Scallop_envs.Pacman.reset env;
    let finished = ref false in
    let success = ref false in
    while not !finished do
      let gt = Scallop_envs.Pacman.ground_truth env in
      let facts =
        [
          ("grid_node", List.map (fun (x, y) -> (Provenance.Input.prob 0.99, [| usize x; usize y |])) cells);
          ( "actor",
            List.filter_map
              (fun (x, y) ->
                if gt.(y).(x) = Scallop_envs.Pacman.Actor then
                  Some (Provenance.Input.prob 0.98, [| usize x; usize y |])
                else None)
              cells );
          ( "goal",
            List.filter_map
              (fun (x, y) ->
                if gt.(y).(x) = Scallop_envs.Pacman.Goal then
                  Some (Provenance.Input.prob 0.98, [| usize x; usize y |])
                else None)
              cells );
          ( "enemy",
            List.filter_map
              (fun (x, y) ->
                if gt.(y).(x) = Scallop_envs.Pacman.Enemy then
                  Some (Provenance.Input.prob 0.98, [| usize x; usize y |])
                else None)
              cells );
        ]
      in
      let result =
        run_program ~provenance:(Registry.Diff_top_k_proofs 1) compiled facts [ "next_action" ]
      in
      let best =
        List.fold_left
          (fun acc (t, o) ->
            let p = Provenance.Output.prob o in
            match acc with Some (_, bp) when bp >= p -> acc | _ -> Some (t, p))
          None
          (Session.output result "next_action")
      in
      let a =
        match best with
        | Some (t, _) -> Option.value (Value.to_int (Tuple.get t 0)) ~default:0
        | None -> 0
      in
      let r = Scallop_envs.Pacman.step env (Scallop_envs.Pacman.action_of_index a) in
      if r.Scallop_envs.Pacman.finished then begin
        finished := true;
        success := r.Scallop_envs.Pacman.reward > 0.5
      end
    done;
    check Alcotest.bool "oracle planner succeeds" true !success
  done

(* ---- CLUTRR --------------------------------------------------------------------------- *)

let test_clutrr_program_oracle () =
  let data = Scallop_data.Clutrr.create ~seed:25 () in
  let compiled = Session.compile (Clutrr_app.program_with_kb ()) in
  let checked = ref 0 in
  for _ = 1 to 40 do
    let k = 2 + Scallop_utils.Rng.int (Scallop_utils.Rng.create (40 + !checked)) 2 in
    let s = Scallop_data.Clutrr.sample_retry data ~k in
    let facts =
      [
        ( "kinship",
          List.map
            (fun (r, a, b) -> (Provenance.Input.none, [| usize r; vstr a; vstr b |]))
            s.Scallop_data.Clutrr.chain );
        ( "question",
          [ (Provenance.Input.none, [| vstr (fst s.Scallop_data.Clutrr.query); vstr (snd s.Scallop_data.Clutrr.query) |]) ] );
      ]
    in
    let result = run_program compiled facts [ "answer" ] in
    let answers = tuples_of result "answer" |> List.filter_map (fun t -> Value.to_int (Tuple.get t 0)) in
    (* The derived-by-enumeration KB may not cover every chain; when it does
       derive an answer, the true target must be among them. *)
    if answers <> [] then begin
      incr checked;
      check Alcotest.bool "target derivable" true (List.mem s.Scallop_data.Clutrr.target answers)
    end
  done;
  if !checked < 10 then Alcotest.failf "too few CLUTRR chains resolvable (%d)" !checked

(* ---- Mugen ------------------------------------------------------------------------------ *)

let test_mugen_program_oracle () =
  let data = Scallop_data.Mugen.create ~seed:26 () in
  let compiled = Session.compile Programs.mugen in
  for _ = 1 to 30 do
    let s = Scallop_data.Mugen.sample data in
    let cls (a, m) = a ^ "_" ^ m in
    let facts =
      [
        ( "action",
          List.mapi (fun i c -> (Provenance.Input.none, [| usize i; vstr (cls c) |])) s.Scallop_data.Mugen.frames );
        ( "expr",
          List.mapi (fun i c -> (Provenance.Input.none, [| usize i; vstr (cls c) |])) s.Scallop_data.Mugen.text );
        ("expr_start", [ (Provenance.Input.none, [| usize 0 |]) ]);
        ("expr_end", [ (Provenance.Input.none, [| usize (List.length s.Scallop_data.Mugen.text - 1) |]) ]);
        ("action_start", [ (Provenance.Input.none, [| usize 0 |]) ]);
        ("action_end", [ (Provenance.Input.none, [| usize (List.length s.Scallop_data.Mugen.frames) |]) ]);
      ]
    in
    let result = run_program compiled facts [ "match" ] in
    check Alcotest.bool "mugen alignment" s.Scallop_data.Mugen.aligned
      (tuples_of result "match" <> [])
  done

(* ---- CLEVR ------------------------------------------------------------------------------- *)

let test_clevr_program_oracle () =
  let data = Scallop_data.Clevr.create ~seed:27 () in
  let compiled = Session.compile Programs.clevr in
  for _ = 1 to 30 do
    let s = Scallop_data.Clevr.sample data in
    let question_facts, _ = Clevr_app.encode_question s.Scallop_data.Clevr.question in
    let facts =
      [
        ( "obj",
          List.map
            (fun (o : Scallop_data.Clevr.obj) -> (Provenance.Input.none, [| usize o.Scallop_data.Clevr.oid |]))
            s.Scallop_data.Clevr.scene.Scallop_data.Clevr.objects );
        ( "shape",
          List.map
            (fun (o : Scallop_data.Clevr.obj) ->
              (Provenance.Input.none, [| usize o.Scallop_data.Clevr.oid; vstr o.Scallop_data.Clevr.shape |]))
            s.Scallop_data.Clevr.scene.Scallop_data.Clevr.objects );
        ( "color",
          List.map
            (fun (o : Scallop_data.Clevr.obj) ->
              (Provenance.Input.none, [| usize o.Scallop_data.Clevr.oid; vstr o.Scallop_data.Clevr.color |]))
            s.Scallop_data.Clevr.scene.Scallop_data.Clevr.objects );
        ( "material",
          List.map
            (fun (o : Scallop_data.Clevr.obj) ->
              (Provenance.Input.none, [| usize o.Scallop_data.Clevr.oid; vstr o.Scallop_data.Clevr.material |]))
            s.Scallop_data.Clevr.scene.Scallop_data.Clevr.objects );
        ( "size",
          List.map
            (fun (o : Scallop_data.Clevr.obj) ->
              (Provenance.Input.none, [| usize o.Scallop_data.Clevr.oid; vstr o.Scallop_data.Clevr.size |]))
            s.Scallop_data.Clevr.scene.Scallop_data.Clevr.objects );
        ( "relate",
          List.map
            (fun (r, a, b) -> (Provenance.Input.none, [| vstr r; usize a; usize b |]))
            (Scallop_data.Clevr.relations_of s.Scallop_data.Clevr.scene) );
      ]
      @ List.map (fun (p, t) -> (p, [ (Provenance.Input.none, t) ])) question_facts
    in
    let result = run_program compiled facts [ "result" ] in
    match tuples_of result "result" with
    | [ t ] ->
        check Alcotest.string "clevr answer"
          (Scallop_data.Clevr.answer_to_string s.Scallop_data.Clevr.answer)
          (match Tuple.get t 0 with Value.S str -> str | v -> Value.to_string v)
    | l ->
        Alcotest.failf "clevr: %d results for %s" (List.length l)
          (Scallop_data.Clevr.answer_to_string s.Scallop_data.Clevr.answer)
  done

(* ---- VQAR --------------------------------------------------------------------------------- *)

let test_vqar_program_oracle () =
  let data = Scallop_data.Vqar.create ~seed:28 () in
  let compiled = Session.compile Programs.vqar in
  for _ = 1 to 30 do
    let s = Scallop_data.Vqar.sample data in
    let query_facts =
      match s.Scallop_data.Vqar.query with
      | Scallop_data.Vqar.Q_is_a c -> [ ("q_is_a", [| vstr c |]) ]
      | Scallop_data.Vqar.Q_attr (c, a) -> [ ("q_attr", [| vstr c; vstr a |]) ]
      | Scallop_data.Vqar.Q_rel (c1, r, c2) -> [ ("q_rel", [| vstr c1; vstr r; vstr c2 |]) ]
    in
    let facts =
      [
        ( "obj_name",
          List.map
            (fun (o : Scallop_data.Vqar.obj) ->
              (Provenance.Input.none, [| usize o.Scallop_data.Vqar.oid; vstr o.Scallop_data.Vqar.name |]))
            s.Scallop_data.Vqar.scene.Scallop_data.Vqar.objects );
        ( "obj_attr",
          List.concat_map
            (fun (o : Scallop_data.Vqar.obj) ->
              List.map
                (fun a -> (Provenance.Input.none, [| usize o.Scallop_data.Vqar.oid; vstr a |]))
                o.Scallop_data.Vqar.attrs)
            s.Scallop_data.Vqar.scene.Scallop_data.Vqar.objects );
        ( "obj_rela",
          List.map
            (fun (r, a, b) -> (Provenance.Input.none, [| vstr r; usize a; usize b |]))
            s.Scallop_data.Vqar.scene.Scallop_data.Vqar.rels );
        ( "is_a",
          List.map
            (fun (a, b) -> (Provenance.Input.none, [| vstr a; vstr b |]))
            Scallop_data.Vqar.taxonomy );
      ]
      @ List.map (fun (p, t) -> (p, [ (Provenance.Input.none, t) ])) query_facts
    in
    let result = run_program compiled facts [ "answer" ] in
    let answers =
      tuples_of result "answer"
      |> List.filter_map (fun t -> Value.to_int (Tuple.get t 0))
      |> List.sort compare
    in
    check Alcotest.(list int) "vqar answers"
      (List.sort compare s.Scallop_data.Vqar.answer)
      answers
  done

(* ---- learning smoke (end-to-end, tiny) ------------------------------------------------------ *)

let test_sum2_learns () =
  let config = { Common.default_config with Common.epochs = 2; n_train = 100; n_test = 60 } in
  let r = Mnist_r.train_and_eval config Scallop_data.Mnist.Sum2 in
  if r.Common.accuracy < 0.8 then
    Alcotest.failf "sum2 should learn from weak supervision (got %.2f)" r.Common.accuracy

let test_mnist_digit_acc_emerges () =
  (* RQ5 instrumentation: the never-supervised digit classifier becomes
     accurate as a side effect of task training *)
  let config = { Common.default_config with Common.epochs = 2; n_train = 120; n_test = 60 } in
  (* seed matters: some seeds fall into a shifted-digit local optimum where
     sums half-cancel; the default-config seed converges (cf. paper RQ5 on
     failure modes) *)
  let rng = Scallop_utils.Rng.create 1234 in
  let data = Scallop_data.Mnist.create ~dim:16 ~seed:1235 () in
  let m = Mnist_r.create_model ~rng ~dim:16 Scallop_data.Mnist.Sum2 in
  let opt = Scallop_tensor.Optim.adam ~lr:0.01 (Scallop_nn.Layers.Mlp.params m.Mnist_r.mlp) in
  for _ = 1 to 2 do
    List.iter
      (fun s ->
        let y = Mnist_r.forward m s in
        let loss =
          Common.bce y
            (Scallop_tensor.Autodiff.const (Common.one_hot 19 s.Scallop_data.Mnist.target))
        in
        opt.Scallop_tensor.Optim.zero_grad ();
        Scallop_tensor.Autodiff.backward loss;
        opt.Scallop_tensor.Optim.step ())
      (Scallop_data.Mnist.dataset data Scallop_data.Mnist.Sum2 config.Common.n_train)
  done;
  let acc = Mnist_r.digit_accuracy m (Scallop_data.Mnist.dataset data Scallop_data.Mnist.Sum2 50) in
  if acc < 0.7 then Alcotest.failf "digit accuracy should emerge (got %.2f)" acc

let suite =
  [
    Alcotest.test_case "MNIST-R programs vs oracle" `Quick test_mnist_programs_oracle;
    Alcotest.test_case "HWF program vs oracle" `Quick test_hwf_program_oracle;
    Alcotest.test_case "Pathfinder program vs oracle" `Quick test_pathfinder_program_oracle;
    Alcotest.test_case "PacMan planner vs oracle" `Slow test_pacman_planner_oracle;
    Alcotest.test_case "CLUTRR program vs oracle" `Quick test_clutrr_program_oracle;
    Alcotest.test_case "Mugen program vs oracle" `Quick test_mugen_program_oracle;
    Alcotest.test_case "CLEVR program vs oracle" `Quick test_clevr_program_oracle;
    Alcotest.test_case "VQAR program vs oracle" `Quick test_vqar_program_oracle;
    Alcotest.test_case "sum2 learns from weak supervision" `Slow test_sum2_learns;
    Alcotest.test_case "digit accuracy emerges (RQ5)" `Slow test_mnist_digit_acc_emerges;
  ]
