(** Tests for primitive values, typed wrapping, casting, and tuples. *)

open Scallop_core

let check = Alcotest.check
let value_t = Alcotest.testable Value.pp Value.equal

let test_int_wrapping () =
  check value_t "u8 wraps" (Value.int Value.U8 4) (Value.int Value.U8 260);
  check value_t "i8 wraps" (Value.int Value.I8 (-128)) (Value.int Value.I8 128);
  check value_t "u8 negative wraps" (Value.int Value.U8 255) (Value.int Value.U8 (-1));
  check value_t "i16 wraps" (Value.int Value.I16 (-32768)) (Value.int Value.I16 32768);
  check value_t "i32 keeps" (Value.int Value.I32 100000) (Value.int Value.I32 100000)

let test_type_of () =
  check Alcotest.string "usize" "usize" (Value.ty_name (Value.type_of (Value.int Value.USize 3)));
  check Alcotest.string "bool" "bool" (Value.ty_name (Value.type_of (Value.bool true)));
  check Alcotest.string "String" "String" (Value.ty_name (Value.type_of (Value.string "x")))

let test_ty_roundtrip () =
  List.iter
    (fun ty ->
      match Value.ty_of_name (Value.ty_name ty) with
      | Some ty' -> check Alcotest.bool "roundtrip" true (Value.equal_ty ty ty')
      | None -> Alcotest.failf "no roundtrip for %s" (Value.ty_name ty))
    [ Value.I8; Value.I16; Value.I32; Value.I64; Value.ISize; Value.U8; Value.U16;
      Value.U32; Value.U64; Value.USize; Value.F32; Value.F64; Value.Bool; Value.Char; Value.Str ]

let test_cast () =
  check (Alcotest.option value_t) "i32 -> f32"
    (Some (Value.float Value.F32 3.0))
    (Value.cast Value.F32 (Value.int Value.I32 3));
  check (Alcotest.option value_t) "i32 -> String"
    (Some (Value.string "42"))
    (Value.cast Value.Str (Value.int Value.I32 42));
  check (Alcotest.option value_t) "String -> i32"
    (Some (Value.int Value.I32 17))
    (Value.cast Value.I32 (Value.string "17"));
  check (Alcotest.option value_t) "bad String -> i32" None
    (Value.cast Value.I32 (Value.string "hello"));
  check (Alcotest.option value_t) "u32 -> usize"
    (Some (Value.int Value.USize 9))
    (Value.cast Value.USize (Value.int Value.U32 9));
  check (Alcotest.option value_t) "NaN -> i32 fails" None
    (Value.cast Value.I32 (Value.float Value.F32 Float.nan));
  check (Alcotest.option value_t) "f32 -> i32 truncates"
    (Some (Value.int Value.I32 3))
    (Value.cast Value.I32 (Value.float Value.F32 3.7))

let test_compare_total_order () =
  let vals =
    [ Value.int Value.I32 1; Value.int Value.I32 2; Value.bool false; Value.string "a" ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Value.compare a b and ba = Value.compare b a in
          check Alcotest.int "antisymmetric" (Stdlib.compare ab 0) (Stdlib.compare 0 ba))
        vals)
    vals

let tuple_t = Alcotest.testable Tuple.pp (fun a b -> Tuple.compare a b = 0)

let test_tuple_compare () =
  let t1 = Tuple.of_list [ Value.int Value.I32 1; Value.string "a" ] in
  let t2 = Tuple.of_list [ Value.int Value.I32 1; Value.string "b" ] in
  if Tuple.compare t1 t2 >= 0 then Alcotest.fail "lexicographic order";
  check tuple_t "equal" t1 (Tuple.of_list [ Value.int Value.I32 1; Value.string "a" ])

let test_tuple_prefix_order () =
  let t1 = Tuple.of_list [ Value.int Value.I32 1 ] in
  let t2 = Tuple.of_list [ Value.int Value.I32 1; Value.int Value.I32 2 ] in
  if Tuple.compare t1 t2 >= 0 then Alcotest.fail "prefix smaller"

let test_tuple_project_append () =
  let t = Tuple.of_list [ Value.int Value.I32 10; Value.int Value.I32 20; Value.int Value.I32 30 ] in
  check tuple_t "project" (Tuple.of_list [ Value.int Value.I32 30; Value.int Value.I32 10 ])
    (Tuple.project [ 2; 0 ] t);
  check tuple_t "append"
    (Tuple.of_list [ Value.int Value.I32 10; Value.int Value.I32 20; Value.int Value.I32 30 ])
    (Tuple.append (Tuple.of_list [ Value.int Value.I32 10 ])
       (Tuple.of_list [ Value.int Value.I32 20; Value.int Value.I32 30 ]))

let test_tuple_map () =
  let m =
    Tuple.Map.empty
    |> Tuple.Map.add (Tuple.of_list [ Value.int Value.I32 1 ]) "one"
    |> Tuple.Map.add (Tuple.of_list [ Value.int Value.I32 2 ]) "two"
  in
  check (Alcotest.option Alcotest.string) "lookup" (Some "two")
    (Tuple.Map.find_opt (Tuple.of_list [ Value.int Value.I32 2 ]) m)

let suite =
  [
    Alcotest.test_case "int wrapping" `Quick test_int_wrapping;
    Alcotest.test_case "type_of" `Quick test_type_of;
    Alcotest.test_case "ty name roundtrip" `Quick test_ty_roundtrip;
    Alcotest.test_case "cast" `Quick test_cast;
    Alcotest.test_case "compare total order" `Quick test_compare_total_order;
    Alcotest.test_case "tuple compare" `Quick test_tuple_compare;
    Alcotest.test_case "tuple prefix order" `Quick test_tuple_prefix_order;
    Alcotest.test_case "tuple project/append" `Quick test_tuple_project_append;
    Alcotest.test_case "tuple map" `Quick test_tuple_map;
  ]
