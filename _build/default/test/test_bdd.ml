(** Tests for the ROBDD substrate: reduction/sharing invariants, boolean
    algebra laws (property-based), model counting and weighted model
    counting against brute-force enumeration. *)

open Scallop_bdd

let check = Alcotest.check

let test_reduction () =
  let m = Bdd.manager () in
  (* x ∧ ¬x = false, x ∨ ¬x = true *)
  let x = Bdd.var m 0 in
  let nx = Bdd.bnot m x in
  check Alcotest.int "x∧¬x" (Bdd.node_id Bdd.bfalse) (Bdd.node_id (Bdd.band m x nx));
  check Alcotest.int "x∨¬x" (Bdd.node_id Bdd.btrue) (Bdd.node_id (Bdd.bor m x nx))

let test_hash_consing () =
  let m = Bdd.manager () in
  let a = Bdd.band m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.band m (Bdd.var m 1) (Bdd.var m 0) in
  check Alcotest.int "structural sharing" (Bdd.node_id a) (Bdd.node_id b)

(* Random formula generator over [nvars] variables. *)
type form = V of int | And of form * form | Or of form * form | Not of form | T | F

let rec gen_form rng nvars depth =
  if depth = 0 then V (Scallop_utils.Rng.int rng nvars)
  else
    match Scallop_utils.Rng.int rng 6 with
    | 0 -> V (Scallop_utils.Rng.int rng nvars)
    | 1 -> And (gen_form rng nvars (depth - 1), gen_form rng nvars (depth - 1))
    | 2 -> Or (gen_form rng nvars (depth - 1), gen_form rng nvars (depth - 1))
    | 3 -> Not (gen_form rng nvars (depth - 1))
    | 4 -> T
    | _ -> F

let rec build m = function
  | V i -> Bdd.var m i
  | And (a, b) -> Bdd.band m (build m a) (build m b)
  | Or (a, b) -> Bdd.bor m (build m a) (build m b)
  | Not a -> Bdd.bnot m (build m a)
  | T -> Bdd.btrue
  | F -> Bdd.bfalse

let rec eval_form assign = function
  | V i -> assign i
  | And (a, b) -> eval_form assign a && eval_form assign b
  | Or (a, b) -> eval_form assign a || eval_form assign b
  | Not a -> not (eval_form assign a)
  | T -> true
  | F -> false

let test_eval_agrees () =
  let rng = Scallop_utils.Rng.create 99 in
  let nvars = 5 in
  for _ = 1 to 100 do
    let f = gen_form rng nvars 4 in
    let m = Bdd.manager () in
    let bdd = build m f in
    for mask = 0 to (1 lsl nvars) - 1 do
      let assign v = mask land (1 lsl v) <> 0 in
      if Bdd.eval assign bdd <> eval_form assign f then
        Alcotest.fail "BDD evaluation disagrees with formula"
    done
  done

let test_count_sat_brute_force () =
  let rng = Scallop_utils.Rng.create 7 in
  let nvars = 5 in
  for _ = 1 to 50 do
    let f = gen_form rng nvars 4 in
    let m = Bdd.manager () in
    let bdd = build m f in
    let brute = ref 0 in
    for mask = 0 to (1 lsl nvars) - 1 do
      if eval_form (fun v -> mask land (1 lsl v) <> 0) f then incr brute
    done;
    check (Alcotest.float 1e-9) "model count" (float_of_int !brute) (Bdd.count_sat nvars bdd)
  done

let test_wmc_brute_force () =
  let rng = Scallop_utils.Rng.create 21 in
  let nvars = 5 in
  let probs = Array.init nvars (fun _ -> Scallop_utils.Rng.float rng) in
  for _ = 1 to 50 do
    let f = gen_form rng nvars 4 in
    let m = Bdd.manager () in
    let bdd = build m f in
    let brute = ref 0.0 in
    for mask = 0 to (1 lsl nvars) - 1 do
      let assign v = mask land (1 lsl v) <> 0 in
      if eval_form assign f then begin
        let w = ref 1.0 in
        for v = 0 to nvars - 1 do
          w := !w *. (if assign v then probs.(v) else 1.0 -. probs.(v))
        done;
        brute := !brute +. !w
      end
    done;
    let wmc =
      Bdd.wmc ~zero:0.0 ~one:1.0 ~add:( +. ) ~mul:( *. )
        ~w_pos:(fun v -> probs.(v))
        ~w_neg:(fun v -> 1.0 -. probs.(v))
        ~vars:(List.init nvars Fun.id) bdd
    in
    check (Alcotest.float 1e-9) "wmc" !brute wmc
  done

let test_cube_and_dnf () =
  let m = Bdd.manager () in
  let c = Bdd.cube m [ (0, true); (2, false) ] in
  check Alcotest.bool "cube sat" true (Bdd.eval (fun v -> v = 0) c);
  check Alcotest.bool "cube unsat" false (Bdd.eval (fun v -> v = 0 || v = 2) c);
  let d = Bdd.of_dnf m [ [ (0, true) ]; [ (1, true) ] ] in
  check Alcotest.bool "dnf or" true (Bdd.eval (fun v -> v = 1) d);
  check Alcotest.bool "dnf neither" false (Bdd.eval (fun _ -> false) d)

let qcheck_de_morgan =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"de morgan on BDDs"
       QCheck.(pair small_nat small_nat)
       (fun (s1, s2) ->
         let rng = Scallop_utils.Rng.create ((s1 * 1000) + s2) in
         let f1 = gen_form rng 4 3 and f2 = gen_form rng 4 3 in
         let m = Bdd.manager () in
         let a = build m f1 and b = build m f2 in
         let lhs = Bdd.bnot m (Bdd.band m a b) in
         let rhs = Bdd.bor m (Bdd.bnot m a) (Bdd.bnot m b) in
         Bdd.node_id lhs = Bdd.node_id rhs))

let suite =
  [
    Alcotest.test_case "reduction" `Quick test_reduction;
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "eval agrees with formula" `Quick test_eval_agrees;
    Alcotest.test_case "count_sat vs brute force" `Quick test_count_sat_brute_force;
    Alcotest.test_case "wmc vs brute force" `Quick test_wmc_brute_force;
    Alcotest.test_case "cube and dnf" `Quick test_cube_and_dnf;
    qcheck_de_morgan;
  ]
