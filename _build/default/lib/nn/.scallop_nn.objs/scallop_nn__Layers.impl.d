lib/nn/layers.ml: Autodiff List Nd Scallop_tensor
