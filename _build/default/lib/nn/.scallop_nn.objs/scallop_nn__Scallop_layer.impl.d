lib/nn/scallop_layer.ml: Array Autodiff Float Fun Hashtbl Interp List Nd Provenance Registry Scallop_core Scallop_tensor Session Tuple
