lib/core/tuple.pp.ml: Array Fmt List Map Set Value
