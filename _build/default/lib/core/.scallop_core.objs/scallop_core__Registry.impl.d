lib/core/registry.pp.ml: Option Prov_diff Prov_discrete Prov_prob Provenance String
