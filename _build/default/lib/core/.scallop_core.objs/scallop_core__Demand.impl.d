lib/core/demand.pp.ml: Array Ast Fmt Front Fun List String
