lib/core/ram.pp.ml: Array Float Fmt Foreign List Option Tuple Value
