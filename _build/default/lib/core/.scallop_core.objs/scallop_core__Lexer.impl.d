lib/core/lexer.pp.ml: Array Ast Buffer Fmt List String
