lib/core/compile.pp.ml: Ast Demand Fmt Foreign Front List Option Ram Scallop_utils Set String Tuple Value
