lib/core/typecheck.pp.ml: Array Ast Fmt Foreign Front Hashtbl List Map Option Ram String Tuple Value
