lib/core/prov_diff.pp.ml: Dual Float Fmt Formula Input Output Prov_discrete Prov_prob Provenance Wmc
