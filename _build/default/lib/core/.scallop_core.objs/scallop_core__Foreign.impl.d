lib/core/foreign.pp.ml: Float Hashtbl List Ppx_deriving_runtime Scallop_utils String Sys Tuple Value
