lib/core/prov_prob.pp.ml: Array Float Fmt Formula Input List Output Prov_discrete Provenance Scallop_utils Wmc
