lib/core/provenance.pp.ml: Dual Fmt Formula
