lib/core/dual.pp.ml: Float Fmt Int Map
