lib/core/opt.pp.ml: Array Foreign List Ram Tuple Value
