lib/core/session.pp.ml: Aggregate Array Ast Compile Demand Fmt Front Hashtbl Interp List Opt Option Parser Provenance Ram Scallop_utils Stratify String Tuple Typecheck Value
