lib/core/formula.pp.ml: Bool Float Fmt Hashtbl Int List Map Scallop_utils Set Stdlib
