lib/core/value.pp.ml: Char Float Fmt Hashtbl Option Ppx_deriving_runtime Sys
