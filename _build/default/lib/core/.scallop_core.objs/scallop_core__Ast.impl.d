lib/core/ast.pp.ml: Fmt Foreign List String
