lib/core/stratify.pp.ml: Array Ast Fmt Foreign Front List Map Scallop_utils Set String
