lib/core/interp.pp.ml: Aggregate Array Float Foreign Hashtbl List Map Option Provenance Ram Scallop_utils String Tuple
