lib/core/prov_discrete.pp.ml: Bool Float Fmt Formula Hashtbl Input Int Output Provenance
