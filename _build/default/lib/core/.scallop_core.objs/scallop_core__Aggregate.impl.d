lib/core/aggregate.pp.ml: Array Float Foreign Hashtbl List Map Provenance Ram Scallop_utils Tuple Value
