lib/core/wmc.pp.ml: Array Dual Float Formula Fun Int List Map Option Scallop_bdd
