lib/core/parser.pp.ml: Array Ast Fmt Foreign Lexer List
