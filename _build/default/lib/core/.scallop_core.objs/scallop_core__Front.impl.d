lib/core/front.pp.ml: Ast Fmt Foreign Hashtbl List Option Parser Ram Set String
