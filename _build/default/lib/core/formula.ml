(** Boolean formulas in disjunctive normal form, the tag space of the
    top-k-proofs family of provenances (paper Fig. 13, Appendix B.4.3/4).

    A {e proof} is a conjunction of literals [pos(i)] / [neg(i)] over input
    variable ids.  A formula holds at most [k] proofs; the operations
    [disj_k], [conj_k] and [neg_k] mirror ∨k, ∧k and ¬k from the paper:
    logical or/and/not on DNF followed by truncation to the [k] proofs of
    highest probability.

    Mutual exclusion (Appendix B.4.4): input facts may belong to an exclusion
    group; a proof containing two distinct positive literals from the same
    group is contradictory and removed during conflict checking. *)

module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

(** A proof maps each mentioned variable to its polarity (true = positive). *)
type proof = bool IMap.t

type t = proof list
(** Invariant: proofs are distinct; sorted by descending probability once a
    probability table is available (maintained by [top_k]). *)

(* --- environments -------------------------------------------------------- *)

(** Everything the formula operations need to know about variables: their
    probability and their optional mutual-exclusion group. *)
type env = { prob : int -> float; me_group : int -> int option }

let env ?(me_group = fun _ -> None) prob = { prob; me_group }

(* --- proofs -------------------------------------------------------------- *)

let proof_of_literals lits =
  List.fold_left (fun m (v, s) -> IMap.add v s m) IMap.empty lits

let proof_literals (p : proof) = IMap.bindings p
let true_proof : proof = IMap.empty
let singleton_pos i : proof = IMap.singleton i true
let singleton_neg i : proof = IMap.singleton i false
let proof_equal (a : proof) (b : proof) = IMap.equal Bool.equal a b
let proof_compare (a : proof) (b : proof) = IMap.compare Bool.compare a b

(** Probability of a proof: the product of its literal probabilities
    (paper Eq. 1). *)
let proof_prob envr (p : proof) =
  IMap.fold
    (fun v sign acc ->
      let r = envr.prob v in
      acc *. (if sign then r else 1.0 -. r))
    p 1.0

(** Merge two proofs into their conjunction; [None] when they conflict —
    same variable with both polarities, or (with mutual exclusion) two
    distinct positive variables of the same group. *)
let merge_proofs envr (a : proof) (b : proof) : proof option =
  let conflict = ref false in
  let merged =
    IMap.union
      (fun _ sa sb ->
        if Bool.equal sa sb then Some sa
        else begin
          conflict := true;
          Some sa
        end)
      a b
  in
  if !conflict then None
  else begin
    (* Mutual-exclusion check: collect positive literals per group. *)
    let seen = Hashtbl.create 4 in
    let me_conflict = ref false in
    IMap.iter
      (fun v sign ->
        if sign then
          match envr.me_group v with
          | None -> ()
          | Some g -> (
              match Hashtbl.find_opt seen g with
              | Some v' when v' <> v -> me_conflict := true
              | _ -> Hashtbl.replace seen g v))
      merged;
    if !me_conflict then None else Some merged
  end

(* --- formulas ------------------------------------------------------------ *)

let ff : t = []
let tt : t = [ true_proof ]
let of_pos i : t = [ singleton_pos i ]
let is_false (t : t) = t = []
let is_true (t : t) = List.exists (fun p -> IMap.is_empty p) t

let equal (a : t) (b : t) =
  List.length a = List.length b
  && List.for_all (fun p -> List.exists (proof_equal p) b) a

let dedup proofs = Scallop_utils.Listx.dedup_stable proof_equal proofs

(** A proof [p] absorbs [q] if p ⊆ q (then p ∨ q = p).  Removing absorbed
    proofs keeps formulas small and makes [top_k] more meaningful. *)
let absorbs (p : proof) (q : proof) =
  IMap.for_all (fun v s -> match IMap.find_opt v q with Some s' -> Bool.equal s s' | None -> false) p

let remove_absorbed proofs =
  List.filter
    (fun q -> not (List.exists (fun p -> (not (proof_equal p q)) && absorbs p q) proofs))
    proofs

(** Keep the [k] proofs of highest probability. *)
let top_k envr k proofs =
  proofs |> dedup |> remove_absorbed
  |> Scallop_utils.Listx.top_k_by (proof_prob envr) k

(** ∨k : union of proof sets, truncated. *)
let disj_k envr k (a : t) (b : t) : t = top_k envr k (a @ b)

(** ∧k : pairwise conflict-checked merge, truncated (Table 8). *)
let conj_k envr k (a : t) (b : t) : t =
  let merged =
    List.concat_map (fun pa -> List.filter_map (fun pb -> merge_proofs envr pa pb) b) a
  in
  top_k envr k merged

(** ¬k : negate every literal giving a CNF, then convert back to DNF by
    distribution with conflict checking (cnf2dnf, Fig. 13).  The raw
    conversion is exponential; we bound every intermediate result by [beam]
    (≥ k) proofs of highest probability, as the final answer is truncated to
    [k] anyway. *)
let neg_k ?beam envr k (t : t) : t =
  let beam = match beam with Some b -> Stdlib.max b k | None -> Stdlib.max (8 * k) 64 in
  (* CNF: one clause per proof; each clause is the disjunction of the
     negated literals of that proof. *)
  let clauses =
    List.map (fun p -> List.map (fun (v, s) -> (v, not s)) (proof_literals p)) t
  in
  let init : t = [ true_proof ] in
  let result =
    List.fold_left
      (fun acc clause ->
        let next =
          List.concat_map
            (fun p ->
              List.filter_map
                (fun (v, s) ->
                  merge_proofs envr p (IMap.singleton v s))
                clause)
            acc
        in
        top_k envr beam next)
      init clauses
  in
  top_k envr k result

(** All variables mentioned by the formula. *)
let variables (t : t) =
  List.fold_left (fun acc p -> IMap.fold (fun v _ s -> ISet.add v s) p acc) ISet.empty t
  |> ISet.elements

(** Hard upper bound on the formula probability: the probability of the
    disjunction assuming proofs disjoint, clamped. Used as a cheap weight. *)
let prob_upper_bound envr (t : t) =
  Float.min 1.0 (List.fold_left (fun acc p -> acc +. proof_prob envr p) 0.0 t)

let pp_proof fmt p =
  Fmt.pf fmt "{%a}"
    (Fmt.list ~sep:(Fmt.any " ") (fun fmt (v, s) ->
         Fmt.pf fmt "%s%d" (if s then "" else "~") v))
    (proof_literals p)

let pp fmt (t : t) =
  if is_false t then Fmt.string fmt "false"
  else Fmt.pf fmt "%a" (Fmt.list ~sep:(Fmt.any " | ") pp_proof) t
