(** Demand (magic-set) transformation under tagged semantics
    (paper Appendix B.2: the One-overwrite 𝟙(e) exists precisely so that
    magic-set predicates act as pure demand facts that do not taint derived
    tags).

    A relation annotated [@demand("bf")] declares that it is only ever
    needed for specific bindings of its 'b' columns.  The transformation:

    - introduces a demand predicate [__demand$p] over the bound columns,
    - guards every rule deriving [p] with a demand atom over its head's
      bound arguments, so tuples outside the demanded set are never
      computed,
    - for every body occurrence of [p], derives the demanded bindings from
      the rule's other positive literals (a coarse but sound
      sideways-information-passing: any superset of the exact demand is
      safe), propagating the head's own demand for recursive rules,
    - demand rules are marked so the compiler wraps their bodies in 𝟙(·):
      demand tuples always carry tag 1 and never weaken derived tags.

    Demand is seeded by queries with constant arguments
    ([query path(0, _)]) and by undemanded rules that use [p]. *)

exception Demand_error of string * Ast.pos

let demand_pred p = "__demand$" ^ p

let is_demand_pred p =
  String.length p > 9 && String.sub p 0 9 = "__demand$"

type pattern = bool array (* true = bound *)

let parse_pattern pos pred s : pattern =
  let pat =
    Array.init (String.length s) (fun i ->
        match s.[i] with
        | 'b' -> true
        | 'f' -> false
        | c -> raise (Demand_error (Fmt.str "bad demand pattern character %C for %s" c pred, pos)))
  in
  if not (Array.exists Fun.id pat) then
    raise (Demand_error (Fmt.str "demand pattern for %s binds no column" pred, pos));
  pat

(** Collect [@demand] annotations from relation declarations. *)
let patterns_of_program (program : Ast.program) : (string * pattern) list =
  List.concat_map
    (fun (d : Ast.decl) ->
      match d.Ast.item with
      | Ast.I_rel_type { name; fields } ->
          List.filter_map
            (fun (a : Ast.attribute) ->
              if a.Ast.attr_name = "demand" then
                match a.Ast.attr_args with
                | [ Ast.C_str s ] ->
                    if String.length s <> List.length fields then
                      raise
                        (Demand_error
                           (Fmt.str "demand pattern %S does not match arity of %s" s name, d.Ast.pos));
                    Some (name, parse_pattern d.Ast.pos name s)
                | _ ->
                    raise
                      (Demand_error
                         (Fmt.str "@demand on %s expects one string argument" name, d.Ast.pos))
              else None)
            d.Ast.attrs
      | _ -> [])
    program

let bound_args pos pat (args : Ast.expr list) =
  List.filteri (fun i _ -> pat.(i)) args
  |> List.map (fun (e : Ast.expr) ->
         match e with
         | Ast.E_var _ | Ast.E_const _ -> e
         | Ast.E_wildcard ->
             raise (Demand_error ("wildcard in demanded (bound) argument position", pos))
         | _ -> e)

(** Apply the transformation to desugared core rules.  Returns the rewritten
    rules plus the generated demand rules (whose heads are demand
    predicates; {!Compile} wraps those bodies in 𝟙). *)
let transform (patterns : (string * pattern) list) (rules : Front.crule list) :
    Front.crule list =
  if patterns = [] then rules
  else begin
    let pattern_of p = List.assoc_opt p patterns in
    (* 1. Guard rules deriving demanded predicates. *)
    let guarded =
      List.map
        (fun (r : Front.crule) ->
          match pattern_of r.Front.head.Ast.pred with
          | None -> r
          | Some pat ->
              let dargs = bound_args r.Front.rule_pos pat r.Front.head.Ast.args in
              let guard =
                Front.L_pos { Ast.pred = demand_pred r.Front.head.Ast.pred; args = dargs }
              in
              { r with Front.body = guard :: r.Front.body })
        rules
    in
    (* 2. Demand rules from body occurrences. *)
    let demand_rules =
      List.concat_map
        (fun (r : Front.crule) ->
          let head_guard =
            match pattern_of r.Front.head.Ast.pred with
            | Some pat ->
                [
                  Front.L_pos
                    {
                      Ast.pred = demand_pred r.Front.head.Ast.pred;
                      args = bound_args r.Front.rule_pos pat r.Front.head.Ast.args;
                    };
                ]
            | None -> []
          in
          List.filter_map
            (function
              | Front.L_pos a -> (
                  match pattern_of a.Ast.pred with
                  | None -> None
                  | Some pat ->
                      let dargs = bound_args r.Front.rule_pos pat a.Ast.args in
                      (* demand body: every other positive literal (excluding
                         occurrences of demanded predicates themselves, whose
                         extents depend on demand) plus the head's demand *)
                      let body =
                        List.filter
                          (function
                            | Front.L_pos b ->
                                pattern_of b.Ast.pred = None
                                && not (is_demand_pred b.Ast.pred)
                            | Front.L_cond _ -> true
                            | _ -> false)
                          r.Front.body
                        @ head_guard
                      in
                      Some
                        {
                          Front.head = { Ast.pred = demand_pred a.Ast.pred; args = dargs };
                          body;
                          rule_pos = r.Front.rule_pos;
                        })
              | _ -> None)
            r.Front.body)
        guarded
    in
    (* Demand heads whose variables are not bound by the reduced body make
       the pattern unusable for that rule. *)
    List.iter
      (fun (r : Front.crule) ->
        if is_demand_pred r.Front.head.Ast.pred then begin
          let bound = Front.bound_vars_of_clause r.Front.body in
          List.iter
            (fun v ->
              if not (Front.SSet.mem v bound) then
                raise
                  (Demand_error
                     ( Fmt.str
                         "demanded argument %S cannot be derived before evaluating the demanded \
                          relation (unsupported binding pattern)"
                         v,
                       r.Front.rule_pos )))
            (Ast.atom_vars r.Front.head)
        end)
      demand_rules;
    guarded @ demand_rules
  end

(** Demand facts seeding from a query atom such as [query path(0, _)]:
    constants at bound positions become a demand tuple. *)
let seed_of_query pos (patterns : (string * pattern) list) (a : Ast.atom) :
    (string * Ast.expr list) option =
  match List.assoc_opt a.Ast.pred patterns with
  | None -> None
  | Some pat ->
      if List.length a.Ast.args <> Array.length pat then
        raise (Demand_error (Fmt.str "query arity mismatch for %s" a.Ast.pred, pos));
      Some (demand_pred a.Ast.pred, bound_args pos pat a.Ast.args)
