(** Abstract syntax of the Scallop surface language (paper Fig. 20). *)

type pos = { line : int; col : int }

let pp_pos fmt { line; col } = Fmt.pf fmt "%d:%d" line col
let dummy_pos = { line = 0; col = 0 }

(* ---- value expressions --------------------------------------------------- *)

type constant =
  | C_int of int
  | C_float of float
  | C_bool of bool
  | C_char of char
  | C_str of string

type expr =
  | E_var of string
  | E_wildcard
  | E_const of constant
  | E_binop of Foreign.binop * expr * expr
  | E_unop of Foreign.unop * expr
  | E_call of string * expr list  (** $-function application *)
  | E_if of expr * expr * expr
  | E_cast of expr * string  (** [expr as type] *)

(* ---- formulas ------------------------------------------------------------- *)

type atom = { pred : string; args : expr list }

type reduce_op =
  | R_aggregate of string  (** count, sum, prod, min, max, exists, forall *)
  | R_arg_extremum of string * string list  (** argmin/argmax with arg vars *)
  | R_sampler of string * int  (** top<K>, categorical<K>, uniform<K> *)

type formula =
  | F_atom of atom
  | F_neg_atom of atom
  | F_and of formula * formula
  | F_or of formula * formula
  | F_implies of formula * formula
  | F_not of formula
  | F_constraint of expr
  | F_reduce of reduce

and reduce = {
  result_vars : string list;
  op : reduce_op;
  binding_vars : string list;
  body : formula;
  where : (string list * formula) option;  (** explicit group-by domain *)
}

(* ---- items ---------------------------------------------------------------- *)

type attribute = { attr_name : string; attr_args : constant list }

(** Fact sets: [rel p = {0.9::(a); 0.1::(b); ...}].  Tuples joined by [;]
    into the same segment are mutually exclusive; [,] separates independent
    segments (paper Sec. 3.3). *)
type fact_tuple = { ftag : float option; fargs : expr list }

type item =
  | I_import of string
  | I_rel_type of { name : string; fields : (string option * string) list }
  | I_type_alias of { name : string; target : string }
  | I_subtype of { name : string; super : string }
  | I_const of (string * string option * expr) list
  | I_fact of { tag : float option; atom : atom }
  | I_fact_set of { pred : string; segments : fact_tuple list list }
  | I_rule of { tag : float option; head : atom; body : formula }
  | I_query of string
  | I_query_atom of atom
      (** [query p(0, _)]: restricts outputs and seeds demand transformation *)

type decl = { attrs : attribute list; item : item; pos : pos }
type program = decl list

(* ---- helpers --------------------------------------------------------------- *)

let rec expr_vars = function
  | E_var v -> [ v ]
  | E_wildcard | E_const _ -> []
  | E_binop (_, a, b) -> expr_vars a @ expr_vars b
  | E_unop (_, a) -> expr_vars a
  | E_call (_, args) -> List.concat_map expr_vars args
  | E_if (c, a, b) -> expr_vars c @ expr_vars a @ expr_vars b
  | E_cast (a, _) -> expr_vars a

let atom_vars a = List.concat_map expr_vars a.args

let rec formula_vars = function
  | F_atom a | F_neg_atom a -> atom_vars a
  | F_and (a, b) | F_or (a, b) | F_implies (a, b) -> formula_vars a @ formula_vars b
  | F_not f -> formula_vars f
  | F_constraint e -> expr_vars e
  | F_reduce r ->
      r.result_vars
      @ (match r.op with R_arg_extremum (_, args) -> args | _ -> [])
      @ (match r.where with Some (gv, _) -> gv | None -> [])

(* ---- pretty printing -------------------------------------------------------- *)

let pp_constant fmt = function
  | C_int n -> Fmt.int fmt n
  | C_float f -> Fmt.float fmt f
  | C_bool b -> Fmt.bool fmt b
  | C_char c -> Fmt.pf fmt "'%c'" c
  | C_str s -> Fmt.pf fmt "%S" s

let rec pp_expr fmt = function
  | E_var v -> Fmt.string fmt v
  | E_wildcard -> Fmt.string fmt "_"
  | E_const c -> pp_constant fmt c
  | E_binop (op, a, b) ->
      Fmt.pf fmt "(%a %s %a)" pp_expr a (Foreign.binop_name op) pp_expr b
  | E_unop (op, a) -> Fmt.pf fmt "%s%a" (Foreign.unop_name op) pp_expr a
  | E_call (f, args) -> Fmt.pf fmt "$%s(%a)" f (Fmt.list ~sep:Fmt.comma pp_expr) args
  | E_if (c, a, b) -> Fmt.pf fmt "if %a then %a else %a" pp_expr c pp_expr a pp_expr b
  | E_cast (a, ty) -> Fmt.pf fmt "(%a as %s)" pp_expr a ty

let pp_atom fmt a =
  Fmt.pf fmt "%s(%a)" a.pred (Fmt.list ~sep:Fmt.comma pp_expr) a.args

let rec pp_formula fmt = function
  | F_atom a -> pp_atom fmt a
  | F_neg_atom a -> Fmt.pf fmt "not %a" pp_atom a
  | F_and (a, b) -> Fmt.pf fmt "(%a and %a)" pp_formula a pp_formula b
  | F_or (a, b) -> Fmt.pf fmt "(%a or %a)" pp_formula a pp_formula b
  | F_implies (a, b) -> Fmt.pf fmt "(%a implies %a)" pp_formula a pp_formula b
  | F_not f -> Fmt.pf fmt "not (%a)" pp_formula f
  | F_constraint e -> pp_expr fmt e
  | F_reduce r ->
      let op_str =
        match r.op with
        | R_aggregate s -> s
        | R_arg_extremum (s, args) -> Fmt.str "%s<%s>" s (String.concat ", " args)
        | R_sampler (s, k) -> Fmt.str "%s<%d>" s k
      in
      Fmt.pf fmt "%s := %s(%s: %a%a)"
        (String.concat ", " r.result_vars)
        op_str
        (String.concat ", " r.binding_vars)
        pp_formula r.body
        (fun fmt -> function
          | None -> ()
          | Some (gv, f) ->
              Fmt.pf fmt " where %s: %a" (String.concat ", " gv) pp_formula f)
        r.where
