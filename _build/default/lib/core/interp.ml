(** The SclRam runtime: tagged operational semantics (paper Fig. 7, 23, 24),
    parameterized by a provenance.

    A database maps predicates to relations; a relation maps tuples to tags.
    Expression evaluation produces (possibly duplicated) tagged tuples;
    rule evaluation normalizes them (⊕-merging duplicates and applying early
    [discard]) and merges with previously derived facts (Rule-1/2/3).
    Stratum evaluation is the saturation-checked least-fixed-point lfp°. *)

exception Runtime_error of string

type stats = { mutable fixpoint_iterations : int }
(** Observability: total fixed-point iterations across strata (the Fig. 10
    saturation traces are measured through this). *)

type config = {
  rng : Scallop_utils.Rng.t;
  max_iterations : int;
  semi_naive : bool;
  stats : stats option;
}

let default_config () =
  { rng = Scallop_utils.Rng.create 0; max_iterations = 10_000; semi_naive = true; stats = None }

let bump_stats config =
  match config.stats with Some s -> s.fixpoint_iterations <- s.fixpoint_iterations + 1 | None -> ()

(* Delta relations for semi-naive evaluation live in the same database under
   mangled names that cannot clash with source predicates. *)
let delta_name p = "\001delta:" ^ p

(** Delta rewriting for semi-naive evaluation (the paper's runtime is
    "based on semi-naive evaluation specialized for tagged semantics",
    Sec. 5).  Returns expressions whose union covers every derivation
    involving at least one changed tuple of the stratum's head predicates:
    each variant replaces one recursive leaf with its delta relation.
    Derivations among unchanged tuples were already ⊕-merged in earlier
    iterations and are preserved by the Rule-1/3 merge, so skipping them is
    sound.  Stratification guarantees that aggregation bodies, sampling
    bodies and the right-hand sides of difference/anti-join never mention
    the current stratum, so they never carry a delta. *)
let rec delta_variants (heads : string list) (e : Ram.expr) : Ram.expr list =
  let on sub rebuild = List.map rebuild (delta_variants heads sub) in
  match e with
  | Ram.Pred p when List.mem p heads -> [ Ram.Pred (delta_name p) ]
  | Ram.Pred _ | Ram.Empty | Ram.Singleton -> []
  | Ram.Select (c, sub) -> on sub (fun s -> Ram.Select (c, s))
  | Ram.Project (m, sub) -> on sub (fun s -> Ram.Project (m, s))
  | Ram.One_overwrite sub -> on sub (fun s -> Ram.One_overwrite s)
  | Ram.Zero_overwrite sub -> on sub (fun s -> Ram.Zero_overwrite s)
  | Ram.Union (a, b) -> delta_variants heads a @ delta_variants heads b
  | Ram.Product (a, b) ->
      on a (fun a' -> Ram.Product (a', b)) @ on b (fun b' -> Ram.Product (a, b'))
  | Ram.Intersect (a, b) ->
      on a (fun a' -> Ram.Intersect (a', b)) @ on b (fun b' -> Ram.Intersect (a, b'))
  | Ram.Join { lkeys; rkeys; left; right } ->
      on left (fun l -> Ram.Join { lkeys; rkeys; left = l; right })
      @ on right (fun r -> Ram.Join { lkeys; rkeys; left; right = r })
  | Ram.Diff (a, b) -> on a (fun a' -> Ram.Diff (a', b))
  | Ram.Antijoin { lkeys; rkeys; left; right } ->
      on left (fun l -> Ram.Antijoin { lkeys; rkeys; left = l; right })
  | Ram.Aggregate _ | Ram.Sample _ -> []
  | Ram.Foreign_join { name; args; left } ->
      on left (fun l -> Ram.Foreign_join { name; args; left = l })

module Make (P : Provenance.S) = struct
  module Agg = Aggregate.Make (P)
  module SMap = Map.Make (String)

  type relation = P.t Tuple.Map.t
  type db = relation SMap.t

  let empty_db : db = SMap.empty

  let relation_of db pred : relation =
    match SMap.find_opt pred db with Some r -> r | None -> Tuple.Map.empty

  let db_add_fact db pred tuple tag =
    let rel = relation_of db pred in
    let rel =
      Tuple.Map.update tuple
        (fun cur -> Some (match cur with None -> tag | Some t -> P.add t tag))
        rel
    in
    SMap.add pred rel db

  (* ---- normalization (Fig. 24, Normalize) ------------------------------- *)

  let normalize (tuples : (Tuple.t * P.t) list) : relation =
    List.fold_left
      (fun acc (u, t) ->
        Tuple.Map.update u
          (fun cur -> Some (match cur with None -> t | Some t' -> P.add t' t))
          acc)
      Tuple.Map.empty tuples
    |> Tuple.Map.filter (fun _ t -> not (P.discard t))

  (* ---- grouping helper --------------------------------------------------- *)

  let split_key key_len (u : Tuple.t) =
    (Array.sub u 0 key_len, Array.sub u key_len (Array.length u - key_len))

  let group_by_key key_len (items : (Tuple.t * P.t) list) :
      (Tuple.t * (Tuple.t * P.t) list) list =
    let tbl : (Tuple.t * P.t) list Tuple.Map.t ref = ref Tuple.Map.empty in
    List.iter
      (fun (u, t) ->
        let key, rest = split_key key_len u in
        tbl :=
          Tuple.Map.update key
            (fun cur -> Some ((rest, t) :: Option.value cur ~default:[]))
            !tbl)
      items;
    Tuple.Map.bindings !tbl |> List.map (fun (k, l) -> (k, List.rev l))

  (* ---- samplers ---------------------------------------------------------- *)

  let apply_sampler config sampler (items : (Tuple.t * P.t) list) :
      (Tuple.t * P.t) list =
    match sampler with
    | Ram.Top_k k -> Scallop_utils.Listx.top_k_by (fun (_, t) -> P.weight t) k items
    | Ram.Categorical k ->
        if items = [] then []
        else begin
          let arr = Array.of_list items in
          let weights = Array.map (fun (_, t) -> Float.max 0.0 (P.weight t)) arr in
          let chosen = Hashtbl.create k in
          for _ = 1 to k do
            let i = Scallop_utils.Rng.categorical config.rng weights in
            Hashtbl.replace chosen i ()
          done;
          Hashtbl.fold (fun i () acc -> arr.(i) :: acc) chosen []
        end
    | Ram.Uniform k ->
        if items = [] then []
        else begin
          let arr = Array.of_list items in
          let chosen = Hashtbl.create k in
          for _ = 1 to k do
            let i = Scallop_utils.Rng.int config.rng (Array.length arr) in
            Hashtbl.replace chosen i ()
          done;
          Hashtbl.fold (fun i () acc -> arr.(i) :: acc) chosen []
        end

  (* ---- expression evaluation (Fig. 7 / Fig. 23) -------------------------- *)

  let rec eval_expr config (db : db) (e : Ram.expr) : (Tuple.t * P.t) list =
    match e with
    | Ram.Empty -> []
    | Ram.Singleton -> [ (Tuple.unit, P.one) ]
    | Ram.Pred p -> Tuple.Map.bindings (relation_of db p)
    | Ram.Select (cond, e) ->
        List.filter (fun (u, _) -> Ram.eval_cond u cond) (eval_expr config db e)
    | Ram.Project (m, e) ->
        List.filter_map
          (fun (u, t) -> Option.map (fun u' -> (u', t)) (Ram.eval_mapping u m))
          (eval_expr config db e)
    | Ram.Union (a, b) -> eval_expr config db a @ eval_expr config db b
    | Ram.Product (a, b) ->
        let rb = eval_expr config db b in
        List.concat_map
          (fun (ua, ta) -> List.map (fun (ub, tb) -> (Tuple.append ua ub, P.mult ta tb)) rb)
          (eval_expr config db a)
    | Ram.Diff (a, b) ->
        (* Diff-1: tuple absent from b — propagate unchanged.
           Diff-2: present in both — tag t₁ ⊗ ⊖t₂ (information-preserving). *)
        let rb = normalize (eval_expr config db b) in
        List.filter_map
          (fun (u, ta) ->
            match Tuple.Map.find_opt u rb with
            | None -> Some (u, ta)
            | Some tb -> (
                match P.negate tb with
                | Some ntb -> Some (u, P.mult ta ntb)
                | None -> raise (Runtime_error (P.name ^ " does not support negation"))))
          (eval_expr config db a)
    | Ram.Intersect (a, b) ->
        let rb = normalize (eval_expr config db b) in
        List.filter_map
          (fun (u, ta) ->
            Option.map (fun tb -> (u, P.mult ta tb)) (Tuple.Map.find_opt u rb))
          (eval_expr config db a)
    | Ram.Join { lkeys; rkeys; left; right } ->
        let rights = eval_expr config db right in
        let index : (Tuple.t * P.t) list Tuple.Map.t =
          List.fold_left
            (fun m ((u, _) as item) ->
              let key = Tuple.project rkeys u in
              Tuple.Map.update key
                (fun cur -> Some (item :: Option.value cur ~default:[]))
                m)
            Tuple.Map.empty rights
        in
        List.concat_map
          (fun (ul, tl) ->
            let key = Tuple.project lkeys ul in
            match Tuple.Map.find_opt key index with
            | None -> []
            | Some matches ->
                List.map (fun (ur, tr) -> (Tuple.append ul ur, P.mult tl tr)) matches)
          (eval_expr config db left)
    | Ram.Antijoin { lkeys; rkeys; left; right } ->
        (* Right side is keyed and ⊕-merged; a left tuple matching key k is
           tagged t_l ⊗ ⊖(⊕ of right tags at k). *)
        let index : P.t Tuple.Map.t =
          List.fold_left
            (fun m (u, t) ->
              let key = Tuple.project rkeys u in
              Tuple.Map.update key
                (fun cur -> Some (match cur with None -> t | Some t' -> P.add t' t))
                m)
            Tuple.Map.empty
            (eval_expr config db right)
        in
        List.filter_map
          (fun (ul, tl) ->
            let key = Tuple.project lkeys ul in
            match Tuple.Map.find_opt key index with
            | None -> Some (ul, tl)
            | Some tr -> (
                match P.negate tr with
                | Some ntr -> Some (ul, P.mult tl ntr)
                | None -> raise (Runtime_error (P.name ^ " does not support negation"))))
          (eval_expr config db left)
    | Ram.One_overwrite e ->
        Tuple.Map.bindings (normalize (eval_expr config db e))
        |> List.map (fun (u, _) -> (u, P.one))
    | Ram.Zero_overwrite e ->
        Tuple.Map.bindings (normalize (eval_expr config db e))
        |> List.map (fun (u, _) -> (u, P.zero))
    | Ram.Aggregate { agg; key_len; arg_len; group; body } -> (
        let items = Tuple.Map.bindings (normalize (eval_expr config db body)) in
        match group with
        | Ram.No_group ->
            let rest = List.map (fun (u, t) -> (snd (split_key key_len u), t)) items in
            Agg.run agg ~arg_len rest |> List.map (fun (r, t) -> (r, t))
        | Ram.Implicit ->
            group_by_key key_len items
            |> List.concat_map (fun (key, group_items) ->
                   Agg.run agg ~arg_len group_items
                   |> List.map (fun (r, t) -> (Tuple.append key r, t)))
        | Ram.Domain dom ->
            let domain = Tuple.Map.bindings (normalize (eval_expr config db dom)) in
            let grouped = group_by_key key_len items in
            List.concat_map
              (fun (key, tg) ->
                let group_items =
                  match List.find_opt (fun (k, _) -> Tuple.compare k key = 0) grouped with
                  | Some (_, l) -> l
                  | None -> []
                in
                Agg.run agg ~arg_len group_items
                |> List.map (fun (r, t) -> (Tuple.append key r, P.mult tg t)))
              domain)
    | Ram.Sample { sampler; key_len; group; body } -> (
        let items = Tuple.Map.bindings (normalize (eval_expr config db body)) in
        match group with
        | Ram.No_group -> apply_sampler config sampler items
        | Ram.Implicit | Ram.Domain _ ->
            group_by_key key_len items
            |> List.concat_map (fun (key, group_items) ->
                   apply_sampler config sampler group_items
                   |> List.map (fun (r, t) -> (Tuple.append key r, t))))
    | Ram.Foreign_join { name; args; left } -> (
        match Foreign.lookup_predicate name with
        | None -> raise (Runtime_error ("unknown foreign predicate $" ^ name))
        | Some (arity, fp) ->
            if List.length args <> arity then
              raise (Runtime_error ("arity mismatch for foreign predicate " ^ name));
            List.concat_map
              (fun (ul, tl) ->
                let pattern =
                  Array.of_list
                    (List.map
                       (function
                         | Ram.F_col i -> Some ul.(i)
                         | Ram.F_const v -> Some v
                         | Ram.F_free -> None)
                       args)
                in
                match fp pattern with
                | Error msg -> raise (Runtime_error (name ^ ": " ^ msg))
                | Ok tuples ->
                    List.map
                      (fun full ->
                        (* keep only the free positions, in order *)
                        let extra =
                          List.filteri (fun i _ -> List.nth args i = Ram.F_free)
                            (Array.to_list full)
                        in
                        (Tuple.append ul (Tuple.of_list extra), tl))
                      tuples)
              (eval_expr config db left))

  (* ---- rules (Fig. 24, Rule-1/2/3) --------------------------------------- *)

  let eval_rule config (db : db) (r : Ram.rule) : relation =
    let newly = normalize (eval_expr config db r.body) in
    let old = relation_of db r.head in
    Tuple.Map.merge
      (fun _u t_old t_new ->
        match (t_old, t_new) with
        | Some t, None -> Some t (* Rule-1 *)
        | None, Some t -> Some t (* Rule-2 *)
        | Some t1, Some t2 -> Some (P.add t1 t2) (* Rule-3 *)
        | None, None -> None)
      old newly

  (* ---- strata (Fig. 24, lfp°) -------------------------------------------- *)

  let relation_saturated ~(old_rel : relation) (new_rel : relation) : bool =
    Tuple.Map.for_all
      (fun u t_new ->
        match Tuple.Map.find_opt u old_rel with
        | Some t_old -> P.saturated ~old:t_old t_new
        | None -> false)
      new_rel

  let eval_stratum config (db : db) (s : Ram.stratum) : db =
    let heads = List.map (fun (r : Ram.rule) -> r.head) s.rules in
    let step (db : db) : db =
      List.fold_left
        (fun acc (r : Ram.rule) ->
          (* Each rule reads the database as of the start of the iteration
             (db), not the partially updated one; heads are distinct within a
             stratum so updates never collide. *)
          SMap.add r.head (eval_rule config db r) acc)
        db s.rules
    in
    if not s.Ram.recursive then begin
      bump_stats config;
      step db
    end
    else if not config.semi_naive then begin
      (* Naive lfp° exactly as Fig. 24: re-evaluate all rules until the
         database saturates.  Kept as the reference implementation. *)
      let rec iterate db iters =
        if iters > config.max_iterations then
          raise
            (Runtime_error
               "fixpoint iteration limit exceeded (program may not terminate under this provenance)");
        bump_stats config;
        let db' = step db in
        let saturated =
          List.for_all
            (fun h -> relation_saturated ~old_rel:(relation_of db h) (relation_of db' h))
            heads
        in
        if saturated then db' else iterate db' (iters + 1)
      in
      iterate db 1
    end
    else begin
      (* Semi-naive: after a full first round, only derivations touching a
         changed ("delta") tuple are re-evaluated. *)
      let changed ~(old_rel : relation) (new_rel : relation) : relation =
        Tuple.Map.filter
          (fun u t_new ->
            match Tuple.Map.find_opt u old_rel with
            | Some t_old -> not (P.saturated ~old:t_old t_new)
            | None -> true)
          new_rel
      in
      bump_stats config;
      let db1 = step db in
      let deltas =
        List.map (fun h -> (h, changed ~old_rel:(relation_of db h) (relation_of db1 h))) heads
      in
      let delta_bodies =
        List.map (fun (r : Ram.rule) -> (r.head, delta_variants heads r.body)) s.rules
      in
      let rec loop db deltas iters =
        if List.for_all (fun (_, d) -> Tuple.Map.is_empty d) deltas then db
        else if iters > config.max_iterations then
          raise
            (Runtime_error
               "fixpoint iteration limit exceeded (program may not terminate under this provenance)")
        else begin
          bump_stats config;
          let db_with_deltas =
            List.fold_left (fun acc (h, d) -> SMap.add (delta_name h) d acc) db deltas
          in
          let updates =
            List.map
              (fun (head, bodies) ->
                let newly =
                  normalize
                    (List.concat_map (eval_expr config db_with_deltas) bodies)
                in
                let old = relation_of db head in
                let merged =
                  Tuple.Map.merge
                    (fun _u t_old t_new ->
                      match (t_old, t_new) with
                      | Some t, None -> Some t
                      | None, Some t -> Some t
                      | Some t1, Some t2 -> Some (P.add t1 t2)
                      | None, None -> None)
                    old newly
                in
                (head, merged))
              delta_bodies
          in
          let deltas' =
            List.map
              (fun (h, merged) -> (h, changed ~old_rel:(relation_of db h) merged))
              updates
          in
          let db' = List.fold_left (fun acc (h, rel) -> SMap.add h rel acc) db updates in
          loop db' deltas' (iters + 1)
        end
      in
      loop db1 deltas 2
    end

  (* ---- programs ----------------------------------------------------------- *)

  let eval_program config (db : db) (p : Ram.program) : db =
    List.fold_left (eval_stratum config) db p.strata

  (** Recovery phase: apply ρ to the tags of an output relation. *)
  let recover (db : db) pred : (Tuple.t * Provenance.Output.t) list =
    Tuple.Map.bindings (relation_of db pred)
    |> List.map (fun (u, t) -> (u, P.recover t))
end
