(** Aggregation under tagged semantics (paper Sec. 4.3, "Aggregation").

    Semantically, aggregating n tagged tuples considers all 2ⁿ worlds: each
    world turns a subset of tuples on, its tag is the conjunction of on-tags
    and negated off-tags, and the aggregator's discrete function is applied
    to the on-set; a result's tag is the ⊕ of its worlds' tags.  Direct
    enumeration is exponential, so we implement the standard per-aggregator
    polynomial schemes, expressed generically over any provenance:

    - count: dynamic programming over (item, count-so-far) — O(n²) ⊕/⊗ ops —
      equivalent to the world sum for any commutative semiring.
    - sum/prod: the same DP keyed by accumulated value.
    - min/max/argmin/argmax: outcome u is tagged t_u ⊗ ∏_{v ≻ u} ⊖t_v
      (Scallop's specialization; exact in absorptive semirings).
    - exists: true ↦ ⊕ᵢ tᵢ, false ↦ ∏ᵢ ⊖tᵢ. (forall is desugared by the
      front-end into a value-negated exists, which is world-exact.)

    [World_exact] implements the literal 2ⁿ enumeration for cross-checking
    the specializations on small inputs (used by the test suite), and
    [mmp_count] is the O(n log n) counting algorithm of Appendix Alg. 1. *)

exception Unsupported of string

module Make (P : Provenance.S) = struct
  let neg t =
    match P.negate t with
    | Some t' -> t'
    | None -> raise (Unsupported (P.name ^ " does not support negation/aggregation"))

  (* --- count ------------------------------------------------------------ *)

  let count (items : (Tuple.t * P.t) list) : (Tuple.t * P.t) list =
    let n = List.length items in
    let dp = Array.make (n + 1) P.zero in
    dp.(0) <- P.one;
    List.iteri
      (fun i (_, t) ->
        let nt = neg t in
        (* process item i: counts up to i+1 are reachable *)
        for j = i + 1 downto 0 do
          let keep = P.mult dp.(j) nt in
          let take = if j > 0 then P.mult dp.(j - 1) t else P.zero in
          dp.(j) <- P.add keep take
        done)
      items;
    List.filter_map
      (fun j ->
        let t = dp.(j) in
        if P.discard t then None else Some ([| Value.int Value.USize j |], t))
      (Scallop_utils.Listx.range 0 (n + 1))

  (* --- sum / prod --------------------------------------------------------- *)

  let fold_values op ~init (items : (Tuple.t * P.t) list) : (Tuple.t * P.t) list =
    (* DP over accumulated value; tuples must be unary numeric. *)
    let module VM = Map.Make (struct
      type t = Value.t

      let compare = Value.compare
    end) in
    let value_of (tu : Tuple.t) =
      if Tuple.arity tu <> 1 then
        raise (Unsupported "sum/prod aggregate over non-unary binding tuple")
      else Tuple.get tu 0
    in
    let init_value =
      match items with
      | [] -> None
      | (tu, _) :: _ -> (
          let ty = Value.type_of (value_of tu) in
          match init ty with Some v -> Some v | None -> None)
    in
    match init_value with
    | None ->
        (* Empty input: the neutral value with tag 1 requires knowing the
           type; typed programs reach here only through Domain groups, where
           the compiler supplies i32 as a reasonable default. *)
        [ ([| Value.int Value.I32 0 |], P.one) ]
    | Some init_v ->
        let states = ref (VM.singleton init_v P.one) in
        List.iter
          (fun (tu, t) ->
            let v = value_of tu in
            let nt = neg t in
            let next = ref VM.empty in
            let add_state value tag =
              if not (P.discard tag) then
                next :=
                  VM.update value
                    (fun cur ->
                      Some (match cur with None -> tag | Some c -> P.add c tag))
                    !next
            in
            VM.iter
              (fun acc tag ->
                add_state acc (P.mult tag nt);
                match op acc v with
                | Some acc' -> add_state acc' (P.mult tag t)
                | None -> ())
              !states;
            states := !next)
          items;
        VM.fold (fun v tag acc -> ([| v |], tag) :: acc) !states [] |> List.rev

  let sum items =
    fold_values (Foreign.eval_binop Foreign.Add)
      ~init:(fun ty ->
        if Value.is_integer_ty ty then Some (Value.int ty 0)
        else if Value.is_float_ty ty then Some (Value.float ty 0.0)
        else None)
      items

  let prod items =
    fold_values (Foreign.eval_binop Foreign.Mul)
      ~init:(fun ty ->
        if Value.is_integer_ty ty then Some (Value.int ty 1)
        else if Value.is_float_ty ty then Some (Value.float ty 1.0)
        else None)
      items

  (* --- min / max / argmin / argmax ---------------------------------------- *)

  (** [extremum ~largest ~arg_len items]: items are (arg ++ value) tuples;
      outcome tuples keep the arg prefix when [arg_len > 0] (argmin/argmax)
      or the value part (min/max).  Ties share the extremum. *)
  let extremum ~largest ~arg_len (items : (Tuple.t * P.t) list) : (Tuple.t * P.t) list =
    let value_part tu = Array.sub tu arg_len (Array.length tu - arg_len) in
    let cmp (a, _) (b, _) =
      let c = Tuple.compare (value_part a) (value_part b) in
      if largest then -c else c
    in
    let sorted = List.stable_sort cmp items in
    (* Walking from best to worst: outcome tag = own tag ⊗ ∏(⊖ strictly-better tags). *)
    let results = ref [] in
    let better_acc = ref P.one in
    let rec go = function
      | [] -> ()
      | (tu, t) :: rest ->
          (* collect the maximal block of equal values *)
          let v = value_part tu in
          let block, rest' =
            let rec split acc = function
              | (tu', t') :: r when Tuple.compare (value_part tu') v = 0 ->
                  split ((tu', t') :: acc) r
              | r -> (List.rev acc, r)
            in
            split [ (tu, t) ] rest
          in
          List.iter
            (fun (tu', t') ->
              let out = if arg_len > 0 then Array.sub tu' 0 arg_len else v in
              let tag = P.mult t' !better_acc in
              if not (P.discard tag) then results := (out, tag) :: !results)
            block;
          List.iter (fun (_, t') -> better_acc := P.mult !better_acc (neg t')) block;
          go rest'
    in
    go sorted;
    List.rev !results

  (* --- exists -------------------------------------------------------------- *)

  let exists (items : (Tuple.t * P.t) list) : (Tuple.t * P.t) list =
    let t_true = List.fold_left (fun acc (_, t) -> P.add acc t) P.zero items in
    let t_false = List.fold_left (fun acc (_, t) -> P.mult acc (neg t)) P.one items in
    List.filter
      (fun (_, t) -> not (P.discard t))
      [ ([| Value.bool true |], t_true); ([| Value.bool false |], t_false) ]

  (* --- dispatch ------------------------------------------------------------ *)

  let run (agg : Ram.aggregator) ~arg_len (items : (Tuple.t * P.t) list) :
      (Tuple.t * P.t) list =
    match agg with
    | Ram.Count -> count items
    | Ram.Sum -> sum items
    | Ram.Prod -> prod items
    | Ram.Min -> extremum ~largest:false ~arg_len:0 items
    | Ram.Max -> extremum ~largest:true ~arg_len:0 items
    | Ram.Argmin -> extremum ~largest:false ~arg_len items
    | Ram.Argmax -> extremum ~largest:true ~arg_len items
    | Ram.Exists -> exists items

  (* --- exact world enumeration (reference implementation) ------------------ *)

  (** The literal semantics of Fig. 7 (Aggregate): enumerate all 2ⁿ worlds.
      Only usable for small n; the test suite checks [run] against this. *)
  let world_exact (agg : Ram.aggregator) ~arg_len (items : (Tuple.t * P.t) list) :
      (Tuple.t * P.t) list =
    let n = List.length items in
    if n > 16 then raise (Unsupported "world_exact: too many tuples");
    let arr = Array.of_list items in
    let discrete (on : (Tuple.t * P.t) list) : Tuple.t list =
      let tuples = List.map fst on in
      match agg with
      | Ram.Count -> [ [| Value.int Value.USize (List.length tuples) |] ]
      | Ram.Sum -> (
          match tuples with
          | [] -> [ [| Value.int Value.I32 0 |] ]
          | (first :: _) as ts ->
              let ty = Value.type_of (Tuple.get first 0) in
              let zero =
                if Value.is_float_ty ty then Value.float ty 0.0 else Value.int ty 0
              in
              let total =
                List.fold_left
                  (fun acc t ->
                    match Foreign.eval_binop Foreign.Add acc (Tuple.get t 0) with
                    | Some v -> v
                    | None -> acc)
                  zero ts
              in
              [ [| total |] ])
      | Ram.Prod -> (
          match tuples with
          | [] -> [ [| Value.int Value.I32 1 |] ]
          | (first :: _) as ts ->
              let ty = Value.type_of (Tuple.get first 0) in
              let one_v =
                if Value.is_float_ty ty then Value.float ty 1.0 else Value.int ty 1
              in
              let total =
                List.fold_left
                  (fun acc t ->
                    match Foreign.eval_binop Foreign.Mul acc (Tuple.get t 0) with
                    | Some v -> v
                    | None -> acc)
                  one_v ts
              in
              [ [| total |] ])
      | Ram.Min | Ram.Max | Ram.Argmin | Ram.Argmax -> (
          let value_part tu = Array.sub tu arg_len (Array.length tu - arg_len) in
          let largest = agg = Ram.Max || agg = Ram.Argmax in
          let keep_arg = agg = Ram.Argmin || agg = Ram.Argmax in
          match tuples with
          | [] -> []
          | ts ->
              let best =
                List.fold_left
                  (fun acc t ->
                    let c = Tuple.compare (value_part t) (value_part acc) in
                    if (largest && c > 0) || ((not largest) && c < 0) then t else acc)
                  (List.hd ts) ts
              in
              let best_v = value_part best in
              ts
              |> List.filter (fun t -> Tuple.compare (value_part t) best_v = 0)
              |> List.map (fun t -> if keep_arg then Array.sub t 0 arg_len else best_v))
      | Ram.Exists -> [ [| Value.bool (tuples <> []) |] ]
    in
    let acc : (Tuple.t, P.t) Hashtbl.t = Hashtbl.create 16 in
    for mask = 0 to (1 lsl n) - 1 do
      let world_tag = ref P.one in
      let on = ref [] in
      for i = n - 1 downto 0 do
        let tu, t = arr.(i) in
        if mask land (1 lsl i) <> 0 then begin
          world_tag := P.mult !world_tag t;
          on := (tu, t) :: !on
        end
        else world_tag := P.mult !world_tag (neg t)
      done;
      if not (P.discard !world_tag) then
        List.iter
          (fun out ->
            match Hashtbl.find_opt acc out with
            | Some t -> Hashtbl.replace acc out (P.add t !world_tag)
            | None -> Hashtbl.replace acc out !world_tag)
          (discrete !on)
    done;
    Hashtbl.fold (fun tu t l -> (tu, t) :: l) acc []
    |> List.filter (fun (_, t) -> not (P.discard t))
    |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)
end

(** Appendix Algorithm 1: O(n log n) counting over max-min-prob tags.
    Returns the tag (probability) of each count outcome 0..n. *)
let mmp_count (tags : float list) : float array =
  let n = List.length tags in
  let t_pos = Array.of_list (List.sort compare tags) in
  (* count = k: the best world turns on the k tuples of largest tag (turning
     on a larger tag in place of a smaller one can only raise the world's
     min); its tag is min(smallest on-tag, smallest off-complement). *)
  Array.init (n + 1) (fun k ->
      let pos_min = if k = 0 then 1.0 else t_pos.(n - k) in
      let neg_min = if k = n then 1.0 else 1.0 -. t_pos.(n - k - 1) in
      Float.min pos_min neg_min)
