(** Weighted model counting over DNF proof formulas (paper Sec. 4.5.3).

    The recover function ρ of the top-k-proofs provenances converts a DNF
    formula into an (optionally differentiable) probability.  Two engines:

    - For formulas over {e independent} variables we compile the DNF into an
      ROBDD ({!Scallop_bdd.Bdd}) and run linear-time algebraic model
      counting.  This is exact and mirrors the paper's SDD-based WMC.

    - For formulas mentioning {e mutually exclusive} variables (Appendix
      B.4.4) we use inclusion–exclusion over the proofs with categorical-
      aware conjunction probabilities: within a group, two distinct positive
      literals are contradictory, a positive literal subsumes the group's
      negative literals, and a set of purely negative literals has
      probability max(0, 1 − Σ rᵢ).  Exact up to [max_ie_proofs] proofs;
      beyond that the formula is truncated to its most probable proofs
      (top-k provenances never exceed k ≤ max_ie_proofs in practice).

    Both engines are polymorphic in the weight semiring so the same code
    yields plain floats and dual numbers. *)

type 'a ops = {
  zero : 'a;
  one : 'a;
  add : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  neg : 'a -> 'a; (* additive inverse *)
  complement : 'a -> 'a; (* 1 - x *)
  of_float : float -> 'a;
  max0 : 'a -> 'a; (* clamp below at 0 *)
}

let float_ops : float ops =
  {
    zero = 0.0;
    one = 1.0;
    add = ( +. );
    mul = ( *. );
    neg = (fun x -> -.x);
    complement = (fun x -> 1.0 -. x);
    of_float = Fun.id;
    max0 = Float.max 0.0;
  }

let dual_ops : Dual.t ops =
  {
    zero = Dual.zero;
    one = Dual.one;
    add = Dual.add;
    mul = Dual.mul;
    neg = Dual.neg;
    complement = Dual.complement;
    of_float = Dual.const;
    max0 = (fun d -> if Dual.value d < 0.0 then Dual.const 0.0 else d);
  }

let max_ie_proofs = 16

(* ---- BDD engine (independent variables) -------------------------------- *)

let wmc_bdd (type a) (ops : a ops) ~(weight_of : int -> a) (formula : Formula.t) : a =
  let m = Scallop_bdd.Bdd.manager () in
  let dnf =
    List.map (fun proof -> Formula.proof_literals proof) formula
  in
  let root = Scallop_bdd.Bdd.of_dnf m dnf in
  let vars = Formula.variables formula in
  Scallop_bdd.Bdd.wmc ~zero:ops.zero ~one:ops.one ~add:ops.add ~mul:ops.mul
    ~w_pos:weight_of
    ~w_neg:(fun v -> ops.complement (weight_of v))
    ~vars root

(* ---- Inclusion–exclusion engine (mutual exclusion aware) ---------------- *)

module IMap = Map.Make (Int)

(* Probability of a single conjunction of literals under categorical group
   semantics.  Proofs coming out of [Formula.merge_proofs] are already free
   of within-proof conflicts, but merged subsets during IE may conflict, in
   which case this returns zero. *)
let conj_weight (type a) (ops : a ops) ~(weight_of : int -> a) ~(me_group : int -> int option)
    (proof : Formula.proof) : a =
  (* Partition literals by group. *)
  let grouped : (int * bool) list IMap.t ref = ref IMap.empty in
  let free = ref [] in
  List.iter
    (fun (v, s) ->
      match me_group v with
      | None -> free := (v, s) :: !free
      | Some g ->
          grouped :=
            IMap.update g (fun l -> Some ((v, s) :: Option.value l ~default:[])) !grouped)
    (Formula.proof_literals proof);
  let acc = ref ops.one in
  List.iter
    (fun (v, s) ->
      let w = weight_of v in
      acc := ops.mul !acc (if s then w else ops.complement w))
    !free;
  IMap.iter
    (fun _g lits ->
      let pos = List.filter (fun (_, s) -> s) lits in
      let negs = List.filter (fun (_, s) -> not s) lits in
      match pos with
      | (v, _) :: rest ->
          if rest <> [] then acc := ops.zero (* two positives: contradiction *)
          else if List.exists (fun (v', _) -> v' = v) negs then acc := ops.zero
          else acc := ops.mul !acc (weight_of v)
          (* negatives of other members are implied by exclusivity *)
      | [] ->
          (* P(none of the negated members chosen) = 1 - Σ rᵢ, clamped. *)
          let s =
            List.fold_left (fun s (v, _) -> ops.add s (weight_of v)) ops.zero negs
          in
          acc := ops.mul !acc (ops.max0 (ops.complement s)))
    !grouped;
  !acc

let wmc_ie (type a) (ops : a ops) ~(weight_of : int -> a) ~(me_group : int -> int option)
    ~(env : Formula.env) (formula : Formula.t) : a =
  let proofs =
    if List.length formula <= max_ie_proofs then formula
    else Formula.top_k env max_ie_proofs formula
  in
  let proofs = Array.of_list proofs in
  let n = Array.length proofs in
  let total = ref ops.zero in
  (* Iterate over non-empty subsets via bitmasks; n ≤ max_ie_proofs. *)
  for mask = 1 to (1 lsl n) - 1 do
    let merged = ref (Some Formula.true_proof) in
    let size = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        incr size;
        match !merged with
        | None -> ()
        | Some p -> merged := Formula.merge_proofs env p proofs.(i)
      end
    done;
    (match !merged with
    | None -> ()
    | Some p ->
        let w = conj_weight ops ~weight_of ~me_group p in
        let w = if !size mod 2 = 1 then w else ops.neg w in
        total := ops.add !total w)
  done;
  !total

(* ---- public entry points ------------------------------------------------ *)

let has_me_vars ~me_group formula =
  List.exists (fun v -> me_group v <> None) (Formula.variables formula)

(** WMC in an arbitrary weight semiring. *)
let run (type a) (ops : a ops) ~(weight_of : int -> a) ~(env : Formula.env)
    (formula : Formula.t) : a =
  if Formula.is_false formula then ops.zero
  else if Formula.is_true formula then ops.one
  else if has_me_vars ~me_group:env.Formula.me_group formula then
    wmc_ie ops ~weight_of ~me_group:env.Formula.me_group ~env formula
  else wmc_bdd ops ~weight_of formula

(** Plain probability. *)
let prob ~(env : Formula.env) formula =
  run float_ops ~weight_of:env.Formula.prob ~env formula

(** Probability with gradient: each variable [v] is a dual [var v (prob v)]. *)
let dual ~(env : Formula.env) formula =
  run dual_ops ~weight_of:(fun v -> Dual.var v (env.Formula.prob v)) ~env formula
