(** Back-IR optimizations over SclRam query plans (paper Sec. 5: "In
    back-IR, we generate query plans and apply optimizations").

    The rule compiler is deliberately simple and leaves obvious fat in the
    plans; this pass cleans it up without changing semantics:

    - constant folding inside value expressions (including failing constant
      expressions, which become unsatisfiable selections),
    - trivial selections: [σ_true] disappears, [σ_false] empties the plan,
    - projection fusion: [π_m2 (π_m1 e)] → [π_(m2 ∘ m1) e] — the compiler
      emits a projection per join, so chains are common,
    - selection fusion: [σ_c2 (σ_c1 e)] → [σ_(c1 && c2) e],
    - empty-plan propagation through every operator (∪, ×, ⋈, −, γ, …). *)

open Ram

(* ---- constant folding in value expressions -------------------------------- *)

let rec vexpr_is_const = function
  | Const _ -> true
  | Access _ -> false
  | Binop (_, a, b) -> vexpr_is_const a && vexpr_is_const b
  | Unop (_, a) -> vexpr_is_const a
  | Call (_, args) -> List.for_all vexpr_is_const args
  | If_then_else (c, a, b) -> vexpr_is_const c && vexpr_is_const a && vexpr_is_const b
  | Cast (_, a) -> vexpr_is_const a

(** Fold constants bottom-up.  A constant sub-expression that fails to
    evaluate (e.g. division by zero) is left intact so the failure keeps its
    per-tuple drop semantics. *)
let rec fold_vexpr (e : vexpr) : vexpr =
  let try_eval e' = match eval_vexpr Tuple.unit e' with Some v -> Const v | None -> e' in
  match e with
  | Access _ | Const _ -> e
  | Binop (op, a, b) ->
      let a = fold_vexpr a and b = fold_vexpr b in
      let e' = Binop (op, a, b) in
      if vexpr_is_const a && vexpr_is_const b then try_eval e' else e'
  | Unop (op, a) ->
      let a = fold_vexpr a in
      let e' = Unop (op, a) in
      if vexpr_is_const a then try_eval e' else e'
  | Call (f, args) ->
      let args = List.map fold_vexpr args in
      let e' = Call (f, args) in
      if List.for_all vexpr_is_const args then try_eval e' else e'
  | If_then_else (c, a, b) -> (
      let c = fold_vexpr c and a = fold_vexpr a and b = fold_vexpr b in
      match c with
      | Const (Value.B true) -> a
      | Const (Value.B false) -> b
      | _ -> If_then_else (c, a, b))
  | Cast (ty, a) ->
      let a = fold_vexpr a in
      let e' = Cast (ty, a) in
      if vexpr_is_const a then try_eval e' else e'

(* ---- plan rewriting --------------------------------------------------------- *)

(* Substitute [Access i] by [m.(i)] — the composition step of projection
   fusion. *)
let rec subst_accesses (m : vexpr array) (e : vexpr) : vexpr =
  match e with
  | Access i -> if i < Array.length m then m.(i) else e
  | Const _ -> e
  | Binop (op, a, b) -> Binop (op, subst_accesses m a, subst_accesses m b)
  | Unop (op, a) -> Unop (op, subst_accesses m a)
  | Call (f, args) -> Call (f, List.map (subst_accesses m) args)
  | If_then_else (c, a, b) ->
      If_then_else (subst_accesses m c, subst_accesses m a, subst_accesses m b)
  | Cast (ty, a) -> Cast (ty, subst_accesses m a)

(* Projection mappings may only be fused through if the inner mapping is
   total (pure accesses/constants cannot fail; foreign calls can fail and
   must stay evaluated exactly once per tuple). *)
let rec infallible = function
  | Access _ | Const _ -> true
  | Binop ((Foreign.Eq | Foreign.Neq | Foreign.Lt | Foreign.Leq | Foreign.Gt | Foreign.Geq), a, b)
    ->
      infallible a && infallible b
  | Binop _ | Call _ -> false
  | Unop (Foreign.Not, a) -> infallible a
  | Unop (Foreign.Neg, _) -> false
  | If_then_else (c, a, b) -> infallible c && infallible a && infallible b
  | Cast _ -> false

let rec optimize_expr (e : expr) : expr =
  match e with
  | Empty | Singleton | Pred _ -> e
  | Select (c, sub) -> (
      let c = fold_vexpr c in
      let sub = optimize_expr sub in
      match (c, sub) with
      | Const (Value.B true), _ -> sub
      | Const (Value.B false), _ -> Empty
      | _, Empty -> Empty
      | _, Select (c1, inner) -> Select (Binop (Foreign.Land, c1, c), inner)
      | _ -> Select (c, sub))
  | Project (m, sub) -> (
      let m = List.map fold_vexpr m in
      let sub = optimize_expr sub in
      match sub with
      | Empty -> Empty
      | Project (m1, inner) when List.for_all infallible m1 ->
          let m1 = Array.of_list m1 in
          Project (List.map (subst_accesses m1) m, inner)
      | _ -> Project (m, sub))
  | Union (a, b) -> (
      match (optimize_expr a, optimize_expr b) with
      | Empty, x | x, Empty -> x
      | a, b -> Union (a, b))
  | Product (a, b) -> (
      match (optimize_expr a, optimize_expr b) with
      | Empty, _ | _, Empty -> Empty
      | a, b -> Product (a, b))
  | Intersect (a, b) -> (
      match (optimize_expr a, optimize_expr b) with
      | Empty, _ | _, Empty -> Empty
      | a, b -> Intersect (a, b))
  | Diff (a, b) -> (
      match (optimize_expr a, optimize_expr b) with
      | Empty, _ -> Empty
      | a, Empty -> a
      | a, b -> Diff (a, b))
  | Join { lkeys; rkeys; left; right } -> (
      match (optimize_expr left, optimize_expr right) with
      | Empty, _ | _, Empty -> Empty
      | left, right -> Join { lkeys; rkeys; left; right })
  | Antijoin { lkeys; rkeys; left; right } -> (
      match (optimize_expr left, optimize_expr right) with
      | Empty, _ -> Empty
      | left, Empty -> left
      | left, right -> Antijoin { lkeys; rkeys; left; right })
  | One_overwrite sub -> (
      match optimize_expr sub with Empty -> Empty | sub -> One_overwrite sub)
  | Zero_overwrite sub -> (
      match optimize_expr sub with Empty -> Empty | sub -> Zero_overwrite sub)
  | Aggregate { agg; key_len; arg_len; group; body } ->
      let group = match group with Domain d -> Domain (optimize_expr d) | g -> g in
      Aggregate { agg; key_len; arg_len; group; body = optimize_expr body }
  | Sample { sampler; key_len; group; body } ->
      let group = match group with Domain d -> Domain (optimize_expr d) | g -> g in
      Sample { sampler; key_len; group; body = optimize_expr body }
  | Foreign_join { name; args; left } -> (
      match optimize_expr left with
      | Empty -> Empty
      | left -> Foreign_join { name; args; left })

let optimize_rule (r : rule) : rule = { r with body = optimize_expr r.body }

let optimize_stratum (s : stratum) : stratum = { s with rules = List.map optimize_rule s.rules }

let optimize_program (p : program) : program = { p with strata = List.map optimize_stratum p.strata }
