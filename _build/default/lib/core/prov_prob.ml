(** Probabilistic (non-differentiable) provenances.

    These propagate probability-like tags without gradients; they are the
    "debug before integrating a neural network" modes of paper Sec. 3.3, and
    [Exact] is the DeepProbLog-style exact-inference baseline used in the
    runtime comparison (Table 4): full proof sets, no truncation, exact WMC. *)

open Provenance

(** Proof-formula provenances additionally expose their probability
    environment so differentiable wrappers can re-run WMC with duals. *)
module type PROOFS_S = sig
  include S with type t = Formula.t

  val env : Formula.env
end

(** add-mult-prob: ⊕ = clamped +, ⊗ = ·, ⊖ = 1−x.  Saturation always true
    (paper Sec. 4.5.2), so recursive rules stop after one extra round. *)
module Add_mult_prob : S with type t = float = struct
  type t = float

  let name = "addmultprob"
  let zero = 0.0
  let one = 1.0
  let add a b = Float.min 1.0 (a +. b)
  let mult a b = a *. b
  let negate t = Some (1.0 -. t)
  let saturated ~old:_ _ = true
  let discard t = t <= 0.0
  let weight t = t
  let tag_of_input (i : Input.t) = ((match i.Input.prob with None -> 1.0 | Some p -> p), None)
  let recover t = Output.O_prob t
  let pp fmt = Fmt.pf fmt "%.4f"
end

(** top-k-proofs with probability recovery: tags are DNF formulas capped at
    [k] proofs; ρ runs exact WMC over the kept proofs. *)
module Top_k_proofs (K : sig
  val k : int
end)
() : PROOFS_S = struct
  module P = Prov_discrete.Proofs ()

  let env = P.env

  type t = Formula.t

  let name = Fmt.str "topkproofs-%d" K.k
  let zero = Formula.ff
  let one = Formula.tt
  let add a b = Formula.disj_k P.env K.k a b
  let mult a b = Formula.conj_k P.env K.k a b
  let negate t = Some (Formula.neg_k P.env K.k t)
  let saturated ~old t = Formula.equal old t
  let discard t = Formula.is_false t
  let weight t = Formula.prob_upper_bound P.env t
  let tag_of_input = P.tag_of_input
  let recover t = Output.O_prob (Wmc.prob ~env:P.env t)
  let pp = Formula.pp
end

(** sample-k-proofs: like top-k-proofs, but instead of keeping the k {e most
    probable} proofs deterministically, keeps k proofs sampled with
    probability proportional to their proof probability.  Trades reasoning
    granularity for exploration (useful in RL-style setups). *)
module Sample_k_proofs (K : sig
  val k : int
  val seed : int
end)
() : PROOFS_S = struct
  module P = Prov_discrete.Proofs ()

  let env = P.env
  let rng = Scallop_utils.Rng.create K.seed

  type t = Formula.t

  let name = Fmt.str "samplekproofs-%d" K.k

  let sample_k proofs =
    let proofs = Formula.dedup proofs in
    if List.length proofs <= K.k then proofs
    else begin
      let arr = Array.of_list proofs in
      let chosen = ref [] in
      let remaining = ref (Array.to_list (Array.mapi (fun i p -> (i, p)) arr)) in
      for _ = 1 to K.k do
        let weights =
          Array.of_list (List.map (fun (_, p) -> Formula.proof_prob P.env p) !remaining)
        in
        let j = Scallop_utils.Rng.categorical rng weights in
        let (_, p) = List.nth !remaining j in
        chosen := p :: !chosen;
        remaining := List.filteri (fun i _ -> i <> j) !remaining
      done;
      List.rev !chosen
    end

  let zero = Formula.ff
  let one = Formula.tt
  let add a b = sample_k (a @ b)

  let mult a b =
    let merged =
      List.concat_map
        (fun pa -> List.filter_map (fun pb -> Formula.merge_proofs P.env pa pb) b)
        a
    in
    sample_k merged

  let negate t = Some (sample_k (Formula.neg_k P.env (4 * K.k) t))
  let saturated ~old t = Formula.equal old t
  let discard t = Formula.is_false t
  let weight t = Formula.prob_upper_bound P.env t
  let tag_of_input = P.tag_of_input
  let recover t = Output.O_prob (Wmc.prob ~env:P.env t)
  let pp = Formula.pp
end

(** Exact probabilistic inference: untruncated proof sets with exact WMC —
    the semantics of DeepProbLog/ProbLog, i.e. top-k-proofs with k ≥ 2ⁿ
    (paper Sec. 6.4).  Prohibitively slow on larger problems by design;
    serves as the DPL baseline in Table 4. *)
module Exact () : PROOFS_S = struct
  module P = Prov_discrete.Proofs ()
  include (P : S with type t = Formula.t)

  let env = P.env
  let name = "exactprobproofs"
  let recover t = Output.O_prob (Wmc.prob ~env:P.env t)
end
