(** The provenance framework (paper Sec. 4.1, Fig. 4 and Fig. 21).

    A provenance is an algebraic structure (T, 0, 1, ⊕, ⊗, ⊖, ≐) together
    with the extended interface of Fig. 21 (early [discard] and sampling
    [weight]) and the external interface (I, O, τ, ρ) of Sec. 4.4.  The
    tagged semantics of SclRam is parameterized over this structure; discrete,
    probabilistic and differentiable reasoning are obtained by instantiating
    it differently.

    Provenance modules may be stateful (e.g. the differentiable ones allocate
    input-variable ids and record input probabilities for weighted model
    counting), so users obtain a {e fresh} instance per execution from
    {!Registry}. *)

(** External input tag space I: all built-in provenances accept an optional
    probability plus an optional mutual-exclusion group id.  [None]
    probability means the fact is unconditionally true (tag 1). *)
module Input = struct
  type t = { prob : float option; me_group : int option }

  let none = { prob = None; me_group = None }
  let prob ?me_group p = { prob = Some p; me_group }
end

(** External output tag space O: a sum over the output spaces of the built-in
    provenances.  Downstream code pattern-matches on the arm it expects. *)
module Output = struct
  type t =
    | O_unit
    | O_bool of bool
    | O_nat of int
    | O_prob of float
    | O_dual of Dual.t
    | O_proofs of Formula.t

  (** Probability view: every arm has a sensible probability reading, which
      is what most applications consume. *)
  let prob = function
    | O_unit -> 1.0
    | O_bool b -> if b then 1.0 else 0.0
    | O_nat n -> if n > 0 then 1.0 else 0.0
    | O_prob p -> p
    | O_dual d -> Dual.value d
    | O_proofs f -> if Formula.is_false f then 0.0 else 1.0

  (** Gradient view; empty for non-differentiable provenances. *)
  let gradient = function O_dual d -> Dual.deriv_list d | _ -> []

  let pp fmt = function
    | O_unit -> Fmt.string fmt "()"
    | O_bool b -> Fmt.bool fmt b
    | O_nat n -> Fmt.int fmt n
    | O_prob p -> Fmt.pf fmt "%.6f" p
    | O_dual d -> Dual.pp fmt d
    | O_proofs f -> Formula.pp fmt f
end

module type S = sig
  type t
  (** The internal tag space T. *)

  val name : string

  val zero : t
  (** 0: unconditionally false. *)

  val one : t
  (** 1: unconditionally true. *)

  val add : t -> t -> t
  (** ⊕, tag disjunction. *)

  val mult : t -> t -> t
  (** ⊗, tag conjunction. *)

  val negate : t -> t option
  (** ⊖, tag negation; [None] if the provenance does not support negation
      (programs using difference/aggregation will then be rejected). *)

  val saturated : old:t -> t -> bool
  (** ≐, the saturation check driving fixed-point termination. *)

  val discard : t -> bool
  (** Early removal: facts whose tag satisfies this are dropped during
      normalization (Fig. 24, Normalize). *)

  val weight : t -> float
  (** Sampling weight of a tag (Fig. 21). *)

  val tag_of_input : Input.t -> t * int option
  (** τ: convert an external input tag.  Returns the internal tag together
      with the input-variable id allocated for it (differentiable provenances
      allocate one per probabilistic fact; others return [None]). *)

  val recover : t -> Output.t
  (** ρ: convert an internal tag to the external output space. *)

  val pp : t Fmt.t
end

type t = (module S)

let name (module P : S) = P.name
