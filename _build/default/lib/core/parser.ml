(** Recursive-descent parser for the Scallop surface language (Fig. 20).

    The grammar is mostly LL(1); the two exceptions are handled with bounded
    lookahead / backtracking:
    - a parenthesized {e formula} vs. a parenthesized {e expression} at the
      start of a conjunct (we attempt the formula parse and fall back), and
    - reduce (aggregation) detection, which scans ahead for the
      [vars (:=|=) aggregator] shape before committing. *)

open Lexer

exception Parse_error of string * Ast.pos

type state = { toks : spanned array; mutable idx : int }

let peek st = st.toks.(st.idx).tok
let peek_at st k = if st.idx + k < Array.length st.toks then st.toks.(st.idx + k).tok else EOF
let pos st = st.toks.(st.idx).pos

let next st =
  let t = st.toks.(st.idx) in
  if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1;
  t.tok

let error st msg = raise (Parse_error (msg, pos st))

let expect st tok =
  if peek st = tok then ignore (next st)
  else error st (Fmt.str "expected %s but found %s" (token_name tok) (token_name (peek st)))

let expect_ident st =
  match peek st with
  | IDENT s ->
      ignore (next st);
      s
  | t -> error st (Fmt.str "expected identifier but found %s" (token_name t))

(* ---- expressions ----------------------------------------------------------- *)

let aggregator_names =
  [ "count"; "sum"; "prod"; "min"; "max"; "exists"; "forall"; "argmin"; "argmax" ]

let sampler_names = [ "top"; "categorical"; "uniform" ]

let rec parse_expr st : Ast.expr =
  match peek st with
  | IDENT "if" ->
      ignore (next st);
      let c = parse_expr st in
      (match peek st with
      | IDENT "then" -> ignore (next st)
      | _ -> error st "expected 'then'");
      let a = parse_expr st in
      (match peek st with
      | IDENT "else" -> ignore (next st)
      | _ -> error st "expected 'else'");
      let b = parse_expr st in
      Ast.E_if (c, a, b)
  | _ -> parse_or_expr st

and parse_or_expr st =
  let lhs = parse_and_expr st in
  if peek st = OROR then begin
    ignore (next st);
    let rhs = parse_or_expr st in
    Ast.E_binop (Foreign.Lor, lhs, rhs)
  end
  else lhs

and parse_and_expr st =
  let lhs = parse_cmp_expr st in
  if peek st = ANDAND then begin
    ignore (next st);
    let rhs = parse_and_expr st in
    Ast.E_binop (Foreign.Land, lhs, rhs)
  end
  else lhs

and parse_cmp_expr st =
  let lhs = parse_add_expr st in
  let op =
    match peek st with
    | EQEQ -> Some Foreign.Eq
    | NEQ -> Some Foreign.Neq
    | LT -> Some Foreign.Lt
    | LEQ -> Some Foreign.Leq
    | GT -> Some Foreign.Gt
    | GEQ -> Some Foreign.Geq
    | _ -> None
  in
  match op with
  | Some op ->
      ignore (next st);
      let rhs = parse_add_expr st in
      Ast.E_binop (op, lhs, rhs)
  | None -> lhs

and parse_add_expr st =
  let rec go lhs =
    match peek st with
    | PLUS ->
        ignore (next st);
        go (Ast.E_binop (Foreign.Add, lhs, parse_mul_expr st))
    | MINUS ->
        ignore (next st);
        go (Ast.E_binop (Foreign.Sub, lhs, parse_mul_expr st))
    | _ -> lhs
  in
  go (parse_mul_expr st)

and parse_mul_expr st =
  let rec go lhs =
    match peek st with
    | STAR ->
        ignore (next st);
        go (Ast.E_binop (Foreign.Mul, lhs, parse_unary_expr st))
    | SLASH ->
        ignore (next st);
        go (Ast.E_binop (Foreign.Div, lhs, parse_unary_expr st))
    | PERCENT ->
        ignore (next st);
        go (Ast.E_binop (Foreign.Mod, lhs, parse_unary_expr st))
    | _ -> lhs
  in
  go (parse_unary_expr st)

and parse_unary_expr st =
  match peek st with
  | BANG ->
      ignore (next st);
      Ast.E_unop (Foreign.Not, parse_unary_expr st)
  | MINUS ->
      ignore (next st);
      Ast.E_unop (Foreign.Neg, parse_unary_expr st)
  | _ -> parse_postfix_expr st

and parse_postfix_expr st =
  let e = parse_primary_expr st in
  let rec go e =
    match peek st with
    | IDENT "as" ->
        ignore (next st);
        let ty = expect_ident st in
        go (Ast.E_cast (e, ty))
    | _ -> e
  in
  go e

and parse_primary_expr st =
  match peek st with
  | INT n ->
      ignore (next st);
      Ast.E_const (Ast.C_int n)
  | FLOAT f ->
      ignore (next st);
      Ast.E_const (Ast.C_float f)
  | STRING s ->
      ignore (next st);
      Ast.E_const (Ast.C_str s)
  | CHARLIT c ->
      ignore (next st);
      Ast.E_const (Ast.C_char c)
  | IDENT "true" ->
      ignore (next st);
      Ast.E_const (Ast.C_bool true)
  | IDENT "false" ->
      ignore (next st);
      Ast.E_const (Ast.C_bool false)
  | UNDERSCORE ->
      ignore (next st);
      Ast.E_wildcard
  | IDENT s when not (Lexer.is_keyword s) ->
      ignore (next st);
      Ast.E_var s
  | DOLLAR_IDENT f ->
      ignore (next st);
      expect st LPAREN;
      let args = parse_expr_list st in
      expect st RPAREN;
      Ast.E_call (f, args)
  | LPAREN ->
      ignore (next st);
      let e = parse_expr st in
      expect st RPAREN;
      e
  | t -> error st (Fmt.str "expected expression but found %s" (token_name t))

and parse_expr_list st =
  if peek st = RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if peek st = COMMA then begin
        ignore (next st);
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []
  end

(* ---- formulas ---------------------------------------------------------------- *)

let parse_atom st : Ast.atom =
  let pred = expect_ident st in
  expect st LPAREN;
  let args = parse_expr_list st in
  expect st RPAREN;
  { Ast.pred; args }

(* Lookahead: does a reduce ([vars (:=|=) agg( ...] or [vars (:=|=) agg<...])
   start at the current position? *)
let looks_like_reduce st =
  let rec scan k expecting_ident =
    match peek_at st k with
    | IDENT s when expecting_ident && not (Lexer.is_keyword s) -> scan (k + 1) false
    | COMMA when not expecting_ident -> scan (k + 1) true
    | (COLONEQ | EQ) when not expecting_ident -> (
        match peek_at st (k + 1) with
        | IDENT op when List.mem op aggregator_names || List.mem op sampler_names -> (
            match peek_at st (k + 2) with LPAREN | LT -> true | _ -> false)
        | _ -> false)
    | _ -> false
  in
  scan 0 true

let rec parse_formula st : Ast.formula = parse_implies st

and parse_implies st =
  let lhs = parse_or_formula st in
  match peek st with
  | IDENT "implies" ->
      ignore (next st);
      let rhs = parse_implies st in
      Ast.F_implies (lhs, rhs)
  | _ -> lhs

and parse_or_formula st =
  let rec go lhs =
    match peek st with
    | IDENT "or" ->
        ignore (next st);
        go (Ast.F_or (lhs, parse_and_formula st))
    | _ -> lhs
  in
  go (parse_and_formula st)

and parse_and_formula st =
  let rec go lhs =
    match peek st with
    | IDENT "and" | COMMA ->
        ignore (next st);
        go (Ast.F_and (lhs, parse_unary_formula st))
    | _ -> lhs
  in
  go (parse_unary_formula st)

and parse_unary_formula st =
  match peek st with
  | IDENT "not" ->
      ignore (next st);
      Ast.F_not (parse_unary_formula st)
  | IDENT s when (not (Lexer.is_keyword s)) && peek_at st 1 = LPAREN && not (looks_like_reduce st)
    ->
      (* An identifier followed by '(' in formula position is an atom unless
         the whole thing scans as a reduce (e.g. [x = max(...)]). *)
      Ast.F_atom (parse_atom st)
  | IDENT s when (not (Lexer.is_keyword s)) && looks_like_reduce st -> parse_reduce st
  | LPAREN -> (
      (* Backtrack: parenthesized formula vs. parenthesized expression. *)
      let save = st.idx in
      match
        (try
           ignore (next st);
           let f = parse_formula st in
           expect st RPAREN;
           (* If an expression operator follows, this was really a grouped
              expression like [(a + b) > c]. *)
           (match peek st with
           | PLUS | MINUS | STAR | SLASH | PERCENT | EQEQ | NEQ | LT | LEQ | GT | GEQ
           | ANDAND | OROR ->
               None
           | IDENT "as" -> None
           | _ -> Some f)
         with Parse_error _ -> None)
      with
      | Some f -> f
      | None ->
          st.idx <- save;
          Ast.F_constraint (parse_expr st))
  | _ -> Ast.F_constraint (parse_expr st)

and parse_reduce st : Ast.formula =
  let rec parse_vars acc =
    let v = expect_ident st in
    if peek st = COMMA then begin
      ignore (next st);
      parse_vars (v :: acc)
    end
    else List.rev (v :: acc)
  in
  let result_vars = parse_vars [] in
  (match peek st with
  | COLONEQ | EQ -> ignore (next st)
  | _ -> error st "expected ':=' or '=' in aggregation");
  let op_name = expect_ident st in
  let op =
    if List.mem op_name sampler_names then begin
      expect st LT;
      let k = match next st with INT k -> k | _ -> error st "expected integer sample count" in
      expect st GT;
      Ast.R_sampler (op_name, k)
    end
    else if op_name = "argmin" || op_name = "argmax" then begin
      expect st LT;
      let rec vars acc =
        let v = expect_ident st in
        if peek st = COMMA then begin
          ignore (next st);
          vars (v :: acc)
        end
        else List.rev (v :: acc)
      in
      let args = vars [] in
      expect st GT;
      Ast.R_arg_extremum (op_name, args)
    end
    else if List.mem op_name aggregator_names then Ast.R_aggregate op_name
    else error st (Fmt.str "unknown aggregator %S" op_name)
  in
  expect st LPAREN;
  let rec parse_binding acc =
    let v = expect_ident st in
    if peek st = COMMA then begin
      ignore (next st);
      parse_binding (v :: acc)
    end
    else begin
      expect st COLON;
      List.rev (v :: acc)
    end
  in
  let binding_vars = parse_binding [] in
  let body = parse_formula st in
  let where =
    match peek st with
    | IDENT "where" ->
        ignore (next st);
        let gv = parse_binding [] in
        let f = parse_formula st in
        Some (gv, f)
    | _ -> None
  in
  expect st RPAREN;
  Ast.F_reduce { result_vars; op; binding_vars; body; where }

(* ---- items ---------------------------------------------------------------------- *)

let parse_tag st : float option =
  (* A numeric literal followed by '::' tags the fact/rule. *)
  match (peek st, peek_at st 1) with
  | FLOAT f, COLONCOLON ->
      ignore (next st);
      ignore (next st);
      Some f
  | INT n, COLONCOLON ->
      ignore (next st);
      ignore (next st);
      Some (float_of_int n)
  | _ -> None

let parse_fact_set_elements st : Ast.fact_tuple list list =
  (* Elements separated by ',' (independent) or ';' (mutually exclusive);
     maximal ';'-joined runs form segments. *)
  let parse_element () : Ast.fact_tuple =
    let ftag = parse_tag st in
    if peek st = LPAREN then begin
      ignore (next st);
      let args = parse_expr_list st in
      expect st RPAREN;
      { Ast.ftag; fargs = args }
    end
    else
      let e = parse_expr st in
      { Ast.ftag; fargs = [ e ] }
  in
  let segments = ref [] in
  let current = ref [] in
  let flush () =
    if !current <> [] then begin
      segments := List.rev !current :: !segments;
      current := []
    end
  in
  let rec go () =
    if peek st = RBRACE then ()
    else begin
      current := parse_element () :: !current;
      match peek st with
      | SEMI ->
          ignore (next st);
          go ()
      | COMMA ->
          ignore (next st);
          flush ();
          go ()
      | RBRACE -> ()
      | t -> error st (Fmt.str "expected ',' ';' or '}' but found %s" (token_name t))
    end
  in
  go ();
  flush ();
  List.rev !segments

let parse_type_item st : Ast.item list =
  (* After the 'type' keyword: alias, subtype, or relation declarations. *)
  let name = expect_ident st in
  match peek st with
  | EQ ->
      ignore (next st);
      let target = expect_ident st in
      [ Ast.I_type_alias { name; target } ]
  | SUBTYPE ->
      ignore (next st);
      let super = expect_ident st in
      [ Ast.I_subtype { name; super } ]
  | LPAREN ->
      let parse_rel_decl name =
        expect st LPAREN;
        let parse_field () =
          (* [name : type] or just [type] *)
          match (peek st, peek_at st 1) with
          | IDENT n, COLON ->
              ignore (next st);
              ignore (next st);
              let ty = expect_ident st in
              (Some n, ty)
          | IDENT ty, _ ->
              ignore (next st);
              (None, ty)
          | t, _ -> error st (Fmt.str "expected field but found %s" (token_name t))
        in
        let rec fields acc =
          if peek st = RPAREN then List.rev acc
          else begin
            let f = parse_field () in
            if peek st = COMMA then begin
              ignore (next st);
              fields (f :: acc)
            end
            else List.rev (f :: acc)
          end
        in
        let fs = fields [] in
        expect st RPAREN;
        Ast.I_rel_type { name; fields = fs }
      in
      let first = parse_rel_decl name in
      let rec more acc =
        if peek st = COMMA && (match peek_at st 1 with IDENT _ -> peek_at st 2 = LPAREN | _ -> false)
        then begin
          ignore (next st);
          let n = expect_ident st in
          more (parse_rel_decl n :: acc)
        end
        else List.rev acc
      in
      first :: more []
  | t -> error st (Fmt.str "expected '=', '<:' or '(' after type name but found %s" (token_name t))

let parse_const_item st : Ast.item =
  let rec go acc =
    let name = expect_ident st in
    let ty =
      if peek st = COLON then begin
        ignore (next st);
        Some (expect_ident st)
      end
      else None
    in
    expect st EQ;
    let e = parse_expr st in
    let acc = (name, ty, e) :: acc in
    if peek st = COMMA then begin
      ignore (next st);
      go acc
    end
    else List.rev acc
  in
  Ast.I_const (go [])

let parse_rel_item st : Ast.item =
  let tag = parse_tag st in
  (* [rel name = { ... }] fact set (only without a tag on the name). *)
  match (tag, peek st, peek_at st 1, peek_at st 2) with
  | None, IDENT pred, EQ, LBRACE ->
      ignore (next st);
      ignore (next st);
      ignore (next st);
      let segments = parse_fact_set_elements st in
      expect st RBRACE;
      Ast.I_fact_set { pred; segments }
  | _ -> (
      let head = parse_atom st in
      match peek st with
      | COLONDASH | EQ ->
          ignore (next st);
          let body = parse_formula st in
          Ast.I_rule { tag; head; body }
      | _ -> Ast.I_fact { tag; atom = head })

let parse_attribute st : Ast.attribute =
  match next st with
  | AT_IDENT attr_name ->
      let attr_args =
        if peek st = LPAREN then begin
          ignore (next st);
          let rec go acc =
            if peek st = RPAREN then List.rev acc
            else begin
              let c =
                match next st with
                | INT n -> Ast.C_int n
                | FLOAT f -> Ast.C_float f
                | STRING s -> Ast.C_str s
                | IDENT "true" -> Ast.C_bool true
                | IDENT "false" -> Ast.C_bool false
                | t -> error st (Fmt.str "expected constant attribute argument, found %s" (token_name t))
              in
              if peek st = COMMA then begin
                ignore (next st);
                go (c :: acc)
              end
              else List.rev (c :: acc)
            end
          in
          let args = go [] in
          expect st RPAREN;
          args
        end
        else []
      in
      { Ast.attr_name; attr_args }
  | t -> error st (Fmt.str "expected attribute, found %s" (token_name t))

let parse_decl st : Ast.decl list =
  let p = pos st in
  let rec attrs acc =
    match peek st with AT_IDENT _ -> attrs (parse_attribute st :: acc) | _ -> List.rev acc
  in
  let attrs = attrs [] in
  let items =
    match peek st with
    | IDENT "import" ->
        ignore (next st);
        let file =
          match next st with
          | STRING s -> s
          | t -> error st (Fmt.str "expected file path string, found %s" (token_name t))
        in
        [ Ast.I_import file ]
    | IDENT "type" ->
        ignore (next st);
        parse_type_item st
    | IDENT "const" ->
        ignore (next st);
        [ parse_const_item st ]
    | IDENT "rel" ->
        ignore (next st);
        [ parse_rel_item st ]
    | IDENT "query" ->
        ignore (next st);
        let name = expect_ident st in
        if peek st = LPAREN then begin
          ignore (next st);
          let args = parse_expr_list st in
          expect st RPAREN;
          [ Ast.I_query_atom { Ast.pred = name; args } ]
        end
        else [ Ast.I_query name ]
    | t -> error st (Fmt.str "expected item, found %s" (token_name t))
  in
  List.map (fun item -> { Ast.attrs; item; pos = p }) items

let parse_program (src : string) : Ast.program =
  let toks =
    try Lexer.tokenize src
    with Lexer.Lex_error (msg, p) -> raise (Parse_error (msg, p))
  in
  let st = { toks; idx = 0 } in
  let rec go acc = if peek st = EOF then List.rev acc else go (List.rev_append (parse_decl st) acc) in
  go []
