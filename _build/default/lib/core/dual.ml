(** Dual numbers for forward-mode differentiation through provenance
    operations (paper Fig. 12).

    A dual number pairs a probability in [0,1] with its gradient with respect
    to the vector of input probabilities.  The paper uses dense vectors in
    R^n; we use a sparse map from input-variable id to partial derivative,
    which is asymptotically better since each output typically depends on a
    handful of inputs. *)

module IMap = Map.Make (Int)

type t = { v : float; d : float IMap.t }

let make v d = { v; d }
let const v = { v; d = IMap.empty }
let zero = const 0.0
let one = const 1.0

(** The input variable [i] with probability [r]: value r, derivative e_i. *)
let var i r = { v = r; d = IMap.singleton i 1.0 }

let value t = t.v
let deriv t = t.d
let deriv_list t = IMap.bindings t.d

let map_d f d = IMap.map f d

let merge_d f da db =
  IMap.merge
    (fun _ a b ->
      match (a, b) with
      | Some a, Some b -> Some (f a b)
      | Some a, None -> Some (f a 0.0)
      | None, Some b -> Some (f 0.0 b)
      | None, None -> None)
    da db

let add a b = { v = a.v +. b.v; d = merge_d ( +. ) a.d b.d }
let sub a b = { v = a.v -. b.v; d = merge_d ( -. ) a.d b.d }

let mul a b =
  {
    v = a.v *. b.v;
    d = merge_d ( +. ) (map_d (fun x -> x *. b.v) a.d) (map_d (fun x -> x *. a.v) b.d);
  }

let neg a = { v = -.a.v; d = map_d (fun x -> -.x) a.d }

(** 1 - a : the probabilistic complement. *)
let complement a = { v = 1.0 -. a.v; d = map_d (fun x -> -.x) a.d }

(** max/min select whichever argument has the larger/smaller value and keep
    its derivative (sub-gradient, as in the paper). *)
let max a b = if a.v >= b.v then a else b
let min a b = if a.v <= b.v then a else b

(** Clamp the value to [0,1] while keeping the derivative unchanged (the
    paper's straight-through clamp used by diff-add-mult-prob). *)
let clamp a = { a with v = Float.min 1.0 (Float.max 0.0 a.v) }

let scale k a = { v = k *. a.v; d = map_d (fun x -> k *. x) a.d }

let equal_value a b = Float.equal a.v b.v

let pp fmt t =
  Fmt.pf fmt "%.4f{%a}" t.v
    (Fmt.list ~sep:(Fmt.any ",") (fun fmt (i, g) -> Fmt.pf fmt "%d:%.3f" i g))
    (deriv_list t)
