(** Foreign functions and foreign predicates (paper Sec. 3.2).

    Foreign functions (FFs) are polymorphic operations on primitive values
    used for value creation: arithmetic, comparison, casts, string
    manipulation, hashing.  An FF may {e fail} (division by zero, overflow to
    NaN, unparseable cast), in which case the computation of that single
    fact is omitted rather than raising an error.

    Foreign predicates are relation-like generators such as
    [range(lo, hi, x)] that enumerate tuples on demand given their bound
    arguments. *)

(* ---- binary / unary operators ------------------------------------------- *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Land (* && *)
  | Lor (* || *)
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
[@@deriving eq, ord]

type unop = Not | Neg [@@deriving eq, ord]

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Land -> "&&"
  | Lor -> "||"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="

let unop_name = function Not -> "!" | Neg -> "-"

(* Numeric binop evaluation with per-type wrapping; [None] on failure. *)
let arith op (a : Value.t) (b : Value.t) : Value.t option =
  match (a, b) with
  | Value.Int (ta, x), Value.Int (tb, y) when Value.equal_ty ta tb -> (
      match op with
      | Add -> Some (Value.int ta (x + y))
      | Sub ->
          let r = x - y in
          (* Unsigned subtraction wraps within the type's range; for native
             unsigned types a negative result is a failure. *)
          if Value.is_unsigned_ty ta && r < 0 && Value.bits_of_ty ta >= Sys.int_size then None
          else Some (Value.int ta r)
      | Mul -> Some (Value.int ta (x * y))
      | Div -> if y = 0 then None else Some (Value.int ta (x / y))
      | Mod -> if y = 0 then None else Some (Value.int ta (x mod y))
      | _ -> None)
  | Value.Float (ta, x), Value.Float (tb, y) when Value.equal_ty ta tb -> (
      let mk r = if Float.is_nan r then None else Some (Value.float ta r) in
      match op with
      | Add -> mk (x +. y)
      | Sub -> mk (x -. y)
      | Mul -> mk (x *. y)
      | Div -> if y = 0.0 then None else mk (x /. y)
      | Mod -> if y = 0.0 then None else mk (Float.rem x y)
      | _ -> None)
  | _ -> None

let compare_vals op (a : Value.t) (b : Value.t) : Value.t option =
  let c = Value.compare a b in
  let r =
    match op with
    | Eq -> c = 0
    | Neq -> c <> 0
    | Lt -> c < 0
    | Leq -> c <= 0
    | Gt -> c > 0
    | Geq -> c >= 0
    | _ -> assert false
  in
  Some (Value.bool r)

let eval_binop op a b : Value.t option =
  match op with
  | Add | Sub | Mul | Div | Mod -> (
      match (a, b) with
      (* String concatenation via + mirrors common Datalog practice. *)
      | Value.S x, Value.S y when op = Add -> Some (Value.string (x ^ y))
      | _ -> arith op a b)
  | Land -> (
      match (a, b) with Value.B x, Value.B y -> Some (Value.bool (x && y)) | _ -> None)
  | Lor -> (
      match (a, b) with Value.B x, Value.B y -> Some (Value.bool (x || y)) | _ -> None)
  | Eq | Neq ->
      if Value.equal_ty (Value.type_of a) (Value.type_of b) then compare_vals op a b else None
  | Lt | Leq | Gt | Geq ->
      if Value.equal_ty (Value.type_of a) (Value.type_of b) then compare_vals op a b else None

let eval_unop op a : Value.t option =
  match (op, a) with
  | Not, Value.B b -> Some (Value.bool (not b))
  | Neg, Value.Int (ty, n) when Value.is_signed_ty ty -> Some (Value.int ty (-n))
  | Neg, Value.Float (ty, f) -> Some (Value.float ty (-.f))
  | _ -> None

(* ---- $-functions --------------------------------------------------------- *)

type ff = Value.t list -> Value.t option

let string_concat args =
  let rec go acc = function
    | [] -> Some (Value.string acc)
    | Value.S s :: rest -> go (acc ^ s) rest
    | v :: rest -> go (acc ^ Value.to_string v) rest
  in
  go "" args

let functions : (string * ff) list =
  [
    ("hash", fun args -> Some (Value.int Value.U64 (abs (Hashtbl.hash (List.map Value.hash_value args)))));
    ("string_concat", string_concat);
    ( "string_length",
      function [ Value.S s ] -> Some (Value.int Value.USize (String.length s)) | _ -> None );
    ( "string_char_at",
      function
      | [ Value.S s; v ] -> (
          match Value.to_int v with
          | Some i when i >= 0 && i < String.length s -> Some (Value.char s.[i])
          | _ -> None)
      | _ -> None );
    ( "substring",
      function
      | [ Value.S s; a; b ] -> (
          match (Value.to_int a, Value.to_int b) with
          | Some i, Some j when i >= 0 && j >= i && j <= String.length s ->
              Some (Value.string (String.sub s i (j - i)))
          | _ -> None)
      | _ -> None );
    ( "string_upper",
      function [ Value.S s ] -> Some (Value.string (String.uppercase_ascii s)) | _ -> None );
    ( "string_lower",
      function [ Value.S s ] -> Some (Value.string (String.lowercase_ascii s)) | _ -> None );
    ( "abs",
      function
      | [ Value.Int (ty, n) ] -> Some (Value.int ty (abs n))
      | [ Value.Float (ty, f) ] -> Some (Value.float ty (Float.abs f))
      | _ -> None );
    ( "min",
      function [ a; b ] -> Some (if Value.compare a b <= 0 then a else b) | _ -> None );
    ( "max",
      function [ a; b ] -> Some (if Value.compare a b >= 0 then a else b) | _ -> None );
    ( "pow",
      function
      | [ Value.Float (ty, x); Value.Float (_, y) ] ->
          let r = x ** y in
          if Float.is_nan r then None else Some (Value.float ty r)
      | [ Value.Int (ty, x); Value.Int (_, y) ] when y >= 0 ->
          let rec pow acc b e = if e = 0 then acc else pow (acc * b) b (e - 1) in
          Some (Value.int ty (pow 1 x y))
      | _ -> None );
    ( "sqrt",
      function
      | [ Value.Float (ty, x) ] when x >= 0.0 -> Some (Value.float ty (sqrt x))
      | _ -> None );
    ( "exp",
      function [ Value.Float (ty, x) ] -> Some (Value.float ty (exp x)) | _ -> None );
    ( "log",
      function
      | [ Value.Float (ty, x) ] when x > 0.0 -> Some (Value.float ty (log x))
      | _ -> None );
  ]

let lookup_function name : ff option = List.assoc_opt name functions

(* ---- foreign predicates -------------------------------------------------- *)

(** A foreign predicate receives the argument pattern (bound values or
    [None] for free positions) and enumerates the full tuples it generates.
    Unsupported binding patterns return [Error] with a message; the compiler
    surfaces this as a compile-time error where detectable. *)
type fp = Value.t option array -> (Tuple.t list, string) result

let range_fp : fp =
 fun args ->
  match args with
  | [| Some lo; Some hi; x |] -> (
      match (Value.to_int lo, Value.to_int hi) with
      | Some l, Some h ->
          let ty = Value.type_of lo in
          let all =
            List.filter_map
              (fun i ->
                let v = Value.int ty i in
                match x with
                | None -> Some [| lo; hi; v |]
                | Some bound -> if Value.equal bound v then Some [| lo; hi; v |] else None)
              (Scallop_utils.Listx.range l h)
          in
          Ok all
      | _ -> Error "range: bounds must be integers")
  | _ -> Error "range: first two arguments must be bound"

let string_chars_fp : fp =
 fun args ->
  match args with
  | [| Some (Value.S s); i; c |] ->
      let all =
        List.filter_map
          (fun idx ->
            let iv = Value.int Value.USize idx and cv = Value.char s.[idx] in
            let ok_i = match i with None -> true | Some b -> Value.equal b iv in
            let ok_c = match c with None -> true | Some b -> Value.equal b cv in
            if ok_i && ok_c then Some [| Value.S s; iv; cv |] else None)
          (Scallop_utils.Listx.range 0 (String.length s))
      in
      Ok all
  | _ -> Error "string_chars: string argument must be bound"

let succ_fp : fp =
 fun args ->
  match args with
  | [| Some (Value.Int (ty, n)); b |] -> (
      let sv = Value.int ty (n + 1) in
      match b with
      | None -> Ok [ [| Value.Int (ty, n); sv |] ]
      | Some bound -> Ok (if Value.equal bound sv then [ [| Value.Int (ty, n); sv |] ] else []))
  | [| a; Some (Value.Int (ty, m)) |] -> (
      let pv = Value.int ty (m - 1) in
      match a with
      | None -> Ok [ [| pv; Value.Int (ty, m) |] ]
      | Some bound -> Ok (if Value.equal bound pv then [ [| pv; Value.Int (ty, m) |] ] else []))
  | _ -> Error "succ: one argument must be bound"

let predicates : (string * (int * fp)) list =
  [ ("range", (3, range_fp)); ("string_chars", (3, string_chars_fp)); ("succ", (2, succ_fp)) ]

let lookup_predicate name = List.assoc_opt name predicates
let is_foreign_predicate name = lookup_predicate name <> None
