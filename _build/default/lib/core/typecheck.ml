(** Type inference and elaboration (the front-IR type analysis of Sec. 5).

    Relations are typed by declaration ([type p(i32, String)]) or by
    inference: every undeclared column gets a unification variable, rule and
    fact traversal generates equality and class constraints (integer, float,
    numeric, boolean), and unresolved variables are defaulted (integers to
    i32, floats to f32) as in the paper's example where untyped columns
    default to an integer type.

    After solving, [elaborate] rewrites the core rules so that every numeric
    literal carries an explicit cast to its resolved type — downstream
    compilation then never needs the typing environment — and facts are
    lowered to properly typed value tuples. *)

exception Type_error of string * Ast.pos

type cls = Any | Num | Int_ | Flt | Boolish | Addable
(** [Addable] admits numerics and String (for [+] concatenation). *)

type node = { mutable parent : int option; mutable prim : Value.ty option; mutable cls : cls }

type solver = { mutable nodes : node array; mutable count : int }

let new_solver () = { nodes = Array.init 64 (fun _ -> { parent = None; prim = None; cls = Any }); count = 0 }

let fresh_var s =
  if s.count >= Array.length s.nodes then begin
    let bigger = Array.init (2 * Array.length s.nodes) (fun _ -> { parent = None; prim = None; cls = Any }) in
    Array.blit s.nodes 0 bigger 0 (Array.length s.nodes);
    s.nodes <- bigger
  end;
  let id = s.count in
  s.nodes.(id) <- { parent = None; prim = None; cls = Any };
  s.count <- id + 1;
  id

let rec find s i =
  match s.nodes.(i).parent with
  | None -> i
  | Some p ->
      let r = find s p in
      s.nodes.(i).parent <- Some r;
      r

let cls_name = function
  | Any -> "any"
  | Num -> "numeric"
  | Int_ -> "integer"
  | Flt -> "float"
  | Boolish -> "bool"
  | Addable -> "numeric-or-String"

let cls_admits c (ty : Value.ty) =
  match c with
  | Any -> true
  | Num -> Value.is_numeric_ty ty
  | Int_ -> Value.is_integer_ty ty
  | Flt -> Value.is_float_ty ty
  | Boolish -> ty = Value.Bool
  | Addable -> Value.is_numeric_ty ty || ty = Value.Str

let merge_cls pos a b =
  let fail () =
    raise
      (Type_error (Fmt.str "incompatible type classes %s and %s" (cls_name a) (cls_name b), pos))
  in
  let rank = function Any -> 0 | Addable -> 1 | Num -> 2 | Int_ -> 3 | Flt -> 3 | Boolish -> 4 in
  (* order so that [a] is the less specific class *)
  let a, b = if rank a <= rank b then (a, b) else (b, a) in
  match (a, b) with
  | Any, c -> c
  | Addable, (Addable | Num | Int_ | Flt) -> b
  | Num, (Num | Int_ | Flt) -> b
  | Int_, Int_ | Flt, Flt | Boolish, Boolish -> b
  | _ -> fail ()

let constrain_cls s pos i c =
  let r = find s i in
  let n = s.nodes.(r) in
  (match n.prim with
  | Some ty ->
      if not (cls_admits c ty) then
        raise (Type_error (Fmt.str "type %s is not %s" (Value.ty_name ty) (cls_name c), pos))
  | None -> ());
  n.cls <- merge_cls pos n.cls c

let assign_prim s pos i ty =
  let r = find s i in
  let n = s.nodes.(r) in
  (match n.prim with
  | Some ty' when not (Value.equal_ty ty ty') ->
      raise
        (Type_error
           (Fmt.str "type mismatch: %s vs %s" (Value.ty_name ty) (Value.ty_name ty'), pos))
  | _ -> ());
  if not (cls_admits n.cls ty) then
    raise (Type_error (Fmt.str "type %s is not %s" (Value.ty_name ty) (cls_name n.cls), pos));
  n.prim <- Some ty

let unify s pos i j =
  let ri = find s i and rj = find s j in
  if ri <> rj then begin
    let ni = s.nodes.(ri) and nj = s.nodes.(rj) in
    let cls = merge_cls pos ni.cls nj.cls in
    let prim =
      match (ni.prim, nj.prim) with
      | Some a, Some b ->
          if Value.equal_ty a b then Some a
          else
            raise
              (Type_error
                 (Fmt.str "type mismatch: %s vs %s" (Value.ty_name a) (Value.ty_name b), pos))
      | Some a, None | None, Some a ->
          if not (cls_admits cls a) then
            raise (Type_error (Fmt.str "type %s is not %s" (Value.ty_name a) (cls_name cls), pos));
          Some a
      | None, None -> None
    in
    nj.parent <- Some ri;
    ni.cls <- cls;
    ni.prim <- prim
  end

let resolved s i : Value.ty =
  let r = find s i in
  let n = s.nodes.(r) in
  match n.prim with
  | Some ty -> ty
  | None -> (
      (* defaulting *)
      match n.cls with Flt -> Value.F32 | Boolish -> Value.Bool | _ -> Value.I32)

(* ---- relation signatures -------------------------------------------------------- *)

type result = {
  rel_types : (string, Value.ty array) Hashtbl.t;
  rules : Front.crule list;  (** elaborated: literals carry explicit casts *)
  facts : (string * float option * int option * Tuple.t) list;
  queries : string list;
}

module SMap = Map.Make (String)

let resolve_alias aliases name =
  let rec go name seen =
    if List.mem name seen then None
    else
      match Value.ty_of_name name with
      | Some ty -> Some ty
      | None -> (
          match List.assoc_opt name aliases with
          | Some target -> go target (name :: seen)
          | None -> None)
  in
  go name []

(* FF result/argument typing: a pragmatic table for the built-in functions. *)
let ff_signature = function
  | "hash" -> `Ret (Value.U64)
  | "string_concat" | "substring" | "string_upper" | "string_lower" -> `Ret Value.Str
  | "string_length" -> `Ret Value.USize
  | "string_char_at" -> `Ret Value.Char
  | "abs" | "min" | "max" | "pow" -> `SameAsArg0
  | "sqrt" | "exp" | "log" -> `FloatArg0
  | _ -> `Unknown

let check (front : Front.t) : result =
  let s = new_solver () in
  let aliases = front.Front.type_aliases in
  (* Column type variables per relation. *)
  let rel_slots : int array SMap.t ref = ref SMap.empty in
  let declare pos name arity =
    match SMap.find_opt name !rel_slots with
    | Some slots ->
        if Array.length slots <> arity then
          raise
            (Type_error
               ( Fmt.str "relation %s used with arity %d but has arity %d" name arity
                   (Array.length slots),
                 pos ));
        slots
    | None ->
        let slots = Array.init arity (fun _ -> fresh_var s) in
        rel_slots := SMap.add name slots !rel_slots;
        slots
  in
  (* Declared relation types. *)
  List.iter
    (fun (name, fields) ->
      let slots = declare Ast.dummy_pos name (List.length fields) in
      List.iteri
        (fun i (_, tyname) ->
          match resolve_alias aliases tyname with
          | Some ty -> assign_prim s Ast.dummy_pos slots.(i) ty
          | None -> raise (Type_error (Fmt.str "unknown type %S" tyname, Ast.dummy_pos)))
        fields)
    front.Front.rel_decls;
  (* Foreign predicates have fixed signatures. *)
  let foreign_slot pos name i =
    match name with
    | "range" ->
        (* all three arguments share an integer type *)
        let slots = declare pos ("$range") 3 in
        constrain_cls s pos slots.(0) Int_;
        unify s pos slots.(0) slots.(1);
        unify s pos slots.(0) slots.(2);
        slots.(i)
    | "string_chars" ->
        let slots = declare pos "$string_chars" 3 in
        assign_prim s pos slots.(0) Value.Str;
        assign_prim s pos slots.(1) Value.USize;
        assign_prim s pos slots.(2) Value.Char;
        slots.(i)
    | "succ" ->
        let slots = declare pos "$succ" 2 in
        constrain_cls s pos slots.(0) Int_;
        unify s pos slots.(0) slots.(1);
        slots.(i)
    | _ -> raise (Type_error (Fmt.str "unknown foreign predicate %s" name, pos))
  in
  (* Expression typing. *)
  let rec type_expr pos env (e : Ast.expr) : int =
    match e with
    | Ast.E_var v -> (
        match Hashtbl.find_opt env v with
        | Some tv -> tv
        | None ->
            let tv = fresh_var s in
            Hashtbl.replace env v tv;
            tv)
    | Ast.E_wildcard -> fresh_var s
    | Ast.E_const (Ast.C_int _) ->
        let tv = fresh_var s in
        constrain_cls s pos tv Int_;
        tv
    | Ast.E_const (Ast.C_float _) ->
        let tv = fresh_var s in
        constrain_cls s pos tv Flt;
        tv
    | Ast.E_const (Ast.C_bool _) ->
        let tv = fresh_var s in
        assign_prim s pos tv Value.Bool;
        tv
    | Ast.E_const (Ast.C_char _) ->
        let tv = fresh_var s in
        assign_prim s pos tv Value.Char;
        tv
    | Ast.E_const (Ast.C_str _) ->
        let tv = fresh_var s in
        assign_prim s pos tv Value.Str;
        tv
    | Ast.E_binop (op, a, b) -> (
        let ta = type_expr pos env a and tb = type_expr pos env b in
        match op with
        | Foreign.Add ->
            unify s pos ta tb;
            constrain_cls s pos ta Addable;
            ta
        | Foreign.Sub | Foreign.Mul | Foreign.Div | Foreign.Mod ->
            unify s pos ta tb;
            constrain_cls s pos ta Num;
            ta
        | Foreign.Land | Foreign.Lor ->
            assign_prim s pos ta Value.Bool;
            assign_prim s pos tb Value.Bool;
            ta
        | Foreign.Eq | Foreign.Neq | Foreign.Lt | Foreign.Leq | Foreign.Gt | Foreign.Geq ->
            unify s pos ta tb;
            let tv = fresh_var s in
            assign_prim s pos tv Value.Bool;
            tv)
    | Ast.E_unop (Foreign.Not, a) ->
        let ta = type_expr pos env a in
        assign_prim s pos ta Value.Bool;
        ta
    | Ast.E_unop (Foreign.Neg, a) ->
        let ta = type_expr pos env a in
        constrain_cls s pos ta Num;
        ta
    | Ast.E_call (f, args) -> (
        let targs = List.map (type_expr pos env) args in
        match ff_signature f with
        | `Ret ty ->
            let tv = fresh_var s in
            assign_prim s pos tv ty;
            tv
        | `SameAsArg0 -> (
            match targs with
            | t0 :: _ ->
                constrain_cls s pos t0 Num;
                t0
            | [] -> raise (Type_error (Fmt.str "$%s requires arguments" f, pos)))
        | `FloatArg0 -> (
            match targs with
            | t0 :: _ ->
                constrain_cls s pos t0 Flt;
                t0
            | [] -> raise (Type_error (Fmt.str "$%s requires arguments" f, pos)))
        | `Unknown -> raise (Type_error (Fmt.str "unknown foreign function $%s" f, pos)))
    | Ast.E_if (c, a, b) ->
        let tc = type_expr pos env c in
        assign_prim s pos tc Value.Bool;
        let ta = type_expr pos env a and tb = type_expr pos env b in
        unify s pos ta tb;
        ta
    | Ast.E_cast (a, tyname) -> (
        ignore (type_expr pos env a);
        match resolve_alias aliases tyname with
        | Some ty ->
            let tv = fresh_var s in
            assign_prim s pos tv ty;
            tv
        | None -> raise (Type_error (Fmt.str "unknown type %S in cast" tyname, pos)))
  in
  let type_atom pos env (a : Ast.atom) =
    if Foreign.is_foreign_predicate a.Ast.pred then
      List.iteri
        (fun i arg ->
          let t = type_expr pos env arg in
          unify s pos t (foreign_slot pos a.Ast.pred i))
        a.Ast.args
    else begin
      let slots = declare pos a.Ast.pred (List.length a.Ast.args) in
      List.iteri
        (fun i arg ->
          let t = type_expr pos env arg in
          unify s pos t slots.(i))
        a.Ast.args
    end
  in
  let rec type_literal pos env = function
    | Front.L_pos a | Front.L_neg a -> type_atom pos env a
    | Front.L_cond e ->
        let t = type_expr pos env e in
        assign_prim s pos t Value.Bool
    | Front.L_reduce r -> type_reduce pos env r
  and type_reduce pos env (r : Front.creduce) =
    List.iter (List.iter (type_literal pos env)) r.Front.body;
    (match r.Front.where with
    | Some (_, clauses) -> List.iter (List.iter (type_literal pos env)) clauses
    | None -> ());
    let tv_of v = type_expr pos env (Ast.E_var v) in
    let unify_lists la lb =
      if List.length la <> List.length lb then
        raise (Type_error ("aggregation variable count mismatch", pos));
      List.iter2 (fun a b -> unify s pos (tv_of a) (tv_of b)) la lb
    in
    match r.Front.op with
    | Front.CR_aggregate Ram.Count ->
        List.iter (fun v -> assign_prim s pos (tv_of v) Value.USize) r.Front.result_vars
    | Front.CR_aggregate (Ram.Sum | Ram.Prod) -> (
        match (r.Front.result_vars, r.Front.binding_vars) with
        | [ rv ], [ bv ] ->
            unify s pos (tv_of rv) (tv_of bv);
            constrain_cls s pos (tv_of rv) Num
        | _ -> raise (Type_error ("sum/prod take exactly one binding and result variable", pos)))
    | Front.CR_aggregate (Ram.Min | Ram.Max) -> unify_lists r.Front.result_vars r.Front.binding_vars
    | Front.CR_aggregate (Ram.Argmin | Ram.Argmax) -> unify_lists r.Front.result_vars r.Front.arg_vars
    | Front.CR_aggregate Ram.Exists ->
        List.iter (fun v -> assign_prim s pos (tv_of v) Value.Bool) r.Front.result_vars
    | Front.CR_sampler _ -> unify_lists r.Front.result_vars r.Front.binding_vars
  in
  (* Rules: each rule gets its own variable environment.  We keep the
     environments so elaboration can resolve variable types. *)
  let rule_envs =
    List.map
      (fun (r : Front.crule) ->
        let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
        List.iter (type_literal r.Front.rule_pos env) r.Front.body;
        type_atom r.Front.rule_pos env r.Front.head;
        env)
      front.Front.rules
  in
  (* Facts. *)
  List.iter
    (fun (f : Front.fact) ->
      let env = Hashtbl.create 4 in
      type_atom f.Front.fact_pos env { Ast.pred = f.Front.pred; args = f.Front.args })
    front.Front.facts;
  (* ---- elaboration ------------------------------------------------------- *)
  let rel_types = Hashtbl.create 16 in
  SMap.iter
    (fun name slots ->
      if String.length name > 0 && name.[0] <> '$' then
        Hashtbl.replace rel_types name (Array.map (resolved s) slots))
    !rel_slots;
  (* Rewriting expressions: infer the expression's resolved type top-down and
     wrap numeric literals in casts to it. *)
  let rec elab_expr env (expected : Value.ty option) (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.E_var v -> (
        ignore expected;
        match Hashtbl.find_opt env v with Some _ -> e | None -> e)
    | Ast.E_wildcard -> e
    | Ast.E_const (Ast.C_int _) -> (
        match expected with
        | Some ty when Value.is_integer_ty ty && ty <> Value.I32 ->
            Ast.E_cast (e, Value.ty_name ty)
        | Some ty when Value.is_float_ty ty -> Ast.E_cast (e, Value.ty_name ty)
        | _ -> e)
    | Ast.E_const (Ast.C_float _) -> (
        match expected with
        | Some ty when Value.is_float_ty ty && ty <> Value.F32 -> Ast.E_cast (e, Value.ty_name ty)
        | _ -> e)
    | Ast.E_const _ -> e
    | Ast.E_binop (op, a, b) ->
        let sub_expected =
          match op with
          | Foreign.Add | Foreign.Sub | Foreign.Mul | Foreign.Div | Foreign.Mod -> expected
          | Foreign.Eq | Foreign.Neq | Foreign.Lt | Foreign.Leq | Foreign.Gt | Foreign.Geq -> (
              (* both sides share a type: take a variable side's resolved type *)
              match expr_resolved env a with
              | Some ty -> Some ty
              | None -> expr_resolved env b)
          | _ -> None
        in
        let sub_expected =
          match sub_expected with
          | Some _ -> sub_expected
          | None -> (
              match expr_resolved env a with Some ty -> Some ty | None -> expr_resolved env b)
        in
        Ast.E_binop (op, elab_expr env sub_expected a, elab_expr env sub_expected b)
    | Ast.E_unop (op, a) -> Ast.E_unop (op, elab_expr env expected a)
    | Ast.E_call (f, args) -> Ast.E_call (f, List.map (elab_expr env None) args)
    | Ast.E_if (c, a, b) ->
        Ast.E_if (elab_expr env None c, elab_expr env expected a, elab_expr env expected b)
    | Ast.E_cast (a, ty) -> Ast.E_cast (elab_expr env None a, ty)
  and expr_resolved env (e : Ast.expr) : Value.ty option =
    match e with
    | Ast.E_var v -> Option.map (resolved s) (Hashtbl.find_opt env v)
    | Ast.E_cast (_, tyname) -> resolve_alias aliases tyname
    | Ast.E_binop ((Foreign.Add | Foreign.Sub | Foreign.Mul | Foreign.Div | Foreign.Mod), a, b)
      -> (
        match expr_resolved env a with Some ty -> Some ty | None -> expr_resolved env b)
    | _ -> None
  in
  let elab_atom env (a : Ast.atom) : Ast.atom =
    let coltypes =
      match Hashtbl.find_opt rel_types a.Ast.pred with
      | Some tys -> Array.to_list (Array.map Option.some tys)
      | None -> (
          match a.Ast.pred with
          | "range" | "succ" -> (
              (* use the shared foreign slots *)
              match SMap.find_opt ("$" ^ a.Ast.pred) !rel_slots with
              | Some slots -> Array.to_list (Array.map (fun i -> Some (resolved s i)) slots)
              | None -> List.map (fun _ -> None) a.Ast.args)
          | "string_chars" -> [ Some Value.Str; Some Value.USize; Some Value.Char ]
          | _ -> List.map (fun _ -> None) a.Ast.args)
    in
    { a with Ast.args = List.map2 (fun exp arg -> elab_expr env exp arg) coltypes a.Ast.args }
  in
  let rec elab_literal env = function
    | Front.L_pos a -> Front.L_pos (elab_atom env a)
    | Front.L_neg a -> Front.L_neg (elab_atom env a)
    | Front.L_cond e -> Front.L_cond (elab_expr env None e)
    | Front.L_reduce r ->
        Front.L_reduce
          {
            r with
            Front.body = List.map (List.map (elab_literal env)) r.Front.body;
            where =
              Option.map
                (fun (gv, cl) -> (gv, List.map (List.map (elab_literal env)) cl))
                r.Front.where;
          }
  in
  let rules =
    List.map2
      (fun (r : Front.crule) env ->
        {
          r with
          Front.head = elab_atom env r.Front.head;
          body = List.map (elab_literal env) r.Front.body;
        })
      front.Front.rules rule_envs
  in
  (* ---- fact lowering ------------------------------------------------------- *)
  let eval_const_expr pos (expected : Value.ty) (e : Ast.expr) : Value.t =
    (* Facts may use constant arithmetic; compile through the RAM evaluator
       against the empty tuple. *)
    let rec to_vexpr (e : Ast.expr) : Ram.vexpr =
      match e with
      | Ast.E_const (Ast.C_int n) -> Ram.Const (Value.int Value.I32 n)
      | Ast.E_const (Ast.C_float f) -> Ram.Const (Value.float Value.F32 f)
      | Ast.E_const (Ast.C_bool b) -> Ram.Const (Value.bool b)
      | Ast.E_const (Ast.C_char c) -> Ram.Const (Value.char c)
      | Ast.E_const (Ast.C_str str) -> Ram.Const (Value.string str)
      | Ast.E_binop (op, a, b) -> Ram.Binop (op, to_vexpr a, to_vexpr b)
      | Ast.E_unop (op, a) -> Ram.Unop (op, to_vexpr a)
      | Ast.E_call (f, args) -> Ram.Call (f, List.map to_vexpr args)
      | Ast.E_if (c, a, b) -> Ram.If_then_else (to_vexpr c, to_vexpr a, to_vexpr b)
      | Ast.E_cast (a, tyname) -> (
          match resolve_alias aliases tyname with
          | Some ty -> Ram.Cast (ty, to_vexpr a)
          | None -> raise (Type_error (Fmt.str "unknown type %S" tyname, pos)))
      | Ast.E_var v -> raise (Type_error (Fmt.str "variable %S in fact" v, pos))
      | Ast.E_wildcard -> raise (Type_error ("wildcard in fact", pos))
    in
    (* Integer literals inside fact tuples adopt the column type directly. *)
    let rec retype (e : Ast.expr) : Ast.expr =
      match e with
      | Ast.E_const (Ast.C_int _) when Value.is_integer_ty expected || Value.is_float_ty expected
        ->
          Ast.E_cast (e, Value.ty_name expected)
      | Ast.E_const (Ast.C_float _) when Value.is_float_ty expected ->
          Ast.E_cast (e, Value.ty_name expected)
      | Ast.E_binop (op, a, b) -> Ast.E_binop (op, retype a, retype b)
      | Ast.E_unop (op, a) -> Ast.E_unop (op, retype a)
      | _ -> e
    in
    match Ram.eval_vexpr Tuple.unit (to_vexpr (retype e)) with
    | Some v -> (
        match Value.cast expected v with
        | Some v -> v
        | None ->
            raise
              (Type_error
                 (Fmt.str "fact value %a does not fit type %s" Value.pp v (Value.ty_name expected), pos)))
    | None -> raise (Type_error ("fact argument evaluation failed", pos))
  in
  let facts =
    List.map
      (fun (f : Front.fact) ->
        let tys =
          match Hashtbl.find_opt rel_types f.Front.pred with
          | Some tys -> tys
          | None -> Array.of_list (List.map (fun _ -> Value.I32) f.Front.args)
        in
        let vals =
          List.mapi (fun i e -> eval_const_expr f.Front.fact_pos tys.(i) e) f.Front.args
        in
        (f.Front.pred, f.Front.prob, f.Front.me_group, Tuple.of_list vals))
      front.Front.facts
  in
  { rel_types; rules; facts; queries = front.Front.queries }
