(** Hand-written lexer for the Scallop surface language.

    Produces a flat token array consumed by the recursive-descent
    {!Parser}.  Line comments are [// ...]; block comments [/* ... */]. *)

type token =
  | IDENT of string
  | DOLLAR_IDENT of string  (** $func *)
  | AT_IDENT of string  (** @attribute *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | CHARLIT of char
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | COLONCOLON  (** :: *)
  | COLONEQ  (** := *)
  | COLONDASH  (** :- *)
  | EQ  (** = *)
  | EQEQ
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | SUBTYPE  (** <: *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | ANDAND
  | OROR
  | BANG
  | UNDERSCORE
  | EOF

type spanned = { tok : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

let keywords =
  [ "import"; "type"; "const"; "rel"; "query"; "and"; "or"; "not"; "implies";
    "if"; "then"; "else"; "as"; "where"; "true"; "false" ]

let is_keyword s = List.mem s keywords

let token_name = function
  | IDENT s -> Fmt.str "identifier %S" s
  | DOLLAR_IDENT s -> Fmt.str "$%s" s
  | AT_IDENT s -> Fmt.str "@%s" s
  | INT n -> Fmt.str "integer %d" n
  | FLOAT f -> Fmt.str "float %g" f
  | STRING s -> Fmt.str "string %S" s
  | CHARLIT c -> Fmt.str "char '%c'" c
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | COLONCOLON -> "::"
  | COLONEQ -> ":="
  | COLONDASH -> ":-"
  | EQ -> "="
  | EQEQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LEQ -> "<="
  | GT -> ">"
  | GEQ -> ">="
  | SUBTYPE -> "<:"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | UNDERSCORE -> "_"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : spanned array =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let pos () : Ast.pos = { line = !line; col = !col } in
  let advance () =
    if !i < n then begin
      if src.[!i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr i
    end
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let emit tok p = toks := { tok; pos = p } :: !toks in
  while !i < n do
    let c = src.[!i] in
    let p = pos () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then raise (Lex_error ("unterminated block comment", p))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let s = String.sub src start (!i - start) in
      if s = "_" then emit UNDERSCORE p else emit (IDENT s) p
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      (* A '.' followed by a digit continues a float literal. *)
      let is_float = ref false in
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        is_float := true;
        advance ();
        while !i < n && is_digit src.[!i] do
          advance ()
        done
      end;
      (* An exponent marker only belongs to the number when digits follow
         ("9e" is the number 9 followed by the identifier e). *)
      let exponent_follows =
        !i < n
        && (src.[!i] = 'e' || src.[!i] = 'E')
        &&
        let j = if !i + 1 < n && (src.[!i + 1] = '+' || src.[!i + 1] = '-') then !i + 2 else !i + 1 in
        j < n && is_digit src.[j]
      in
      if exponent_follows then begin
        is_float := true;
        advance ();
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then advance ();
        while !i < n && is_digit src.[!i] do
          advance ()
        done
      end;
      let s = String.sub src start (!i - start) in
      if !is_float then emit (FLOAT (float_of_string s)) p
      else emit (INT (int_of_string s)) p
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '"' then begin
          advance ();
          closed := true
        end
        else if c = '\\' then begin
          advance ();
          (match peek 0 with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '"' -> Buffer.add_char buf '"'
          | Some c -> Buffer.add_char buf c
          | None -> raise (Lex_error ("unterminated string", p)));
          advance ()
        end
        else begin
          Buffer.add_char buf c;
          advance ()
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", p));
      emit (STRING (Buffer.contents buf)) p
    end
    else if c = '\'' then begin
      advance ();
      let ch =
        match peek 0 with
        | Some '\\' -> (
            advance ();
            match peek 0 with
            | Some 'n' -> '\n'
            | Some 't' -> '\t'
            | Some c -> c
            | None -> raise (Lex_error ("unterminated char literal", p)))
        | Some c -> c
        | None -> raise (Lex_error ("unterminated char literal", p))
      in
      advance ();
      if peek 0 <> Some '\'' then raise (Lex_error ("unterminated char literal", p));
      advance ();
      emit (CHARLIT ch) p
    end
    else if c = '$' then begin
      advance ();
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      if !i = start then raise (Lex_error ("expected identifier after '$'", p));
      emit (DOLLAR_IDENT (String.sub src start (!i - start))) p
    end
    else if c = '@' then begin
      advance ();
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      if !i = start then raise (Lex_error ("expected identifier after '@'", p));
      emit (AT_IDENT (String.sub src start (!i - start))) p
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let emit2 tok =
        advance ();
        advance ();
        emit tok p
      in
      let emit1 tok =
        advance ();
        emit tok p
      in
      match two with
      | "::" -> emit2 COLONCOLON
      | ":=" -> emit2 COLONEQ
      | ":-" -> emit2 COLONDASH
      | "==" -> emit2 EQEQ
      | "!=" -> emit2 NEQ
      | "<=" -> emit2 LEQ
      | ">=" -> emit2 GEQ
      | "<:" -> emit2 SUBTYPE
      | "&&" -> emit2 ANDAND
      | "||" -> emit2 OROR
      | _ -> (
          match c with
          | '(' -> emit1 LPAREN
          | ')' -> emit1 RPAREN
          | '{' -> emit1 LBRACE
          | '}' -> emit1 RBRACE
          | '[' -> emit1 LBRACKET
          | ']' -> emit1 RBRACKET
          | ',' -> emit1 COMMA
          | ';' -> emit1 SEMI
          | ':' -> emit1 COLON
          | '=' -> emit1 EQ
          | '<' -> emit1 LT
          | '>' -> emit1 GT
          | '+' -> emit1 PLUS
          | '-' -> emit1 MINUS
          | '*' -> emit1 STAR
          | '/' -> emit1 SLASH
          | '%' -> emit1 PERCENT
          | '!' -> emit1 BANG
          | _ -> raise (Lex_error (Fmt.str "unexpected character %C" c, p)))
    end
  done;
  emit EOF (pos ());
  Array.of_list (List.rev !toks)
