(** Front-end analyses and desugaring (the "front-IR" of paper Sec. 5).

    Lowers the surface AST into a core form where:
    - constant variables are substituted by their definitions,
    - logical connectives are normalized: [implies] and general [not] are
      pushed down (NNF) and rule bodies are flattened into disjunctive normal
      form, one core rule per disjunct,
    - [forall] aggregations are rewritten into value-negated [exists] over
      the negated body (world-exact, see {!Aggregate}),
    - probabilistic rules are desugared into plain rules guarded by a fresh
      tagged nullary fact (paper Sec. 3.3),
    - fact sets are flattened into tagged facts, allocating one mutual-
      exclusion group per [;]-joined segment,
    - [import]s are resolved through a loader callback. *)

exception Front_error of string * Ast.pos

(* ---- core representation ----------------------------------------------------- *)

type literal =
  | L_pos of Ast.atom
  | L_neg of Ast.atom
  | L_cond of Ast.expr
  | L_reduce of creduce

and creduce = {
  result_vars : string list;
  op : core_reduce_op;
  negate_result : bool;  (** forall: flip the boolean result column *)
  arg_vars : string list;  (** argmin/argmax *)
  binding_vars : string list;
  body : clause list;  (** disjuncts *)
  where : (string list * clause list) option;
}

and core_reduce_op = CR_aggregate of Ram.aggregator | CR_sampler of Ram.sampler
and clause = literal list

type crule = { head : Ast.atom; body : clause; rule_pos : Ast.pos }

type fact = {
  pred : string;
  prob : float option;
  me_group : int option;
  args : Ast.expr list;
  fact_pos : Ast.pos;
}

type t = {
  rules : crule list;
  facts : fact list;
  rel_decls : (string * (string option * string) list) list;
  type_aliases : (string * string) list;
  queries : string list;
  query_atoms : (Ast.atom * Ast.pos) list;
      (** queries with argument patterns; seed the demand transformation *)
}

(* ---- constant substitution ----------------------------------------------------- *)

let rec subst_expr env (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.E_var v -> ( match List.assoc_opt v env with Some def -> def | None -> e)
  | Ast.E_wildcard | Ast.E_const _ -> e
  | Ast.E_binop (op, a, b) -> Ast.E_binop (op, subst_expr env a, subst_expr env b)
  | Ast.E_unop (op, a) -> Ast.E_unop (op, subst_expr env a)
  | Ast.E_call (f, args) -> Ast.E_call (f, List.map (subst_expr env) args)
  | Ast.E_if (c, a, b) -> Ast.E_if (subst_expr env c, subst_expr env a, subst_expr env b)
  | Ast.E_cast (a, ty) -> Ast.E_cast (subst_expr env a, ty)

let subst_atom env (a : Ast.atom) = { a with Ast.args = List.map (subst_expr env) a.Ast.args }

let rec subst_formula env (f : Ast.formula) : Ast.formula =
  match f with
  | Ast.F_atom a -> Ast.F_atom (subst_atom env a)
  | Ast.F_neg_atom a -> Ast.F_neg_atom (subst_atom env a)
  | Ast.F_and (a, b) -> Ast.F_and (subst_formula env a, subst_formula env b)
  | Ast.F_or (a, b) -> Ast.F_or (subst_formula env a, subst_formula env b)
  | Ast.F_implies (a, b) -> Ast.F_implies (subst_formula env a, subst_formula env b)
  | Ast.F_not a -> Ast.F_not (subst_formula env a)
  | Ast.F_constraint e -> Ast.F_constraint (subst_expr env e)
  | Ast.F_reduce r ->
      (* Reduce variables shadow constants of the same name; we keep it
         simple and substitute everywhere (constants are conventionally
         upper-case, variables lower-case). *)
      Ast.F_reduce
        {
          r with
          Ast.body = subst_formula env r.Ast.body;
          where = Option.map (fun (gv, f) -> (gv, subst_formula env f)) r.Ast.where;
        }

(* ---- negation normal form -------------------------------------------------------- *)

let rec nnf (f : Ast.formula) : Ast.formula =
  match f with
  | Ast.F_atom _ | Ast.F_neg_atom _ | Ast.F_constraint _ -> f
  | Ast.F_and (a, b) -> Ast.F_and (nnf a, nnf b)
  | Ast.F_or (a, b) -> Ast.F_or (nnf a, nnf b)
  | Ast.F_implies (a, b) -> Ast.F_or (nnf (Ast.F_not a), nnf b)
  | Ast.F_reduce r -> Ast.F_reduce { r with Ast.body = nnf r.Ast.body }
  | Ast.F_not g -> (
      match g with
      | Ast.F_atom a -> Ast.F_neg_atom a
      | Ast.F_neg_atom a -> Ast.F_atom a
      | Ast.F_and (a, b) -> Ast.F_or (nnf (Ast.F_not a), nnf (Ast.F_not b))
      | Ast.F_or (a, b) -> Ast.F_and (nnf (Ast.F_not a), nnf (Ast.F_not b))
      | Ast.F_implies (a, b) -> Ast.F_and (nnf a, nnf (Ast.F_not b))
      | Ast.F_not h -> nnf h
      | Ast.F_constraint e -> Ast.F_constraint (Ast.E_unop (Foreign.Not, e))
      | Ast.F_reduce _ ->
          raise (Front_error ("cannot negate an aggregation", Ast.dummy_pos)))

(* ---- disjunctive normal form -------------------------------------------------------- *)

let aggregator_of_name pos = function
  | "count" -> Ram.Count
  | "sum" -> Ram.Sum
  | "prod" -> Ram.Prod
  | "min" -> Ram.Min
  | "max" -> Ram.Max
  | "exists" -> Ram.Exists
  | "argmin" -> Ram.Argmin
  | "argmax" -> Ram.Argmax
  | s -> raise (Front_error (Fmt.str "unknown aggregator %S" s, pos))

let sampler_of pos name k =
  match name with
  | "top" -> Ram.Top_k k
  | "categorical" -> Ram.Categorical k
  | "uniform" -> Ram.Uniform k
  | s -> raise (Front_error (Fmt.str "unknown sampler %S" s, pos))

let rec dnf pos (f : Ast.formula) : clause list =
  match f with
  | Ast.F_atom a -> [ [ L_pos a ] ]
  | Ast.F_neg_atom a -> [ [ L_neg a ] ]
  | Ast.F_constraint e -> [ [ L_cond e ] ]
  | Ast.F_and (a, b) ->
      let da = dnf pos a and db = dnf pos b in
      List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) db) da
  | Ast.F_or (a, b) -> dnf pos a @ dnf pos b
  | Ast.F_implies _ | Ast.F_not _ -> dnf pos (nnf f)
  | Ast.F_reduce r -> [ [ L_reduce (lower_reduce pos r) ] ]

and lower_reduce pos (r : Ast.reduce) : creduce =
  let where = Option.map (fun (gv, f) -> (gv, dnf pos (nnf f))) r.Ast.where in
  match r.Ast.op with
  | Ast.R_aggregate "forall" ->
      (* forall(x: B)  ≡  not exists(x: not B), realized by aggregating
         [exists] over the negated body and flipping the boolean result. *)
      let neg_body = nnf (Ast.F_not r.Ast.body) in
      {
        result_vars = r.Ast.result_vars;
        op = CR_aggregate Ram.Exists;
        negate_result = true;
        arg_vars = [];
        binding_vars = r.Ast.binding_vars;
        body = dnf pos neg_body;
        where;
      }
  | Ast.R_aggregate name ->
      {
        result_vars = r.Ast.result_vars;
        op = CR_aggregate (aggregator_of_name pos name);
        negate_result = false;
        arg_vars = [];
        binding_vars = r.Ast.binding_vars;
        body = dnf pos (nnf r.Ast.body);
        where;
      }
  | Ast.R_arg_extremum (name, arg_vars) ->
      {
        result_vars = r.Ast.result_vars;
        op = CR_aggregate (aggregator_of_name pos name);
        negate_result = false;
        arg_vars;
        binding_vars = r.Ast.binding_vars;
        body = dnf pos (nnf r.Ast.body);
        where;
      }
  | Ast.R_sampler (name, k) ->
      {
        result_vars = r.Ast.result_vars;
        op = CR_sampler (sampler_of pos name k);
        negate_result = false;
        arg_vars = [];
        binding_vars = r.Ast.binding_vars;
        body = dnf pos (nnf r.Ast.body);
        where;
      }

(* ---- program lowering ------------------------------------------------------------------ *)

let default_loader (_ : string) : string option = None

let desugar ?(load = default_loader) (program : Ast.program) : t =
  let rules = ref [] in
  let facts = ref [] in
  let rel_decls = ref [] in
  let type_aliases = ref [] in
  let queries = ref [] in
  let query_atoms = ref [] in
  let const_env = ref [] in
  let next_me_group = ref 0 in
  let next_aux = ref 0 in
  let fresh_aux prefix =
    let name = Fmt.str "__%s_%d" prefix !next_aux in
    incr next_aux;
    name
  in
  let imported = Hashtbl.create 4 in
  let rec process_decl (d : Ast.decl) =
    let pos = d.Ast.pos in
    match d.Ast.item with
    | Ast.I_import file ->
        if not (Hashtbl.mem imported file) then begin
          Hashtbl.replace imported file ();
          match load file with
          | Some src -> (
              match Parser.parse_program src with
              | prog -> List.iter process_decl prog
              | exception Parser.Parse_error (msg, p) ->
                  raise (Front_error (Fmt.str "in %s: %s" file msg, p)))
          | None -> raise (Front_error (Fmt.str "cannot import %S" file, pos))
        end
    | Ast.I_rel_type { name; fields } -> rel_decls := (name, fields) :: !rel_decls
    | Ast.I_type_alias { name; target } -> type_aliases := (name, target) :: !type_aliases
    | Ast.I_subtype { name; super } ->
        (* Subtype declarations are treated as aliases of the supertype. *)
        type_aliases := (name, super) :: !type_aliases
    | Ast.I_const decls ->
        List.iter
          (fun (name, ty, e) ->
            let e = subst_expr !const_env e in
            let e = match ty with Some ty -> Ast.E_cast (e, ty) | None -> e in
            const_env := (name, e) :: !const_env)
          decls
    | Ast.I_fact { tag; atom } ->
        let atom = subst_atom !const_env atom in
        facts :=
          { pred = atom.Ast.pred; prob = tag; me_group = None; args = atom.Ast.args; fact_pos = pos }
          :: !facts
    | Ast.I_fact_set { pred; segments } ->
        List.iter
          (fun segment ->
            let me_group =
              if List.length segment > 1 then begin
                let g = !next_me_group in
                incr next_me_group;
                Some g
              end
              else None
            in
            List.iter
              (fun { Ast.ftag; fargs } ->
                let args = List.map (subst_expr !const_env) fargs in
                facts := { pred; prob = ftag; me_group; args; fact_pos = pos } :: !facts)
              segment)
          segments
    | Ast.I_rule { tag; head; body } ->
        let head = subst_atom !const_env head in
        let body = subst_formula !const_env body in
        let clauses = dnf pos (nnf body) in
        let clauses =
          match tag with
          | None -> clauses
          | Some prob ->
              (* Probabilistic rule: guard every disjunct with a fresh tagged
                 nullary fact (paper Sec. 3.3). *)
              let aux = fresh_aux "rule_tag" in
              facts :=
                { pred = aux; prob = Some prob; me_group = None; args = []; fact_pos = pos }
                :: !facts;
              List.map (fun c -> L_pos { Ast.pred = aux; args = [] } :: c) clauses
        in
        List.iter (fun c -> rules := { head; body = c; rule_pos = pos } :: !rules) clauses
    | Ast.I_query name -> queries := name :: !queries
    | Ast.I_query_atom atom ->
        queries := atom.Ast.pred :: !queries;
        query_atoms := (subst_atom !const_env atom, pos) :: !query_atoms
  in
  List.iter process_decl program;
  {
    rules = List.rev !rules;
    facts = List.rev !facts;
    rel_decls = List.rev !rel_decls;
    type_aliases = List.rev !type_aliases;
    queries = List.rev !queries;
    query_atoms = List.rev !query_atoms;
  }

(* ---- safety (boundedness) check ------------------------------------------------------------ *)

module SSet = Set.Make (String)

(** Variables bound by a clause: positive-atom variable arguments, foreign
    predicate outputs, equality constraints [v == e] with [e] bound, and
    reduce result variables.  Iterated to a fixed point. *)
let bound_vars_of_clause (clause : clause) : SSet.t =
  let atoms_vars =
    List.concat_map
      (function
        | L_pos a ->
            List.concat_map
              (function Ast.E_var v -> [ v ] | _ -> [])
              a.Ast.args
        | _ -> [])
      clause
  in
  let bound = ref (SSet.of_list atoms_vars) in
  let rec reduce_bound (r : creduce) =
    (* Result variables, explicit group-by variables, and variables bound in
       every disjunct of the aggregation body (they surface as implicit
       group-by columns when referenced outside, paper Sec. 3.3). *)
    let body_bound =
      match List.map clause_bound r.body with
      | [] -> SSet.empty
      | first :: rest -> List.fold_left SSet.inter first rest
    in
    SSet.union
      (SSet.of_list r.result_vars)
      (SSet.union body_bound
         (match r.where with Some (gv, _) -> SSet.of_list gv | None -> SSet.empty))
  and clause_bound (clause : clause) =
    List.fold_left
      (fun acc lit ->
        match lit with
        | L_pos a ->
            SSet.union acc
              (SSet.of_list
                 (List.concat_map (function Ast.E_var v -> [ v ] | _ -> []) a.Ast.args))
        | L_reduce r -> SSet.union acc (reduce_bound r)
        | _ -> acc)
      SSet.empty clause
  in
  List.iter
    (function L_reduce r -> bound := SSet.union !bound (reduce_bound r) | _ -> ())
    clause;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (function
        | L_cond (Ast.E_binop (Foreign.Eq, Ast.E_var v, e))
          when (not (SSet.mem v !bound))
               && List.for_all (fun w -> SSet.mem w !bound) (Ast.expr_vars e) ->
            bound := SSet.add v !bound;
            changed := true
        | L_cond (Ast.E_binop (Foreign.Eq, e, Ast.E_var v))
          when (not (SSet.mem v !bound))
               && List.for_all (fun w -> SSet.mem w !bound) (Ast.expr_vars e) ->
            bound := SSet.add v !bound;
            changed := true
        | _ -> ())
      clause
  done;
  !bound

let check_rule_safety (r : crule) =
  let bound = bound_vars_of_clause r.body in
  (* Head variables must be bound. *)
  List.iter
    (fun v ->
      if not (SSet.mem v bound) then
        raise
          (Front_error
             (Fmt.str "unbound variable %S in head of rule for %s" v r.head.Ast.pred, r.rule_pos)))
    (Ast.atom_vars r.head);
  (* Negated atoms may only mention bound variables or wildcards. *)
  List.iter
    (function
      | L_neg a ->
          List.iter
            (fun v ->
              if not (SSet.mem v bound) then
                raise
                  (Front_error
                     ( Fmt.str "variable %S in negated atom %s is not bound by a positive atom" v
                         a.Ast.pred,
                       r.rule_pos )))
            (Ast.atom_vars a)
      | _ -> ())
    r.body

let check_safety (t : t) = List.iter check_rule_safety t.rules
