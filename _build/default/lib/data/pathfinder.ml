(** Synthetic Pathfinder (paper Sec. 6.1, Appendix C.3; from the Long Range
    Arena [Tay et al. 2020]).

    Following the paper's architecture, the image is abstracted to a
    grid-based connectivity graph: conceptual "dots" at grid nodes and
    conceptual "dashes" on the edges between 4-adjacent nodes.  A sample
    places two marked dots and a set of present dashes; the label says
    whether the dots are connected through present dashes.  Positive samples
    draw a random walk between the dots (plus distractor dashes); negatives
    drop an edge of every connecting path.  Each edge/dot is perceived as a
    noisy prototype of present/absent, so the network must learn local
    presence detection while supervision is only the global connectivity
    bit.  [grid] defaults to 4 (the Path flavor); use a larger grid for
    Path-X-style difficulty. *)

open Scallop_tensor

type t = {
  grid : int;
  edges : (int * int) array;  (** undirected, node ids are [y*grid+x] *)
  proto : Proto.t;  (** 2 classes: absent / present *)
  rng : Scallop_utils.Rng.t;
}

let node grid x y = (y * grid) + x

let make_edges grid =
  let acc = ref [] in
  for y = 0 to grid - 1 do
    for x = 0 to grid - 1 do
      if x + 1 < grid then acc := (node grid x y, node grid (x + 1) y) :: !acc;
      if y + 1 < grid then acc := (node grid x y, node grid x (y + 1)) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

let create ?(grid = 4) ?(noise = 0.4) ?(dim = 12) ~seed () =
  let rng = Scallop_utils.Rng.create seed in
  { grid; edges = make_edges grid; proto = Proto.create ~noise ~rng ~classes:2 ~dim (); rng }

type sample = {
  dots : int * int;
  dashes : bool array;  (** aligned with [t.edges] *)
  edge_images : Nd.t list;
  connected : bool;
}

let neighbors t v =
  Array.to_list t.edges
  |> List.filter_map (fun (a, b) -> if a = v then Some b else if b = v then Some a else None)

let connected_via t (dashes : bool array) a b =
  let n = t.grid * t.grid in
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add a queue;
  seen.(a) <- true;
  let found = ref false in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if v = b then found := true;
    Array.iteri
      (fun ei (x, y) ->
        if dashes.(ei) then begin
          let other = if x = v then Some y else if y = v then Some x else None in
          match other with
          | Some w when not seen.(w) ->
              seen.(w) <- true;
              Queue.add w queue
          | _ -> ()
        end)
      t.edges
  done;
  !found

let sample t : sample =
  let n = t.grid * t.grid in
  let a = Scallop_utils.Rng.int t.rng n in
  let b = ref (Scallop_utils.Rng.int t.rng n) in
  while !b = a do
    b := Scallop_utils.Rng.int t.rng n
  done;
  let b = !b in
  let dashes = Array.make (Array.length t.edges) false in
  (* distractor dashes *)
  Array.iteri (fun i _ -> if Scallop_utils.Rng.float t.rng < 0.2 then dashes.(i) <- true) t.edges;
  let want_connected = Scallop_utils.Rng.bool t.rng in
  if want_connected then begin
    (* random walk from a to b, turning its edges on *)
    let v = ref a in
    let steps = ref 0 in
    while !v <> b && !steps < 4 * n do
      incr steps;
      let nbrs = neighbors t !v in
      (* bias the walk towards b *)
      let bx = b mod t.grid and by = b / t.grid in
      let score w =
        let wx = w mod t.grid and wy = w / t.grid in
        -.(abs_float (float_of_int (wx - bx)) +. abs_float (float_of_int (wy - by)))
      in
      let w =
        if Scallop_utils.Rng.float t.rng < 0.7 then
          List.fold_left (fun acc u -> if score u > score acc then u else acc) (List.hd nbrs) nbrs
        else Scallop_utils.Rng.choose t.rng nbrs
      in
      Array.iteri
        (fun ei (x, y) -> if (x = !v && y = w) || (y = !v && x = w) then dashes.(ei) <- true)
        t.edges;
      v := w
    done
  end
  else begin
    (* sever all connections: greedily remove dashes on paths *)
    let guard = ref 0 in
    while connected_via t dashes a b && !guard < 200 do
      incr guard;
      let on = ref [] in
      Array.iteri (fun i d -> if d then on := i :: !on) dashes;
      match !on with
      | [] -> ()
      | l -> dashes.(List.nth l (Scallop_utils.Rng.int t.rng (List.length l))) <- false
    done
  end;
  let connected = connected_via t dashes a b in
  let edge_images =
    Array.to_list (Array.mapi (fun i _ -> Proto.sample t.proto t.rng (if dashes.(i) then 1 else 0)) t.edges)
  in
  { dots = (a, b); dashes; edge_images; connected }

let dataset t n = List.init n (fun _ -> sample t)
