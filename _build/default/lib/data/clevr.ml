(** Synthetic CLEVR: compositional visual question answering
    (paper Sec. 6.1, Appendix C.7; from [Johnson et al. 2017]).

    A scene holds objects with shape/color/material/size attributes and 2-D
    positions inducing spatial relations; questions are programs in a
    CLEVR-DSL fragment (filter chains ending in count / exists / attribute
    query / numeric comparison).  Object attributes are perceived as noisy
    prototypes per attribute family; the DSL program is structured input
    (the paper extracts it from NL with a BiLSTM — substitution documented
    in DESIGN.md). *)

open Scallop_tensor

let shapes = [| "cube"; "sphere"; "cylinder" |]
let colors = [| "red"; "green"; "blue"; "yellow"; "gray"; "purple"; "cyan"; "brown" |]
let materials = [| "rubber"; "metal" |]
let sizes = [| "small"; "large" |]

type obj = {
  oid : int;
  shape : string;
  color : string;
  material : string;
  size : string;
  x : float;
  y : float;
}

type scene = { objects : obj list }

(** CLEVR-DSL fragment (Appendix C.7 / Fig. 32). *)
type filter_expr =
  | Scene
  | Filter_shape of filter_expr * string
  | Filter_color of filter_expr * string
  | Filter_material of filter_expr * string
  | Filter_size of filter_expr * string
  | Relate of filter_expr * string  (** objects in relation to the (unique) result *)

type question =
  | Count of filter_expr
  | Exists of filter_expr
  | Query_attr of string * filter_expr  (** attribute of the unique object *)
  | Greater_than of filter_expr * filter_expr
  | Less_than of filter_expr * filter_expr
  | Equal_count of filter_expr * filter_expr

type answer = A_int of int | A_bool of bool | A_str of string

type t = {
  rng : Scallop_utils.Rng.t;
  shape_proto : Proto.t;
  color_proto : Proto.t;
  material_proto : Proto.t;
  size_proto : Proto.t;
}

let create ?(noise = 0.35) ?(dim = 12) ~seed () =
  let rng = Scallop_utils.Rng.create seed in
  {
    rng;
    shape_proto = Proto.create ~noise ~rng ~classes:(Array.length shapes) ~dim ();
    color_proto = Proto.create ~noise ~rng ~classes:(Array.length colors) ~dim ();
    material_proto = Proto.create ~noise ~rng ~classes:(Array.length materials) ~dim ();
    size_proto = Proto.create ~noise ~rng ~classes:(Array.length sizes) ~dim ();
  }

let gen_scene ?(min_objects = 3) ?(max_objects = 6) t : scene =
  let n = min_objects + Scallop_utils.Rng.int t.rng (max_objects - min_objects + 1) in
  let pick arr = arr.(Scallop_utils.Rng.int t.rng (Array.length arr)) in
  {
    objects =
      List.init n (fun oid ->
          {
            oid;
            shape = pick shapes;
            color = pick colors;
            material = pick materials;
            size = pick sizes;
            x = Scallop_utils.Rng.float t.rng;
            y = Scallop_utils.Rng.float t.rng;
          });
  }

(** Spatial relations: left/right by x, front/behind by y. *)
let relations_of (s : scene) : (string * int * int) list =
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          if a.oid = b.oid then []
          else
            (if a.x < b.x then [ ("left", b.oid, a.oid) ] else [])
            @ if a.y < b.y then [ ("front", b.oid, a.oid) ] else [])
        s.objects)
    s.objects

(* ---- reference evaluator (ground truth) --------------------------------------- *)

let rec eval_filter (s : scene) = function
  | Scene -> s.objects
  | Filter_shape (f, v) -> List.filter (fun o -> o.shape = v) (eval_filter s f)
  | Filter_color (f, v) -> List.filter (fun o -> o.color = v) (eval_filter s f)
  | Filter_material (f, v) -> List.filter (fun o -> o.material = v) (eval_filter s f)
  | Filter_size (f, v) -> List.filter (fun o -> o.size = v) (eval_filter s f)
  | Relate (f, r) -> (
      match eval_filter s f with
      | [ anchor ] ->
          List.filter
            (fun o ->
              o.oid <> anchor.oid
              &&
              match r with
              | "left" -> o.x < anchor.x
              | "right" -> o.x > anchor.x
              | "front" -> o.y < anchor.y
              | "behind" -> o.y > anchor.y
              | _ -> false)
            s.objects
      | _ -> [])

let eval_question (s : scene) = function
  | Count f -> A_int (List.length (eval_filter s f))
  | Exists f -> A_bool (eval_filter s f <> [])
  | Query_attr (attr, f) -> (
      match eval_filter s f with
      | [ o ] ->
          A_str
            (match attr with
            | "shape" -> o.shape
            | "color" -> o.color
            | "material" -> o.material
            | _ -> o.size)
      | _ -> A_str "invalid")
  | Greater_than (a, b) ->
      A_bool (List.length (eval_filter s a) > List.length (eval_filter s b))
  | Less_than (a, b) -> A_bool (List.length (eval_filter s a) < List.length (eval_filter s b))
  | Equal_count (a, b) ->
      A_bool (List.length (eval_filter s a) = List.length (eval_filter s b))

(* ---- question generation ------------------------------------------------------- *)

let gen_filter t depth : filter_expr =
  let pick arr = arr.(Scallop_utils.Rng.int t.rng (Array.length arr)) in
  let rec go depth acc =
    if depth = 0 then acc
    else
      let acc =
        match Scallop_utils.Rng.int t.rng 4 with
        | 0 -> Filter_shape (acc, pick shapes)
        | 1 -> Filter_color (acc, pick colors)
        | 2 -> Filter_material (acc, pick materials)
        | _ -> Filter_size (acc, pick sizes)
      in
      go (depth - 1) acc
  in
  go depth Scene

let gen_question t : question =
  let f () = gen_filter t (1 + Scallop_utils.Rng.int t.rng 2) in
  match Scallop_utils.Rng.int t.rng 5 with
  | 0 -> Count (f ())
  | 1 -> Exists (f ())
  | 2 ->
      let attr = [| "shape"; "color"; "material"; "size" |] in
      Query_attr (attr.(Scallop_utils.Rng.int t.rng 4), f ())
  | 3 -> Greater_than (f (), f ())
  | _ -> Equal_count (f (), f ())

type sample = {
  scene : scene;
  question : question;
  answer : answer;
  (* per-object perceived attribute images *)
  shape_images : Nd.t list;
  color_images : Nd.t list;
  material_images : Nd.t list;
  size_images : Nd.t list;
}

let index arr v = Array.to_list arr |> List.mapi (fun i x -> (x, i)) |> List.assoc v

let sample t : sample =
  let scene = gen_scene t in
  (* avoid degenerate query-attr questions with non-unique filters *)
  let rec pick_q tries =
    let q = gen_question t in
    match (q, eval_question scene q) with
    | Query_attr _, A_str "invalid" when tries < 20 -> pick_q (tries + 1)
    | _ -> q
  in
  let question = pick_q 0 in
  {
    scene;
    question;
    answer = eval_question scene question;
    shape_images =
      List.map (fun o -> Proto.sample t.shape_proto t.rng (index shapes o.shape)) scene.objects;
    color_images =
      List.map (fun o -> Proto.sample t.color_proto t.rng (index colors o.color)) scene.objects;
    material_images =
      List.map
        (fun o -> Proto.sample t.material_proto t.rng (index materials o.material))
        scene.objects;
    size_images =
      List.map (fun o -> Proto.sample t.size_proto t.rng (index sizes o.size)) scene.objects;
  }

let dataset t n = List.init n (fun _ -> sample t)

let answer_to_string = function
  | A_int n -> string_of_int n
  | A_bool b -> string_of_bool b
  | A_str s -> s
