(** Synthetic MNIST for the MNIST-R test suite (paper Sec. 6.1).

    Ten digit classes over the {!Proto} substrate; task datasets pair k
    digit images with the task's ground-truth output (sum, comparison,
    negation, count) while withholding the digit labels — algorithmic
    supervision only. *)

open Scallop_tensor

type t = { proto : Proto.t; rng : Scallop_utils.Rng.t }

let create ?(noise = 0.5) ?(dim = 16) ~seed () =
  let rng = Scallop_utils.Rng.create seed in
  { proto = Proto.create ~noise ~rng ~classes:10 ~dim (); rng }

type sample = { images : Nd.t list; digits : int list; target : int }

let sample_digits t n =
  let digits = List.init n (fun _ -> Scallop_utils.Rng.int t.rng 10) in
  let images = List.map (Proto.sample t.proto t.rng) digits in
  (digits, images)

(** MNIST-R subtasks.  [target] encodes the task output as an integer
    (booleans as 0/1). *)
type task = Sum2 | Sum3 | Sum4 | Less_than | Not_3_or_4 | Count_3 | Count_3_or_4

let task_name = function
  | Sum2 -> "sum2"
  | Sum3 -> "sum3"
  | Sum4 -> "sum4"
  | Less_than -> "less-than"
  | Not_3_or_4 -> "not-3-or-4"
  | Count_3 -> "count-3"
  | Count_3_or_4 -> "count-3-or-4"

let all_tasks = [ Sum2; Sum3; Sum4; Less_than; Not_3_or_4; Count_3; Count_3_or_4 ]

let num_images = function
  | Sum2 -> 2
  | Sum3 -> 3
  | Sum4 -> 4
  | Less_than -> 2
  | Not_3_or_4 -> 1
  | Count_3 | Count_3_or_4 -> 8

(** Output domain size of a task (for candidate enumeration). *)
let num_outputs = function
  | Sum2 -> 19
  | Sum3 -> 28
  | Sum4 -> 37
  | Less_than -> 2
  | Not_3_or_4 -> 2
  | Count_3 | Count_3_or_4 -> 9

let target_of task digits =
  match (task, digits) with
  | Sum2, [ a; b ] -> a + b
  | Sum3, [ a; b; c ] -> a + b + c
  | Sum4, [ a; b; c; d ] -> a + b + c + d
  | Less_than, [ a; b ] -> if a < b then 1 else 0
  | Not_3_or_4, [ a ] -> if a <> 3 && a <> 4 then 1 else 0
  | Count_3, ds -> List.length (List.filter (( = ) 3) ds)
  | Count_3_or_4, ds -> List.length (List.filter (fun d -> d = 3 || d = 4) ds)
  | _ -> invalid_arg "Mnist.target_of: wrong digit count"

let sample t task : sample =
  let digits, images = sample_digits t (num_images task) in
  { images; digits; target = target_of task digits }

let dataset t task n = List.init n (fun _ -> sample t task)
