(** Synthetic VQAR: visual question answering with a common-sense knowledge
    base (paper Sec. 6.1; from the GQA-based setup with [Gao et al. 2019]).

    Scenes are graphs of named objects with attributes and pairwise
    relations; queries are programmatic ("retrieve objects that are-a X,
    have attribute A, and stand in relation R to an object that is-a Y");
    and the structured common-sense KB is an is-a taxonomy over object
    names.  Object names/attributes/relations are perceived as noisy
    prototypes; the KB and the query are structured inputs (starred in
    paper Table 2). *)

open Scallop_tensor

(* A small is-a taxonomy: leaf names are what the perception model predicts. *)
let taxonomy =
  [
    ("poodle", "dog"); ("beagle", "dog"); ("dog", "animal"); ("tabby", "cat");
    ("siamese", "cat"); ("cat", "animal"); ("sparrow", "bird"); ("eagle", "bird");
    ("bird", "animal"); ("oak", "tree"); ("pine", "tree"); ("tree", "plant");
    ("rose", "flower"); ("tulip", "flower"); ("flower", "plant"); ("sedan", "car");
    ("truck", "vehicle"); ("car", "vehicle"); ("animal", "entity"); ("plant", "entity");
    ("vehicle", "entity");
  ]

let leaf_names =
  [| "poodle"; "beagle"; "tabby"; "siamese"; "sparrow"; "eagle"; "oak"; "pine"; "rose";
     "tulip"; "sedan"; "truck" |]

let attributes = [| "small"; "large"; "dark"; "light"; "old"; "young" |]
let rel_names = [| "near"; "on"; "behind"; "holding" |]

(** Transitive closure of is-a from a leaf name. *)
let rec ancestors name =
  match List.assoc_opt name taxonomy with
  | None -> [ name ]
  | Some parent -> name :: ancestors parent

type obj = { oid : int; name : string; attrs : string list }
type scene = { objects : obj list; rels : (string * int * int) list }

(** Queries: retrieve object ids satisfying the constraints. *)
type query =
  | Q_is_a of string  (** objects whose name is-a the given category *)
  | Q_attr of string * string  (** is-a category with a required attribute *)
  | Q_rel of string * string * string
      (** objects is-a cat1 standing in rel to some object is-a cat2 *)

type t = {
  rng : Scallop_utils.Rng.t;
  name_proto : Proto.t;
  attr_proto : Proto.t;
  rel_proto : Proto.t;
}

let create ?(noise = 0.35) ?(dim = 16) ~seed () =
  let rng = Scallop_utils.Rng.create seed in
  {
    rng;
    name_proto = Proto.create ~noise ~rng ~classes:(Array.length leaf_names) ~dim ();
    attr_proto = Proto.create ~noise ~rng ~classes:(Array.length attributes) ~dim ();
    rel_proto = Proto.create ~noise ~rng ~classes:(Array.length rel_names) ~dim ();
  }

let gen_scene ?(min_objects = 3) ?(max_objects = 6) t : scene =
  let n = min_objects + Scallop_utils.Rng.int t.rng (max_objects - min_objects + 1) in
  let pick arr = arr.(Scallop_utils.Rng.int t.rng (Array.length arr)) in
  let objects =
    List.init n (fun oid ->
        let attrs =
          Array.to_list attributes
          |> List.filter (fun _ -> Scallop_utils.Rng.float t.rng < 0.3)
        in
        { oid; name = pick leaf_names; attrs })
  in
  let rels =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a.oid <> b.oid && Scallop_utils.Rng.float t.rng < 0.25 then
              Some (pick rel_names, a.oid, b.oid)
            else None)
          objects)
      objects
  in
  { objects; rels }

let eval_query (s : scene) (q : query) : int list =
  let is_a o cat = List.mem cat (ancestors o.name) in
  match q with
  | Q_is_a cat -> List.filter_map (fun o -> if is_a o cat then Some o.oid else None) s.objects
  | Q_attr (cat, attr) ->
      List.filter_map
        (fun o -> if is_a o cat && List.mem attr o.attrs then Some o.oid else None)
        s.objects
  | Q_rel (cat1, r, cat2) ->
      List.filter_map
        (fun o ->
          if
            is_a o cat1
            && List.exists
                 (fun (r', a, b) ->
                   r' = r && a = o.oid
                   && List.exists (fun o2 -> o2.oid = b && is_a o2 cat2) s.objects)
                 s.rels
          then Some o.oid
          else None)
        s.objects

let categories =
  [| "dog"; "cat"; "bird"; "animal"; "tree"; "flower"; "plant"; "vehicle"; "entity"; "car" |]

let gen_query t : query =
  let pick arr = arr.(Scallop_utils.Rng.int t.rng (Array.length arr)) in
  match Scallop_utils.Rng.int t.rng 3 with
  | 0 -> Q_is_a (pick categories)
  | 1 -> Q_attr (pick categories, pick attributes)
  | _ -> Q_rel (pick categories, pick rel_names, pick categories)

type sample = {
  scene : scene;
  query : query;
  answer : int list;
  name_images : Nd.t list;  (** one per object *)
}

let index arr v = Array.to_list arr |> List.mapi (fun i x -> (x, i)) |> List.assoc v

let sample t : sample =
  let scene = gen_scene t in
  let query = gen_query t in
  {
    scene;
    query;
    answer = eval_query scene query;
    name_images =
      List.map
        (fun o -> Proto.sample t.name_proto t.rng (index leaf_names o.name))
        scene.objects;
  }

let dataset t n = List.init n (fun _ -> sample t)
