(** Synthetic Mugen: video–text alignment (paper Sec. 6.1, Appendix C.6;
    from [Hayes et al. 2022]).

    A "video" is a sequence of frames, each showing the controlled character
    performing an (action, modifier) pair; the aligned "text" is the
    sequence of (action, modifier) expressions obtained by collapsing
    consecutive repeats.  Frames are perceived as noisy prototypes of their
    (action, modifier) class; the text side is structured (the paper
    extracts it from NL with rules).  Retrieval tasks pair one text with a
    pool of videos (TVR) or vice versa (VTR). *)

open Scallop_tensor

let actions = [| "walk"; "jump"; "climb"; "collect"; "kill" |]

(** Modifiers compatible with each action. *)
let mods_of_action = function
  | "walk" | "jump" -> [| "left"; "right" |]
  | "climb" -> [| "up"; "down" |]
  | "collect" -> [| "coin"; "gem" |]
  | "kill" -> [| "face"; "barnacle" |]
  | _ -> [||]

(** Flattened (action, mod) class list — the perception classes. *)
let classes =
  Array.to_list actions
  |> List.concat_map (fun a -> Array.to_list (mods_of_action a) |> List.map (fun m -> (a, m)))
  |> Array.of_list

let num_classes = Array.length classes

let class_id (a, m) =
  let rec go i = if classes.(i) = (a, m) then i else go (i + 1) in
  go 0

type t = { rng : Scallop_utils.Rng.t; proto : Proto.t }

let create ?(noise = 0.4) ?(dim = 16) ~seed () =
  let rng = Scallop_utils.Rng.create seed in
  { rng; proto = Proto.create ~noise ~rng ~classes:num_classes ~dim () }

type sample = {
  frames : (string * string) list;  (** per-frame ground truth *)
  frame_images : Nd.t list;
  text : (string * string) list;  (** collapsed event expressions *)
  aligned : bool;
}

let collapse frames =
  List.fold_left
    (fun acc f -> match acc with x :: _ when x = f -> acc | _ -> f :: acc)
    [] frames
  |> List.rev

let gen_frames t len =
  (* segments of 1-3 identical frames *)
  let rec go acc remaining =
    if remaining <= 0 then List.rev acc
    else begin
      let c = classes.(Scallop_utils.Rng.int t.rng num_classes) in
      let seg = 1 + Scallop_utils.Rng.int t.rng (min 3 remaining) in
      go (List.init seg (fun _ -> c) @ acc) (remaining - seg)
    end
  in
  go [] len

let sample ?(len = 6) t : sample =
  let frames = gen_frames t len in
  let aligned = Scallop_utils.Rng.bool t.rng in
  let text =
    if aligned then collapse frames
    else begin
      (* text from a different video; re-roll until it differs *)
      let rec other () =
        let alt = collapse (gen_frames t len) in
        if alt = collapse frames then other () else alt
      in
      other ()
    end
  in
  let frame_images = List.map (fun c -> Proto.sample t.proto t.rng (class_id c)) frames in
  { frames; frame_images; text; aligned }

(** Retrieval pool: one aligned video + (pool-1) distractors for a text. *)
let retrieval_pool ?(len = 6) ?(pool = 8) t =
  let target = sample ~len t in
  let target = { target with text = collapse target.frames; aligned = true } in
  let distractors =
    List.init (pool - 1) (fun _ ->
        let s = sample ~len t in
        { s with text = target.text; aligned = false })
  in
  (target, distractors)

let dataset ?len t n = List.init n (fun _ -> sample ?len t)
