(** Synthetic Hand-Written Formula dataset (paper Sec. 6.1, from
    [Li et al. 2020]).

    A formula is a sequence of symbols from the 14-class alphabet
    0-9 + - × ÷, well-formed by the grammar [digit (op digit)*] with length
    1–7 and no division by zero; the target is the evaluated rational value
    (× ÷ bind tighter than + −).  Each symbol is perceived as a noisy
    prototype image. *)

open Scallop_tensor

let symbols = [| "0"; "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8"; "9"; "+"; "-"; "*"; "/" |]
let num_symbols = Array.length symbols
let symbol_index s = Array.to_list symbols |> List.mapi (fun i x -> (x, i)) |> List.assoc s

type t = { proto : Proto.t; rng : Scallop_utils.Rng.t }

let create ?(noise = 0.35) ?(dim = 16) ~seed () =
  let rng = Scallop_utils.Rng.create seed in
  { proto = Proto.create ~noise ~rng ~classes:num_symbols ~dim (); rng }

type sample = { images : Nd.t list; syms : string list; value : float }

(** Evaluate a token list with standard precedence.  Total: malformed
    sequences (as predicted by an untrained model) and division by zero
    yield [None]. *)
let eval_formula (syms : string list) : float option =
  let ( let* ) = Option.bind in
  let num d = float_of_string_opt d in
  (* split into terms at + and -, evaluate * / within each term *)
  let rec eval_term acc = function
    | [] -> Some (acc, [])
    | "*" :: d :: rest ->
        let* dv = num d in
        eval_term (acc *. dv) rest
    | "/" :: d :: rest ->
        let* dv = num d in
        if dv = 0.0 then None else eval_term (acc /. dv) rest
    | rest -> Some (acc, rest)
  in
  let rec eval_expr acc = function
    | [] -> Some acc
    | "+" :: d :: rest ->
        let* dv = num d in
        let* v, rest' = eval_term dv rest in
        eval_expr (acc +. v) rest'
    | "-" :: d :: rest ->
        let* dv = num d in
        let* v, rest' = eval_term dv rest in
        eval_expr (acc -. v) rest'
    | _ -> None
  in
  match syms with
  | d :: rest ->
      let* dv = num d in
      let* v, rest' = eval_term dv rest in
      eval_expr v rest'
  | [] -> None

(** Generate a well-formed formula of odd length [len]: a digit followed by
    operator-digit pairs.  Division never has a zero denominator. *)
let gen_formula t len : string list =
  let digit ?(nonzero = false) () =
    let d = if nonzero then 1 + Scallop_utils.Rng.int t.rng 9 else Scallop_utils.Rng.int t.rng 10 in
    string_of_int d
  in
  let ops = [| "+"; "-"; "*"; "/" |] in
  let rec go acc remaining =
    if remaining <= 0 then List.rev acc
    else begin
      let op = ops.(Scallop_utils.Rng.int t.rng 4) in
      let d = digit ~nonzero:(op = "/") () in
      go (d :: op :: acc) (remaining - 2)
    end
  in
  let first = digit () in
  go [ first ] (len - 1)

let sample ?(max_len = 7) t : sample =
  (* lengths 1,3,5,7 (well-formed formulas have odd length) *)
  let choices = List.filter (fun l -> l <= max_len) [ 1; 3; 5; 7 ] in
  let len = List.nth choices (Scallop_utils.Rng.int t.rng (List.length choices)) in
  let syms = gen_formula t len in
  let value =
    match eval_formula syms with Some v -> v | None -> assert false (* no div-by-zero by construction *)
  in
  let images = List.map (fun s -> Proto.sample t.proto t.rng (symbol_index s)) syms in
  { images; syms; value }

let dataset ?max_len t n = List.init n (fun _ -> sample ?max_len t)
