(** Synthetic perception substrate.

    The paper's benchmarks perceive real images/video/text with CNNs and
    language models.  In this reproduction (see DESIGN.md, substitution 2)
    every symbol class is represented by a fixed random prototype vector and
    a percept is the prototype plus Gaussian noise.  The perception model
    must still {e learn} the class structure from end-to-end (algorithmic)
    supervision only — which is the learning problem Scallop addresses —
    while keeping data generation deterministic and fast.

    [difficulty] scales the noise; classes can also be given systematic
    confusion (a sample of class [a] drawn from class [b]'s prototype with
    some probability), which models perceptual ambiguity. *)

open Scallop_tensor

type t = {
  protos : Nd.t array;  (** one [1×dim] prototype per class *)
  dim : int;
  noise : float;
  confusion : float;  (** probability of sampling a neighboring prototype *)
}

let create ?(noise = 0.4) ?(confusion = 0.0) ~rng ~classes ~dim () =
  { protos = Array.init classes (fun _ -> Nd.randn rng [| 1; dim |]); dim; noise; confusion }

let classes t = Array.length t.protos

(** Sample a percept of class [c]. *)
let sample t rng c =
  let c' =
    if t.confusion > 0.0 && Scallop_utils.Rng.float rng < t.confusion then
      (* confuse with a random other class *)
      (c + 1 + Scallop_utils.Rng.int rng (classes t - 1)) mod classes t
    else c
  in
  Nd.map (fun x -> x +. Scallop_utils.Rng.gaussian ~sigma:t.noise rng) t.protos.(c')

(** Sample a batch of percepts for the class list, stacked row-wise. *)
let sample_batch t rng cs = Nd.stack_rows (List.map (sample t rng) cs)
