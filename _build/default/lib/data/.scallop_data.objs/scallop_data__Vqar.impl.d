lib/data/vqar.ml: Array List Nd Proto Scallop_tensor Scallop_utils
