lib/data/proto.ml: Array List Nd Scallop_tensor Scallop_utils
