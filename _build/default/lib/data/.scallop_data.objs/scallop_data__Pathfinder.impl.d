lib/data/pathfinder.ml: Array List Nd Proto Queue Scallop_tensor Scallop_utils
