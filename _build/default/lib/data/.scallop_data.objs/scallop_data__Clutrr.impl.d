lib/data/clutrr.ml: Array Fun Hashtbl List Option Proto Scallop_utils
