lib/data/hwf.ml: Array List Nd Option Proto Scallop_tensor Scallop_utils
