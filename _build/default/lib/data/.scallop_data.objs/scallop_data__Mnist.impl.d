lib/data/mnist.ml: List Nd Proto Scallop_tensor Scallop_utils
