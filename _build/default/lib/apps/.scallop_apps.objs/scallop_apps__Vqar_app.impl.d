lib/apps/vqar_app.ml: Array Autodiff Common Fun Layers Lazy List Nd Optim Programs Registry Scallop_core Scallop_data Scallop_layer Scallop_nn Scallop_tensor Scallop_utils Session Tuple Value
