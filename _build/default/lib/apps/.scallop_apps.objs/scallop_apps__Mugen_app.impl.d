lib/apps/mugen_app.ml: Array Autodiff Common Layers List Nd Optim Programs Registry Scallop_core Scallop_data Scallop_layer Scallop_nn Scallop_tensor Scallop_utils Session Tuple Value
