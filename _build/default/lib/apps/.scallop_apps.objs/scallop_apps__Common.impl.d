lib/apps/common.ml: Autodiff Fmt List Nd Optim Provenance Registry Scallop_core Scallop_tensor Scallop_utils Unix
