lib/apps/pacman_app.ml: Array Autodiff Common Float Layers List Nd Optim Programs Registry Scallop_core Scallop_envs Scallop_layer Scallop_nn Scallop_tensor Scallop_utils Session Tuple Unix Value
