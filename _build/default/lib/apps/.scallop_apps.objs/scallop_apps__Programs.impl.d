lib/apps/programs.ml: List String
