lib/apps/mnist_r.ml: Array Autodiff Common Fun Layers List Nd Optim Programs Registry Scallop_core Scallop_data Scallop_layer Scallop_nn Scallop_tensor Scallop_utils Session Tuple Value
