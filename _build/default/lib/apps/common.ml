(** Shared configuration, reporting and training utilities for the eight
    benchmark applications (paper Sec. 6.1). *)

open Scallop_tensor
open Scallop_core

type config = {
  seed : int;
  provenance : Registry.spec;
  epochs : int;
  n_train : int;
  n_test : int;
  lr : float;
}

let default_config =
  {
    seed = 1234;
    provenance = Registry.Diff_top_k_proofs_me 3;
    epochs = 3;
    n_train = 256;
    n_test = 100;
    lr = 0.01;
  }

type report = {
  task : string;
  provenance : string;
  accuracy : float;  (** test accuracy in [0,1] *)
  epoch_time : float;  (** mean wall-clock seconds per training epoch *)
  losses : float list;  (** mean training loss per epoch *)
}

let pp_report fmt r =
  Fmt.pf fmt "%-14s %-22s acc=%5.1f%%  t/epoch=%6.2fs" r.task r.provenance (100.0 *. r.accuracy)
    r.epoch_time

let provenance_name spec = Provenance.name (Registry.create spec)

(** One-hot target row for BCE training. *)
let one_hot n i = Nd.init [| 1; n |] (fun j -> if j = i then 1.0 else 0.0)

let bce = Autodiff.bce_loss ~eps:1e-6

(** Train/eval skeleton: [train_step] returns the sample loss; [eval_sample]
    returns whether the prediction was correct.  Returns the report. *)
let run_task ~task ~(config : config) ~(train_data : 'a list) ~(test_data : 'a list)
    ~(opt : Optim.t) ~(train_step : 'a -> Autodiff.t) ~(eval_sample : 'a -> bool) : report =
  let losses = ref [] in
  let times = ref [] in
  for _epoch = 1 to config.epochs do
    let t0 = Unix.gettimeofday () in
    let total = ref 0.0 in
    List.iter
      (fun sample ->
        let loss = train_step sample in
        opt.Optim.zero_grad ();
        Autodiff.backward loss;
        opt.Optim.step ();
        total := !total +. Nd.get1 (Autodiff.value loss) 0)
      train_data;
    times := (Unix.gettimeofday () -. t0) :: !times;
    losses := (!total /. float_of_int (max 1 (List.length train_data))) :: !losses
  done;
  let correct = List.length (List.filter eval_sample test_data) in
  {
    task;
    provenance = provenance_name config.provenance;
    accuracy = float_of_int correct /. float_of_int (max 1 (List.length test_data));
    epoch_time = Scallop_utils.Listx.average !times;
    losses = List.rev !losses;
  }
