(** The Scallop programs of the eight benchmark applications
    (paper Table 2 and Appendix C).  Kept verbatim as source text both to be
    compiled by the apps and to report Table 2's LoC column. *)

let mnist_sum2 =
  {|type digit_1(u32), digit_2(u32)
rel sum_2(a + b) = digit_1(a), digit_2(b)
query sum_2|}

let mnist_sum3 =
  {|type digit_1(u32), digit_2(u32), digit_3(u32)
rel sum_3(a + b + c) = digit_1(a), digit_2(b), digit_3(c)
query sum_3|}

let mnist_sum4 =
  {|type digit_1(u32), digit_2(u32), digit_3(u32), digit_4(u32)
rel sum_4(a + b + c + d) = digit_1(a), digit_2(b), digit_3(c), digit_4(d)
query sum_4|}

let mnist_less_than =
  {|type digit_1(u32), digit_2(u32)
rel less_than(a < b) = digit_1(a), digit_2(b)
query less_than|}

let mnist_not_3_or_4 =
  {|type digit(u32)
rel not_3_or_4() = not digit(3) and not digit(4)
query not_3_or_4|}

let mnist_count_3 =
  {|type digit(digit_id: u32, digit_value: u32)
rel count_3(x) :- x = count(o: digit(o, 3))
query count_3|}

let mnist_count_3_or_4 =
  {|type digit(digit_id: u32, digit_value: u32)
rel count_3_or_4(x) = x = count(o: digit(o, 3) or digit(o, 4))
query count_3_or_4|}

(* Appendix Fig. 26 *)
let hwf =
  {|type symbol(index: usize, symbol: String)
type length(n: usize)

rel digit = {"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"}

type term(value: f32, begin: usize, end_: usize)
rel term(x as f32, b, b + 1) = symbol(b, x) and digit(x)

type mult_div(value: f32, begin: usize, end_: usize)
rel mult_div(x, b, r) = term(x, b, r)
rel mult_div(x * y, b, e) = mult_div(x, b, m) and symbol(m, "*") and term(y, m + 1, e)
rel mult_div(x / y, b, e) = mult_div(x, b, m) and symbol(m, "/") and term(y, m + 1, e)

type add_minus(value: f32, begin: usize, end_: usize)
rel add_minus(x, b, r) = mult_div(x, b, r)
rel add_minus(x + y, b, e) = add_minus(x, b, m) and symbol(m, "+") and mult_div(y, m + 1, e)
rel add_minus(x - y, b, e) = add_minus(x, b, m) and symbol(m, "-") and mult_div(y, m + 1, e)

type result(value: f32)
rel result(y) = add_minus(y, 0, l) and length(l)

query result|}

(* Appendix Fig. 28, with undirected dashes made explicit *)
let pathfinder =
  {|type dash(u32, u32)
type dot(u32)

rel link(x, y) = dash(x, y) or dash(y, x)
rel path(x, y) = link(x, y) or (path(x, z) and link(z, y))
rel connected() = dot(x), dot(y), path(x, y), x != y

query connected|}

(* Appendix Fig. 29 *)
let pacman =
  {|type grid_node(x: usize, y: usize)
type actor(x: usize, y: usize)
type goal(x: usize, y: usize)
type enemy(x: usize, y: usize)

const UP = 0, DOWN = 1, RIGHT = 2, LEFT = 3

rel safe_node(x, y) = grid_node(x, y), not enemy(x, y)
rel edge(x, y, x, yp, UP) = safe_node(x, y), safe_node(x, yp), yp == y + 1
rel edge(x, y, xp, y, RIGHT) = safe_node(x, y), safe_node(xp, y), xp == x + 1
rel edge(x, y, x, yp, DOWN) = safe_node(x, y), safe_node(x, yp), yp + 1 == y
rel edge(x, y, xp, y, LEFT) = safe_node(x, y), safe_node(xp, y), xp + 1 == x

rel next_pos(xp, yp, a) = actor(x, y), edge(x, y, xp, yp, a)
rel path(x, y, x, y) = next_pos(x, y, _)
rel path(x1, y1, x3, y3) = path(x1, y1, x2, y2), edge(x2, y2, x3, y3, _)
rel next_action(a) = next_pos(x, y, a), goal(gx, gy), path(x, y, gx, gy)

rel too_many_goal() = n := count(x, y: goal(x, y)), n > 1
rel too_many_actor() = n := count(x, y: actor(x, y)), n > 1
rel violation() = too_many_goal() or too_many_actor()

query next_action
query violation|}

(* Appendix Fig. 30 *)
let clutrr =
  {|type Relation = usize

type question(sub: String, obj: String)
type kinship(rela: Relation, sub: String, obj: String)
type composition(r1: Relation, r2: Relation, r3: Relation)

rel kinship(r3, x, z) = composition(r1, r2, r3), kinship(r1, x, y), kinship(r2, y, z), x != z
rel answer(r) = question(s, o), kinship(r, s, o)

query answer|}

(* Appendix Fig. 31 *)
let mugen =
  {|type action(usize, String)
type expr(usize, String)
type expr_start(usize)
type expr_end(usize)
type action_start(usize)
type action_end(usize)

rel match_single(tid, vid, vid + 1) = expr(tid, a), action(vid, a)
rel match_sub(tid, tid, vid_start, vid_end) = match_single(tid, vid_start, vid_end)
rel match_sub(tid_start, tid_end, vid_start, vid_end) =
  match_sub(tid_start, tid_end, vid_start, vid_mid), match_single(tid_end, vid_mid, vid_end)
rel match_sub(tid_start, tid_end, vid_start, vid_end) =
  match_sub(tid_start, tid_end - 1, vid_start, vid_mid), match_single(tid_end, vid_mid, vid_end)

rel match() = expr_start(tid_start), expr_end(tid_end),
  action_start(vid_start), action_end(vid_end),
  match_sub(tid_start, tid_end, vid_start, vid_end)

query match|}

(* Appendix Fig. 32, restricted to the question fragment our generator emits *)
let clevr =
  {|type obj(o: usize)
type size(o: usize, v: String)
type color(o: usize, v: String)
type material(o: usize, v: String)
type shape(o: usize, v: String)
type relate(r: String, o1: usize, o2: usize)

type scene_expr(e: usize)
type filter_size_expr(e: usize, f: usize, v: String)
type filter_color_expr(e: usize, f: usize, v: String)
type filter_material_expr(e: usize, f: usize, v: String)
type filter_shape_expr(e: usize, f: usize, v: String)
type relate_expr(e: usize, f: usize, r: String)
type count_expr(e: usize, f: usize)
type exists_expr(e: usize, f: usize)
type query_size_expr(e: usize, f: usize)
type query_color_expr(e: usize, f: usize)
type query_material_expr(e: usize, f: usize)
type query_shape_expr(e: usize, f: usize)
type greater_than_expr(e: usize, a: usize, b: usize)
type less_than_expr(e: usize, a: usize, b: usize)
type equal_expr(e: usize, a: usize, b: usize)
type root_expr(e: usize)

rel eval_objs(e, o) = scene_expr(e), obj(o)
rel eval_objs(e, o) = filter_size_expr(e, f, s), eval_objs(f, o), size(o, s)
rel eval_objs(e, o) = filter_color_expr(e, f, c), eval_objs(f, o), color(o, c)
rel eval_objs(e, o) = filter_material_expr(e, f, m), eval_objs(f, o), material(o, m)
rel eval_objs(e, o) = filter_shape_expr(e, f, s), eval_objs(f, o), shape(o, s)
rel eval_objs(e, o) = relate_expr(e, f, r), eval_objs(f, p), relate(r, p, o), o != p

rel eval_num(e, n) = n := count(o: eval_objs(f, o) where e: count_expr(e, f))

rel eval_yn(e, b) = b := exists(o: eval_objs(f, o) where e: exists_expr(e, f))
rel eval_yn(e, x > y) = greater_than_expr(e, a, b), eval_num(a, x), eval_num(b, y)
rel eval_yn(e, x < y) = less_than_expr(e, a, b), eval_num(a, x), eval_num(b, y)
rel eval_yn(e, x == y) = equal_expr(e, a, b), eval_num(a, x), eval_num(b, y)

rel eval_query(e, s) = query_size_expr(e, f), eval_objs(f, o), size(o, s)
rel eval_query(e, c) = query_color_expr(e, f), eval_objs(f, o), color(o, c)
rel eval_query(e, m) = query_material_expr(e, f), eval_objs(f, o), material(o, m)
rel eval_query(e, s) = query_shape_expr(e, f), eval_objs(f, o), shape(o, s)

rel result(y as String) = root_expr(e), eval_yn(e, y)
rel result(y as String) = root_expr(e), eval_num(e, y)
rel result(y) = root_expr(e), eval_query(e, y)

query result|}

let vqar =
  {|type obj_name(o: usize, n: String)
type obj_attr(o: usize, a: String)
type obj_rela(r: String, o1: usize, o2: usize)
type is_a(n1: String, n2: String)

type q_is_a(c: String)
type q_attr(c: String, a: String)
type q_rel(c1: String, r: String, c2: String)

rel name_of(o, n) = obj_name(o, n)
rel name_of(o, n2) = name_of(o, n1), is_a(n1, n2)

rel answer(o) = q_is_a(c), name_of(o, c)
rel answer(o) = q_attr(c, a), name_of(o, c), obj_attr(o, a)
rel answer(o) = q_rel(c1, r, c2), name_of(o, c1), obj_rela(r, o, o2), name_of(o2, c2), o != o2

query answer|}

let loc src = List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' src))

(** Paper Table 2 rows: task name, interface relations, features used
    (Recursion / Negation / Aggregation), and program LoC. *)
let table2 =
  [
    ("MNIST-R", [ "digit(id, digit)" ], (false, true, true), loc mnist_sum2);
    ("HWF", [ "symbol(id, symbol)"; "length(len)" ], (true, false, false), loc hwf);
    ("Pathfinder", [ "dot(id)"; "dash(from, to)" ], (true, false, false), loc pathfinder);
    ("PacMan-Maze", [ "actor(x,y)"; "enemy(x,y)"; "goal(x,y)" ], (true, true, true), loc pacman);
    ("CLUTRR", [ "kinship(r,s,o)"; "question(s,o)"; "composition(r1,r2,r3)" ], (true, false, false), loc clutrr);
    ("Mugen", [ "action(frame,act)"; "expr(id,act)" ], (true, false, false), loc mugen);
    ("CLEVR", [ "size/color/material/shape(o,v)"; "relate(r,o1,o2)"; "*_expr(...)" ], (true, false, true), loc clevr);
    ("VQAR", [ "obj_name(o,n)"; "obj_attr(o,a)"; "obj_rela(r,o1,o2)"; "is_a(n1,n2)" ], (true, false, false), loc vqar);
  ]
