lib/baselines/dqn.ml: Array Autodiff Float Layers List Nd Optim Scallop_envs Scallop_nn Scallop_tensor Scallop_utils Unix
