lib/baselines/ngs.ml: Array Autodiff Common Float Layers List Nd Optim Scallop_apps Scallop_data Scallop_nn Scallop_tensor Scallop_utils Unix
