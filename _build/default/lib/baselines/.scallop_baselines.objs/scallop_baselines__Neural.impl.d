lib/baselines/neural.ml: Array Autodiff Common Layers List Nd Optim Scallop_apps Scallop_data Scallop_nn Scallop_tensor Scallop_utils
