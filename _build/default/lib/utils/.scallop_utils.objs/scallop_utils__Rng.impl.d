lib/utils/rng.ml: Array Float Int64 List
