lib/utils/graph.ml: Array List Stack
