lib/utils/listx.ml: Array List Map
