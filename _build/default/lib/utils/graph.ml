(** Small directed-graph utilities used by the stratification analysis:
    strongly connected components (Tarjan) and a topological order of the
    condensation.  Nodes are identified by integers [0 .. n-1]. *)

type t = { n : int; adj : int list array }

let create n = { n; adj = Array.make n [] }

let add_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then invalid_arg "Graph.add_edge";
  if not (List.mem v g.adj.(u)) then g.adj.(u) <- v :: g.adj.(u)

let successors g u = g.adj.(u)

(** Tarjan's algorithm.  Returns [(comp, ncomp)] where [comp.(v)] is the
    component index of node [v].  Component indices are assigned in reverse
    topological order of the condensation (i.e. if there is an edge from
    component [a] to component [b], then [a > b]). *)
let scc g =
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let comp = Array.make g.n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Iterative Tarjan to avoid stack overflow on long chains. *)
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.adj.(v);
    if lowlink.(v) = index.(v) then begin
      let continue = ref true in
      while !continue do
        let w = Stack.pop stack in
        on_stack.(w) <- false;
        comp.(w) <- !next_comp;
        if w = v then continue := false
      done;
      incr next_comp
    end
  in
  for v = 0 to g.n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (comp, !next_comp)

(** Topological order of the SCC condensation: returns component indices from
    sources to sinks (dependencies first, given edges point from dependent to
    dependency are reversed by the caller as needed).  Tarjan assigns
    components in reverse topological order, so this is just [ncomp-1 .. 0]
    reversed appropriately: an edge u->v implies comp(u) >= comp(v), so
    ascending component index is a valid dependencies-first order. *)
let condensation_order ncomp = List.init ncomp (fun i -> i)

(** Nodes grouped by component, components in ascending index order. *)
let components_of comp ncomp =
  let buckets = Array.make ncomp [] in
  Array.iteri (fun v c -> buckets.(c) <- v :: buckets.(c)) comp;
  Array.to_list (Array.map List.rev buckets)
