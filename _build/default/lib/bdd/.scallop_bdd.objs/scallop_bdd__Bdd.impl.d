lib/bdd/bdd.ml: Array Fmt Hashtbl List
