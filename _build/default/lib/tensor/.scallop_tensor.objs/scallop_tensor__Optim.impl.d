lib/tensor/optim.ml: Array Autodiff List Nd
