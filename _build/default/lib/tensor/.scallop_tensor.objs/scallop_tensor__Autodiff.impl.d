lib/tensor/autodiff.ml: Array Float Fun Hashtbl List Nd
