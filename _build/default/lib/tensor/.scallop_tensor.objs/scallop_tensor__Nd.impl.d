lib/tensor/nd.ml: Array Float Fmt List Scallop_utils
