(** Gradient-descent optimizers over {!Autodiff} parameters. *)

type t = { params : Autodiff.t list; step : unit -> unit; zero_grad : unit -> unit }

let apply_update params update =
  List.iteri
    (fun i (p : Autodiff.t) ->
      match p.Autodiff.grad with
      | None -> ()
      | Some g -> update i p g)
    params

(** Plain SGD with optional momentum. *)
let sgd ?(momentum = 0.0) ~lr (params : Autodiff.t list) : t =
  let velocity =
    List.map (fun (p : Autodiff.t) -> Nd.zeros p.Autodiff.value.Nd.shape) params
    |> Array.of_list
  in
  let step () =
    apply_update params (fun i p g ->
        if momentum > 0.0 then begin
          let v = velocity.(i) in
          Array.iteri
            (fun j gj -> v.Nd.data.(j) <- (momentum *. v.Nd.data.(j)) +. gj)
            g.Nd.data;
          Array.iteri
            (fun j vj -> p.Autodiff.value.Nd.data.(j) <- p.Autodiff.value.Nd.data.(j) -. (lr *. vj))
            v.Nd.data
        end
        else
          Array.iteri
            (fun j gj -> p.Autodiff.value.Nd.data.(j) <- p.Autodiff.value.Nd.data.(j) -. (lr *. gj))
            g.Nd.data)
  in
  { params; step; zero_grad = (fun () -> Autodiff.zero_grad params) }

(** Adam [Kingma & Ba 2015], the optimizer used by the paper's training
    setups. *)
let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr (params : Autodiff.t list) : t =
  let m = List.map (fun (p : Autodiff.t) -> Nd.zeros p.Autodiff.value.Nd.shape) params |> Array.of_list in
  let v = List.map (fun (p : Autodiff.t) -> Nd.zeros p.Autodiff.value.Nd.shape) params |> Array.of_list in
  let t = ref 0 in
  let step () =
    incr t;
    let bc1 = 1.0 -. (beta1 ** float_of_int !t) in
    let bc2 = 1.0 -. (beta2 ** float_of_int !t) in
    apply_update params (fun i p g ->
        let mi = m.(i) and vi = v.(i) in
        Array.iteri
          (fun j gj ->
            mi.Nd.data.(j) <- (beta1 *. mi.Nd.data.(j)) +. ((1.0 -. beta1) *. gj);
            vi.Nd.data.(j) <- (beta2 *. vi.Nd.data.(j)) +. ((1.0 -. beta2) *. gj *. gj);
            let mhat = mi.Nd.data.(j) /. bc1 in
            let vhat = vi.Nd.data.(j) /. bc2 in
            p.Autodiff.value.Nd.data.(j) <-
              p.Autodiff.value.Nd.data.(j) -. (lr *. mhat /. (sqrt vhat +. eps)))
          g.Nd.data)
  in
  { params; step; zero_grad = (fun () -> Autodiff.zero_grad params) }
