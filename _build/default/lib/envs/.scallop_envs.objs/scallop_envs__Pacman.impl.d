lib/envs/pacman.ml: Array Hashtbl List Nd Queue Scallop_data Scallop_tensor Scallop_utils
