(** The PacMan-Maze reinforcement-learning environment (paper Sec. 2).

    An implicit [grid × grid] arena with one actor, one goal and up to
    [max_enemies] enemies at randomized positions.  Observations are
    per-cell percepts: each cell is one of {empty, actor, goal, enemy},
    rendered as a noisy prototype vector (the paper renders a 200×200 RGB
    image that a CNN then crops per cell — our observation is the per-cell
    crop stream directly; see DESIGN.md substitutions).  The agent picks
    one of {up, down, right, left}; the episode ends on reaching the goal
    (+1 reward), hitting an enemy, or exhausting the step budget. *)

open Scallop_tensor

type cell = Empty | Actor | Goal | Enemy

type action = Up | Down | Right | Left

let all_actions = [ Up; Down; Right; Left ]

let action_index = function Up -> 0 | Down -> 1 | Right -> 2 | Left -> 3
let action_of_index = function 0 -> Up | 1 -> Down | 2 -> Right | _ -> Left
let action_name = function Up -> "up" | Down -> "down" | Right -> "right" | Left -> "left"

type t = {
  grid : int;
  max_enemies : int;
  max_steps : int;
  proto : Scallop_data.Proto.t;  (** 4 classes: Empty/Actor/Goal/Enemy *)
  rng : Scallop_utils.Rng.t;
  mutable actor : int * int;
  mutable goal : int * int;
  mutable enemies : (int * int) list;
  mutable steps : int;
  mutable done_ : bool;
}

let cell_class = function Empty -> 0 | Actor -> 1 | Goal -> 2 | Enemy -> 3

let create ?(grid = 5) ?(max_enemies = 5) ?(max_steps = 30) ?(noise = 0.3) ?(dim = 12) ~seed () =
  let rng = Scallop_utils.Rng.create seed in
  {
    grid;
    max_enemies;
    max_steps;
    proto = Scallop_data.Proto.create ~noise ~rng ~classes:4 ~dim ();
    rng;
    actor = (0, 0);
    goal = (0, 0);
    enemies = [];
    steps = 0;
    done_ = false;
  }

let cell_at t (x, y) : cell =
  if t.actor = (x, y) then Actor
  else if t.goal = (x, y) then Goal
  else if List.mem (x, y) t.enemies then Enemy
  else Empty

(** True ground-truth reachability: is there an enemy-free path from the
    actor to the goal?  Used to guarantee solvable episodes. *)
let solvable t =
  let blocked p = List.mem p t.enemies in
  let seen = Hashtbl.create 32 in
  let q = Queue.create () in
  if not (blocked t.actor) then begin
    Queue.add t.actor q;
    Hashtbl.replace seen t.actor ()
  end;
  let found = ref false in
  while not (Queue.is_empty q) do
    let (x, y) = Queue.pop q in
    if (x, y) = t.goal then found := true;
    List.iter
      (fun (dx, dy) ->
        let p = (x + dx, y + dy) in
        let px, py = p in
        if
          px >= 0 && px < t.grid && py >= 0 && py < t.grid
          && (not (blocked p))
          && not (Hashtbl.mem seen p)
        then begin
          Hashtbl.replace seen p ();
          Queue.add p q
        end)
      [ (0, 1); (0, -1); (1, 0); (-1, 0) ]
  done;
  !found

let reset t =
  let rec place () =
    let cell () = (Scallop_utils.Rng.int t.rng t.grid, Scallop_utils.Rng.int t.rng t.grid) in
    t.actor <- cell ();
    t.goal <- cell ();
    let n_enemies = Scallop_utils.Rng.int t.rng (t.max_enemies + 1) in
    t.enemies <- [];
    for _ = 1 to n_enemies do
      let e = cell () in
      if e <> t.actor && e <> t.goal && not (List.mem e t.enemies) then
        t.enemies <- e :: t.enemies
    done;
    if t.actor = t.goal || not (solvable t) then place ()
  in
  place ();
  t.steps <- 0;
  t.done_ <- false

(** Observation: one noisy percept per cell, row-major [(grid*grid) × dim]. *)
let observe t : Nd.t =
  let rows = ref [] in
  for y = t.grid - 1 downto 0 do
    for x = t.grid - 1 downto 0 do
      rows := Scallop_data.Proto.sample t.proto t.rng (cell_class (cell_at t (x, y))) :: !rows
    done
  done;
  Nd.stack_rows !rows

(** Ground-truth cell grid (for diagnostics / oracle baselines). *)
let ground_truth t : cell array array =
  Array.init t.grid (fun y -> Array.init t.grid (fun x -> cell_at t (x, y)))

type step_result = { reward : float; finished : bool }

let step t (a : action) : step_result =
  if t.done_ then { reward = 0.0; finished = true }
  else begin
    t.steps <- t.steps + 1;
    let (x, y) = t.actor in
    let nx, ny =
      match a with
      | Up -> (x, y + 1)
      | Down -> (x, y - 1)
      | Right -> (x + 1, y)
      | Left -> (x - 1, y)
    in
    let nx = max 0 (min (t.grid - 1) nx) and ny = max 0 (min (t.grid - 1) ny) in
    t.actor <- (nx, ny);
    if t.actor = t.goal then begin
      t.done_ <- true;
      { reward = 1.0; finished = true }
    end
    else if List.mem t.actor t.enemies then begin
      t.done_ <- true;
      { reward = 0.0; finished = true }
    end
    else if t.steps >= t.max_steps then begin
      t.done_ <- true;
      { reward = 0.0; finished = true }
    end
    else { reward = 0.0; finished = false }
  end
