(** PacMan path planning on a hand-built maze (paper Sec. 2, Figs. 9–10).

    Runs the planning program on exact (probability-tagged) facts — no
    neural network — and shows how the max-min-prob fixed point explores
    longer-but-safer reasoning chains (the Fig. 10 saturation story), plus
    counting enemies under uncertainty (the Fig. 9 aggregation story).

    Run with: [dune exec examples/pacman_planner.exe] *)

open Scallop_core

let grid = 5

(* The Fig. 9 maze: actor at C1=(2,0), goal at C3=(2,2) in a 3x3 corner;
   probabilistic enemies in between. *)
let maze_facts =
  let usize n = Value.int Value.USize n in
  let cells =
    List.concat_map
      (fun x -> List.map (fun y -> (Provenance.Input.prob 0.99, [| usize x; usize y |])) (Scallop_utils.Listx.range 0 grid))
      (Scallop_utils.Listx.range 0 grid)
  in
  [
    ("grid_node", cells);
    ("actor", [ (Provenance.Input.none, [| usize 2; usize 0 |]) ]);
    ("goal", [ (Provenance.Input.none, [| usize 2; usize 2 |]) ]);
    ( "enemy",
      [
        (Provenance.Input.prob 0.8, [| usize 1; usize 1 |]);
        (Provenance.Input.prob 0.9, [| usize 2; usize 1 |]);
        (Provenance.Input.prob 0.1, [| usize 3; usize 1 |]);
      ] );
  ]

let () =
  let compiled = Session.compile Scallop_apps.Programs.pacman in
  Fmt.pr "Maze: actor at (2,0), goal at (2,2); enemies at (1,1) p=0.8, (2,1) p=0.9, (3,1) p=0.1@.";
  Fmt.pr "@.Planning under max-min-prob (Fig. 10 semantics):@.";
  let result =
    Session.run ~provenance:(Registry.create Registry.Max_min_prob) compiled ~facts:maze_facts
      ~outputs:[ "next_action" ] ()
  in
  let action_name t =
    match Value.to_int (Tuple.get t 0) with
    | Some 0 -> "UP"
    | Some 1 -> "DOWN"
    | Some 2 -> "RIGHT"
    | Some 3 -> "LEFT"
    | _ -> "?"
  in
  List.iter
    (fun (t, o) -> Fmt.pr "  next_action(%s) :: %a@." (action_name t) Provenance.Output.pp o)
    (Session.output result "next_action");
  Fmt.pr "@.The best action routes around the strong enemies — going RIGHT first@.";
  Fmt.pr "(through the p=0.1 enemy at (3,1)) scores higher than pushing UP through@.";
  Fmt.pr "the p=0.9 enemy at (2,1).@.";
  (* Fig. 9: count enemies under uncertainty. *)
  Fmt.pr "@.Counting enemies in the maze (Fig. 9 worlds semantics):@.";
  let count_program =
    {|type enemy(x: usize, y: usize)
rel num_enemy(n) = n := count(x, y: enemy(x, y))
query num_enemy|}
  in
  let result =
    Session.interpret
      ~provenance:(Registry.create (Registry.Top_k_proofs 10))
      ~facts:[ List.assoc "enemy" maze_facts |> fun f -> ("enemy", f) ]
      count_program
  in
  List.iter
    (fun (t, o) -> Fmt.pr "  num_enemy%a :: %a@." Tuple.pp t Provenance.Output.pp o)
    (Session.output result "num_enemy")
