(** Quickstart: kinship reasoning, discrete and probabilistic.

    Mirrors the running example of paper Sec. 3: declare relations, add
    facts (some probabilistic and mutually exclusive), write Horn rules with
    recursion and aggregation, and execute under two different provenances
    without changing the program.

    Run with: [dune exec examples/quickstart.exe] *)

open Scallop_core

let program =
  {|
type kinship(rela: usize, sub: String, obj: String)
const FATHER = 0, MOTHER = 1, GRANDMOTHER = 2, GRANDFATHER = 3

// composition: father's mother is grandmother, etc.
rel composition = {(FATHER, MOTHER, GRANDMOTHER), (MOTHER, MOTHER, GRANDMOTHER),
                   (FATHER, FATHER, GRANDFATHER), (MOTHER, FATHER, GRANDFATHER)}

rel kinship(r3, a, c) = kinship(r1, a, b), kinship(r2, b, c), composition(r1, r2, r3)

// known facts
rel kinship = {(FATHER, "Alice", "Bob")}

// a neural network might be unsure who Bob's mother is:
rel kinship = {0.8::(MOTHER, "Bob", "Christine"); 0.2::(MOTHER, "Bob", "Diana")}

rel grandmother_of_alice(g) = kinship(GRANDMOTHER, "Alice", g)
rel num_grandmothers(n) = n := count(g: grandmother_of_alice(g))

query grandmother_of_alice
query num_grandmothers
|}

let run name provenance =
  Fmt.pr "--- %s ---@." name;
  let result = Session.interpret ~provenance program in
  List.iter
    (fun (pred, rows) ->
      List.iter
        (fun (t, o) -> Fmt.pr "  %a :: %s%a@." Provenance.Output.pp o pred Tuple.pp t)
        rows)
    result.Session.outputs

let () =
  (* Discrete: every derivable fact is simply true. *)
  run "discrete (boolean)" (Registry.create Registry.Boolean);
  (* Probabilistic: tags are probabilities; the mutually exclusive mothers
     split the probability mass of the grandmother candidates, and the count
     aggregation reasons over possible worlds. *)
  run "probabilistic (topkproofs-3)" (Registry.create (Registry.Top_k_proofs 3));
  (* Differentiable: same program, now with gradients w.r.t. input facts. *)
  run "differentiable (difftopkproofs-3)" (Registry.create (Registry.Diff_top_k_proofs_me 3))
