examples/quickstart.ml: Fmt List Provenance Registry Scallop_core Session Tuple
