examples/sum2_learning.mli:
