examples/hwf_demo.mli:
