examples/provenance_tour.mli:
