examples/hwf_demo.ml: Fmt List Provenance Registry Scallop_apps Scallop_core Session Tuple Value
