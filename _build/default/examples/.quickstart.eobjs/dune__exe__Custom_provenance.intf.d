examples/custom_provenance.mli:
