examples/quickstart.mli:
