examples/pacman_planner.ml: Fmt List Provenance Registry Scallop_apps Scallop_core Scallop_utils Session Tuple Value
