examples/sum2_learning.ml: Autodiff Common Fmt Layers List Mnist_r Optim Scallop_apps Scallop_core Scallop_data Scallop_nn Scallop_tensor Scallop_utils
