examples/provenance_tour.ml: Fmt List Provenance Registry Scallop_core Session Tuple Value
