examples/custom_provenance.ml: Float Fmt List Provenance Registry Scallop_core Session Tuple Value
