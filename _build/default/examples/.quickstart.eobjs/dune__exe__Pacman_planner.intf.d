examples/pacman_planner.mli:
