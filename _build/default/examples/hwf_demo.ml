(** Probabilistic formula parsing (paper Sec. 6.2, HWF).

    Feeds an uncertain symbol sequence — the middle symbol might be '+' or
    '*' — to the grammar-based parser/evaluator program and prints the
    distribution over results with their gradients w.r.t. input symbols.

    Run with: [dune exec examples/hwf_demo.exe] *)

open Scallop_core

let () =
  let compiled = Session.compile Scallop_apps.Programs.hwf in
  let usize n = Value.int Value.USize n in
  let s v = Value.string v in
  (* "2 ? 3" where ? is '+' with 0.6 or '*' with 0.4 *)
  let facts =
    [
      ("length", [ (Provenance.Input.none, [| usize 3 |]) ]);
      ( "symbol",
        [
          (Provenance.Input.prob ~me_group:0 0.9, [| usize 0; s "2" |]);
          (Provenance.Input.prob ~me_group:0 0.1, [| usize 0; s "7" |]);
          (Provenance.Input.prob ~me_group:1 0.6, [| usize 1; s "+" |]);
          (Provenance.Input.prob ~me_group:1 0.4, [| usize 1; s "*" |]);
          (Provenance.Input.prob ~me_group:2 1.0, [| usize 2; s "3" |]);
        ] );
    ]
  in
  Fmt.pr "Parsing \"2|7  +|*  3\" (probabilistic symbols):@.";
  let result =
    Session.run
      ~provenance:(Registry.create (Registry.Diff_top_k_proofs_me 3))
      compiled ~facts ~outputs:[ "result" ] ()
  in
  List.iter
    (fun (t, o) ->
      Fmt.pr "  result%a :: p=%.4f  grad=[%a]@." Tuple.pp t (Provenance.Output.prob o)
        (Fmt.list ~sep:Fmt.comma (fun fmt (i, g) -> Fmt.pf fmt "r%d:%+.3f" i g))
        (Provenance.Output.gradient o))
    (Session.output result "result");
  Fmt.pr
    "@.Each derived value carries its probability and its derivative w.r.t.@.\
     every input symbol probability — that is what trains the perception model.@."
