(** End-to-end neurosymbolic learning (paper Fig. 1c / Sec. 6, MNIST-R).

    Trains a digit classifier with supervision only on the SUM of two digits
    — never on the digits themselves — by backpropagating through the logic
    program [sum_2(a+b) = digit_1(a), digit_2(b)] under the
    diff-top-k-proofs provenance.  Prints per-epoch task accuracy and, for
    the payoff, the accuracy of the digit classifier that was never directly
    supervised.

    Run with: [dune exec examples/sum2_learning.exe] *)

open Scallop_tensor
open Scallop_nn
open Scallop_apps
module Mnist = Scallop_data.Mnist

let () =
  let config =
    { Common.default_config with Common.epochs = 1; n_train = 200; n_test = 100 }
  in
  let dim = 16 in
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Mnist.create ~dim ~seed:43 () in
  let m = Mnist_r.create_model ~rng ~dim Mnist.Sum2 in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.Mnist_r.mlp) in
  let spec = Scallop_core.Registry.Diff_top_k_proofs_me 3 in
  let test = Mnist.dataset data Mnist.Sum2 config.Common.n_test in
  Fmt.pr "Training sum2 with supervision on the sum only...@.";
  for epoch = 1 to 4 do
    let train = Mnist.dataset data Mnist.Sum2 config.Common.n_train in
    List.iter
      (fun s ->
        let y = Mnist_r.forward ~spec m s in
        let loss =
          Common.bce y (Autodiff.const (Common.one_hot 19 s.Mnist.target))
        in
        opt.Optim.zero_grad ();
        Autodiff.backward loss;
        opt.Optim.step ())
      train;
    let correct =
      List.length (List.filter (fun s -> Mnist_r.predict ~spec m s = s.Mnist.target) test)
    in
    Fmt.pr "  epoch %d: sum accuracy %d%%, digit accuracy %.0f%% (never supervised!)@." epoch
      (correct * 100 / List.length test)
      (100.0 *. Mnist_r.digit_accuracy m test)
  done
