(** Implementing a custom provenance (paper Sec. 4.1: "users can add custom
    provenances simply by implementing this interface").

    We define the Łukasiewicz fuzzy semiring — ⊕ = min(1, a+b),
    ⊗ = max(0, a+b−1), ⊖ = 1−a — plug it into the unchanged reachability
    program, and compare it against the built-in probabilistic provenances.

    Run with: [dune exec examples/custom_provenance.exe] *)

open Scallop_core

(* The entire definition of a new reasoning mode: one module. *)
module Lukasiewicz : Provenance.S with type t = float = struct
  type t = float

  let name = "lukasiewicz"
  let zero = 0.0
  let one = 1.0
  let add a b = Float.min 1.0 (a +. b)
  let mult a b = Float.max 0.0 (a +. b -. 1.0)
  let negate t = Some (1.0 -. t)

  (* the t-norm is not absorptive, so we saturate on value equality and cap
     recursion through the interpreter's iteration limit *)
  let saturated ~old t = Float.abs (old -. t) < 1e-9
  let discard t = t <= 0.0
  let weight t = t
  let tag_of_input (i : Provenance.Input.t) =
    ((match i.Provenance.Input.prob with None -> 1.0 | Some p -> p), None)

  let recover t = Provenance.Output.O_prob t
  let pp fmt = Fmt.pf fmt "%.4f"
end

let program =
  {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}

let facts =
  let e a b = Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] in
  [
    ( "edge",
      [
        (Provenance.Input.prob 0.9, e 0 1);
        (Provenance.Input.prob 0.8, e 1 2);
        (Provenance.Input.prob 0.6, e 0 2);
      ] );
  ]

let () =
  let compiled = Session.compile program in
  let show name provenance =
    Fmt.pr "--- %s ---@." name;
    let r = Session.run ~provenance compiled ~facts () in
    List.iter
      (fun (t, o) -> Fmt.pr "  path%a :: %a@." Tuple.pp t Provenance.Output.pp o)
      (Session.output r "path")
  in
  show "custom: Łukasiewicz fuzzy logic" (module Lukasiewicz : Provenance.S);
  show "built-in: max-min-prob" (Registry.create Registry.Max_min_prob);
  show "built-in: exact probability" (Registry.create Registry.Exact_prob);
  Fmt.pr
    "@.Same program, three reasoning modes — the provenance interface is the@.\
     only thing that changed (cf. paper Sec. 4.1).@."
