(** A tour of the provenance framework (paper Sec. 4).

    One program — probabilistic reachability with negation and counting —
    executed under seven different provenances, showing how the same
    declarative rules yield discrete, counting, probabilistic and
    differentiable semantics just by swapping the algebraic structure.

    Run with: [dune exec examples/provenance_tour.exe] *)

open Scallop_core

let program =
  {|
type edge(a: i32, b: i32), blocked(x: i32)

rel node = {0, 1, 2, 3}
rel safe_edge(a, b) = edge(a, b), not blocked(b)
rel reach(x) = start(x)
rel reach(y) = reach(x), safe_edge(x, y)
rel start = {0}
rel num_reachable(n) = n := count(x: reach(x))

query reach
query num_reachable
|}

let facts =
  let i n = Value.int Value.I32 n in
  [
    ( "edge",
      [
        (Provenance.Input.prob 0.9, [| i 0; i 1 |]);
        (Provenance.Input.prob 0.8, [| i 1; i 2 |]);
        (Provenance.Input.prob 0.7, [| i 0; i 2 |]);
        (Provenance.Input.prob 0.9, [| i 2; i 3 |]);
      ] );
    ("blocked", [ (Provenance.Input.prob 0.3, [| i 2 |]) ]);
  ]

let () =
  List.iter
    (fun spec ->
      let provenance = Registry.create spec in
      Fmt.pr "--- %s ---@." (Provenance.name provenance);
      (try
         let result = Session.interpret ~provenance ~facts program in
         List.iter
           (fun (pred, rows) ->
             List.iter
               (fun (t, o) -> Fmt.pr "  %s%a :: %a@." pred Tuple.pp t Provenance.Output.pp o)
               rows)
           result.Session.outputs
       with Session.Error e -> Fmt.pr "  (not supported: %s)@." (Session.error_string e));
      Fmt.pr "@.")
    [
      Registry.Boolean;
      Registry.Natural;
      Registry.Max_min_prob;
      Registry.Add_mult_prob;
      Registry.Top_k_proofs 3;
      Registry.Exact_prob;
      Registry.Diff_top_k_proofs 3;
    ]
