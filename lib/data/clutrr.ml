(** Synthetic CLUTRR: kinship reasoning with algorithmic supervision
    (paper Sec. 6.1, Appendix C.5; from [Sinha et al. 2019]).

    A sample is a chain of k atomic kinship facts between characters drawn
    from a randomly generated family tree, a query pair, and the target
    relation between the pair (derivable only by composing the chain).  The
    "natural language" surface is synthesized: each fact becomes a sentence
    embedding (relation prototype + noise), so the RoBERTa role is played by
    an MLP relation extractor (see DESIGN.md substitutions).

    The composition knowledge base (the paper's 92 manually specified
    triplets) is {e derived by enumeration}: we sample many trees, observe
    which (r1, r2) → r3 compositions hold deterministically, and keep those. *)

(* ---- the 20 kinship relations --------------------------------------------- *)

let relations =
  [|
    "father"; "mother"; "son"; "daughter"; "husband"; "wife"; "brother"; "sister";
    "grandfather"; "grandmother"; "grandson"; "granddaughter"; "uncle"; "aunt";
    "nephew"; "niece"; "father-in-law"; "mother-in-law"; "son-in-law"; "daughter-in-law";
  |]

let num_relations = Array.length relations
let relation_id name = Array.to_list relations |> List.mapi (fun i x -> (x, i)) |> List.assoc name

(* ---- family trees ------------------------------------------------------------ *)

type person = {
  id : int;
  male : bool;
  mutable parents : (int * int) option;  (** (father, mother) *)
  mutable spouse : int option;
  mutable children : int list;
}

type tree = { people : person array }

(** Generate a three-generation family tree. *)
let gen_tree rng : tree =
  let people = ref [] in
  let next = ref 0 in
  let mk male =
    let p = { id = !next; male; parents = None; spouse = None; children = [] } in
    incr next;
    people := p :: !people;
    p
  in
  let marry a b =
    a.spouse <- Some b.id;
    b.spouse <- Some a.id
  in
  let have_children father mother n =
    List.init n (fun _ ->
        let c = mk (Scallop_utils.Rng.bool rng) in
        c.parents <- Some (father.id, mother.id);
        father.children <- c.id :: father.children;
        mother.children <- c.id :: mother.children;
        c)
  in
  (* generation 0 *)
  let g0f = mk true and g0m = mk false in
  marry g0f g0m;
  let gen1 = have_children g0f g0m (2 + Scallop_utils.Rng.int rng 2) in
  (* generation 1: marry some and give them children *)
  List.iter
    (fun c ->
      if Scallop_utils.Rng.float rng < 0.8 then begin
        let sp = mk (not c.male) in
        marry c sp;
        let f, m = if c.male then (c, sp) else (sp, c) in
        ignore (have_children f m (1 + Scallop_utils.Rng.int rng 2))
      end)
    gen1;
  let arr = Array.of_list (List.rev !people) in
  Array.sort (fun a b -> compare a.id b.id) arr;
  { people = arr }

let person t i = t.people.(i)

let parents_of t i =
  match (person t i).parents with Some (f, m) -> [ f; m ] | None -> []

let siblings_of t i =
  match (person t i).parents with
  | None -> []
  | Some (f, _) -> List.filter (fun c -> c <> i) (person t f).children

(** Relation of [b] to [a] ("b is a's <rel>"), if expressible in the 20. *)
let relation_of t a b : int option =
  if a = b then None
  else begin
    let pa = person t a and pb = person t b in
    let gendered m f = Some (relation_id (if pb.male then m else f)) in
    if List.mem b (parents_of t a) then gendered "father" "mother"
    else if List.mem a (parents_of t b) then gendered "son" "daughter"
    else if pa.spouse = Some b then gendered "husband" "wife"
    else if List.mem b (siblings_of t a) then gendered "brother" "sister"
    else if List.exists (fun p -> List.mem b (parents_of t p)) (parents_of t a) then
      gendered "grandfather" "grandmother"
    else if List.exists (fun p -> List.mem a (parents_of t p)) (parents_of t b) then
      gendered "grandson" "granddaughter"
    else if List.exists (fun p -> List.mem b (siblings_of t p)) (parents_of t a) then
      gendered "uncle" "aunt"
    else if List.exists (fun p -> List.mem a (siblings_of t p)) (parents_of t b) then
      gendered "nephew" "niece"
    else
      match pa.spouse with
      | Some sp when List.mem b (parents_of t sp) -> gendered "father-in-law" "mother-in-law"
      | _ ->
          if
            List.exists
              (fun c -> (person t c).spouse = Some b)
              pa.children
          then gendered "son-in-law" "daughter-in-law"
          else None
  end

(* ---- composition knowledge base ------------------------------------------------ *)

(** Enumerate deterministic compositions over sampled trees: keep
    (r1, r2, r3) such that whenever b is a's r1 and c is b's r2 and the
    relation of c to a is defined, it is always r3. *)
let composition_table =
  lazy
    (let rng = Scallop_utils.Rng.create 7777 in
     let observed : (int * int, int list) Hashtbl.t = Hashtbl.create 256 in
     for _ = 1 to 200 do
       let t = gen_tree rng in
       let n = Array.length t.people in
       for a = 0 to n - 1 do
         for b = 0 to n - 1 do
           match relation_of t a b with
           | None -> ()
           | Some r1 ->
               for c = 0 to n - 1 do
                 match (relation_of t b c, relation_of t a c) with
                 | Some r2, Some r3 ->
                     let cur = Option.value (Hashtbl.find_opt observed (r1, r2)) ~default:[] in
                     if not (List.mem r3 cur) then Hashtbl.replace observed (r1, r2) (r3 :: cur)
                 | _ -> ()
               done
         done
       done
     done;
     Hashtbl.fold
       (fun (r1, r2) r3s acc -> match r3s with [ r3 ] -> (r1, r2, r3) :: acc | _ -> acc)
       observed []
     |> List.sort compare)

(* ---- samples ---------------------------------------------------------------------- *)

let name_pool =
  [|
    "Alice"; "Bob"; "Carol"; "David"; "Emma"; "Frank"; "Grace"; "Henry"; "Ivy"; "Jack";
    "Kate"; "Liam"; "Mia"; "Noah"; "Olivia"; "Paul"; "Quinn"; "Ruth"; "Sam"; "Tina";
    "Uma"; "Victor"; "Wendy"; "Xander"; "Yara"; "Zane";
  |]

type sample = {
  chain : (int * string * string) list;
      (** (relation, subject, object): "object is subject's relation" *)
  query : string * string;
  target : int;
  k : int;
}

type t = { rng : Scallop_utils.Rng.t; proto : Proto.t }

let create ?(noise = 0.4) ?(dim = 16) ~seed () =
  let rng = Scallop_utils.Rng.create seed in
  { rng; proto = Proto.create ~noise ~rng ~classes:num_relations ~dim () }

(** Sample a chain of [k] atomic facts whose endpoint relation is defined.
    Atomic facts use only the 8 immediate-family relations, so longer chains
    require genuine composition. *)
let atomic r = r < 8

let sample t ~k : sample option =
  let tree = gen_tree t.rng in
  let n = Array.length tree.people in
  (* random walk over atomic relations without immediately backtracking *)
  let start = Scallop_utils.Rng.int t.rng n in
  let rec walk path current remaining =
    if remaining = 0 then Some (List.rev path)
    else begin
      let moves =
        List.filter_map
          (fun next ->
            match relation_of tree current next with
            | Some r
              when atomic r
                   && (not (List.exists (fun (_, _, b) -> b = next) path))
                   && next <> start ->
                Some (r, current, next)
            | _ -> None)
          (List.init n Fun.id)
      in
      match moves with
      | [] -> None
      | _ ->
          let (r, a, b) = Scallop_utils.Rng.choose t.rng moves in
          walk ((r, a, b) :: path) b (remaining - 1)
    end
  in
  match walk [] start k with
  | None -> None
  | Some path ->
      let final = match List.rev path with (_, _, b) :: _ -> b | [] -> start in
      (match relation_of tree start final with
      | None -> None
      | Some target ->
          (* assign names *)
          let names = Array.copy name_pool in
          Scallop_utils.Rng.shuffle t.rng names;
          let name i = names.(i mod Array.length names) in
          Some
            {
              chain = List.map (fun (r, a, b) -> (r, name a, name b)) path;
              query = (name start, name final);
              target;
              k;
            })

(* Rejection sampling must not spin forever when the generator config is
   unsatisfiable (e.g. a chain length no tree topology can realize): cap the
   attempts and fail with a typed diagnostic the caller can surface. *)
let max_sample_attempts = 1000

let sample_retry t ~k =
  let rec go attempts =
    if attempts >= max_sample_attempts then
      Scallop_core.Exec_error.raise_error
        (Scallop_core.Exec_error.Invalid_input
           {
             msg =
               Fmt.str
                 "clutrr: no valid chain of length %d found in %d sampling attempts — \
                  the generator configuration is unsatisfiable"
                 k max_sample_attempts;
           })
    else match sample t ~k with Some s -> s | None -> go (attempts + 1)
  in
  go 0

let dataset t ~k n = List.init n (fun _ -> sample_retry t ~k)

(** Sentence embedding for a chain fact: relation prototype + noise. *)
let sentence_embedding t (r, _, _) = Proto.sample t.proto t.rng r
