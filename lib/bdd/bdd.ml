(** Reduced ordered binary decision diagrams with hash-consing.

    This is the decision-diagram substrate behind Scallop's weighted model
    counting (the paper uses bottom-up-compiled SDDs; ROBDDs are an
    equivalent-for-our-purposes d-DNNF-style representation supporting
    linear-time algebraic model counting, see DESIGN.md).

    Nodes are hash-consed inside a [manager], so structural equality is
    pointer/id equality and [apply] can be memoized on node ids.  Variables
    are integers ordered by their natural order. *)

type node = False | True | Node of { id : int; var : int; lo : t; hi : t }
and t = node

let node_id = function False -> 0 | True -> 1 | Node { id; _ } -> id

type manager = {
  mutable next_id : int;
  unique : (int * int * int, t) Hashtbl.t; (* (var, lo-id, hi-id) -> node *)
  and_cache : (int * int, t) Hashtbl.t;
  or_cache : (int * int, t) Hashtbl.t;
  not_cache : (int, t) Hashtbl.t;
}

let manager () =
  {
    next_id = 2;
    unique = Hashtbl.create 1024;
    and_cache = Hashtbl.create 1024;
    or_cache = Hashtbl.create 1024;
    not_cache = Hashtbl.create 256;
  }

let size m = m.next_id

(** Return the manager to its freshly-created state, dropping every node and
    apply-cache entry.  Roots obtained earlier remain structurally valid
    immutable trees, but their node ids will collide with newly allocated
    ones — callers caching roots must drop them alongside this call. *)
let clear m =
  m.next_id <- 2;
  Hashtbl.reset m.unique;
  Hashtbl.reset m.and_cache;
  Hashtbl.reset m.or_cache;
  Hashtbl.reset m.not_cache

(** Internal smart constructor enforcing reduction (lo == hi collapses) and
    sharing (unique table). *)
let mk m var lo hi =
  if node_id lo = node_id hi then lo
  else
    let key = (var, node_id lo, node_id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        let n = Node { id = m.next_id; var; lo; hi } in
        m.next_id <- m.next_id + 1;
        Hashtbl.add m.unique key n;
        n

let bfalse : t = False
let btrue : t = True
let var m v = mk m v False True
let nvar m v = mk m v True False

let top_var = function
  | Node { var; _ } -> var
  | _ -> max_int

let rec band m a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, x | x, True -> x
  | _ ->
      let ka = node_id a and kb = node_id b in
      let key = if ka <= kb then (ka, kb) else (kb, ka) in
      (match Hashtbl.find_opt m.and_cache key with
      | Some r -> r
      | None ->
          let va = top_var a and vb = top_var b in
          let v = min va vb in
          let (alo, ahi) =
            match a with
            | Node { var; lo; hi; _ } when var = v -> (lo, hi)
            | _ -> (a, a)
          in
          let (blo, bhi) =
            match b with
            | Node { var; lo; hi; _ } when var = v -> (lo, hi)
            | _ -> (b, b)
          in
          let r = mk m v (band m alo blo) (band m ahi bhi) in
          Hashtbl.add m.and_cache key r;
          r)

let rec bor m a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, x | x, False -> x
  | _ ->
      let ka = node_id a and kb = node_id b in
      let key = if ka <= kb then (ka, kb) else (kb, ka) in
      (match Hashtbl.find_opt m.or_cache key with
      | Some r -> r
      | None ->
          let va = top_var a and vb = top_var b in
          let v = min va vb in
          let (alo, ahi) =
            match a with
            | Node { var; lo; hi; _ } when var = v -> (lo, hi)
            | _ -> (a, a)
          in
          let (blo, bhi) =
            match b with
            | Node { var; lo; hi; _ } when var = v -> (lo, hi)
            | _ -> (b, b)
          in
          let r = mk m v (bor m alo blo) (bor m ahi bhi) in
          Hashtbl.add m.or_cache key r;
          r)

let rec bnot m a =
  match a with
  | False -> True
  | True -> False
  | Node { id; var; lo; hi } -> (
      match Hashtbl.find_opt m.not_cache id with
      | Some r -> r
      | None ->
          let r = mk m var (bnot m lo) (bnot m hi) in
          Hashtbl.add m.not_cache id r;
          r)

(** Build a BDD for a conjunction of literals given as (var, sign),
    in any order. *)
let cube m lits =
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) lits in
  (* Building bottom-up from the largest variable keeps [mk] cheap. *)
  List.fold_left
    (fun acc (v, sign) -> if sign then mk m v False acc else mk m v acc False)
    True sorted

(** Build a BDD for a DNF: a list of cubes. *)
let of_dnf m dnf = List.fold_left (fun acc c -> bor m acc (cube m c)) False dnf

(** Count satisfying assignments over a universe of variables [0..nvars-1].
    Variables skipped along a BDD path are free and each doubles the count. *)
let count_sat nvars root =
  let memo = Hashtbl.create 64 in
  (* [models node above] = number of models over variables strictly greater
     than [above]; memoized on (node id, above). *)
  let rec models node above =
    match node with
    | False -> 0.0
    | True -> 2.0 ** float_of_int (nvars - above - 1)
    | Node { id; var; lo; hi } -> (
        let key = (id, above) in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
            let gap = 2.0 ** float_of_int (var - above - 1) in
            let r = gap *. (models lo var +. models hi var) in
            Hashtbl.add memo key r;
            r)
  in
  models root (-1)

(** Algebraic model counting: sum over satisfying assignments of the product
    of per-variable weights.  [w_pos v] and [w_neg v] give the weight of
    variable [v] appearing positively / negatively; weights live in any
    commutative semiring presented by [add]/[mul]/[one]/[zero].  For
    probabilities with [w_pos v = p_v], [w_neg v = 1 - p_v] this computes the
    weighted model count used by diff-top-k-proofs' ρ; instantiated with dual
    numbers it also yields the gradient. *)
let wmc (type a) ~(zero : a) ~(one : a) ~(add : a -> a -> a) ~(mul : a -> a -> a)
    ~(w_pos : int -> a) ~(w_neg : int -> a) ~(vars : int list) (root : t) : a =
  (* [vars] must be sorted ascending and include every variable in the BDD;
     skipped variables contribute (w_pos + w_neg) factors. *)
  let vars = Array.of_list vars in
  let n = Array.length vars in
  let idx_of = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace idx_of v i) vars;
  let full i = add (w_pos vars.(i)) (w_neg vars.(i)) in
  (* product of [full] weights for variable indices in [lo, hi) *)
  let rec span lo hi acc = if lo >= hi then acc else span (lo + 1) hi (mul acc (full lo)) in
  let memo = Hashtbl.create 64 in
  let rec go node =
    (* weight over variables with index >= idx(top_var node), result paired
       with the index at which it starts *)
    match node with
    | False -> (zero, n)
    | True -> (one, n)
    | Node { id; var; lo; hi } -> (
        let i = match Hashtbl.find_opt idx_of var with Some i -> i | None -> invalid_arg "Bdd.wmc: variable missing from vars" in
        match Hashtbl.find_opt memo id with
        | Some r -> (r, i)
        | None ->
            (* A False child contributes the annihilating zero: spanning the
               skipped variables over it would multiply zero O(|vars|) times
               per node — on long cubes that turns linear counting
               quadratic. *)
            let wlo, ilo = go lo in
            let wlo = match lo with False -> wlo | _ -> span (i + 1) ilo wlo in
            let whi, ihi = go hi in
            let whi = match hi with False -> whi | _ -> span (i + 1) ihi whi in
            let r = add (mul (w_neg var) wlo) (mul (w_pos var) whi) in
            Hashtbl.add memo id r;
            (r, i))
  in
  let w, i = go root in
  span 0 i w

(** Evaluate the BDD under a total assignment. *)
let rec eval assign node =
  match node with
  | False -> false
  | True -> true
  | Node { var; lo; hi; _ } -> if assign var then eval assign hi else eval assign lo

let rec pp fmt = function
  | False -> Fmt.string fmt "F"
  | True -> Fmt.string fmt "T"
  | Node { var; lo; hi; _ } -> Fmt.pf fmt "(x%d ? %a : %a)" var pp hi pp lo
