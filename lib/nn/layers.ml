(** Neural network layers over the autodiff substrate.

    The benchmark suite's perception models (the "CNN" / "RoBERTa" roles of
    paper Table 2; see DESIGN.md substitutions) are MLP classifiers built
    from these layers. *)

open Scallop_tensor

type activation = Relu | Tanh | Sigmoid | Identity

let apply_activation act v =
  match act with
  | Relu -> Autodiff.relu v
  | Tanh -> Autodiff.tanh_ v
  | Sigmoid -> Autodiff.sigmoid v
  | Identity -> v

module Linear = struct
  type t = { w : Autodiff.t; b : Autodiff.t }

  let create rng ~in_dim ~out_dim =
    {
      w = Autodiff.param (Nd.xavier rng in_dim out_dim);
      b = Autodiff.param (Nd.zeros [| 1; out_dim |]);
    }

  let forward t x = Autodiff.add_rowvec (Autodiff.matmul x t.w) t.b
  let params t = [ t.w; t.b ]
end

(** Fault-injection hook for the resilience test suite: when set, every
    {!Mlp.classify} output value is passed through this function before it
    enters the autodiff graph (e.g. to replace a row with NaNs and prove
    the quarantine path).  [None] in production — the hook costs one ref
    read per classify. *)
let classify_fault_hook : (Nd.t -> Nd.t) option ref = ref None

(** Multi-layer perceptron: [dims] = [in; h1; ...; out]; hidden layers use
    [activation], the output layer is linear (apply softmax/sigmoid at the
    loss site). *)
module Mlp = struct
  type t = { layers : Linear.t list; activation : activation }

  let create rng ?(activation = Relu) (dims : int list) =
    let rec build = function
      | a :: (b :: _ as rest) -> Linear.create rng ~in_dim:a ~out_dim:b :: build rest
      | _ -> []
    in
    { layers = build dims; activation }

  let forward t x =
    let n = List.length t.layers in
    List.fold_left
      (fun (i, h) layer ->
        let out = Linear.forward layer h in
        let out = if i < n - 1 then apply_activation t.activation out else out in
        (i + 1, out))
      (0, x) t.layers
    |> snd

  (** Forward pass ending in row-softmax — a classifier head. *)
  let classify t x =
    let y = Autodiff.softmax (forward t x) in
    match !classify_fault_hook with
    | None -> y
    | Some f ->
        Autodiff.custom ~op:"fault-injection" ~value:(f (Autodiff.value y))
          ~parents:[ { Autodiff.var = y; push = Fun.id } ]

  let params t = List.concat_map Linear.params t.layers
end
