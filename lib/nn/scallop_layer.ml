(** The differentiable Scallop layer: a logic program as a network module.

    This is the OCaml counterpart of [scallopy]'s [ScallopModule] (paper
    Fig. 2c): input distributions produced by neural networks become
    probabilistic facts, a compiled Scallop program runs under a
    differentiable provenance, and the recovered output probabilities —
    together with the Jacobian ∂y/∂r delivered by the provenance's dual
    numbers — are wrapped back into an autodiff variable, so the surrounding
    training loop backpropagates end-to-end through the logic program. *)

open Scallop_tensor
open Scallop_core

type input_mapping = {
  pred : string;  (** interface relation *)
  entries : (int * Tuple.t) array;
      (** (index into [probs], fact tuple); a subset of the distribution may
          be exposed (e.g. HWF's top-k symbol sampling, Appendix C.2) *)
  probs : Autodiff.t;  (** probability tensor the indices point into *)
  mutually_exclusive : bool;  (** one me-group for the whole mapping *)
}

(** Expose a whole distribution: entry i ↦ tuples.(i). *)
let dense_mapping ~pred ~tuples ~probs ~mutually_exclusive =
  { pred; entries = Array.mapi (fun i t -> (i, t)) tuples; probs; mutually_exclusive }

(** Expose only the [k] most probable entries (paper's HWF sampling).
    Equal probabilities tie-break on the lower index, so the selection is a
    pure function of the distribution — [Array.sort] is not stable, and an
    unstable tie-break would make top-k selection (and everything downstream
    of it) irreproducible across runs and workers. *)
let topk_mapping ~k ~pred ~tuples ~probs ~mutually_exclusive =
  let v = Autodiff.value probs in
  let idx = Array.init (Array.length tuples) Fun.id in
  Array.sort
    (fun a b ->
      let c = compare (Nd.get1 v b) (Nd.get1 v a) in
      if c <> 0 then c else compare a b)
    idx;
  let keep = Array.sub idx 0 (min k (Array.length idx)) in
  { pred; entries = Array.map (fun i -> (i, tuples.(i))) keep; probs; mutually_exclusive }

(** Facts with no attached network output (structured inputs, the starred
    rows of paper Table 2). *)
type static_fact = string * Tuple.t

type run_output = {
  y : Autodiff.t;  (** [1 × n] output probabilities *)
  tuples : Tuple.t array;  (** tuple of each output column *)
}

(* ---- the three phases of a layer execution -----------------------------------

   [prepare_sample] (cheap, main thread): turn input mappings into tagged
   facts and remember which (mapping, entry) slot produced each fact.
   [Session.run] / [Session.run_batch] (heavy, parallelizable): pure symbolic
   execution returning plain data.
   [wire_outputs] (main thread): route each output's ∂y/∂r Jacobian entries
   back to the probs tensors of the sample that produced them, creating the
   autodiff nodes.  Keeping graph construction on the caller's domain makes
   node ids deterministic in batch order. *)

type prepared = {
  p_facts : (string * (Provenance.Input.t * Tuple.t) list) list;
  p_slots : (string * Tuple.t, int * int) Hashtbl.t;
      (** coerced fact identity -> (mapping index, index into its probs) *)
}

let prepare_sample ~compiled ~static_facts ~inputs : prepared =
  let facts_by_pred : (string, (Provenance.Input.t * Tuple.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let push pred entry =
    match Hashtbl.find_opt facts_by_pred pred with
    | Some l -> l := entry :: !l
    | None -> Hashtbl.replace facts_by_pred pred (ref [ entry ])
  in
  let slot_of_fact : (string * Tuple.t, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun mi m ->
      let me_group = if m.mutually_exclusive then Some mi else None in
      Array.iter
        (fun (i, tuple) ->
          let p = Nd.get1 (Autodiff.value m.probs) i in
          let p = Float.min 1.0 (Float.max 0.0 p) in
          let coerced = Session.coerce_tuple compiled m.pred tuple in
          Hashtbl.replace slot_of_fact (m.pred, coerced) (mi, i);
          push m.pred (Provenance.Input.prob ?me_group p, tuple))
        m.entries)
    inputs;
  List.iter (fun (pred, tuple) -> push pred (Provenance.Input.none, tuple)) static_facts;
  {
    p_facts = Hashtbl.fold (fun pred l acc -> (pred, List.rev !l) :: acc) facts_by_pred [];
    p_slots = slot_of_fact;
  }

let wire_outputs ~compiled ~inputs ~(prepared : prepared) ~(result : Session.result)
    ~(outputs : (string * Tuple.t array option) list) : run_output list =
  let slot_of_fact = prepared.p_slots in
  let id_to_slot : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((pred, tuple), id) ->
      match Hashtbl.find_opt slot_of_fact (pred, tuple) with
      | Some slot -> Hashtbl.replace id_to_slot id slot
      | None -> ())
    result.Session.fact_ids;
  List.map
    (fun (out_pred, candidates) ->
      let out_rel = Session.output result out_pred in
      let out_tuples, out_values =
        match candidates with
        | Some cands ->
            ( cands,
              Array.map
                (fun cand ->
                  let cand = Session.coerce_tuple compiled out_pred cand in
                  List.find_opt (fun (t, _) -> Tuple.compare t cand = 0) out_rel)
                cands )
        | None ->
            let arr = Array.of_list out_rel in
            (Array.map fst arr, Array.map (fun x -> Some x) arr)
      in
      let n_out = Array.length out_tuples in
      let y = Nd.zeros [| 1; max 1 n_out |] in
      let jac : (int * int * float) list array = Array.make (max 1 n_out) [] in
      Array.iteri
        (fun j entry ->
          match entry with
          | None -> ()
          | Some (_, o) ->
              Nd.set1 y j (Provenance.Output.prob o);
              jac.(j) <-
                List.filter_map
                  (fun (id, g) ->
                    match Hashtbl.find_opt id_to_slot id with
                    | Some (mi, i) -> Some (mi, i, g)
                    | None -> None)
                  (Provenance.Output.gradient o))
        out_values;
      let parents =
        List.mapi
          (fun mi m ->
            let push (g : Nd.t) : Nd.t =
              let contrib = Nd.zeros (Autodiff.value m.probs).Nd.shape in
              Array.iteri
                (fun j entries ->
                  let gj = Nd.get1 g j in
                  if gj <> 0.0 then
                    List.iter
                      (fun (mi', i, dydr) ->
                        if mi' = mi then
                          contrib.Nd.data.(i) <- contrib.Nd.data.(i) +. (gj *. dydr))
                      entries)
                jac;
              contrib
            in
            { Autodiff.var = m.probs; push })
          inputs
      in
      { y = Autodiff.custom ~op:("scallop:" ^ out_pred) ~value:y ~parents; tuples = out_tuples })
    outputs

(* Shared implementation: run the program once and wire up the Jacobian for
   each requested output relation. *)
let run_multi_internal ~config ~spec ~compiled ~static_facts ~inputs
    ~(outputs : (string * Tuple.t array option) list) : run_output list =
  let provenance = Registry.create spec in
  let prepared = prepare_sample ~compiled ~static_facts ~inputs in
  let result =
    Session.run ~config ~provenance compiled ~facts:prepared.p_facts
      ~outputs:(List.map fst outputs) ()
  in
  wire_outputs ~compiled ~inputs ~prepared ~result ~outputs

(* ---- batched execution ----------------------------------------------------------

   One compiled plan, many samples: preparation and Jacobian wiring stay on
   the calling domain (they build autodiff graph nodes), while the symbolic
   executions — the dominant cost — fan out across the pool via
   {!Session.run_batch}, each with a fresh provenance instance and private
   interpreter state.  Results are positional: sample [i]'s outputs wire
   back to sample [i]'s probs tensors, so gradients land on the right rows
   of the batch regardless of which worker ran which sample. *)

(** One element of a batched forward. *)
type sample = { inputs : input_mapping list; static_facts : static_fact list }

(** Budget-aware batched forward: sample [i]'s slot is [Ok] with its wired
    outputs, or [Error diag] when that sample was stopped by the budget in
    [config.Interp.budget] (deadline, iteration/tuple/node caps,
    cancellation) or failed on its own inputs.  Skipped samples cost no
    autodiff nodes; surviving samples are wired exactly as in
    {!run_multi_batch}, so a training loop can drop (or down-weight) the
    skipped examples and still backpropagate through the rest of the
    batch. *)
let try_run_multi_batch ?pool ?jobs ?(config = Interp.default_config ()) ~spec ~compiled
    ~(outputs : (string * Tuple.t array option) list) (samples : sample array) :
    (run_output list, Exec_error.t) result array =
  let prepared =
    Array.map
      (fun s -> prepare_sample ~compiled ~static_facts:s.static_facts ~inputs:s.inputs)
      samples
  in
  let results =
    Session.run_batch ?pool ?jobs ~config
      ~provenance_of:(fun _ -> Registry.create spec)
      compiled
      ~outputs:(List.map fst outputs)
      (Array.map (fun p -> p.p_facts) prepared)
  in
  Array.mapi
    (fun i outcome ->
      Result.map
        (fun result ->
          wire_outputs ~compiled ~inputs:samples.(i).inputs ~prepared:prepared.(i) ~result
            ~outputs)
        outcome)
    results

(* ---- resilient execution -------------------------------------------------------

   Numeric quarantine + graceful degradation on top of {!try_run_multi_batch}:

   - any sample whose recovered output probabilities contain a NaN/Inf
     (poisoned perception input, pathological provenance arithmetic) is
     turned into [Error (Non_finite _)] before it can enter the autodiff
     graph;
   - samples stopped by their budget are retried down the
     {!Registry.degrade} ladder (e.g. top-k-proofs k → k/2 → … →
     min-max-prob): the retry re-runs only the failed samples, under the
     same per-attempt budget, and splices successes back into position;
   - whatever still fails after the last rung stays [Error] — the caller
     skips it — and every rescue/skip is counted in a
     {!Scallop_utils.Faults} record.

   Retries preserve batch determinism: outcomes depend only on the inputs
   and the ladder, never on worker count or scheduling (failed samples are
   re-run with the same batch-relative RNG substreams). *)

(** True when every output row of a sample is finite. *)
let outputs_finite (outs : run_output list) =
  List.for_all (fun (o : run_output) -> Nd.is_finite (Autodiff.value o.y)) outs

let quarantine_non_finite ?(faults : Scallop_utils.Faults.t option) results =
  Array.map
    (function
      | Ok outs when not (outputs_finite outs) ->
          (match faults with
          | Some f -> f.Scallop_utils.Faults.nan_quarantined <- f.Scallop_utils.Faults.nan_quarantined + 1
          | None -> ());
          Error (Exec_error.Non_finite { what = "scallop layer output probabilities" })
      | outcome -> outcome)
    results

(** Budget-aware batched forward with quarantine and degradation (see
    above).  [max_degrade] caps the number of ladder rungs tried after the
    initial spec (default: the whole ladder).  Samples that fail for
    non-quarantine reasons (bad input, cancellation, …) are returned as-is
    and never retried. *)
let resilient_run_multi_batch ?pool ?jobs ?config ?(max_degrade = max_int)
    ?(faults : Scallop_utils.Faults.t option) ~spec ~compiled
    ~(outputs : (string * Tuple.t array option) list) (samples : sample array) :
    (run_output list, Exec_error.t) result array =
  let results =
    quarantine_non_finite ?faults
      (try_run_multi_batch ?pool ?jobs ?config ~spec ~compiled ~outputs samples)
  in
  (* Degradation triggers on [Exec_error.is_degradable] — the same class
     the serving circuit breaker degrades on — so training and serving
     rescue exactly the same failures. *)
  let budget_failed res =
    let idx = ref [] in
    Array.iteri
      (fun i outcome ->
        match outcome with
        | Error e when Exec_error.is_degradable e -> idx := i :: !idx
        | _ -> ())
      res;
    List.rev !idx
  in
  let rec retry spec rungs_left results =
    match budget_failed results with
    | [] -> results
    | failed -> (
        match (Registry.degrade spec, rungs_left > 0) with
        | None, _ | _, false ->
            (match faults with
            | Some f ->
                f.Scallop_utils.Faults.budget_skipped <-
                  f.Scallop_utils.Faults.budget_skipped + List.length failed
            | None -> ());
            results
        | Some spec', true ->
            let sub = Array.of_list (List.map (fun i -> samples.(i)) failed) in
            let sub_results =
              quarantine_non_finite ?faults
                (try_run_multi_batch ?pool ?jobs ?config ~spec:spec' ~compiled ~outputs sub)
            in
            List.iteri
              (fun j i ->
                match sub_results.(j) with
                | Ok _ as ok ->
                    (match faults with
                    | Some f ->
                        f.Scallop_utils.Faults.degraded <- f.Scallop_utils.Faults.degraded + 1
                    | None -> ());
                    results.(i) <- ok
                | Error _ as e -> results.(i) <- e)
              failed;
            retry spec' (rungs_left - 1) results)
  in
  retry spec max_degrade results

(** Resilient {!forward_batch}: one candidate-domain output per sample, with
    NaN quarantine and budget degradation. *)
let resilient_forward_batch ?pool ?jobs ?config ?max_degrade ?faults ~(spec : Registry.spec)
    ~(compiled : Session.compiled) ~(out_pred : string) ~(candidates : Tuple.t array)
    (samples : sample array) : (Autodiff.t, Exec_error.t) result array =
  resilient_run_multi_batch ?pool ?jobs ?config ?max_degrade ?faults ~spec ~compiled
    ~outputs:[ (out_pred, Some candidates) ]
    samples
  |> Array.map
       (Result.map (function [ (out : run_output) ] -> out.y | _ -> assert false))

(** Resilient {!forward_open_batch}: open candidate domains per sample. *)
let resilient_forward_open_batch ?pool ?jobs ?config ?max_degrade ?faults
    ~(spec : Registry.spec) ~(compiled : Session.compiled) ~(out_pred : string)
    (samples : sample array) : (run_output, Exec_error.t) result array =
  resilient_run_multi_batch ?pool ?jobs ?config ?max_degrade ?faults ~spec ~compiled
    ~outputs:[ (out_pred, None) ]
    samples
  |> Array.map (Result.map (function [ out ] -> out | _ -> assert false))

let run_multi_batch ?pool ?jobs ?config ~spec ~compiled
    ~(outputs : (string * Tuple.t array option) list) (samples : sample array) :
    run_output list array =
  try_run_multi_batch ?pool ?jobs ?config ~spec ~compiled ~outputs samples
  |> Array.map (function Ok outs -> outs | Error e -> raise (Session.Error e))

(** Budget-aware {!forward_batch}: sample [i]'s slot is its probability
    vector, or the diagnostic that stopped it ("example skipped"). *)
let try_forward_batch ?pool ?jobs ?config ~(spec : Registry.spec)
    ~(compiled : Session.compiled) ~(out_pred : string) ~(candidates : Tuple.t array)
    (samples : sample array) : (Autodiff.t, Exec_error.t) result array =
  try_run_multi_batch ?pool ?jobs ?config ~spec ~compiled
    ~outputs:[ (out_pred, Some candidates) ]
    samples
  |> Array.map
       (Result.map (function [ (out : run_output) ] -> out.y | _ -> assert false))

(** Batched {!forward}: one output relation with a shared candidate domain;
    row [i] of the result is sample [i]'s probability vector. *)
let forward_batch ?pool ?jobs ?config ~(spec : Registry.spec)
    ~(compiled : Session.compiled) ~(out_pred : string) ~(candidates : Tuple.t array)
    (samples : sample array) : Autodiff.t array =
  run_multi_batch ?pool ?jobs ?config ~spec ~compiled
    ~outputs:[ (out_pred, Some candidates) ]
    samples
  |> Array.map (function [ out ] -> out.y | _ -> assert false)

(** Batched {!forward_open}: open candidate domains per sample. *)
let forward_open_batch ?pool ?jobs ?config ~(spec : Registry.spec)
    ~(compiled : Session.compiled) ~(out_pred : string) (samples : sample array) :
    run_output array =
  run_multi_batch ?pool ?jobs ?config ~spec ~compiled ~outputs:[ (out_pred, None) ] samples
  |> Array.map (function [ out ] -> out | _ -> assert false)

(** Run with a fixed output candidate domain: the result row gives the
    probability of each candidate (0 when underived). *)
let forward ?(config = Interp.default_config ()) ~(spec : Registry.spec)
    ~(compiled : Session.compiled) ?(static_facts : static_fact list = [])
    ~(inputs : input_mapping list) ~(out_pred : string) ~(candidates : Tuple.t array) () :
    Autodiff.t =
  match
    run_multi_internal ~config ~spec ~compiled ~static_facts ~inputs
      ~outputs:[ (out_pred, Some candidates) ]
  with
  | [ out ] -> out.y
  | _ -> assert false

(** Run with an open output domain: all derived tuples become candidates
    (used when the output space is unbounded, e.g. HWF's rational results). *)
let forward_open ?(config = Interp.default_config ()) ~(spec : Registry.spec)
    ~(compiled : Session.compiled) ?(static_facts : static_fact list = [])
    ~(inputs : input_mapping list) ~(out_pred : string) () : run_output =
  match
    run_multi_internal ~config ~spec ~compiled ~static_facts ~inputs
      ~outputs:[ (out_pred, None) ]
  with
  | [ out ] -> out
  | _ -> assert false

(** Run once and read several output relations (e.g. PacMan's [next_action]
    and [violation]), amortizing the program execution. *)
let forward_multi ?(config = Interp.default_config ()) ~(spec : Registry.spec)
    ~(compiled : Session.compiled) ?(static_facts : static_fact list = [])
    ~(inputs : input_mapping list) ~(outputs : (string * Tuple.t array) list) () :
    Autodiff.t list =
  run_multi_internal ~config ~spec ~compiled ~static_facts ~inputs
    ~outputs:(List.map (fun (p, c) -> (p, Some c)) outputs)
  |> List.map (fun o -> o.y)
