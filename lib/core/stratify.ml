(** Stratification analysis (paper Sec. 3.2 / 4.2).

    Builds the predicate dependency graph (positive edges from rule heads to
    body atoms; {e constraint} edges through negation and aggregation),
    computes strongly connected components, rejects programs where a
    constraint edge stays inside an SCC (negation/aggregation through
    recursion is not stratifiable), and returns the rules grouped into
    strata in dependency order.

    Rejection raises [Exec_error.Error (Unstratifiable _)] naming the head
    and the offending dependency, so callers can report (or test) the pair
    without parsing a message. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type dep = { target : string; constraint_ : bool }

(* Predicates that a clause depends on, with the constraint flag set for
   negated atoms and everything reachable through an aggregation. *)
let rec clause_deps ~under_agg (clause : Front.clause) : dep list =
  List.concat_map
    (function
      | Front.L_pos a ->
          if Foreign.is_foreign_predicate a.Ast.pred then []
          else [ { target = a.Ast.pred; constraint_ = under_agg } ]
      | Front.L_neg a -> [ { target = a.Ast.pred; constraint_ = true } ]
      | Front.L_cond _ -> []
      | Front.L_reduce r ->
          let body_deps = List.concat_map (clause_deps ~under_agg:true) r.Front.body in
          let where_deps =
            match r.Front.where with
            | Some (_, clauses) -> List.concat_map (clause_deps ~under_agg:true) clauses
            | None -> []
          in
          body_deps @ where_deps)
    clause

let stratify (rules : Front.crule list) : Front.crule list list =
  (* Collect every predicate mentioned (heads and bodies). *)
  let preds = ref SSet.empty in
  let add p = preds := SSet.add p !preds in
  List.iter
    (fun (r : Front.crule) ->
      add r.Front.head.Ast.pred;
      List.iter (fun d -> add d.target) (clause_deps ~under_agg:false r.Front.body))
    rules;
  let pred_list = SSet.elements !preds in
  let index = List.mapi (fun i p -> (p, i)) pred_list in
  let id_of p = List.assoc p index in
  let n = List.length pred_list in
  let g = Scallop_utils.Graph.create n in
  let constraints = ref [] in
  List.iter
    (fun (r : Front.crule) ->
      let h = id_of r.Front.head.Ast.pred in
      List.iter
        (fun d ->
          let t = id_of d.target in
          Scallop_utils.Graph.add_edge g h t;
          if d.constraint_ then constraints := (h, t, r.Front.head.Ast.pred, d.target) :: !constraints)
        (clause_deps ~under_agg:false r.Front.body))
    rules;
  let comp, ncomp = Scallop_utils.Graph.scc g in
  (* Constraint edges may not stay within a component. *)
  List.iter
    (fun (h, t, hp, tp) ->
      if comp.(h) = comp.(t) then
        Exec_error.raise_error (Exec_error.Unstratifiable { head = hp; dep = tp }))
    !constraints;
  (* Group rules by the SCC of their head; ascending component index is a
     valid dependencies-first order (see {!Scallop_utils.Graph.scc}). *)
  let buckets = Array.make ncomp [] in
  List.iter
    (fun (r : Front.crule) ->
      let c = comp.(id_of r.Front.head.Ast.pred) in
      buckets.(c) <- r :: buckets.(c))
    rules;
  Array.to_list buckets |> List.filter_map (fun b -> if b = [] then None else Some (List.rev b))
