(** Registry of built-in provenances (paper Sec. 5 lists 18 built-ins across
    discrete / probabilistic / differentiable reasoning; see DESIGN.md for
    the set implemented here).

    Provenance instances are stateful (variable-id allocation, probability
    stores), so [create] returns a {e fresh} first-class module each call;
    one instance must be used for exactly one program execution. *)

type spec =
  | Unit
  | Boolean
  | Natural
  | Max_min_prob
  | Add_mult_prob
  | Proofs
  | Top_k_proofs of int
  | Top_k_proofs_eager of int
      (** reference implementation of [Top_k_proofs] with eager operators;
          differential-test oracle and benchmark baseline *)
  | Sample_k_proofs of int * int (* k, seed *)
  | Exact_prob
  | Diff_exact_prob
  | Diff_max_min_prob
  | Diff_add_mult_prob
  | Diff_nand_mult_prob
  | Diff_top_k_proofs of int
  | Diff_top_k_proofs_me of int
  | Diff_sample_k_proofs of int * int
  | Diff_top_bottom_k_clauses of int

let create : spec -> Provenance.t = function
  | Unit -> (module Prov_discrete.Unit)
  | Boolean -> (module Prov_discrete.Boolean)
  | Natural -> (module Prov_discrete.Natural)
  | Max_min_prob -> (module Prov_discrete.Max_min_prob)
  | Add_mult_prob -> (module Prov_prob.Add_mult_prob)
  | Proofs ->
      let module M = Prov_discrete.Proofs () in
      (module M)
  | Top_k_proofs k ->
      let module M =
        Prov_prob.Top_k_proofs
          (struct
            let k = k
          end)
          ()
      in
      (module M)
  | Top_k_proofs_eager k ->
      let module M =
        Prov_prob.Top_k_proofs_eager
          (struct
            let k = k
          end)
          ()
      in
      (module M)
  | Sample_k_proofs (k, seed) ->
      let module M =
        Prov_prob.Sample_k_proofs
          (struct
            let k = k
            let seed = seed
          end)
          ()
      in
      (module M)
  | Exact_prob ->
      let module M = Prov_prob.Exact () in
      (module M)
  | Diff_exact_prob ->
      let module M = Prov_diff.Diff_exact () in
      (module M)
  | Diff_max_min_prob ->
      let module M = Prov_diff.Diff_max_min_prob () in
      (module M)
  | Diff_add_mult_prob ->
      let module M = Prov_diff.Diff_add_mult_prob () in
      (module M)
  | Diff_nand_mult_prob ->
      let module M = Prov_diff.Diff_nand_mult_prob () in
      (module M)
  | Diff_top_k_proofs k ->
      let module M =
        Prov_diff.Diff_top_k_proofs
          (struct
            let k = k
            let me = false
          end)
          ()
      in
      (module M)
  | Diff_top_k_proofs_me k ->
      let module M =
        Prov_diff.Diff_top_k_proofs
          (struct
            let k = k
            let me = true
          end)
          ()
      in
      (module M)
  | Diff_sample_k_proofs (k, seed) ->
      let module M =
        Prov_diff.Diff_sample_k_proofs
          (struct
            let k = k
            let seed = seed
          end)
          ()
      in
      (module M)
  | Diff_top_bottom_k_clauses k ->
      let module M =
        Prov_diff.Diff_top_bottom_k_clauses
          (struct
            let k = k
          end)
          ()
      in
      (module M)

(** One rung down the graceful-degradation ladder: a cheaper provenance
    that still executes the same program, or [None] when [spec] is already
    at the bottom.  Proof-counting provenances halve [k] until [k = 1],
    then drop to the min-max viterbi approximation (differentiable specs
    stay differentiable); exact WMC falls back to top-k enumeration.  Used
    by the resilient Scallop layer: an example that exhausts its budget at
    full fidelity is retried one rung cheaper instead of being dropped
    outright. *)
let degrade : spec -> spec option = function
  | Diff_top_k_proofs_me k when k > 1 -> Some (Diff_top_k_proofs_me (k / 2))
  | Diff_top_k_proofs_me _ -> Some Diff_max_min_prob
  | Diff_top_k_proofs k when k > 1 -> Some (Diff_top_k_proofs (k / 2))
  | Diff_top_k_proofs _ -> Some Diff_max_min_prob
  | Diff_sample_k_proofs (k, seed) when k > 1 -> Some (Diff_sample_k_proofs (k / 2, seed))
  | Diff_sample_k_proofs _ -> Some Diff_max_min_prob
  | Diff_top_bottom_k_clauses k when k > 1 -> Some (Diff_top_bottom_k_clauses (k / 2))
  | Diff_top_bottom_k_clauses _ -> Some Diff_max_min_prob
  | Diff_exact_prob -> Some (Diff_top_k_proofs 3)
  | Top_k_proofs k when k > 1 -> Some (Top_k_proofs (k / 2))
  | Top_k_proofs _ -> Some Max_min_prob
  | Top_k_proofs_eager k when k > 1 -> Some (Top_k_proofs_eager (k / 2))
  | Top_k_proofs_eager _ -> Some Max_min_prob
  | Sample_k_proofs (k, seed) when k > 1 -> Some (Sample_k_proofs (k / 2, seed))
  | Sample_k_proofs _ -> Some Max_min_prob
  | Exact_prob -> Some (Top_k_proofs 3)
  | Proofs -> Some Boolean
  | Unit | Boolean | Natural | Max_min_prob | Add_mult_prob | Diff_max_min_prob
  | Diff_add_mult_prob | Diff_nand_mult_prob ->
      None

(** The full ladder from [spec] (inclusive) to the cheapest rung. *)
let rec degradation_ladder (spec : spec) : spec list =
  spec :: (match degrade spec with None -> [] | Some s -> degradation_ladder s)

(** CLI-style name of a spec (inverse of {!spec_of_string}), without
    instantiating a provenance module — cheap enough for per-request status
    lines in the serving layer. *)
let spec_name : spec -> string = function
  | Unit -> "unit"
  | Boolean -> "boolean"
  | Natural -> "natural"
  | Max_min_prob -> "minmaxprob"
  | Add_mult_prob -> "addmultprob"
  | Proofs -> "proofs"
  | Top_k_proofs k -> Fmt.str "topkproofs-%d" k
  | Top_k_proofs_eager k -> Fmt.str "topkproofseager-%d" k
  | Sample_k_proofs (k, _) -> Fmt.str "samplekproofs-%d" k
  | Exact_prob -> "exactprobproofs"
  | Diff_exact_prob -> "diffexactprobproofs"
  | Diff_max_min_prob -> "diffminmaxprob"
  | Diff_add_mult_prob -> "diffaddmultprob"
  | Diff_nand_mult_prob -> "diffnandmultprob"
  | Diff_top_k_proofs k -> Fmt.str "difftopkproofs-%d" k
  | Diff_top_k_proofs_me k -> Fmt.str "difftopkproofsme-%d" k
  | Diff_sample_k_proofs (k, _) -> Fmt.str "diffsamplekproofs-%d" k
  | Diff_top_bottom_k_clauses k -> Fmt.str "difftopbottomkclauses-%d" k

(** Parse a provenance name as used on the CLI and in configs, e.g.
    ["difftopkproofs-3"], ["minmaxprob"], ["exactprobproofs"]. *)
let spec_of_string s =
  let with_k prefix f =
    if String.length s > String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
    then
      let rest = String.sub s (String.length prefix) (String.length s - String.length prefix) in
      let rest = if String.length rest > 0 && rest.[0] = '-' then String.sub rest 1 (String.length rest - 1) else rest in
      Option.map f (int_of_string_opt rest)
    else None
  in
  match s with
  | "unit" -> Some Unit
  | "bool" | "boolean" -> Some Boolean
  | "natural" -> Some Natural
  | "minmaxprob" | "maxminprob" | "mmp" -> Some Max_min_prob
  | "addmultprob" | "amp" -> Some Add_mult_prob
  | "proofs" -> Some Proofs
  | "exactprobproofs" | "exact" | "dpl" -> Some Exact_prob
  | "diffexactprobproofs" | "diffexact" -> Some Diff_exact_prob
  | "diffminmaxprob" | "diffmaxminprob" | "dmmp" -> Some Diff_max_min_prob
  | "diffaddmultprob" | "damp" -> Some Diff_add_mult_prob
  | "diffnandmultprob" | "dnmp" -> Some Diff_nand_mult_prob
  | _ -> (
      match with_k "difftopkproofsme" (fun k -> Diff_top_k_proofs_me k) with
      | Some r -> Some r
      | None -> (
          match with_k "difftopkproofs" (fun k -> Diff_top_k_proofs k) with
          | Some r -> Some r
          | None -> (
              match with_k "dtkp" (fun k -> Diff_top_k_proofs k) with
              | Some r -> Some r
              | None -> (
                  match with_k "topkproofseager" (fun k -> Top_k_proofs_eager k) with
                  | Some r -> Some r
                  | None -> (
                  match with_k "topkproofs" (fun k -> Top_k_proofs k) with
                  | Some r -> Some r
                  | None -> (
                      match with_k "samplekproofs" (fun k -> Sample_k_proofs (k, 0)) with
                      | Some r -> Some r
                      | None -> (
                          match
                            with_k "diffsamplekproofs" (fun k -> Diff_sample_k_proofs (k, 0))
                          with
                          | Some r -> Some r
                          | None ->
                              with_k "difftopbottomkclauses" (fun k ->
                                  Diff_top_bottom_k_clauses k))))))))

let of_string s = Option.map create (spec_of_string s)

let all_names =
  [
    "unit";
    "boolean";
    "natural";
    "minmaxprob";
    "addmultprob";
    "proofs";
    "topkproofs-3";
    "topkproofseager-3";
    "samplekproofs-3";
    "exactprobproofs";
    "diffexactprobproofs";
    "diffminmaxprob";
    "diffaddmultprob";
    "diffnandmultprob";
    "difftopkproofs-3";
    "difftopkproofsme-3";
    "diffsamplekproofs-3";
    "difftopbottomkclauses-3";
  ]
