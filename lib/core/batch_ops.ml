(** Batch-at-a-time relational operators over columnar storage ({!Column}),
    parameterized by a provenance — the vectorized execution engine behind
    [config.columnar] (see DESIGN.md, "Columnar executor").

    A {!batch} is a struct-of-arrays relation fragment: one encoded column
    per attribute plus a parallel provenance-tag array, rows in {e emission
    order} — the exact order in which the tree-walking interpreter would
    have produced the same tuples.  Operators preserve that order (joins
    even reproduce the tree-walker's reversed per-key match order), so
    normalization folds ⊕ over duplicates in the identical sequence and the
    result is bit-identical to {!Interp}'s list pipeline.

    A {!crel} is a materialized relation: a stack of strictly-sorted runs
    merged with an amortized size-doubling policy (total merge cost
    O(N log N) across a fixpoint instead of O(N) per iteration), plus a
    tuple-hash membership table so the dominant "is this tuple new?" probe
    of semi-naive deltas is O(1) for genuinely new tuples.  Tags of a tuple
    split across runs combine oldest-first, matching the left-fold order of
    the tree-walker's ⊕-merges (all registered provenances have associative
    ⊕, which is what makes deferred run-merging sound).

    Aggregations decode group bodies back to tuples and reuse
    {!Aggregate.Make} verbatim, so the per-aggregator DP schemes — and their
    provenance semantics — are shared with the oracle rather than cloned. *)

module Ivec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.a then begin
      let b = Array.make (2 * v.len) 0 in
      Array.blit v.a 0 b 0 v.len;
      v.a <- b
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.a 0 v.len
end

let runtime_error msg = Exec_error.raise_error (Exec_error.Runtime_error { msg })

module Make (P : Provenance.S) = struct
  module Agg = Aggregate.Make (P)

  type batch = { n : int; cols : Column.t array; tags : P.t array }

  (* The canonical empty batch: [n = 0] always comes with [cols = [||]]
     (arity is unknowable without rows).  Nonempty arity-0 batches exist —
     the unit relation — so [cols = [||]] alone does not mean empty. *)
  let empty : batch = { n = 0; cols = [||]; tags = [||] }
  let singleton : batch Lazy.t = lazy { n = 1; cols = [||]; tags = [| P.one |] }

  let tuple_at (b : batch) (i : int) : Tuple.t =
    match b.cols with
    | [| c0 |] -> [| Column.get c0 i |]
    | [| c0; c1 |] -> [| Column.get c0 i; Column.get c1 i |]
    | [| c0; c1; c2 |] -> [| Column.get c0 i; Column.get c1 i; Column.get c2 i |]
    | cols -> Array.init (Array.length cols) (fun c -> Column.get cols.(c) i)

  let of_list (items : (Tuple.t * P.t) list) : batch =
    match items with
    | [] -> empty
    | (u0, t0) :: _ ->
        let n = List.length items in
        let arity = Array.length u0 in
        let tags = Array.make n t0 in
        let colv = Array.init arity (fun _ -> Array.make n (Value.B false)) in
        List.iteri
          (fun i (u, t) ->
            tags.(i) <- t;
            for c = 0 to arity - 1 do
              colv.(c).(i) <- u.(c)
            done)
          items;
        { n; cols = Array.map Column.pack colv; tags }

  let to_list (b : batch) : (Tuple.t * P.t) list =
    List.init b.n (fun i -> (tuple_at b i, b.tags.(i)))

  (** Final query outputs, decoded and tag-recovered in one pass (building
      [to_list] and mapping it again would traverse and allocate twice). *)
  let to_outputs (b : batch) : (Tuple.t * Provenance.Output.t) list =
    let acc = ref [] in
    for i = b.n - 1 downto 0 do
      acc := (tuple_at b i, P.recover b.tags.(i)) :: !acc
    done;
    !acc

  (* Lexicographic row comparison across two column sets, with
     [Tuple.compare]'s shorter-is-smaller rule for differing arities. *)
  let cmp_cols_across (ca : Column.t array) (cb : Column.t array) i j =
    let la = Array.length ca and lb = Array.length cb in
    let rec go c =
      if c >= la && c >= lb then 0
      else if c >= la then -1
      else if c >= lb then 1
      else
        let r = Column.cmp_across ca.(c) cb.(c) i j in
        if r <> 0 then r else go (c + 1)
    in
    go 0

  let cmp_rows (cols : Column.t array) i j = cmp_cols_across cols cols i j

  (** Build a row comparator specialized to the column encodings: when every
      column pair is a same-type unboxed int column (the common case for
      Datalog-style integer relations) the closure compares raw [int array]
      entries with no dispatch — the difference between ~100ns and ~15ns per
      comparison in sorts and sorted merges.  Falls back to
      {!cmp_cols_across} otherwise (identical ordering by construction). *)
  let cross_cmp (ac : Column.t array) (bc : Column.t array) : int -> int -> int =
    let width = Array.length ac in
    let int_pairs =
      if width = 0 || width <> Array.length bc then None
      else begin
        let rec go k acc =
          if k = width then Some (Array.of_list (List.rev acc))
          else
            match (ac.(k), bc.(k)) with
            | Column.I (ta, xa), Column.I (tb, xb) when Value.equal_ty ta tb ->
                go (k + 1) ((xa, xb) :: acc)
            | _ -> None
        in
        go 0 []
      end
    in
    match int_pairs with
    | Some [| (xa, xb) |] -> fun i j -> Stdlib.compare (xa.(i) : int) xb.(j)
    | Some [| (xa1, xb1); (xa2, xb2) |] ->
        fun i j ->
          let c = Stdlib.compare (xa1.(i) : int) xb1.(j) in
          if c <> 0 then c else Stdlib.compare (xa2.(i) : int) xb2.(j)
    | Some pairs ->
        fun i j ->
          let rec go k =
            if k = Array.length pairs then 0
            else
              let xa, xb = pairs.(k) in
              let c = Stdlib.compare (xa.(i) : int) xb.(j) in
              if c <> 0 then c else go (k + 1)
          in
          go 0
    | None -> fun i j -> cmp_cols_across ac bc i j

  let self_cmp (cols : Column.t array) : int -> int -> int = cross_cmp cols cols

  (* Per-cell hash specialized to the encoding.  Only internal consistency
     matters (the membership set is a collision-tolerant pre-filter, verified
     by binary search on hit), so int cells use a cheap multiplicative mix
     instead of the polymorphic hash; the dictionary arm mirrors it per
     encoding-independence (an [I] run and a [D] run of the same relation
     must agree on equal logical rows). *)
  (* splitmix-style finalizer: the xor-shifts between the multiplies break
     linearity, so the linear h*31+cell row combine cannot re-align cell
     hashes into collisions (a plain multiplicative mix is linear for small
     ints and made ~90% of all-new delta probes collide). *)
  let int_mix (n : int) : int =
    let h = n * 0x2545F4914F6CDD1D in
    let h = h lxor (h lsr 30) in
    let h = h * 0x27D4EB2F165667C5 in
    h lxor (h lsr 27)

  let cell_hasher (c : Column.t) : int -> int =
    match c with
    | Column.I (_, a) -> fun i -> int_mix a.(i)
    | Column.F (_, a) -> fun i -> Hashtbl.hash (1, a.(i))
    | Column.D (dict, codes) ->
        let dh =
          Array.map
            (function Value.Int (_, n) -> int_mix n | v -> Value.hash_value v)
            dict
        in
        fun i -> dh.(codes.(i))

  let row_hasher (cols : Column.t array) : int -> int =
    match cols with
    (* all-int arms skip the per-cell closure chain entirely *)
    | [| Column.I (_, a) |] -> fun i -> (17 * 31) + int_mix a.(i)
    | [| Column.I (_, a0); Column.I (_, a1) |] ->
        fun i -> ((((17 * 31) + int_mix a0.(i)) * 31) + int_mix a1.(i))
    | _ -> (
        let fs = Array.map cell_hasher cols in
        match fs with
        | [| f |] -> fun i -> (17 * 31) + f i
        | [| f0; f1 |] -> fun i -> ((((17 * 31) + f0 i) * 31) + f1 i)
        | fs -> fun i -> Array.fold_left (fun h f -> (h * 31) + f i) 17 fs)

  let row_hash (cols : Column.t array) (i : int) : int = row_hasher cols i

  (* Open-addressing int hash set (linear probing, power-of-two capacity).
     Generic [Hashtbl] costs ~4x more per membership test — this sits on the
     per-derived-tuple fixpoint path. *)
  module Ihs = struct
    type t = {
      mutable keys : int array;  (** 0 = empty slot *)
      mutable mask : int;
      mutable count : int;
      mutable has_zero : bool;
    }

    let create (expect : int) : t =
      let cap = ref 16 in
      while !cap < expect * 2 do
        cap := !cap * 2
      done;
      { keys = Array.make !cap 0; mask = !cap - 1; count = 0; has_zero = false }

    let slot (t : t) (k : int) : int =
      let i = ref (int_mix k land t.mask) in
      while t.keys.(!i) <> 0 && t.keys.(!i) <> k do
        i := (!i + 1) land t.mask
      done;
      !i

    let grow (t : t) =
      let old = t.keys in
      t.keys <- Array.make (2 * Array.length old) 0;
      t.mask <- Array.length t.keys - 1;
      Array.iter (fun k -> if k <> 0 then t.keys.(slot t k) <- k) old

    let add (t : t) (k : int) =
      if k = 0 then t.has_zero <- true
      else begin
        let i = slot t k in
        if t.keys.(i) = 0 then begin
          t.keys.(i) <- k;
          t.count <- t.count + 1;
          if 2 * t.count > t.mask then grow t
        end
      end

    let mem (t : t) (k : int) : bool = if k = 0 then t.has_zero else t.keys.(slot t k) = k

    (** Membership test that inserts on miss, sharing one probe for both:
        returns whether [k] was already present. *)
    let probe_add (t : t) (k : int) : bool =
      if k = 0 then
        if t.has_zero then true
        else begin
          t.has_zero <- true;
          false
        end
      else begin
        let i = slot t k in
        if t.keys.(i) = k then true
        else begin
          t.keys.(i) <- k;
          t.count <- t.count + 1;
          if 2 * t.count > t.mask then grow t;
          false
        end
      end
  end

  (* Keep rows [idx] (with replacement tags); canonicalizes emptiness. *)
  let take (b : batch) (idx : int array) (tags : P.t array) : batch =
    let n = Array.length idx in
    if n = 0 then empty
    else { n; cols = Array.map (fun c -> Column.gather c idx) b.cols; tags }

  (* ---- normalization and sorted-run algebra ------------------------------- *)

  (** Stable-sort rows, ⊕-merge duplicates in emission order, drop discarded
      tags: exactly [Interp.normalize] followed by [Tuple.Map.bindings]. *)
  let rec sort_normalize (b : batch) : batch =
    if b.n = 0 then empty
    else begin
      (* Strictly-sorted inputs (frequent: joins over sorted deltas emit in
         near-sorted order) skip the permutation sort and duplicate fold
         entirely — only the discard filter applies, and when nothing is
         discarded the batch is returned as-is, arrays shared. *)
      let rcmp = self_cmp b.cols in
      let sorted = ref true in
      (try
         for i = 1 to b.n - 1 do
           if rcmp (i - 1) i >= 0 then begin
             sorted := false;
             raise Exit
           end
         done
       with Exit -> ());
      if !sorted then begin
        if Array.exists P.discard b.tags then begin
          let out_idx = Ivec.create () and out_tags = ref [] in
          for i = 0 to b.n - 1 do
            if not (P.discard b.tags.(i)) then begin
              Ivec.push out_idx i;
              out_tags := b.tags.(i) :: !out_tags
            end
          done;
          take b (Ivec.to_array out_idx) (Array.of_list (List.rev !out_tags))
        end
        else b
      end
      else sort_normalize_slow b
    end

  and sort_normalize_slow (b : batch) : batch =
    begin
      let rcmp = self_cmp b.cols in
      let idx = Array.init b.n Fun.id in
      let cmp i j =
        let c = rcmp i j in
        if c <> 0 then c else Stdlib.compare (i : int) j
      in
      Array.sort cmp idx;
      let keep = Array.make b.n 0 and tags = Array.make b.n b.tags.(0) in
      let m = ref 0 in
      Array.iter
        (fun r ->
          if !m > 0 && rcmp keep.(!m - 1) r = 0 then
            tags.(!m - 1) <- P.add tags.(!m - 1) b.tags.(r)
          else begin
            keep.(!m) <- r;
            tags.(!m) <- b.tags.(r);
            incr m
          end)
        idx;
      let out_idx = Ivec.create () and out_tags = ref [] in
      for x = 0 to !m - 1 do
        if not (P.discard tags.(x)) then begin
          Ivec.push out_idx keep.(x);
          out_tags := tags.(x) :: !out_tags
        end
      done;
      take b (Ivec.to_array out_idx) (Array.of_list (List.rev !out_tags))
    end

  (** Sorted merge of two strictly-sorted runs, ⊕-merging collisions with the
      {e older} ([a]) tag first — [Tuple.Map.union (fun _ o n -> P.add o n)],
      i.e. [Interp.merge_newly].  No discard filtering (the tree-walker's
      merge does none either). *)
  let union_runs (a : batch) (b : batch) : batch =
    if a.n = 0 then b
    else if b.n = 0 then a
    else begin
      let cmp = cross_cmp a.cols b.cols in
      let plan = Array.make (a.n + b.n) 0 in
      let tags = Array.make (a.n + b.n) a.tags.(0) in
      let k = ref 0 and i = ref 0 and j = ref 0 in
      while !i < a.n && !j < b.n do
        let c = cmp !i !j in
        if c < 0 then begin
          plan.(!k) <- !i lsl 1;
          tags.(!k) <- a.tags.(!i);
          incr k;
          incr i
        end
        else if c > 0 then begin
          plan.(!k) <- (!j lsl 1) lor 1;
          tags.(!k) <- b.tags.(!j);
          incr k;
          incr j
        end
        else begin
          plan.(!k) <- !i lsl 1;
          tags.(!k) <- P.add a.tags.(!i) b.tags.(!j);
          incr k;
          incr i;
          incr j
        end
      done;
      while !i < a.n do
        plan.(!k) <- !i lsl 1;
        tags.(!k) <- a.tags.(!i);
        incr k;
        incr i
      done;
      while !j < b.n do
        plan.(!k) <- (!j lsl 1) lor 1;
        tags.(!k) <- b.tags.(!j);
        incr k;
        incr j
      done;
      let plan = Array.sub plan 0 !k in
      {
        n = !k;
        cols = Array.map2 (fun ca cb -> Column.merge ca cb plan) a.cols b.cols;
        tags = Array.sub tags 0 !k;
      }
    end

  (* When every column of every run is a same-type unboxed int column and the
     per-column value spans pack into a small composite key, the whole run
     stack merges with one stable counting sort instead of O(log k) pairwise
     comparison merges.  Stability over the oldest-first concatenation makes
     colliding tags fold oldest-to-newest exactly like the tree-walker's
     linear [merge_newly] fold — this path has {e no} ⊕-association caveat.
     Key-width and range guards keep the count array proportional to the
     data; anything else falls back to the comparison merge. *)
  let radix_bits = 20

  let force_radix (oldest_first : batch list) : batch option =
    match oldest_first with
    | [] -> Some empty
    | first :: _ -> (
        let width = Array.length first.cols in
        let total = List.fold_left (fun acc r -> acc + r.n) 0 oldest_first in
        if width = 0 || total = 0 then None
        else
          try
            let col_ty = function Column.I (ty, _) -> ty | _ -> raise Exit in
            let tys = Array.map col_ty first.cols in
            let runs = Array.of_list oldest_first in
            let nruns = Array.length runs in
            (* per-run raw int arrays, encoding-checked up front *)
            let raw =
              Array.map
                (fun (r : batch) ->
                  Array.mapi
                    (fun c col ->
                      match col with
                      | Column.I (ty, a) when Value.equal_ty ty tys.(c) -> a
                      | _ -> raise Exit)
                    r.cols)
                runs
            in
            (* Per-column spans; higher columns occupy higher key bits, so
               composite-key order is exactly lexicographic row order. *)
            let shift_bits = Array.make width 0 and mins = Array.make width 0 in
            let bits_total = ref 0 in
            for c = 0 to width - 1 do
              let mn = ref max_int and mx = ref min_int in
              for r = 0 to nruns - 1 do
                let a = raw.(r).(c) in
                for i = 0 to Array.length a - 1 do
                  let v = a.(i) in
                  if v < !mn then mn := v;
                  if v > !mx then mx := v
                done
              done;
              let span = !mx - !mn in
              if span < 0 then raise Exit;
              let bits = ref 0 in
              while span lsr !bits > 0 do
                incr bits
              done;
              mins.(c) <- !mn;
              shift_bits.(c) <- !bits;
              bits_total := !bits_total + !bits;
              if !bits_total > radix_bits then raise Exit
            done;
            let range = 1 lsl !bits_total in
            if range > (16 * total) + 1024 then raise Exit;
            (* composite keys + histogram, one pass over the runs *)
            let keys = Array.make total 0 in
            let count = Array.make (range + 1) 0 in
            let off = ref 0 in
            for r = 0 to nruns - 1 do
              let rc = raw.(r) in
              let n = runs.(r).n in
              (match rc with
              | [| a0; a1 |] ->
                  let m0 = mins.(0) and m1 = mins.(1) and s1 = shift_bits.(1) in
                  for i = 0 to n - 1 do
                    let key = ((a0.(i) - m0) lsl s1) lor (a1.(i) - m1) in
                    keys.(!off + i) <- key;
                    count.(key + 1) <- count.(key + 1) + 1
                  done
              | _ ->
                  for i = 0 to n - 1 do
                    let key = ref 0 in
                    for c = 0 to width - 1 do
                      key := (!key lsl shift_bits.(c)) lor (rc.(c).(i) - mins.(c))
                    done;
                    keys.(!off + i) <- !key;
                    count.(!key + 1) <- count.(!key + 1) + 1
                  done);
              off := !off + n
            done;
            for k = 1 to range do
              count.(k) <- count.(k) + count.(k - 1)
            done;
            (* Stable scatter straight to sorted position — no flattened
               copy, no permutation array.  Stability over the oldest-first
               run order is what makes the duplicate fold below match the
               tree-walker's linear ⊕ order. *)
            let out_cols = Array.init width (fun _ -> Array.make total 0) in
            let out_tags = Array.make total first.tags.(0) in
            let keys_sorted = Array.make total 0 in
            let off = ref 0 in
            for r = 0 to nruns - 1 do
              let rc = raw.(r) and tg = runs.(r).tags in
              let n = runs.(r).n in
              (match rc with
              | [| a0; a1 |] ->
                  let o0 = out_cols.(0) and o1 = out_cols.(1) in
                  for i = 0 to n - 1 do
                    let key = keys.(!off + i) in
                    let p = count.(key) in
                    count.(key) <- p + 1;
                    o0.(p) <- a0.(i);
                    o1.(p) <- a1.(i);
                    out_tags.(p) <- tg.(i);
                    keys_sorted.(p) <- key
                  done
              | _ ->
                  for i = 0 to n - 1 do
                    let key = keys.(!off + i) in
                    let p = count.(key) in
                    count.(key) <- p + 1;
                    for c = 0 to width - 1 do
                      out_cols.(c).(p) <- rc.(c).(i)
                    done;
                    out_tags.(p) <- tg.(i);
                    keys_sorted.(p) <- key
                  done);
              off := !off + n
            done;
            (* ⊕-fold duplicate keys in place (key equality iff row
               equality: the key is injective on the offset values by
               construction); duplicate-free input compacts to itself with
               no writes and the scattered arrays are returned as-is. *)
            let m = ref 0 and last_key = ref (-1) in
            for p = 0 to total - 1 do
              let key = keys_sorted.(p) in
              if !m > 0 && key = !last_key then
                out_tags.(!m - 1) <- P.add out_tags.(!m - 1) out_tags.(p)
              else begin
                if !m <> p then begin
                  for c = 0 to width - 1 do
                    out_cols.(c).(!m) <- out_cols.(c).(p)
                  done;
                  out_tags.(!m) <- out_tags.(p)
                end;
                last_key := key;
                incr m
              end
            done;
            let m = !m in
            Some
              {
                n = m;
                cols =
                  Array.init width (fun c ->
                      Column.I
                        ( tys.(c),
                          if m = total then out_cols.(c)
                          else Array.sub out_cols.(c) 0 m ));
                tags = (if m = total then out_tags else Array.sub out_tags 0 m);
              }
          with Exit -> None)

  (* ---- materialized relations: sorted-run stacks --------------------------- *)

  type crel = {
    mutable runs : batch list;  (** newest first; each strictly sorted *)
    mutable hset : Ihs.t option;
        (** row hashes of every member tuple; [None] until first probed —
            delta relations are never probed, so they never pay for one *)
    mutable unhashed : batch list;  (** runs whose hashes are not in [hset] yet *)
    mutable prehashed : batch option;
        (** the one batch whose row hashes {!delta_of_run} already inserted
            while probing — if the next {!crel_push} pushes that exact batch
            (physical equality), it skips the hash queue entirely *)
    mutable version : int;  (** bumped on every content change *)
  }

  let crel_empty () : crel =
    { runs = []; hset = None; unhashed = []; prehashed = None; version = 0 }

  (** Flush pending runs into the membership set, building it on first use. *)
  let hset_of (c : crel) : Ihs.t =
    let s =
      match c.hset with
      | Some s -> s
      | None ->
          let total = List.fold_left (fun a (r : batch) -> a + r.n) 0 c.unhashed in
          let s = Ihs.create total in
          c.hset <- Some s;
          s
    in
    List.iter
      (fun (r : batch) ->
        let h = row_hasher r.cols in
        for i = 0 to r.n - 1 do
          Ihs.add s (h i)
        done)
      c.unhashed;
    c.unhashed <- [];
    s

  let crel_of_run (r : batch) : crel =
    let c = crel_empty () in
    if r.n > 0 then begin
      c.runs <- [ r ];
      c.unhashed <- [ r ]
    end;
    c

  let crel_of_relation (rel : P.t Tuple.Map.t) : crel =
    let c = crel_empty () in
    if not (Tuple.Map.is_empty rel) then begin
      let r = of_list (Tuple.Map.bindings rel) in
      c.runs <- [ r ];
      c.unhashed <- [ r ]
    end;
    c

  (* Amortized doubling: merging only when the newer run has caught up in
     size bounds the stack at O(log N) runs and total copying at O(N log N). *)
  let rec squash = function
    | a :: b :: rest when a.n >= b.n -> squash (union_runs b a :: rest)
    | runs -> runs

  (** ⊕-merge a freshly normalized run into the relation
      ([Interp.merge_newly] semantics). *)
  let crel_push (c : crel) (r : batch) =
    if r.n > 0 then begin
      c.runs <- squash (r :: c.runs);
      (match c.prehashed with
      | Some b when b == r -> ()  (* hashes inserted during the delta probe *)
      | _ -> c.unhashed <- r :: c.unhashed);
      c.prehashed <- None;
      c.version <- c.version + 1
    end

  (** The whole relation as one sorted run (compacts and caches). *)
  let crel_force (c : crel) : batch =
    match c.runs with
    | [] -> empty
    | [ r ] -> r
    | newest_first ->
        let merged =
          match force_radix (List.rev newest_first) with
          | Some m -> m
          | None ->
              (* Adjacent pairwise rounds: O(N log k) total copying even when
                 the fixpoint pushed one small run per iteration (a linear
                 fold would be O(N·k) — quadratic on a chain TC).  Only
                 adjacent runs merge, so colliding tags still fold
                 oldest-to-newest; the association differs from the linear
                 fold, which ⊕-associativity absorbs (the same caveat the
                 run-merge timing already carries). *)
              let rec round = function
                | newer :: older :: rest -> union_runs older newer :: round rest
                | tail -> tail
              in
              let rec go = function
                | [] -> empty
                | [ r ] -> r
                | runs -> go (round runs)
              in
              go newest_first
        in
        c.runs <- [ merged ];
        (* same membership, one run: re-anchor the pending-hash queue so the
           pre-merge run arrays can be collected *)
        if c.hset = None then c.unhashed <- [ merged ];
        merged

  let find_in_run (r : batch) (pcols : Column.t array) (i : int) : P.t option =
    let lo = ref 0 and hi = ref r.n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cmp_cols_across r.cols pcols mid i < 0 then lo := mid + 1 else hi := mid
    done;
    if !lo < r.n && cmp_cols_across r.cols pcols !lo i = 0 then Some r.tags.(!lo) else None

  (** Accumulated ⊕ tag of row [i] of [pcols] across all runs, oldest first
      — the tag [merge_newly] would have stored.  The membership hash makes
      the all-new common case O(1). *)
  let crel_find_slow (c : crel) (pcols : Column.t array) (i : int) : P.t option =
    let rec go = function
      | [] -> None
      | r :: older -> (
          let acc = go older in
          match find_in_run r pcols i with
          | None -> acc
          | Some t -> (
              match acc with None -> Some t | Some o -> Some (P.add o t)))
    in
    go c.runs

  let crel_find (c : crel) (pcols : Column.t array) (i : int) : P.t option =
    if not (Ihs.mem (hset_of c) (row_hash pcols i)) then None
    else crel_find_slow c pcols i

  let to_relation (c : crel) : P.t Tuple.Map.t =
    let r = crel_force c in
    let m = ref Tuple.Map.empty in
    for i = r.n - 1 downto 0 do
      m := Tuple.Map.add (tuple_at r i) r.tags.(i) !m
    done;
    !m

  (** [Interp.delta_of] over a sorted newly-derived run: tuples absent from
      [old] keep their tag; colliding tuples carry the merged (old ⊕ new) tag
      unless saturated. *)
  let delta_of_run ~(old : crel) (newly : batch) : batch =
    if newly.n = 0 then empty
    else begin
      let hs = hset_of old in
      let hash = row_hasher newly.cols in
      (* Phase 1: membership scan that inserts each miss as it goes — on a
         growing fixpoint the whole batch is usually new, so the delta IS
         the normalized update (columns and tags shared) and the subsequent
         push of this same batch finds its hashes already inserted
         ([prehashed]), halving total hash work.  Rows in [newly] are
         distinct (it is normalized), so inserting while scanning cannot
         make a later row of the same batch look like a member.  A hit
         aborts to the verifying slow path; the partial inserts are harmless
         because every row of [newly] becomes a member on push regardless,
         and intervening probes re-verify against the runs. *)
      let hit = ref (-1) in
      (try
         for i = 0 to newly.n - 1 do
           if Ihs.probe_add hs (hash i) then begin
             hit := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !hit < 0 then begin
        old.prehashed <- Some newly;
        newly
      end
      else begin
        let out_idx = Ivec.create () and out_tags = ref [] in
        for i = 0 to newly.n - 1 do
          match
            if Ihs.mem hs (hash i) then crel_find_slow old newly.cols i else None
          with
          | None ->
              Ivec.push out_idx i;
              out_tags := newly.tags.(i) :: !out_tags
          | Some t_old ->
              let merged = P.add t_old newly.tags.(i) in
              if not (P.saturated ~old:t_old merged) then begin
                Ivec.push out_idx i;
                out_tags := merged :: !out_tags
              end
        done;
        take newly (Ivec.to_array out_idx) (Array.of_list (List.rev !out_tags))
      end
    end

  (* ---- σ / π / ∪ / × ------------------------------------------------------- *)

  let select (cond : Ram.vexpr) (b : batch) : batch =
    if b.n = 0 then empty
    else begin
      let sel = Ivec.create () in
      for i = 0 to b.n - 1 do
        if Ram.eval_cond (tuple_at b i) cond then Ivec.push sel i
      done;
      let idx = Ivec.to_array sel in
      take b idx (Array.map (fun i -> b.tags.(i)) idx)
    end

  let project (m : Ram.vexpr list) (b : batch) : batch =
    if b.n = 0 then empty
    else begin
      let arity = Array.length b.cols in
      let accesses =
        List.map (function Ram.Access i when i < arity -> Some i | _ -> None) m
      in
      if List.for_all Option.is_some accesses then
        (* pure column selection: no per-row work, columns and tags shared *)
        { b with cols = Array.of_list (List.map (fun o -> b.cols.(Option.get o)) accesses) }
      else begin
        let kept = Ivec.create () and outs = ref [] in
        for i = 0 to b.n - 1 do
          match Ram.eval_mapping (tuple_at b i) m with
          | Some u ->
              Ivec.push kept i;
              outs := u :: !outs
          | None -> ()
        done;
        let rows = Array.of_list (List.rev !outs) in
        if Array.length rows = 0 then empty
        else
          let out_arity = List.length m in
          {
            n = Array.length rows;
            cols =
              Array.init out_arity (fun c -> Column.pack (Array.map (fun u -> u.(c)) rows));
            tags = Array.map (fun i -> b.tags.(i)) (Ivec.to_array kept);
          }
      end
    end

  let union (a : batch) (b : batch) : batch =
    if a.n = 0 then b
    else if b.n = 0 then a
    else
      {
        n = a.n + b.n;
        cols = Array.map2 Column.append a.cols b.cols;
        tags = Array.append a.tags b.tags;
      }

  let concat (bs : batch list) : batch = List.fold_left union empty bs

  let product (a : batch) (b : batch) : batch =
    if a.n = 0 || b.n = 0 then empty
    else begin
      let n = a.n * b.n in
      let la = Array.init n (fun k -> k / b.n) and lb = Array.init n (fun k -> k mod b.n) in
      {
        n;
        cols =
          Array.append
            (Array.map (fun c -> Column.gather c la) a.cols)
            (Array.map (fun c -> Column.gather c lb) b.cols);
        tags = Array.init n (fun k -> P.mult a.tags.(k / b.n) b.tags.(k mod b.n));
      }
    end

  let retag (tag : P.t) (b : batch) : batch =
    if b.n = 0 then empty else { b with tags = Array.make b.n tag }

  (* ---- − / ∩ against a normalized right-hand run --------------------------- *)

  let diff (a : batch) (rb : batch) : batch =
    if a.n = 0 then empty
    else begin
      let out_idx = Ivec.create () and out_tags = ref [] in
      for i = 0 to a.n - 1 do
        match find_in_run rb a.cols i with
        | None ->
            Ivec.push out_idx i;
            out_tags := a.tags.(i) :: !out_tags
        | Some tb -> (
            match P.negate tb with
            | Some ntb ->
                Ivec.push out_idx i;
                out_tags := P.mult a.tags.(i) ntb :: !out_tags
            | None -> runtime_error (P.name ^ " does not support negation"))
      done;
      take a (Ivec.to_array out_idx) (Array.of_list (List.rev !out_tags))
    end

  let intersect (a : batch) (rb : batch) : batch =
    if a.n = 0 || rb.n = 0 then empty
    else begin
      let out_idx = Ivec.create () and out_tags = ref [] in
      for i = 0 to a.n - 1 do
        match find_in_run rb a.cols i with
        | None -> ()
        | Some tb ->
            Ivec.push out_idx i;
            out_tags := P.mult a.tags.(i) tb :: !out_tags
      done;
      take a (Ivec.to_array out_idx) (Array.of_list (List.rev !out_tags))
    end

  (* ---- ⋈ / ▷ sorted-run key indices ---------------------------------------- *)

  (** Right side of a join, stable-sorted by key: probing is a binary search
      for the key's run, and walking the run {e backwards} reproduces the
      tree-walker's per-key match order (its index buckets are built by
      consing, so they are reversed). *)
  type key_index = {
    ki_cols : Column.t array;  (** key columns of the source, source row order *)
    ki_perm : int array;  (** source rows, stable-sorted by key *)
    ki_src : batch;
    ki_ikey : (Value.ty * int array) option;
        (** single-int-column keys gathered in [ki_perm] order: probes
            become binary searches over an unboxed [int array] — the hot
            path of every equi-join on an integer attribute *)
  }

  let build_key_index (keys : int list) (r : batch) : key_index =
    let kcols =
      if r.n = 0 then [||] else Array.of_list (List.map (fun k -> r.cols.(k)) keys)
    in
    let perm = Array.init r.n Fun.id in
    let rcmp = self_cmp kcols in
    let cmp i j =
      let c = rcmp i j in
      if c <> 0 then c else Stdlib.compare (i : int) j
    in
    Array.sort cmp perm;
    let ikey =
      match kcols with
      | [| Column.I (ty, arr) |] -> Some (ty, Array.map (fun p -> arr.(p)) perm)
      | _ -> None
    in
    { ki_cols = kcols; ki_perm = perm; ki_src = r; ki_ikey = ikey }

  (* Sorted-position range [lo, hi) of index entries whose key equals row [i]
     of [pcols]. *)
  let key_range (ix : key_index) (pcols : Column.t array) (i : int) : int * int =
    let n = Array.length ix.ki_perm in
    let lower () =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cmp_cols_across ix.ki_cols pcols ix.ki_perm.(mid) i < 0 then lo := mid + 1
        else hi := mid
      done;
      !lo
    in
    let upper () =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cmp_cols_across ix.ki_cols pcols ix.ki_perm.(mid) i <= 0 then lo := mid + 1
        else hi := mid
      done;
      !lo
    in
    let lo = lower () in
    if lo >= n || cmp_cols_across ix.ki_cols pcols ix.ki_perm.(lo) i <> 0 then (lo, lo)
    else (lo, upper ())

  (* Sorted-position range of [karr] entries equal to [k]: the unboxed twin
     of {!key_range} for single-int-column keys. *)
  let int_range (karr : int array) (k : int) : int * int =
    let n = Array.length karr in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if karr.(mid) < k then lo := mid + 1 else hi := mid
    done;
    let first = !lo in
    if first >= n || karr.(first) <> k then (first, first)
    else begin
      let lo = ref first and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if karr.(mid) <= k then lo := mid + 1 else hi := mid
      done;
      (first, !lo)
    end

  (** [join ~lkeys left ix] with optionally only the combined columns in
      [keep] materialized (a π of pure accesses directly above the ⋈ —
      emission order and tags are those of the unprojected join, so fusing
      is observationally identical to projecting afterwards while skipping
      the gathers of dropped columns). *)
  let join ?keep ~(lkeys : int list) (left : batch) (ix : key_index) : batch =
    if left.n = 0 || ix.ki_src.n = 0 then empty
    else begin
      let pcols = Array.of_list (List.map (fun k -> left.cols.(k)) lkeys) in
      (* int-keyed probes bypass the boxed comparator entirely; the type
         tags must match or ordering would go through [Value.compare_ty]
         first *)
      let fast =
        match (ix.ki_ikey, pcols) with
        | Some (ty, karr), [| Column.I (pty, parr) |] when Value.equal_ty pty ty ->
            Some (karr, parr)
        | _ -> None
      in
      let ls = Ivec.create () and rs = Ivec.create () in
      for i = 0 to left.n - 1 do
        let lo, hi =
          match fast with
          | Some (karr, parr) -> int_range karr parr.(i)
          | None -> key_range ix pcols i
        in
        for m = hi - 1 downto lo do
          Ivec.push ls i;
          Ivec.push rs ix.ki_perm.(m)
        done
      done;
      let la = Ivec.to_array ls and ra = Ivec.to_array rs in
      let n = Array.length la in
      if n = 0 then empty
      else begin
        let lw = Array.length left.cols in
        let combined_at (k : int) : Column.t =
          if k < lw then Column.gather left.cols.(k) la
          else Column.gather ix.ki_src.cols.(k - lw) ra
        in
        let cols =
          match keep with
          | None ->
              Array.init (lw + Array.length ix.ki_src.cols) combined_at
          | Some ks -> Array.map combined_at ks
        in
        {
          n;
          cols;
          tags = Array.init n (fun k -> P.mult left.tags.(la.(k)) ix.ki_src.tags.(ra.(k)));
        }
      end
    end

  (** Anti-join right index: one entry per distinct key, tags ⊕-folded in the
      right side's emission order ([Interp.build_antijoin_index]). *)
  type anti_index = {
    ai_cols : Column.t array;  (** key columns gathered at group leaders: strictly sorted *)
    ai_tags : P.t array;
  }

  let build_anti_index (keys : int list) (r : batch) : anti_index =
    if r.n = 0 then { ai_cols = [||]; ai_tags = [||] }
    else begin
      let ix = build_key_index keys r in
      let leaders = Ivec.create () and tags = ref [] in
      (* walk sorted positions, folding tags per key group in emission
         (= stable-sorted) order *)
      let prev_leader = ref (-1) in
      Array.iter
        (fun row ->
          if !prev_leader >= 0 && cmp_rows ix.ki_cols !prev_leader row = 0 then
            tags := (match !tags with t :: rest -> P.add t r.tags.(row) :: rest | [] -> assert false)
          else begin
            prev_leader := row;
            Ivec.push leaders row;
            tags := r.tags.(row) :: !tags
          end)
        ix.ki_perm;
      let la = Ivec.to_array leaders in
      {
        ai_cols = Array.map (fun c -> Column.gather c la) ix.ki_cols;
        ai_tags = Array.of_list (List.rev !tags);
      }
    end

  let anti_find (ai : anti_index) (pcols : Column.t array) (i : int) : P.t option =
    let n = Array.length ai.ai_tags in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cmp_cols_across ai.ai_cols pcols mid i < 0 then lo := mid + 1 else hi := mid
    done;
    if !lo < n && cmp_cols_across ai.ai_cols pcols !lo i = 0 then Some ai.ai_tags.(!lo)
    else None

  let antijoin ~(lkeys : int list) (left : batch) (ai : anti_index) : batch =
    if left.n = 0 then empty
    else begin
      let pcols = Array.of_list (List.map (fun k -> left.cols.(k)) lkeys) in
      let out_idx = Ivec.create () and out_tags = ref [] in
      for i = 0 to left.n - 1 do
        match anti_find ai pcols i with
        | None ->
            Ivec.push out_idx i;
            out_tags := left.tags.(i) :: !out_tags
        | Some tr -> (
            match P.negate tr with
            | Some ntr ->
                Ivec.push out_idx i;
                out_tags := P.mult left.tags.(i) ntr :: !out_tags
            | None -> runtime_error (P.name ^ " does not support negation"))
      done;
      take left (Ivec.to_array out_idx) (Array.of_list (List.rev !out_tags))
    end

  (* ---- aggregation ---------------------------------------------------------- *)

  (* [body] and [dom] are normalized runs (sorted strictly by full tuple), so
     group keys are consecutive prefix ranges and groups enumerate in sorted
     key order — the same order [Interp.group_by_key] yields.  Group bodies
     are decoded back to tuples and fed to the shared {!Aggregate.Make}. *)

  let rest_at ~key_len (b : batch) (i : int) : Tuple.t =
    Array.init (Array.length b.cols - key_len) (fun c -> Column.get b.cols.(c + key_len) i)

  let key_at ~key_len (b : batch) (i : int) : Tuple.t =
    Array.init key_len (fun c -> Column.get b.cols.(c) i)

  (* first row >= [s] whose first [key_len] columns differ from row [s] *)
  let group_end ~key_len (b : batch) (s : int) : int =
    let kcols = Array.sub b.cols 0 (min key_len (Array.length b.cols)) in
    let e = ref (s + 1) in
    while !e < b.n && cmp_rows kcols s !e = 0 do
      incr e
    done;
    !e

  let group_items ~key_len (b : batch) (s : int) (e : int) : (Tuple.t * P.t) list =
    List.init (e - s) (fun k -> (rest_at ~key_len b (s + k), b.tags.(s + k)))

  (* Range [lo, hi) of [body] rows whose first [Array.length dcols] columns
     equal row [i] of [dcols]. *)
  let prefix_range (body : batch) (dcols : Column.t array) (i : int) : int * int =
    if body.n = 0 then (0, 0)
    else begin
      let klen = min (Array.length dcols) (Array.length body.cols) in
      let kcols = Array.sub body.cols 0 klen in
      let search le =
        let lo = ref 0 and hi = ref body.n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          let c = cmp_cols_across kcols dcols mid i in
          if c < 0 || (le && c = 0) then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      let lo = search false in
      if lo >= body.n || cmp_cols_across kcols dcols lo i <> 0 then (lo, lo)
      else (lo, search true)
    end

  let aggregate (agg : Ram.aggregator) ~(key_len : int) ~(arg_len : int)
      ~(group : [ `No_group | `Implicit | `Domain of batch ]) (body : batch) : batch =
    match group with
    | `No_group ->
        let items = List.init body.n (fun i -> (rest_at ~key_len body i, body.tags.(i))) in
        of_list (Agg.run agg ~arg_len items)
    | `Implicit ->
        let out = ref [] in
        let s = ref 0 in
        while !s < body.n do
          let e = group_end ~key_len body !s in
          let key = key_at ~key_len body !s in
          let results = Agg.run agg ~arg_len (group_items ~key_len body !s e) in
          List.iter (fun (r, t) -> out := (Tuple.append key r, t) :: !out) results;
          s := e
        done;
        of_list (List.rev !out)
    | `Domain dom ->
        let out = ref [] in
        for i = 0 to dom.n - 1 do
          let lo, hi = prefix_range body dom.cols i in
          let key = tuple_at dom i in
          let tg = dom.tags.(i) in
          let results = Agg.run agg ~arg_len (group_items ~key_len body lo hi) in
          List.iter (fun (r, t) -> out := (Tuple.append key r, P.mult tg t) :: !out) results
        done;
        of_list (List.rev !out)
end
