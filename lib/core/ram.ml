(** SclRam, the low-level relational-algebra representation Scallop programs
    compile to (paper Fig. 5 core fragment, Fig. 22 full syntax).

    Expressions operate over named relational predicates with selection σ,
    projection π, union ∪, product ×, difference −, intersection ∩, natural
    join ⋈, anti-join ▷, tag overwrites 𝟙/∅, aggregation γ (with optional
    group-by γ̂), and sampling ψ/ψ̂.  Join and anti-join carry explicit key
    column indices because our tuples are positional (see DESIGN.md).

    Selections and projections are expressed in a small first-order term
    language [vexpr] over tuple accessors — this keeps the IR a pure data
    structure (inspectable, printable, optimizable) rather than embedding
    OCaml closures. *)

(* ---- value expressions --------------------------------------------------- *)

type vexpr =
  | Access of int  (** i-th column of the input tuple *)
  | Const of Value.t
  | Binop of Foreign.binop * vexpr * vexpr
  | Unop of Foreign.unop * vexpr
  | Call of string * vexpr list  (** foreign function, may fail *)
  | If_then_else of vexpr * vexpr * vexpr
  | Cast of Value.ty * vexpr

(** Evaluate a value expression against a tuple; [None] signals FF failure
    (the fact is dropped, paper Sec. 3.2). *)
let rec eval_vexpr (t : Tuple.t) (e : vexpr) : Value.t option =
  match e with
  | Access i -> if i < Array.length t then Some t.(i) else None
  | Const v -> Some v
  | Binop (op, a, b) -> (
      match (eval_vexpr t a, eval_vexpr t b) with
      | Some va, Some vb -> Foreign.eval_binop op va vb
      | _ -> None)
  | Unop (op, a) -> Option.bind (eval_vexpr t a) (Foreign.eval_unop op)
  | Call (name, args) -> (
      match Foreign.lookup_function name with
      | None -> None
      | Some f ->
          let rec eval_all acc = function
            | [] -> Some (List.rev acc)
            | a :: rest -> (
                match eval_vexpr t a with
                | Some v -> eval_all (v :: acc) rest
                | None -> None)
          in
          Option.bind (eval_all [] args) f)
  | If_then_else (c, a, b) -> (
      match eval_vexpr t c with
      | Some (Value.B true) -> eval_vexpr t a
      | Some (Value.B false) -> eval_vexpr t b
      | _ -> None)
  | Cast (ty, a) -> Option.bind (eval_vexpr t a) (Value.cast ty)

(** Evaluate a condition: true iff the expression evaluates to [true].
    Failure counts as false (the tuple is filtered out). *)
let eval_cond (t : Tuple.t) (e : vexpr) : bool =
  match eval_vexpr t e with Some (Value.B b) -> b | _ -> false

(** Evaluate a projection mapping: all components must succeed, and float
    results must not be NaN. *)
let eval_mapping (t : Tuple.t) (m : vexpr list) : Tuple.t option =
  let rec go acc = function
    | [] -> Some (Tuple.of_list (List.rev acc))
    | e :: rest -> (
        match eval_vexpr t e with
        | Some (Value.Float (_, f)) when Float.is_nan f -> None
        | Some v -> go (v :: acc) rest
        | None -> None)
  in
  go [] m

(* ---- aggregators and samplers -------------------------------------------- *)

type aggregator =
  | Count
  | Sum
  | Prod
  | Min
  | Max
  | Argmin
  | Argmax
  | Exists
      (** [Forall] is desugared by the front-end into a negated [Exists]
          (paper Sec. 3.2's integrity-constraint example). *)

let aggregator_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Prod -> "prod"
  | Min -> "min"
  | Max -> "max"
  | Argmin -> "argmin"
  | Argmax -> "argmax"
  | Exists -> "exists"

type sampler = Top_k of int | Categorical of int | Uniform of int

let sampler_name = function
  | Top_k k -> Fmt.str "top<%d>" k
  | Categorical k -> Fmt.str "categorical<%d>" k
  | Uniform k -> Fmt.str "uniform<%d>" k

(* ---- expressions ---------------------------------------------------------- *)

(** Grouping discipline for aggregation/sampling:
    - [No_group]: one global aggregation over all tuples.
    - [Implicit]: groups are the distinct key prefixes occurring in the body
      (e.g. the implicit group-by of [top_1_kinship], paper Sec. 3.3).
    - [Domain e]: SQL-style where-clause (γ̂): groups are the tuples of [e];
      empty groups aggregate over the empty set (so count can yield 0). *)
type group = No_group | Implicit | Domain of expr

and expr =
  | Empty  (** ∅ *)
  | Singleton  (** the unit relation {() :: 1}; seeds rules without positive atoms *)
  | Pred of string
  | Select of vexpr * expr  (** σ_β *)
  | Project of vexpr list * expr  (** π_α *)
  | Union of expr * expr
  | Product of expr * expr
  | Diff of expr * expr  (** tagged difference, Diff-1/Diff-2 *)
  | Intersect of expr * expr
  | Join of { lkeys : int list; rkeys : int list; left : expr; right : expr }
      (** output = left tuple ++ right tuple, matching on key columns *)
  | Antijoin of { lkeys : int list; rkeys : int list; left : expr; right : expr }
      (** negation on a key: left tuples, tag ⊗ ⊖(⊕ matching right tags) *)
  | One_overwrite of expr  (** 𝟙(e): overwrite all tags with 1 *)
  | Zero_overwrite of expr  (** ∅(e): overwrite all tags with 0 *)
  | Aggregate of {
      agg : aggregator;
      key_len : int;  (** group-by key columns (tuple prefix) *)
      arg_len : int;  (** argmin/argmax argument columns after the keys *)
      group : group;
      body : expr;
    }
  | Sample of { sampler : sampler; key_len : int; group : group; body : expr }
  | Foreign_join of { name : string; args : fp_arg list; left : expr }
      (** flat-map a foreign predicate over left tuples; output = left ++
          the predicate's free-argument values *)

and fp_arg = F_col of int | F_const of Value.t | F_free

type rule = { head : string; body : expr }

type stratum = {
  rules : rule list;
  recursive : bool;
      (** whether any rule reads a head of this stratum; non-recursive
          strata need a single evaluation pass instead of a fixed point *)
}

type program = {
  strata : stratum list;
  outputs : string list;  (** relations to recover (ρ applies only to these) *)
}

(* ---- pretty printing ------------------------------------------------------ *)

let rec pp_vexpr fmt = function
  | Access i -> Fmt.pf fmt "$%d" i
  | Const v -> Value.pp fmt v
  | Binop (op, a, b) -> Fmt.pf fmt "(%a %s %a)" pp_vexpr a (Foreign.binop_name op) pp_vexpr b
  | Unop (op, a) -> Fmt.pf fmt "%s%a" (Foreign.unop_name op) pp_vexpr a
  | Call (f, args) -> Fmt.pf fmt "$%s(%a)" f (Fmt.list ~sep:Fmt.comma pp_vexpr) args
  | If_then_else (c, a, b) ->
      Fmt.pf fmt "(if %a then %a else %a)" pp_vexpr c pp_vexpr a pp_vexpr b
  | Cast (ty, a) -> Fmt.pf fmt "(%a as %s)" pp_vexpr a (Value.ty_name ty)

let rec pp_expr fmt = function
  | Empty -> Fmt.string fmt "∅"
  | Singleton -> Fmt.string fmt "{()}"
  | Pred p -> Fmt.string fmt p
  | Select (c, e) -> Fmt.pf fmt "σ[%a](%a)" pp_vexpr c pp_expr e
  | Project (m, e) ->
      Fmt.pf fmt "π[%a](%a)" (Fmt.list ~sep:Fmt.comma pp_vexpr) m pp_expr e
  | Union (a, b) -> Fmt.pf fmt "(%a ∪ %a)" pp_expr a pp_expr b
  | Product (a, b) -> Fmt.pf fmt "(%a × %a)" pp_expr a pp_expr b
  | Diff (a, b) -> Fmt.pf fmt "(%a − %a)" pp_expr a pp_expr b
  | Intersect (a, b) -> Fmt.pf fmt "(%a ∩ %a)" pp_expr a pp_expr b
  | Join { lkeys; rkeys; left; right } ->
      Fmt.pf fmt "(%a ⋈[%a;%a] %a)" pp_expr left
        (Fmt.list ~sep:Fmt.comma Fmt.int) lkeys
        (Fmt.list ~sep:Fmt.comma Fmt.int) rkeys pp_expr right
  | Antijoin { lkeys; rkeys; left; right } ->
      Fmt.pf fmt "(%a ▷[%a;%a] %a)" pp_expr left
        (Fmt.list ~sep:Fmt.comma Fmt.int) lkeys
        (Fmt.list ~sep:Fmt.comma Fmt.int) rkeys pp_expr right
  | One_overwrite e -> Fmt.pf fmt "𝟙(%a)" pp_expr e
  | Zero_overwrite e -> Fmt.pf fmt "∅tag(%a)" pp_expr e
  | Aggregate { agg; key_len; arg_len; group; body } ->
      Fmt.pf fmt "γ[%s,k=%d,a=%d%s](%a)" (aggregator_name agg) key_len arg_len
        (match group with
        | No_group -> ""
        | Implicit -> ",implicit"
        | Domain _ -> ",domain")
        pp_expr body
  | Sample { sampler; key_len; group = _; body } ->
      Fmt.pf fmt "ψ[%s,k=%d](%a)" (sampler_name sampler) key_len pp_expr body
  | Foreign_join { name; args; left } ->
      Fmt.pf fmt "(%a ⋉$%s[%a])" pp_expr left name
        (Fmt.list ~sep:Fmt.comma (fun fmt -> function
           | F_col i -> Fmt.pf fmt "$%d" i
           | F_const v -> Value.pp fmt v
           | F_free -> Fmt.string fmt "_"))
        args

(** One-line label of a node's own operator (children elided) — used by the
    execution profiler's per-node table, where the tree structure supplies
    the nesting that [pp_expr] would spell out. *)
let node_label = function
  | Empty -> "∅"
  | Singleton -> "{()}"
  | Pred p -> p
  | Select (c, _) -> Fmt.str "@[<h>σ[%a]@]" pp_vexpr c
  | Project (m, _) -> Fmt.str "@[<h>π[%a]@]" (Fmt.list ~sep:(Fmt.any ",") pp_vexpr) m
  | Union _ -> "∪"
  | Product _ -> "×"
  | Diff _ -> "−"
  | Intersect _ -> "∩"
  | Join { lkeys; rkeys; _ } ->
      Fmt.str "@[<h>⋈[%a;%a]@]"
        (Fmt.list ~sep:(Fmt.any ",") Fmt.int) lkeys
        (Fmt.list ~sep:(Fmt.any ",") Fmt.int) rkeys
  | Antijoin { lkeys; rkeys; _ } ->
      Fmt.str "@[<h>▷[%a;%a]@]"
        (Fmt.list ~sep:(Fmt.any ",") Fmt.int) lkeys
        (Fmt.list ~sep:(Fmt.any ",") Fmt.int) rkeys
  | One_overwrite _ -> "𝟙"
  | Zero_overwrite _ -> "∅tag"
  | Aggregate { agg; key_len; arg_len; group; _ } ->
      Fmt.str "γ[%s,k=%d,a=%d%s]" (aggregator_name agg) key_len arg_len
        (match group with No_group -> "" | Implicit -> ",implicit" | Domain _ -> ",domain")
  | Sample { sampler; key_len; _ } -> Fmt.str "ψ[%s,k=%d]" (sampler_name sampler) key_len
  | Foreign_join { name; _ } -> Fmt.str "⋉$%s" name

let pp_rule fmt { head; body } = Fmt.pf fmt "%s ← %a" head pp_expr body

let pp_program fmt { strata; outputs } =
  List.iteri
    (fun i s ->
      Fmt.pf fmt "stratum %d:@." i;
      List.iter (fun r -> Fmt.pf fmt "  %a@." pp_rule r) s.rules)
    strata;
  Fmt.pf fmt "outputs: %a@." (Fmt.list ~sep:Fmt.comma Fmt.string) outputs

(** Predicates read by an expression (used by stratification sanity checks
    and by the interpreter to know its dependencies). *)
let rec predicates_of_expr = function
  | Empty | Singleton -> []
  | Pred p -> [ p ]
  | Select (_, e) | Project (_, e) | One_overwrite e | Zero_overwrite e -> predicates_of_expr e
  | Union (a, b) | Product (a, b) | Diff (a, b) | Intersect (a, b) ->
      predicates_of_expr a @ predicates_of_expr b
  | Join { left; right; _ } | Antijoin { left; right; _ } ->
      predicates_of_expr left @ predicates_of_expr right
  | Aggregate { group; body; _ } -> (
      predicates_of_expr body
      @ match group with Domain e -> predicates_of_expr e | _ -> [])
  | Sample { group; body; _ } -> (
      predicates_of_expr body
      @ match group with Domain e -> predicates_of_expr e | _ -> [])
  | Foreign_join { left; _ } -> predicates_of_expr left
