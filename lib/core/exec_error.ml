(** Typed execution diagnostics.

    Every user-reachable failure of the pipeline — parse, desugar, type,
    stratification, compilation, and runtime evaluation including resource
    budgets — is described by a {!t} value rather than an exception-message
    string, so a serving layer can pattern-match on the failure class
    (retry? reject? shed load?) instead of grepping prose.  {!Session}
    re-raises these as [Session.Error of t]; the rendered form ({!pp},
    {!to_string}) is stable and is what the CLI prints.

    [Budget_exceeded] and [Cancelled] are the {e recoverable} class: they
    mean the program was cut off by policy, not that it is wrong.  Batched
    execution reports them per sample and keeps the surviving samples'
    results (see [Session.run_batch]). *)

(** Which budget axis was exhausted (see [Budget.t]). *)
type budget_kind =
  | Deadline  (** wall-clock timeout *)
  | Iterations  (** fixpoint-iteration cap of a stratum *)
  | Tuples  (** cumulative derived-tuple cap *)
  | Node_evals  (** RAM-node evaluation cap *)

type t =
  | Budget_exceeded of {
      kind : budget_kind;
      stratum : int;  (** stratum being evaluated when the budget ran out *)
      iterations : int;  (** fixpoint iterations completed in that stratum *)
      elapsed : float;  (** wall-clock seconds since the run started *)
    }
  | Cancelled of { stratum : int; elapsed : float }
      (** the run's cancellation token fired; [stratum = -1] when the run
          was cancelled before it started (e.g. a not-yet-scheduled batch
          sample) *)
  | Unstratifiable of { head : string; dep : string }
      (** [head] depends on [dep] through negation or aggregation inside a
          recursive cycle *)
  | Parse_error of { msg : string; pos : Ast.pos }
  | Front_error of { msg : string; pos : Ast.pos }  (** desugaring / safety *)
  | Type_error of { msg : string; pos : Ast.pos }
  | Demand_error of { msg : string; pos : Ast.pos }
  | Compile_error of { msg : string; pos : Ast.pos }
  | Non_finite of { what : string }
      (** a NaN or infinity was detected in an example's values or
          gradients; resilient training loops quarantine the example
          (skip + count) instead of letting it poison the optimizer *)
  | Runtime_error of { msg : string }
      (** evaluation failure that is a property of the program/provenance
          pair (unsupported negation, foreign-predicate failure, …) *)
  | Invalid_input of { msg : string }
      (** malformed caller-supplied data: arity/type mismatches of dynamic
          facts, unreadable source files, … *)
  | Overloaded of { depth : int; age : float }
      (** the serving layer shed the request at admission: the queue held
          [depth] requests and its oldest had been waiting [age] seconds
          when the limits were exceeded.  The request was never executed —
          a client may safely retry it elsewhere or later *)
  | Worker_lost of { worker : int; attempts : int }
      (** the worker domain executing the request died or stopped
          heartbeating mid-flight (attempt number [attempts]); the request
          itself may be fine — it is retried against its remaining retry
          budget and this error surfaces only once that is exhausted *)
  | Recovery_failed of { session : string; reason : string }
      (** a durable session's persisted state could not be rebuilt at
          restart (corrupt log segment, program hash mismatch against the
          pinned [expect_hash], an op that no longer replays).  Scoped to
          one session: the serving layer answers that session's requests
          with this diagnostic and keeps every other session live *)
  | Replication_diverged of { session : string; segment : int; reason : string }
      (** a follower's replayed state stopped matching the primary's frame
          stream — per-segment checksum chain mismatch, an LSN that skips
          ahead with no snapshot to bridge it, or a replicated op that no
          longer validates.  The follower quarantines the session rather
          than serve silently-forked answers *)
  | Fenced of { epoch : int; current : int }
      (** this node holds replication epoch [epoch] but the cluster has
          moved to [current]: a follower was promoted and wrote a fencing
          epoch, so a deposed primary must refuse to acknowledge writes
          (the new primary may not have them).  Never retried — the node
          must be restarted as a follower of the new primary *)
  | Ack_timeout of { acked : int; quorum : int; waited : float }
      (** a quorum-acknowledged write saw only [acked] of the [quorum]
          follower acknowledgements it needs within the deadline.  The
          write is applied and locally durable but its replication level is
          unknown; blind retry would duplicate it, so the remedy is
          operational (check follower health), not retry *)

exception Error of t

let raise_error e = raise (Error e)

let kind_name = function
  | Deadline -> "deadline"
  | Iterations -> "iterations"
  | Tuples -> "tuples"
  | Node_evals -> "node-evals"

(** True for the recoverable resource-policy diagnostics ([Budget_exceeded]
    and [Cancelled]) as opposed to program/input errors. *)
let is_resource = function Budget_exceeded _ | Cancelled _ -> true | _ -> false

(** True for the per-example diagnostics a resilient training loop skips
    and counts rather than propagates: resource exhaustion and non-finite
    numerics.  Cancellation is excluded — it means the whole batch should
    stop, not that one example misbehaved. *)
let is_quarantine = function Budget_exceeded _ | Non_finite _ -> true | _ -> false

(** True for failures a serving layer may retry verbatim with a fresh
    attempt: the request itself was never shown to be at fault.
    [Overloaded] means it was shed before executing, [Worker_lost] that the
    executor died under it, [Non_finite] that a numeric fault (flaky
    hardware, injected chaos) poisoned one attempt's arithmetic.  The
    complement is deliberate: [Budget_exceeded] is {e not} transient —
    re-running the same work under the same budget fails deterministically,
    so the remedy is degradation (a cheaper provenance rung), not retry —
    and program/input errors ([Parse_error] … [Invalid_input]) fail every
    attempt identically. *)
let is_transient = function
  | Overloaded _ | Worker_lost _ | Non_finite _ -> true
  | Budget_exceeded _ | Cancelled _ | Unstratifiable _ | Parse_error _ | Front_error _
  | Type_error _ | Demand_error _ | Compile_error _ | Runtime_error _ | Invalid_input _
  | Recovery_failed _ | Replication_diverged _ | Fenced _ | Ack_timeout _ ->
      false

(** True for the failures the graceful-degradation ladder can rescue by
    re-running the work under a cheaper provenance: resource exhaustion,
    where fidelity — not the request — is what must give.  Shared by the
    resilient training layer ({!Scallop_nn.Scallop_layer}) and the serving
    circuit breaker so both degrade on exactly the same class. *)
let is_degradable = function Budget_exceeded _ -> true | _ -> false

let pp ppf = function
  | Budget_exceeded { kind; stratum; iterations; elapsed } ->
      Fmt.pf ppf
        "budget exceeded (%s) in stratum %d after %d fixpoint iteration%s (%.3fs elapsed)"
        (kind_name kind) stratum iterations
        (if iterations = 1 then "" else "s")
        elapsed
  | Cancelled { stratum; elapsed } ->
      if stratum < 0 then Fmt.pf ppf "execution cancelled before it started"
      else Fmt.pf ppf "execution cancelled in stratum %d (%.3fs elapsed)" stratum elapsed
  | Unstratifiable { head; dep } ->
      Fmt.pf ppf
        "program is not stratified: %s depends on %s through negation or aggregation \
         within a recursive cycle"
        head dep
  | Parse_error { msg; pos } -> Fmt.pf ppf "parse error at %a: %s" Ast.pp_pos pos msg
  | Front_error { msg; pos } -> Fmt.pf ppf "error at %a: %s" Ast.pp_pos pos msg
  | Type_error { msg; pos } -> Fmt.pf ppf "type error at %a: %s" Ast.pp_pos pos msg
  | Demand_error { msg; pos } -> Fmt.pf ppf "demand error at %a: %s" Ast.pp_pos pos msg
  | Compile_error { msg; pos } -> Fmt.pf ppf "compile error at %a: %s" Ast.pp_pos pos msg
  | Non_finite { what } -> Fmt.pf ppf "non-finite numerics: %s" what
  | Runtime_error { msg } -> Fmt.string ppf msg
  | Invalid_input { msg } -> Fmt.string ppf msg
  | Overloaded { depth; age } ->
      Fmt.pf ppf "service overloaded: %d request%s queued, oldest waiting %.3fs" depth
        (if depth = 1 then "" else "s")
        age
  | Worker_lost { worker; attempts } ->
      Fmt.pf ppf "worker %d lost while executing the request (attempt %d)" worker attempts
  | Recovery_failed { session; reason } ->
      Fmt.pf ppf "recovery of session %s failed: %s" session reason
  | Replication_diverged { session; segment; reason } ->
      Fmt.pf ppf "replica diverged on session %s in segment %d: %s" session segment reason
  | Fenced { epoch; current } ->
      Fmt.pf ppf "primary fenced: epoch %d deposed by epoch %d" epoch current
  | Ack_timeout { acked; quorum; waited } ->
      Fmt.pf ppf "replication ack timeout: %d/%d follower ack%s after %.3fs" acked quorum
        (if quorum = 1 then "" else "s")
        waited

let to_string = Fmt.to_to_string pp
