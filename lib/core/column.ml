(** Columnar attribute storage: one encoded column per tuple position.

    The columnar executor ({!Batch_ops}) keeps relations as struct-of-arrays
    batches: each attribute lives in one {!t}, and provenance tags in a
    parallel array.  Three encodings cover every {!Value.t}:

    - [I (ty, a)] — every value is [Int (ty, _)] with the {e same} type tag:
      a flat unboxed [int array].  Comparisons are native integer compares
      (the type tags are equal by construction), which is what makes sorting
      and merging runs an order of magnitude cheaper than {!Value.compare}
      over boxed tuples.
    - [F (ty, a)] — every value is [Float (ty, _)] with the same type tag: a
      flat unboxed [float array].  Comparisons use the polymorphic float
      order (the order [@@deriving ord] gives {!Value.t}), so NaN and signed
      zeros behave exactly as in the tree-walker.
    - [D (dict, codes)] — anything else (strings, bools, chars, or columns
      mixing types): dictionary encoding.  [dict] holds the distinct values
      {e sorted strictly} by {!Value.compare}, and [codes.(i)] indexes into
      it; because the dictionary is sorted, comparing codes of the same
      dictionary is comparing values.

    Encodings are chosen per column by {!pack} and round-trip losslessly
    ({!to_array}); [gather] and [merge] preserve the encoding (and share
    dictionaries), so a pipeline of σ/π/⋈ stays flat once packed. *)

type t =
  | I of Value.ty * int array
  | F of Value.ty * float array
  | D of Value.t array * int array

let length = function
  | I (_, a) -> Array.length a
  | F (_, a) -> Array.length a
  | D (_, codes) -> Array.length codes

let get (c : t) (i : int) : Value.t =
  match c with
  | I (ty, a) -> Value.int_interned ty a.(i)
  | F (ty, a) -> Value.Float (ty, a.(i))
  | D (dict, codes) -> dict.(codes.(i))

let to_array (c : t) : Value.t array = Array.init (length c) (get c)

(** Choose the densest encoding for a column of values.  O(n) for uniform
    int/float columns; O(n log d) (d distinct values) for the dictionary
    fallback. *)
let pack (vs : Value.t array) : t =
  let n = Array.length vs in
  let uniform_int =
    n > 0
    && (match vs.(0) with
       | Value.Int (ty0, _) ->
           let ok = ref true in
           for i = 1 to n - 1 do
             match vs.(i) with
             | Value.Int (ty, _) when Value.equal_ty ty ty0 -> ()
             | _ -> ok := false
           done;
           !ok
       | _ -> false)
  in
  if uniform_int then
    match vs.(0) with
    | Value.Int (ty0, _) ->
        I (ty0, Array.map (function Value.Int (_, x) -> x | _ -> assert false) vs)
    | _ -> assert false
  else
    let uniform_float =
      n > 0
      && (match vs.(0) with
         | Value.Float (ty0, _) ->
             let ok = ref true in
             for i = 1 to n - 1 do
               match vs.(i) with
               | Value.Float (ty, _) when Value.equal_ty ty ty0 -> ()
               | _ -> ok := false
             done;
             !ok
         | _ -> false)
    in
    if uniform_float then
      match vs.(0) with
      | Value.Float (ty0, _) ->
          F (ty0, Array.map (function Value.Float (_, x) -> x | _ -> assert false) vs)
      | _ -> assert false
    else begin
      let sorted = Array.copy vs in
      Array.sort Value.compare sorted;
      let distinct = ref 0 in
      Array.iteri
        (fun i v ->
          if i = 0 || Value.compare sorted.(i - 1) v <> 0 then begin
            sorted.(!distinct) <- v;
            incr distinct
          end)
        sorted;
      let dict = Array.sub sorted 0 !distinct in
      (* binary-search each value's code; the dictionary is strictly sorted *)
      let code v =
        let lo = ref 0 and hi = ref (Array.length dict - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if Value.compare dict.(mid) v < 0 then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      D (dict, Array.map code vs)
    end

(* ---- comparisons ------------------------------------------------------------ *)

(** Compare row [i] of column [a] against row [j] of column [b], with the
    exact order of {!Value.compare}.  Fast paths: same-typed flat columns
    compare unboxed; same-dictionary columns compare codes. *)
let cmp_across (a : t) (b : t) (i : int) (j : int) : int =
  match (a, b) with
  | I (ta, xa), I (tb, xb) ->
      let c = Value.compare_ty ta tb in
      if c <> 0 then c else Stdlib.compare (xa.(i) : int) xb.(j)
  | F (ta, xa), F (tb, xb) ->
      let c = Value.compare_ty ta tb in
      if c <> 0 then c else Stdlib.compare (xa.(i) : float) xb.(j)
  | D (da, ca), D (db, cb) when da == db -> Stdlib.compare (ca.(i) : int) cb.(j)
  | _ -> Value.compare (get a i) (get b j)

let cmp_within (c : t) (i : int) (j : int) : int = cmp_across c c i j

(** Hash of row [i], consistent with {!Value.hash_value} (and therefore with
    {!Tuple.hash} when folded across a row): equal values hash equally under
    every encoding. *)
let hash_at (c : t) (i : int) : int = Value.hash_value (get c i)

(* ---- bulk movement ---------------------------------------------------------- *)

(** Select rows by index, preserving the encoding (dictionaries are shared,
    not copied). *)
let gather (c : t) (idx : int array) : t =
  match c with
  | I (ty, a) -> I (ty, Array.map (fun i -> a.(i)) idx)
  | F (ty, a) -> F (ty, Array.map (fun i -> a.(i)) idx)
  | D (dict, codes) -> D (dict, Array.map (fun i -> codes.(i)) idx)

(** Concatenate two columns; falls back to re-packing when the encodings are
    incompatible (different int/float types, different dictionaries). *)
let append (a : t) (b : t) : t =
  match (a, b) with
  | I (ta, xa), I (tb, xb) when Value.equal_ty ta tb -> I (ta, Array.append xa xb)
  | F (ta, xa), F (tb, xb) when Value.equal_ty ta tb -> F (ta, Array.append xa xb)
  | D (da, ca), D (db, cb) when da == db -> D (da, Array.append ca cb)
  | _ -> pack (Array.append (to_array a) (to_array b))

(** Merge two columns along a sorted-merge plan: entry [p] takes row
    [p lsr 1] of [a] when [p land 1 = 0], of [b] otherwise.  Encodings are
    preserved when compatible. *)
let merge (a : t) (b : t) (plan : int array) : t =
  let pick_int xa xb = Array.map (fun p -> if p land 1 = 0 then xa.(p lsr 1) else xb.(p lsr 1)) plan in
  let pick_float xa xb =
    Array.map (fun p -> if p land 1 = 0 then xa.(p lsr 1) else xb.(p lsr 1)) plan
  in
  match (a, b) with
  | I (ta, xa), I (tb, xb) when Value.equal_ty ta tb -> I (ta, pick_int xa xb)
  | F (ta, xa), F (tb, xb) when Value.equal_ty ta tb -> F (ta, pick_float xa xb)
  | D (da, ca), D (db, cb) when da == db -> D (da, pick_int ca cb)
  | _ ->
      pack
        (Array.map (fun p -> if p land 1 = 0 then get a (p lsr 1) else get b (p lsr 1)) plan)
