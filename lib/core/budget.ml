(** Resource budgets for one program execution.

    A budget bounds how much work a single [Session.run] (equivalently, one
    sample of a [Session.run_batch]) may consume before the interpreter
    stops it with a structured [Exec_error.Budget_exceeded] diagnostic.
    The checks are {e cooperative}: the interpreter polls at fixpoint
    iteration boundaries and (amortized) at RAM-operator boundaries, so a
    budget is enforced to the granularity of one operator evaluation — a
    single pathological join finishes before the verdict lands, but no
    unbounded loop survives.

    Axes:
    - [timeout]: elapsed seconds from the start of the run, measured on the
      monotonic clock ({!Scallop_utils.Monotonic}), so NTP steps can never
      fire a deadline early or hold it open late.  Checked at every
      iteration boundary and every {!clock_check_mask}+1 node evaluations,
      so enforcement latency is far below one second for any iterating
      program.
    - [max_iterations]: fixpoint iterations per stratum (the pre-existing
      interpreter guardrail, now budgeted and typed).
    - [max_tuples]: cumulative tuples materialized by rule evaluations —
      an upper bound on live database growth that costs only a counter.
    - [max_node_evals]: RAM-plan node evaluations, a machine-independent
      work measure (useful to make serving quotas reproducible).
    - [cancel]: a {!Scallop_utils.Cancel} token polled at the same points;
      firing it aborts the run with [Exec_error.Cancelled].  In a batch,
      the token is shared by all samples (it cancels the whole batch),
      while deadlines are per sample.

    [default] preserves the historical behavior: no wall-clock or tuple
    bound, 10_000 iterations per stratum. *)

type t = {
  timeout : float option;  (** wall-clock seconds per run *)
  max_iterations : int;  (** fixpoint-iteration cap per stratum *)
  max_tuples : int option;  (** cumulative derived-tuple cap *)
  max_node_evals : int option;  (** RAM-node evaluation cap *)
  cancel : Scallop_utils.Cancel.t option;  (** cooperative cancellation *)
}

let default =
  { timeout = None; max_iterations = 10_000; max_tuples = None;
    max_node_evals = None; cancel = None }

(** No bounds at all (even the iteration cap) — for programs known to
    terminate where the caller wants raw throughput. *)
let unlimited = { default with max_iterations = max_int }

(** [make ()] builds a budget from optional per-axis arguments, starting
    from {!default} (so the iteration cap stays at 10_000 unless given). *)
let make ?timeout ?max_iterations ?max_tuples ?max_node_evals ?cancel () =
  {
    timeout;
    max_iterations = Option.value max_iterations ~default:default.max_iterations;
    max_tuples;
    max_node_evals;
    cancel;
  }

(** [constrain t ?timeout ?cancel ()] narrows a budget for one serving
    attempt: the effective deadline becomes the tighter of [t]'s own and
    [timeout] (either may be absent — deadlines only ever shrink), and
    [cancel], when given, replaces the token so a watchdog can abort just
    this attempt without touching the budget it was derived from. *)
let constrain t ?timeout ?cancel () =
  let timeout =
    match (t.timeout, timeout) with
    | Some a, Some b -> Some (Float.min a b)
    | Some a, None -> Some a
    | None, b -> b
  in
  { t with timeout; cancel = (match cancel with Some _ -> cancel | None -> t.cancel) }

(** Node evaluations between two wall-clock polls, minus one (a power of
    two; the interpreter tests [evals land clock_check_mask = 0]). *)
let clock_check_mask = 63

(** Whether any axis beyond the iteration cap is active — when false the
    interpreter skips the per-node bookkeeping entirely. *)
let watched t =
  t.timeout <> None || t.max_tuples <> None || t.max_node_evals <> None
  || t.cancel <> None
