(** Compilation of core rules into SclRam query plans (the "back-IR" of
    paper Sec. 5: query planning and optimization).

    Each rule body (a conjunction of literals) is planned as a left-deep
    join tree: positive atoms are joined greedily by shared-variable count
    (hash joins at runtime), value conditions are applied as soon as their
    variables are bound (selections, or projections when the condition is a
    binding equality [v == e]), foreign predicates become flat-map joins
    once their required arguments are bound, aggregations compile to γ nodes
    over recursively compiled sub-plans, and negated atoms become anti-joins
    at the end.  Multiple rules with the same head within a stratum are
    merged by union so that stratum heads are distinct (Sec. 4.2). *)

(* All compilation failures are typed diagnostics; see {!Exec_error}. *)
let compile_error msg pos = Exec_error.raise_error (Exec_error.Compile_error { msg; pos })

module SSet = Set.Make (String)

type plan = { expr : Ram.expr; layout : string list }

let position layout v =
  let rec go i = function
    | [] -> None
    | x :: _ when String.equal x v -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 layout

(* ---- value expression compilation -------------------------------------------- *)

let const_value (c : Ast.constant) : Value.t =
  match c with
  | Ast.C_int n -> Value.int Value.I32 n
  | Ast.C_float f -> Value.float Value.F32 f
  | Ast.C_bool b -> Value.bool b
  | Ast.C_char ch -> Value.char ch
  | Ast.C_str s -> Value.string s

let rec compile_vexpr pos layout (e : Ast.expr) : Ram.vexpr =
  match e with
  | Ast.E_var v -> (
      match position layout v with
      | Some i -> Ram.Access i
      | None -> compile_error (Fmt.str "unbound variable %S" v) pos)
  | Ast.E_wildcard -> compile_error "wildcard in value expression" pos
  | Ast.E_const c -> Ram.Const (const_value c)
  | Ast.E_binop (op, a, b) -> Ram.Binop (op, compile_vexpr pos layout a, compile_vexpr pos layout b)
  | Ast.E_unop (op, a) -> Ram.Unop (op, compile_vexpr pos layout a)
  | Ast.E_call (f, args) ->
      if Foreign.lookup_function f = None then
        compile_error (Fmt.str "unknown foreign function $%s" f) pos;
      Ram.Call (f, List.map (compile_vexpr pos layout) args)
  | Ast.E_if (c, a, b) ->
      Ram.If_then_else
        (compile_vexpr pos layout c, compile_vexpr pos layout a, compile_vexpr pos layout b)
  | Ast.E_cast (a, tyname) -> (
      match Value.ty_of_name tyname with
      | Some ty -> Ram.Cast (ty, compile_vexpr pos layout a)
      | None -> compile_error (Fmt.str "unknown type %S" tyname) pos)

(** Evaluate a variable-free expression at compile time. *)
let eval_const pos (e : Ast.expr) : Value.t =
  match Ram.eval_vexpr Tuple.unit (compile_vexpr pos [] e) with
  | Some v -> v
  | None -> compile_error "constant expression evaluation failed" pos

(* ---- atom normalization --------------------------------------------------------- *)

type narg = N_var of string | N_const of Value.t | N_wild

(** Normalize atom arguments to variables / constants / wildcards; complex
    expressions are replaced by fresh variables with binding-equality
    conditions (handled like any other condition by the planner). *)
let normalize_atom pos ~fresh (a : Ast.atom) : narg list * Ast.expr list =
  let extra = ref [] in
  let args =
    List.map
      (fun (arg : Ast.expr) ->
        match arg with
        | Ast.E_var v -> N_var v
        | Ast.E_wildcard -> N_wild
        | _ when Ast.expr_vars arg = [] -> N_const (eval_const pos arg)
        | _ ->
            let v = fresh () in
            extra := Ast.E_binop (Foreign.Eq, Ast.E_var v, arg) :: !extra;
            N_var v)
      a.Ast.args
  in
  (args, List.rev !extra)

(* ---- plan primitives --------------------------------------------------------------- *)

(** Scan a predicate with constant selections and repeated-variable equality,
    projected down to one column per distinct variable. *)
let scan_plan pred (args : narg list) : plan =
  let base = Ram.Pred pred in
  (* selections for constants and repeated variables *)
  let conds = ref [] in
  let seen : (string * int) list ref = ref [] in
  List.iteri
    (fun i arg ->
      match arg with
      | N_const v -> conds := Ram.Binop (Foreign.Eq, Ram.Access i, Ram.Const v) :: !conds
      | N_var v -> (
          match List.assoc_opt v !seen with
          | Some j -> conds := Ram.Binop (Foreign.Eq, Ram.Access i, Ram.Access j) :: !conds
          | None -> seen := (v, i) :: !seen)
      | N_wild -> ())
    args;
  let selected = List.fold_left (fun e c -> Ram.Select (c, e)) base !conds in
  let layout = List.rev_map fst !seen in
  let positions = List.rev_map snd !seen in
  { expr = Ram.Project (List.map (fun i -> Ram.Access i) positions, selected); layout }

(** Join two plans on their shared variables; output layout is
    [a.layout ++ (b.layout \ shared)]. *)
let join_plans (a : plan) (b : plan) : plan =
  let shared = List.filter (fun v -> List.mem v a.layout) b.layout in
  let lkeys = List.map (fun v -> Option.get (position a.layout v)) shared in
  let rkeys = List.map (fun v -> Option.get (position b.layout v)) shared in
  let joined = Ram.Join { lkeys; rkeys; left = a.expr; right = b.expr } in
  let la = List.length a.layout in
  let keep_b =
    List.filteri (fun _ v -> not (List.mem v a.layout)) b.layout
    |> List.map (fun v -> la + Option.get (position b.layout v))
  in
  let mapping =
    List.init la (fun i -> Ram.Access i) @ List.map (fun i -> Ram.Access i) keep_b
  in
  (* When nothing is shared, the mapping is the identity over the joined
     width — skip the no-op Project instead of paying a copy per tuple. *)
  let identity =
    List.for_all2
      (fun i m -> m = Ram.Access i)
      (List.init (List.length mapping) Fun.id)
      mapping
    && List.length mapping = la + List.length b.layout
  in
  {
    expr = (if identity then joined else Ram.Project (mapping, joined));
    layout = a.layout @ List.filter (fun v -> not (List.mem v a.layout)) b.layout;
  }

(** Project a plan down to [target] variables (which must all be bound). *)
let project_to pos (p : plan) (target : string list) : plan =
  if target = p.layout then p
  else
    let mapping =
      List.map
        (fun v ->
          match position p.layout v with
          | Some i -> Ram.Access i
          | None -> compile_error (Fmt.str "unbound variable %S in projection" v) pos)
        target
    in
    { expr = Ram.Project (mapping, p.expr); layout = target }

(* ---- clause compilation -------------------------------------------------------------- *)

(* Required-bound argument positions of foreign predicates. *)
let foreign_required = function
  | "range" -> [ 0; 1 ]
  | "string_chars" -> [ 0 ]
  | "succ" -> []
  | _ -> []

let rec compile_clause pos ~fresh ~(outer_vars : SSet.t) (clause : Front.clause) : plan =
  (* Partition and normalize literals. *)
  let scans = ref [] in
  let foreigns = ref [] in
  let negs = ref [] in
  let conds = ref [] in
  let reduces = ref [] in
  List.iter
    (function
      | Front.L_pos a when Foreign.is_foreign_predicate a.Ast.pred ->
          let args, extra = normalize_atom pos ~fresh a in
          foreigns := (a.Ast.pred, args) :: !foreigns;
          conds := extra @ !conds
      | Front.L_pos a ->
          let args, extra = normalize_atom pos ~fresh a in
          scans := (a.Ast.pred, args) :: !scans;
          conds := extra @ !conds
      | Front.L_neg a ->
          let args, extra = normalize_atom pos ~fresh a in
          if extra <> [] then
            compile_error "complex expressions in negated atoms are not supported" pos;
          negs := (a.Ast.pred, args) :: !negs
      | Front.L_cond e -> conds := e :: !conds
      | Front.L_reduce r -> reduces := r :: !reduces)
    clause;
  let scans = ref (List.rev !scans) in
  let foreigns = ref (List.rev !foreigns) in
  let negs = List.rev !negs in
  let conds = ref (List.rev !conds) in
  let reduces = ref (List.rev !reduces) in
  let plan : plan option ref = ref None in
  let layout () = match !plan with Some p -> p.layout | None -> [] in
  let is_bound v = List.mem v (layout ()) in
  let merge (p : plan) =
    plan := Some (match !plan with None -> p | Some cur -> join_plans cur p)
  in
  (* Apply conditions as they become evaluable; binding equalities extend the
     layout with a computed column. *)
  let rec apply_ready_conds () =
    let progressed = ref false in
    conds :=
      List.filter
        (fun (c : Ast.expr) ->
          let vars = Ast.expr_vars c in
          let binding =
            match c with
            | Ast.E_binop (Foreign.Eq, Ast.E_var v, e)
              when (not (is_bound v)) && List.for_all is_bound (Ast.expr_vars e) ->
                Some (v, e)
            | Ast.E_binop (Foreign.Eq, e, Ast.E_var v)
              when (not (is_bound v)) && List.for_all is_bound (Ast.expr_vars e) ->
                Some (v, e)
            | _ -> None
          in
          match binding with
          | Some (v, e) ->
              let cur = match !plan with Some p -> p | None -> { expr = Ram.Singleton; layout = [] } in
              let n = List.length cur.layout in
              let mapping =
                List.init n (fun i -> Ram.Access i) @ [ compile_vexpr pos cur.layout e ]
              in
              plan := Some { expr = Ram.Project (mapping, cur.expr); layout = cur.layout @ [ v ] };
              progressed := true;
              false
          | None ->
              if List.for_all is_bound vars then begin
                let cur =
                  match !plan with Some p -> p | None -> { expr = Ram.Singleton; layout = [] }
                in
                plan :=
                  Some { cur with expr = Ram.Select (compile_vexpr pos cur.layout c, cur.expr) };
                progressed := true;
                false
              end
              else true)
        !conds;
    if !progressed then apply_ready_conds ()
  in
  (* Phase 1: positive atoms, greedily by shared-variable count. *)
  let scan_shared (_, args) =
    List.length
      (List.filter (function N_var v -> is_bound v | _ -> false) args)
  in
  while !scans <> [] do
    let best =
      List.fold_left
        (fun acc s -> match acc with Some b when scan_shared b >= scan_shared s -> acc | _ -> Some s)
        None !scans
    in
    let (pred, args) = Option.get best in
    scans := List.filter (fun s -> s != Option.get best) !scans;
    merge (scan_plan pred args);
    apply_ready_conds ()
  done;
  (* Phase 2: foreign predicates, scheduled once required args are bound. *)
  let foreign_ready (name, args) =
    List.for_all
      (fun i ->
        match List.nth args i with
        | N_const _ -> true
        | N_var v -> is_bound v
        | N_wild -> false)
      (foreign_required name)
  in
  let progress = ref true in
  while !foreigns <> [] && !progress do
    progress := false;
    match List.find_opt foreign_ready !foreigns with
    | None -> ()
    | Some ((name, args) as f) ->
        foreigns := List.filter (fun g -> g != f) !foreigns;
        progress := true;
        let cur = match !plan with Some p -> p | None -> { expr = Ram.Singleton; layout = [] } in
        let fp_args, new_vars =
          List.fold_left
            (fun (acc, nv) arg ->
              match arg with
              | N_const v -> (Ram.F_const v :: acc, nv)
              | N_var v when List.mem v cur.layout ->
                  (Ram.F_col (Option.get (position cur.layout v)) :: acc, nv)
              | N_var v -> (Ram.F_free :: acc, nv @ [ v ])
              | N_wild -> (Ram.F_free :: acc, nv @ [ fresh () ]))
            ([], []) args
        in
        let expr = Ram.Foreign_join { name; args = List.rev fp_args; left = cur.expr } in
        plan := Some { expr; layout = cur.layout @ new_vars };
        apply_ready_conds ()
  done;
  if !foreigns <> [] then
    compile_error
      (Fmt.str "foreign predicate %s cannot be scheduled (unbound required arguments)"
         (fst (List.hd !foreigns)))
      pos;
  (* Phase 3: aggregations.  A reduce's implicit group-by variables are the
     body variables referenced {e outside} it: in the head ([outer_vars]) or
     in any sibling literal of this clause. *)
  let sibling_vars (r : Front.creduce) =
    List.fold_left
      (fun acc lit ->
        match lit with
        | Front.L_reduce r' when r' == r -> acc
        | Front.L_pos a | Front.L_neg a -> SSet.union acc (SSet.of_list (Ast.atom_vars a))
        | Front.L_cond e -> SSet.union acc (SSet.of_list (Ast.expr_vars e))
        | Front.L_reduce r' ->
            SSet.union acc
              (SSet.of_list
                 (r'.Front.result_vars
                 @ match r'.Front.where with Some (gv, _) -> gv | None -> [])))
      SSet.empty clause
  in
  List.iter
    (fun (r : Front.creduce) ->
      let outer = SSet.union outer_vars (sibling_vars r) in
      merge (compile_reduce pos ~fresh ~outer_vars:outer r);
      apply_ready_conds ())
    !reduces;
  reduces := [];
  apply_ready_conds ();
  if !conds <> [] then
    compile_error
      (Fmt.str "condition mentions unbound variables: %a" Ast.pp_expr (List.hd !conds))
      pos;
  (* Phase 4: negated atoms as anti-joins. *)
  let final =
    List.fold_left
      (fun (cur : plan) (pred, args) ->
        (* Right side: scan with constants selected, projected to the columns
           of bound shared variables. *)
        let right = scan_plan pred args in
        let shared = List.filter (fun v -> List.mem v cur.layout) right.layout in
        let right = project_to pos right shared in
        let lkeys = List.map (fun v -> Option.get (position cur.layout v)) shared in
        let rkeys = List.init (List.length shared) (fun i -> i) in
        { cur with expr = Ram.Antijoin { lkeys; rkeys; left = cur.expr; right = right.expr } })
      (match !plan with Some p -> p | None -> { expr = Ram.Singleton; layout = [] })
      negs
  in
  final

and compile_reduce pos ~fresh ~outer_vars (r : Front.creduce) : plan =
  (* Group variables: explicit where-clause variables, or implicitly the
     body variables also used outside the aggregation (paper Sec. 3.3). *)
  let body_bound =
    List.fold_left
      (fun acc clause -> SSet.union acc (Front.bound_vars_of_clause clause))
      SSet.empty r.Front.body
  in
  let local = SSet.of_list (r.Front.binding_vars @ r.Front.arg_vars @ r.Front.result_vars) in
  let group_vars =
    match r.Front.where with
    | Some (gv, _) -> gv
    | None -> SSet.elements (SSet.diff (SSet.inter body_bound outer_vars) local)
  in
  let target = group_vars @ r.Front.arg_vars @ r.Front.binding_vars in
  (* Compile the body disjuncts and project each to the common layout.  The
     where clause (when present) is conjoined into the body so that its
     non-group variables correlate with body variables (e.g. CLEVR's
     [count(o: eval_objs(f, o) where e: count_expr(e, f))], where [f] links
     the two); the standalone where compilation below supplies the domain so
     empty groups still aggregate. *)
  let body_clauses =
    match r.Front.where with
    | None -> r.Front.body
    | Some (_, where_clauses) ->
        List.concat_map (fun b -> List.map (fun w -> b @ w) where_clauses) r.Front.body
  in
  let body_plan =
    match
      List.map
        (fun clause ->
          let sub = compile_clause pos ~fresh ~outer_vars:(SSet.of_list target) clause in
          project_to pos sub target)
        body_clauses
    with
    | [] -> compile_error "empty aggregation body" pos
    | first :: rest ->
        List.fold_left
          (fun acc p -> { acc with expr = Ram.Union (acc.expr, p.expr) })
          first rest
  in
  let key_len = List.length group_vars in
  let group =
    match r.Front.where with
    | Some (gv, clauses) ->
        let dom =
          match
            List.map
              (fun clause ->
                let sub = compile_clause pos ~fresh ~outer_vars:(SSet.of_list gv) clause in
                project_to pos sub gv)
              clauses
          with
          | [] -> compile_error "empty where clause" pos
          | first :: rest ->
              List.fold_left (fun acc p -> { acc with expr = Ram.Union (acc.expr, p.expr) }) first rest
        in
        Ram.Domain dom.expr
    | None -> if key_len = 0 then Ram.No_group else Ram.Implicit
  in
  let result_layout = group_vars @ r.Front.result_vars in
  let expr =
    match r.Front.op with
    | Front.CR_aggregate agg ->
        Ram.Aggregate
          { agg; key_len; arg_len = List.length r.Front.arg_vars; group; body = body_plan.expr }
    | Front.CR_sampler sampler -> Ram.Sample { sampler; key_len; group; body = body_plan.expr }
  in
  let expr =
    if r.Front.negate_result then begin
      (* forall: flip the boolean result column (world-exact, since exists
         produces both outcomes with their tags). *)
      let n = List.length result_layout in
      let mapping =
        List.init n (fun i ->
            if i = n - 1 then Ram.Unop (Foreign.Not, Ram.Access i) else Ram.Access i)
      in
      Ram.Project (mapping, expr)
    end
    else expr
  in
  { expr; layout = result_layout }

(* ---- rules and programs ------------------------------------------------------------------ *)

let compile_rule (r : Front.crule) : string * Ram.expr =
  let pos = r.Front.rule_pos in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Fmt.str "__v%d" !counter
  in
  let head_vars = SSet.of_list (Ast.atom_vars r.Front.head) in
  let plan = compile_clause pos ~fresh ~outer_vars:head_vars r.Front.body in
  let head_mapping = List.map (compile_vexpr pos plan.layout) r.Front.head.Ast.args in
  let body = Ram.Project (head_mapping, plan.expr) in
  (* Demand predicates carry pure demand: overwrite their tags with 1 so
     they never weaken the tags of the tuples they gate (Appendix B.2). *)
  let body = if Demand.is_demand_pred r.Front.head.Ast.pred then Ram.One_overwrite body else body in
  (r.Front.head.Ast.pred, body)

(** Compile stratified core rules into a SclRam program.  Rules with the
    same head within a stratum are unioned into a single RAM rule. *)
let compile_strata (strata : Front.crule list list) ~(outputs : string list) : Ram.program =
  let compile_stratum (rules : Front.crule list) : Ram.stratum =
    let compiled = List.map compile_rule rules in
    let grouped =
      Scallop_utils.Listx.group_by (module String) fst compiled
    in
    let ram_rules =
      List.map
        (fun (head, bodies) ->
          let exprs = List.map snd bodies in
          let body =
            match exprs with
            | [] -> assert false
            | first :: rest -> List.fold_left (fun a b -> Ram.Union (a, b)) first rest
          in
          { Ram.head; body })
        grouped
    in
    let heads = List.map (fun (r : Ram.rule) -> r.Ram.head) ram_rules in
    let recursive =
      List.exists
        (fun (r : Ram.rule) ->
          List.exists (fun p -> List.mem p heads) (Ram.predicates_of_expr r.Ram.body))
        ram_rules
    in
    { Ram.rules = ram_rules; recursive }
  in
  { Ram.strata = List.map compile_stratum strata; outputs }
