(** Boolean formulas in disjunctive normal form, the tag space of the
    top-k-proofs family of provenances (paper Fig. 13, Appendix B.4.3/4).

    A {e proof} is a conjunction of literals [pos(i)] / [neg(i)] over input
    variable ids.  A formula holds at most [k] proofs; the operations
    [disj_k], [conj_k] and [neg_k] mirror ∨k, ∧k and ¬k from the paper:
    logical or/and/not on DNF followed by truncation to the [k] proofs of
    highest probability.

    Formulas produced by the operations here are kept in a {e canonical
    order}: descending probability (under a total float order where NaN
    sorts last), ties broken by [proof_compare].  The canonical order makes
    the output independent of proof insertion order, lets fixpoint
    saturation use the cheap ordered {!equal_ordered} instead of the O(n²)
    set comparison, and is what the guided best-first implementations of
    [conj_k]/[neg_k] exploit to prune low-weight proofs {e before}
    materializing them (see DESIGN.md, "Guided lazy proof search").  The
    eager reference implementations are kept as [conj_k_eager] etc. and
    serve as the differential-test oracle.

    Mutual exclusion (Appendix B.4.4): input facts may belong to an exclusion
    group; a proof containing two distinct positive literals from the same
    group is contradictory and removed during conflict checking. *)

module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

(** A proof maps each mentioned variable to its polarity (true = positive). *)
type proof = bool IMap.t

type t = proof list
(** Invariant: proofs are distinct, none absorbs another, and they appear in
    canonical order (descending probability, ties by [proof_compare]) —
    maintained by every operation below that returns a [t]. *)

(* --- environments -------------------------------------------------------- *)

(** Everything the formula operations need to know about variables: their
    probability and their optional mutual-exclusion group. *)
type env = { prob : int -> float; me_group : int -> int option }

let env ?(me_group = fun _ -> None) prob = { prob; me_group }

(* --- proofs -------------------------------------------------------------- *)

let proof_of_literals lits =
  List.fold_left (fun m (v, s) -> IMap.add v s m) IMap.empty lits

let proof_literals (p : proof) = IMap.bindings p
let true_proof : proof = IMap.empty
let singleton_pos i : proof = IMap.singleton i true
let singleton_neg i : proof = IMap.singleton i false
let proof_equal (a : proof) (b : proof) = IMap.equal Bool.equal a b
let proof_compare (a : proof) (b : proof) = IMap.compare Bool.compare a b

(** Probability of a proof: the product of its literal probabilities
    (paper Eq. 1). *)
let proof_prob envr (p : proof) =
  IMap.fold
    (fun v sign acc ->
      let r = envr.prob v in
      acc *. (if sign then r else 1.0 -. r))
    p 1.0

(** Merge two proofs into their conjunction; [None] when they conflict —
    same variable with both polarities, or (with mutual exclusion) two
    distinct positive variables of the same group. *)
let merge_proofs envr (a : proof) (b : proof) : proof option =
  let conflict = ref false in
  let merged =
    IMap.union
      (fun _ sa sb ->
        if Bool.equal sa sb then Some sa
        else begin
          conflict := true;
          Some sa
        end)
      a b
  in
  if !conflict then None
  else begin
    (* Mutual-exclusion check: collect positive literals per group. *)
    let seen = Hashtbl.create 4 in
    let me_conflict = ref false in
    IMap.iter
      (fun v sign ->
        if sign then
          match envr.me_group v with
          | None -> ()
          | Some g -> (
              match Hashtbl.find_opt seen g with
              | Some v' when v' <> v -> me_conflict := true
              | _ -> Hashtbl.replace seen g v))
      merged;
    if !me_conflict then None else Some merged
  end

(* --- formulas ------------------------------------------------------------ *)

let ff : t = []
let tt : t = [ true_proof ]
let of_pos i : t = [ singleton_pos i ]
let is_false (t : t) = t = []
let is_true (t : t) = List.exists (fun p -> IMap.is_empty p) t

(** Set equality, independent of proof order.  O(n²); kept as the oracle
    notion of equality — fixpoint saturation uses {!equal_ordered}. *)
let equal (a : t) (b : t) =
  List.length a = List.length b
  && List.for_all (fun p -> List.exists (proof_equal p) b) a

(** Ordered equality: valid whenever both sides are canonical (which every
    operation below guarantees), where it coincides with {!equal} at O(n)
    cost.  The physical-equality fast path makes the common "nothing changed
    this iteration" saturation check O(1). *)
let equal_ordered (a : t) (b : t) =
  a == b
  || (List.compare_lengths a b = 0 && List.for_all2 proof_equal a b)

let dedup proofs = Scallop_utils.Listx.dedup_stable proof_equal proofs

(** A proof [p] absorbs [q] if p ⊆ q (then p ∨ q = p).  Removing absorbed
    proofs keeps formulas small and makes [top_k] more meaningful. *)
let absorbs (p : proof) (q : proof) =
  IMap.for_all (fun v s -> match IMap.find_opt v q with Some s' -> Bool.equal s s' | None -> false) p

let remove_absorbed proofs =
  List.filter
    (fun q -> not (List.exists (fun p -> (not (proof_equal p q)) && absorbs p q) proofs))
    proofs

(* --- canonical order ------------------------------------------------------ *)

(* Sort key for a proof probability: a total order where NaN sorts below
   everything (a NaN-weighted proof never beats a real one, and comparisons
   stay consistent). *)
let prob_key = Scallop_utils.Listx.float_key

(* A proof decorated with its (precomputed) probability. *)
type dproof = { dp : proof; dkey : float }

let decorate envr p = { dp = p; dkey = prob_key (proof_prob envr p) }

(* Canonical order: descending probability key, ties by proof_compare. *)
let dcompare a b =
  let c = Float.compare b.dkey a.dkey in
  if c <> 0 then c else proof_compare a.dp b.dp

(* Canonicalize a decorated candidate list: sort, drop duplicates (equal
   proofs have equal keys, hence are adjacent after sorting), drop absorbed
   proofs.  An absorber is a subset of what it absorbs, so its probability
   key is >= the absorbed one's whenever weights lie in [0,1]; we still scan
   all pairs so the result matches the eager oracle even on adversarial
   weights. *)
let finalize_all (cands : dproof list) : dproof list =
  let sorted = List.stable_sort dcompare cands in
  let rec drop_dups = function
    | a :: b :: rest when proof_equal a.dp b.dp -> drop_dups (a :: rest)
    | a :: rest -> a :: drop_dups rest
    | [] -> []
  in
  let distinct = drop_dups sorted in
  List.filter
    (fun q ->
      not
        (List.exists
           (fun p -> (not (proof_equal p.dp q.dp)) && absorbs p.dp q.dp)
           distinct))
    distinct

let undecorate ds = List.map (fun d -> d.dp) ds

(* Physical list equality: lets disj_k return its left argument unchanged
   when the union added nothing, which in turn makes the saturation check in
   equal_ordered O(1) on converged relations. *)
let phys_equal_list (a : 'a list) (b : 'a list) =
  List.compare_lengths a b = 0 && List.for_all2 ( == ) a b

(** Keep the [k] proofs of highest probability, in canonical order. *)
let top_k envr k proofs =
  if k <= 0 then ff
  else Scallop_utils.Listx.take k (undecorate (finalize_all (List.map (decorate envr) proofs)))

(* --- eager reference operations (differential-test oracle) ---------------- *)

(** ∨k : union of proof sets, truncated. *)
let disj_k_eager envr k (a : t) (b : t) : t = top_k envr k (a @ b)

(** ∧k : pairwise conflict-checked merge, truncated (Table 8). *)
let conj_k_eager envr k (a : t) (b : t) : t =
  let merged =
    List.concat_map (fun pa -> List.filter_map (fun pb -> merge_proofs envr pa pb) b) a
  in
  top_k envr k merged

(** ¬k : negate every literal giving a CNF, then convert back to DNF by
    distribution with conflict checking (cnf2dnf, Fig. 13).  The raw
    conversion is exponential; we bound every intermediate result by [beam]
    (≥ k) proofs of highest probability, as the final answer is truncated to
    [k] anyway. *)
let neg_k_eager ?beam envr k (t : t) : t =
  let beam = match beam with Some b -> Stdlib.max b k | None -> Stdlib.max (8 * k) 64 in
  (* CNF: one clause per proof; each clause is the disjunction of the
     negated literals of that proof. *)
  let clauses =
    List.map (fun p -> List.map (fun (v, s) -> (v, not s)) (proof_literals p)) t
  in
  let init : t = [ true_proof ] in
  let result =
    List.fold_left
      (fun acc clause ->
        let next =
          List.concat_map
            (fun p ->
              List.filter_map
                (fun (v, s) ->
                  merge_proofs envr p (IMap.singleton v s))
                clause)
            acc
        in
        top_k envr beam next)
      init clauses
  in
  top_k envr k result

(* --- guided best-first operations ----------------------------------------- *)

(* Shared driver for the guided searches.  [pop_expand] pops the
   highest-bound frontier node, possibly appending to [candidates], and
   returns false once the frontier is exhausted; [peek_key] is the bound of
   the best unexpanded node.  Expansion stops as soon as every remaining
   frontier bound is strictly below the k-th surviving candidate's key:
   since bounds are admissible (>= the key of every candidate reachable
   through that node) and proofs below the k-th survivor can neither enter
   the top k nor absorb/duplicate a survivor (an absorber is a subset, so
   its probability is >= its victim's), the survivors equal the eager
   oracle's — see DESIGN.md for the full argument. *)
let best_first ~k ~(peek_key : unit -> float option)
    ~(pop_expand : unit -> bool) ~(candidates : dproof list ref) : t =
  let rec settle () =
    let surv = finalize_all !candidates in
    let nsurv = List.length surv in
    let bar =
      if nsurv < k then None
      else Some (List.nth surv (k - 1)).dkey
    in
    match peek_key () with
    | None -> Scallop_utils.Listx.take k (undecorate surv)
    | Some top_key -> (
        match bar with
        | Some b when top_key < b -> Scallop_utils.Listx.take k (undecorate surv)
        | _ ->
            (* Expand a batch before re-finalizing: everything whose bound
               still ties or beats the bar, or (while short of k survivors)
               enough nodes to plausibly fill the gap. *)
            let budget = ref (Stdlib.max 1 (k - nsurv)) in
            let continue_pop () =
              match peek_key () with
              | None -> false
              | Some key -> (
                  match bar with Some b -> key >= b | None -> !budget > 0)
            in
            ignore (pop_expand ());
            (match bar with None -> decr budget | Some _ -> ());
            while continue_pop () do
              ignore (pop_expand ());
              (match bar with None -> decr budget | Some _ -> ())
            done;
            settle ())
  in
  settle ()

(** ∨k, guided: both inputs are (or are brought to) canonical order, so the
    union is a merge followed by the shared canonicalization; probabilities
    are computed once per proof.  Returns the left argument physically
    unchanged when the union adds nothing — the common case once a relation
    has converged. *)
let disj_k envr k (a : t) (b : t) : t =
  if k <= 0 then ff
  else if is_false b && List.compare_length_with a k <= 0 then a
  else begin
    let cands = List.map (decorate envr) a @ List.map (decorate envr) b in
    let result = Scallop_utils.Listx.take k (undecorate (finalize_all cands)) in
    if phys_equal_list result a then a else result
  end

(** ∧k, guided: best-first over the grid of proof pairs, both sides sorted
    in canonical (descending-probability) order.  The bound of cell (i, j)
    is min(key aᵢ, key bⱼ) — admissible because the merged proof is a
    superset of each parent, so (for weights in [0,1]) its probability can
    only be lower.  Cells are expanded best-bound-first; (i+1, j) and
    (i, j+1) enter the frontier when (i, j) is expanded, so bounds along any
    path are nonincreasing and the frontier always dominates the unexplored
    region.  Small products fall back to the eager pairwise merge, which is
    cheaper than maintaining a frontier. *)
let conj_k envr k (a : t) (b : t) : t =
  if k <= 0 || is_false a || is_false b then ff
  else begin
    let na = List.length a and nb = List.length b in
    if float_of_int na *. float_of_int nb <= 4.0 *. float_of_int k then begin
      (* Small product: the full pairwise merge costs less than a frontier,
         and only merged candidates need their probability computed. *)
      let cands = ref [] in
      List.iter
        (fun pa ->
          List.iter
            (fun pb ->
              match merge_proofs envr pa pb with
              | Some m -> cands := decorate envr m :: !cands
              | None -> ())
            b)
        a;
      Scallop_utils.Listx.take k (undecorate (finalize_all !cands))
    end
    else begin
      let da = Array.of_list (List.map (decorate envr) a) in
      let db = Array.of_list (List.map (decorate envr) b) in
      Array.sort dcompare da;
      Array.sort dcompare db;
      let bound i j = Float.min da.(i).dkey db.(j).dkey in
      let heap =
        Scallop_utils.Heap.create ~cmp:(fun (u1, _, _) (u2, _, _) ->
            Float.compare u1 u2)
      in
      let seen = Hashtbl.create 64 in
      let push i j =
        if i < na && j < nb && not (Hashtbl.mem seen (i, j)) then begin
          Hashtbl.replace seen (i, j) ();
          Scallop_utils.Heap.push heap (bound i j, i, j)
        end
      in
      push 0 0;
      let candidates = ref [] in
      let peek_key () =
        Option.map (fun (u, _, _) -> u) (Scallop_utils.Heap.peek heap)
      in
      let pop_expand () =
        match Scallop_utils.Heap.pop heap with
        | None -> false
        | Some (_, i, j) ->
            (match merge_proofs envr da.(i).dp db.(j).dp with
            | Some m -> candidates := decorate envr m :: !candidates
            | None -> ());
            push (i + 1) j;
            push i (j + 1);
            true
      in
      best_first ~k ~peek_key ~pop_expand ~candidates
    end
  end

(* Above this k the guided negation would have to enumerate essentially the
   whole cnf2dnf expansion anyway; delegate to the beam-bounded eager code
   (this keeps the exact/proofs provenances, k = max_int, on their historic
   path). *)
let guided_neg_k_limit = 1024

(* Safety valve: a guided negation that expands more nodes than this falls
   back to the eager beam search rather than thrashing on an adversarial
   clause structure. *)
let guided_neg_max_expansions = 20_000

(** ¬k, guided: best-first over {e partial} DNF proofs.  A node is a partial
    proof that satisfies the first [i] CNF clauses; its bound is its own
    probability — admissible because extending a proof with further literals
    (weights in [0,1]) can only lower it, and extending with an
    already-present literal keeps it equal.  Clauses are processed shortest
    first to keep the branching factor low (the set of complete proofs is
    independent of clause order). *)
let neg_k ?beam envr k (t : t) : t =
  if k <= 0 then ff
  else if k > guided_neg_k_limit then neg_k_eager ?beam envr k t
  else begin
    let clauses =
      t
      |> List.map (fun p -> List.map (fun (v, s) -> (v, not s)) (proof_literals p))
      |> List.sort (fun c1 c2 ->
             let c = compare (List.length c1) (List.length c2) in
             if c <> 0 then c else compare c1 c2)
      |> Array.of_list
    in
    let n = Array.length clauses in
    let heap =
      Scallop_utils.Heap.create ~cmp:(fun (u1, _, _) (u2, _, _) ->
          Float.compare u1 u2)
    in
    let seen = Hashtbl.create 64 in
    let push (d : dproof) idx =
      let key = (idx, proof_literals d.dp) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        Scallop_utils.Heap.push heap (d.dkey, d, idx)
      end
    in
    push (decorate envr true_proof) 0;
    let candidates = ref [] in
    let expansions = ref 0 in
    let peek_key () =
      Option.map (fun (u, _, _) -> u) (Scallop_utils.Heap.peek heap)
    in
    let exception Too_many in
    let pop_expand () =
      match Scallop_utils.Heap.pop heap with
      | None -> false
      | Some (_, d, idx) ->
          incr expansions;
          if !expansions > guided_neg_max_expansions then raise Too_many;
          if idx = n then candidates := d :: !candidates
          else
            List.iter
              (fun (v, s) ->
                match merge_proofs envr d.dp (IMap.singleton v s) with
                | Some m -> push (decorate envr m) (idx + 1)
                | None -> ())
              clauses.(idx);
          true
    in
    try best_first ~k ~peek_key ~pop_expand ~candidates
    with Too_many -> neg_k_eager ?beam envr k t
  end

(** All variables mentioned by the formula. *)
let variables (t : t) =
  List.fold_left (fun acc p -> IMap.fold (fun v _ s -> ISet.add v s) p acc) ISet.empty t
  |> ISet.elements

(** Hard upper bound on the formula probability: the probability of the
    disjunction assuming proofs disjoint, clamped. Used as a cheap weight. *)
let prob_upper_bound envr (t : t) =
  Float.min 1.0 (List.fold_left (fun acc p -> acc +. proof_prob envr p) 0.0 t)

let pp_proof fmt p =
  Fmt.pf fmt "{%a}"
    (Fmt.list ~sep:(Fmt.any " ") (fun fmt (v, s) ->
         Fmt.pf fmt "%s%d" (if s then "" else "~") v))
    (proof_literals p)

let pp fmt (t : t) =
  if is_false t then Fmt.string fmt "false"
  else Fmt.pf fmt "%a" (Fmt.list ~sep:(Fmt.any " | ") pp_proof) t
