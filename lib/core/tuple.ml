(** Relational tuples: fixed-arity sequences of primitive values.

    Tuples are the elements of relations (paper Fig. 6).  They are compared
    lexicographically, which gives relations a canonical sorted order and
    lets us store them in balanced maps keyed by tuple. *)

type t = Value.t array

let arity (t : t) = Array.length t
let of_list = Array.of_list
let to_list = Array.to_list
let unit : t = [||]
let get (t : t) i = t.(i)

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (Value.equal x b.(i)) then ok := false) a;
      !ok)

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(** Structural hash, consistent with {!equal}: equal tuples hash equally no
    matter how their values are stored.  The columnar executor's sorted-run
    relations ({!Batch_ops}) key their membership tables on this, computing
    the same fold column-wise without materializing the tuple. *)
let hash (t : t) : int =
  Array.fold_left (fun h v -> (h * 31) + Value.hash_value v) 17 t

let append (a : t) (b : t) : t = Array.append a b

(** Project the columns listed in [cols] (in that order). *)
let project cols (t : t) : t = Array.of_list (List.map (fun i -> t.(i)) cols)

let pp fmt (t : t) =
  Fmt.pf fmt "(%a)" (Fmt.array ~sep:(Fmt.any ", ") Value.pp) t

let to_string t = Fmt.str "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
