(** Execution plans: SclRam expressions annotated for the interpreter.

    A plan mirrors {!Ram.expr} one-to-one but carries, per node,

    - a {e stable node id} assigned in pre-order when the compiled program is
      planned (once, at compile time) — the key under which the execution
      profiler accumulates per-node statistics and the fixpoint caches store
      join indices and materialized sub-relations;
    - an {e invariance flag}: whether the node's result can change across the
      iterations of its stratum's fixed point.  A subtree is invariant iff it
      reads no head of the stratum (and no delta relation) and contains no
      sampler (samplers consume RNG state, so re-evaluation is observable).
      This is exactly the condition under which the semi-naive delta rewrite
      ({!delta_variants}) leaves a subtree untouched, which is what makes
      caching its value across iterations sound;
    - precomputed evaluation metadata that would otherwise be recomputed per
      output tuple in the interpreter hot path (currently: the free-column
      positions of foreign-predicate joins).

    Delta variants for semi-naive evaluation are derived here too, directly
    on plans: variant spines get fresh node ids, but off-spine subtrees are
    {e shared} with the base plan, so a cached join index built while
    evaluating the full body in iteration one is reused by every delta
    variant in later iterations.

    The profiler's statistics types and table printer live here as well,
    next to the node-id assignment they are keyed by; {!Interp} re-exports
    them. *)

type t = {
  pid : int;  (** stable pre-order node id, unique within a planned program *)
  label : string;  (** one-line operator label for profile tables *)
  invariant : bool;  (** result cannot change within the stratum's fixpoint *)
  colable : bool;
      (** the whole subtree is covered by the columnar batch executor: it
          contains no sampler (stateful RNG draws) and no foreign join
          (arbitrary OCaml callbacks).  Non-colable subtrees are evaluated by
          the tree-walker even under [config.columnar] *)
  desc : desc;
}

and desc =
  | Empty
  | Singleton
  | Pred of string
  | Select of Ram.vexpr * t
  | Project of Ram.vexpr list * t
  | Union of t * t
  | Product of t * t
  | Diff of t * t
  | Intersect of t * t
  | Join of { lkeys : int list; rkeys : int list; left : t; right : t }
  | Antijoin of { lkeys : int list; rkeys : int list; left : t; right : t }
  | One_overwrite of t
  | Zero_overwrite of t
  | Aggregate of {
      agg : Ram.aggregator;
      key_len : int;
      arg_len : int;
      group : group;
      body : t;
    }
  | Sample of { sampler : Ram.sampler; key_len : int; group : group; body : t }
  | Foreign_join of {
      name : string;
      args : Ram.fp_arg list;
      free_cols : int array;
          (** positions of [F_free] arguments, precomputed once per node
              instead of per result tuple *)
      left : t;
    }

and group = No_group | Implicit | Domain of t

type rule = {
  head : string;
  body : t;
  deltas : t list;
      (** semi-naive delta variants of [body] (empty for non-recursive
          strata); off-spine subtrees are physically shared with [body] *)
}

type stratum = { rules : rule list; recursive : bool; heads : string list }

type program = { strata : stratum list; outputs : string list; node_count : int }

(* Delta relations for semi-naive evaluation live in the same database under
   mangled names that cannot clash with source predicates. *)
let delta_name p = "\001delta:" ^ p

(* ---- planning -------------------------------------------------------------- *)

(* Columnar coverage is a pure function of the node kind and the children's
   flags, shared by [plan_expr] and the delta-variant spines. *)
let colable_of_desc = function
  | Empty | Singleton | Pred _ -> true
  | Select (_, a) | Project (_, a) | One_overwrite a | Zero_overwrite a -> a.colable
  | Union (a, b) | Product (a, b) | Diff (a, b) | Intersect (a, b) ->
      a.colable && b.colable
  | Join { left; right; _ } | Antijoin { left; right; _ } ->
      left.colable && right.colable
  | Aggregate { group; body; _ } ->
      body.colable && (match group with Domain d -> d.colable | No_group | Implicit -> true)
  | Sample _ -> false
  | Foreign_join _ -> false

let rec plan_expr ~next ~(heads : string list) (e : Ram.expr) : t =
  let pid = next () in
  let label = Ram.node_label e in
  let mk invariant desc = { pid; label; invariant; colable = colable_of_desc desc; desc } in
  let sub = plan_expr ~next ~heads in
  match e with
  | Ram.Empty -> mk true Empty
  | Ram.Singleton -> mk true Singleton
  | Ram.Pred p -> mk (not (List.mem p heads)) (Pred p)
  | Ram.Select (c, a) ->
      let a = sub a in
      mk a.invariant (Select (c, a))
  | Ram.Project (m, a) ->
      let a = sub a in
      mk a.invariant (Project (m, a))
  | Ram.Union (a, b) ->
      let a = sub a and b = sub b in
      mk (a.invariant && b.invariant) (Union (a, b))
  | Ram.Product (a, b) ->
      let a = sub a and b = sub b in
      mk (a.invariant && b.invariant) (Product (a, b))
  | Ram.Diff (a, b) ->
      let a = sub a and b = sub b in
      mk (a.invariant && b.invariant) (Diff (a, b))
  | Ram.Intersect (a, b) ->
      let a = sub a and b = sub b in
      mk (a.invariant && b.invariant) (Intersect (a, b))
  | Ram.Join { lkeys; rkeys; left; right } ->
      let left = sub left and right = sub right in
      mk (left.invariant && right.invariant) (Join { lkeys; rkeys; left; right })
  | Ram.Antijoin { lkeys; rkeys; left; right } ->
      let left = sub left and right = sub right in
      mk (left.invariant && right.invariant) (Antijoin { lkeys; rkeys; left; right })
  | Ram.One_overwrite a ->
      let a = sub a in
      mk a.invariant (One_overwrite a)
  | Ram.Zero_overwrite a ->
      let a = sub a in
      mk a.invariant (Zero_overwrite a)
  | Ram.Aggregate { agg; key_len; arg_len; group; body } ->
      let body = sub body in
      let group, group_inv =
        match group with
        | Ram.No_group -> (No_group, true)
        | Ram.Implicit -> (Implicit, true)
        | Ram.Domain d ->
            let d = sub d in
            (Domain d, d.invariant)
      in
      mk (body.invariant && group_inv) (Aggregate { agg; key_len; arg_len; group; body })
  | Ram.Sample { sampler; key_len; group; body } ->
      let body = sub body in
      let group =
        match group with
        | Ram.No_group -> No_group
        | Ram.Implicit -> Implicit
        | Ram.Domain d -> Domain (sub d)
      in
      (* Samplers draw from the config RNG, so re-evaluation is observable:
         never invariant, never cached. *)
      mk false (Sample { sampler; key_len; group; body })
  | Ram.Foreign_join { name; args; left } ->
      let left = sub left in
      let free_cols =
        Array.of_list
          (List.concat (List.mapi (fun i a -> if a = Ram.F_free then [ i ] else []) args))
      in
      mk left.invariant (Foreign_join { name; args; free_cols; left })

(** Delta rewriting for semi-naive evaluation (the paper's runtime is "based
    on semi-naive evaluation specialized for tagged semantics", Sec. 5).
    Returns plans whose union covers every derivation involving at least one
    changed tuple of the stratum's head predicates: each variant replaces one
    recursive leaf with its delta relation.  Derivations among unchanged
    tuples were already ⊕-merged in earlier iterations and are preserved by
    the Rule-1/3 merge, so skipping them is sound.  Stratification guarantees
    that aggregation bodies, sampling bodies and the right-hand sides of
    difference/anti-join never mention the current stratum, so they never
    carry a delta.

    Spine nodes (ancestors of the replaced leaf) get fresh ids and are marked
    variant; everything off the spine is shared with the input plan. *)
let rec delta_plans ~next ~(heads : string list) (p : t) : t list =
  let redo label desc =
    { pid = next (); label; invariant = false; colable = colable_of_desc desc; desc }
  in
  let on sub rebuild = List.map rebuild (delta_plans ~next ~heads sub) in
  match p.desc with
  | Pred pr when List.mem pr heads -> [ redo ("Δ" ^ pr) (Pred (delta_name pr)) ]
  | Pred _ | Empty | Singleton -> []
  | Select (c, a) -> on a (fun a' -> redo p.label (Select (c, a')))
  | Project (m, a) -> on a (fun a' -> redo p.label (Project (m, a')))
  | One_overwrite a -> on a (fun a' -> redo p.label (One_overwrite a'))
  | Zero_overwrite a -> on a (fun a' -> redo p.label (Zero_overwrite a'))
  | Union (a, b) -> delta_plans ~next ~heads a @ delta_plans ~next ~heads b
  | Product (a, b) ->
      on a (fun a' -> redo p.label (Product (a', b)))
      @ on b (fun b' -> redo p.label (Product (a, b')))
  | Intersect (a, b) ->
      on a (fun a' -> redo p.label (Intersect (a', b)))
      @ on b (fun b' -> redo p.label (Intersect (a, b')))
  | Join { lkeys; rkeys; left; right } ->
      on left (fun l -> redo p.label (Join { lkeys; rkeys; left = l; right }))
      @ on right (fun r -> redo p.label (Join { lkeys; rkeys; left; right = r }))
  | Diff (a, b) -> on a (fun a' -> redo p.label (Diff (a', b)))
  | Antijoin { lkeys; rkeys; left; right } ->
      on left (fun l -> redo p.label (Antijoin { lkeys; rkeys; left = l; right }))
  | Aggregate _ | Sample _ -> []
  | Foreign_join { name; args; free_cols; left } ->
      on left (fun l -> redo p.label (Foreign_join { name; args; free_cols; left = l }))

(** Plan a compiled program, assigning stable pre-order node ids and deriving
    per-rule delta variants for recursive strata. *)
let of_program (rp : Ram.program) : program =
  let counter = ref 0 in
  let next () =
    let i = !counter in
    incr counter;
    i
  in
  let strata =
    List.map
      (fun (s : Ram.stratum) ->
        let heads = List.map (fun (r : Ram.rule) -> r.Ram.head) s.Ram.rules in
        let rules =
          List.map
            (fun (r : Ram.rule) ->
              let body = plan_expr ~next ~heads r.Ram.body in
              let deltas =
                if s.Ram.recursive then delta_plans ~next ~heads body else []
              in
              { head = r.Ram.head; body; deltas })
            s.Ram.rules
        in
        { rules; recursive = s.Ram.recursive; heads })
      rp.Ram.strata
  in
  { strata; outputs = rp.Ram.outputs; node_count = !counter }

(** Plan a standalone expression (tests, inspection); node ids start at 0 and
    are unique only within this expression. *)
let of_expr ?(heads = []) (e : Ram.expr) : t =
  let counter = ref 0 in
  let next () =
    let i = !counter in
    incr counter;
    i
  in
  plan_expr ~next ~heads e

(** Delta variants of a plan with respect to an {e arbitrary} predicate set,
    numbering fresh spine nodes from [start] upward; returns the variants and
    the next unused id.  [of_program] only rewrites same-stratum heads (the
    classic semi-naive case); the incremental maintenance engine ([Incr])
    additionally needs variants over the {e changed input} predicates of a
    stratum — EDB relations and lower-stratum heads touched by an update — to
    seed a fixpoint continuation.  Callers thread a counter starting past
    [node_count] so generated spines never collide with planned ids (the
    fixpoint caches and the profiler key on node id). *)
let delta_plans_from ~start ~(heads : string list) (p : t) : t list * int =
  let counter = ref start in
  let next () =
    let i = !counter in
    incr counter;
    i
  in
  let variants = delta_plans ~next ~heads p in
  (variants, !counter)

(** Standalone delta variants of a plan (tests, inspection); fresh spine
    nodes get negative ids so they cannot collide with planned ids. *)
let delta_variants ~heads (p : t) : t list =
  let counter = ref 0 in
  let next () =
    decr counter;
    !counter
  in
  delta_plans ~next ~heads p

(* ---- execution statistics ---------------------------------------------------- *)

type node_stat = {
  mutable evals : int;  (** number of times the node was evaluated *)
  mutable tuples : int;  (** total tuples produced across evaluations *)
  mutable seconds : float;  (** total wall time, inclusive of children *)
  mutable hits : int;  (** fixpoint-cache hits that skipped evaluation *)
}

type stratum_trace = {
  stratum_index : int;
  mutable iterations : int;
  mutable delta_sizes : int list;
      (** changed tuples per iteration, most recent first *)
}

(** Budget-exhaustion counters: how many runs folded into this sink were
    stopped by each resource axis (see [Budget.t]).  In a batched execution
    these make graceful degradation observable — e.g. "3 of 64 samples hit
    their deadline this epoch" — without parsing error values. *)
type budget_stops = {
  mutable deadline_stops : int;
  mutable iteration_stops : int;
  mutable tuple_stops : int;
  mutable node_eval_stops : int;
  mutable cancelled_stops : int;
}

type stats = {
  mutable fixpoint_iterations : int;
      (** total fixed-point iterations across strata (the Fig. 10 saturation
          traces are measured through this) *)
  node_stats : (int, node_stat) Hashtbl.t;  (** keyed by plan node id *)
  mutable stratum_traces : stratum_trace list;  (** in stratum order *)
  budget_stops : budget_stops;
  mutable cache_tables : int;
      (** fixpoint cache tables actually constructed.  Caches only pay off
          across iterations, so non-recursive strata must never build one —
          the aggregation-sum-count regression test pins this at 0. *)
}

let empty_budget_stops () =
  { deadline_stops = 0; iteration_stops = 0; tuple_stops = 0; node_eval_stops = 0;
    cancelled_stops = 0 }

let total_budget_stops (b : budget_stops) =
  b.deadline_stops + b.iteration_stops + b.tuple_stops + b.node_eval_stops
  + b.cancelled_stops

let empty_stats () =
  { fixpoint_iterations = 0; node_stats = Hashtbl.create 64; stratum_traces = [];
    budget_stops = empty_budget_stops (); cache_tables = 0 }

(** [merge_stats ~into src] adds [src]'s counters into [into].  Batched
    execution gives every sample its own private sink (workers never share
    one) and folds them into the caller's sink afterwards, in sample order,
    so aggregated profiles are deterministic and race-free. *)
let merge_stats ~(into : stats) (src : stats) =
  into.fixpoint_iterations <- into.fixpoint_iterations + src.fixpoint_iterations;
  into.cache_tables <- into.cache_tables + src.cache_tables;
  Hashtbl.iter
    (fun pid (st : node_stat) ->
      match Hashtbl.find_opt into.node_stats pid with
      | Some dst ->
          dst.evals <- dst.evals + st.evals;
          dst.tuples <- dst.tuples + st.tuples;
          dst.seconds <- dst.seconds +. st.seconds;
          dst.hits <- dst.hits + st.hits
      | None ->
          Hashtbl.add into.node_stats pid
            { evals = st.evals; tuples = st.tuples; seconds = st.seconds; hits = st.hits })
    src.node_stats;
  (* Stratum traces are positional: fold iteration counts into the matching
     stratum, extending the list the first time. *)
  let merge_trace (dst : stratum_trace) (src_tr : stratum_trace) =
    dst.iterations <- dst.iterations + src_tr.iterations;
    dst.delta_sizes <- src_tr.delta_sizes @ dst.delta_sizes
  in
  let rec go dsts srcs =
    match (dsts, srcs) with
    | rest, [] -> rest
    | [], s :: rest ->
        { stratum_index = s.stratum_index; iterations = s.iterations;
          delta_sizes = s.delta_sizes }
        :: go [] rest
    | d :: drest, s :: srest ->
        merge_trace d s;
        d :: go drest srest
  in
  into.stratum_traces <- go into.stratum_traces src.stratum_traces;
  let bi = into.budget_stops and bs = src.budget_stops in
  bi.deadline_stops <- bi.deadline_stops + bs.deadline_stops;
  bi.iteration_stops <- bi.iteration_stops + bs.iteration_stops;
  bi.tuple_stops <- bi.tuple_stops + bs.tuple_stops;
  bi.node_eval_stops <- bi.node_eval_stops + bs.node_eval_stops;
  bi.cancelled_stops <- bi.cancelled_stops + bs.cancelled_stops

let node_stat (s : stats) pid : node_stat =
  match Hashtbl.find_opt s.node_stats pid with
  | Some st -> st
  | None ->
      let st = { evals = 0; tuples = 0; seconds = 0.0; hits = 0 } in
      Hashtbl.add s.node_stats pid st;
      st

(* ---- profile table ------------------------------------------------------------ *)

let truncate_label n s =
  (* count on bytes is wrong for the UTF-8 operator glyphs, but only ever
     over-truncates; keep it simple *)
  if String.length s <= n then s else String.sub s 0 (n - 1) ^ "…"

(** Print the per-node execution profile of a planned program: one row per
    RAM node (pre-order, indented by depth) with evaluation count, cache
    hits, tuples produced and inclusive wall time, followed by the
    per-stratum iteration traces.  Shared delta subtrees are printed once
    and referenced by id afterwards. *)
let pp_profile (prog : program) ppf (stats : stats) =
  let visited = Hashtbl.create 64 in
  let row depth (p : t) suffix =
    let pad = String.make (2 * depth) ' ' in
    match Hashtbl.find_opt stats.node_stats p.pid with
    | Some st ->
        Fmt.pf ppf "  %4d %8d %8d %10d %10.3f  %s%s%s@." p.pid st.evals st.hits st.tuples
          (1000.0 *. st.seconds) pad
          (truncate_label 48 p.label)
          suffix
    | None ->
        Fmt.pf ppf "  %4d %8s %8s %10s %10s  %s%s%s@." p.pid "-" "-" "-" "-" pad
          (truncate_label 48 p.label)
          suffix
  in
  let rec walk depth (p : t) =
    if Hashtbl.mem visited p.pid then
      Fmt.pf ppf "  %4d %8s %8s %10s %10s  %s(shared node %d: %s)@." p.pid "" "" "" ""
        (String.make (2 * depth) ' ')
        p.pid
        (truncate_label 32 p.label)
    else begin
      Hashtbl.add visited p.pid ();
      row depth p "";
      match p.desc with
      | Empty | Singleton | Pred _ -> ()
      | Select (_, a) | Project (_, a) | One_overwrite a | Zero_overwrite a -> walk (depth + 1) a
      | Union (a, b) | Product (a, b) | Diff (a, b) | Intersect (a, b) ->
          walk (depth + 1) a;
          walk (depth + 1) b
      | Join { left; right; _ } | Antijoin { left; right; _ } ->
          walk (depth + 1) left;
          walk (depth + 1) right
      | Aggregate { group; body; _ } | Sample { group; body; _ } -> (
          walk (depth + 1) body;
          match group with Domain d -> walk (depth + 1) d | No_group | Implicit -> ())
      | Foreign_join { left; _ } -> walk (depth + 1) left
    end
  in
  Fmt.pf ppf "=== execution profile (%d fixpoint iterations) ===@." stats.fixpoint_iterations;
  Fmt.pf ppf "  %4s %8s %8s %10s %10s  %s@." "id" "evals" "hits" "tuples" "ms" "node";
  List.iteri
    (fun si (s : stratum) ->
      Fmt.pf ppf "stratum %d%s:@." si (if s.recursive then " (recursive)" else "");
      List.iter
        (fun (r : rule) ->
          Fmt.pf ppf " rule %s:@." r.head;
          walk 0 r.body;
          List.iteri
            (fun i d ->
              Fmt.pf ppf " rule %s (delta variant %d):@." r.head i;
              walk 0 d)
            r.deltas)
        s.rules)
    prog.strata;
  List.iter
    (fun (tr : stratum_trace) ->
      Fmt.pf ppf "stratum %d: %d iteration%s" tr.stratum_index tr.iterations
        (if tr.iterations = 1 then "" else "s");
      (match List.rev tr.delta_sizes with
      | [] -> ()
      | sizes ->
          Fmt.pf ppf ", changed tuples per iteration: %a"
            (Fmt.list ~sep:(Fmt.any " ") Fmt.int) sizes);
      Fmt.pf ppf "@.")
    stats.stratum_traces;
  let b = stats.budget_stops in
  if total_budget_stops b > 0 then
    Fmt.pf ppf
      "budget stops: %d deadline, %d iterations, %d tuples, %d node-evals, %d cancelled@."
      b.deadline_stops b.iteration_stops b.tuple_stops b.node_eval_stops
      b.cancelled_stops
