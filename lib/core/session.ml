(** End-user API: compile once, execute many times under any provenance —
    the OCaml counterpart of the paper's [scallopy] binding (Sec. 5).

    [compile] runs the full pipeline: parse → desugar (front-IR) → safety
    check → type inference/elaboration → stratification → RAM compilation.
    [run] executes a compiled program with a fresh provenance instance,
    extensional facts, and returns recovered outputs together with the
    input-variable ids assigned to each probabilistic fact — which is what
    lets a training loop route ∂y/∂r gradients back to the network that
    produced r (see {!Scallop_nn.Scallop_layer}).

    Every failure surfaces as [Error of Exec_error.t] — a typed diagnostic
    a caller can match on (resource exhaustion vs. program error vs. bad
    input) — rendered for humans by {!error_string}.  Budgets (deadlines,
    iteration/tuple/node caps, cancellation) travel in
    [config.Interp.budget]; {!run_batch} isolates failures per sample.

    The execution engine is selected by [config.Interp.columnar]: the
    default tree-walking interpreter, or the columnar batch executor (CLI
    [--columnar]) with identical results.  The flag rides through
    {!batch_config} untouched, so batched samples all execute under the
    engine the template config selects. *)

exception Error of Exec_error.t

let error_string = Exec_error.to_string

(** Raise [Error] with an [Invalid_input] diagnostic. *)
let invalid_input fmt =
  Fmt.kstr (fun msg -> raise (Error (Exec_error.Invalid_input { msg }))) fmt

type compiled = {
  ram : Ram.program;
  plan : Plan.program;
      (** RAM annotated with stable node ids and stratum-invariance flags;
          this is what {!run} executes, and what profiling stats key into *)
  rel_types : (string, Value.ty array) Hashtbl.t;
  static_facts : (string * float option * int option * Tuple.t) list;
  queries : string list;
  static_me_groups : int;  (** dynamic me-groups are shifted past these *)
}

let wrap_errors f =
  try f () with
  | Parser.Parse_error (msg, pos) -> raise (Error (Exec_error.Parse_error { msg; pos }))
  | Front.Front_error (msg, pos) -> raise (Error (Exec_error.Front_error { msg; pos }))
  | Typecheck.Type_error (msg, pos) -> raise (Error (Exec_error.Type_error { msg; pos }))
  | Demand.Demand_error (msg, pos) -> raise (Error (Exec_error.Demand_error { msg; pos }))
  | Exec_error.Error e -> raise (Error e)

let compile ?load ?(optimize = true) (source : string) : compiled =
  wrap_errors (fun () ->
      let ast = Parser.parse_program source in
      let patterns = Demand.patterns_of_program ast in
      let front = Front.desugar ?load ast in
      (* Demand (magic-set) transformation for @demand-annotated relations,
         seeded by query atoms with constant arguments. *)
      let front =
        if patterns = [] then front
        else begin
          let rules = Demand.transform patterns front.Front.rules in
          let seeds =
            List.filter_map
              (fun (a, pos) ->
                Option.map
                  (fun (dp, args) ->
                    { Front.pred = dp; prob = None; me_group = None; args; fact_pos = pos })
                  (Demand.seed_of_query pos patterns a))
              front.Front.query_atoms
          in
          { front with Front.rules; facts = front.Front.facts @ seeds }
        end
      in
      Front.check_safety front;
      let typed = Typecheck.check { front with Front.rules = front.Front.rules } in
      let strata = Stratify.stratify typed.Typecheck.rules in
      let outputs =
        if typed.Typecheck.queries <> [] then typed.Typecheck.queries
        else
          (* default: every rule head is observable *)
          List.concat_map (List.map (fun (r : Front.crule) -> r.Front.head.Ast.pred)) strata
          |> Scallop_utils.Listx.dedup_stable String.equal
      in
      let ram = Compile.compile_strata strata ~outputs in
      let ram = if optimize then Opt.optimize_program ram else ram in
      let static_me_groups =
        List.fold_left
          (fun acc (_, _, me, _) -> match me with Some g -> max acc (g + 1) | None -> acc)
          0 typed.Typecheck.facts
      in
      {
        ram;
        plan = Plan.of_program ram;
        rel_types = typed.Typecheck.rel_types;
        static_facts = typed.Typecheck.facts;
        queries = typed.Typecheck.queries;
        static_me_groups;
      })

(* ---- execution ------------------------------------------------------------------ *)

type result = {
  outputs : (string * (Tuple.t * Provenance.Output.t) list) list;
  fact_ids : ((string * Tuple.t) * int) list;
      (** provenance variable id assigned to each tagged input fact *)
  stats : Interp.stats option;
      (** the profiling sink of the config this run executed under, if any;
          render with [Interp.pp_profile compiled.plan] *)
}

(** Coerce an externally provided tuple to the relation's column types, so
    that e.g. an [i32 3] provided for a [usize] column still joins. *)
let coerce_tuple (c : compiled) pred (t : Tuple.t) : Tuple.t =
  match Hashtbl.find_opt c.rel_types pred with
  | None -> t
  | Some tys ->
      if Array.length tys <> Array.length t then
        invalid_input "arity mismatch for %s: expected %d" pred (Array.length tys);
      Array.mapi
        (fun i v ->
          match Value.cast tys.(i) v with
          | Some v' -> v'
          | None ->
              invalid_input "value %a does not fit column %d of %s (%s)" Value.pp v i pred
                (Value.ty_name tys.(i)))
        t

let run ?(config = Interp.default_config ()) ~(provenance : Provenance.t) (c : compiled)
    ?(facts : (string * (Provenance.Input.t * Tuple.t) list) list = [])
    ?(outputs : string list option) () : result =
  let module P = (val provenance : Provenance.S) in
  let module I = Interp.Make (P) in
  let fact_ids = ref [] in
  let add_fact db pred (input : Provenance.Input.t) tuple =
    let tuple = coerce_tuple c pred tuple in
    let tag, id = P.tag_of_input input in
    (match id with Some id -> fact_ids := ((pred, tuple), id) :: !fact_ids | None -> ());
    I.db_add_fact db pred tuple tag
  in
  (* Static (program) facts first — their me-groups use low indices. *)
  let db =
    List.fold_left
      (fun db (pred, prob, me, tuple) ->
        add_fact db pred { Provenance.Input.prob; me_group = me } tuple)
      I.empty_db c.static_facts
  in
  (* Dynamic facts: shift caller me-groups past the static ones. *)
  let db =
    List.fold_left
      (fun db (pred, entries) ->
        List.fold_left
          (fun db ((input : Provenance.Input.t), tuple) ->
            let input =
              match input.Provenance.Input.me_group with
              | Some g -> { input with Provenance.Input.me_group = Some (g + c.static_me_groups) }
              | None -> input
            in
            add_fact db pred input tuple)
          db entries)
      db facts
  in
  let out_rels = match outputs with Some o -> o | None -> c.ram.Ram.outputs in
  let outputs =
    try I.eval_plan_program_outputs config db c.plan ~out:out_rels with
    | Exec_error.Error e -> raise (Error e)
    | Aggregate.Unsupported msg -> raise (Error (Exec_error.Runtime_error { msg }))
  in
  { outputs; fact_ids = List.rev !fact_ids; stats = config.Interp.stats }

(* ---- batched execution ---------------------------------------------------------- *)

(** Per-sample configuration of a batch rooted at [template]: sample [i]
    draws from [Rng.substream template.rng i] — an independent, reproducible
    stream that does not depend on worker count or scheduling — and gets a
    private profiling sink iff the template profiles.  This is the exact
    config [run_batch] executes sample [i] under; tests use it to build the
    sequential reference map. *)
let batch_config (template : Interp.config) (i : int) : Interp.config =
  {
    template with
    Interp.rng = Scallop_utils.Rng.substream template.Interp.rng i;
    stats = Option.map (fun _ -> Interp.empty_stats ()) template.Interp.stats;
  }

(** [run_batch ~provenance_of c batch] executes the compiled plan [c] once
    per element of [batch] (each element is the [facts] argument of {!run})
    and returns per-sample outcomes in input order: [Ok result] for samples
    that completed, [Error diag] for samples stopped by their budget, by
    cancellation, or by a per-sample input/runtime error.

    Failures are isolated: one sample exhausting its budget (or being handed
    malformed facts) leaves every other sample's result intact, and no
    worker domain is leaked — errors are materialized as values before they
    ever reach the pool.  If [config.Interp.budget]'s cancellation token
    fires, in-flight samples stop at their next safe point and not-yet-
    started samples return [Error (Cancelled { stratum = -1; _ })].

    For the successful samples the semantics are exactly

    {[ Array.mapi
         (fun i facts ->
           run ~config:(batch_config config i) ~provenance:(provenance_of i)
             c ~facts ?outputs ())
         batch ]}

    but the samples execute on [jobs] domains (or on [pool] if given).  The
    equivalence is bit-exact at every worker count because all per-run state
    is private to a sample: [provenance_of i] must return a {e fresh}
    provenance instance (e.g. [fun _ -> Registry.create spec]), each sample
    gets its own RNG substream and interpreter caches, and profiling sinks
    are per-sample and folded into [config]'s sink afterwards, in sample
    order ({!Interp.merge_stats}) — including the sinks of failed samples,
    whose budget-stop counters make partial batches observable in
    [Plan.stats]. *)
let run_batch ?(pool : Scallop_utils.Pool.t option) ?(jobs = 1)
    ?(config = Interp.default_config ()) ~(provenance_of : int -> Provenance.t)
    (c : compiled) ?(outputs : string list option)
    (batch : (string * (Provenance.Input.t * Tuple.t) list) list array) :
    (result, Exec_error.t) Stdlib.result array =
  let batch_cancelled () =
    match config.Interp.budget.Budget.cancel with
    | Some tok -> Scallop_utils.Cancel.cancelled tok
    | None -> false
  in
  (* Total by construction: every failure becomes a value here, so the pool
     only ever sees normal returns and its workers always drain cleanly. *)
  let run_one i facts =
    let cfg = batch_config config i in
    let outcome =
      if batch_cancelled () then begin
        (match cfg.Interp.stats with
        | Some s ->
            s.Interp.budget_stops.Plan.cancelled_stops <-
              s.Interp.budget_stops.Plan.cancelled_stops + 1
        | None -> ());
        Stdlib.Error (Exec_error.Cancelled { stratum = -1; elapsed = 0.0 })
      end
      else
        try Stdlib.Ok (run ~config:cfg ~provenance:(provenance_of i) c ~facts ?outputs ())
        with Error e -> Stdlib.Error e
    in
    (outcome, cfg.Interp.stats)
  in
  let results =
    match pool with
    | Some p -> Scallop_utils.Pool.parallel_mapi p ~f:run_one batch
    | None ->
        if jobs <= 1 || Array.length batch <= 1 then Array.mapi run_one batch
        else
          Scallop_utils.Pool.with_pool jobs (fun p ->
              Scallop_utils.Pool.parallel_mapi p ~f:run_one batch)
  in
  (match config.Interp.stats with
  | Some sink ->
      Array.iter
        (fun (_, stats) ->
          match stats with Some s -> Interp.merge_stats ~into:sink s | None -> ())
        results
  | None -> ());
  Array.map fst results

(** Like {!run_batch} but re-raises the first per-sample failure as
    [Error] — for callers that treat any failed sample as a batch failure
    (the historical behavior). *)
let run_batch_exn ?pool ?jobs ?config ~provenance_of c ?outputs batch : result array =
  run_batch ?pool ?jobs ?config ~provenance_of c ?outputs batch
  |> Array.map (function Stdlib.Ok r -> r | Stdlib.Error e -> raise (Error e))

(** One-shot convenience: compile and run a source string. *)
let interpret ?config ?load ~provenance ?facts ?outputs (source : string) : result =
  let c = compile ?load source in
  run ?config ~provenance c ?facts ?outputs ()

(** Look up one output relation in a result. *)
let output (r : result) pred : (Tuple.t * Provenance.Output.t) list =
  match List.assoc_opt pred r.outputs with Some l -> l | None -> []

(** Probability of a specific tuple in an output relation (0 if absent). *)
let prob_of (r : result) pred tuple : float =
  match
    List.find_opt (fun (t, _) -> Tuple.compare t tuple = 0) (output r pred)
  with
  | Some (_, o) -> Provenance.Output.prob o
  | None -> 0.0

(* ---- cross-iteration WMC cache controls --------------------------------------

   Recovering top-k-proof formulas repeatedly compiles the same DNF to a BDD
   and re-counts it under the same weights — across fixpoint iterations, and
   across the runs of a training loop where only a few input probabilities
   move per step.  {!Wmc} keeps a per-domain cache (hash-consed BDD manager +
   results keyed on (root, weights), so changed probabilities re-count
   automatically).  These re-exports let embedders toggle and inspect it
   without depending on [Wmc] directly; the CLI exposes [--no-wmc-cache]. *)

(** Enable/disable the per-domain WMC cache (on by default).  Disabling does
    not clear existing entries; they are simply not consulted. *)
let set_wmc_cache = Wmc.set_cache_enabled

(** Whether the WMC cache is currently enabled. *)
let wmc_cache_enabled = Wmc.cache_enabled

(** Hit/miss/reset counters and current BDD-manager size for the calling
    domain's cache. *)
let wmc_cache_stats = Wmc.cache_stats

(** Drop every cached BDD and counted result on the calling domain. *)
let clear_wmc_cache = Wmc.clear_cache

(* ---- shared compiled-plan cache ------------------------------------------------

   Multi-tenant serving compiles the same program text over and over: every
   tenant of an incremental session ({!Incr}) runs the same rules over a
   private EDB overlay.  Compiled programs are immutable once built
   ([rel_types] is only read after compilation), so they can be shared
   freely across sessions and domains.  The cache below memoizes [compile]
   on a 64-bit FNV-1a hash of the source text — the same hash that names a
   program in the serve protocol — with LRU eviction and hit/miss/eviction
   counters, so sharing is measurable (`scallop serve`'s [stats] verb).

   [load]-dependent compilations are not cached: an import loader makes the
   compiled result depend on state outside the source text.  Callers with
   imports must inline them (the serve layer concatenates the base program
   into each request) or fall back to {!compile}. *)

(** 64-bit FNV-1a of the program text, in hex — the identity under which a
    compiled plan is shared across tenants. *)
let source_hash (source : string) : string =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    source;
  Fmt.str "%016Lx" !h

type plan_cache_stats = { hits : int; misses : int; evictions : int; entries : int }

type plan_cache_entry = {
  pc_source : string;  (** full text, to rule out hash collisions *)
  pc_optimize : bool;
  pc_compiled : compiled;
  mutable pc_last_used : int;  (** LRU clock reading *)
}

let plan_cache : (string, plan_cache_entry) Hashtbl.t = Hashtbl.create 32
let plan_cache_mutex = Mutex.create ()
let plan_cache_clock = ref 0
let plan_cache_limit = ref 64
let plan_cache_hits = ref 0
let plan_cache_misses = ref 0
let plan_cache_evictions = ref 0

let plan_cache_locked f =
  Mutex.lock plan_cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock plan_cache_mutex) f

(* Evict least-recently-used entries until the cap holds; requires the lock. *)
let evict_over_limit_locked () =
  while Hashtbl.length plan_cache > !plan_cache_limit do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.pc_last_used <= e.pc_last_used -> acc
          | _ -> Some (key, e))
        plan_cache None
    in
    match victim with
    | Some (key, _) ->
        Hashtbl.remove plan_cache key;
        incr plan_cache_evictions
    | None -> ()
  done

(** Cap on cached plans (default 64); shrinking evicts immediately. *)
let set_plan_cache_limit n =
  plan_cache_locked (fun () ->
      plan_cache_limit := max 1 n;
      evict_over_limit_locked ())

let plan_cache_stats () : plan_cache_stats =
  plan_cache_locked (fun () ->
      {
        hits = !plan_cache_hits;
        misses = !plan_cache_misses;
        evictions = !plan_cache_evictions;
        entries = Hashtbl.length plan_cache;
      })

(** Drop every cached plan (counters survive). *)
let clear_plan_cache () =
  plan_cache_locked (fun () -> Hashtbl.reset plan_cache)

(** [compile] memoized on {!source_hash}.  A hash collision (same hash,
    different text) bypasses the cache rather than ever serving the wrong
    plan.  Compilation happens outside the cache lock, so a slow compile
    never blocks other tenants; two tenants racing on the same new program
    may both compile, with one result cached. *)
let compile_cached ?(optimize = true) (source : string) : compiled =
  let key = source_hash source in
  let cached =
    plan_cache_locked (fun () ->
        match Hashtbl.find_opt plan_cache key with
        | Some e when String.equal e.pc_source source && e.pc_optimize = optimize ->
            incr plan_cache_hits;
            incr plan_cache_clock;
            e.pc_last_used <- !plan_cache_clock;
            Some e.pc_compiled
        | _ ->
            incr plan_cache_misses;
            None)
  in
  match cached with
  | Some c -> c
  | None ->
      let c = compile ~optimize source in
      plan_cache_locked (fun () ->
          if not (Hashtbl.mem plan_cache key) then begin
            incr plan_cache_clock;
            Hashtbl.replace plan_cache key
              {
                pc_source = source;
                pc_optimize = optimize;
                pc_compiled = c;
                pc_last_used = !plan_cache_clock;
              };
            evict_over_limit_locked ()
          end);
      c
