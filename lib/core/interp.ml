(** The SclRam runtime: tagged operational semantics (paper Fig. 7, 23, 24),
    parameterized by a provenance.

    A database maps predicates to relations; a relation maps tuples to tags.
    Expression evaluation produces (possibly duplicated) tagged tuples;
    rule evaluation normalizes them (⊕-merging duplicates and applying early
    [discard]) and merges with previously derived facts (Rule-1/2/3).
    Stratum evaluation is the saturation-checked least-fixed-point lfp°.

    The interpreter evaluates {!Plan.t} trees (RAM expressions annotated at
    compile time with stable node ids and stratum-invariance flags) rather
    than raw {!Ram.expr}s.  The annotations drive two features:

    - {e profiling}: when [config.stats] is set, every node evaluation is
      counted and timed under its node id, and each stratum records an
      iteration trace (see {!Plan.stats}).  With [stats = None] the only
      overhead is one match per node.
    - {e fixpoint caching}: when [config.cache_indices] is set, join and
      anti-join indices whose right side is invariant within the stratum,
      normalized right-hand relations of −/∩, and the materialized results
      of maximal invariant subtrees are computed once per stratum and reused
      across fixpoint iterations.  Caches are discarded at stratum exit.
      Invariance excludes samplers, so cached evaluation is observationally
      identical to uncached evaluation.

    Every run is additionally governed by a {!Budget.t} carried in the
    config: wall-clock deadline, per-stratum fixpoint-iteration cap,
    cumulative derived-tuple cap, node-evaluation cap, and an optional
    cooperative cancellation token.  Checks happen at fixpoint-iteration
    boundaries and (amortized, every {!Budget.clock_check_mask}+1 node
    evaluations) at operator boundaries; a violated budget aborts the run
    with a typed [Exec_error.Budget_exceeded] / [Exec_error.Cancelled] and
    bumps the matching counter in the profiling sink, leaving the caller's
    inputs untouched.  When no axis beyond the iteration cap is active the
    per-node bookkeeping is skipped entirely. *)

(* Re-exported so existing call sites can keep writing [Interp.stats],
   [s.Interp.fixpoint_iterations], etc.; the definitions live in {!Plan}
   next to the node-id assignment they are keyed by. *)
type node_stat = Plan.node_stat = {
  mutable evals : int;
  mutable tuples : int;
  mutable seconds : float;
  mutable hits : int;
}

type stratum_trace = Plan.stratum_trace = {
  stratum_index : int;
  mutable iterations : int;
  mutable delta_sizes : int list;
}

type stats = Plan.stats = {
  mutable fixpoint_iterations : int;
  node_stats : (int, node_stat) Hashtbl.t;
  mutable stratum_traces : stratum_trace list;
  budget_stops : Plan.budget_stops;
  mutable cache_tables : int;
}

let empty_stats = Plan.empty_stats
let merge_stats = Plan.merge_stats
let pp_profile = Plan.pp_profile

type config = {
  rng : Scallop_utils.Rng.t;
  budget : Budget.t;  (** resource bounds for each run under this config *)
  semi_naive : bool;
  cache_indices : bool;
      (** reuse join indices / invariant sub-relations across fixpoint
          iterations (sound; see {!Plan}) *)
  columnar : bool;
      (** evaluate strata with the columnar batch executor ({!Batch_ops});
          plan subtrees the columnar path does not cover (samplers, foreign
          joins — [Plan.colable = false]) fall back to the tree-walker over
          decoded views.  Bit-identical to the tree-walker for every
          registered provenance whose ⊕ is associative (all of them); see
          DESIGN.md "Columnar executor". *)
  stats : stats option;  (** profiling sink; [None] disables collection *)
}

let default_config () =
  {
    rng = Scallop_utils.Rng.create 0;
    budget = Budget.default;
    semi_naive = true;
    cache_indices = true;
    columnar = false;
    stats = None;
  }

let bump_stats config =
  match config.stats with Some s -> s.fixpoint_iterations <- s.fixpoint_iterations + 1 | None -> ()

let record_hit config pid =
  match config.stats with
  | Some s ->
      let st = Plan.node_stat s pid in
      st.hits <- st.hits + 1
  | None -> ()

let runtime_error msg = Exec_error.raise_error (Exec_error.Runtime_error { msg })

(* ---- budget monitor ---------------------------------------------------------- *)

(** Per-run budget accounting.  One monitor is created per
    [eval_plan_program] (equivalently per [Session.run]); it is local to the
    run's domain, so batched execution never shares one across workers. *)
type monitor = {
  mbudget : Budget.t;
  started : float;  (** wall-clock start of the run *)
  deadline : float;  (** absolute deadline; [infinity] when no timeout *)
  watched : bool;  (** see {!Budget.watched}; false skips node bookkeeping *)
  mutable m_stratum : int;  (** stratum currently being evaluated *)
  mutable m_iterations : int;  (** fixpoint iterations completed in [m_stratum] *)
  mutable m_tuples : int;  (** cumulative tuples materialized by rule evals *)
  mutable m_node_evals : int;  (** RAM-plan node evaluations so far *)
}

let make_monitor (b : Budget.t) : monitor =
  let started = Scallop_utils.Monotonic.now () in
  {
    mbudget = b;
    started;
    deadline = (match b.Budget.timeout with Some s -> started +. s | None -> infinity);
    watched = Budget.watched b;
    m_stratum = 0;
    m_iterations = 0;
    m_tuples = 0;
    m_node_evals = 0;
  }

(* Abort the run: bump the matching profiler counter, raise the typed
   diagnostic.  Raising is what unwinds the fixpoint — partial strata are
   dropped with the stack, so the caller's database is never torn. *)
let budget_stop config (mon : monitor) (kind : Exec_error.budget_kind) =
  (match config.stats with
  | Some s ->
      let b = s.budget_stops in
      (match kind with
      | Exec_error.Deadline -> b.Plan.deadline_stops <- b.Plan.deadline_stops + 1
      | Exec_error.Iterations -> b.Plan.iteration_stops <- b.Plan.iteration_stops + 1
      | Exec_error.Tuples -> b.Plan.tuple_stops <- b.Plan.tuple_stops + 1
      | Exec_error.Node_evals -> b.Plan.node_eval_stops <- b.Plan.node_eval_stops + 1)
  | None -> ());
  Exec_error.raise_error
    (Exec_error.Budget_exceeded
       {
         kind;
         stratum = mon.m_stratum;
         iterations = mon.m_iterations;
         elapsed = Scallop_utils.Monotonic.now () -. mon.started;
       })

let cancel_stop config (mon : monitor) =
  (match config.stats with
  | Some s -> s.budget_stops.Plan.cancelled_stops <- s.budget_stops.Plan.cancelled_stops + 1
  | None -> ());
  Exec_error.raise_error
    (Exec_error.Cancelled
       { stratum = mon.m_stratum; elapsed = Scallop_utils.Monotonic.now () -. mon.started })

(* Poll the cancellation token and the wall clock.  Called at every fixpoint
   iteration boundary and every [Budget.clock_check_mask]+1 node evals. *)
let check_wall config (mon : monitor) =
  (match mon.mbudget.Budget.cancel with
  | Some c when Scallop_utils.Cancel.cancelled c -> cancel_stop config mon
  | _ -> ());
  if Scallop_utils.Monotonic.now () > mon.deadline then budget_stop config mon Exec_error.Deadline

(* One node evaluation is about to run.  With no watched axis this is a
   single load and branch. *)
let check_node config (mon : monitor) =
  if mon.watched then begin
    mon.m_node_evals <- mon.m_node_evals + 1;
    (match mon.mbudget.Budget.max_node_evals with
    | Some cap when mon.m_node_evals > cap -> budget_stop config mon Exec_error.Node_evals
    | _ -> ());
    if mon.m_node_evals land Budget.clock_check_mask = 0 then check_wall config mon
  end

(* Charge [n] freshly materialized tuples against the cumulative cap.  The
   count is the cardinality of an already-built map, so the charge is O(1)
   beyond work the rule evaluation did anyway. *)
let charge_tuples config (mon : monitor) n =
  if mon.watched then begin
    mon.m_tuples <- mon.m_tuples + n;
    match mon.mbudget.Budget.max_tuples with
    | Some cap when mon.m_tuples > cap -> budget_stop config mon Exec_error.Tuples
    | _ -> ()
  end

(* Iteration boundary: [next_iter] is about to start in the current stratum
   ([next_iter - 1] completed).  The iteration cap is always enforced, even
   for unwatched budgets — it is the historical non-termination guardrail. *)
let check_iteration config (mon : monitor) ~next_iter =
  mon.m_iterations <- next_iter - 1;
  if next_iter > mon.mbudget.Budget.max_iterations then
    budget_stop config mon Exec_error.Iterations;
  if mon.watched then check_wall config mon

module Make (P : Provenance.S) = struct
  module Agg = Aggregate.Make (P)
  module B = Batch_ops.Make (P)
  module SMap = Map.Make (String)

  type relation = P.t Tuple.Map.t
  type db = relation SMap.t

  let empty_db : db = SMap.empty

  let relation_of db pred : relation =
    match SMap.find_opt pred db with Some r -> r | None -> Tuple.Map.empty

  let db_add_fact db pred tuple tag =
    let rel = relation_of db pred in
    let rel =
      Tuple.Map.update tuple
        (fun cur -> Some (match cur with None -> tag | Some t -> P.add t tag))
        rel
    in
    SMap.add pred rel db

  (* ---- normalization (Fig. 24, Normalize) ------------------------------- *)

  let normalize (tuples : (Tuple.t * P.t) list) : relation =
    List.fold_left
      (fun acc (u, t) ->
        Tuple.Map.update u
          (fun cur -> Some (match cur with None -> t | Some t' -> P.add t' t))
          acc)
      Tuple.Map.empty tuples
    |> Tuple.Map.filter (fun _ t -> not (P.discard t))

  (* ---- grouping helper --------------------------------------------------- *)

  let split_key key_len (u : Tuple.t) =
    (Array.sub u 0 key_len, Array.sub u key_len (Array.length u - key_len))

  let group_map_by_key key_len (items : (Tuple.t * P.t) list) :
      (Tuple.t * P.t) list Tuple.Map.t =
    List.fold_left
      (fun m (u, t) ->
        let key, rest = split_key key_len u in
        Tuple.Map.update key
          (fun cur -> Some ((rest, t) :: Option.value cur ~default:[]))
          m)
      Tuple.Map.empty items
    |> Tuple.Map.map List.rev

  let group_by_key key_len (items : (Tuple.t * P.t) list) :
      (Tuple.t * (Tuple.t * P.t) list) list =
    Tuple.Map.bindings (group_map_by_key key_len items)

  (* ---- samplers ---------------------------------------------------------- *)

  (* All samplers return exactly [min k |items|] tuples in ascending input
     order (input order is itself canonical: sampler bodies are normalized,
     so items arrive sorted by tuple).  Draws consume only [config.rng], so
     a fixed seed gives a fixed sample. *)
  let apply_sampler config sampler (items : (Tuple.t * P.t) list) :
      (Tuple.t * P.t) list =
    match sampler with
    | Ram.Top_k k -> Scallop_utils.Listx.top_k_by (fun (_, t) -> P.weight t) k items
    | Ram.Categorical k ->
        let arr = Array.of_list items in
        let n = Array.length arr in
        if k >= n then items
        else
          let weights = Array.map (fun (_, t) -> P.weight t) arr in
          Scallop_utils.Rng.weighted_sample_indices config.rng k weights
          |> Array.map (fun i -> arr.(i))
          |> Array.to_list
    | Ram.Uniform k ->
        let arr = Array.of_list items in
        let n = Array.length arr in
        if k >= n then items
        else
          Scallop_utils.Rng.sample_indices config.rng k n
          |> Array.map (fun i -> arr.(i))
          |> Array.to_list

  (* ---- fixpoint caches ---------------------------------------------------- *)

  (** Per-stratum caches, keyed by plan node id; valid for the duration of
      one stratum's fixed point because cached nodes are invariant there. *)
  type cache = {
    c_rels : (int, (Tuple.t * P.t) list) Hashtbl.t;
        (** materialized results of maximal invariant subtrees *)
    c_joins : (int, (Tuple.t * P.t) list Tuple.Map.t) Hashtbl.t;
        (** join right-side indices, keyed by the right child's id *)
    c_antis : (int, P.t Tuple.Map.t) Hashtbl.t;
        (** anti-join right-side ⊕-merged indices *)
    c_norms : (int, P.t Tuple.Map.t) Hashtbl.t;
        (** normalized right-hand relations of −/∩ *)
  }

  let record_cache_table config =
    match config.stats with Some s -> s.cache_tables <- s.cache_tables + 1 | None -> ()

  let fresh_cache config =
    record_cache_table config;
    {
      c_rels = Hashtbl.create 16;
      c_joins = Hashtbl.create 16;
      c_antis = Hashtbl.create 16;
      c_norms = Hashtbl.create 16;
    }

  let build_join_index rkeys rights : (Tuple.t * P.t) list Tuple.Map.t =
    List.fold_left
      (fun m ((u, _) as item) ->
        let key = Tuple.project rkeys u in
        Tuple.Map.update key (fun cur -> Some (item :: Option.value cur ~default:[])) m)
      Tuple.Map.empty rights

  let build_antijoin_index rkeys rights : P.t Tuple.Map.t =
    List.fold_left
      (fun m (u, t) ->
        let key = Tuple.project rkeys u in
        Tuple.Map.update key
          (fun cur -> Some (match cur with None -> t | Some t' -> P.add t' t))
          m)
      Tuple.Map.empty rights

  (* ---- expression evaluation (Fig. 7 / Fig. 23) -------------------------- *)

  (* [eval] wraps [eval_node] with (a) result caching at maximal invariant
     subtrees — an invariant node reached from a variant parent checks the
     cache; its own subtree is then evaluated cache-less since every
     descendant is invariant too — and (b) per-node profiling.  Wall times
     are inclusive of children. *)
  let rec eval config mon (cache : cache option) (db : db) (p : Plan.t) :
      (Tuple.t * P.t) list =
    match cache with
    | Some c when p.Plan.invariant -> (
        match Hashtbl.find_opt c.c_rels p.Plan.pid with
        | Some r ->
            record_hit config p.Plan.pid;
            r
        | None ->
            let r = eval_timed config mon None db p in
            Hashtbl.add c.c_rels p.Plan.pid r;
            r)
    | _ -> eval_timed config mon cache db p

  and eval_timed config mon cache db (p : Plan.t) =
    check_node config mon;
    match config.stats with
    | None -> eval_node config mon cache db p
    | Some s ->
        let t0 = Scallop_utils.Monotonic.now () in
        let r = eval_node config mon cache db p in
        let st = Plan.node_stat s p.Plan.pid in
        st.evals <- st.evals + 1;
        st.tuples <- st.tuples + List.length r;
        st.seconds <- st.seconds +. (Scallop_utils.Monotonic.now () -. t0);
        r

  (* Normalized right-hand side of −/∩, cached when invariant. *)
  and normalized_right config mon cache db (b : Plan.t) : P.t Tuple.Map.t =
    match cache with
    | Some c when b.Plan.invariant -> (
        match Hashtbl.find_opt c.c_norms b.Plan.pid with
        | Some m ->
            record_hit config b.Plan.pid;
            m
        | None ->
            let m = normalize (eval config mon None db b) in
            Hashtbl.add c.c_norms b.Plan.pid m;
            m)
    | _ -> normalize (eval config mon cache db b)

  and eval_node config mon cache (db : db) (p : Plan.t) : (Tuple.t * P.t) list =
    match p.Plan.desc with
    | Plan.Empty -> []
    | Plan.Singleton -> [ (Tuple.unit, P.one) ]
    | Plan.Pred pr -> Tuple.Map.bindings (relation_of db pr)
    | Plan.Select (cond, e) ->
        List.filter (fun (u, _) -> Ram.eval_cond u cond) (eval config mon cache db e)
    | Plan.Project (m, e) ->
        List.filter_map
          (fun (u, t) -> Option.map (fun u' -> (u', t)) (Ram.eval_mapping u m))
          (eval config mon cache db e)
    | Plan.Union (a, b) -> eval config mon cache db a @ eval config mon cache db b
    | Plan.Product (a, b) ->
        let rb = eval config mon cache db b in
        List.concat_map
          (fun (ua, ta) -> List.map (fun (ub, tb) -> (Tuple.append ua ub, P.mult ta tb)) rb)
          (eval config mon cache db a)
    | Plan.Diff (a, b) ->
        (* Diff-1: tuple absent from b — propagate unchanged.
           Diff-2: present in both — tag t₁ ⊗ ⊖t₂ (information-preserving). *)
        let rb = normalized_right config mon cache db b in
        List.filter_map
          (fun (u, ta) ->
            match Tuple.Map.find_opt u rb with
            | None -> Some (u, ta)
            | Some tb -> (
                match P.negate tb with
                | Some ntb -> Some (u, P.mult ta ntb)
                | None -> runtime_error (P.name ^ " does not support negation")))
          (eval config mon cache db a)
    | Plan.Intersect (a, b) ->
        let rb = normalized_right config mon cache db b in
        List.filter_map
          (fun (u, ta) ->
            Option.map (fun tb -> (u, P.mult ta tb)) (Tuple.Map.find_opt u rb))
          (eval config mon cache db a)
    | Plan.Join { lkeys; rkeys; left; right } ->
        let index =
          match cache with
          | Some c when right.Plan.invariant -> (
              match Hashtbl.find_opt c.c_joins right.Plan.pid with
              | Some idx ->
                  record_hit config right.Plan.pid;
                  idx
              | None ->
                  let idx = build_join_index rkeys (eval config mon None db right) in
                  Hashtbl.add c.c_joins right.Plan.pid idx;
                  idx)
          | _ -> build_join_index rkeys (eval config mon cache db right)
        in
        List.concat_map
          (fun (ul, tl) ->
            let key = Tuple.project lkeys ul in
            match Tuple.Map.find_opt key index with
            | None -> []
            | Some matches ->
                List.map (fun (ur, tr) -> (Tuple.append ul ur, P.mult tl tr)) matches)
          (eval config mon cache db left)
    | Plan.Antijoin { lkeys; rkeys; left; right } ->
        (* Right side is keyed and ⊕-merged; a left tuple matching key k is
           tagged t_l ⊗ ⊖(⊕ of right tags at k). *)
        let index =
          match cache with
          | Some c when right.Plan.invariant -> (
              match Hashtbl.find_opt c.c_antis right.Plan.pid with
              | Some idx ->
                  record_hit config right.Plan.pid;
                  idx
              | None ->
                  let idx = build_antijoin_index rkeys (eval config mon None db right) in
                  Hashtbl.add c.c_antis right.Plan.pid idx;
                  idx)
          | _ -> build_antijoin_index rkeys (eval config mon cache db right)
        in
        List.filter_map
          (fun (ul, tl) ->
            let key = Tuple.project lkeys ul in
            match Tuple.Map.find_opt key index with
            | None -> Some (ul, tl)
            | Some tr -> (
                match P.negate tr with
                | Some ntr -> Some (ul, P.mult tl ntr)
                | None -> runtime_error (P.name ^ " does not support negation")))
          (eval config mon cache db left)
    | Plan.One_overwrite e ->
        Tuple.Map.bindings (normalize (eval config mon cache db e))
        |> List.map (fun (u, _) -> (u, P.one))
    | Plan.Zero_overwrite e ->
        Tuple.Map.bindings (normalize (eval config mon cache db e))
        |> List.map (fun (u, _) -> (u, P.zero))
    | Plan.Aggregate { agg; key_len; arg_len; group; body } -> (
        let items = Tuple.Map.bindings (normalize (eval config mon cache db body)) in
        match group with
        | Plan.No_group ->
            let rest = List.map (fun (u, t) -> (snd (split_key key_len u), t)) items in
            Agg.run agg ~arg_len rest
        | Plan.Implicit ->
            group_by_key key_len items
            |> List.concat_map (fun (key, group_items) ->
                   Agg.run agg ~arg_len group_items
                   |> List.map (fun (r, t) -> (Tuple.append key r, t)))
        | Plan.Domain dom ->
            let domain = Tuple.Map.bindings (normalize (eval config mon cache db dom)) in
            (* group lookup by balanced map, not a linear scan per key *)
            let grouped = group_map_by_key key_len items in
            List.concat_map
              (fun (key, tg) ->
                let group_items =
                  Option.value (Tuple.Map.find_opt key grouped) ~default:[]
                in
                Agg.run agg ~arg_len group_items
                |> List.map (fun (r, t) -> (Tuple.append key r, P.mult tg t)))
              domain)
    | Plan.Sample { sampler; key_len; group; body } -> (
        let items = Tuple.Map.bindings (normalize (eval config mon cache db body)) in
        match group with
        | Plan.No_group -> apply_sampler config sampler items
        | Plan.Implicit | Plan.Domain _ ->
            group_by_key key_len items
            |> List.concat_map (fun (key, group_items) ->
                   apply_sampler config sampler group_items
                   |> List.map (fun (r, t) -> (Tuple.append key r, t))))
    | Plan.Foreign_join { name; args; free_cols; left } -> (
        match Foreign.lookup_predicate name with
        | None -> runtime_error ("unknown foreign predicate $" ^ name)
        | Some (arity, fp) ->
            if List.length args <> arity then
              runtime_error ("arity mismatch for foreign predicate " ^ name);
            List.concat_map
              (fun (ul, tl) ->
                let pattern =
                  Array.of_list
                    (List.map
                       (function
                         | Ram.F_col i -> Some ul.(i)
                         | Ram.F_const v -> Some v
                         | Ram.F_free -> None)
                       args)
                in
                match fp pattern with
                | Error msg -> runtime_error (name ^ ": " ^ msg)
                | Ok tuples ->
                    (* keep only the free positions, in order; positions are
                       precomputed per node, not per result tuple *)
                    List.map
                      (fun full ->
                        let extra = Array.map (fun i -> full.(i)) free_cols in
                        (Tuple.append ul extra, tl))
                      tuples)
              (eval config mon cache db left))

  (* ---- rules (Fig. 24, Rule-1/2/3) --------------------------------------- *)

  (* Rule-1: tuple only in old — keep.  Rule-2: only newly derived — add.
     Rule-3: both — ⊕-merge.  [Tuple.Map.union] visits only colliding keys,
     so merging a small delta into a large accumulated relation costs
     O(|new| log |old|) rather than O(|old|). *)
  let merge_newly (old : relation) (newly : relation) : relation =
    Tuple.Map.union (fun _u t_old t_new -> Some (P.add t_old t_new)) old newly

  let eval_rule config mon cache (db : db) (r : Plan.rule) : relation =
    let newly = normalize (eval config mon cache db r.Plan.body) in
    charge_tuples config mon (Tuple.Map.cardinal newly);
    merge_newly (relation_of db r.Plan.head) newly

  (* ---- strata (Fig. 24, lfp°) -------------------------------------------- *)

  let relation_saturated ~(old_rel : relation) (new_rel : relation) : bool =
    Tuple.Map.for_all
      (fun u t_new ->
        match Tuple.Map.find_opt u old_rel with
        | Some t_old -> P.saturated ~old:t_old t_new
        | None -> false)
      new_rel

  (* Changed ("delta") tuples of a full new relation vs. the old one. *)
  let changed ~(old_rel : relation) (new_rel : relation) : relation =
    Tuple.Map.filter
      (fun u t_new ->
        match Tuple.Map.find_opt u old_rel with
        | Some t_old -> not (P.saturated ~old:t_old t_new)
        | None -> true)
      new_rel

  (* Delta of one semi-naive round, computed from the round's normalized
     derivations only (O(|newly| log |old|)): a tuple outside [newly] keeps
     its old tag, and saturation is reflexive (required for termination), so
     it can never be part of the delta.  Delta tuples carry their merged
     (old ⊕ new) tag, exactly as [changed] over the merged relation would
     produce. *)
  let delta_of ~(old_rel : relation) (newly : relation) : relation =
    Tuple.Map.fold
      (fun u t_new acc ->
        match Tuple.Map.find_opt u old_rel with
        | None -> Tuple.Map.add u t_new acc
        | Some t_old ->
            let merged = P.add t_old t_new in
            if P.saturated ~old:t_old merged then acc else Tuple.Map.add u merged acc)
      newly Tuple.Map.empty

  (* Per-stratum iteration trace, appended to the profiling sink in stratum
     order (shared by [eval_stratum] and [continue_stratum]). *)
  let new_trace config sidx =
    match config.stats with
    | Some st ->
        let tr = { Plan.stratum_index = sidx; iterations = 0; delta_sizes = [] } in
        st.stratum_traces <- st.stratum_traces @ [ tr ];
        Some tr
    | None -> None

  let record_iter config trace ?size () =
    bump_stats config;
    match trace with
    | None -> ()
    | Some tr ->
        tr.iterations <- tr.iterations + 1;
        (match size with Some n -> tr.delta_sizes <- n :: tr.delta_sizes | None -> ())

  let delta_size ds = List.fold_left (fun acc (_, d) -> acc + Tuple.Map.cardinal d) 0 ds

  (* The semi-naive inner loop: repeatedly evaluate each rule's delta
     variants with the current delta relations bound under their mangled
     names, ⊕-merge the normalized derivations, and recompute the deltas,
     until every delta drains.  Returns the saturated database together with
     the {e cumulative} per-head delta — the union of the seed and every
     round's changed tuples, later (merged) tags winning — which is what
     lets an incremental caller propagate a stratum's total change to the
     strata downstream. *)
  let delta_loop config mon cache trace (s : Plan.stratum) (db : db)
      (deltas : (string * relation) list) start_iter : db * (string * relation) list =
    let merge_acc acc ds =
      List.map
        (fun (h, cum) ->
          match List.assoc_opt h ds with
          | None -> (h, cum)
          | Some d -> (h, Tuple.Map.union (fun _ _cum t_new -> Some t_new) cum d))
        acc
    in
    let rec loop db deltas acc iters =
      if List.for_all (fun (_, d) -> Tuple.Map.is_empty d) deltas then begin
        mon.m_iterations <- iters - 1;
        (db, acc)
      end
      else begin
        check_iteration config mon ~next_iter:iters;
        let db_with_deltas =
          List.fold_left (fun a (h, d) -> SMap.add (Plan.delta_name h) d a) db deltas
        in
        let updates =
          List.map
            (fun (r : Plan.rule) ->
              let newly =
                normalize (List.concat_map (eval config mon cache db_with_deltas) r.Plan.deltas)
              in
              charge_tuples config mon (Tuple.Map.cardinal newly);
              (r.Plan.head, newly))
            s.Plan.rules
        in
        let deltas' =
          List.map
            (fun (h, newly) -> (h, delta_of ~old_rel:(relation_of db h) newly))
            updates
        in
        let db' =
          List.fold_left
            (fun a (h, newly) -> SMap.add h (merge_newly (relation_of db h) newly) a)
            db updates
        in
        record_iter config trace
          ?size:(match trace with Some _ -> Some (delta_size deltas') | None -> None)
          ();
        loop db' deltas' (merge_acc acc deltas') (iters + 1)
      end
    in
    loop db deltas deltas start_iter

  let eval_stratum config mon (db : db) (sidx : int) (s : Plan.stratum) : db =
    let heads = s.Plan.heads in
    mon.m_stratum <- sidx;
    mon.m_iterations <- 0;
    (* Caches only pay off across fixpoint iterations (every plan node has a
       unique id, so within one pass nothing is ever looked up twice).  A
       non-recursive stratum runs exactly one pass: building the cache
       tables there is pure overhead — measurably so on small aggregation
       strata — so skip them. *)
    let cache =
      if config.cache_indices && s.Plan.recursive then Some (fresh_cache config) else None
    in
    let trace = new_trace config sidx in
    let record_iter ?size () = record_iter config trace ?size () in
    let step (db : db) : db =
      List.fold_left
        (fun acc (r : Plan.rule) ->
          (* Each rule reads the database as of the start of the iteration
             (db), not the partially updated one; heads are distinct within a
             stratum so updates never collide. *)
          SMap.add r.Plan.head (eval_rule config mon cache db r) acc)
        db s.Plan.rules
    in
    let changed_count db db' =
      List.fold_left
        (fun acc h ->
          Tuple.Map.cardinal (changed ~old_rel:(relation_of db h) (relation_of db' h)) + acc)
        0 heads
    in
    if not s.Plan.recursive then begin
      check_iteration config mon ~next_iter:1;
      record_iter ();
      step db
    end
    else if not config.semi_naive then begin
      (* Naive lfp° exactly as Fig. 24: re-evaluate all rules until the
         database saturates.  Kept as the reference implementation. *)
      let rec iterate db iters =
        check_iteration config mon ~next_iter:iters;
        let db' = step db in
        record_iter ?size:(match trace with Some _ -> Some (changed_count db db') | None -> None) ();
        let saturated =
          List.for_all
            (fun h -> relation_saturated ~old_rel:(relation_of db h) (relation_of db' h))
            heads
        in
        if saturated then db' else iterate db' (iters + 1)
      in
      iterate db 1
    end
    else begin
      (* Semi-naive: after a full first round, only derivations touching a
         changed ("delta") tuple are re-evaluated. *)
      check_iteration config mon ~next_iter:1;
      let db1 = step db in
      let deltas =
        List.map (fun h -> (h, changed ~old_rel:(relation_of db h) (relation_of db1 h))) heads
      in
      record_iter ?size:(match trace with Some _ -> Some (delta_size deltas) | None -> None) ();
      fst (delta_loop config mon cache trace s db1 deltas 2)
    end

  (** Continue stratum [sidx]'s semi-naive fixed point from an
      already-materialized state: [db] must contain head relations that
      already ⊕-absorb every derivation not involving [deltas], and [deltas]
      must carry the changed tuples under their merged tags (the
      [changed]/[delta_of] convention).  Returns the saturated database and
      the cumulative per-head delta, seed included.  Only meaningful for
      recursive strata (non-recursive rules carry no delta variants).  With
      an idempotent ⊕ whose saturation is equality (unit/boolean/minmaxprob)
      the result is bit-identical to re-running the stratum from scratch on
      the updated inputs — the contract the incremental maintenance engine
      ([Incr]) is built on. *)
  let continue_stratum config (mon : monitor) (db : db) (sidx : int) (s : Plan.stratum)
      ~(deltas : (string * relation) list) : db * (string * relation) list =
    mon.m_stratum <- sidx;
    mon.m_iterations <- 0;
    let cache = if config.cache_indices then Some (fresh_cache config) else None in
    let trace = new_trace config sidx in
    delta_loop config mon cache trace s db deltas 1

  (* ---- columnar execution (config.columnar) ------------------------------- *)

  (* The vectorized twin of [eval]/[eval_stratum]: relations are {!B.crel}
     sorted-run stacks, operators work batch-at-a-time over {!Column}
     encodings, and every operator reproduces the tree-walker's emission
     order, so normalization ⊕-folds duplicates in the identical sequence
     and the result is bit-identical (fuzz-checked; see test/test_fuzz.ml).

     Plan subtrees with [colable = false] (samplers, foreign joins) fall
     back to the tree-walker over decoded views, memoized per predicate by
     (crel identity, version) so an unchanged relation is decoded once per
     fixpoint rather than once per iteration.  Child-evaluation order
     mirrors [eval_node] exactly — right sides before left sides — so
     fallback subtrees consume [config.rng] in the same sequence and
     sampler draws are preserved. *)

  type cdb = B.crel SMap.t

  type cruntime = {
    cmemo : (string, B.crel * int * relation) Hashtbl.t;
        (** decoded fallback views: pred ↦ (crel it decodes, version, view) *)
  }

  (** Per-stratum columnar caches, the twins of {!cache}. *)
  type ccache = {
    cc_rels : (int, B.batch) Hashtbl.t;
    cc_joins : (int, B.key_index) Hashtbl.t;
    cc_antis : (int, B.anti_index) Hashtbl.t;
    cc_norms : (int, B.batch) Hashtbl.t;
  }

  let fresh_ccache config =
    record_cache_table config;
    {
      cc_rels = Hashtbl.create 16;
      cc_joins = Hashtbl.create 16;
      cc_antis = Hashtbl.create 16;
      cc_norms = Hashtbl.create 16;
    }

  let crel_of (cdb : cdb) pred : B.crel =
    match SMap.find_opt pred cdb with Some c -> c | None -> B.crel_empty ()

  let decode_db (rt : cruntime) (cdb : cdb) : db =
    SMap.mapi
      (fun pred cr ->
        match Hashtbl.find_opt rt.cmemo pred with
        | Some (cr', v', rel) when cr' == cr && v' = cr.B.version -> rel
        | _ ->
            let rel = B.to_relation cr in
            Hashtbl.replace rt.cmemo pred (cr, cr.B.version, rel);
            rel)
      cdb

  let rec ceval config mon rt (cache : ccache option) (cdb : cdb) (p : Plan.t) : B.batch =
    match cache with
    | Some c when p.Plan.invariant -> (
        match Hashtbl.find_opt c.cc_rels p.Plan.pid with
        | Some r ->
            record_hit config p.Plan.pid;
            r
        | None ->
            let r = ceval_inner config mon rt None cdb p in
            Hashtbl.add c.cc_rels p.Plan.pid r;
            r)
    | _ -> ceval_inner config mon rt cache cdb p

  and ceval_inner config mon rt cache cdb (p : Plan.t) : B.batch =
    if not p.Plan.colable then
      (* whole-subtree fallback: the tree-walker does its own node
         accounting and profiling, so no [check_node] here *)
      B.of_list (eval config mon None (decode_db rt cdb) p)
    else ceval_timed config mon rt cache cdb p

  and ceval_timed config mon rt cache cdb (p : Plan.t) : B.batch =
    check_node config mon;
    match config.stats with
    | None -> ceval_node config mon rt cache cdb p
    | Some s ->
        let t0 = Scallop_utils.Monotonic.now () in
        let r = ceval_node config mon rt cache cdb p in
        let st = Plan.node_stat s p.Plan.pid in
        st.evals <- st.evals + 1;
        st.tuples <- st.tuples + r.B.n;
        st.seconds <- st.seconds +. (Scallop_utils.Monotonic.now () -. t0);
        r

  and cnormalized_right config mon rt cache cdb (b : Plan.t) : B.batch =
    match cache with
    | Some c when b.Plan.invariant -> (
        match Hashtbl.find_opt c.cc_norms b.Plan.pid with
        | Some r ->
            record_hit config b.Plan.pid;
            r
        | None ->
            let r = B.sort_normalize (ceval config mon rt None cdb b) in
            Hashtbl.add c.cc_norms b.Plan.pid r;
            r)
    | _ -> B.sort_normalize (ceval config mon rt cache cdb b)

  and ceval_node config mon rt cache (cdb : cdb) (p : Plan.t) : B.batch =
    match p.Plan.desc with
    | Plan.Empty -> B.empty
    | Plan.Singleton -> Lazy.force B.singleton
    | Plan.Pred pr -> B.crel_force (crel_of cdb pr)
    | Plan.Select (cond, e) -> B.select cond (ceval config mon rt cache cdb e)
    | Plan.Project (m, { Plan.desc = Plan.Join { lkeys; rkeys; left; right }; _ })
      when List.for_all (function Ram.Access _ -> true | _ -> false) m ->
        (* fused π∘⋈ for pure column selections: identical emission order and
           tags, but the gathers of dropped join columns are never done (the
           recursive-rule hot path is π[k…]( Δ ⋈ edb )) *)
        let index =
          match cache with
          | Some c when right.Plan.invariant -> (
              match Hashtbl.find_opt c.cc_joins right.Plan.pid with
              | Some ix ->
                  record_hit config right.Plan.pid;
                  ix
              | None ->
                  let ix = B.build_key_index rkeys (ceval config mon rt None cdb right) in
                  Hashtbl.add c.cc_joins right.Plan.pid ix;
                  ix)
          | _ -> B.build_key_index rkeys (ceval config mon rt cache cdb right)
        in
        let lb = ceval config mon rt cache cdb left in
        let width = Array.length lb.B.cols + Array.length index.B.ki_src.B.cols in
        let keep = List.map (function Ram.Access i -> i | _ -> assert false) m in
        if lb.B.n = 0 || List.for_all (fun i -> i >= 0 && i < width) keep then
          B.join ~keep:(Array.of_list keep) ~lkeys lb index
        else B.project m (B.join ~lkeys lb index)
    | Plan.Project (m, e) -> B.project m (ceval config mon rt cache cdb e)
    | Plan.Union (a, b) ->
        (* right child first, like the tree-walker's [eval a @ eval b] *)
        let rb = ceval config mon rt cache cdb b in
        let ra = ceval config mon rt cache cdb a in
        B.union ra rb
    | Plan.Product (a, b) ->
        let rb = ceval config mon rt cache cdb b in
        let ra = ceval config mon rt cache cdb a in
        B.product ra rb
    | Plan.Diff (a, b) ->
        let rb = cnormalized_right config mon rt cache cdb b in
        let ra = ceval config mon rt cache cdb a in
        B.diff ra rb
    | Plan.Intersect (a, b) ->
        let rb = cnormalized_right config mon rt cache cdb b in
        let ra = ceval config mon rt cache cdb a in
        B.intersect ra rb
    | Plan.Join { lkeys; rkeys; left; right } ->
        let index =
          match cache with
          | Some c when right.Plan.invariant -> (
              match Hashtbl.find_opt c.cc_joins right.Plan.pid with
              | Some ix ->
                  record_hit config right.Plan.pid;
                  ix
              | None ->
                  let ix = B.build_key_index rkeys (ceval config mon rt None cdb right) in
                  Hashtbl.add c.cc_joins right.Plan.pid ix;
                  ix)
          | _ -> B.build_key_index rkeys (ceval config mon rt cache cdb right)
        in
        B.join ~lkeys (ceval config mon rt cache cdb left) index
    | Plan.Antijoin { lkeys; rkeys; left; right } ->
        let index =
          match cache with
          | Some c when right.Plan.invariant -> (
              match Hashtbl.find_opt c.cc_antis right.Plan.pid with
              | Some ix ->
                  record_hit config right.Plan.pid;
                  ix
              | None ->
                  let ix = B.build_anti_index rkeys (ceval config mon rt None cdb right) in
                  Hashtbl.add c.cc_antis right.Plan.pid ix;
                  ix)
          | _ -> B.build_anti_index rkeys (ceval config mon rt cache cdb right)
        in
        B.antijoin ~lkeys (ceval config mon rt cache cdb left) index
    | Plan.One_overwrite e ->
        B.retag P.one (B.sort_normalize (ceval config mon rt cache cdb e))
    | Plan.Zero_overwrite e ->
        B.retag P.zero (B.sort_normalize (ceval config mon rt cache cdb e))
    | Plan.Aggregate { agg; key_len; arg_len; group; body } ->
        let items = B.sort_normalize (ceval config mon rt cache cdb body) in
        let group =
          match group with
          | Plan.No_group -> `No_group
          | Plan.Implicit -> `Implicit
          | Plan.Domain dom ->
              `Domain (B.sort_normalize (ceval config mon rt cache cdb dom))
        in
        B.aggregate agg ~key_len ~arg_len ~group items
    | Plan.Sample _ | Plan.Foreign_join _ ->
        (* colable = false by construction; handled by the fallback *)
        assert false

  (* The columnar lfp°, mirroring [eval_stratum] structure for structure.
     Head crels are mutable, so each round computes {e every} rule's update
     and delta against the round-start state before pushing any of them. *)
  let ceval_stratum config mon rt (cdb : cdb) (sidx : int) (s : Plan.stratum) : cdb =
    mon.m_stratum <- sidx;
    mon.m_iterations <- 0;
    let cache =
      if config.cache_indices && s.Plan.recursive then Some (fresh_ccache config) else None
    in
    let trace = new_trace config sidx in
    let record_iter ?size () = record_iter config trace ?size () in
    let rule_updates cdb plans_of =
      List.map
        (fun (r : Plan.rule) ->
          let evaled = B.concat (List.map (ceval config mon rt cache cdb) (plans_of r)) in
          let newly = B.sort_normalize evaled in
          charge_tuples config mon newly.B.n;
          (r.Plan.head, newly))
        s.Plan.rules
    in
    let deltas_of cdb updates =
      List.map (fun (h, newly) -> (h, B.delta_of_run ~old:(crel_of cdb h) newly)) updates
    in
    let push cdb updates =
      List.fold_left
        (fun a (h, newly) ->
          let cr = crel_of a h in
          B.crel_push cr newly;
          SMap.add h cr a)
        cdb updates
    in
    let dsize ds = List.fold_left (fun acc (_, d) -> acc + d.B.n) 0 ds in
    if not s.Plan.recursive then begin
      check_iteration config mon ~next_iter:1;
      record_iter ();
      push cdb (rule_updates cdb (fun r -> [ r.Plan.body ]))
    end
    else begin
      (* delta-drained loop shared by naive and semi-naive: [delta_of_run]
         empty for every head ⟺ [relation_saturated] (saturation is
         reflexive), so both modes share the same termination test *)
      let rec loop cdb deltas iters =
        if List.for_all (fun (_, d) -> d.B.n = 0) deltas then begin
          mon.m_iterations <- iters - 1;
          cdb
        end
        else begin
          check_iteration config mon ~next_iter:iters;
          let updates =
            if config.semi_naive then begin
              let cdb_with_deltas =
                List.fold_left
                  (fun a (h, d) -> SMap.add (Plan.delta_name h) (B.crel_of_run d) a)
                  cdb deltas
              in
              rule_updates cdb_with_deltas (fun r -> r.Plan.deltas)
            end
            else rule_updates cdb (fun r -> [ r.Plan.body ])
          in
          let deltas' = deltas_of cdb updates in
          let cdb' = push cdb updates in
          record_iter
            ?size:(match trace with Some _ -> Some (dsize deltas') | None -> None)
            ();
          loop cdb' deltas' (iters + 1)
        end
      in
      (* full first round *)
      check_iteration config mon ~next_iter:1;
      let updates = rule_updates cdb (fun r -> [ r.Plan.body ]) in
      let deltas = deltas_of cdb updates in
      let cdb1 = push cdb updates in
      record_iter ?size:(match trace with Some _ -> Some (dsize deltas) | None -> None) ();
      loop cdb1 deltas 2
    end

  (* ---- programs ----------------------------------------------------------- *)

  let eval_plan_program config (db : db) (p : Plan.program) : db =
    let mon = make_monitor config.budget in
    if mon.watched then check_wall config mon;
    if config.columnar then begin
      let rt = { cmemo = Hashtbl.create 8 } in
      let cdb = SMap.map B.crel_of_relation db in
      let cdb =
        fst
          (List.fold_left
             (fun (cdb, i) s -> (ceval_stratum config mon rt cdb i s, i + 1))
             (cdb, 0) p.Plan.strata)
      in
      SMap.map B.to_relation cdb
    end
    else
      fst
        (List.fold_left
           (fun (db, i) s -> (eval_stratum config mon db i s, i + 1))
           (db, 0) p.Plan.strata)

  (** Evaluate a raw RAM program by planning it on the fly (compiled sessions
      plan once at compile time and use {!eval_plan_program} directly). *)
  let eval_program config (db : db) (p : Ram.program) : db =
    eval_plan_program config db (Plan.of_program p)

  (** Recovery phase: apply ρ to the tags of an output relation. *)
  let recover (db : db) pred : (Tuple.t * Provenance.Output.t) list =
    Tuple.Map.bindings (relation_of db pred)
    |> List.map (fun (u, t) -> (u, P.recover t))

  (** Evaluate a program and recover the [out] relations in one step — the
      entry point {!Session.run} uses.  Row engine: {!eval_plan_program}
      followed by {!recover}.  Columnar engine: outputs are read directly
      off the final sorted runs (a forced run enumerates in exactly
      [Tuple.Map.bindings] order), skipping the per-relation O(N log N) map
      materialization that {!eval_plan_program} pays for API compatibility. *)
  let eval_plan_program_outputs config (db : db) (p : Plan.program) ~(out : string list) :
      (string * (Tuple.t * Provenance.Output.t) list) list =
    if config.columnar then begin
      let mon = make_monitor config.budget in
      if mon.watched then check_wall config mon;
      let rt = { cmemo = Hashtbl.create 8 } in
      let cdb = SMap.map B.crel_of_relation db in
      let cdb =
        fst
          (List.fold_left
             (fun (cdb, i) s -> (ceval_stratum config mon rt cdb i s, i + 1))
             (cdb, 0) p.Plan.strata)
      in
      List.map (fun pred -> (pred, B.to_outputs (B.crel_force (crel_of cdb pred)))) out
    end
    else
      let db = eval_plan_program config db p in
      List.map (fun pred -> (pred, recover db pred)) out

  (* ---- single-plan evaluators (differential-test harness) ------------------ *)

  (** Evaluate one plan tree over [db] with the tree-walker, uncached.
      Used as the oracle in test/test_columnar.ml. *)
  let eval_plan config (db : db) (p : Plan.t) : (Tuple.t * P.t) list =
    let mon = make_monitor config.budget in
    eval config mon None db p

  (** Evaluate one plan tree over [db] with the columnar executor, uncached;
      must be bit-identical to {!eval_plan} per tuple and tag. *)
  let eval_plan_columnar config (db : db) (p : Plan.t) : (Tuple.t * P.t) list =
    let mon = make_monitor config.budget in
    let rt = { cmemo = Hashtbl.create 4 } in
    B.to_list (ceval config mon rt None (SMap.map B.crel_of_relation db) p)
end
