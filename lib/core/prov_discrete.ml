(** Discrete provenances: unit, boolean, natural and proof-set reasoning.

    These instantiate the provenance framework with classical (non-
    probabilistic) algebras.  [Unit] and [Boolean] recover untagged Datalog
    semantics; [Natural] is the counting semiring (number of derivations);
    [Proofs] tracks the full set of derivation proofs without truncation —
    it is the k → ∞ limit of top-k-proofs and underlies the exact
    (DeepProbLog-style) baseline. *)

open Provenance

module Unit : S with type t = bool = struct
  (* 0 must differ from 1, so the carrier is a boolean presence flag; the
     output space is unit. *)
  type t = bool

  let name = "unit"
  let zero = false
  let one = true
  let add = ( || )
  let mult = ( && )
  let negate t = Some (not t)
  let saturated ~old t = Bool.equal old t
  let discard t = not t
  let weight t = if t then 1.0 else 0.0
  let tag_of_input (_ : Input.t) = (true, None)
  let recover _ = Output.O_unit
  let pp fmt t = Fmt.bool fmt t
end

module Boolean : S with type t = bool = struct
  include Unit

  let name = "boolean"

  (* A probability below 0.5 is read as "more likely false than true". *)
  let tag_of_input (i : Input.t) =
    ((match i.Input.prob with None -> true | Some p -> p >= 0.5), None)

  (* shared outputs: recover sits on the per-tuple result path *)
  let o_true = Output.O_bool true
  let o_false = Output.O_bool false
  let recover t = if t then o_true else o_false
end

module Natural : S with type t = int = struct
  (* The counting semiring N: tags count distinct derivations.  Negation is
     only defined at 0/1 (paper Sec. 4.1 allows provenances that violate
     individual properties for programs not using the affected features). *)
  type t = int

  let name = "natural"
  let zero = 0
  let one = 1
  let add = ( + )
  let mult = ( * )
  let negate t = Some (if t = 0 then 1 else 0)

  (* N is not absorptive; equality-based saturation still terminates for
     non-recursive or derivation-finite programs. *)
  let saturated ~old t = Int.equal old t
  let discard t = t = 0
  let weight t = float_of_int t
  let tag_of_input (_ : Input.t) = (1, None)
  let recover t = Output.O_nat t
  let pp = Fmt.int
end

(** max-min-prob (paper Example 4.1): tags in [0,1] propagated with max/min.
    This is the discrete-runtime version; see {!Prov_diff.Diff_max_min_prob}
    for the differentiable counterpart. *)
module Max_min_prob : S with type t = float = struct
  type t = float

  let name = "minmaxprob"
  let zero = 0.0
  let one = 1.0
  let add = Float.max
  let mult = Float.min
  let negate t = Some (1.0 -. t)
  let saturated ~old t = Float.equal old t
  let discard t = t <= 0.0
  let weight t = t
  let tag_of_input (i : Input.t) = ((match i.Input.prob with None -> 1.0 | Some p -> p), None)
  let recover t = Output.O_prob t
  let pp fmt t = Fmt.pf fmt "%.4f" t
end

(** Full proof-set provenance: DNF formulas without any k-truncation.  The
    absorption law holds (a proof that subsumes another absorbs it), so
    fixed points exist.  Functorized over a mutable probability store so the
    same module serves both the discrete "proofs" provenance (probabilities
    ignored) and the exact probabilistic one (see {!Prov_prob.Exact}). *)
module Proofs () : sig
  include S with type t = Formula.t

  val probs : (int, float) Hashtbl.t
  val me_groups : (int, int) Hashtbl.t
  val env : Formula.env
end = struct
  type t = Formula.t

  let name = "proofs"
  let probs : (int, float) Hashtbl.t = Hashtbl.create 64
  let me_groups : (int, int) Hashtbl.t = Hashtbl.create 64
  let next_id = ref 0

  let env =
    Formula.env
      ~me_group:(fun v -> Hashtbl.find_opt me_groups v)
      (fun v -> match Hashtbl.find_opt probs v with Some p -> p | None -> 1.0)

  (* No truncation: k = max_int.  Beam for cnf2dnf stays bounded to keep
     negation tractable; exactness is preserved up to that beam. *)
  let k = max_int
  let zero = Formula.ff
  let one = Formula.tt
  let add a b = Formula.disj_k env k a b
  let mult a b = Formula.conj_k env k a b
  let negate t = Some (Formula.neg_k ~beam:4096 env k t)

  (* Tags are produced exclusively by the canonical-order operations, so the
     ordered O(n) comparison replaces the O(n²) set equality. *)
  let saturated ~old t = Formula.equal_ordered old t
  let discard t = Formula.is_false t
  let weight t = Formula.prob_upper_bound env t

  let tag_of_input (i : Input.t) =
    match i.Input.prob with
    | None ->
        (* Untagged facts are unconditionally true: no variable needed, and
           proofs stay small. *)
        (Formula.tt, None)
    | Some p ->
        let id = !next_id in
        incr next_id;
        Hashtbl.replace probs id p;
        (match i.Input.me_group with Some g -> Hashtbl.replace me_groups id g | None -> ());
        (Formula.of_pos id, Some id)

  let recover t = Output.O_proofs t
  let pp = Formula.pp
end
