(** Probabilistic (non-differentiable) provenances.

    These propagate probability-like tags without gradients; they are the
    "debug before integrating a neural network" modes of paper Sec. 3.3, and
    [Exact] is the DeepProbLog-style exact-inference baseline used in the
    runtime comparison (Table 4): full proof sets, no truncation, exact WMC. *)

open Provenance

(** Proof-formula provenances additionally expose their probability
    environment so differentiable wrappers can re-run WMC with duals. *)
module type PROOFS_S = sig
  include S with type t = Formula.t

  val env : Formula.env
end

(** add-mult-prob: ⊕ = clamped +, ⊗ = ·, ⊖ = 1−x.  Saturation always true
    (paper Sec. 4.5.2), so recursive rules stop after one extra round. *)
module Add_mult_prob : S with type t = float = struct
  type t = float

  let name = "addmultprob"
  let zero = 0.0
  let one = 1.0
  let add a b = Float.min 1.0 (a +. b)
  let mult a b = a *. b
  let negate t = Some (1.0 -. t)
  let saturated ~old:_ _ = true
  let discard t = t <= 0.0
  let weight t = t
  let tag_of_input (i : Input.t) = ((match i.Input.prob with None -> 1.0 | Some p -> p), None)
  let recover t = Output.O_prob t
  let pp fmt = Fmt.pf fmt "%.4f"
end

(** top-k-proofs with probability recovery: tags are DNF formulas capped at
    [k] proofs; ρ runs exact WMC over the kept proofs. *)
module Top_k_proofs (K : sig
  val k : int
end)
() : PROOFS_S = struct
  module P = Prov_discrete.Proofs ()

  let env = P.env

  type t = Formula.t

  let name = Fmt.str "topkproofs-%d" K.k
  let zero = Formula.ff
  let one = Formula.tt
  let add a b = Formula.disj_k P.env K.k a b
  let mult a b = Formula.conj_k P.env K.k a b
  let negate t = Some (Formula.neg_k P.env K.k t)

  (* Tags coming out of disj_k/conj_k/neg_k are canonical, so the ordered
     comparison suffices — O(n) with an O(1) fast path when disj_k returned
     the old tag physically unchanged. *)
  let saturated ~old t = Formula.equal_ordered old t
  let discard t = Formula.is_false t
  let weight t = Formula.prob_upper_bound P.env t
  let tag_of_input = P.tag_of_input
  let recover t = Output.O_prob (Wmc.prob ~env:P.env t)
  let pp = Formula.pp
end

(** top-k-proofs over the {e eager} reference operators — the differential
    test oracle for the guided search (and its benchmark baseline).  Same
    semantics as {!Top_k_proofs}, materializing every candidate proof before
    truncating. *)
module Top_k_proofs_eager (K : sig
  val k : int
end)
() : PROOFS_S = struct
  module P = Prov_discrete.Proofs ()

  let env = P.env

  type t = Formula.t

  let name = Fmt.str "topkproofseager-%d" K.k
  let zero = Formula.ff
  let one = Formula.tt
  let add a b = Formula.disj_k_eager P.env K.k a b
  let mult a b = Formula.conj_k_eager P.env K.k a b
  let negate t = Some (Formula.neg_k_eager P.env K.k t)
  let saturated ~old t = Formula.equal_ordered old t
  let discard t = Formula.is_false t
  let weight t = Formula.prob_upper_bound P.env t
  let tag_of_input = P.tag_of_input
  let recover t = Output.O_prob (Wmc.prob ~env:P.env t)
  let pp = Formula.pp
end

(** sample-k-proofs: like top-k-proofs, but instead of keeping the k {e most
    probable} proofs deterministically, keeps k proofs sampled with
    probability proportional to their proof probability.  Trades reasoning
    granularity for exploration (useful in RL-style setups). *)
module Sample_k_proofs (K : sig
  val k : int
  val seed : int
end)
() : PROOFS_S = struct
  module P = Prov_discrete.Proofs ()

  let env = P.env
  let rng = Scallop_utils.Rng.create K.seed

  type t = Formula.t

  let name = Fmt.str "samplekproofs-%d" K.k

  (* k rounds of weighted sampling without replacement.  Array-based with
     in-place weight zeroing: probabilities are computed once, and each round
     is one O(n) scan instead of the historic List.nth/List.filteri rebuild
     (O(k·n²) total).  The draw sequence is bit-identical to the historic
     list version for a fixed RNG stream (pinned by a golden test):

     - zeroed (already-chosen) entries add exactly +0.0 to the running total
       and can never be where the cumulative scan first crosses, so the scan
       selects the same proof the compacted-list scan would;
     - the scan's float-rounding fallback ("no entry crossed") remaps to the
       last unchosen index — the compacted list's last element — without
       consuming randomness;
     - a non-positive or non-finite total draws a uniform index among the
       n - round unchosen entries, exactly like Rng.categorical on the
       compacted weights (both paths advance the RNG state once per round). *)
  let sample_k proofs =
    let proofs = Formula.dedup proofs in
    if List.compare_length_with proofs K.k <= 0 then proofs
    else begin
      let arr = Array.of_list proofs in
      let n = Array.length arr in
      let w = Array.map (Formula.proof_prob P.env) arr in
      let chosen = Array.make n false in
      let out = ref [] in
      let last_unchosen () =
        let i = ref (n - 1) in
        while chosen.(!i) do
          decr i
        done;
        !i
      in
      let nth_unchosen j =
        let count = ref j and res = ref (-1) in
        (try
           for i = 0 to n - 1 do
             if not chosen.(i) then
               if !count = 0 then begin
                 res := i;
                 raise Exit
               end
               else decr count
           done
         with Exit -> ());
        !res
      in
      for round = 0 to K.k - 1 do
        let total = Array.fold_left ( +. ) 0.0 w in
        let pick =
          if total <= 0.0 || not (Float.is_finite total) then
            nth_unchosen (Scallop_utils.Rng.int rng (n - round))
          else begin
            let x = Scallop_utils.Rng.float rng *. total in
            let acc = ref 0.0 in
            let res = ref (-1) in
            (try
               Array.iteri
                 (fun i wi ->
                   acc := !acc +. wi;
                   if x < !acc then begin
                     res := i;
                     raise Exit
                   end)
                 w
             with Exit -> ());
            if !res >= 0 then !res else last_unchosen ()
          end
        in
        chosen.(pick) <- true;
        w.(pick) <- 0.0;
        out := arr.(pick) :: !out
      done;
      List.rev !out
    end

  let zero = Formula.ff
  let one = Formula.tt
  let add a b = sample_k (a @ b)

  let mult a b =
    let merged =
      List.concat_map
        (fun pa -> List.filter_map (fun pb -> Formula.merge_proofs P.env pa pb) b)
        a
    in
    sample_k merged

  let negate t = Some (sample_k (Formula.neg_k P.env (4 * K.k) t))
  let saturated ~old t = Formula.equal old t
  let discard t = Formula.is_false t
  let weight t = Formula.prob_upper_bound P.env t
  let tag_of_input = P.tag_of_input
  let recover t = Output.O_prob (Wmc.prob ~env:P.env t)
  let pp = Formula.pp
end

(** Exact probabilistic inference: untruncated proof sets with exact WMC —
    the semantics of DeepProbLog/ProbLog, i.e. top-k-proofs with k ≥ 2ⁿ
    (paper Sec. 6.4).  Prohibitively slow on larger problems by design;
    serves as the DPL baseline in Table 4. *)
module Exact () : PROOFS_S = struct
  module P = Prov_discrete.Proofs ()
  include (P : S with type t = Formula.t)

  let env = P.env
  let name = "exactprobproofs"
  let recover t = Output.O_prob (Wmc.prob ~env:P.env t)
end
