(** Weighted model counting over DNF proof formulas (paper Sec. 4.5.3).

    The recover function ρ of the top-k-proofs provenances converts a DNF
    formula into an (optionally differentiable) probability.  Two engines:

    - For formulas over {e independent} variables we compile the DNF into an
      ROBDD ({!Scallop_bdd.Bdd}) and run linear-time algebraic model
      counting.  This is exact and mirrors the paper's SDD-based WMC.

    - For formulas mentioning {e mutually exclusive} variables (Appendix
      B.4.4) we use inclusion–exclusion over the proofs with categorical-
      aware conjunction probabilities: within a group, two distinct positive
      literals are contradictory, a positive literal subsumes the group's
      negative literals, and a set of purely negative literals has
      probability max(0, 1 − Σ rᵢ).  Exact up to [max_ie_proofs] proofs;
      beyond that the formula is truncated to its most probable proofs
      (top-k provenances never exceed k ≤ max_ie_proofs in practice).

    Both engines are polymorphic in the weight semiring so the same code
    yields plain floats and dual numbers. *)

type 'a ops = {
  zero : 'a;
  one : 'a;
  add : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  neg : 'a -> 'a; (* additive inverse *)
  complement : 'a -> 'a; (* 1 - x *)
  of_float : float -> 'a;
  max0 : 'a -> 'a; (* clamp below at 0 *)
}

let float_ops : float ops =
  {
    zero = 0.0;
    one = 1.0;
    add = ( +. );
    mul = ( *. );
    neg = (fun x -> -.x);
    complement = (fun x -> 1.0 -. x);
    of_float = Fun.id;
    max0 = Float.max 0.0;
  }

let dual_ops : Dual.t ops =
  {
    zero = Dual.zero;
    one = Dual.one;
    add = Dual.add;
    mul = Dual.mul;
    neg = Dual.neg;
    complement = Dual.complement;
    of_float = Dual.const;
    max0 = (fun d -> if Dual.value d < 0.0 then Dual.const 0.0 else d);
  }

let max_ie_proofs = 16

(* ---- BDD engine (independent variables) -------------------------------- *)

let wmc_of_root (type a) (ops : a ops) ~(weight_of : int -> a) ~vars root : a =
  Scallop_bdd.Bdd.wmc ~zero:ops.zero ~one:ops.one ~add:ops.add ~mul:ops.mul
    ~w_pos:weight_of
    ~w_neg:(fun v -> ops.complement (weight_of v))
    ~vars root

(* Fresh-manager compilation: used by the generic [run] entry point and when
   the cross-iteration cache is disabled. *)
let wmc_bdd (type a) (ops : a ops) ~(weight_of : int -> a) (formula : Formula.t) : a =
  let m = Scallop_bdd.Bdd.manager () in
  let dnf =
    List.map (fun proof -> Formula.proof_literals proof) formula
  in
  let root = Scallop_bdd.Bdd.of_dnf m dnf in
  let vars = Formula.variables formula in
  wmc_of_root ops ~weight_of ~vars root

(* ---- cross-iteration WMC cache ------------------------------------------ *)

(* Recover (ρ) dominates topkproofs runtime: every output tuple used to pay
   for a fresh BDD manager and a from-scratch DNF compilation, even though
   fixpoint iterations and successive training steps keep asking about the
   same (or heavily overlapping) formulas.  The cache below is domain-local
   (one per worker domain, so parallel batches stay race-free and
   bit-identical) and has two levels:

   - a {e structural} level: one shared hash-consed manager per domain plus
     a table from canonical formula identity to its compiled BDD root — the
     manager hash-conses across formulas, so overlapping proofs share
     subgraphs and compilation cost survives fixpoint iterations and
     training steps alike;

   - a {e result} level keyed by (structure, per-variable weights): the
     weights enter the key, so a training step that moves any input
     probability misses and recomputes — this is the invalidation rule, and
     it is what makes caching dual-number WMC sound (gradients depend on the
     variable values, not just the formula shape).

   Only the independent-variable BDD engine is cached; the
   inclusion–exclusion path for mutual-exclusion formulas is comparatively
   cheap and stays uncached.  ROBDDs are canonical given the variable order,
   so a cached compilation is node-for-node the diagram a fresh manager
   would build: cached and uncached results are bit-identical. *)

module FKey = struct
  (* Canonical structural identity: proofs as sorted literal lists, the
     proof list itself sorted.  Independent of proof insertion order and of
     the IMap internals. *)
  type t = (int * bool) list list

  let of_formula (f : Formula.t) : t =
    List.sort compare (List.map Formula.proof_literals f)

  let equal (a : t) (b : t) = a = b

  (* Fold over the whole structure: formulas from one fixpoint often share
     long literal prefixes (e.g. every path(0, j) along a chain), so a
     prefix-limited polymorphic hash would put them all in one bucket. *)
  let hash (k : t) =
    List.fold_left
      (fun h lits ->
        List.fold_left
          (fun h (v, s) -> (h * 131) + (2 * v) + (if s then 1 else 0))
          ((h * 17) + 3)
          lits)
      0 k
    land max_int
end

module FTbl = Hashtbl.Make (FKey)

(* Results are keyed by the compiled BDD's root node id — unique per
   structure within one manager generation, O(1) to compare — plus the
   per-variable weight vector. *)
module RKey = struct
  type t = int * float array

  (* Structural (=) on the weights: NaNs never compare equal, so a NaN
     environment always recomputes. *)
  let equal ((i1, w1) : t) ((i2, w2) : t) = i1 = i2 && w1 = w2

  let hash ((i, w) : t) =
    Array.fold_left
      (fun h x -> (h * 131) lxor Int64.to_int (Int64.bits_of_float x))
      i w
    land max_int
end

module RTbl = Hashtbl.Make (RKey)

type centry = { root : Scallop_bdd.Bdd.t; cvars : int list }

type cache = {
  manager : Scallop_bdd.Bdd.manager;
  bdds : centry FTbl.t;
  probs : float RTbl.t;
  duals : Dual.t RTbl.t;
  mutable bdd_hits : int;
  mutable bdd_misses : int;
  mutable result_hits : int;
  mutable result_misses : int;
  mutable resets : int;
}

(* Caps chosen so a runaway workload resets rather than grows unboundedly:
   a reset costs one recompilation wave, unbounded growth costs the heap. *)
let max_manager_nodes = 2_000_000
let max_result_entries = 65_536

let fresh_cache () =
  {
    manager = Scallop_bdd.Bdd.manager ();
    bdds = FTbl.create 256;
    probs = RTbl.create 256;
    duals = RTbl.create 256;
    bdd_hits = 0;
    bdd_misses = 0;
    result_hits = 0;
    result_misses = 0;
    resets = 0;
  }

let cache_key : cache Domain.DLS.key = Domain.DLS.new_key fresh_cache
let cache () = Domain.DLS.get cache_key

let enabled = Atomic.make true

(** Globally enable/disable the cross-iteration cache (e.g. the CLI's
    [--no-wmc-cache]).  Disabled, every call compiles into a fresh manager —
    the historic behaviour.  Results are identical either way. *)
let set_cache_enabled b = Atomic.set enabled b

let cache_enabled () = Atomic.get enabled

(** Statistics of the calling domain's cache. *)
type cache_stats = {
  bdd_hits : int;
  bdd_misses : int;
  result_hits : int;
  result_misses : int;
  resets : int;
  manager_nodes : int;
}

let cache_stats () : cache_stats =
  let c = cache () in
  {
    bdd_hits = c.bdd_hits;
    bdd_misses = c.bdd_misses;
    result_hits = c.result_hits;
    result_misses = c.result_misses;
    resets = c.resets;
    manager_nodes = Scallop_bdd.Bdd.size c.manager;
  }

(** Drop the calling domain's cached compilations and results (stats and
    reset counters survive). *)
let clear_cache () =
  let c = cache () in
  Scallop_bdd.Bdd.clear c.manager;
  FTbl.reset c.bdds;
  RTbl.reset c.probs;
  RTbl.reset c.duals

let bdd_of_cached c (formula : Formula.t) : centry =
  let key = FKey.of_formula formula in
  match FTbl.find_opt c.bdds key with
  | Some e ->
      c.bdd_hits <- c.bdd_hits + 1;
      e
  | None ->
      c.bdd_misses <- c.bdd_misses + 1;
      if Scallop_bdd.Bdd.size c.manager > max_manager_nodes then begin
        c.resets <- c.resets + 1;
        (* Node ids restart after a manager reset and results are keyed by
           root id, so cached roots and results must all go together. *)
        Scallop_bdd.Bdd.clear c.manager;
        FTbl.reset c.bdds;
        RTbl.reset c.probs;
        RTbl.reset c.duals
      end;
      let root = Scallop_bdd.Bdd.of_dnf c.manager (List.map Formula.proof_literals formula) in
      let e = { root; cvars = Formula.variables formula } in
      FTbl.replace c.bdds key e;
      e

let cached_result (type r) (table : r RTbl.t) c ~(env : Formula.env) formula
    (compute : vars:int list -> Scallop_bdd.Bdd.t -> r) : r =
  let e = bdd_of_cached c formula in
  (* The weight vector enters the key — a training step that moves any input
     probability misses and recomputes; this is the invalidation rule. *)
  let values = Array.of_list (List.map env.Formula.prob e.cvars) in
  let rkey = (Scallop_bdd.Bdd.node_id e.root, values) in
  match RTbl.find_opt table rkey with
  | Some r ->
      c.result_hits <- c.result_hits + 1;
      r
  | None ->
      c.result_misses <- c.result_misses + 1;
      let r = compute ~vars:e.cvars e.root in
      if RTbl.length table >= max_result_entries then RTbl.reset table;
      RTbl.add table rkey r;
      r

(* ---- Inclusion–exclusion engine (mutual exclusion aware) ---------------- *)

module IMap = Map.Make (Int)

(* Probability of a single conjunction of literals under categorical group
   semantics.  Proofs coming out of [Formula.merge_proofs] are already free
   of within-proof conflicts, but merged subsets during IE may conflict, in
   which case this returns zero. *)
let conj_weight (type a) (ops : a ops) ~(weight_of : int -> a) ~(me_group : int -> int option)
    (proof : Formula.proof) : a =
  (* Partition literals by group. *)
  let grouped : (int * bool) list IMap.t ref = ref IMap.empty in
  let free = ref [] in
  List.iter
    (fun (v, s) ->
      match me_group v with
      | None -> free := (v, s) :: !free
      | Some g ->
          grouped :=
            IMap.update g (fun l -> Some ((v, s) :: Option.value l ~default:[])) !grouped)
    (Formula.proof_literals proof);
  let acc = ref ops.one in
  List.iter
    (fun (v, s) ->
      let w = weight_of v in
      acc := ops.mul !acc (if s then w else ops.complement w))
    !free;
  IMap.iter
    (fun _g lits ->
      let pos = List.filter (fun (_, s) -> s) lits in
      let negs = List.filter (fun (_, s) -> not s) lits in
      match pos with
      | (v, _) :: rest ->
          if rest <> [] then acc := ops.zero (* two positives: contradiction *)
          else if List.exists (fun (v', _) -> v' = v) negs then acc := ops.zero
          else acc := ops.mul !acc (weight_of v)
          (* negatives of other members are implied by exclusivity *)
      | [] ->
          (* P(none of the negated members chosen) = 1 - Σ rᵢ, clamped. *)
          let s =
            List.fold_left (fun s (v, _) -> ops.add s (weight_of v)) ops.zero negs
          in
          acc := ops.mul !acc (ops.max0 (ops.complement s)))
    !grouped;
  !acc

let wmc_ie (type a) (ops : a ops) ~(weight_of : int -> a) ~(me_group : int -> int option)
    ~(env : Formula.env) (formula : Formula.t) : a =
  let proofs =
    if List.length formula <= max_ie_proofs then formula
    else Formula.top_k env max_ie_proofs formula
  in
  let proofs = Array.of_list proofs in
  let n = Array.length proofs in
  let total = ref ops.zero in
  (* Iterate over non-empty subsets via bitmasks; n ≤ max_ie_proofs. *)
  for mask = 1 to (1 lsl n) - 1 do
    let merged = ref (Some Formula.true_proof) in
    let size = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        incr size;
        match !merged with
        | None -> ()
        | Some p -> merged := Formula.merge_proofs env p proofs.(i)
      end
    done;
    (match !merged with
    | None -> ()
    | Some p ->
        let w = conj_weight ops ~weight_of ~me_group p in
        let w = if !size mod 2 = 1 then w else ops.neg w in
        total := ops.add !total w)
  done;
  !total

(* ---- public entry points ------------------------------------------------ *)

let has_me_vars ~me_group formula =
  List.exists (fun v -> me_group v <> None) (Formula.variables formula)

(** WMC in an arbitrary weight semiring. *)
let run (type a) (ops : a ops) ~(weight_of : int -> a) ~(env : Formula.env)
    (formula : Formula.t) : a =
  if Formula.is_false formula then ops.zero
  else if Formula.is_true formula then ops.one
  else if has_me_vars ~me_group:env.Formula.me_group formula then
    wmc_ie ops ~weight_of ~me_group:env.Formula.me_group ~env formula
  else wmc_bdd ops ~weight_of formula

(* Shared dispatch for the cached entry points: trivial formulas and the
   mutual-exclusion IE engine bypass the cache; the BDD path goes through
   the domain-local cache unless disabled. *)
let run_cached (type a) (ops : a ops) ~(weight_of : int -> a)
    ~(table : cache -> a RTbl.t) ~(env : Formula.env) formula : a =
  if Formula.is_false formula then ops.zero
  else if Formula.is_true formula then ops.one
  else if has_me_vars ~me_group:env.Formula.me_group formula then
    wmc_ie ops ~weight_of ~me_group:env.Formula.me_group ~env formula
  else if not (cache_enabled ()) then wmc_bdd ops ~weight_of formula
  else
    let c = cache () in
    cached_result (table c) c ~env formula (fun ~vars root ->
        wmc_of_root ops ~weight_of ~vars root)

(** Plain probability. *)
let prob ~(env : Formula.env) formula =
  run_cached float_ops ~weight_of:env.Formula.prob ~table:(fun c -> c.probs) ~env
    formula

(** Probability with gradient: each variable [v] is a dual [var v (prob v)]. *)
let dual ~(env : Formula.env) formula =
  run_cached dual_ops
    ~weight_of:(fun v -> Dual.var v (env.Formula.prob v))
    ~table:(fun c -> c.duals) ~env formula
