(** Differentiable provenances (paper Sec. 4.5, Fig. 11).

    Tags carry enough structure to produce, for every output fact, a dual
    number: the output probability together with its gradient w.r.t. the
    vector of input probabilities (∂y/∂r).  Each module allocates an input
    variable id per probabilistic input fact; {!Session} uses the returned
    ids to route gradients back to the neural network. *)

open Provenance

(* Shared variable-id allocation for dual-number provenances. *)
module Vars () = struct
  let next_id = ref 0

  let fresh prob =
    let id = !next_id in
    incr next_id;
    (id, Dual.var id prob)
end

(** diff-max-min-prob (Sec. 4.5.1): dual numbers propagated with max/min.
    Derivatives always have at most one non-zero entry (±1); all operations
    are O(1).  Saturation compares only the probability part. *)
module Diff_max_min_prob () : S with type t = Dual.t = struct
  module V = Vars ()

  type t = Dual.t

  let name = "diffminmaxprob"
  let zero = Dual.zero
  let one = Dual.one
  let add = Dual.max
  let mult = Dual.min
  let negate t = Some (Dual.complement t)
  let saturated ~old t = Dual.equal_value old t
  let discard t = Dual.value t <= 0.0
  let weight = Dual.value

  let tag_of_input (i : Input.t) =
    match i.Input.prob with
    | None -> (Dual.one, None)
    | Some p ->
        let id, d = V.fresh p in
        (d, Some id)

  let recover t = Output.O_dual t
  let pp = Dual.pp
end

(** diff-add-mult-prob (Sec. 4.5.2): ⊕ = clamp(+) keeping the derivative,
    ⊗ = dual product.  Saturation is constantly true, trading recursive
    precision for guaranteed termination.  O(n) per operation. *)
module Diff_add_mult_prob () : S with type t = Dual.t = struct
  module V = Vars ()

  type t = Dual.t

  let name = "diffaddmultprob"
  let zero = Dual.zero
  let one = Dual.one
  let add a b = Dual.clamp (Dual.add a b)
  let mult = Dual.mul
  let negate t = Some (Dual.complement t)
  let saturated ~old:_ _ = true
  let discard t = Dual.value t <= 0.0
  let weight = Dual.value

  let tag_of_input (i : Input.t) =
    match i.Input.prob with
    | None -> (Dual.one, None)
    | Some p ->
        let id, d = V.fresh p in
        (d, Some id)

  let recover t = Output.O_dual t
  let pp = Dual.pp
end

(** diff-nand-mult-prob: the noisy-or / independence heuristic.
    ⊗ = a·b, ⊕ = 1 − (1−a)(1−b) (i.e. or via nand), ⊖ = 1 − a.  Smooth
    everywhere, unlike max/min; saturation uses value equality. *)
module Diff_nand_mult_prob () : S with type t = Dual.t = struct
  module V = Vars ()

  type t = Dual.t

  let name = "diffnandmultprob"
  let zero = Dual.zero
  let one = Dual.one
  let add a b = Dual.complement (Dual.mul (Dual.complement a) (Dual.complement b))
  let mult = Dual.mul
  let negate t = Some (Dual.complement t)
  let saturated ~old t = Float.abs (Dual.value old -. Dual.value t) < 1e-9
  let discard t = Dual.value t <= 0.0
  let weight = Dual.value

  let tag_of_input (i : Input.t) =
    match i.Input.prob with
    | None -> (Dual.one, None)
    | Some p ->
        let id, d = V.fresh p in
        (d, Some id)

  let recover t = Output.O_dual t
  let pp = Dual.pp
end

(** diff-top-k-proofs (Sec. 4.5.3): DNF formulas with at most k proofs,
    recovered through differentiable WMC.  [me] enables the mutual-exclusion
    extension (diff-top-k-proofs-me, Appendix B.4.4). *)
module Diff_top_k_proofs (K : sig
  val k : int
  val me : bool
end)
() : S with type t = Formula.t = struct
  module P = Prov_discrete.Proofs ()

  type t = Formula.t

  let name = Fmt.str "difftopkproofs%s-%d" (if K.me then "me" else "") K.k
  let zero = Formula.ff
  let one = Formula.tt
  let add a b = Formula.disj_k P.env K.k a b
  let mult a b = Formula.conj_k P.env K.k a b
  let negate t = Some (Formula.neg_k P.env K.k t)

  (* Tags are canonical (see Formula), so ordered comparison suffices. *)
  let saturated ~old t = Formula.equal_ordered old t
  let discard t = Formula.is_false t
  let weight t = Formula.prob_upper_bound P.env t

  let tag_of_input (i : Input.t) =
    let i = if K.me then i else { i with Input.me_group = None } in
    P.tag_of_input i

  let recover t = Output.O_dual (Wmc.dual ~env:P.env t)
  let pp = Formula.pp
end

(** diff-sample-k-proofs: stochastic proof retention with differentiable
    WMC recovery. *)
module Diff_sample_k_proofs (K : sig
  val k : int
  val seed : int
end)
() : S with type t = Formula.t = struct
  module Base =
    Prov_prob.Sample_k_proofs
      (struct
        let k = K.k
        let seed = K.seed
      end)
      ()

  include (Base : S with type t = Formula.t)

  (* Reuse Base's stochastic ⊕/⊗/⊖ but recover dual numbers via
     differentiable WMC over Base's probability environment. *)
  let name = Fmt.str "diffsamplekproofs-%d" K.k
  let recover t = Output.O_dual (Wmc.dual ~env:Base.env t)
end

(** diff-exact-prob: untruncated proof sets with differentiable WMC — the
    differentiable counterpart of the DeepProbLog-exact baseline (top-k with
    k ≥ 2ⁿ, Sec. 6.4).  Exact gradients at exponential worst-case cost. *)
module Diff_exact () : S with type t = Formula.t = struct
  module Base = Prov_prob.Exact ()
  include (Base : S with type t = Formula.t)

  let name = "diffexactprobproofs"
  let recover t = Output.O_dual (Wmc.dual ~env:Base.env t)
end

(** diff-top-bottom-k-clauses: maintains both a k-proof DNF lower
    approximation and (implicitly, via negation of the complement) an upper
    one; the recovered probability is the average of WMC over the DNF of the
    formula and the complement of WMC over the DNF of its negation.  This
    smooths the loss landscape when negation is pervasive. *)
module Diff_top_bottom_k_clauses (K : sig
  val k : int
end)
() : S with type t = Formula.t * Formula.t = struct
  module P = Prov_discrete.Proofs ()

  (* The pair (φ, ψ) keeps ψ ≈ ¬φ truncated independently, so negation is
     exact-by-swap instead of the lossy cnf2dnf. *)
  type t = Formula.t * Formula.t

  let name = Fmt.str "difftopbottomkclauses-%d" K.k
  let zero = (Formula.ff, Formula.tt)
  let one = (Formula.tt, Formula.ff)

  let add (a, na) (b, nb) =
    (Formula.disj_k P.env K.k a b, Formula.conj_k P.env K.k na nb)

  let mult (a, na) (b, nb) =
    (Formula.conj_k P.env K.k a b, Formula.disj_k P.env K.k na nb)

  let negate (a, na) = Some (na, a)
  let saturated ~old:(a, _) (b, _) = Formula.equal_ordered a b
  let discard (a, na) = Formula.is_false a && Formula.is_true na
  let weight (a, _) = Formula.prob_upper_bound P.env a

  let tag_of_input (i : Input.t) =
    let tag, id = P.tag_of_input i in
    (match tag with
    | [ p ] -> ((tag, Formula.neg_k P.env K.k [ p ]), id)
    | _ -> ((tag, Formula.ff), id))

  let recover (a, na) =
    let lo = Wmc.dual ~env:P.env a in
    let hi = Dual.complement (Wmc.dual ~env:P.env na) in
    Output.O_dual (Dual.scale 0.5 (Dual.add lo hi))

  let pp fmt (a, _) = Formula.pp fmt a
end
