(** Primitive values and their static types.

    Scallop relations contain tuples of statically-typed primitive values:
    signed/unsigned integers of various widths, floats, booleans, characters
    and strings (paper Sec. 3.1).  All integer widths share the native [int]
    representation; sized types are wrapped to their width on construction so
    that overflow behaves like the source system (e.g. [u8] arithmetic wraps
    at 256).  [usize]/[isize] use the full native width. *)

type ty =
  | I8
  | I16
  | I32
  | I64
  | ISize
  | U8
  | U16
  | U32
  | U64
  | USize
  | F32
  | F64
  | Bool
  | Char
  | Str
[@@deriving eq, ord]

type t =
  | Int of ty * int
  | Float of ty * float
  | B of bool
  | C of char
  | S of string
[@@deriving eq, ord]

let ty_name = function
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | ISize -> "isize"
  | U8 -> "u8"
  | U16 -> "u16"
  | U32 -> "u32"
  | U64 -> "u64"
  | USize -> "usize"
  | F32 -> "f32"
  | F64 -> "f64"
  | Bool -> "bool"
  | Char -> "char"
  | Str -> "String"

let ty_of_name = function
  | "i8" -> Some I8
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "isize" -> Some ISize
  | "u8" -> Some U8
  | "u16" -> Some U16
  | "u32" -> Some U32
  | "u64" -> Some U64
  | "usize" -> Some USize
  | "f32" -> Some F32
  | "f64" -> Some F64
  | "bool" -> Some Bool
  | "char" -> Some Char
  | "String" -> Some Str
  | _ -> None

let is_integer_ty = function
  | I8 | I16 | I32 | I64 | ISize | U8 | U16 | U32 | U64 | USize -> true
  | _ -> false

let is_signed_ty = function I8 | I16 | I32 | I64 | ISize -> true | _ -> false
let is_unsigned_ty ty = is_integer_ty ty && not (is_signed_ty ty)
let is_float_ty = function F32 | F64 -> true | _ -> false
let is_numeric_ty ty = is_integer_ty ty || is_float_ty ty

(* Bit width of sized integer types; native types get the host width. *)
let bits_of_ty = function
  | I8 | U8 -> 8
  | I16 | U16 -> 16
  | I32 | U32 -> 32
  | I64 | U64 | ISize | USize -> Sys.int_size
  | _ -> invalid_arg "Value.bits_of_ty: not an integer type"

(** Wrap a raw integer into the representable range of [ty]. *)
let wrap_int ty n =
  let bits = bits_of_ty ty in
  if bits >= Sys.int_size then
    (* Native-width types: signed is the host int; u64/usize are modeled as
       the host int as well (non-negative in practice). *)
    n
  else
    let m = 1 lsl bits in
    let masked = n land (m - 1) in
    if is_signed_ty ty && masked >= m / 2 then masked - m else masked

(** Smart constructor: build an integer value, wrapping to the type's range.
    Returns [None] for an unsigned type receiving a negative value that did
    not come from wrapping arithmetic — callers constructing from literals
    should use [int_lit]. *)
let int ty n = Int (ty, wrap_int ty n)

let float ty f = Float (ty, f)
let bool b = B b
let char c = C c
let string s = S s

let type_of = function
  | Int (ty, _) -> ty
  | Float (ty, _) -> ty
  | B _ -> Bool
  | C _ -> Char
  | S _ -> Str

let to_int = function
  | Int (_, n) -> Some n
  | Float (_, f) -> Some (int_of_float f)
  | B b -> Some (if b then 1 else 0)
  | C c -> Some (Char.code c)
  | S _ -> None

let to_float = function
  | Int (_, n) -> Some (float_of_int n)
  | Float (_, f) -> Some f
  | B b -> Some (if b then 1.0 else 0.0)
  | C _ | S _ -> None

let to_bool = function B b -> Some b | _ -> None

let pp fmt = function
  | Int (_, n) -> Fmt.int fmt n
  | Float (_, f) -> Fmt.float fmt f
  | B b -> Fmt.bool fmt b
  | C c -> Fmt.pf fmt "'%c'" c
  | S s -> Fmt.pf fmt "%S" s

let to_string v = Fmt.str "%a" pp v

(** Cast a value to another primitive type, mirroring Scallop's [as]
    operator.  Fails ([None]) on unparseable string-to-number casts. *)
let cast target v =
  match (target, v) with
  | t, v when equal_ty t (type_of v) -> Some v
  | t, Int (_, n) when is_integer_ty t -> Some (int t n)
  | t, Int (_, n) when is_float_ty t -> Some (float t (float_of_int n))
  | t, Float (_, f) when is_float_ty t -> Some (float t f)
  | t, Float (_, f) when is_integer_ty t ->
      if Float.is_nan f then None else Some (int t (int_of_float f))
  | t, B b when is_integer_ty t -> Some (int t (if b then 1 else 0))
  | Str, v -> Some (S (match v with S s -> s | _ -> to_string v))
  | t, S s when is_integer_ty t -> Option.map (int t) (int_of_string_opt s)
  | t, S s when is_float_ty t -> Option.map (float t) (float_of_string_opt s)
  | Char, Int (_, n) when n >= 0 && n < 256 -> Some (C (Char.chr n))
  | _ -> None

(* Interned small-int boxes: columnar result decoding re-boxes the same few
   hundred distinct values hundreds of thousands of times, so sharing the
   boxes removes most of that allocation.  Values are immutable and nothing
   compares them physically, so the sharing is unobservable. *)
let intern_limit = 1024
let mk_pool ty = Array.init intern_limit (fun n -> Int (ty, n))
let intern_i8 = mk_pool I8
let intern_i16 = mk_pool I16
let intern_i32 = mk_pool I32
let intern_i64 = mk_pool I64
let intern_isize = mk_pool ISize
let intern_u8 = mk_pool U8
let intern_u16 = mk_pool U16
let intern_u32 = mk_pool U32
let intern_u64 = mk_pool U64
let intern_usize = mk_pool USize
let no_intern : t array = [||]

let intern_pool = function
  | I8 -> intern_i8
  | I16 -> intern_i16
  | I32 -> intern_i32
  | I64 -> intern_i64
  | ISize -> intern_isize
  | U8 -> intern_u8
  | U16 -> intern_u16
  | U32 -> intern_u32
  | U64 -> intern_u64
  | USize -> intern_usize
  | F32 | F64 | Bool | Char | Str -> no_intern

(** [int_interned ty n] = [Int (ty, n)], physically shared for small [n]. *)
let int_interned (ty : ty) (n : int) : t =
  let pool = intern_pool ty in
  if n >= 0 && n < Array.length pool then pool.(n) else Int (ty, n)

(** A stable 64-bit-ish hash used by the [$hash] foreign function. *)
let hash_value v =
  let h = Hashtbl.hash in
  match v with
  | Int (_, n) -> h (0, n)
  | Float (_, f) -> h (1, f)
  | B b -> h (2, b)
  | C c -> h (3, c)
  | S s -> h (4, s)
