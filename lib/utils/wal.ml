(** Crash-consistent write-ahead log segments.

    A segment is an append-only file of checksummed records, the durability
    substrate under {!Scallop_incr.Durable}'s incremental-session state.
    Each record is framed with its payload length and an FNV-1a-64 checksum
    (the same hash {!Atomic_io} uses for snapshots), so a reader can
    distinguish the three states a crash can leave a segment in:

    - {b clean}: every record validates and the file ends exactly at the
      last record's final byte;
    - {b torn}: the tail is an incomplete record — a header cut short, a
      declared payload extending past end-of-file, or a final record whose
      bytes do not hash to their checksum.  This is the signature of a
      crash mid-append; the valid prefix is intact and trustworthy, and
      {!open_append} truncates the tear away before writing anew;
    - {b corrupt}: a record {e before} the tail fails validation while
      well-formed data follows it.  A torn write cannot produce this (a
      crash stops the file, it does not resume it), so it means bit rot or
      tampering — the reader refuses to guess and reports the offset.

    Appends are ordered before acknowledgement: {!append} writes the whole
    record with one [write] and, when the writer was opened with
    [~sync:true], fsyncs before returning, so an acknowledged record
    survives power loss.  With [~sync:false] the record still survives a
    process kill (the page cache outlives the process); only an OS crash
    can lose it.

    File layout (all integers little-endian):
    {v
      bytes 0..7          magic "SCLWAL01"
      then per record:
        u32  payload length
        u64  FNV-1a 64-bit checksum of the payload
        payload bytes
    v} *)

let magic = "SCLWAL01"
let record_header_len = 4 + 8

(* A declared length beyond this is treated as corruption rather than an
   allocation request: no legitimate record (a serialized session op) comes
   within orders of magnitude of it. *)
let max_record_len = 1 lsl 30

let fnv1a64 = Atomic_io.fnv1a64

(* ---- reading ---------------------------------------------------------------- *)

type tail =
  | Clean
  | Torn of { valid_bytes : int }
      (** a crash mid-append left an incomplete tail record; the file prefix
          of [valid_bytes] bytes (magic included) holds every complete
          record *)
  | Corrupt of { offset : int; reason : string }
      (** a non-tail record fails validation: not a crash signature *)

let tail_string = function
  | Clean -> "clean"
  | Torn { valid_bytes } -> Printf.sprintf "torn tail after %d valid bytes" valid_bytes
  | Corrupt { offset; reason } -> Printf.sprintf "corrupt at byte %d: %s" offset reason

(** [read ~path] returns the complete records of the segment in append
    order, together with the state of its tail.  A missing file reads as
    zero records, [Clean] (creating the segment and crashing before the
    magic write leaves the same observable state as never creating it). *)
let read ~path : string list * tail =
  match open_in_bin path with
  | exception Sys_error _ -> ([], Clean)
  | ic ->
      let raw =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic)
      in
      let n = String.length raw in
      if n = 0 then ([], Torn { valid_bytes = 0 })
      else if n < String.length magic then
        if String.equal raw (String.sub magic 0 n) then ([], Torn { valid_bytes = 0 })
        else ([], Corrupt { offset = 0; reason = "bad magic" })
      else if not (String.equal (String.sub raw 0 8) magic) then
        ([], Corrupt { offset = 0; reason = "bad magic" })
      else begin
        let records = ref [] in
        let rec go offset =
          if offset = n then (List.rev !records, Clean)
          else if n - offset < record_header_len then
            (List.rev !records, Torn { valid_bytes = offset })
          else
            let len = Int32.to_int (String.get_int32_le raw offset) in
            if len < 0 || len > max_record_len then
              ( List.rev !records,
                Corrupt { offset; reason = Printf.sprintf "implausible record length %d" len } )
            else if offset + record_header_len + len > n then
              (List.rev !records, Torn { valid_bytes = offset })
            else
              let sum = String.get_int64_le raw (offset + 4) in
              let payload = String.sub raw (offset + record_header_len) len in
              if not (Int64.equal (fnv1a64 payload) sum) then
                if offset + record_header_len + len = n then
                  (* the damaged record is the very last: indistinguishable
                     from a write cut short, so tolerated as a tear *)
                  (List.rev !records, Torn { valid_bytes = offset })
                else (List.rev !records, Corrupt { offset; reason = "checksum mismatch" })
              else begin
                records := payload :: !records;
                go (offset + record_header_len + len)
              end
        in
        go 8
      end

(* ---- appending -------------------------------------------------------------- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  sync : bool;
  mutable appends : int;
  mutable bytes : int;  (** record bytes written through this writer *)
  mutable closed : bool;
}

let path t = t.path
let appends t = t.appends
let bytes t = t.bytes

exception Unwritable of { path : string; tail : tail }

let write_all fd bytes =
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd bytes !written (n - !written)
  done

(** [open_append ~sync ~path] opens (creating if needed) a segment for
    appending.  An existing segment is first scanned: a torn tail is
    truncated back to its last complete record, so the writer never
    interleaves new records with a partial one; a corrupt segment raises
    {!Unwritable} — appending to untrusted history would launder the
    corruption into apparently-valid state. *)
let open_append ?(sync = true) ~path () : t =
  let size =
    match Unix.stat path with
    | st -> st.Unix.st_size
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> -1
  in
  (* A file shorter than the magic is a crash during segment creation: the
     partial prefix is discarded and the magic rewritten (truncating UP to
     the magic length would pad with zero bytes and corrupt it).  A corrupt
     prefix still refuses. *)
  let fresh = size < String.length magic in
  (if size >= 0 then
     match read ~path with
     | _, Clean -> ()
     | _, Torn { valid_bytes } when not fresh ->
         let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644 in
         Fun.protect
           ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
           (fun () ->
             Unix.ftruncate fd valid_bytes;
             if sync then Unix.fsync fd)
     | _, Torn _ -> ()
     | _, (Corrupt _ as tail) -> raise (Unwritable { path; tail }));
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND; Unix.O_CLOEXEC ] 0o644
  in
  if fresh then begin
    if size > 0 then Unix.ftruncate fd 0;
    write_all fd (Bytes.of_string magic);
    if sync then begin
      Unix.fsync fd;
      Atomic_io.fsync_dir (Filename.dirname path)
    end
  end;
  { path; fd; sync; appends = 0; bytes = 0; closed = false }

(** Append one record.  The whole frame goes down in a single [write]; with
    [sync] the data is on stable storage before [append] returns, which is
    what lets a caller apply the operation only after it is durable. *)
let append (t : t) (payload : string) : unit =
  if t.closed then invalid_arg "Wal.append: writer is closed";
  let len = String.length payload in
  let frame = Bytes.create (record_header_len + len) in
  Bytes.set_int32_le frame 0 (Int32.of_int len);
  Bytes.set_int64_le frame 4 (fnv1a64 payload);
  Bytes.blit_string payload 0 frame record_header_len len;
  write_all t.fd frame;
  if t.sync then Unix.fsync t.fd;
  t.appends <- t.appends + 1;
  t.bytes <- t.bytes + Bytes.length frame

let close (t : t) : unit =
  if not t.closed then begin
    t.closed <- true;
    (try if t.sync then Unix.fsync t.fd with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
