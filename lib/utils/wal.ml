(** Crash-consistent write-ahead log segments.

    A segment is an append-only file of checksummed records, the durability
    substrate under {!Scallop_incr.Durable}'s incremental-session state.
    Each record is framed with its payload length and an FNV-1a-64 checksum
    (the same hash {!Atomic_io} uses for snapshots), so a reader can
    distinguish the three states a crash can leave a segment in:

    - {b clean}: every record validates and the file ends exactly at the
      last record's final byte;
    - {b torn}: the tail is an incomplete record — a header cut short, a
      declared payload extending past end-of-file, or a final record whose
      bytes do not hash to their checksum.  This is the signature of a
      crash mid-append; the valid prefix is intact and trustworthy, and
      {!open_append} truncates the tear away before writing anew;
    - {b corrupt}: a record {e before} the tail fails validation while
      well-formed data follows it.  A torn write cannot produce this (a
      crash stops the file, it does not resume it), so it means bit rot or
      tampering — the reader refuses to guess and reports the offset.

    Appends are ordered before acknowledgement: {!append} writes the whole
    record with one [write] and, when the writer was opened with
    [~sync:true], fsyncs before returning, so an acknowledged record
    survives power loss.  With [~sync:false] the record still survives a
    process kill (the page cache outlives the process); only an OS crash
    can lose it.

    File layout (all integers little-endian):
    {v
      bytes 0..7          magic "SCLWAL01"
      then per record:
        u32  payload length
        u64  FNV-1a 64-bit checksum of the payload
        payload bytes
    v} *)

let magic = "SCLWAL01"
let record_header_len = 4 + 8

(* A declared length beyond this is treated as corruption rather than an
   allocation request: no legitimate record (a serialized session op) comes
   within orders of magnitude of it. *)
let max_record_len = 1 lsl 30

let fnv1a64 = Atomic_io.fnv1a64

(* ---- reading ---------------------------------------------------------------- *)

type tail =
  | Clean
  | Torn of { valid_bytes : int }
      (** a crash mid-append left an incomplete tail record; the file prefix
          of [valid_bytes] bytes (magic included) holds every complete
          record *)
  | Corrupt of { offset : int; reason : string }
      (** a non-tail record fails validation: not a crash signature *)

let tail_string = function
  | Clean -> "clean"
  | Torn { valid_bytes } -> Printf.sprintf "torn tail after %d valid bytes" valid_bytes
  | Corrupt { offset; reason } -> Printf.sprintf "corrupt at byte %d: %s" offset reason

(** [read ~path] returns the complete records of the segment in append
    order, together with the state of its tail.  A missing file reads as
    zero records, [Clean] (creating the segment and crashing before the
    magic write leaves the same observable state as never creating it). *)
let read ~path : string list * tail =
  match open_in_bin path with
  | exception Sys_error _ -> ([], Clean)
  | ic ->
      let raw =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic)
      in
      let n = String.length raw in
      if n = 0 then ([], Torn { valid_bytes = 0 })
      else if n < String.length magic then
        if String.equal raw (String.sub magic 0 n) then ([], Torn { valid_bytes = 0 })
        else ([], Corrupt { offset = 0; reason = "bad magic" })
      else if not (String.equal (String.sub raw 0 8) magic) then
        ([], Corrupt { offset = 0; reason = "bad magic" })
      else begin
        let records = ref [] in
        let rec go offset =
          if offset = n then (List.rev !records, Clean)
          else if n - offset < record_header_len then
            (List.rev !records, Torn { valid_bytes = offset })
          else
            let len = Int32.to_int (String.get_int32_le raw offset) in
            if len < 0 || len > max_record_len then
              ( List.rev !records,
                Corrupt { offset; reason = Printf.sprintf "implausible record length %d" len } )
            else if offset + record_header_len + len > n then
              (List.rev !records, Torn { valid_bytes = offset })
            else
              let sum = String.get_int64_le raw (offset + 4) in
              let payload = String.sub raw (offset + record_header_len) len in
              if not (Int64.equal (fnv1a64 payload) sum) then
                if offset + record_header_len + len = n then
                  (* the damaged record is the very last: indistinguishable
                     from a write cut short, so tolerated as a tear *)
                  (List.rev !records, Torn { valid_bytes = offset })
                else (List.rev !records, Corrupt { offset; reason = "checksum mismatch" })
              else begin
                records := payload :: !records;
                go (offset + record_header_len + len)
              end
        in
        go 8
      end

(* ---- incremental tailing ----------------------------------------------------- *)

(** A cursor over a segment that another process (or writer) is still
    appending to.  Each {!Tail.poll} picks up where the last one stopped,
    returning only the records completed since — the replication follower's
    view of the primary's ship log.  A partial frame at end-of-file is
    carried across polls and retried once more bytes land; a complete frame
    whose checksum fails is likewise held back (it may be a write observed
    mid-[write]) and only reported as corruption once bytes exist {e
    beyond} it, which a torn write cannot produce. *)
module Tail = struct
  type t = {
    path : string;
    mutable file_off : int;  (** next byte to read from the file *)
    mutable started : bool;  (** magic consumed *)
    mutable pending : string;  (** bytes read but not yet framed *)
  }

  let create ~path () = { path; file_off = 0; started = false; pending = "" }
  let consumed t = t.file_off - String.length t.pending

  (** Newly completed records since the previous poll, in append order.
      [Ok []] means "nothing new yet" (including: the file does not exist
      yet, or ends in a partial frame).  [Error reason] means the segment
      is damaged in a way no in-flight append explains. *)
  let poll (t : t) : (string list, string) result =
    (match open_in_bin t.path with
    | exception Sys_error _ -> ()
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = in_channel_length ic in
            if n > t.file_off then begin
              seek_in ic t.file_off;
              let fresh = really_input_string ic (n - t.file_off) in
              t.pending <- t.pending ^ fresh;
              t.file_off <- n
            end));
    let err reason = Error reason in
    (* Parse complete frames out of the (post-magic) pending buffer,
       holding back a trailing partial — or a trailing complete frame
       whose checksum does not validate yet, which an in-flight append
       explains.  A bad checksum with bytes beyond it does not. *)
    let parse () =
      let buf = t.pending in
      let n = String.length buf in
      let rec frames off acc =
        if n - off < record_header_len then Ok (off, List.rev acc)
        else
          let len = Int32.to_int (String.get_int32_le buf off) in
          if len < 0 || len > max_record_len then
            err (Printf.sprintf "implausible record length %d" len)
          else if off + record_header_len + len > n then Ok (off, List.rev acc)
          else
            let sum = String.get_int64_le buf (off + 4) in
            let payload = String.sub buf (off + record_header_len) len in
            if not (Int64.equal (fnv1a64 payload) sum) then
              if off + record_header_len + len = n then
                (* could still be a frame observed mid-write: hold it back *)
                Ok (off, List.rev acc)
              else err "checksum mismatch"
            else frames (off + record_header_len + len) (payload :: acc)
      in
      match frames 0 [] with
      | Ok (consumed, recs) ->
          t.pending <- String.sub buf consumed (n - consumed);
          Ok recs
      | Error _ as e -> e
    in
    if t.started then parse ()
    else
      let buf = t.pending in
      let n = String.length buf in
      let m = String.length magic in
      if n < m then
        if String.equal buf (String.sub magic 0 n) then Ok [] else err "bad magic"
      else if not (String.equal (String.sub buf 0 m) magic) then err "bad magic"
      else begin
        t.started <- true;
        t.pending <- String.sub buf m (n - m);
        parse ()
      end
end

(* ---- group commit ------------------------------------------------------------ *)

(** Leader-based fsync batching across concurrently-appending writers.

    Without it, [k] sessions each appending one record cost [k] fsyncs —
    the disk flush dominates and serializes them.  With a group, an append
    writes its bytes and takes a {e ticket}; {!Group.wait} then either
    finds the ticket already covered by someone else's flush, or elects the
    caller leader: the leader snapshots the outstanding ticket range and
    the set of dirty descriptors, fsyncs each descriptor {b once}, and
    advances the durable watermark over every ticket issued before the
    grab.  Appends that landed while the leader was flushing get the next
    batch.  An optional [window] makes the leader sleep briefly before
    grabbing, letting stragglers pile into the same flush — higher
    amortization at the cost of bounded added latency. *)
module Group = struct
  type t = {
    m : Mutex.t;
    flushed : Condition.t;
    window : float;
    mutable next : int;  (** next ticket to issue *)
    mutable durable : int;  (** tickets < durable are on stable storage *)
    mutable leader : bool;  (** a leader is currently flushing *)
    mutable dirty : Unix.file_descr list;
    mutable syncs : int;  (** fsync calls issued *)
    mutable appends : int;  (** tickets issued *)
  }

  let create ?(window = 0.) () =
    {
      m = Mutex.create ();
      flushed = Condition.create ();
      window;
      next = 0;
      durable = 0;
      leader = false;
      dirty = [];
      syncs = 0;
      appends = 0;
    }

  (** Called by a writer after its bytes are in the file: marks [fd] dirty
      and returns the ticket {!wait} must be given before the record may be
      acknowledged. *)
  let register t fd : int =
    Mutex.lock t.m;
    let ticket = t.next in
    t.next <- t.next + 1;
    t.appends <- t.appends + 1;
    if not (List.memq fd t.dirty) then t.dirty <- fd :: t.dirty;
    Mutex.unlock t.m;
    ticket

  (** Block until [ticket]'s record is on stable storage, flushing as
      leader if nobody else is. *)
  let rec wait t ticket : unit =
    Mutex.lock t.m;
    if ticket < t.durable then Mutex.unlock t.m
    else if t.leader then begin
      (* someone is flushing: wait for their broadcast, then re-check *)
      while t.leader && ticket >= t.durable do
        Condition.wait t.flushed t.m
      done;
      Mutex.unlock t.m;
      wait t ticket
    end
    else begin
      t.leader <- true;
      Mutex.unlock t.m;
      if t.window > 0. then Unix.sleepf t.window;
      Mutex.lock t.m;
      let upto = t.next in
      let fds = t.dirty in
      t.dirty <- [];
      Mutex.unlock t.m;
      List.iter
        (fun fd ->
          try
            Unix.fsync fd;
            Mutex.lock t.m;
            t.syncs <- t.syncs + 1;
            Mutex.unlock t.m
          with Unix.Unix_error _ -> ())
        fds;
      Mutex.lock t.m;
      t.durable <- max t.durable upto;
      t.leader <- false;
      Condition.broadcast t.flushed;
      Mutex.unlock t.m;
      if ticket >= t.durable then wait t ticket
    end

  (** Flush [fd] now and drop it from the dirty set: a writer about to
      close its descriptor must not leave it for a later leader to fsync
      (fsync on a closed fd is EBADF). *)
  let forget t fd : unit =
    Mutex.lock t.m;
    let was_dirty = List.memq fd t.dirty in
    t.dirty <- List.filter (fun d -> not (d == fd)) t.dirty;
    Mutex.unlock t.m;
    if was_dirty then begin
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Mutex.lock t.m;
      t.syncs <- t.syncs + 1;
      Mutex.unlock t.m
    end

  let stats t : int * int =
    Mutex.lock t.m;
    let r = (t.syncs, t.appends) in
    Mutex.unlock t.m;
    r
end

(* ---- appending -------------------------------------------------------------- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  sync : bool;
  group : Group.t option;
  mutable appends : int;
  mutable bytes : int;  (** record bytes written through this writer *)
  mutable closed : bool;
}

let path t = t.path
let appends t = t.appends
let bytes t = t.bytes

exception Unwritable of { path : string; tail : tail }

let write_all fd bytes =
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd bytes !written (n - !written)
  done

(** [open_append ~sync ~path] opens (creating if needed) a segment for
    appending.  An existing segment is first scanned: a torn tail is
    truncated back to its last complete record, so the writer never
    interleaves new records with a partial one; a corrupt segment raises
    {!Unwritable} — appending to untrusted history would launder the
    corruption into apparently-valid state. *)
let open_append ?(sync = true) ?group ~path () : t =
  let size =
    match Unix.stat path with
    | st -> st.Unix.st_size
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> -1
  in
  (* A file shorter than the magic is a crash during segment creation: the
     partial prefix is discarded and the magic rewritten (truncating UP to
     the magic length would pad with zero bytes and corrupt it).  A corrupt
     prefix still refuses. *)
  let fresh = size < String.length magic in
  (if size >= 0 then
     match read ~path with
     | _, Clean -> ()
     | _, Torn { valid_bytes } when not fresh ->
         let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644 in
         Fun.protect
           ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
           (fun () ->
             Unix.ftruncate fd valid_bytes;
             if sync then Unix.fsync fd)
     | _, Torn _ -> ()
     | _, (Corrupt _ as tail) -> raise (Unwritable { path; tail }));
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND; Unix.O_CLOEXEC ] 0o644
  in
  if fresh then begin
    if size > 0 then Unix.ftruncate fd 0;
    write_all fd (Bytes.of_string magic);
    if sync then begin
      Unix.fsync fd;
      Atomic_io.fsync_dir (Filename.dirname path)
    end
  end;
  { path; fd; sync; group; appends = 0; bytes = 0; closed = false }

(** Append one record without waiting for stable storage.  The whole frame
    goes down in a single [write].  Returns [Some ticket] when the writer
    belongs to a {!Group}: the record is durable only once {!Group.wait}
    has been given that ticket.  Returns [None] when durability is already
    settled on return — either the fsync ran inline ([sync] without a
    group) or the caller opted out of syncing entirely. *)
let append_ticket (t : t) (payload : string) : int option =
  if t.closed then invalid_arg "Wal.append: writer is closed";
  let len = String.length payload in
  let frame = Bytes.create (record_header_len + len) in
  Bytes.set_int32_le frame 0 (Int32.of_int len);
  Bytes.set_int64_le frame 4 (fnv1a64 payload);
  Bytes.blit_string payload 0 frame record_header_len len;
  write_all t.fd frame;
  t.appends <- t.appends + 1;
  t.bytes <- t.bytes + Bytes.length frame;
  if not t.sync then None
  else
    match t.group with
    | None ->
        Unix.fsync t.fd;
        None
    | Some g -> Some (Group.register g t.fd)

(** Append one record, fully durable on return (group writers wait on
    their ticket here). *)
let append (t : t) (payload : string) : unit =
  match (append_ticket t payload, t.group) with
  | Some ticket, Some g -> Group.wait g ticket
  | _ -> ()

(** Force an fsync now regardless of the writer's sync policy — used for
    records whose visibility must not wait for the page cache (the
    follower's fencing ack). *)
let sync_now (t : t) : unit =
  if not t.closed then try Unix.fsync t.fd with Unix.Unix_error _ -> ()

let close (t : t) : unit =
  if not t.closed then begin
    t.closed <- true;
    (match t.group with
    | Some g -> Group.forget g t.fd
    | None -> ( try if t.sync then Unix.fsync t.fd with Unix.Unix_error _ -> ()));
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
