(** List and array helpers shared across the codebase. *)

(** [take n l] is the first [n] elements of [l] (all of [l] if shorter). *)
let rec take n l =
  if n <= 0 then []
  else match l with [] -> [] | x :: xs -> x :: take (n - 1) xs

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: xs -> drop (n - 1) xs

(** [group_by key l] buckets elements of [l] by [key], preserving the order of
    first appearance of each key and of elements within a bucket. *)
let group_by (type k) (module Ord : Map.OrderedType with type t = k) (key : 'a -> k) l =
  let module M = Map.Make (Ord) in
  let m, order =
    List.fold_left
      (fun (m, order) x ->
        let k = key x in
        match M.find_opt k m with
        | Some xs -> (M.add k (x :: xs) m, order)
        | None -> (M.add k [ x ] m, k :: order))
      (M.empty, []) l
  in
  List.rev_map (fun k -> (k, List.rev (M.find k m))) order

(** Cartesian product of a list of lists, in lexicographic order. *)
let rec cartesian = function
  | [] -> [ [] ]
  | xs :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun x -> List.map (fun t -> x :: t) tails) xs

(** All subsets of a list (2^n of them); used by the exact world-enumeration
    aggregator on small inputs. *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: xs ->
      let rest = subsets xs in
      rest @ List.map (fun s -> x :: s) rest

(** Index of the maximum element (first on ties); [None] on empty array. *)
let argmax_arr arr =
  if Array.length arr = 0 then None
  else begin
    let best = ref 0 in
    Array.iteri (fun i x -> if x > arr.(!best) then best := i) arr;
    Some !best
  end

let sum_float l = List.fold_left ( +. ) 0.0 l

let average l =
  match l with [] -> 0.0 | _ -> sum_float l /. float_of_int (List.length l)

(** [range a b] is [a; a+1; ...; b-1]. *)
let range a b = if b <= a then [] else List.init (b - a) (fun i -> a + i)

(** Deduplicate preserving first occurrence (O(n^2); small lists only). *)
let dedup_stable eq l =
  List.fold_left (fun acc x -> if List.exists (eq x) acc then acc else x :: acc) [] l
  |> List.rev

(** Total order on floats for sort keys: NaN ranks as -∞ (ties with a real
    -∞ resolve by sort stability), so a NaN score never beats any other and
    the comparator stays consistent (transitive, antisymmetric) — plain
    [(<)] or [compare] on raw floats is not, which can corrupt
    [List.stable_sort]. *)
let float_key x = if Float.is_nan x then Float.neg_infinity else x

(** Top-[k] elements of [l] by descending [score] (stable for equal scores).
    Decorate–sort–undecorate: [score] runs once per element, not once per
    comparison.  NaN scores sort last (see {!float_key}). *)
let top_k_by (score : 'a -> float) k l =
  let decorated = List.map (fun x -> (float_key (score x), x)) l in
  let sorted =
    List.stable_sort (fun (sa, _) (sb, _) -> Float.compare sb sa) decorated
  in
  take k (List.map snd sorted)
