(** Deterministic, splittable pseudo-random number generation.

    All stochastic components of the system (dataset generation, weight
    initialization, samplers, RL environments) draw from this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is SplitMix64 [Steele et al. 2014], which has a 64-bit state,
    passes BigCrush, and supports O(1) splitting. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(** Raw 64-bit stream position, for serialization: a generator restored
    with {!set_state} (or rebuilt with {!of_state}) continues the exact
    output sequence of the generator {!state} was read from. *)
let state t = t.state

let set_state t s = t.state <- s

let of_state s = { state = s }

(* One SplitMix64 step: advance the state and scramble the output. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [split t] returns a new generator whose stream is statistically
    independent of [t]'s subsequent outputs. *)
let split t = { state = next_int64 t }

(* The SplitMix64 output scrambler, without advancing any state. *)
let scramble z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [substream t i] derives member [i ≥ 0] of an indexed family of
    generators rooted at [t]'s {e current} state, without advancing [t].
    Unlike {!split}, the derivation is a pure function of (state, i): the
    same base generator yields the same family regardless of how many
    substreams are taken or in which order — this is what parallel batch
    execution uses to give every sample its own reproducible stream,
    independent of worker count and scheduling. *)
let substream t i =
  if i < 0 then invalid_arg "Rng.substream: index must be >= 0";
  { state = scramble (Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1)))) }

(** [split_n t n] is [| substream t 0; ...; substream t (n-1) |]. *)
let split_n t n = Array.init n (substream t)

(** Uniform int in [0, bound). Raises [Invalid_argument] if [bound <= 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform float in [lo, hi). *)
let uniform t lo hi = lo +. (float t *. (hi -. lo))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Box–Muller; we discard the second variate for simplicity. *)
let gaussian ?(mu = 0.0) ?(sigma = 1.0) t =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

(** Sample an index according to unnormalized non-negative [weights].
    Falls back to uniform choice if all weights are zero, or if the total is
    not finite (NaN/∞ from upstream numerics): with a NaN total the
    cumulative scan below never fires ([x < !acc] is always false) and would
    otherwise silently return the last index every time — a hidden bias, not
    a sample. *)
let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 || not (Float.is_finite total) then int t (Array.length weights)
  else begin
    let x = float t *. total in
    let acc = ref 0.0 in
    let res = ref (Array.length weights - 1) in
    (try
       Array.iteri
         (fun i w ->
           acc := !acc +. w;
           if x < !acc then begin
             res := i;
             raise Exit
           end)
         weights
     with Exit -> ());
    !res
  end

(** In-place Fisher–Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [choose t lst] picks a uniform element of a non-empty list. *)
let choose t lst =
  match lst with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth lst (int t (List.length lst))

(** [sample_without_replacement t k arr] returns [k] distinct elements. *)
let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let copy = Array.copy arr in
  shuffle t copy;
  Array.sub copy 0 k

(** [sample_indices t k n] draws [k] distinct indices uniformly from [0, n)
    ([k ≤ n]), returned in ascending order.  Partial Fisher–Yates: only the
    first [k] positions are shuffled. *)
let sample_indices t k n =
  if k > n then invalid_arg "Rng.sample_indices: k > n";
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  let sel = Array.sub idx 0 k in
  Array.sort compare sel;
  sel

(** [weighted_sample_indices t k weights] draws [k] distinct indices without
    replacement ([k ≤ n]): each round picks proportionally to the remaining
    non-negative weights (chosen indices are zeroed out), falling back to a
    uniform choice among the unchosen when no weight remains — so exactly [k]
    indices are always returned.  Ascending order. *)
let weighted_sample_indices t k (weights : float array) =
  let n = Array.length weights in
  if k > n then invalid_arg "Rng.weighted_sample_indices: k > n";
  (* Sanitize: negative weights clamp to 0; non-finite weights (NaN/∞) also
     become 0 — [Float.max 0.0 nan] is NaN and would poison every later
     round's total. *)
  let w =
    Array.map (fun x -> if Float.is_finite x && x > 0.0 then x else 0.0) weights
  in
  let chosen = Array.make n false in
  let uniform_unchosen remaining =
    let j = ref (int t remaining) in
    let res = ref (-1) in
    (try
       for i = 0 to n - 1 do
         if not chosen.(i) then
           if !j = 0 then begin
             res := i;
             raise Exit
           end
           else decr j
       done
     with Exit -> ());
    !res
  in
  for round = 0 to k - 1 do
    let total = Array.fold_left ( +. ) 0.0 w in
    let i =
      if total > 0.0 then begin
        let i = categorical t w in
        (* float rounding in the categorical scan can land on an
           already-chosen (zero-weight) index; treat as the uniform case *)
        if chosen.(i) then uniform_unchosen (n - round) else i
      end
      else uniform_unchosen (n - round)
    in
    chosen.(i) <- true;
    w.(i) <- 0.0
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if chosen.(i) then out := i :: !out
  done;
  Array.of_list !out
