(** Crash-safe snapshot files.

    A snapshot is a byte payload wrapped in a versioned, checksummed header
    and written with the classic write-to-temp → fsync → rename protocol, so
    a crash at {e any} instant leaves either the previous file intact or the
    new file complete — never a half-written snapshot visible under the
    final name.  On top of single files, {!save}/{!load_latest} manage a
    directory of {e generations}: each save creates [snapshot-NNNNNNNNN.ckpt]
    with the next generation number and prunes old generations beyond a
    retention count, and loading walks generations newest-first, skipping
    any file whose checksum (or header) does not validate — a torn or
    bit-flipped latest snapshot silently falls back to the previous one.

    File layout (all integers little-endian):
    {v
      bytes 0..7    magic    "SCLSNAP1"
      bytes 8..11   version  (u32)
      bytes 12..19  payload length (u64)
      bytes 20..27  FNV-1a 64-bit checksum of the payload (u64)
      bytes 28..    payload
    v} *)

let magic = "SCLSNAP1"
let version = 1
let header_len = 8 + 4 + 8 + 8

(* ---- checksum -------------------------------------------------------------- *)

(** FNV-1a, 64-bit: not cryptographic, but detects the truncations and byte
    flips a torn write or bad sector produces, at memory speed and with no
    dependencies. *)
let fnv1a64 (s : string) : int64 =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

(* ---- single-file read/write ------------------------------------------------- *)

type read_error =
  | Missing  (** file does not exist *)
  | Truncated  (** shorter than the header + declared payload length *)
  | Bad_magic  (** not a snapshot file *)
  | Bad_version of int  (** written by an incompatible format version *)
  | Checksum_mismatch  (** payload bytes do not hash to the stored checksum *)

let read_error_string = function
  | Missing -> "missing"
  | Truncated -> "truncated"
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unsupported version %d" v
  | Checksum_mismatch -> "checksum mismatch"

let encode (payload : string) : string =
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int version);
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_int64_le b (fnv1a64 payload);
  Buffer.add_string b payload;
  Buffer.contents b

let decode (raw : string) : (string, read_error) result =
  let len = String.length raw in
  if len < header_len then Error Truncated
  else if String.sub raw 0 8 <> magic then Error Bad_magic
  else
    let v = Int32.to_int (String.get_int32_le raw 8) in
    if v <> version then Error (Bad_version v)
    else
      let plen = Int64.to_int (String.get_int64_le raw 12) in
      if plen < 0 || len < header_len + plen then Error Truncated
      else
        let payload = String.sub raw header_len plen in
        if fnv1a64 payload <> String.get_int64_le raw 20 then Error Checksum_mismatch
        else Ok payload

let fsync_dir dir =
  (* Persist the rename itself.  Directory fsync is Linux-portable; on
     filesystems that reject it, the rename is still atomic — only its
     durability window widens — so errors are ignored. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(** [write_file ~path payload] atomically replaces [path] with an encoded
    snapshot: the bytes are written to [path ^ ".tmp"], fsynced, renamed
    over [path], and the directory entry is fsynced.  A reader (or a
    restart) sees either the old complete file or the new complete file. *)
let write_file ~path (payload : string) : unit =
  let raw = encode payload in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes = Bytes.unsafe_of_string raw in
      let n = Bytes.length bytes in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd bytes !written (n - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

(** [read_file ~path] validates header and checksum and returns the payload. *)
let read_file ~path : (string, read_error) result =
  match open_in_bin path with
  | exception Sys_error _ -> Error Missing
  | ic ->
      let raw = Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic) in
      decode raw

(* ---- generation rotation ----------------------------------------------------- *)

let snapshot_re gen = Printf.sprintf "snapshot-%09d.ckpt" gen

let gen_of_name name =
  if String.length name = 23
     && String.sub name 0 9 = "snapshot-"
     && Filename.check_suffix name ".ckpt"
  then int_of_string_opt (String.sub name 9 9)
  else None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** Generation numbers present in [dir], ascending ([] if the directory does
    not exist). *)
let generations ~dir : int list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names |> List.filter_map gen_of_name |> List.sort compare

let path_of ~dir gen = Filename.concat dir (snapshot_re gen)

(** [save ~dir ~keep payload] writes the next generation snapshot into
    [dir] (created if needed), prunes all but the newest [keep]
    generations, and returns the generation number written.  Pruning
    happens {e after} the new snapshot is durable, so at least one valid
    snapshot always survives a crash anywhere in [save]. *)
let save ~dir ?(keep = 3) (payload : string) : int =
  if keep < 1 then invalid_arg "Atomic_io.save: keep must be >= 1";
  mkdir_p dir;
  let gens = generations ~dir in
  let gen = match List.rev gens with g :: _ -> g + 1 | [] -> 0 in
  write_file ~path:(path_of ~dir gen) payload;
  let all = gens @ [ gen ] in
  let excess = List.length all - keep in
  List.iteri
    (fun i g ->
      if i < excess then try Sys.remove (path_of ~dir g) with Sys_error _ -> ())
    all;
  gen

(** [save_at ~dir ~gen ~keep payload] installs [payload] as generation
    [gen] {e exactly} — a replication follower mirroring the primary's
    snapshot numbering must not let the directory pick its own — pruning to
    the newest [keep] generations as {!save} does.  Re-installing an
    existing generation atomically replaces it. *)
let save_at ~dir ~gen ?(keep = 3) (payload : string) : unit =
  if keep < 1 then invalid_arg "Atomic_io.save_at: keep must be >= 1";
  if gen < 0 then invalid_arg "Atomic_io.save_at: negative generation";
  mkdir_p dir;
  write_file ~path:(path_of ~dir gen) payload;
  let all = generations ~dir in
  let excess = List.length all - keep in
  List.iteri
    (fun i g ->
      if i < excess then try Sys.remove (path_of ~dir g) with Sys_error _ -> ())
    all

(** [load_latest ~dir] returns the newest snapshot that validates, as
    [(generation, payload)] — walking backwards over corrupt or truncated
    generations — or [None] when no valid snapshot exists. *)
let load_latest ~dir : (int * string) option =
  let rec try_gens = function
    | [] -> None
    | g :: older -> (
        match read_file ~path:(path_of ~dir g) with
        | Ok payload -> Some (g, payload)
        | Error _ -> try_gens older)
  in
  try_gens (List.rev (generations ~dir))

(** Remove every snapshot (and temp file) in [dir]; used by [--resume]-less
    fresh starts.  The directory itself is kept. *)
let clear ~dir : unit =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if gen_of_name name <> None || Filename.check_suffix name ".ckpt.tmp" then
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        names
