(** A reusable Domain-based worker pool for data-parallel execution.

    [create n] spawns [n - 1] worker domains once; the caller's domain is
    worker 0 and participates in every job, so a pool of size [n] uses [n]
    domains total and [create 1] degenerates to inline sequential execution
    with no domains spawned.  Jobs are dynamic self-scheduling maps over an
    array: workers repeatedly claim chunks of indices from a shared atomic
    cursor, so uneven per-element cost load-balances automatically.  Results
    are written by input index, making the output array independent of which
    worker computed which element.

    Exceptions raised by the mapped function are captured (first one wins),
    the remaining elements are abandoned, and the exception is re-raised on
    the caller's domain once every worker has quiesced.

    Jobs accept an optional {!Cancel.t} token: workers poll it between
    chunks, stop claiming new work once it fires, and — if any element was
    left unprocessed — {!Cancel.Cancelled} is raised on the caller's domain
    after every worker has quiesced.  No domain is ever left running: both
    the error and the cancellation path drain the pool before returning, so
    the pool stays reusable afterwards.

    The pool is {e not} reentrant: calling [parallel_map] from inside a
    mapped function on the same pool deadlocks.  One job runs at a time;
    concurrent submissions from several domains are serialized by an
    internal submission lock. *)

type t = {
  size : int;  (** total workers, including the calling domain *)
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  submit : Mutex.t;  (** serializes whole jobs, not individual chunks *)
  mutable job : (int -> unit) option;  (** worker slot -> runs until drained *)
  mutable generation : int;
  mutable pending : int;  (** workers still inside the current job *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

(** What the hardware offers; the natural default for [create]. *)
let default_jobs () = Domain.recommended_domain_count ()

(* Each spawned domain runs [worker_slot_loop slot]; slot 0 is the caller's
   domain, spawned domains use slots 1 .. size-1.  The slot only identifies
   the worker for per-worker state init — it must not influence results
   (determinism contract).  Job closures handle their own errors; see
   [parallel_map_init]. *)
let rec worker_slot_loop t slot last_gen =
  Mutex.lock t.mutex;
  while (not t.stop) && t.generation = last_gen do
    Condition.wait t.work_available t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let job = match t.job with Some j -> j | None -> fun _ -> () in
    Mutex.unlock t.mutex;
    (try job slot with _ -> ());
    Mutex.lock t.mutex;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.mutex;
    worker_slot_loop t slot gen
  end

let create n =
  if n < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    {
      size = n;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      submit = Mutex.create ();
      job = None;
      generation = 0;
      pending = 0;
      stop = false;
      domains = [];
    }
  in
  (* Spawn one at a time so a failure partway (domain limit, OOM) can stop
     and join the domains already running instead of leaking them. *)
  (try
     for i = 1 to n - 1 do
       t.domains <- Domain.spawn (fun () -> worker_slot_loop t i 0) :: t.domains
     done
   with e ->
     Mutex.lock t.mutex;
     t.stop <- true;
     Condition.broadcast t.work_available;
     Mutex.unlock t.mutex;
     List.iter Domain.join t.domains;
     t.domains <- [];
     raise e);
  t

(** Stop the workers and join their domains.  Idempotent; the pool must not
    be used afterwards. *)
let shutdown t =
  Mutex.lock t.submit;
  Mutex.lock t.mutex;
  let domains = t.domains in
  t.domains <- [];
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work_available
  end;
  Mutex.unlock t.mutex;
  Mutex.unlock t.submit;
  List.iter Domain.join domains

(** [with_pool n f] runs [f] over a fresh pool and guarantees every spawned
    domain is stopped and joined on {e all} exits: normal return, a mapped
    function's exception re-raised by a job, or an exception raised directly
    by [f]'s own body between jobs.  Combined with [create]'s partial-spawn
    cleanup, no code path leaks a domain. *)
let with_pool n f =
  let t = create n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Publish [job], run our own share on the calling domain, wait for the
   spawned workers to drain theirs. *)
let run_job t (job : int -> unit) =
  Mutex.lock t.submit;
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    Mutex.unlock t.submit;
    invalid_arg "Pool: used after shutdown"
  end;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  t.pending <- t.size;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  (try job 0 with _ -> ());
  Mutex.lock t.mutex;
  t.pending <- t.pending - 1;
  while t.pending > 0 do
    Condition.wait t.work_done t.mutex
  done;
  t.job <- None;
  Mutex.unlock t.mutex;
  Mutex.unlock t.submit

(** [parallel_map_init t ~init ~f arr] maps [f state i arr.(i)] over [arr],
    where each participating worker first builds its private [state] with
    [init slot] ([slot] ∈ [0, size)).  Results are positionally ordered;
    for a deterministic result [f] must not depend on [slot] or on the
    chunk schedule.  [chunk] elements are claimed at a time (default 1:
    full dynamic balancing, right for coarse per-element work).  When
    [cancel] fires before every element was processed, the unfinished job
    raises {!Cancel.Cancelled} after the workers quiesce. *)
let parallel_map_init (type s) t ?(chunk = 1) ?cancel ~(init : int -> s)
    ~(f : s -> int -> 'a -> 'b) (arr : 'a array) : 'b array =
  if chunk < 1 then invalid_arg "Pool.parallel_map_init: chunk must be >= 1";
  let cancelled () =
    match cancel with Some c -> Cancel.cancelled c | None -> false
  in
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.size = 1 || n = 1 then begin
    let state = init 0 in
    Array.mapi
      (fun i x ->
        if cancelled () then raise Cancel.Cancelled;
        f state i x)
      arr
  end
  else begin
    let results : 'b option array = Array.make n None in
    let cursor = Atomic.make 0 in
    let error : exn option Atomic.t = Atomic.make None in
    let job slot =
      match init slot with
      | exception e -> ignore (Atomic.compare_and_set error None (Some e))
      | state ->
          let continue = ref true in
          while !continue do
            let start = Atomic.fetch_and_add cursor chunk in
            if start >= n || Atomic.get error <> None || cancelled () then
              continue := false
            else
              let stop = min n (start + chunk) in
              try
                for i = start to stop - 1 do
                  results.(i) <- Some (f state i arr.(i))
                done
              with e ->
                ignore (Atomic.compare_and_set error None (Some e));
                continue := false
          done
    in
    run_job t job;
    (match Atomic.get error with Some e -> raise e | None -> ());
    if cancelled () && Array.exists Option.is_none results then
      raise Cancel.Cancelled;
    Array.map (function Some r -> r | None -> assert false) results
  end

(** [parallel_mapi t ~f arr] = [Array.mapi f arr], in parallel. *)
let parallel_mapi t ?chunk ?cancel ~f arr =
  parallel_map_init t ?chunk ?cancel ~init:(fun _ -> ()) ~f:(fun () i x -> f i x) arr

(** [parallel_map t ~f arr] = [Array.map f arr], in parallel. *)
let parallel_map t ?chunk ?cancel ~f arr =
  parallel_map_init t ?chunk ?cancel ~init:(fun _ -> ()) ~f:(fun () _ x -> f x) arr

(** [parallel_iter t ~f arr]: run [f] over every element for its effects. *)
let parallel_iter t ?chunk ?cancel ~f arr =
  ignore (parallel_map t ?chunk ?cancel ~f:(fun x -> f x) arr : unit array)
