(** Cooperative cancellation tokens.

    A token is a single atomic flag shared between the party that requests
    cancellation (any domain) and the computations that honor it.  Honoring
    is {e cooperative}: long-running code polls {!cancelled} at its own safe
    points — the interpreter does so at fixpoint-iteration and operator
    boundaries, the worker pool between work chunks — so cancellation never
    interrupts a computation mid-step and never leaves shared state torn.

    Tokens are one-shot: once {!cancel}led they stay cancelled.  Create a
    fresh token per unit of cancellable work. *)

type t = bool Atomic.t

(** Raised by {!Pool} jobs interrupted between chunks.  Computations that
    can return a typed per-element error (e.g. batched execution) catch
    cancellation cooperatively instead and never let this escape. *)
exception Cancelled

let create () : t = Atomic.make false

(** Request cancellation.  Idempotent, safe from any domain. *)
let cancel (t : t) = Atomic.set t true

let cancelled (t : t) = Atomic.get t

(** [check t] raises {!Cancelled} if [t] has been cancelled. *)
let check (t : t) = if Atomic.get t then raise Cancelled
