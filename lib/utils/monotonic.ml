(** Monotonic time for durations and deadlines.

    [Unix.gettimeofday] follows the wall clock, which NTP may step backwards
    or forwards at any moment — a deadline armed against it can fire hours
    early or never, and an epoch timer can report negative durations.  All
    duration measurement in the system (budget deadlines, epoch timers,
    benchmark clocks) goes through this module instead, which reads
    [CLOCK_MONOTONIC]: an arbitrary-epoch clock that only ever moves
    forward.

    The absolute value of {!now} is meaningless (seconds since an arbitrary
    origin, typically boot); only differences are. *)

external now : unit -> float = "scallop_monotonic_now"
(** Seconds since an arbitrary fixed origin; strictly non-decreasing within
    a process. *)

(** [elapsed_since t0] is [now () -. t0]. *)
let elapsed_since t0 = now () -. t0

(** Time a thunk: [(result, seconds)]. *)
let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
