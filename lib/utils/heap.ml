(** A mutable array-based binary max-heap parameterized by a comparison.

    [pop]/[peek] return the {e greatest} element under [cmp] (i.e. the one
    that compares [> 0] against the others).  Used by the guided best-first
    proof search in {!Scallop_core.Formula}, where elements are frontier
    nodes ordered by an admissible probability upper bound. *)

type 'a t = { mutable data : 'a array; mutable size : int; cmp : 'a -> 'a -> int }

let create ~cmp = { data = [||]; size = 0; cmp }

let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let data = Array.make (Stdlib.max 8 (2 * cap)) x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) > 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!largest) > 0 then largest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!largest) > 0 then largest := r;
  if !largest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!largest);
    h.data.(!largest) <- tmp;
    sift_down h !largest
  end

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end
