(** Shared fault counters for resilient training.

    One record travels through a training run and is bumped wherever an
    example is quarantined or rescued instead of crashing the run:

    - [nan_quarantined]: examples whose forward produced a NaN/Inf and were
      skipped before they could poison an optimizer step;
    - [budget_skipped]: examples dropped because they exhausted their
      resource budget even after every degradation rung;
    - [degraded]: examples that succeeded only after re-running under a
      cheaper provenance (see [Registry.degrade]);
    - [malformed]: examples whose symbolic output could not be decoded
      (e.g. a non-float HWF result tuple).

    The counters are observability, not control flow — a fault is counted
    exactly where it is handled. *)

type t = {
  mutable nan_quarantined : int;
  mutable budget_skipped : int;
  mutable degraded : int;
  mutable malformed : int;
}

let create () = { nan_quarantined = 0; budget_skipped = 0; degraded = 0; malformed = 0 }

let total t = t.nan_quarantined + t.budget_skipped + t.degraded + t.malformed

(** Fold [src] into [dst] (e.g. per-epoch counters into a run total). *)
let merge ~into:(dst : t) (src : t) =
  dst.nan_quarantined <- dst.nan_quarantined + src.nan_quarantined;
  dst.budget_skipped <- dst.budget_skipped + src.budget_skipped;
  dst.degraded <- dst.degraded + src.degraded;
  dst.malformed <- dst.malformed + src.malformed

let pp fmt t =
  Fmt.pf fmt "nan=%d budget=%d degraded=%d malformed=%d" t.nan_quarantined t.budget_skipped
    t.degraded t.malformed
