/* Monotonic clock primitive for Scallop_utils.Monotonic.
 *
 * CLOCK_MONOTONIC is immune to wall-clock steps (NTP adjustments,
 * manual date changes), which is what budget deadlines and epoch
 * timers need: a duration source, not a calendar. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

#ifdef _WIN32
#include <windows.h>
#endif

CAMLprim value scallop_monotonic_now(value unit)
{
#ifdef _WIN32
  LARGE_INTEGER freq, count;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return caml_copy_double((double)count.QuadPart / (double)freq.QuadPart);
#else
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
}
