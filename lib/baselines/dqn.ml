(** Deep Q-Network baseline for PacMan-Maze (paper Sec. 2 / 6.3).

    A standard DQN [Mnih et al. 2015]: an MLP maps the flattened observation
    to four Q-values; ε-greedy exploration, uniform replay buffer, periodic
    target-network refresh.  The paper's comparison point: DQN needs ~50K
    episodes where the neurosymbolic agent needs ~50. *)

open Scallop_tensor
open Scallop_nn
module Env = Scallop_envs.Pacman

type transition = { obs : Nd.t; action : int; reward : float; next_obs : Nd.t option }

type t = {
  qnet : Layers.Mlp.t;
  mutable target : Nd.t list;  (** snapshot of qnet parameter values *)
  buffer : transition array;
  mutable buf_len : int;
  mutable buf_pos : int;
  rng : Scallop_utils.Rng.t;
}

let flatten obs = Nd.reshape obs [| 1; Nd.numel obs |]

let snapshot mlp = List.map (fun (p : Autodiff.t) -> Nd.copy p.Autodiff.value) (Layers.Mlp.params mlp)

let create ~rng ~input_dim ~buffer_size =
  let qnet = Layers.Mlp.create rng [ input_dim; 128; 64; 4 ] in
  {
    qnet;
    target = snapshot qnet;
    buffer = Array.make buffer_size { obs = Nd.zeros [| 1; 1 |]; action = 0; reward = 0.0; next_obs = None };
    buf_len = 0;
    buf_pos = 0;
    rng;
  }

let push t tr =
  t.buffer.(t.buf_pos) <- tr;
  t.buf_pos <- (t.buf_pos + 1) mod Array.length t.buffer;
  t.buf_len <- min (t.buf_len + 1) (Array.length t.buffer)

(** Q-values under the frozen target parameters. *)
let target_q t (obs : Nd.t) : Nd.t =
  (* run the MLP manually with the snapshot values *)
  let rec go layers values h =
    match (layers, values) with
    | [], _ -> h
    | (l : Layers.Linear.t) :: rest, w :: b :: vrest ->
        ignore l;
        let out = Nd.add_rowvec (Nd.matmul h w) b in
        let out = if rest <> [] then Nd.map (fun x -> Float.max 0.0 x) out else out in
        go rest vrest out
    | _ -> h
  in
  go t.qnet.Layers.Mlp.layers t.target obs

let q_values t obs = Layers.Mlp.forward t.qnet (Autodiff.const obs)

let select_action t ~epsilon obs =
  if Scallop_utils.Rng.float t.rng < epsilon then Scallop_utils.Rng.int t.rng 4
  else Nd.argmax_row (Autodiff.value (q_values t obs)) 0

let train_batch t ~(opt : Optim.t) ~gamma ~batch_size =
  if t.buf_len >= batch_size then begin
    for _ = 1 to batch_size do
      let tr = t.buffer.(Scallop_utils.Rng.int t.rng t.buf_len) in
      let target_value =
        match tr.next_obs with
        | None -> tr.reward
        | Some next -> tr.reward +. (gamma *. Nd.max_elt (target_q t next))
      in
      let q = q_values t tr.obs in
      (* select the taken action's Q *)
      let sel = Nd.zeros [| 4; 1 |] in
      Nd.set2 sel tr.action 0 1.0;
      let qa = Autodiff.matmul q (Autodiff.const sel) in
      let loss = Autodiff.mse_loss qa (Autodiff.const (Nd.scalar target_value)) in
      opt.Optim.zero_grad ();
      Autodiff.backward loss;
      opt.Optim.step ()
    done
  end

(** Train for [episodes]; returns the greedy success rate over
    [eval_episodes]. *)
let train_and_eval ?(grid = 5) ?(dim = 12) ?(noise = 0.3) ?(episodes = 500)
    ?(eval_episodes = 100) ?(gamma = 0.95) ?(batch_size = 16) ?(target_refresh = 10)
    ?(lr = 0.001) ~seed () : float * float =
  let env = Env.create ~grid ~noise ~dim ~max_steps:(2 * grid * grid) ~seed:(seed + 1) () in
  let rng = Scallop_utils.Rng.create seed in
  let input_dim = grid * grid * dim in
  let t = create ~rng ~input_dim ~buffer_size:3000 in
  let opt = Optim.adam ~lr (Layers.Mlp.params t.qnet) in
  let t0 = Scallop_utils.Monotonic.now () in
  for ep = 1 to episodes do
    let epsilon = Float.max 0.05 (0.9 *. (0.995 ** float_of_int ep)) in
    Env.reset env;
    let finished = ref false in
    while not !finished do
      let obs = flatten (Env.observe env) in
      let a = select_action t ~epsilon obs in
      let r = Env.step env (Env.action_of_index a) in
      let next_obs = if r.Env.finished then None else Some (flatten (Env.observe env)) in
      push t { obs; action = a; reward = r.Env.reward; next_obs };
      finished := r.Env.finished
    done;
    train_batch t ~opt ~gamma ~batch_size;
    if ep mod target_refresh = 0 then t.target <- snapshot t.qnet
  done;
  let train_time = Scallop_utils.Monotonic.now () -. t0 in
  let successes = ref 0 in
  for _ = 1 to eval_episodes do
    Env.reset env;
    let finished = ref false in
    while not !finished do
      let obs = flatten (Env.observe env) in
      let a = select_action t ~epsilon:0.0 obs in
      let r = Env.step env (Env.action_of_index a) in
      if r.Env.finished && r.Env.reward > 0.5 then incr successes;
      finished := r.Env.finished
    done
  done;
  (float_of_int !successes /. float_of_int eval_episodes, train_time /. float_of_int episodes)
