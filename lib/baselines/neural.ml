(** Purely neural baselines (paper Sec. 6.1): end-to-end MLPs standing in
    for the CNN / BiLSTM / Transformer baselines.  They see the concatenated
    raw percepts and predict the task output directly, with no symbolic
    reasoning — the accuracy and data-efficiency gap against the Scallop
    solutions is the paper's headline comparison (Figs. 15/17/18). *)

open Scallop_tensor
open Scallop_nn
open Scallop_apps

let concat_images (images : Nd.t list) : Nd.t =
  let total = List.fold_left (fun acc i -> acc + Nd.numel i) 0 images in
  let out = Nd.zeros [| 1; total |] in
  let off = ref 0 in
  List.iter
    (fun img ->
      Array.blit img.Nd.data 0 out.Nd.data !off (Nd.numel img);
      off := !off + Nd.numel img)
    images;
  out

(** Generic end-to-end classifier baseline. *)
let classifier_baseline ~task ~(config : Common.config) ~n_classes ~input_dim
    ~(train_data : 'a list) ~(test_data : 'a list) ~(features : 'a -> Nd.t)
    ~(label : 'a -> int) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let mlp = Layers.Mlp.create rng [ input_dim; 128; 64; n_classes ] in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params mlp) in
  let report =
    Common.run_task ~task ~config ~train_data ~test_data ~opt
      ~train_step:(fun s ->
        let y = Layers.Mlp.classify mlp (Autodiff.const (features s)) in
        Autodiff.nll_loss ~eps:1e-9 y [| label s |])
      ~eval_sample:(fun s ->
        let y = Layers.Mlp.classify mlp (Autodiff.const (features s)) in
        Nd.argmax_row (Autodiff.value y) 0 = label s)
      ()
  in
  { report with Common.provenance = "CNN (end-to-end)" }

(** MNIST-R end-to-end baseline: concatenated digit images → output class. *)
let mnist_r (config : Common.config) (task : Scallop_data.Mnist.task) : Common.report =
  let dim = 16 in
  let data = Scallop_data.Mnist.create ~noise:0.5 ~dim ~seed:(config.Common.seed + 1) () in
  let train_data = Scallop_data.Mnist.dataset data task config.Common.n_train in
  let test_data = Scallop_data.Mnist.dataset data task config.Common.n_test in
  classifier_baseline
    ~task:(Scallop_data.Mnist.task_name task ^ " (neural)")
    ~config
    ~n_classes:(Scallop_data.Mnist.num_outputs task)
    ~input_dim:(dim * Scallop_data.Mnist.num_images task)
    ~train_data ~test_data
    ~features:(fun (s : Scallop_data.Mnist.sample) -> concat_images s.Scallop_data.Mnist.images)
    ~label:(fun s -> s.Scallop_data.Mnist.target)

(** Pathfinder end-to-end baseline: concatenated edge features + dot
    one-hots → connected bit. *)
let pathfinder ?(grid = 4) (config : Common.config) : Common.report =
  let dim = 12 in
  let data = Scallop_data.Pathfinder.create ~grid ~noise:0.4 ~dim ~seed:(config.Common.seed + 1) () in
  let train_data = Scallop_data.Pathfinder.dataset data config.Common.n_train in
  let test_data = Scallop_data.Pathfinder.dataset data config.Common.n_test in
  let n_edges = Array.length data.Scallop_data.Pathfinder.edges in
  let nodes = grid * grid in
  let features (s : Scallop_data.Pathfinder.sample) =
    let imgs = concat_images s.Scallop_data.Pathfinder.edge_images in
    let out = Nd.zeros [| 1; (n_edges * dim) + (2 * nodes) |] in
    Array.blit imgs.Nd.data 0 out.Nd.data 0 (Nd.numel imgs);
    let a, b = s.Scallop_data.Pathfinder.dots in
    Nd.set1 out ((n_edges * dim) + a) 1.0;
    Nd.set1 out ((n_edges * dim) + nodes + b) 1.0;
    out
  in
  classifier_baseline ~task:"Pathfinder (neural)" ~config ~n_classes:2
    ~input_dim:((n_edges * dim) + (2 * nodes))
    ~train_data ~test_data ~features
    ~label:(fun s -> if s.Scallop_data.Pathfinder.connected then 1 else 0)

(** CLUTRR end-to-end baseline (the BiLSTM role): mean-pooled sentence
    embeddings → relation class.  Used for the Fig. 18 generalization
    comparison — it collapses on unseen chain lengths. *)
let clutrr_generalization ?(train_ks = [ 2; 3 ]) ?(test_ks = [ 2; 3; 4; 5; 6 ])
    (config : Common.config) : (int * float) list =
  let dim = 16 in
  let data = Scallop_data.Clutrr.create ~noise:0.4 ~dim ~seed:(config.Common.seed + 1) () in
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let n_rel = Scallop_data.Clutrr.num_relations in
  let mlp = Layers.Mlp.create rng [ dim; 64; 64; n_rel ] in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params mlp) in
  let features (s : Scallop_data.Clutrr.sample) =
    (* mean-pool the sentence embeddings: order information is degraded, as
       for bag-of-sentences neural models *)
    let embs = List.map (Scallop_data.Clutrr.sentence_embedding data) s.Scallop_data.Clutrr.chain in
    let acc = Nd.zeros [| 1; dim |] in
    List.iter (fun e -> Nd.add_ acc e) embs;
    Nd.scale (1.0 /. float_of_int (List.length embs)) acc
  in
  let per_k = max 1 (config.Common.n_train / List.length train_ks) in
  let train_data =
    List.concat_map (fun k -> Scallop_data.Clutrr.dataset data ~k per_k) train_ks
  in
  for _ = 1 to config.Common.epochs do
    List.iter
      (fun (s : Scallop_data.Clutrr.sample) ->
        let y = Layers.Mlp.classify mlp (Autodiff.const (features s)) in
        let loss = Autodiff.nll_loss ~eps:1e-9 y [| s.Scallop_data.Clutrr.target |] in
        opt.Optim.zero_grad ();
        Autodiff.backward loss;
        opt.Optim.step ())
      train_data
  done;
  List.map
    (fun k ->
      let test = Scallop_data.Clutrr.dataset data ~k config.Common.n_test in
      let correct =
        List.filter
          (fun (s : Scallop_data.Clutrr.sample) ->
            let y = Layers.Mlp.classify mlp (Autodiff.const (features s)) in
            Nd.argmax_row (Autodiff.value y) 0 = s.Scallop_data.Clutrr.target)
          test
      in
      (k, float_of_int (List.length correct) /. float_of_int (List.length test)))
    test_ks
