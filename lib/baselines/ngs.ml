(** NGS baselines for HWF (paper Sec. 6.1, Table 5; from [Li et al. 2020]).

    Neural-Grammar-Symbolic methods couple the same symbol classifier with
    the symbolic evaluator, differing in how they assign credit:
    - NGS-RL: REINFORCE — sample a symbol sequence, reward = exact answer
      match, policy gradient with a moving-average baseline.  Known to
      barely learn on HWF (paper Table 5: ~3%).
    - NGS-BS (one-step back-search, approximating NGS-m-BS): take the argmax
      sequence; if its evaluation is wrong, search for a single-symbol
      correction whose evaluation is right and use the corrected sequence as
      a pseudo-label for cross-entropy training. *)

open Scallop_tensor
open Scallop_nn
open Scallop_apps
module Hwf = Scallop_data.Hwf

type model = { mlp : Layers.Mlp.t }

let create_model ~rng ~dim = { mlp = Layers.Mlp.create rng [ dim; 64; Hwf.num_symbols ] }

let close a b = Float.abs (a -. b) < 1e-3

let predict_sequence (m : model) (s : Hwf.sample) : int list * Autodiff.t list =
  let probs =
    List.map (fun img -> Layers.Mlp.classify m.mlp (Autodiff.const img)) s.Hwf.images
  in
  (List.map (fun p -> Nd.argmax_row (Autodiff.value p) 0) probs, probs)

let eval_indices (indices : int list) : float option =
  Hwf.eval_formula (List.map (fun i -> Hwf.symbols.(i)) indices)

let accuracy (m : model) (test : Hwf.sample list) =
  let correct =
    List.filter
      (fun (s : Hwf.sample) ->
        let seq, _ = predict_sequence m s in
        match eval_indices seq with Some v -> close v s.Hwf.value | None -> false)
      test
  in
  float_of_int (List.length correct) /. float_of_int (max 1 (List.length test))

(* ---- NGS-RL -------------------------------------------------------------------- *)

let train_rl ?(dim = 16) ?(noise = 0.35) ?(max_len = 7) (config : Common.config) :
    Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Hwf.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train = Hwf.dataset ~max_len data config.Common.n_train in
  let test = Hwf.dataset ~max_len data config.Common.n_test in
  let baseline = ref 0.0 in
  let times = ref [] in
  let losses = ref [] in
  for _ = 1 to config.Common.epochs do
    let t0 = Scallop_utils.Monotonic.now () in
    let total = ref 0.0 in
    List.iter
      (fun (s : Hwf.sample) ->
        let probs =
          List.map (fun img -> Layers.Mlp.classify m.mlp (Autodiff.const img)) s.Hwf.images
        in
        (* sample a sequence *)
        let sampled =
          List.map
            (fun p -> Scallop_utils.Rng.categorical rng (Autodiff.value p).Nd.data)
            probs
        in
        let reward =
          match eval_indices sampled with
          | Some v when close v s.Hwf.value -> 1.0
          | _ -> 0.0
        in
        let advantage = reward -. !baseline in
        baseline := (0.99 *. !baseline) +. (0.01 *. reward);
        (* policy gradient: scale the NLL of the sampled labels by -advantage *)
        if Float.abs advantage > 1e-9 then begin
          let loss =
            List.fold_left2
              (fun acc p lbl ->
                Autodiff.add acc (Autodiff.nll_loss ~eps:1e-9 p [| lbl |]))
              (Autodiff.const (Nd.scalar 0.0))
              probs sampled
          in
          let loss = Autodiff.scale advantage loss in
          opt.Optim.zero_grad ();
          Autodiff.backward loss;
          opt.Optim.step ();
          total := !total +. Float.abs (Nd.get1 (Autodiff.value loss) 0)
        end)
      train;
    times := (Scallop_utils.Monotonic.now () -. t0) :: !times;
    losses := (!total /. float_of_int (List.length train)) :: !losses
  done;
  {
    Common.task = "HWF";
    provenance = "NGS-RL";
    faults = Scallop_utils.Faults.create ();
    accuracy = accuracy m test;
    epoch_time = Scallop_utils.Listx.average !times;
    losses = List.rev !losses;
  }

(* ---- NGS-BS (one-step back-search) ---------------------------------------------- *)

let back_search (seq : int list) (target : float) : int list option =
  (* try replacing each position with every symbol until evaluation matches *)
  let arr = Array.of_list seq in
  let n = Array.length arr in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       let orig = arr.(i) in
       for c = 0 to Hwf.num_symbols - 1 do
         arr.(i) <- c;
         (match eval_indices (Array.to_list arr) with
         | Some v when close v target ->
             found := Some (Array.to_list arr);
             raise Exit
         | _ -> ());
         arr.(i) <- orig
       done
     done
   with Exit -> ());
  !found

let train_bs ?(dim = 16) ?(noise = 0.35) ?(max_len = 7) (config : Common.config) :
    Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Hwf.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train = Hwf.dataset ~max_len data config.Common.n_train in
  let test = Hwf.dataset ~max_len data config.Common.n_test in
  let times = ref [] in
  let losses = ref [] in
  for _ = 1 to config.Common.epochs do
    let t0 = Scallop_utils.Monotonic.now () in
    let total = ref 0.0 in
    List.iter
      (fun (s : Hwf.sample) ->
        let seq, probs = predict_sequence m s in
        let pseudo_label =
          match eval_indices seq with
          | Some v when close v s.Hwf.value -> Some seq
          | _ -> back_search seq s.Hwf.value
        in
        match pseudo_label with
        | None -> ()
        | Some labels ->
            let loss =
              List.fold_left2
                (fun acc p lbl -> Autodiff.add acc (Autodiff.nll_loss ~eps:1e-9 p [| lbl |]))
                (Autodiff.const (Nd.scalar 0.0))
                probs labels
            in
            opt.Optim.zero_grad ();
            Autodiff.backward loss;
            opt.Optim.step ();
            total := !total +. Nd.get1 (Autodiff.value loss) 0)
      train;
    times := (Scallop_utils.Monotonic.now () -. t0) :: !times;
    losses := (!total /. float_of_int (List.length train)) :: !losses
  done;
  {
    Common.task = "HWF";
    provenance = "NGS-BS";
    faults = Scallop_utils.Faults.create ();
    accuracy = accuracy m test;
    epoch_time = Scallop_utils.Listx.average !times;
    losses = List.rev !losses;
  }
